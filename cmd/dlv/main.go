// Command dlv is the DLV model versioning tool (paper Table II): a git-like
// command line for managing deep learning model versions, exploring and
// comparing them, archiving their parameters, running DQL queries, and
// exchanging repositories with a hosted ModelHub server.
//
// Usage:
//
//	dlv [-v] [-log-level debug|info|warn|error] [-trace] <command> [flags]
//
//	dlv init
//	dlv add     FILE...
//	dlv train   -name NAME [-arch lenet|alexnet-mini|vgg-mini] [-epochs N] [-lr F] [-parent ID]
//	dlv copy    -from ID -name NAME
//	dlv list    [-html FILE]
//	dlv desc    -v ID [-html FILE]
//	dlv diff    -a ID -b ID [-html FILE]
//	dlv archive [-algo pas-mt|pas-pt|mst|spt|last|best] [-alpha F] [-scheme NAME] [-purge]
//	dlv gc
//	dlv repack
//	dlv eval    -v ID [-snap LABEL] [-prefix 1..4] [-progressive [-topk K]]
//	dlv plot    -v ID [-layer NAME] [-prefix 1..4] -o weights.html
//	dlv query   'select m where ...'
//	dlv publish -remote URL -name NAME [-timeout D] [-stall-timeout D] [-retries N]
//	dlv search  -remote URL -q QUERY   [-timeout D] [-stall-timeout D] [-retries N]
//	dlv pull    -remote URL -name NAME [-dest DIR] [-timeout D] [-stall-timeout D] [-retries N]
//	dlv trace   -remote URL [last|TRACE_ID]
//
// All commands except init/pull operate on the repository in the current
// directory (or -repo DIR).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"modelhub/internal/core"
	"modelhub/internal/data"
	"modelhub/internal/dlv"
	"modelhub/internal/dnn"
	"modelhub/internal/floatenc"
	"modelhub/internal/hub"
	"modelhub/internal/obs"
	"modelhub/internal/pas"
	"modelhub/internal/report"
	"modelhub/internal/tensor"
)

func main() {
	// Global flags come before the subcommand (flag parsing stops at the
	// first non-flag argument): dlv [-v] [-log-level LEVEL] <command> ...
	global := flag.NewFlagSet("dlv", flag.ExitOnError)
	verbose := global.Bool("v", false, "log to stderr at info level")
	logLevel := global.String("log-level", "", "log to stderr at this level (debug, info, warn, error)")
	traceOn := global.Bool("trace", false,
		"trace this invocation: record spans locally and export hub-command traces to the server's /debug/traces")
	global.Usage = func() {
		usage()
		global.PrintDefaults()
	}
	_ = global.Parse(os.Args[1:]) // ExitOnError makes Parse exit on failure
	if global.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	if err := configureLogging(*verbose, *logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "dlv:", err)
		os.Exit(2)
	}
	if *traceOn {
		obs.Enable()
		obs.EnableTracing()
		obs.SetTraceSampler(1) // a one-shot CLI run always keeps its trace
		obs.SetService("dlv")
	}
	// Ctrl-C / SIGTERM cancel the command context: hub transfers abort
	// mid-stream or mid-backoff instead of running to completion, and a
	// second signal kills the process via the restored default handler.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cmd, args := global.Arg(0), global.Args()[1:]
	if err := run(ctx, cmd, args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2) // the flag package already printed the usage
		}
		fmt.Fprintln(os.Stderr, "dlv:", err)
		os.Exit(1)
	}
}

// globalFlagNames are the dlv-level flags that must precede the subcommand.
var globalFlagNames = map[string]bool{"v": true, "log-level": true, "trace": true}

// parseCmd parses a subcommand's flags and, instead of silently dropping
// them (flag parsing stops at the first positional) or reporting a bare
// "not defined" error, rejects global flags placed after the subcommand
// with a usage error naming the misplaced flag.
func parseCmd(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		if name, ok := strings.CutPrefix(err.Error(), "flag provided but not defined: -"); ok && globalFlagNames[name] {
			return misplacedGlobalFlag(fs.Name(), name)
		}
		return err
	}
	for _, a := range fs.Args() {
		name := strings.TrimLeft(a, "-")
		name, _, _ = strings.Cut(name, "=")
		if len(name) < len(a) && globalFlagNames[name] && fs.Lookup(name) == nil {
			return misplacedGlobalFlag(fs.Name(), name)
		}
	}
	return nil
}

func misplacedGlobalFlag(cmd, name string) error {
	return fmt.Errorf("global flag -%s must come before the subcommand: dlv -%s %s ...", name, name, cmd)
}

// configureLogging installs a stderr slog handler when -v or -log-level is
// given; otherwise the obs default (silent) stays in place.
func configureLogging(verbose bool, level string) error {
	if !verbose && level == "" {
		return nil
	}
	lvl := slog.LevelInfo
	if level != "" {
		var err error
		if lvl, err = obs.ParseLevel(level); err != nil {
			return err
		}
	}
	obs.SetLogger(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: dlv [-v] [-log-level LEVEL] [-trace] <command> [flags]
commands: init add train copy list desc diff archive gc repack eval history plot query publish search pull trace`)
}

func run(ctx context.Context, cmd string, args []string) error {
	switch cmd {
	case "init":
		fs := flag.NewFlagSet("init", flag.ContinueOnError)
		repoDir := fs.String("repo", ".", "repository directory")
		if err := parseCmd(fs, args); err != nil {
			return err
		}
		if _, err := core.Init(*repoDir); err != nil {
			return err
		}
		fmt.Println("initialized empty dlv repository in", *repoDir)
		return nil

	case "add":
		fs := flag.NewFlagSet("add", flag.ContinueOnError)
		repoDir := fs.String("repo", ".", "repository directory")
		if err := parseCmd(fs, args); err != nil {
			return err
		}
		files := fs.Args()
		if len(files) == 0 {
			return fmt.Errorf("add: pass at least one repository-relative file")
		}
		mh, err := core.Open(*repoDir)
		if err != nil {
			return err
		}
		for _, f := range files {
			if err := mh.Repo.Add(f); err != nil {
				return err
			}
		}
		staged, err := mh.Repo.Staged()
		if err != nil {
			return err
		}
		fmt.Printf("staged %d file(s): %v\n", len(staged), staged)
		return nil

	case "train":
		fs := flag.NewFlagSet("train", flag.ContinueOnError)
		repoDir := fs.String("repo", ".", "repository directory")
		name := fs.String("name", "", "model version name (required)")
		arch := fs.String("arch", "lenet", "zoo architecture")
		epochs := fs.Int("epochs", 2, "training epochs")
		lr := fs.Float64("lr", 0.1, "learning rate")
		momentum := fs.Float64("momentum", 0.9, "SGD momentum")
		ckpt := fs.Int("checkpoint-every", 10, "iterations between checkpoints (0 = none)")
		parent := fs.Int64("parent", 0, "parent version id for fine-tuning")
		seed := fs.Int64("seed", 1, "random seed")
		msg := fs.String("m", "", "commit message")
		if err := parseCmd(fs, args); err != nil {
			return err
		}
		if *name == "" {
			return fmt.Errorf("train: -name is required")
		}
		mh, err := core.Open(*repoDir)
		if err != nil {
			return err
		}
		id, err := mh.TrainAndCommit(*name, core.TrainOptions{
			Arch: *arch, Epochs: *epochs, LR: *lr, Momentum: *momentum,
			CheckpointEvery: *ckpt, ParentID: *parent, Seed: *seed, Msg: *msg,
		})
		if err != nil {
			return err
		}
		v, err := mh.Repo.Version(id)
		if err != nil {
			return err
		}
		fmt.Printf("committed model version %d (%s), accuracy %.4f\n", id, *name, v.Accuracy)
		return nil

	case "copy":
		fs := flag.NewFlagSet("copy", flag.ContinueOnError)
		repoDir := fs.String("repo", ".", "repository directory")
		from := fs.Int64("from", 0, "source version id (required)")
		name := fs.String("name", "", "new model name (required)")
		msg := fs.String("m", "scaffolded", "commit message")
		if err := parseCmd(fs, args); err != nil {
			return err
		}
		if *from == 0 || *name == "" {
			return fmt.Errorf("copy: -from and -name are required")
		}
		mh, err := core.Open(*repoDir)
		if err != nil {
			return err
		}
		id, err := mh.Repo.Copy(*from, *name, *msg)
		if err != nil {
			return err
		}
		fmt.Printf("scaffolded model version %d (%s) from %d\n", id, *name, *from)
		return nil

	case "list":
		fs := flag.NewFlagSet("list", flag.ContinueOnError)
		repoDir := fs.String("repo", ".", "repository directory")
		htmlOut := fs.String("html", "", "write an HTML report to this file instead of stdout")
		if err := parseCmd(fs, args); err != nil {
			return err
		}
		mh, err := core.Open(*repoDir)
		if err != nil {
			return err
		}
		versions, err := mh.Repo.List()
		if err != nil {
			return err
		}
		if *htmlOut != "" {
			html, err := report.List(versions)
			if err != nil {
				return err
			}
			return os.WriteFile(*htmlOut, []byte(html), 0o644)
		}
		fmt.Printf("%-4s %-24s %-9s %-6s %-8s %s\n", "ID", "NAME", "ACCURACY", "SNAPS", "PARENT", "CREATED")
		for _, v := range versions {
			parent := "-"
			if v.ParentID != 0 {
				parent = fmt.Sprintf("%d", v.ParentID)
			}
			fmt.Printf("%-4d %-24s %-9.4f %-6d %-8s %s\n", v.ID, v.Name, v.Accuracy, len(v.Snapshots), parent, v.Created)
		}
		return nil

	case "desc":
		fs := flag.NewFlagSet("desc", flag.ContinueOnError)
		repoDir := fs.String("repo", ".", "repository directory")
		id := fs.Int64("v", 0, "version id (required)")
		htmlOut := fs.String("html", "", "write an HTML report to this file instead of stdout")
		if err := parseCmd(fs, args); err != nil {
			return err
		}
		if *id == 0 {
			return fmt.Errorf("desc: -v is required")
		}
		mh, err := core.Open(*repoDir)
		if err != nil {
			return err
		}
		log, err := mh.Repo.TrainLog(*id)
		if err != nil {
			return err
		}
		if *htmlOut != "" {
			v, err := mh.Repo.Version(*id)
			if err != nil {
				return err
			}
			html, err := report.Desc(v, log)
			if err != nil {
				return err
			}
			return os.WriteFile(*htmlOut, []byte(html), 0o644)
		}
		desc, err := mh.Repo.Describe(*id)
		if err != nil {
			return err
		}
		fmt.Print(desc)
		if len(log) > 0 {
			fmt.Println("  training log:")
			for _, e := range log {
				fmt.Printf("    iter %5d  loss %.4f  acc %.4f  lr %g\n", e.Iter, e.Loss, e.Accuracy, e.LR)
			}
		}
		return nil

	case "diff":
		fs := flag.NewFlagSet("diff", flag.ContinueOnError)
		repoDir := fs.String("repo", ".", "repository directory")
		a := fs.Int64("a", 0, "first version id")
		b := fs.Int64("b", 0, "second version id")
		htmlOut := fs.String("html", "", "write an HTML report to this file instead of stdout")
		weights := fs.Bool("weights", false, "also compare the learned parameters layer by layer")
		if err := parseCmd(fs, args); err != nil {
			return err
		}
		if *a == 0 || *b == 0 {
			return fmt.Errorf("diff: -a and -b are required")
		}
		mh, err := core.Open(*repoDir)
		if err != nil {
			return err
		}
		rep, err := mh.Repo.Diff(*a, *b)
		if err != nil {
			return err
		}
		if *htmlOut != "" {
			va, err := mh.Repo.Version(*a)
			if err != nil {
				return err
			}
			vb, err := mh.Repo.Version(*b)
			if err != nil {
				return err
			}
			html, err := report.Diff(va, vb, rep)
			if err != nil {
				return err
			}
			return os.WriteFile(*htmlOut, []byte(html), 0o644)
		}
		fmt.Printf("diff of versions %d and %d:\n", rep.A, rep.B)
		fmt.Printf("  layers only in %d: %v\n", rep.A, rep.OnlyInA)
		fmt.Printf("  layers only in %d: %v\n", rep.B, rep.OnlyInB)
		fmt.Printf("  changed layers:    %v\n", rep.ChangedLayers)
		for k, vals := range rep.HyperChanged {
			fmt.Printf("  hyper %s: %q -> %q\n", k, vals[0], vals[1])
		}
		fmt.Printf("  accuracy delta:    %+.4f\n", rep.AccuracyDelta)
		if *weights {
			diffs, err := mh.Repo.DiffWeights(*a, *b, dlv.LatestSnap)
			if err != nil {
				return err
			}
			fmt.Println("  learned parameters:")
			fmt.Print(dlv.FormatWeightDiffs(diffs))
		}
		return nil

	case "archive":
		fs := flag.NewFlagSet("archive", flag.ContinueOnError)
		repoDir := fs.String("repo", ".", "repository directory")
		algo := fs.String("algo", "pas-mt", "plan algorithm: pas-mt pas-pt mst spt last best")
		alpha := fs.Float64("alpha", 2.0, "recreation budget scalar (x SPT cost)")
		parallel := fs.Bool("parallel", false, "optimize for the parallel retrieval scheme")
		schemeName := fs.String("scheme", "",
			"retrieval scheme budgets are evaluated under: independent parallel reusable concurrent (overrides -parallel)")
		purge := fs.Bool("purge", false, "delete raw weights after archiving")
		ckptScheme := fs.String("checkpoint-scheme", "",
			"lossy float scheme for checkpoint (non-latest) snapshots: float16 bfloat16 fixed-N quant-N")
		explain := fs.Bool("explain", false, "print per-snapshot recreation costs vs budgets")
		planes := fs.Bool("plane-granularity", false, "optimize storage per byte segment instead of per matrix")
		if err := parseCmd(fs, args); err != nil {
			return err
		}
		mh, err := core.Open(*repoDir)
		if err != nil {
			return err
		}
		scheme := pas.Independent
		if *parallel {
			scheme = pas.Parallel
		}
		if *schemeName != "" {
			var err error
			if scheme, err = pas.ParseScheme(*schemeName); err != nil {
				return err
			}
		}
		opts := dlv.ArchiveOptions{
			Algorithm: *algo, Scheme: scheme, Alpha: *alpha, Purge: *purge,
			PlaneGranularity: *planes,
		}
		if *ckptScheme != "" {
			cs, err := parseFloatScheme(*ckptScheme)
			if err != nil {
				return err
			}
			opts.CheckpointScheme = &cs
		}
		store, err := mh.Repo.Archive(opts)
		if err != nil {
			return err
		}
		info := store.Info()
		fmt.Printf("archived with %s: storage %.0f (MST bound %.0f, SPT %.0f), feasible=%v\n",
			info.Algorithm, info.StorageCost, info.MSTCost, info.SPTCost, info.Feasible)
		fmt.Printf("on-disk chunk bytes: %d (high plane only: %d)\n",
			store.TotalChunkBytes(4), store.TotalChunkBytes(1))
		if *explain {
			fmt.Printf("%-24s %-9s %14s %14s\n", "SNAPSHOT", "MATRICES", "RECREATION", "BUDGET")
			for _, sc := range store.SnapshotCosts() {
				budget := "-"
				if sc.Budget > 0 {
					budget = fmt.Sprintf("%.0f", sc.Budget)
				}
				fmt.Printf("%-24s %-9d %14.0f %14s\n", sc.ID, sc.Matrices, sc.Recreation, budget)
			}
		}
		return nil

	case "gc", "repack":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		repoDir := fs.String("repo", ".", "repository directory")
		if err := parseCmd(fs, args); err != nil {
			return err
		}
		mh, err := core.Open(*repoDir)
		if err != nil {
			return err
		}
		var stats pas.GCStats
		if cmd == "gc" {
			stats, err = mh.GC()
		} else {
			stats, err = mh.Repack()
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d segment(s), rewrote %d, dropped %d unreferenced chunk(s), reclaimed %d bytes (live payload bytes: %d)\n",
			cmd, stats.Segments, stats.Rewritten, stats.DroppedChunks, stats.ReclaimedBytes, stats.LiveBytes)
		return nil

	case "eval":
		fs := flag.NewFlagSet("eval", flag.ContinueOnError)
		repoDir := fs.String("repo", ".", "repository directory")
		id := fs.Int64("v", 0, "version id (required)")
		snap := fs.String("snap", dlv.LatestSnap, "snapshot label")
		prefix := fs.Int("prefix", 4, "byte planes to read (1..4)")
		progressive := fs.Bool("progressive", false, "use progressive evaluation")
		topk := fs.Int("topk", 1, "top-k determination for progressive evaluation")
		n := fs.Int("n", 100, "test examples")
		seed := fs.Int64("seed", 99, "test set seed")
		dataFile := fs.String("data", "", "JSON file of data points (overrides the synthetic test set)")
		if err := parseCmd(fs, args); err != nil {
			return err
		}
		if *id == 0 {
			return fmt.Errorf("eval: -v is required")
		}
		mh, err := core.Open(*repoDir)
		if err != nil {
			return err
		}
		var test []dnn.Example
		if *dataFile != "" {
			test, err = data.LoadExamples(*dataFile)
			if err != nil {
				return err
			}
		} else {
			test = core.TestSet(*n, *seed)
		}
		if *progressive {
			res, err := mh.Repo.EvalProgressiveTopK(*id, *snap, test, *topk)
			if err != nil {
				return err
			}
			fmt.Printf("progressive top-%d accuracy: %.4f\n", *topk, res.Accuracy)
			for p := 1; p <= 4; p++ {
				fmt.Printf("  resolved with %d plane(s): %d\n", p, res.PrefixHistogram[p])
			}
			return nil
		}
		res, err := mh.Repo.Eval(*id, *snap, test, *prefix)
		if err != nil {
			return err
		}
		fmt.Printf("accuracy at prefix %d: %.4f\n", res.Prefix, res.Accuracy)
		return nil

	case "history":
		fs := flag.NewFlagSet("history", flag.ContinueOnError)
		repoDir := fs.String("repo", ".", "repository directory")
		id := fs.Int64("v", 0, "version id (required)")
		n := fs.Int("n", 100, "test examples")
		seed := fs.Int64("seed", 99, "test set seed")
		if err := parseCmd(fs, args); err != nil {
			return err
		}
		if *id == 0 {
			return fmt.Errorf("history: -v is required")
		}
		mh, err := core.Open(*repoDir)
		if err != nil {
			return err
		}
		hist, err := mh.Repo.EvalHistory(*id, core.TestSet(*n, *seed))
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %s\n", "SNAPSHOT", "ACCURACY")
		for _, h := range hist {
			fmt.Printf("%-16s %.4f\n", h.Snapshot, h.Accuracy)
		}
		return nil

	case "plot":
		// Matrix plots from high-order bytes only (paper Sec. IV-D: such
		// exploration queries do not need the low-order planes).
		fs := flag.NewFlagSet("plot", flag.ContinueOnError)
		repoDir := fs.String("repo", ".", "repository directory")
		id := fs.Int64("v", 0, "version id (required)")
		snap := fs.String("snap", dlv.LatestSnap, "snapshot label")
		layer := fs.String("layer", "", "layer name (default: all parametric layers)")
		prefix := fs.Int("prefix", 2, "byte planes to read (1..4)")
		out := fs.String("o", "weights.html", "output HTML file")
		if err := parseCmd(fs, args); err != nil {
			return err
		}
		if *id == 0 {
			return fmt.Errorf("plot: -v is required")
		}
		mh, err := core.Open(*repoDir)
		if err != nil {
			return err
		}
		weights, err := mh.Repo.Weights(*id, *snap, *prefix)
		if err != nil {
			return err
		}
		var svgs []string
		for _, name := range sortedNames(weights) {
			if *layer != "" && name != *layer {
				continue
			}
			svgs = append(svgs, report.WeightHeatmap(weights[name], name))
		}
		if len(svgs) == 0 {
			return fmt.Errorf("plot: no matching layer %q", *layer)
		}
		html, err := report.HeatmapPage(fmt.Sprintf("weights of v%d/%s (prefix %d)", *id, *snap, *prefix), svgs)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, []byte(html), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d heatmap(s) to %s using %d byte plane(s)\n", len(svgs), *out, *prefix)
		return nil

	case "query":
		fs := flag.NewFlagSet("query", flag.ContinueOnError)
		repoDir := fs.String("repo", ".", "repository directory")
		if err := parseCmd(fs, args); err != nil {
			return err
		}
		rest := fs.Args()
		if len(rest) != 1 {
			return fmt.Errorf("query: pass exactly one DQL statement")
		}
		mh, err := core.Open(*repoDir)
		if err != nil {
			return err
		}
		res, err := mh.Query(rest[0])
		if err != nil {
			return err
		}
		switch {
		case res.Versions != nil:
			for _, v := range res.Versions {
				fmt.Printf("%d\t%s\taccuracy=%.4f\n", v.ID, v.Name, v.Accuracy)
			}
		case res.Defs != nil:
			for _, def := range res.Defs {
				blob, err := def.ToJSON()
				if err != nil {
					return err
				}
				fmt.Println(string(blob))
			}
		default:
			for _, c := range res.Candidates {
				fmt.Printf("%s\tlr=%g momentum=%g batch=%d\tloss=%.4f acc=%.4f\n",
					c.Def.Name, c.Config.BaseLR, c.Config.Momentum, c.Config.Batch, c.Loss, c.Acc)
			}
		}
		return nil

	case "publish":
		fs := flag.NewFlagSet("publish", flag.ContinueOnError)
		repoDir := fs.String("repo", ".", "repository directory")
		remote := fs.String("remote", "", "hub server URL (required)")
		name := fs.String("name", "", "published repository name (required)")
		opts := hubFlags(fs)
		if err := parseCmd(fs, args); err != nil {
			return err
		}
		if *remote == "" || *name == "" {
			return fmt.Errorf("publish: -remote and -name are required")
		}
		mh, err := core.Open(*repoDir)
		if err != nil {
			return err
		}
		if err := mh.PublishWith(ctx, *remote, *name, opts()); err != nil {
			return err
		}
		fmt.Printf("published %s to %s\n", *name, *remote)
		return nil

	case "search":
		fs := flag.NewFlagSet("search", flag.ContinueOnError)
		remote := fs.String("remote", "", "hub server URL (required)")
		q := fs.String("q", "", "search query")
		opts := hubFlags(fs)
		if err := parseCmd(fs, args); err != nil {
			return err
		}
		if *remote == "" {
			return fmt.Errorf("search: -remote is required")
		}
		infos, err := core.SearchWith(ctx, *remote, *q, opts())
		if err != nil {
			return err
		}
		for _, info := range infos {
			fmt.Printf("%-24s %8d bytes  models=%v  published=%s\n",
				info.Name, info.SizeBytes, info.Models, info.PublishedAt)
		}
		return nil

	case "pull":
		fs := flag.NewFlagSet("pull", flag.ContinueOnError)
		remote := fs.String("remote", "", "hub server URL (required)")
		name := fs.String("name", "", "repository name (required)")
		dest := fs.String("dest", ".", "destination directory")
		opts := hubFlags(fs)
		if err := parseCmd(fs, args); err != nil {
			return err
		}
		if *remote == "" || *name == "" {
			return fmt.Errorf("pull: -remote and -name are required")
		}
		if _, err := core.PullWith(ctx, *remote, *name, *dest, opts()); err != nil {
			return err
		}
		fmt.Printf("pulled %s into %s\n", *name, *dest)
		return nil

	case "trace":
		fs := flag.NewFlagSet("trace", flag.ContinueOnError)
		remote := fs.String("remote", "", "hub server URL (required)")
		if err := parseCmd(fs, args); err != nil {
			return err
		}
		if *remote == "" {
			return fmt.Errorf("trace: -remote is required")
		}
		sel := "last"
		if fs.NArg() > 0 {
			sel = fs.Arg(0)
		}
		return runTrace(*remote, sel)

	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// hubFlags registers the shared transfer flags of the hub commands
// (publish, search, pull) and returns a closure resolving them to
// hub.Options after fs.Parse. Zero values fall back to library defaults;
// negatives disable the mechanism.
func hubFlags(fs *flag.FlagSet) func() hub.Options {
	timeout := fs.Duration("timeout", 0, "per-request timeout for control requests (0 = default, negative = none)")
	stall := fs.Duration("stall-timeout", 0, "abort a transfer making no progress for this long (0 = default, negative = none)")
	retries := fs.Int("retries", 0, "retry attempts for idempotent requests; pulls resume via Range (0 = default, negative = none)")
	return func() hub.Options {
		return hub.Options{Timeout: *timeout, StallTimeout: *stall, Retries: *retries}
	}
}

// parseFloatScheme resolves a CLI scheme spelling like "fixed-8" or
// "quant-4" into a floatenc.Scheme.
func parseFloatScheme(spec string) (floatenc.Scheme, error) {
	switch {
	case spec == "float16":
		return floatenc.Scheme{Kind: floatenc.Float16}, nil
	case spec == "bfloat16":
		return floatenc.Scheme{Kind: floatenc.BFloat16}, nil
	case strings.HasPrefix(spec, "fixed-"):
		bits, err := strconv.Atoi(spec[len("fixed-"):])
		if err != nil {
			return floatenc.Scheme{}, fmt.Errorf("bad scheme %q", spec)
		}
		return floatenc.Scheme{Kind: floatenc.Fixed, Bits: bits}, nil
	case strings.HasPrefix(spec, "quant-"):
		bits, err := strconv.Atoi(spec[len("quant-"):])
		if err != nil {
			return floatenc.Scheme{}, fmt.Errorf("bad scheme %q", spec)
		}
		return floatenc.Scheme{Kind: floatenc.QuantUniform, Bits: bits}, nil
	default:
		return floatenc.Scheme{}, fmt.Errorf("unknown float scheme %q (float16, bfloat16, fixed-N, quant-N)", spec)
	}
}

// sortedNames lists a weight snapshot's layer names deterministically.
func sortedNames(w map[string]*tensor.Matrix) []string {
	names := make([]string, 0, len(w))
	for k := range w {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
