package main

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"modelhub/internal/core"
	"modelhub/internal/data"
	"modelhub/internal/hub"
)

// The CLI is exercised through run() directly; stdout noise is fine under
// `go test` and the assertions are on state, not output text.

func repoArgs(dir string, args ...string) []string {
	return append([]string{"-repo", dir}, args...)
}

func TestCLILifecycle(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "init", []string{"-repo", dir}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "init", []string{"-repo", dir}); err == nil {
		t.Fatal("double init must fail")
	}
	// Stage a file, train two versions (one fine-tuned).
	if err := os.WriteFile(filepath.Join(dir, "notes.md"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "add", repoArgs(dir, "notes.md")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "train", repoArgs(dir, "-name", "lenet-v1", "-epochs", "1", "-checkpoint-every", "8", "-seed", "1")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "train", repoArgs(dir, "-name", "lenet-v2", "-epochs", "1", "-lr", "0.01", "-parent", "1", "-seed", "2")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "copy", repoArgs(dir, "-from", "1", "-name", "scaffold")); err != nil {
		t.Fatal(err)
	}
	for _, cmd := range [][2]string{{"list", ""}, {"desc", "1"}} {
		args := repoArgs(dir)
		if cmd[1] != "" {
			args = repoArgs(dir, "-v", cmd[1])
		}
		if err := run(context.Background(), cmd[0], args); err != nil {
			t.Fatalf("%s: %v", cmd[0], err)
		}
	}
	if err := run(context.Background(), "diff", repoArgs(dir, "-a", "1", "-b", "2")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "query", repoArgs(dir, `select m where m.name like "lenet%"`)); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "archive", repoArgs(dir, "-algo", "pas-mt", "-alpha", "2")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "eval", repoArgs(dir, "-v", "2", "-n", "20")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "eval", repoArgs(dir, "-v", "2", "-n", "10", "-progressive")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "eval", repoArgs(dir, "-v", "2", "-n", "10", "-prefix", "2")); err != nil {
		t.Fatal(err)
	}
}

func TestCLIHubRoundTrip(t *testing.T) {
	srv, err := hub.NewServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dir := t.TempDir()
	if err := run(context.Background(), "init", []string{"-repo", dir}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "train", repoArgs(dir, "-name", "shared", "-epochs", "1", "-seed", "3")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "publish", repoArgs(dir, "-remote", ts.URL, "-name", "cli-repo")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "search", []string{"-remote", ts.URL, "-q", "shared"}); err != nil {
		t.Fatal(err)
	}
	dest := t.TempDir()
	if err := run(context.Background(), "pull", []string{"-remote", ts.URL, "-name", "cli-repo", "-dest", dest}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "list", repoArgs(dest)); err != nil {
		t.Fatal(err)
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "list", repoArgs(dir)); err == nil {
		t.Fatal("list outside a repo must fail")
	}
	if err := run(context.Background(), "bogus", nil); err == nil {
		t.Fatal("unknown command must fail")
	}
	if err := run(context.Background(), "init", []string{"-repo", dir}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "train", repoArgs(dir)); err == nil {
		t.Fatal("train without -name must fail")
	}
	if err := run(context.Background(), "copy", repoArgs(dir)); err == nil {
		t.Fatal("copy without flags must fail")
	}
	if err := run(context.Background(), "desc", repoArgs(dir)); err == nil {
		t.Fatal("desc without -v must fail")
	}
	if err := run(context.Background(), "diff", repoArgs(dir)); err == nil {
		t.Fatal("diff without ids must fail")
	}
	if err := run(context.Background(), "eval", repoArgs(dir)); err == nil {
		t.Fatal("eval without -v must fail")
	}
	if err := run(context.Background(), "query", repoArgs(dir)); err == nil {
		t.Fatal("query without a statement must fail")
	}
	if err := run(context.Background(), "query", repoArgs(dir, "not a query")); err == nil {
		t.Fatal("bad DQL must fail")
	}
	if err := run(context.Background(), "add", repoArgs(dir)); err == nil {
		t.Fatal("add without files must fail")
	}
	if err := run(context.Background(), "publish", repoArgs(dir)); err == nil {
		t.Fatal("publish without remote must fail")
	}
	if err := run(context.Background(), "search", nil); err == nil {
		t.Fatal("search without remote must fail")
	}
	if err := run(context.Background(), "pull", nil); err == nil {
		t.Fatal("pull without flags must fail")
	}
}

func TestCLIHTMLReports(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "init", []string{"-repo", dir}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "train", repoArgs(dir, "-name", "m1", "-epochs", "1", "-seed", "4")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "train", repoArgs(dir, "-name", "m2", "-epochs", "1", "-lr", "0.05", "-seed", "5")); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		cmd  string
		args []string
	}{
		{"list", repoArgs(dir)},
		{"desc", repoArgs(dir, "-v", "1")},
		{"diff", repoArgs(dir, "-a", "1", "-b", "2")},
	} {
		out := filepath.Join(t.TempDir(), c.cmd+".html")
		if err := run(context.Background(), c.cmd, append(c.args, "-html", out)); err != nil {
			t.Fatalf("%s -html: %v", c.cmd, err)
		}
		blob, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(blob), "<!DOCTYPE html>") {
			t.Fatalf("%s: not an HTML document", c.cmd)
		}
	}
}

func TestCLIPlot(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "init", []string{"-repo", dir}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "train", repoArgs(dir, "-name", "m", "-epochs", "1", "-seed", "6")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "archive", repoArgs(dir, "-algo", "mst")); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "weights.html")
	// Plot from 2 byte planes only — the paper's partial-retrieval use case.
	if err := run(context.Background(), "plot", repoArgs(dir, "-v", "1", "-prefix", "2", "-o", out)); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "<svg") {
		t.Fatal("plot output missing SVG")
	}
	if err := run(context.Background(), "plot", repoArgs(dir, "-v", "1", "-layer", "ghost", "-o", out)); err == nil {
		t.Fatal("unknown layer must fail")
	}
}

func TestCLIArchiveCheckpointScheme(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "init", []string{"-repo", dir}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "train", repoArgs(dir, "-name", "m", "-epochs", "1", "-checkpoint-every", "8", "-seed", "7")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "archive", repoArgs(dir, "-algo", "mst", "-checkpoint-scheme", "fixed-8")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "archive", repoArgs(dir, "-checkpoint-scheme", "wat")); err == nil {
		t.Fatal("bad scheme must fail")
	}
	if err := run(context.Background(), "eval", repoArgs(dir, "-v", "1", "-n", "10")); err != nil {
		t.Fatal(err)
	}
}

func TestCLIEvalWithDataFile(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "init", []string{"-repo", dir}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "train", repoArgs(dir, "-name", "m", "-epochs", "1", "-seed", "8")); err != nil {
		t.Fatal(err)
	}
	points := filepath.Join(t.TempDir(), "points.json")
	if err := data.SaveExamples(points, core.TestSet(15, 77)); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "eval", repoArgs(dir, "-v", "1", "-data", points)); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "eval", repoArgs(dir, "-v", "1", "-data", "/nonexistent.json")); err == nil {
		t.Fatal("missing data file must fail")
	}
}

func TestCLIDiffWeights(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "init", []string{"-repo", dir}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "train", repoArgs(dir, "-name", "a", "-epochs", "1", "-seed", "9")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "train", repoArgs(dir, "-name", "b", "-epochs", "1", "-parent", "1", "-lr", "0.01", "-seed", "10")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "diff", repoArgs(dir, "-a", "1", "-b", "2", "-weights")); err != nil {
		t.Fatal(err)
	}
}

func TestCLIHistory(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "init", []string{"-repo", dir}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "train", repoArgs(dir, "-name", "m", "-epochs", "1", "-checkpoint-every", "8", "-seed", "11")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "history", repoArgs(dir, "-v", "1", "-n", "20")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "history", repoArgs(dir)); err == nil {
		t.Fatal("history without -v must fail")
	}
}

func TestCLIGCRepack(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "init", []string{"-repo", dir}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "train", repoArgs(dir, "-name", "m", "-epochs", "1", "-checkpoint-every", "8", "-seed", "21")); err != nil {
		t.Fatal(err)
	}
	// Before any archive exists, maintenance must fail with an error, not panic.
	if err := run(context.Background(), "gc", repoArgs(dir)); err == nil {
		t.Fatal("gc before archive must fail")
	}
	if err := run(context.Background(), "archive", repoArgs(dir, "-algo", "pas-mt", "-alpha", "2")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "gc", repoArgs(dir)); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "repack", repoArgs(dir)); err != nil {
		t.Fatal(err)
	}
	// The archive still checks out after compaction.
	if err := run(context.Background(), "eval", repoArgs(dir, "-v", "1", "-n", "10")); err != nil {
		t.Fatal(err)
	}
}

// Global flags placed after the subcommand must fail loudly, naming the
// misplaced flag — previously they were silently swallowed as positional
// arguments.
func TestCLIMisplacedGlobalFlags(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "init", []string{"-repo", dir}); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), "list", repoArgs(dir, "-v"))
	if err == nil || !strings.Contains(err.Error(), "before the subcommand") || !strings.Contains(err.Error(), "-v") {
		t.Fatalf("list -v: got %v, want misplaced-global-flag error naming -v", err)
	}
	err = run(context.Background(), "list", repoArgs(dir, "-log-level=debug"))
	if err == nil || !strings.Contains(err.Error(), "before the subcommand") || !strings.Contains(err.Error(), "-log-level") {
		t.Fatalf("list -log-level=debug: got %v, want misplaced-global-flag error naming -log-level", err)
	}
	// Same when the flag parser itself rejects the token (flag position
	// rather than trailing argument).
	err = run(context.Background(), "gc", append([]string{"-log-level", "debug"}, repoArgs(dir)...))
	if err == nil || !strings.Contains(err.Error(), "before the subcommand") {
		t.Fatalf("gc -log-level: got %v, want misplaced-global-flag error", err)
	}
	// eval defines its own -v (version id); it must keep working.
	if err := run(context.Background(), "train", repoArgs(dir, "-name", "m", "-epochs", "1", "-seed", "22")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "eval", repoArgs(dir, "-v", "1", "-n", "10")); err != nil {
		t.Fatal(err)
	}
}
