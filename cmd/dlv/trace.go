package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"modelhub/internal/obs"
)

// runTrace implements `dlv trace -remote URL [last|TRACE_ID]`: it fetches
// the server's flight recorder (/debug/traces) and renders one trace as a
// text waterfall — offsets, durations, parent/child indentation, per-span
// service, attributes, and events. "last" (the default) selects the newest
// collected trace.
func runTrace(remote, sel string) error {
	base := strings.TrimRight(remote, "/")
	id := sel
	if sel == "last" {
		var err error
		if id, err = newestTraceID(base); err != nil {
			return err
		}
	}
	var det obs.TraceDetail
	if err := fetchJSON(base+"/debug/traces?id="+id, &det); err != nil {
		return err
	}
	printWaterfall(det)
	return nil
}

// newestTraceID asks the server for its trace list and returns the newest.
func newestTraceID(base string) (string, error) {
	var list struct {
		Traces []obs.TraceSummary `json:"traces"`
	}
	if err := fetchJSON(base+"/debug/traces", &list); err != nil {
		return "", err
	}
	if len(list.Traces) == 0 {
		return "", fmt.Errorf("trace: the server has no collected traces (is it running with tracing on, and did a traced command run?)")
	}
	return list.Traces[0].ID, nil
}

func fetchJSON(url string, v any) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("trace: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("trace: %s returned %d: %s", url, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("trace: decoding %s: %v", url, err)
	}
	return nil
}

// printWaterfall renders the trace as an indented tree in start order, with
// a proportional duration bar against the trace's total duration.
func printWaterfall(det obs.TraceDetail) {
	fmt.Printf("trace %s  root=%s  spans=%d  services=%v  duration=%s",
		det.ID, det.Root, det.Spans, det.Services, time.Duration(det.DurationNS))
	if det.Error {
		fmt.Print("  ERROR")
	}
	fmt.Println()
	// Index spans and group children under their parents.
	children := map[string][]obs.SpanView{}
	local := map[string]bool{}
	for _, sv := range det.SpansDetail {
		local[sv.SpanID] = true
	}
	var roots []obs.SpanView
	for _, sv := range det.SpansDetail {
		if sv.ParentID != "" && local[sv.ParentID] {
			children[sv.ParentID] = append(children[sv.ParentID], sv)
		} else {
			roots = append(roots, sv)
		}
	}
	byStart := func(s []obs.SpanView) {
		sort.SliceStable(s, func(a, b int) bool { return s[a].OffsetNS < s[b].OffsetNS })
	}
	byStart(roots)
	var walk func(sv obs.SpanView, depth int)
	walk = func(sv obs.SpanView, depth int) {
		printSpan(sv, depth, det.DurationNS)
		kids := children[sv.SpanID]
		byStart(kids)
		for _, kid := range kids {
			walk(kid, depth+1)
		}
	}
	for _, root := range roots {
		walk(root, 0)
	}
}

// printSpan renders one waterfall row plus its attributes and events.
func printSpan(sv obs.SpanView, depth int, totalNS int64) {
	indent := strings.Repeat("  ", depth)
	svc := ""
	if sv.Service != "" {
		svc = " (" + sv.Service + ")"
	}
	errMark := ""
	if sv.Error {
		errMark = "  ERROR"
	}
	fmt.Printf("%s%-*s  +%-10s %-10s %s%s%s\n",
		indent, 24-2*depth, sv.Name,
		time.Duration(sv.OffsetNS).Round(time.Microsecond),
		time.Duration(sv.DurationNS).Round(time.Microsecond),
		bar(sv.OffsetNS, sv.DurationNS, totalNS), svc, errMark)
	for _, a := range sv.Attrs {
		fmt.Printf("%s    %s=%s\n", indent, a.Key, a.Value)
	}
	for _, ev := range sv.Events {
		fmt.Printf("%s    event %s", indent, ev.Name)
		for _, a := range ev.Attrs {
			// Stacks are multi-line; keep the row single-line readable.
			v := a.Value
			if i := strings.IndexByte(v, '\n'); i >= 0 {
				v = v[:i] + "..."
			}
			fmt.Printf(" %s=%s", a.Key, v)
		}
		fmt.Println()
	}
}

// bar renders a 32-column proportional bar: '.' before the span starts,
// '=' while it runs.
func bar(offset, duration, total int64) string {
	const cols = 32
	if total <= 0 {
		return strings.Repeat("=", cols)
	}
	start := int(offset * cols / total)
	end := int((offset + duration) * cols / total)
	if start >= cols {
		start = cols - 1
	}
	if end <= start {
		end = start + 1
	}
	if end > cols {
		end = cols
	}
	return strings.Repeat(".", start) + strings.Repeat("=", end-start) + strings.Repeat(".", cols-end)
}
