// Command mhlint runs ModelHub's custom static-analysis suite: a registry
// of analyzers enforcing the concurrency, error-hygiene, and
// numeric-determinism invariants of this codebase (see DESIGN.md, "The
// mhlint analyzer suite").
//
// Usage:
//
//	mhlint [-only a,b] [-suppressed] [-list] [-json FILE] \
//	       [-baseline FILE] [-write-baseline FILE] [packages...]
//
// Packages default to ./... (the whole module). Exit codes: 0 clean,
// 1 unsuppressed findings, 2 usage or load failure. Findings are reported
// as file:line:col [analyzer] message and suppressed in place with
//
//	//mhlint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it. With -baseline,
// findings recorded in the committed baseline file are accepted (reported
// but non-fatal) and only NEW findings fail the run; -write-baseline
// regenerates that file from the current findings. -json writes the full
// machine-readable report ("-" for stdout) for CI artifacts.
package main

import (
	"flag"
	"fmt"
	"os"

	"modelhub/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer subset to run")
	suppressed := flag.Bool("suppressed", false, "also print suppressed findings with their ignore reasons")
	jsonOut := flag.String("json", "", "write the machine-readable report to `file` (\"-\" for stdout)")
	baselinePath := flag.String("baseline", "", "accept findings recorded in baseline `file`; fail only on new ones")
	writeBaseline := flag.String("write-baseline", "", "write current findings as a new baseline to `file` and exit 0")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mhlint [flags] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *baselinePath != "" && *writeBaseline != "" {
		fmt.Fprintln(os.Stderr, "mhlint: -baseline and -write-baseline are mutually exclusive")
		os.Exit(2)
	}

	analyzers := lint.All()
	if *only != "" {
		var err error
		if analyzers, err = lint.ByName(*only); err != nil {
			fmt.Fprintln(os.Stderr, "mhlint:", err)
			os.Exit(2)
		}
	}

	pkgs, err := lint.Load(".", flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "mhlint:", err)
		os.Exit(2)
	}
	rel := func(p string) string { return p }
	if len(pkgs) > 0 {
		rel = lint.ModuleRel(pkgs[0].Root)
	}

	res := lint.Run(pkgs, analyzers)

	if *writeBaseline != "" {
		data, err := lint.MakeBaseline(res.Findings, rel).Marshal()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mhlint:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*writeBaseline, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mhlint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "mhlint: wrote %d finding(s) to %s\n", len(res.Findings), *writeBaseline)
		return
	}

	fresh, accepted := res.Findings, []lint.Finding(nil)
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mhlint:", err)
			os.Exit(2)
		}
		base, err := lint.LoadBaseline(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mhlint:", err)
			os.Exit(2)
		}
		var unmatched int
		fresh, accepted, unmatched = base.Split(res.Findings, rel)
		if unmatched > 0 {
			fmt.Fprintf(os.Stderr, "mhlint: note: %d baseline entr(ies) matched no finding; regenerate with -write-baseline\n", unmatched)
		}
	}

	for _, f := range fresh {
		fmt.Println(f)
	}
	for _, f := range accepted {
		fmt.Printf("%s (baselined)\n", f)
	}
	if *suppressed {
		for _, f := range res.Suppressed {
			fmt.Printf("%s (suppressed: %s)\n", f, f.SuppressedBy)
		}
	}

	if *jsonOut != "" {
		module := ""
		if len(pkgs) > 0 {
			module = pkgs[0].Module
		}
		data, err := lint.Report(module, len(pkgs), analyzers, fresh, accepted, res.Suppressed, rel).Marshal()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mhlint:", err)
			os.Exit(2)
		}
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mhlint:", err)
			os.Exit(2)
		}
	}

	if n := len(fresh); n > 0 {
		fmt.Fprintf(os.Stderr, "mhlint: %d finding(s) in %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
}
