// Command mhlint runs ModelHub's custom static-analysis suite: a registry
// of analyzers enforcing the concurrency, error-hygiene, and
// numeric-determinism invariants of this codebase (see DESIGN.md, "The
// mhlint analyzer suite").
//
// Usage:
//
//	mhlint [-only a,b] [-suppressed] [-list] [packages...]
//
// Packages default to ./... (the whole module). Exit codes: 0 clean,
// 1 unsuppressed findings, 2 usage or load failure. Findings are reported
// as file:line:col [analyzer] message and suppressed in place with
//
//	//mhlint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"os"

	"modelhub/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer subset to run")
	suppressed := flag.Bool("suppressed", false, "also print suppressed findings with their ignore reasons")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mhlint [flags] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *only != "" {
		var err error
		if analyzers, err = lint.ByName(*only); err != nil {
			fmt.Fprintln(os.Stderr, "mhlint:", err)
			os.Exit(2)
		}
	}

	pkgs, err := lint.Load(".", flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "mhlint:", err)
		os.Exit(2)
	}

	res := lint.Run(pkgs, analyzers)
	for _, f := range res.Findings {
		fmt.Println(f)
	}
	if *suppressed {
		for _, f := range res.Suppressed {
			fmt.Printf("%s (suppressed: %s)\n", f, f.SuppressedBy)
		}
	}
	if n := len(res.Findings); n > 0 {
		fmt.Fprintf(os.Stderr, "mhlint: %d finding(s) in %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
}
