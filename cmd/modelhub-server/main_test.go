package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"modelhub/internal/core"
	"modelhub/internal/hub"
	"modelhub/internal/obs"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestServerMuxWithMetrics(t *testing.T) {
	defer obs.Disable() // newMux(_, true) enables the global gate
	srv, err := hub.NewServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newMux(srv.Handler(), true, obs.DefaultTraceBufferSize))
	defer ts.Close()

	// The hub API answers through the mux.
	if code, _ := get(t, ts.URL+"/api/search?q="); code != http.StatusOK {
		t.Fatalf("/api/search status = %d", code)
	}
	// /metrics returns well-formed JSON with the request just counted.
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	var metrics map[string]any
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v", err)
	}
	if v, _ := metrics["hub.http.requests"].(float64); v < 1 {
		t.Fatalf("hub.http.requests = %v, want >= 1", metrics["hub.http.requests"])
	}
	// pprof is mounted.
	if code, _ := get(t, ts.URL+"/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
}

func TestServerMuxWithoutMetrics(t *testing.T) {
	srv, err := hub.NewServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newMux(srv.Handler(), false, 0))
	defer ts.Close()
	if code, _ := get(t, ts.URL+"/metrics"); code != http.StatusNotFound {
		t.Fatalf("/metrics without -metrics: status = %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ without -metrics: status = %d, want 404", code)
	}
}

func TestConfigureLogging(t *testing.T) {
	defer obs.SetLogger(nil)
	if err := configureLogging(false, ""); err != nil {
		t.Fatalf("default logging: %v", err)
	}
	if err := configureLogging(true, ""); err != nil {
		t.Fatalf("-v: %v", err)
	}
	if err := configureLogging(false, "debug"); err != nil {
		t.Fatalf("-log-level debug: %v", err)
	}
	if err := configureLogging(false, "shout"); err == nil {
		t.Fatal("bad -log-level accepted")
	}
}

func TestCutResponseWriterTruncatesAtBudget(t *testing.T) {
	rec := httptest.NewRecorder()
	cw := &cutResponseWriter{ResponseWriter: rec, remaining: 10}
	n, err := cw.Write([]byte("0123456789abcdef"))
	if n != 10 || err == nil {
		t.Fatalf("first write = %d, %v; want 10 bytes and a cut error", n, err)
	}
	if !cw.cut {
		t.Fatal("writer not marked cut")
	}
	if n, err := cw.Write([]byte("more")); n != 0 || err == nil {
		t.Fatalf("write after cut = %d, %v; want 0 and an error", n, err)
	}
	if got := rec.Body.String(); got != "0123456789" {
		t.Fatalf("flushed body = %q", got)
	}
}

func TestCutResponseWriterPassesSmallWrites(t *testing.T) {
	rec := httptest.NewRecorder()
	cw := &cutResponseWriter{ResponseWriter: rec, remaining: 100}
	if n, err := cw.Write([]byte("hello")); n != 5 || err != nil {
		t.Fatalf("write = %d, %v", n, err)
	}
	if cw.cut || cw.remaining != 95 {
		t.Fatalf("cut = %v, remaining = %d", cw.cut, cw.remaining)
	}
}

// End to end through the fault-injection middleware: the first pull is cut
// and the connection severed, and the client transparently resumes via
// Range and lands a verified repository.
func TestFlakyPullCutClientResumes(t *testing.T) {
	srv, err := hub.NewServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(flakyPullCut(srv.Handler(), 64))
	defer ts.Close()

	client := hub.NewClientWith(ts.URL, hub.Options{
		BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
	})
	src := t.TempDir()
	mh, err := core.Init(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mh.TrainAndCommit("m", core.TrainOptions{Epochs: 1, Examples: 60}); err != nil {
		t.Fatal(err)
	}
	if err := client.Publish(src, "r"); err != nil {
		t.Fatal(err)
	}

	dest := t.TempDir()
	if err := client.Pull("r", dest); err != nil {
		t.Fatalf("pull through fault injection: %v", err)
	}
	if _, err := core.Open(dest); err != nil {
		t.Fatalf("pulled repository does not open: %v", err)
	}
}
