// Command modelhub-server runs the hosted ModelHub service (paper Fig. 3,
// remote side): an HTTP server that stores published DLV repositories and
// answers search and pull requests from dlv clients.
//
// Usage:
//
//	modelhub-server [-addr :8080] [-data DIR] [-metrics] [-v] [-log-level LEVEL]
//
// With -metrics, the live metrics registry is enabled and served as JSON at
// /metrics (expvar-style flat keys), and the net/http/pprof profiling
// handlers are mounted under /debug/pprof/. With -v (or -log-level), hub
// request logs go to stderr via log/slog.
package main

import (
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"

	"modelhub/internal/hub"
	"modelhub/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data", "modelhub-data", "directory for published repositories")
	metrics := flag.Bool("metrics", false, "enable the metrics registry; serve /metrics and /debug/pprof/")
	verbose := flag.Bool("v", false, "log requests to stderr at info level")
	logLevel := flag.String("log-level", "", "log to stderr at this level (debug, info, warn, error)")
	flag.Parse()

	if err := configureLogging(*verbose, *logLevel); err != nil {
		log.Fatalf("modelhub-server: %v", err)
	}
	srv, err := hub.NewServer(*dataDir)
	if err != nil {
		log.Fatalf("modelhub-server: %v", err)
	}
	log.Printf("modelhub-server listening on %s, storing repositories in %s", *addr, *dataDir)
	if err := http.ListenAndServe(*addr, newMux(srv, *metrics)); err != nil {
		log.Fatalf("modelhub-server: %v", err)
	}
}

// configureLogging installs a stderr slog handler when -v or -log-level is
// given; otherwise the obs default (silent) stays in place.
func configureLogging(verbose bool, level string) error {
	if !verbose && level == "" {
		return nil
	}
	lvl := slog.LevelInfo
	if level != "" {
		var err error
		if lvl, err = obs.ParseLevel(level); err != nil {
			return err
		}
	}
	obs.SetLogger(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))
	return nil
}

// newMux mounts the hub API and, when metrics is set, enables the obs
// registry and adds the /metrics and /debug/pprof/ endpoints.
func newMux(srv *hub.Server, metrics bool) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if metrics {
		obs.Enable()
		mux.Handle("/metrics", obs.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
