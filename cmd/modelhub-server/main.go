// Command modelhub-server runs the hosted ModelHub service (paper Fig. 3,
// remote side): an HTTP server that stores published DLV repositories and
// answers search and pull requests from dlv clients.
//
// Usage:
//
//	modelhub-server [-addr :8080] [-data DIR] [-metrics] [-trace-buffer N]
//	                [-v] [-log-level LEVEL] [-drain-timeout D] [-flaky-pull-cut N]
//	                [-peers URL,URL,...] [-self URL] [-replicas N]
//	                [-repair-interval D] [-gateway]
//
// Cluster mode: with -peers (and -self naming this node's own URL in that
// list), the node joins a consistent-hash cluster — publishes route to each
// name's N owners (-replicas, default 3), owners replicate to each other,
// and a background anti-entropy loop (-repair-interval, default 30s,
// negative disables) re-pulls missing, stale, or corrupt replicas.
//
// With -gateway, the process is a stateless routing tier instead of a
// storage node: it serves the same client API, routing publishes and pulls
// by ring position with failover and fanning searches out to all peers.
// Gateways take -peers but no -data or -self.
//
// With -metrics, the live metrics registry is enabled and served as JSON at
// /metrics (expvar-style flat keys), the net/http/pprof profiling handlers
// are mounted under /debug/pprof/, and distributed tracing is on: the
// newest -trace-buffer traces (default 256; 0 disables tracing) are held in
// the in-process flight recorder at /debug/traces, which also accepts
// client-side trace exports on POST. With -v (or -log-level), hub request
// logs go to stderr via log/slog, stamped with trace_id/span_id when made
// under a traced request.
//
// On SIGTERM or SIGINT the server shuts down gracefully: the listener
// closes immediately and in-flight requests get up to -drain-timeout to
// finish before the process exits.
//
// -flaky-pull-cut N is a fault-injection hook for the transfer-path smoke
// tests: every full-archive pull response (one without a Range header) is
// cut after N bytes and the connection is severed, exactly as a server
// killed mid-stream would — clients are expected to resume via Range.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"modelhub/internal/hub"
	"modelhub/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data", "modelhub-data", "directory for published repositories")
	metrics := flag.Bool("metrics", false, "enable the metrics registry; serve /metrics and /debug/pprof/")
	traceBuffer := flag.Int("trace-buffer", obs.DefaultTraceBufferSize,
		"with -metrics: keep the newest N traces in the /debug/traces flight recorder (0 disables tracing)")
	verbose := flag.Bool("v", false, "log requests to stderr at info level")
	logLevel := flag.String("log-level", "", "log to stderr at this level (debug, info, warn, error)")
	drain := flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	flakyCut := flag.Int64("flaky-pull-cut", 0, "fault injection: sever full-archive pull responses after N bytes (testing only)")
	peersFlag := flag.String("peers", "", "comma-separated base URLs of the cluster's storage nodes")
	selfURL := flag.String("self", "", "this node's own base URL as it appears to peers (required with -peers, ignored with -gateway)")
	replicas := flag.Int("replicas", 0, "N-way replication factor (0 = default 3, clamped to the peer count)")
	repairInterval := flag.Duration("repair-interval", 0, "anti-entropy sweep period (0 = default 30s, negative disables)")
	gateway := flag.Bool("gateway", false, "run as a stateless routing gateway over -peers instead of a storage node")
	flag.Parse()

	if err := configureLogging(*verbose, *logLevel); err != nil {
		log.Fatalf("modelhub-server: %v", err)
	}
	clusterCfg := hub.ClusterConfig{
		Self:           *selfURL,
		Peers:          splitPeers(*peersFlag),
		Replicas:       *replicas,
		VNodes:         0,
		RepairInterval: *repairInterval,
	}
	var handler http.Handler
	stopRepair := func() {}
	switch {
	case *gateway:
		if *peersFlag == "" {
			log.Fatalf("modelhub-server: -gateway requires -peers")
		}
		gw, err := hub.NewGateway(clusterCfg)
		if err != nil {
			log.Fatalf("modelhub-server: %v", err)
		}
		handler = newMux(gw.Handler(), *metrics, *traceBuffer)
		log.Printf("modelhub-server: gateway over %d peer(s), %d-way replication", len(clusterCfg.Peers), *replicas)
	default:
		srv, err := hub.NewServer(*dataDir)
		if err != nil {
			log.Fatalf("modelhub-server: %v", err)
		}
		if *peersFlag != "" {
			if err := srv.EnableCluster(clusterCfg); err != nil {
				log.Fatalf("modelhub-server: %v", err)
			}
			stopRepair = srv.StartAntiEntropy()
			log.Printf("modelhub-server: cluster node %s, %d peer(s)", *selfURL, len(clusterCfg.Peers))
		}
		handler = newMux(srv.Handler(), *metrics, *traceBuffer)
	}
	defer stopRepair()
	if *flakyCut > 0 {
		log.Printf("modelhub-server: FAULT INJECTION: cutting full pull responses after %d bytes", *flakyCut)
		handler = flakyPullCut(handler, *flakyCut)
	}
	hs := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("modelhub-server listening on %s, storing repositories in %s", *addr, *dataDir)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("modelhub-server: %v", err)
		}
	case <-ctx.Done():
		stop()
		log.Printf("modelhub-server: shutting down, draining for up to %s", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("modelhub-server: drain incomplete, forcing close: %v", err)
			//nolint:errcheck // the process is exiting either way
			_ = hs.Close()
		}
		<-errc
		log.Printf("modelhub-server: shutdown complete")
	}
}

// configureLogging installs a stderr slog handler when -v or -log-level is
// given; otherwise the obs default (silent) stays in place.
func configureLogging(verbose bool, level string) error {
	if !verbose && level == "" {
		return nil
	}
	lvl := slog.LevelInfo
	if level != "" {
		var err error
		if lvl, err = obs.ParseLevel(level); err != nil {
			return err
		}
	}
	obs.SetLogger(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))
	return nil
}

// splitPeers parses the -peers flag into a list of base URLs, dropping
// empty entries and surrounding whitespace.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// newMux mounts the hub API (storage node or gateway) and, when metrics is
// set, enables the obs registry plus tracing and adds the /metrics and
// /debug/pprof/ endpoints (/debug/traces is mounted by the hub handler
// itself).
func newMux(api http.Handler, metrics bool, traceBuffer int) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", api)
	if metrics {
		obs.Enable()
		obs.SetService("modelhub-server")
		if traceBuffer > 0 {
			obs.EnableTracing()
			obs.SetTraceBufferSize(traceBuffer)
		}
		mux.Handle("/metrics", obs.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// flakyPullCut wraps next so that full-archive pull responses (no Range
// header) are truncated after n body bytes and the underlying connection is
// hijacked and closed — the client observes exactly what a server crash
// mid-stream produces. Range requests pass through untouched, so a
// resuming client completes the transfer.
func flakyPullCut(next http.Handler, n int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/api/pull" || r.Header.Get("Range") != "" {
			next.ServeHTTP(w, r)
			return
		}
		cw := &cutResponseWriter{ResponseWriter: w, remaining: n}
		next.ServeHTTP(cw, r)
		if cw.cut {
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					//nolint:errcheck // the connection is being severed on purpose
					_ = conn.Close()
				}
			}
		}
	})
}

// cutResponseWriter forwards writes until its byte budget is spent, then
// reports a write error so the handler stops streaming.
type cutResponseWriter struct {
	http.ResponseWriter
	remaining int64
	cut       bool
}

var errStreamCut = errors.New("stream cut (fault injection)")

func (c *cutResponseWriter) Write(p []byte) (int, error) {
	if c.cut {
		return 0, errStreamCut
	}
	if int64(len(p)) <= c.remaining {
		n, err := c.ResponseWriter.Write(p)
		c.remaining -= int64(n)
		return n, err
	}
	n, err := c.ResponseWriter.Write(p[:c.remaining])
	c.remaining = 0
	c.cut = true
	if err != nil {
		return n, err
	}
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
	return n, errStreamCut
}
