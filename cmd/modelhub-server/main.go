// Command modelhub-server runs the hosted ModelHub service (paper Fig. 3,
// remote side): an HTTP server that stores published DLV repositories and
// answers search and pull requests from dlv clients.
//
// Usage:
//
//	modelhub-server [-addr :8080] [-data DIR]
package main

import (
	"flag"
	"log"
	"net/http"

	"modelhub/internal/hub"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data", "modelhub-data", "directory for published repositories")
	flag.Parse()

	srv, err := hub.NewServer(*dataDir)
	if err != nil {
		log.Fatalf("modelhub-server: %v", err)
	}
	log.Printf("modelhub-server listening on %s, storing repositories in %s", *addr, *dataDir)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatalf("modelhub-server: %v", err)
	}
}
