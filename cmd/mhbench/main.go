// Command mhbench regenerates the paper's evaluation tables and figures
// (Sec. V) and prints the same rows/series the paper reports. See DESIGN.md
// for the per-experiment index and EXPERIMENTS.md for paper-vs-measured
// notes.
//
// Usage:
//
//	mhbench -exp all            # every experiment
//	mhbench -exp fig6a          # one of: tab1 fig6a fig6b fig6c fig6d tab4 tab5 retrieval training ablations
//	mhbench -exp fig6c -scale 3 # scale up the synthetic workloads
//	mhbench -exp all -metrics BENCH_metrics.json  # dump the obs registry after the run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"modelhub/internal/experiments"
	"modelhub/internal/obs"
	"modelhub/internal/synth"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all tab1 fig6a fig6b fig6c fig6d tab4 tab5 retrieval training scale scaling ablations storebench")
	scale := flag.Int("scale", 1, "workload scale multiplier for synthetic experiments")
	seed := flag.Int64("seed", 1, "random seed")
	metricsFile := flag.String("metrics", "", "enable the obs registry and write its JSON snapshot to this file on exit")
	storeJSON := flag.String("store-json", "", "write the storebench layout comparison to this JSON file")
	scalingJSON := flag.String("scaling-json", "", "write the multicore scaling sweep to this JSON file")
	flag.Parse()

	if *metricsFile != "" {
		obs.Enable()
		defer writeMetrics(*metricsFile)
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := f(); err != nil {
			log.Fatalf("mhbench %s: %v", name, err)
		}
		fmt.Println()
	}

	run("tab1", func() error {
		rows, err := experiments.RunTable1()
		if err != nil {
			return err
		}
		experiments.PrintTable1(os.Stdout, rows)
		return nil
	})

	run("fig6a", func() error {
		var models []*experiments.TrainedModel
		for _, arch := range []string{"lenet", "alexnet-mini", "vgg-mini"} {
			m, err := experiments.TrainFixture(arch, 400**scale, 3, *seed)
			if err != nil {
				return err
			}
			models = append(models, m)
		}
		rows, err := experiments.RunFig6a(models)
		if err != nil {
			return err
		}
		experiments.PrintFig6a(os.Stdout, rows)
		return nil
	})

	run("fig6b", func() error {
		rows, err := experiments.RunFig6b(*seed)
		if err != nil {
			return err
		}
		experiments.PrintFig6b(os.Stdout, rows)
		return nil
	})

	run("fig6c", func() error {
		rows, bounds, err := experiments.RunFig6c(experiments.Fig6cConfig{
			Snapshots: 30 * *scale, Seed: *seed,
		})
		if err != nil {
			return err
		}
		experiments.PrintFig6c(os.Stdout, rows, bounds)
		fmt.Println()
		dir, err := os.MkdirTemp("", "mhbench-fig6c-sd-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		sdRows, sdBounds, err := experiments.RunFig6cSD(dir, synth.SDConfig{
			Versions: 4 * *scale, SnapshotsPerVersion: 3, ItersPerSnapshot: 6,
			TrainExamples: 240, Seed: *seed,
		}, nil)
		if err != nil {
			return err
		}
		experiments.PrintFig6cSD(os.Stdout, sdRows, sdBounds)
		return nil
	})

	run("fig6d", func() error {
		m, err := experiments.TrainFixture("lenet", 600**scale, 4, *seed)
		if err != nil {
			return err
		}
		rows, err := experiments.RunFig6d(m, 120**scale)
		if err != nil {
			return err
		}
		experiments.PrintFig6d(os.Stdout, rows)
		return nil
	})

	run("tab4", func() error {
		rows, err := experiments.RunTable4(*seed)
		if err != nil {
			return err
		}
		experiments.PrintTable4(os.Stdout, rows)
		return nil
	})

	run("tab5", func() error {
		dir, err := os.MkdirTemp("", "mhbench-tab5-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		rows, err := experiments.RunTable5(dir, experiments.Tab5Config{
			Versions: 3 * *scale, Seed: *seed,
		})
		if err != nil {
			return err
		}
		experiments.PrintTable5(os.Stdout, rows)
		return nil
	})

	run("retrieval", func() error {
		rows, err := experiments.RunRetrieval(experiments.RetrievalConfig{
			Snapshots: 8 * *scale, Seed: *seed,
		})
		if err != nil {
			return err
		}
		experiments.PrintRetrieval(os.Stdout, rows)
		return nil
	})

	run("training", func() error {
		rows, err := experiments.RunTraining(experiments.TrainingConfig{
			Iters: 8 * *scale, Examples: 240 * *scale, Seed: *seed,
		})
		if err != nil {
			return err
		}
		experiments.PrintTraining(os.Stdout, rows)
		return nil
	})

	run("scale", func() error {
		sizes := []int{25, 50, 100, 200}
		if *scale > 1 {
			for i := range sizes {
				sizes[i] *= *scale
			}
		}
		rows, err := experiments.RunScale(*seed, sizes, 1.6)
		if err != nil {
			return err
		}
		experiments.PrintScale(os.Stdout, rows)
		return nil
	})

	run("storebench", func() error {
		rows, err := experiments.RunStoreBench(experiments.StoreBenchConfig{
			Snapshots: 8 * *scale, Seed: *seed,
		})
		if err != nil {
			return err
		}
		experiments.PrintStoreBench(os.Stdout, rows)
		if *storeJSON != "" {
			if err := writeStoreBench(*storeJSON, rows); err != nil {
				return err
			}
			fmt.Printf("wrote layout comparison to %s\n", *storeJSON)
		}
		return nil
	})

	run("scaling", func() error {
		rows, err := experiments.RunScaling(experiments.ScalingConfig{
			Scale: *scale, Seed: *seed,
		})
		if err != nil {
			return err
		}
		experiments.PrintScaling(os.Stdout, rows)
		if *scalingJSON != "" {
			if err := experiments.WriteScalingJSON(*scalingJSON, rows, experiments.RunMeta()); err != nil {
				return err
			}
			fmt.Printf("wrote scaling sweep to %s\n", *scalingJSON)
		}
		return nil
	})

	run("ablations", func() error {
		budget, err := experiments.RunAblationBudgetSplit(*seed, nil)
		if err != nil {
			return err
		}
		experiments.PrintAblationBudget(os.Stdout, budget)
		fmt.Println()
		z, err := experiments.RunAblationZlibLevel(*seed)
		if err != nil {
			return err
		}
		experiments.PrintAblationZlib(os.Stdout, z)
		fmt.Println()
		dir, err := os.MkdirTemp("", "mhbench-gran-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		gran, err := experiments.RunAblationGranularity(dir, *seed, nil)
		if err != nil {
			return err
		}
		experiments.PrintAblationGranularity(os.Stdout, gran)
		return nil
	})
}

// writeStoreBench records the storage-layout comparison in the BENCH_*.json
// result-file format (make bench-store → BENCH_store.json).
func writeStoreBench(path string, rows []experiments.StoreBenchRow) error {
	benchmarks := map[string]any{}
	for _, r := range rows {
		benchmarks[r.Layout] = map[string]any{
			"cold_checkout_us_per_snapshot": r.ColdCheckout.Microseconds(),
			"payload_file_opens":            r.FileOpens,
			"disk_bytes":                    r.DiskBytes,
			"stored_chunks":                 r.StoredChunks,
		}
	}
	doc := map[string]any{
		"description": "PAS storage layouts on one drifting checkpoint chain with frozen layers (mhbench -exp storebench): cold full-resolution checkout of every snapshot on a freshly opened store. payload_file_opens counts pas.chunk.opens (legacy, one file per chunk) vs pas.segment.opens (gen-2 packed segments); the segment layout must open strictly fewer files and, with content-addressed dedup, store no more payload bytes.",
		"meta":        experiments.RunMeta(),
		"benchmarks":  benchmarks,
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// writeMetrics dumps the obs registry snapshot collected across the run —
// the live counterpart of the BENCH_*.json result files — wrapped with the
// hardware metadata every mhbench JSON output carries.
func writeMetrics(path string) {
	blob, err := obs.SnapshotJSON()
	if err != nil {
		log.Fatalf("mhbench: snapshotting metrics: %v", err)
	}
	doc := map[string]any{
		"meta":    experiments.RunMeta(),
		"metrics": json.RawMessage(blob),
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("mhbench: encoding metrics: %v", err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		log.Fatalf("mhbench: writing %s: %v", path, err)
	}
	fmt.Printf("wrote metrics snapshot to %s\n", path)
}
