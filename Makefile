GO ?= go
FUZZTIME ?= 5s

.PHONY: build vet fmt-check lint lint-baseline test test-race test-layouts test-scaling fuzz-smoke obs-smoke cluster-smoke bench bench-train bench-store bench-scaling check help

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail if any file is not gofmt-clean (prints the offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Run the in-repo analyzer suite (cmd/mhlint) against the committed
# baseline: only findings NOT in lint.baseline.json fail. Findings are
# suppressed inline with `//mhlint:ignore <analyzer> <reason>`; run with
# -suppressed to audit them, -list to see the analyzers. `make lint-baseline`
# regenerates the baseline after an audited burn-down.
lint:
	$(GO) run ./cmd/mhlint -baseline lint.baseline.json ./...

lint-baseline:
	$(GO) run ./cmd/mhlint -write-baseline lint.baseline.json ./...

test:
	$(GO) test ./...

# Race-detect the whole module. The concurrency hot spots are the PAS
# retrieval engine, the training/inference runtime, the blocked GEMM kernel,
# and parallel DQL model enumeration, but -race is cheap enough to run on
# everything.
test-race:
	$(GO) test -race ./...

# Short native-fuzzing smoke runs (one target per invocation; go test only
# accepts -fuzz for a single package).
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDQLParse -fuzztime=$(FUZZTIME) ./internal/dql
	$(GO) test -run='^$$' -fuzz=FuzzSegmentRoundTrip -fuzztime=$(FUZZTIME) ./internal/floatenc
	$(GO) test -run='^$$' -fuzz=FuzzSegmentIndex -fuzztime=$(FUZZTIME) ./internal/pas
	$(GO) test -run='^$$' -fuzz=FuzzLintDirectiveAndBaseline -fuzztime=$(FUZZTIME) ./internal/lint

# End-to-end observability check: start modelhub-server -metrics, publish +
# pull a tiny archived repo, scrape /metrics, assert well-formed JSON with
# nonzero hub.http.* and pas.* counters, and hit /debug/pprof/.
obs-smoke:
	bash scripts/obs_smoke.sh

# Distributed-hub failure drill: gateway + 3 replicas, publish through the
# gateway, kill a replica, pull from the survivors, restart it, and assert
# one anti-entropy sweep restores full replication via /metrics.
cluster-smoke:
	bash scripts/cluster_smoke.sh

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Training-substrate kernels: conv kernels, GEMM, parallel enumeration.
bench-train:
	$(GO) test -bench='BenchmarkConvForward|BenchmarkGemm$$|BenchmarkEvaluateGrid|BenchmarkTrainingStep' -run=^$$ .

# Storage-engine comparison: legacy per-chunk files vs gen-2 segment layout
# (cold-checkout latency, payload file opens, disk bytes, dedup). Writes
# BENCH_store.json.
bench-store:
	$(GO) run ./cmd/mhbench -exp storebench -store-json BENCH_store.json

# Multicore scaling sweep: GOMAXPROCS x workers over GEMM, conv passes, full
# training steps (scratch arena on/off), and concurrent DQL evaluate. Writes
# BENCH_scaling.json with a hardware-metadata block.
bench-scaling:
	$(GO) run ./cmd/mhbench -exp scaling -scaling-json BENCH_scaling.json

# The PAS/DLV suites against both on-disk layouts, like the CI matrix. The
# env var pins what Create uses and whether Open migrates legacy archives.
test-layouts:
	MODELHUB_PAS_LAYOUT=legacy $(GO) test ./internal/pas/ ./internal/dlv/
	MODELHUB_PAS_LAYOUT=segment $(GO) test ./internal/pas/ ./internal/dlv/

# The compute-core suites under a GOMAXPROCS matrix with the race detector,
# like the CI compute-scaling job: the determinism contract (bit-identical
# results at any worker count) must hold at every proc count.
# -count=1 defeats the test cache: GOMAXPROCS is read by the runtime, not
# through os.Getenv in test code, so cached results would not re-run.
test-scaling:
	for procs in 1 2 4; do \
		echo "== GOMAXPROCS=$$procs =="; \
		GOMAXPROCS=$$procs $(GO) test -race -count=1 ./internal/tensor/ ./internal/dnn/ ./internal/dql/ || exit 1; \
	done

check: build vet fmt-check lint test test-race

help:
	@echo "build       - compile all packages"
	@echo "vet         - go vet ./..."
	@echo "fmt-check   - fail on files needing gofmt"
	@echo "lint        - run the mhlint analyzer suite against lint.baseline.json"
	@echo "lint-baseline - regenerate lint.baseline.json from current findings"
	@echo "test        - go test ./..."
	@echo "test-race   - go test -race ./..."
	@echo "fuzz-smoke  - short fuzz runs (FUZZTIME=$(FUZZTIME))"
	@echo "obs-smoke   - live /metrics + pprof scrape against a real server"
	@echo "cluster-smoke - gateway + 3-replica failure drill with anti-entropy repair"
	@echo "bench       - run all benchmarks once"
	@echo "bench-train - training-substrate kernel benchmarks"
	@echo "bench-store - legacy vs segment storage layout comparison (BENCH_store.json)"
	@echo "bench-scaling - GOMAXPROCS x workers compute sweep (BENCH_scaling.json)"
	@echo "test-layouts - pas/dlv tests against both storage layouts"
	@echo "test-scaling - tensor/dnn/dql suites with -race under GOMAXPROCS 1/2/4"
	@echo "check       - build + vet + fmt-check + lint + test + test-race"
