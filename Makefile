GO ?= go

.PHONY: build vet test test-race bench bench-train check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the packages with real concurrency: the PAS retrieval engine,
# the training/inference runtime, the blocked GEMM kernel, and parallel DQL
# model enumeration.
test-race:
	$(GO) test -race ./internal/pas/... ./internal/dnn/... ./internal/dql/... ./internal/tensor/...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Training-substrate kernels: conv kernels, GEMM, parallel enumeration.
bench-train:
	$(GO) test -bench='BenchmarkConvForward|BenchmarkGemm$$|BenchmarkEvaluateGrid|BenchmarkTrainingStep' -run=^$$ .

check: build vet test test-race
