GO ?= go

.PHONY: build vet test test-race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the packages with real concurrency: the PAS retrieval engine
# and the training/inference runtime it feeds.
test-race:
	$(GO) test -race ./internal/pas/... ./internal/dnn/...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

check: build vet test test-race
