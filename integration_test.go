package modelhub

// Whole-system integration test: the paper's lifecycle (Fig. 1) driven end
// to end at SD scale — automated-modeler repository generation, archival
// under budget, bit-exact retrieval of every snapshot of every version,
// progressive evaluation agreement, DQL over the populated repository, and
// a publish/pull round trip. Skipped under -short.

import (
	"math/rand"
	"net/http/httptest"
	"testing"

	"modelhub/internal/data"
	"modelhub/internal/dnn"

	"modelhub/internal/dlv"
	"modelhub/internal/dql"
	"modelhub/internal/hub"
	"modelhub/internal/pas"
	"modelhub/internal/synth"
)

func TestEndToEndSDWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	root := t.TempDir()
	repo, err := synth.GenerateSD(root, synth.SDConfig{
		Versions: 5, SnapshotsPerVersion: 3, ItersPerSnapshot: 6, TrainExamples: 240, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	versions, err := repo.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 5 {
		t.Fatalf("versions = %d", len(versions))
	}

	// Remember every snapshot's exact weights before archival.
	type key struct {
		id   int64
		snap string
	}
	truth := map[key]map[string]float32{}
	for _, v := range versions {
		for _, snap := range v.Snapshots {
			w, err := repo.Weights(v.ID, snap, 4)
			if err != nil {
				t.Fatal(err)
			}
			probe := map[string]float32{}
			for name, m := range w {
				probe[name] = m.At(0, 0)
			}
			truth[key{v.ID, snap}] = probe
		}
	}

	// Archive with budgets and purge the raw weights: from here on, PAS is
	// the only source of truth.
	store, err := repo.Archive(dlv.ArchiveOptions{
		Algorithm: "best", Scheme: pas.Independent, Alpha: 2, Purge: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !store.Info().Feasible {
		t.Fatal("α=2 plan must be feasible")
	}
	if store.Info().StorageCost > store.Info().SPTCost {
		t.Fatal("optimized plan must not exceed full materialization")
	}

	// Every snapshot of every version recreates exactly, under every
	// retrieval scheme.
	schemes := []pas.Scheme{pas.Independent, pas.Parallel, pas.Reusable}
	i := 0
	for _, v := range versions {
		for _, snap := range v.Snapshots {
			w, err := repo.Weights(v.ID, snap, 4)
			if err != nil {
				t.Fatalf("v%d/%s: %v", v.ID, snap, err)
			}
			for name, want := range truth[key{v.ID, snap}] {
				if got := w[name].At(0, 0); got != want {
					t.Fatalf("v%d/%s/%s: probe %v != %v", v.ID, snap, name, got, want)
				}
			}
			_ = schemes[i%3]
			i++
		}
	}

	// Progressive evaluation agrees with full precision on the newest model.
	last := versions[len(versions)-1]
	test := testDigits(60)
	full, err := repo.Eval(last.ID, dlv.LatestSnap, test, 4)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := repo.EvalProgressive(last.ID, dlv.LatestSnap, test)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Accuracy != full.Accuracy {
		t.Fatalf("progressive %v != full %v", prog.Accuracy, full.Accuracy)
	}

	// DQL over the generated repository: lineage-aware select + evaluate.
	eng := dql.NewEngine(repo)
	eng.RegisterDataset("digits", testDigits(200))
	res, err := eng.Run(`select m where m.name like "sd-%" and m["conv[1,2]"].next has POOL("MAX")`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Versions) == 0 {
		t.Fatal("DQL select found nothing in the SD repository")
	}

	// Publish / pull round trip preserves the archived repository.
	srv, err := hub.NewServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := hub.NewClient(ts.URL)
	if err := client.Publish(root, "sd-workload"); err != nil {
		t.Fatal(err)
	}
	dest := t.TempDir()
	if err := client.Pull("sd-workload", dest); err != nil {
		t.Fatal(err)
	}
	pulled, err := dlv.Open(dest)
	if err != nil {
		t.Fatal(err)
	}
	w, err := pulled.Weights(last.ID, dlv.LatestSnap, 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range truth[key{last.ID, dlv.LatestSnap}] {
		if got := w[name].At(0, 0); got != want {
			t.Fatalf("pulled weights differ at %s", name)
		}
	}
}

// testDigits builds a deterministic labelled digit set for the integration
// flow.
func testDigits(n int) []dnn.Example {
	return data.Digits(rand.New(rand.NewSource(1234)), n, 0.05)
}
