// Package modelhub is a from-scratch Go reproduction of "Towards Unified
// Data and Lifecycle Management for Deep Learning" (Miao, Li, Davis,
// Deshpande — ICDE 2017): the ModelHub system, comprising the DLV model
// versioning system, the DQL model exploration/enumeration language, and
// the PAS read-optimized parameter archival store, together with every
// substrate they depend on (a pure-Go DNN engine, synthetic datasets, an
// embedded relational catalog, a hosted sharing service, and the
// storage-plan optimization algorithms).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The root-level bench_test.go regenerates every table and figure of the
// paper's evaluation; `go run ./cmd/mhbench -exp all` prints them.
package modelhub
