package dnn

import (
	"math"
	"math/rand"
	"testing"
)

// newConvPair builds two identically-weighted conv layers for the same spec
// so the im2col and naive kernels can be run side by side.
func newConvPair(t *testing.T, spec LayerSpec, in Shape, rng *rand.Rand) (a, b *convLayer) {
	t.Helper()
	mk := func() *convLayer {
		l, err := buildLayer(spec, in)
		if err != nil {
			t.Fatalf("buildLayer(%+v, %v): %v", spec, in, err)
		}
		return l.(*convLayer)
	}
	a, b = mk(), mk()
	w := a.w.Data()
	for i := range w {
		w[i] = float32(rng.NormFloat64())
	}
	copy(b.w.Data(), w)
	return a, b
}

func randVol(rng *rand.Rand, s Shape) *Volume {
	v := NewVolume(s)
	for i := range v.Data {
		v.Data[i] = float32(rng.NormFloat64())
	}
	return v
}

// TestConvIm2colMatchesNaive is the kernel-equivalence property test: across
// random shapes, strides, and pads (including pad > 0 and stride > 1), the
// im2col/GEMM kernel must reproduce the naive six-loop kernel
//
//   - bit-exactly for the forward output, the weight gradient, and the bias
//     gradient (the GEMM sums every output element in the naive kernel's
//     exact term order, and zero-padding terms add exact zeros), and
//   - within a small relative tolerance for the input gradient: dIn flows
//     through the intermediate dcols = Wᵀ·dOut matrix, which sums the same
//     terms under a different association (per-pixel over output channels
//     first), so the two kernels round differently at the last ULPs.
//
// Gradients are compared after a single backward pass from zeroed
// accumulators; accumulating further passes re-associates the running sums.
func TestConvIm2colMatchesNaive(t *testing.T) {
	prev := SetConvKernel(ConvIm2col)
	defer SetConvKernel(prev)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		inShape := Shape{C: 1 + rng.Intn(3), H: 3 + rng.Intn(8), W: 3 + rng.Intn(8)}
		spec := LayerSpec{
			Name: "conv", Kind: KindConv,
			Out:    1 + rng.Intn(4),
			K:      1 + rng.Intn(3),
			Stride: 1 + rng.Intn(2),
			Pad:    rng.Intn(3),
		}
		if _, err := spec.OutShape(inShape); err != nil {
			continue // degenerate geometry; not a valid layer
		}
		fast, naive := newConvPair(t, spec, inShape, rng)
		in := randVol(rng, inShape)

		SetConvKernel(ConvIm2col)
		outFast := fast.Forward(in)
		SetConvKernel(ConvNaive)
		outNaive := naive.Forward(in)
		if !equalBits(outFast.Data, outNaive.Data) {
			t.Fatalf("trial %d (%+v in %v): forward differs", trial, spec, inShape)
		}

		dOut := randVol(rng, fast.OutShape())
		SetConvKernel(ConvIm2col)
		dInFast := fast.Backward(dOut)
		SetConvKernel(ConvNaive)
		dInNaive := naive.Backward(dOut)

		if !fast.g.Equal(naive.g) {
			t.Fatalf("trial %d (%+v in %v): weight gradient differs", trial, spec, inShape)
		}
		if !approxEqualRel(dInFast.Data, dInNaive.Data, 1e-5) {
			t.Fatalf("trial %d (%+v in %v): input gradient differs beyond tolerance", trial, spec, inShape)
		}
	}
}

// TestConvIm2colStridePadEdges pins the awkward geometries explicitly.
func TestConvIm2colStridePadEdges(t *testing.T) {
	prev := SetConvKernel(ConvIm2col)
	defer SetConvKernel(prev)
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		in   Shape
		spec LayerSpec
	}{
		{Shape{C: 2, H: 7, W: 7}, LayerSpec{Name: "c", Kind: KindConv, Out: 3, K: 3, Stride: 2, Pad: 0}},
		{Shape{C: 2, H: 7, W: 7}, LayerSpec{Name: "c", Kind: KindConv, Out: 3, K: 3, Stride: 2, Pad: 2}},
		{Shape{C: 1, H: 5, W: 5}, LayerSpec{Name: "c", Kind: KindConv, Out: 2, K: 5, Stride: 1, Pad: 2}},
		{Shape{C: 3, H: 4, W: 6}, LayerSpec{Name: "c", Kind: KindConv, Out: 2, K: 1, Stride: 2, Pad: 0}},
		{Shape{C: 1, H: 3, W: 3}, LayerSpec{Name: "c", Kind: KindConv, Out: 1, K: 3, Stride: 1, Pad: 2}},
	}
	for _, c := range cases {
		fast, naive := newConvPair(t, c.spec, c.in, rng)
		in := randVol(rng, c.in)
		SetConvKernel(ConvIm2col)
		outFast := fast.Forward(in)
		dInFast := fast.Backward(randVol(rand.New(rand.NewSource(9)), fast.OutShape()))
		SetConvKernel(ConvNaive)
		outNaive := naive.Forward(in)
		dInNaive := naive.Backward(randVol(rand.New(rand.NewSource(9)), naive.OutShape()))
		if !equalBits(outFast.Data, outNaive.Data) {
			t.Fatalf("%+v in %v: forward differs", c.spec, c.in)
		}
		if !fast.g.Equal(naive.g) {
			t.Fatalf("%+v in %v: weight gradient differs", c.spec, c.in)
		}
		if !approxEqualRel(dInFast.Data, dInNaive.Data, 1e-5) {
			t.Fatalf("%+v in %v: input gradient differs", c.spec, c.in)
		}
	}
}

// TestFullLayerKernelMatchesScalar guards the fullLayer GEMM/axpy routing
// against the original scalar loops.
func TestFullLayerKernelMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := Shape{C: 5, H: 3, W: 2}
	spec := LayerSpec{Name: "ip", Kind: KindFull, Out: 7}
	l, err := buildLayer(spec, in)
	if err != nil {
		t.Fatal(err)
	}
	fl := l.(*fullLayer)
	for i := range fl.w.Data() {
		fl.w.Data()[i] = float32(rng.NormFloat64())
	}
	x := randVol(rng, in)
	out := fl.Forward(x)
	biasCol := fl.w.Cols() - 1
	for o := 0; o < spec.Out; o++ {
		row := fl.w.Row(o)
		sum := row[biasCol]
		for i, v := range x.Data {
			sum += row[i] * v
		}
		if math.Float32bits(sum) != math.Float32bits(out.Data[o]) {
			t.Fatalf("out[%d] = %v, scalar loop gives %v", o, out.Data[o], sum)
		}
	}
}

func equalBits(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

func approxEqualRel(a, b []float32, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		scale := math.Max(1, math.Max(math.Abs(float64(a[i])), math.Abs(float64(b[i]))))
		if d/scale > tol {
			return false
		}
	}
	return true
}
