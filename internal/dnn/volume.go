package dnn

import "fmt"

// Shape is the extent of a feature volume: channels x height x width.
// Fully-connected activations use C = length, H = W = 1.
type Shape struct {
	C, H, W int
}

// Size returns the total number of elements.
func (s Shape) Size() int { return s.C * s.H * s.W }

// String renders "CxHxW".
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// Volume is a dense feature map laid out channel-major: index (c, y, x) is
// Data[(c*H+y)*W+x].
type Volume struct {
	Shape Shape
	Data  []float32
}

// NewVolume allocates a zeroed volume.
func NewVolume(s Shape) *Volume {
	return &Volume{Shape: s, Data: make([]float32, s.Size())}
}

// At returns the element at (c, y, x).
func (v *Volume) At(c, y, x int) float32 {
	return v.Data[(c*v.Shape.H+y)*v.Shape.W+x]
}

// Set assigns the element at (c, y, x).
func (v *Volume) Set(c, y, x int, val float32) {
	v.Data[(c*v.Shape.H+y)*v.Shape.W+x] = val
}

// Clone deep-copies the volume.
func (v *Volume) Clone() *Volume {
	out := NewVolume(v.Shape)
	copy(out.Data, v.Data)
	return out
}

// FlatVolume wraps a plain vector as a Cx1x1 volume without copying.
func FlatVolume(data []float32) *Volume {
	return &Volume{Shape: Shape{C: len(data), H: 1, W: 1}, Data: data}
}

// outDim computes the spatial output extent of a window op.
func outDim(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

// OutShape computes the output shape of a layer spec applied to input shape
// in, or an error if the configuration cannot apply.
func (l LayerSpec) OutShape(in Shape) (Shape, error) {
	switch l.Kind {
	case KindConv:
		stride := l.Stride
		if stride == 0 {
			stride = 1
		}
		oh := outDim(in.H, l.K, stride, l.Pad)
		ow := outDim(in.W, l.K, stride, l.Pad)
		if oh <= 0 || ow <= 0 {
			return Shape{}, fmt.Errorf("%w: conv %q output %dx%d from input %v", ErrNetDef, l.Name, oh, ow, in)
		}
		return Shape{C: l.Out, H: oh, W: ow}, nil
	case KindPool:
		stride := l.Stride
		if stride == 0 {
			stride = l.K
		}
		oh := outDim(in.H, l.K, stride, 0)
		ow := outDim(in.W, l.K, stride, 0)
		if oh <= 0 || ow <= 0 {
			return Shape{}, fmt.Errorf("%w: pool %q output %dx%d from input %v", ErrNetDef, l.Name, oh, ow, in)
		}
		return Shape{C: in.C, H: oh, W: ow}, nil
	case KindFull:
		return Shape{C: l.Out, H: 1, W: 1}, nil
	case KindReLU, KindSigmoid, KindTanh, KindSoftmax:
		return in, nil
	case KindAdd, KindConcat:
		// Single-input view; the DAG executor computes multi-input merge
		// shapes (concat sums predecessor channels).
		return in, nil
	default:
		return Shape{}, fmt.Errorf("%w: unknown kind %q", ErrNetDef, l.Kind)
	}
}

// ParamShape returns the weight-matrix and bias dimensions of a parametric
// layer given its input shape. Weights are stored as a single float matrix
// per layer (out x in*k*k for conv, out x in for full), matching the paper's
// view of parameters as a collection of float matrices; the bias is folded
// in as one extra column (paper footnote 2: W' x + b == (W', b) (x, 1)).
func (l LayerSpec) ParamShape(in Shape) (rows, cols int, err error) {
	switch l.Kind {
	case KindConv:
		return l.Out, in.C*l.K*l.K + 1, nil
	case KindFull:
		return l.Out, in.Size() + 1, nil
	default:
		return 0, 0, fmt.Errorf("dnn: layer %q (%s) has no parameters", l.Name, l.Kind)
	}
}
