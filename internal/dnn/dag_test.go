package dnn

import (
	"math"
	"math/rand"
	"testing"
)

// skipDef builds a residual block: conv1 feeds both a conv2 branch and an
// add merge that sums the branch with the trunk, then classifies.
func skipDef() *NetDef {
	return &NetDef{
		Name: "skip", InC: 1, InH: 8, InW: 8, Labels: 3,
		Nodes: []LayerSpec{
			{Name: "conv1", Kind: KindConv, Out: 4, K: 3, Pad: 1},
			{Name: "conv2", Kind: KindConv, Out: 4, K: 3, Pad: 1},
			{Name: "relu2", Kind: KindReLU},
			{Name: "add", Kind: KindAdd},
			{Name: "ip", Kind: KindFull, Out: 3},
		},
		Edges: []Edge{
			{From: "conv1", To: "conv2"},
			{From: "conv2", To: "relu2"},
			{From: "conv1", To: "add"},
			{From: "relu2", To: "add"},
			{From: "add", To: "ip"},
		},
	}
}

// concatDef builds an inception-style block: two parallel convs whose
// outputs concatenate along channels.
func concatDef() *NetDef {
	return &NetDef{
		Name: "inception", InC: 1, InH: 6, InW: 6, Labels: 2,
		Nodes: []LayerSpec{
			{Name: "stem", Kind: KindConv, Out: 2, K: 3, Pad: 1},
			{Name: "branch_a", Kind: KindConv, Out: 3, K: 3, Pad: 1},
			{Name: "branch_b", Kind: KindConv, Out: 2, K: 1},
			{Name: "cat", Kind: KindConcat},
			{Name: "ip", Kind: KindFull, Out: 2},
		},
		Edges: []Edge{
			{From: "stem", To: "branch_a"},
			{From: "stem", To: "branch_b"},
			{From: "branch_a", To: "cat"},
			{From: "branch_b", To: "cat"},
			{From: "cat", To: "ip"},
		},
	}
}

func TestDAGForwardAddSemantics(t *testing.T) {
	def := skipDef()
	n, err := Build(def, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	in := randVolume(rand.New(rand.NewSource(2)), Shape{C: 1, H: 8, W: 8})
	// Manually compute: conv1 -> x; branch: relu(conv2(x)); add = x + branch.
	conv1 := n.layers["conv1"].Forward(in)
	conv2 := n.layers["conv2"].Forward(conv1)
	relu := n.layers["relu2"].Forward(conv2)
	want := NewVolume(conv1.Shape)
	for i := range want.Data {
		want.Data[i] = conv1.Data[i] + relu.Data[i]
	}
	// Clone: layer outputs alias reusable scratch that the full forward pass
	// below overwrites.
	ip := n.layers["ip"].Forward(want).Clone()

	got := n.Forward(in)
	for i := range ip.Data {
		if got.Data[i] != ip.Data[i] {
			t.Fatalf("DAG forward differs from manual composition at %d: %v vs %v", i, got.Data[i], ip.Data[i])
		}
	}
}

func TestDAGForwardConcatSemantics(t *testing.T) {
	def := concatDef()
	n, err := Build(def, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	in := randVolume(rand.New(rand.NewSource(4)), Shape{C: 1, H: 6, W: 6})
	stem := n.layers["stem"].Forward(in)
	a := n.layers["branch_a"].Forward(stem)
	b := n.layers["branch_b"].Forward(stem)
	merged := NewVolume(Shape{C: 5, H: 6, W: 6})
	copy(merged.Data, a.Data)
	copy(merged.Data[a.Shape.Size():], b.Data)
	// Clone: layer outputs alias reusable scratch that the full forward pass
	// below overwrites.
	want := n.layers["ip"].Forward(merged).Clone()

	got := n.Forward(in)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("concat forward differs at %d", i)
		}
	}
}

// Finite-difference gradient check through both merge kinds — the DAG
// backward's gradient routing (fan-out accumulation, add replication,
// concat splitting) must match numerics.
func TestDAGGradientCheck(t *testing.T) {
	for _, tc := range []struct {
		name string
		def  *NetDef
		in   Shape
	}{
		{"add", skipDef(), Shape{C: 1, H: 8, W: 8}},
		{"concat", concatDef(), Shape{C: 1, H: 6, W: 6}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			n, err := Build(tc.def, rng)
			if err != nil {
				t.Fatal(err)
			}
			in := randVolume(rng, tc.in)
			label := 1
			lossAt := func() float64 {
				logits := n.Logits(in)
				probs := Softmax(logits.Data)
				return -math.Log(math.Max(float64(probs[label]), 1e-12))
			}
			n.ZeroGrads()
			n.LossAndBackward(in, label)
			const eps = 1e-3
			probe := rand.New(rand.NewSource(6))
			for _, l := range n.Layers() {
				w, g := l.Weights(), l.Grad()
				if w == nil {
					continue
				}
				for k := 0; k < 5; k++ {
					i := probe.Intn(w.Rows())
					j := probe.Intn(w.Cols())
					orig := w.At(i, j)
					w.Set(i, j, orig+eps)
					up := lossAt()
					w.Set(i, j, orig-eps)
					down := lossAt()
					w.Set(i, j, orig)
					numeric := (up - down) / (2 * eps)
					analytic := float64(g.At(i, j))
					diff := math.Abs(numeric - analytic)
					scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
					if diff/scale > 2e-2 {
						t.Errorf("%s w[%d,%d]: numeric %v vs analytic %v", l.Spec().Name, i, j, numeric, analytic)
					}
				}
			}
		})
	}
}

// A residual model must actually train on a real task.
func TestDAGTrainsSkipModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	examples := toyExamples(rng, 300)
	def := &NetDef{
		Name: "res-toy", InC: 2, InH: 1, InW: 1, Labels: 2,
		Nodes: []LayerSpec{
			{Name: "ip1", Kind: KindFull, Out: 8},
			{Name: "ip2", Kind: KindFull, Out: 8},
			{Name: "tanh", Kind: KindTanh},
			{Name: "add", Kind: KindAdd},
			{Name: "ip3", Kind: KindFull, Out: 2},
		},
		Edges: []Edge{
			{From: "ip1", To: "ip2"},
			{From: "ip2", To: "tanh"},
			{From: "ip1", To: "add"},
			{From: "tanh", To: "add"},
			{From: "add", To: "ip3"},
		},
	}
	n, err := Build(def, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(n, examples, TrainConfig{Epochs: 6, BatchSize: 16, LR: 0.1, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if acc := Evaluate(n, examples); acc < 0.9 {
		t.Fatalf("skip model failed to learn: %v", acc)
	}
}

func TestDAGBuildRejections(t *testing.T) {
	// Two sources.
	twoSrc := skipDef()
	twoSrc.Nodes = append(twoSrc.Nodes, LayerSpec{Name: "orphan", Kind: KindReLU})
	twoSrc.Edges = append(twoSrc.Edges, Edge{From: "orphan", To: "add"})
	if _, err := Build(twoSrc, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("two sources must be rejected")
	}
	// Multi-input ordinary layer.
	badMerge := skipDef()
	badMerge.Nodes[3].Kind = KindReLU // "add" node becomes relu with 2 inputs
	if _, err := Build(badMerge, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("multi-input non-merge layer must be rejected")
	}
	// Mismatched add shapes.
	badAdd := skipDef()
	badAdd.Nodes[1].Out = 8 // conv2 now outputs 8 channels vs conv1's 4
	if _, err := Build(badAdd, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("mismatched add inputs must be rejected")
	}
	// Mismatched concat spatial extents.
	badCat := concatDef()
	badCat.Nodes[2].K = 3 // branch_b 3x3 without padding shrinks H/W
	badCat.Nodes[2].Pad = 0
	if _, err := Build(badCat, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("mismatched concat extents must be rejected")
	}
}

func TestDAGSnapshotRestoreRoundTrip(t *testing.T) {
	def := skipDef()
	n, err := Build(def, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	in := randVolume(rand.New(rand.NewSource(11)), Shape{C: 1, H: 8, W: 8})
	snap := n.Snapshot()
	before := n.Forward(in).Clone()
	for _, w := range n.Params() {
		w.Scale(3)
	}
	if err := n.Restore(snap); err != nil {
		t.Fatal(err)
	}
	after := n.Forward(in)
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("restore must reproduce DAG outputs exactly")
		}
	}
}
