package dnn

import (
	"math"
	"math/rand"
	"testing"
)

func buildLenet(t *testing.T) *Network {
	t.Helper()
	n, err := Build(lenetDef(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func randVolume(rng *rand.Rand, s Shape) *Volume {
	v := NewVolume(s)
	for i := range v.Data {
		v.Data[i] = float32(rng.NormFloat64())
	}
	return v
}

func TestBuildShapes(t *testing.T) {
	n := buildLenet(t)
	if got := len(n.Layers()); got != 6 {
		t.Fatalf("layer count = %d", got)
	}
	out := n.Forward(randVolume(rand.New(rand.NewSource(2)), Shape{C: 1, H: 12, W: 12}))
	if out.Shape.Size() != 10 {
		t.Fatalf("output size = %d", out.Shape.Size())
	}
	var sum float64
	for _, v := range out.Data {
		if v < 0 || v > 1 {
			t.Fatalf("softmax output out of range: %v", v)
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("softmax does not sum to 1: %v", sum)
	}
}

func TestBuildLabelMismatch(t *testing.T) {
	def := lenetDef()
	def.Labels = 7
	if _, err := Build(def, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("want label-count mismatch error")
	}
}

func TestParamCount(t *testing.T) {
	n := buildLenet(t)
	// conv1: 4 x (1*9+1) = 40; ip1: 16 x (4*6*6+1) = 2320; ip2: 10 x 17 = 170.
	if got := n.ParamCount(); got != 40+2320+170 {
		t.Fatalf("ParamCount = %d", got)
	}
	if names := n.ParamNames(); len(names) != 3 || names[0] != "conv1" || names[2] != "ip2" {
		t.Fatalf("ParamNames = %v", names)
	}
}

func TestSnapshotRestore(t *testing.T) {
	n := buildLenet(t)
	snap := n.Snapshot()
	rng := rand.New(rand.NewSource(3))
	in := randVolume(rng, Shape{C: 1, H: 12, W: 12})
	before := n.Forward(in).Clone()

	// Mutate weights, confirm output changes, then restore.
	for _, w := range n.Params() {
		w.Scale(2)
	}
	after := n.Forward(in)
	if before.Data[0] == after.Data[0] {
		t.Fatal("scaling weights should change output")
	}
	if err := n.Restore(snap); err != nil {
		t.Fatal(err)
	}
	restored := n.Forward(in)
	for i := range before.Data {
		if before.Data[i] != restored.Data[i] {
			t.Fatal("restore must reproduce the original output exactly")
		}
	}
}

func TestRestoreErrors(t *testing.T) {
	n := buildLenet(t)
	snap := n.Snapshot()
	delete(snap, "conv1")
	if err := n.Restore(snap); err == nil {
		t.Fatal("want error for missing layer")
	}
	snap = n.Snapshot()
	snap["conv1"] = snap["ip2"]
	if err := n.Restore(snap); err == nil {
		t.Fatal("want error for shape mismatch")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	n := buildLenet(t)
	snap := n.Snapshot()
	n.Params()["conv1"].Set(0, 0, 123)
	if snap["conv1"].At(0, 0) == 123 {
		t.Fatal("snapshot must not alias live weights")
	}
}

func TestSortedNames(t *testing.T) {
	n := buildLenet(t)
	names := SortedNames(n.Snapshot())
	if len(names) != 3 || names[0] != "conv1" || names[1] != "ip1" || names[2] != "ip2" {
		t.Fatalf("SortedNames = %v", names)
	}
}

// Finite-difference gradient check on a small network covering conv, max
// pool, full, relu, sigmoid, tanh, and avg pool layers.
func TestGradientCheck(t *testing.T) {
	def := ChainDef("gc", 2, 6, 6, 3,
		LayerSpec{Name: "conv1", Kind: KindConv, Out: 3, K: 3, Pad: 1},
		LayerSpec{Name: "tanh1", Kind: KindTanh},
		LayerSpec{Name: "poolm", Kind: KindPool, K: 2, Mode: PoolMax},
		LayerSpec{Name: "conv2", Kind: KindConv, Out: 4, K: 2},
		LayerSpec{Name: "sig1", Kind: KindSigmoid},
		LayerSpec{Name: "poola", Kind: KindPool, K: 2, Mode: PoolAvg},
		LayerSpec{Name: "ip1", Kind: KindFull, Out: 8},
		LayerSpec{Name: "relu1", Kind: KindReLU},
		LayerSpec{Name: "ip2", Kind: KindFull, Out: 3},
	)
	rng := rand.New(rand.NewSource(4))
	n, err := Build(def, rng)
	if err != nil {
		t.Fatal(err)
	}
	in := randVolume(rng, Shape{C: 2, H: 6, W: 6})
	label := 1

	lossAt := func() float64 {
		logits := n.Logits(in)
		probs := Softmax(logits.Data)
		return -math.Log(math.Max(float64(probs[label]), 1e-12))
	}

	n.ZeroGrads()
	n.LossAndBackward(in, label)

	const eps = 1e-3
	checked := 0
	for _, l := range n.Layers() {
		w, g := l.Weights(), l.Grad()
		if w == nil {
			continue
		}
		// Spot-check a handful of coordinates per layer.
		probe := rand.New(rand.NewSource(5))
		for k := 0; k < 6; k++ {
			i := probe.Intn(w.Rows())
			j := probe.Intn(w.Cols())
			orig := w.At(i, j)
			w.Set(i, j, orig+eps)
			up := lossAt()
			w.Set(i, j, orig-eps)
			down := lossAt()
			w.Set(i, j, orig)
			numeric := (up - down) / (2 * eps)
			analytic := float64(g.At(i, j))
			diff := math.Abs(numeric - analytic)
			scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if diff/scale > 2e-2 {
				t.Errorf("layer %s w[%d,%d]: numeric %v vs analytic %v", l.Spec().Name, i, j, numeric, analytic)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no gradients checked")
	}
}

func TestSoftmaxBackwardMatchesFiniteDiff(t *testing.T) {
	base := layerBase{spec: LayerSpec{Name: "s", Kind: KindSoftmax},
		in: Shape{C: 4, H: 1, W: 1}, out: Shape{C: 4, H: 1, W: 1}}
	l := &softmaxLayer{layerBase: base}
	in := &Volume{Shape: base.in, Data: []float32{0.3, -0.2, 1.0, 0.1}}
	dOut := &Volume{Shape: base.out, Data: []float32{1, -0.5, 0.25, 0}}
	l.Forward(in)
	dIn := l.Backward(dOut)

	const eps = 1e-3
	for i := 0; i < 4; i++ {
		bump := in.Clone()
		bump.Data[i] += eps
		up := Softmax(bump.Data)
		bump.Data[i] -= 2 * eps
		down := Softmax(bump.Data)
		var numeric float64
		for j := range up {
			numeric += float64(dOut.Data[j]) * float64(up[j]-down[j]) / (2 * eps)
		}
		if math.Abs(numeric-float64(dIn.Data[i])) > 1e-2 {
			t.Errorf("softmax dIn[%d]: numeric %v vs analytic %v", i, numeric, dIn.Data[i])
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	out := Softmax([]float32{1000, 999, 998})
	for _, v := range out {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("softmax must be stable for large logits")
		}
	}
	if out[0] <= out[1] || out[1] <= out[2] {
		t.Fatal("softmax must preserve ordering")
	}
}

func TestSGDMomentumMovesWeights(t *testing.T) {
	n := buildLenet(t)
	rng := rand.New(rand.NewSource(6))
	in := randVolume(rng, Shape{C: 1, H: 12, W: 12})
	before := n.Snapshot()
	opt := &SGD{LR: 0.1, Momentum: 0.9}
	n.ZeroGrads()
	n.LossAndBackward(in, 3)
	opt.Step(n, 1)
	after := n.Snapshot()
	if before["ip2"].Equal(after["ip2"]) {
		t.Fatal("SGD step should change classifier weights")
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	n := buildLenet(t)
	w := n.Params()["ip1"]
	normBefore := w.ComputeStats().L2
	opt := &SGD{LR: 0.5, WeightDecay: 0.1}
	n.ZeroGrads() // zero gradients: only decay acts
	opt.Step(n, 1)
	normAfter := w.ComputeStats().L2
	if normAfter >= normBefore {
		t.Fatalf("weight decay should shrink norm: %v -> %v", normBefore, normAfter)
	}
}

func TestSGDLayerLROverride(t *testing.T) {
	n := buildLenet(t)
	rng := rand.New(rand.NewSource(20))
	in := randVolume(rng, Shape{C: 1, H: 12, W: 12})
	before := n.Snapshot()
	// Freeze conv1, train ip layers at full rate.
	opt := &SGD{LR: 0.1, LayerLR: map[string]float64{"conv1": 0}}
	n.ZeroGrads()
	n.LossAndBackward(in, 2)
	opt.Step(n, 1)
	after := n.Snapshot()
	if !after["conv1"].Equal(before["conv1"]) {
		t.Fatal("conv1 must be frozen by its zero layer lr")
	}
	if after["ip2"].Equal(before["ip2"]) {
		t.Fatal("ip2 must still train at the base lr")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	n := buildLenet(t)
	c, err := n.Clone()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(30))
	in := randVolume(rng, Shape{C: 1, H: 12, W: 12})
	a := n.Forward(in)
	b := c.Forward(in)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("clone must produce identical outputs")
		}
	}
	c.Params()["ip2"].Scale(2)
	a2 := n.Forward(in)
	for i := range a.Data {
		if a.Data[i] != a2.Data[i] {
			t.Fatal("mutating the clone must not affect the original")
		}
	}
}

func TestEvaluateParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	examples := toyExamples(rng, 120)
	n := toyNet(t, 32)
	want := Evaluate(n, examples)
	for _, workers := range []int{1, 3, 8, 200} {
		got, err := EvaluateParallel(n, examples, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: parallel %v != sequential %v", workers, got, want)
		}
	}
	if acc, err := EvaluateParallel(n, nil, 4); err != nil || acc != 0 {
		t.Fatalf("empty eval = %v, %v", acc, err)
	}
}
