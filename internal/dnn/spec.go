// Package dnn is the deep-learning substrate of ModelHub: a small, pure-Go
// neural network engine that trains and evaluates the convolutional networks
// the paper's experiments need (Sec. II). It deliberately separates the
// *architecture definition* (NetDef — a named DAG of layer specs, the thing
// DLV versions and DQL queries and mutates) from the *runtime network*
// (Network — the thing that runs forward/backward passes).
package dnn

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Layer kind names. These mirror the conventional layer vocabulary the
// paper uses (Fig. 2, Table I).
const (
	KindConv    = "conv"
	KindPool    = "pool"
	KindFull    = "full"
	KindReLU    = "relu"
	KindSigmoid = "sigmoid"
	KindTanh    = "tanh"
	KindSoftmax = "softmax"
	// KindAdd sums the outputs of all its predecessors elementwise (the
	// residual/skip connection merge); all inputs must share one shape.
	KindAdd = "add"
	// KindConcat concatenates predecessor outputs along the channel axis;
	// spatial extents must match.
	KindConcat = "concat"
)

// Pool modes.
const (
	PoolMax = "MAX"
	PoolAvg = "AVG"
)

// LayerSpec describes one layer: its unique name, kind, and hyperparameters
// H (paper Sec. II: a layer is (W, H, X) -> Y). Learnable parameters W are
// not part of the spec; they live in snapshots.
type LayerSpec struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Out is the number of output channels (conv) or units (full).
	Out int `json:"out,omitempty"`
	// K, Stride, Pad configure conv and pool windows.
	K      int `json:"k,omitempty"`
	Stride int `json:"stride,omitempty"`
	Pad    int `json:"pad,omitempty"`
	// Mode selects the pool operator (PoolMax or PoolAvg).
	Mode string `json:"mode,omitempty"`
}

// Parametric reports whether the layer has learnable weights.
func (l LayerSpec) Parametric() bool { return l.Kind == KindConv || l.Kind == KindFull }

// Edge is a directed connection between two named layers.
type Edge struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// NetDef is a DNN architecture: an input shape plus a DAG of layer specs.
// The runtime engine additionally requires the DAG to be a simple chain
// (every node has at most one predecessor and successor), which covers the
// architectures in the paper's Table I.
type NetDef struct {
	Name   string      `json:"name"`
	InC    int         `json:"in_c"`
	InH    int         `json:"in_h"`
	InW    int         `json:"in_w"`
	Nodes  []LayerSpec `json:"nodes"`
	Edges  []Edge      `json:"edges"`
	Labels int         `json:"labels"` // size of the prediction label domain
}

// ErrNetDef reports an invalid network definition.
var ErrNetDef = errors.New("dnn: invalid network definition")

// Node returns the spec with the given name, or nil.
func (n *NetDef) Node(name string) *LayerSpec {
	for i := range n.Nodes {
		if n.Nodes[i].Name == name {
			return &n.Nodes[i]
		}
	}
	return nil
}

// Validate checks structural well-formedness: unique names, known kinds,
// edges referencing existing nodes, and acyclicity.
func (n *NetDef) Validate() error {
	if n.InC <= 0 || n.InH <= 0 || n.InW <= 0 {
		return fmt.Errorf("%w: input shape %dx%dx%d", ErrNetDef, n.InC, n.InH, n.InW)
	}
	if len(n.Nodes) == 0 {
		return fmt.Errorf("%w: no layers", ErrNetDef)
	}
	seen := make(map[string]bool, len(n.Nodes))
	for _, l := range n.Nodes {
		if l.Name == "" {
			return fmt.Errorf("%w: unnamed layer", ErrNetDef)
		}
		if seen[l.Name] {
			return fmt.Errorf("%w: duplicate layer name %q", ErrNetDef, l.Name)
		}
		seen[l.Name] = true
		switch l.Kind {
		case KindConv:
			if l.Out <= 0 || l.K <= 0 {
				return fmt.Errorf("%w: conv %q needs out>0 and k>0", ErrNetDef, l.Name)
			}
		case KindPool:
			if l.K <= 0 || (l.Mode != PoolMax && l.Mode != PoolAvg) {
				return fmt.Errorf("%w: pool %q needs k>0 and mode MAX|AVG", ErrNetDef, l.Name)
			}
		case KindFull:
			if l.Out <= 0 {
				return fmt.Errorf("%w: full %q needs out>0", ErrNetDef, l.Name)
			}
		case KindReLU, KindSigmoid, KindTanh, KindSoftmax, KindAdd, KindConcat:
		default:
			return fmt.Errorf("%w: unknown layer kind %q", ErrNetDef, l.Kind)
		}
	}
	for _, e := range n.Edges {
		if !seen[e.From] || !seen[e.To] {
			return fmt.Errorf("%w: edge %s->%s references unknown node", ErrNetDef, e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("%w: self edge on %s", ErrNetDef, e.From)
		}
	}
	if _, err := n.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns the node names in topological order, or an error if the
// edge set contains a cycle.
func (n *NetDef) TopoOrder() ([]string, error) {
	indeg := make(map[string]int, len(n.Nodes))
	adj := make(map[string][]string, len(n.Nodes))
	for _, l := range n.Nodes {
		indeg[l.Name] = 0
	}
	for _, e := range n.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		indeg[e.To]++
	}
	// Deterministic Kahn: seed the queue in declaration order.
	var queue []string
	for _, l := range n.Nodes {
		if indeg[l.Name] == 0 {
			queue = append(queue, l.Name)
		}
	}
	var order []string
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != len(n.Nodes) {
		return nil, fmt.Errorf("%w: cycle in layer DAG", ErrNetDef)
	}
	return order, nil
}

// Chain returns the layer specs in execution order, verifying that the DAG
// is a simple chain. Chain-shaped models cover the paper's Table I; general
// DAGs (with add/concat merge nodes) are executed by the DAG path in Build.
func (n *NetDef) Chain() ([]LayerSpec, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	out := make(map[string]int)
	in := make(map[string]int)
	for _, e := range n.Edges {
		out[e.From]++
		in[e.To]++
	}
	for _, l := range n.Nodes {
		if out[l.Name] > 1 || in[l.Name] > 1 {
			return nil, fmt.Errorf("%w: node %q is a branch point; use the DAG executor", ErrNetDef, l.Name)
		}
	}
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	specs := make([]LayerSpec, 0, len(order))
	for _, name := range order {
		specs = append(specs, *n.Node(name))
	}
	return specs, nil
}

// Next returns the names of the direct successors of node name.
func (n *NetDef) Next(name string) []string {
	var out []string
	for _, e := range n.Edges {
		if e.From == name {
			out = append(out, e.To)
		}
	}
	return out
}

// Prev returns the names of the direct predecessors of node name.
func (n *NetDef) Prev(name string) []string {
	var out []string
	for _, e := range n.Edges {
		if e.To == name {
			out = append(out, e.From)
		}
	}
	return out
}

// Clone returns a deep copy of the definition.
func (n *NetDef) Clone() *NetDef {
	c := *n
	c.Nodes = append([]LayerSpec(nil), n.Nodes...)
	c.Edges = append([]Edge(nil), n.Edges...)
	return &c
}

// MarshalJSON/Unmarshal round-trips are provided by the struct tags; ToJSON
// and FromJSON are convenience wrappers used by the catalog and DLV.
func (n *NetDef) ToJSON() ([]byte, error) { return json.MarshalIndent(n, "", "  ") }

// NetDefFromJSON parses a NetDef and validates it.
func NetDefFromJSON(data []byte) (*NetDef, error) {
	var n NetDef
	if err := json.Unmarshal(data, &n); err != nil {
		return nil, fmt.Errorf("dnn: parsing NetDef: %w", err)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &n, nil
}

// ChainDef builds a NetDef whose edges connect the given nodes in order; a
// convenience constructor used by the zoo and tests.
func ChainDef(name string, inC, inH, inW, labels int, nodes ...LayerSpec) *NetDef {
	def := &NetDef{Name: name, InC: inC, InH: inH, InW: inW, Labels: labels, Nodes: nodes}
	for i := 0; i+1 < len(nodes); i++ {
		def.Edges = append(def.Edges, Edge{From: nodes[i].Name, To: nodes[i+1].Name})
	}
	return def
}
