package dnn

import (
	"math/rand"
	"sync"
	"testing"
)

// trainSnapshot trains a fresh lenet on a fixed toy stream and returns the
// final weights — the bit-identity probe for the pooling chicken-bit.
func trainSnapshot(t *testing.T) map[string][]float32 {
	t.Helper()
	n, err := Build(lenetDef(), rand.New(rand.NewSource(41)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	sgd := &SGD{LR: 0.05}
	for step := 0; step < 12; step++ {
		n.ZeroGrads()
		for b := 0; b < 4; b++ {
			in := randVolume(rng, Shape{C: 1, H: 12, W: 12})
			n.LossAndBackward(in, rng.Intn(10))
		}
		sgd.Step(n, 4)
	}
	out := map[string][]float32{}
	for name, w := range n.Params() {
		out[name] = append([]float32(nil), w.Data()...)
	}
	return out
}

// TestScratchPoolingBitIdentical: pooling moves buffers, never math — full
// training runs with the arena on and off must produce bit-identical
// weights.
func TestScratchPoolingBitIdentical(t *testing.T) {
	prev := SetScratchPooling(true)
	defer SetScratchPooling(prev)
	pooled := trainSnapshot(t)
	SetScratchPooling(false)
	fresh := trainSnapshot(t)
	for name, want := range fresh {
		got := pooled[name]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("layer %q weight %d: pooled %v != unpooled %v", name, i, got[i], want[i])
			}
		}
	}
}

// TestScratchPoolingCutsAllocs: steady-state training steps with the arena
// on must allocate far less than with it off — the point of the arena.
func TestScratchPoolingCutsAllocs(t *testing.T) {
	n, err := Build(lenetDef(), rand.New(rand.NewSource(43)))
	if err != nil {
		t.Fatal(err)
	}
	in := randVolume(rand.New(rand.NewSource(44)), Shape{C: 1, H: 12, W: 12})
	step := func() { n.LossAndBackward(in, 3) }

	prev := SetScratchPooling(true)
	defer SetScratchPooling(prev)
	step() // warm the persistent buffers
	pooled := testing.AllocsPerRun(20, step)
	SetScratchPooling(false)
	fresh := testing.AllocsPerRun(20, step)
	if pooled > fresh/4 {
		t.Fatalf("pooled steady state allocates %.0f/op vs %.0f/op unpooled — arena not engaging", pooled, fresh)
	}
}

// TestReleaseScratchKeepsNetworkUsable: releasing scratch hands buffers back
// to the pool but the network must keep producing identical outputs.
func TestReleaseScratchKeepsNetworkUsable(t *testing.T) {
	n, err := Build(lenetDef(), rand.New(rand.NewSource(45)))
	if err != nil {
		t.Fatal(err)
	}
	in := randVolume(rand.New(rand.NewSource(46)), Shape{C: 1, H: 12, W: 12})
	before := n.Forward(in)
	n.ReleaseScratch()
	after := n.Forward(in)
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatalf("output %d changed across ReleaseScratch: %v vs %v", i, before.Data[i], after.Data[i])
		}
	}
	n.ZeroGrads()
	n.LossAndBackward(in, 1) // must not panic on re-acquired buffers
}

// TestSetConvKernelClamp: out-of-range selections clamp to the im2col
// default instead of leaving passes on an undefined path.
func TestSetConvKernelClamp(t *testing.T) {
	prev := SetConvKernel(ConvIm2col)
	defer SetConvKernel(prev)
	SetConvKernel(ConvKernel(-3))
	if got := ActiveConvKernel(); got != ConvIm2col {
		t.Fatalf("negative kernel selection landed on %d, want ConvIm2col", got)
	}
	SetConvKernel(ConvKernel(99))
	if got := ActiveConvKernel(); got != ConvIm2col {
		t.Fatalf("out-of-range kernel selection landed on %d, want ConvIm2col", got)
	}
	if prevSel := SetConvKernel(ConvNaive); prevSel != ConvIm2col {
		t.Fatalf("previous selection = %d, want ConvIm2col", prevSel)
	}
	if got := ActiveConvKernel(); got != ConvNaive {
		t.Fatalf("ConvNaive selection landed on %d", got)
	}
}

// TestSetConvKernelConcurrent hammers the kernel selector from many
// goroutines (with garbage values mixed in) while networks run passes —
// under -race this asserts the knob is safe mid-flight, and every observed
// selection must be a defined kernel.
func TestSetConvKernelConcurrent(t *testing.T) {
	prev := SetConvKernel(ConvIm2col)
	defer SetConvKernel(prev)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vals := []ConvKernel{ConvIm2col, ConvNaive, ConvKernel(-1), ConvKernel(7)}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				SetConvKernel(vals[(g+i)%len(vals)])
				if k := ActiveConvKernel(); k != ConvIm2col && k != ConvNaive {
					t.Errorf("observed undefined kernel %d", k)
					return
				}
			}
		}(g)
	}
	n, err := Build(lenetDef(), rand.New(rand.NewSource(47)))
	if err != nil {
		t.Fatal(err)
	}
	in := randVolume(rand.New(rand.NewSource(48)), Shape{C: 1, H: 12, W: 12})
	for i := 0; i < 10; i++ {
		n.ZeroGrads()
		n.LossAndBackward(in, i%10)
	}
	close(stop)
	wg.Wait()
}

// TestScratchSizeClasses pins the arena's size-class rules: requests round
// up to a power-of-two capacity, returned arenas are recycled, and
// odd-capacity slices are dropped rather than pooled.
func TestScratchSizeClasses(t *testing.T) {
	s := getFloats(100)
	if len(s) != 100 || cap(s) != 128 {
		t.Fatalf("getFloats(100): len %d cap %d, want 100/128", len(s), cap(s))
	}
	for i := range s {
		s[i] = 7
	}
	putFloats(s)
	s2 := getFloats(90)
	if cap(s2) != 128 {
		t.Fatalf("recycled cap = %d, want 128", cap(s2))
	}
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("recycled slice not zeroed at %d: %v", i, v)
		}
	}
	// Odd capacities (pooling-off allocations) must be dropped, not pooled.
	putFloats(make([]float32, 100))
	// Oversized requests fall through to plain make.
	huge := getFloats((1 << scratchMaxBits) + 1)
	if len(huge) != (1<<scratchMaxBits)+1 {
		t.Fatalf("oversized request len = %d", len(huge))
	}
	putFloats(huge)
}
