package dnn

import (
	"math/rand"
	"testing"
)

// tiny separable task: 2D points, label = sign quadrant-ish.
func toyExamples(rng *rand.Rand, n int) []Example {
	out := make([]Example, n)
	for i := range out {
		x := float32(rng.NormFloat64())
		y := float32(rng.NormFloat64())
		label := 0
		if x+y > 0 {
			label = 1
		}
		out[i] = Example{Input: FlatVolume([]float32{x, y}), Label: label}
	}
	return out
}

func toyNet(t *testing.T, seed int64) *Network {
	t.Helper()
	def := ChainDef("toy", 2, 1, 1, 2,
		LayerSpec{Name: "ip1", Kind: KindFull, Out: 8},
		LayerSpec{Name: "relu1", Kind: KindReLU},
		LayerSpec{Name: "ip2", Kind: KindFull, Out: 2},
	)
	n, err := Build(def, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestTrainLearnsToyTask(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	examples := toyExamples(rng, 400)
	n := toyNet(t, 2)
	before := Evaluate(n, examples)
	res, err := Train(n, examples, TrainConfig{Epochs: 5, BatchSize: 16, LR: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	after := Evaluate(n, examples)
	if after < 0.9 {
		t.Fatalf("training failed to learn: accuracy %v -> %v", before, after)
	}
	if len(res.Log) == 0 {
		t.Fatal("training log must not be empty")
	}
	first, last := res.Log[0], res.Log[len(res.Log)-1]
	if last.Loss >= first.Loss {
		t.Fatalf("loss should decrease: %v -> %v", first.Loss, last.Loss)
	}
}

func TestTrainCheckpointing(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	examples := toyExamples(rng, 64)
	n := toyNet(t, 5)
	res, err := Train(n, examples, TrainConfig{Epochs: 2, BatchSize: 8, CheckpointEvery: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) != 4 { // 8 iters/epoch * 2 / 4
		t.Fatalf("checkpoints = %d", len(res.Checkpoints))
	}
	for i := 1; i < len(res.Checkpoints); i++ {
		if res.Checkpoints[i].Iter <= res.Checkpoints[i-1].Iter {
			t.Fatal("checkpoint iterations must increase")
		}
	}
	// Final weights must match the live network.
	if !res.Final["ip2"].Equal(n.Params()["ip2"]) {
		t.Fatal("final snapshot must equal live weights")
	}
	// Checkpoint weights must be frozen copies, not live views.
	if res.Checkpoints[0].Weights["ip2"].Equal(n.Params()["ip2"]) {
		t.Fatal("early checkpoint should differ from final weights")
	}
}

func TestTrainDeterministic(t *testing.T) {
	rng1 := rand.New(rand.NewSource(7))
	ex1 := toyExamples(rng1, 64)
	n1 := toyNet(t, 8)
	r1, err := Train(n1, ex1, TrainConfig{Epochs: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng2 := rand.New(rand.NewSource(7))
	ex2 := toyExamples(rng2, 64)
	n2 := toyNet(t, 8)
	r2, err := Train(n2, ex2, TrainConfig{Epochs: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Final["ip1"].Equal(r2.Final["ip1"]) {
		t.Fatal("identical seeds must give identical training runs")
	}
}

func TestTrainEmptyExamples(t *testing.T) {
	n := toyNet(t, 10)
	if _, err := Train(n, nil, TrainConfig{}); err == nil {
		t.Fatal("want error for empty training set")
	}
}

func TestEvaluateEmpty(t *testing.T) {
	n := toyNet(t, 11)
	if acc := Evaluate(n, nil); acc != 0 {
		t.Fatalf("Evaluate(nil) = %v", acc)
	}
}
