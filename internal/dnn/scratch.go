package dnn

import (
	"sync"
	"sync/atomic"

	"modelhub/internal/tensor"
)

// Scratch arena: the training hot path (im2col unrolls, layer activations,
// gradient volumes) used to allocate fresh buffers every example, and
// concurrent DQL enumeration sessions multiplied that churn into GC pressure.
// Layers and networks now hold persistent per-instance scratch buffers whose
// backing storage comes from a shared sync.Pool of power-of-two float arenas,
// and Network.ReleaseScratch returns a network's scratch to the shared pool
// when a worker retires it (e.g. a DQL candidate network after its grid cell
// finishes). Since a Network is single-goroutine by contract, per-instance
// buffers are per-worker scratch; the sync.Pool only mediates handoff between
// workers, so it sees no hot-path traffic.
//
// Determinism: pooling changes where bytes live, never what is computed —
// buffers that are scatter-add targets are zeroed on reuse, and every other
// kernel writes each output element. SetScratchPooling(false) restores the
// allocate-per-call behavior so the effect is measurable (mhbench -exp
// scaling reports train_step and train_step_nopool side by side).

// scratchOn gates the arena; default on. Stored inverted-free as a Bool set
// at init so the zero value of the package is still usable in tests that
// poke internals.
var scratchOn atomic.Bool

func init() { scratchOn.Store(true) }

// SetScratchPooling enables or disables scratch-buffer pooling and returns
// the previous setting. Disabling restores per-call allocation (the
// pre-pooling behavior) — useful only for measuring the pooling win; results
// are bit-identical either way.
func SetScratchPooling(on bool) bool { return scratchOn.Swap(on) }

// ScratchPooling reports whether scratch-buffer pooling is enabled.
func ScratchPooling() bool { return scratchOn.Load() }

// Size-class pools: class i holds []float32 slices of capacity exactly
// 1<<(scratchMinBits+i). Requests round up to the next class; requests
// beyond the largest class fall through to plain make and are dropped on
// release rather than pooled.
const (
	scratchMinBits = 6  // 64 floats (256 B) — smaller requests round up here
	scratchMaxBits = 22 // 4M floats (16 MB) — largest pooled arena
)

var scratchClasses [scratchMaxBits - scratchMinBits + 1]sync.Pool

// scratchClass returns the pool index whose capacity fits n, or -1 if n
// exceeds the largest class.
func scratchClass(n int) int {
	size := 1 << scratchMinBits
	for i := range scratchClasses {
		if n <= size {
			return i
		}
		size <<= 1
	}
	return -1
}

// getFloats returns a length-n float32 slice, zeroed, backed by a pooled
// power-of-two arena when one fits.
func getFloats(n int) []float32 {
	cls := scratchClass(n)
	if cls < 0 {
		return make([]float32, n)
	}
	if v := scratchClasses[cls].Get(); v != nil {
		s := (*(v.(*[]float32)))[:n]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	return make([]float32, n, 1<<(scratchMinBits+cls))
}

// putFloats returns a slice to its size-class pool. Slices whose capacity is
// not exactly a pooled class size (e.g. allocated while pooling was off) are
// dropped for the GC — the pool never holds odd-sized arenas.
func putFloats(s []float32) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	cls := scratchClass(c)
	if cls < 0 || 1<<(scratchMinBits+cls) != c {
		return
	}
	full := s[:c]
	scratchClasses[cls].Put(&full)
}

// scratchVolume returns a shape-s volume for a layer- or network-owned slot.
// With pooling on, the slot's buffer is reused across calls (re-acquired
// from the shared pool when the shape changes); zero=true clears it first —
// required for scatter-add targets, skipped for kernels that write every
// element. With pooling off, every call allocates a fresh zeroed volume and
// the slot stays empty.
func scratchVolume(slot **Volume, s Shape, zero bool) *Volume {
	if !scratchOn.Load() {
		return NewVolume(s)
	}
	v := *slot
	if v == nil || v.Shape != s {
		if v != nil {
			putFloats(v.Data)
		}
		v = &Volume{Shape: s, Data: getFloats(s.Size())}
		*slot = v
		return v
	}
	if zero {
		for i := range v.Data {
			v.Data[i] = 0
		}
	}
	return v
}

// scratchMapVolume is scratchVolume for per-node slots keyed by name (merge
// inputs, backward gradient accumulators).
func scratchMapVolume(slots map[string]*Volume, name string, s Shape, zero bool) *Volume {
	if !scratchOn.Load() {
		return NewVolume(s)
	}
	v := slots[name]
	if v == nil || v.Shape != s {
		if v != nil {
			putFloats(v.Data)
		}
		v = &Volume{Shape: s, Data: getFloats(s.Size())}
		slots[name] = v
		return v
	}
	if zero {
		for i := range v.Data {
			v.Data[i] = 0
		}
	}
	return v
}

// scratchMatrix returns a rows×cols matrix for a layer-owned slot. The slot
// persists in both pooling modes (conv column buffers were persistent before
// the arena existed); pooling only changes whether the backing array comes
// from — and returns to — the shared pool.
func scratchMatrix(slot **tensor.Matrix, rows, cols int) *tensor.Matrix {
	if m := *slot; m != nil && m.Rows() == rows && m.Cols() == cols {
		return m
	}
	if *slot != nil {
		putFloats((*slot).Data())
	}
	var m *tensor.Matrix
	if scratchOn.Load() {
		m = tensor.MustFromSlice(rows, cols, getFloats(rows*cols))
	} else {
		m = tensor.NewMatrix(rows, cols)
	}
	*slot = m
	return m
}

// releaseVolume returns a slot's buffer to the shared pool and clears it.
func releaseVolume(slot **Volume) {
	if *slot != nil {
		putFloats((*slot).Data)
		*slot = nil
	}
}

// releaseMatrix returns a slot's backing array to the shared pool and clears
// it.
func releaseMatrix(slot **tensor.Matrix) {
	if *slot != nil {
		putFloats((*slot).Data())
		*slot = nil
	}
}
