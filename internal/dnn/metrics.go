package dnn

import "modelhub/internal/obs"

// Training metrics published by ObsEpochHook (see DESIGN.md §8).
var (
	mTrainEpochs       = obs.GetCounter("dnn.train.epochs")
	mTrainExamples     = obs.GetCounter("dnn.train.examples")
	mTrainEpochSeconds = obs.GetHistogram("dnn.train.epoch_seconds")
	gTrainLoss         = obs.GetFloatGauge("dnn.train.loss")
	gTrainExamplesPS   = obs.GetFloatGauge("dnn.train.examples_per_sec")
)

// ObsEpochHook returns a TrainConfig.EpochHook that publishes per-epoch
// training progress as obs metrics: epoch and example counters, an
// epoch-duration histogram, and live loss / examples-per-second gauges.
// The hook is a no-op while obs is disabled.
func ObsEpochHook() func(EpochStats) {
	return func(st EpochStats) {
		if !obs.Enabled() {
			return
		}
		mTrainEpochs.Inc()
		mTrainExamples.Add(int64(st.Examples))
		mTrainEpochSeconds.Observe(st.Duration.Seconds())
		gTrainLoss.Set(st.Loss)
		if secs := st.Duration.Seconds(); secs > 0 {
			gTrainExamplesPS.Set(float64(st.Examples) / secs)
		}
	}
}
