package dnn

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"modelhub/internal/obs"
	"modelhub/internal/tensor"
)

// Example is one labelled training or test instance.
type Example struct {
	Input *Volume
	Label int
}

// LogEntry is one measurement row in a training log — the provenance
// metadata DLV extracts into the catalog (paper Sec. III-A: loss and
// accuracy measures at some iterations, dynamic optimizer state).
type LogEntry struct {
	Iter     int
	Loss     float64
	Accuracy float64
	LR       float64
}

// Checkpoint is one snapshot taken during training (paper Fig. 4).
type Checkpoint struct {
	Iter    int
	Weights map[string]*tensor.Matrix
}

// TrainResult aggregates the artifacts of one training run.
type TrainResult struct {
	Log         []LogEntry
	Checkpoints []Checkpoint
	Final       map[string]*tensor.Matrix
}

// EpochStats summarizes one completed (possibly MaxIters-truncated) epoch,
// delivered to TrainConfig.EpochHook.
type EpochStats struct {
	Epoch    int           // zero-based epoch index
	Loss     float64       // mean per-example loss over the epoch
	Accuracy float64       // training accuracy over the epoch
	Examples int           // examples consumed this epoch
	Duration time.Duration // wall time of the epoch
}

// TrainConfig drives Train. Zero values get sensible defaults.
type TrainConfig struct {
	// Ctx, when non-nil, parents the run's "dnn.train" span, so training
	// joins the caller's trace (a DQL candidate, a core commit). Nil means
	// the span is a root of its own trace.
	Ctx             context.Context
	Epochs          int
	BatchSize       int
	LR              float64
	Momentum        float64
	WeightDecay     float64
	CheckpointEvery int // iterations between checkpoints; 0 disables
	LogEvery        int // iterations between log entries; 0 = every 10
	MaxIters        int // stop after this many minibatch steps; 0 = no cap
	// LayerLR overrides the learning rate per layer name (see SGD.LayerLR).
	LayerLR map[string]float64
	Seed    int64
	// EpochHook, when non-nil, is called after every epoch (including a
	// partial epoch cut short by MaxIters) with that epoch's summary. Use
	// ObsEpochHook to publish the summaries as obs metrics.
	EpochHook func(EpochStats)
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.LogEvery == 0 {
		c.LogEvery = 10
	}
	return c
}

// Train runs minibatch SGD over the examples and returns the training log,
// checkpoints, and final weights. The same seed always yields the same run.
func Train(n *Network, examples []Example, cfg TrainConfig) (*TrainResult, error) {
	cfg = cfg.withDefaults()
	if len(examples) == 0 {
		return nil, fmt.Errorf("dnn: no training examples")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := &SGD{LR: cfg.LR, Momentum: cfg.Momentum, WeightDecay: cfg.WeightDecay, LayerLR: cfg.LayerLR}
	res := &TrainResult{}
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	iter := 0
	var runLoss float64
	var runCorrect, runSeen int
	if cfg.MaxIters > 0 {
		// Enough epochs to reach the iteration budget.
		itersPerEpoch := (len(examples) + cfg.BatchSize - 1) / cfg.BatchSize
		need := (cfg.MaxIters + itersPerEpoch - 1) / itersPerEpoch
		if need > cfg.Epochs {
			cfg.Epochs = need
		}
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	_, span := obs.Start(ctx, "dnn.train")
	defer span.End()
	span.SetAttrInt("dnn.examples", int64(len(examples)))
	span.SetAttrInt("dnn.batch_size", int64(cfg.BatchSize))
	span.SetAttrInt("dnn.epochs", int64(cfg.Epochs))
epochs:
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var epochStart time.Time
		var epochLoss float64
		var epochCorrect, epochSeen int
		if cfg.EpochHook != nil || span != nil {
			epochStart = time.Now()
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			n.ZeroGrads()
			for _, idx := range order[start:end] {
				ex := examples[idx]
				loss, correct := n.LossAndBackward(ex.Input, ex.Label)
				runLoss += loss
				runSeen++
				epochLoss += loss
				epochSeen++
				if correct {
					runCorrect++
					epochCorrect++
				}
			}
			opt.Step(n, end-start)
			iter++
			if iter%cfg.LogEvery == 0 {
				res.Log = append(res.Log, LogEntry{
					Iter:     iter,
					Loss:     runLoss / float64(runSeen),
					Accuracy: float64(runCorrect) / float64(runSeen),
					LR:       cfg.LR,
				})
				runLoss, runCorrect, runSeen = 0, 0, 0
			}
			if cfg.CheckpointEvery > 0 && iter%cfg.CheckpointEvery == 0 {
				res.Checkpoints = append(res.Checkpoints, Checkpoint{Iter: iter, Weights: n.Snapshot()})
			}
			if cfg.MaxIters > 0 && iter >= cfg.MaxIters {
				callEpochHook(cfg, span, epoch, epochLoss, epochCorrect, epochSeen, epochStart)
				break epochs
			}
		}
		callEpochHook(cfg, span, epoch, epochLoss, epochCorrect, epochSeen, epochStart)
	}
	span.SetAttrInt("dnn.iters", int64(iter))
	res.Final = n.Snapshot()
	return res, nil
}

// callEpochHook delivers one epoch summary to cfg.EpochHook and, when the
// run is traced, records the epoch as a span event on the training span.
func callEpochHook(cfg TrainConfig, span *obs.Span, epoch int, loss float64, correct, seen int, start time.Time) {
	if seen == 0 {
		return
	}
	stats := EpochStats{
		Epoch:    epoch,
		Loss:     loss / float64(seen),
		Accuracy: float64(correct) / float64(seen),
		Examples: seen,
		Duration: time.Since(start),
	}
	span.Event("epoch",
		obs.Attr{Key: "epoch", Value: strconv.Itoa(stats.Epoch)},
		obs.Attr{Key: "loss", Value: strconv.FormatFloat(stats.Loss, 'g', 6, 64)},
		obs.Attr{Key: "accuracy", Value: strconv.FormatFloat(stats.Accuracy, 'g', 6, 64)},
		obs.Attr{Key: "examples", Value: strconv.Itoa(stats.Examples)},
		obs.Attr{Key: "duration_ns", Value: strconv.FormatInt(stats.Duration.Nanoseconds(), 10)})
	if cfg.EpochHook != nil {
		cfg.EpochHook(stats)
	}
}

// Evaluate returns the classification accuracy of n over the examples.
func Evaluate(n *Network, examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	for _, ex := range examples {
		if n.Predict(ex.Input) == ex.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}

// EvaluateParallel computes classification accuracy using `workers` network
// clones evaluating disjoint shards concurrently. It matches Evaluate
// exactly (prediction is deterministic per example).
func EvaluateParallel(n *Network, examples []Example, workers int) (float64, error) {
	if len(examples) == 0 {
		return 0, nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(examples) {
		workers = len(examples)
	}
	correct := make([]int, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	per := (len(examples) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * per
		end := start + per
		if end > len(examples) {
			end = len(examples)
		}
		if start >= end {
			continue
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			clone, err := n.Clone()
			if err != nil {
				errs[w] = err
				return
			}
			defer clone.ReleaseScratch() // hand shard scratch back to the arena
			for _, ex := range examples[start:end] {
				if clone.Predict(ex.Input) == ex.Label {
					correct[w]++
				}
			}
		}(w, start, end)
	}
	wg.Wait()
	total := 0
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return 0, errs[w]
		}
		total += correct[w]
	}
	return float64(total) / float64(len(examples)), nil
}
