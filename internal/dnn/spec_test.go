package dnn

import (
	"errors"
	"testing"
)

func lenetDef() *NetDef {
	return ChainDef("lenet", 1, 12, 12, 10,
		LayerSpec{Name: "conv1", Kind: KindConv, Out: 4, K: 3, Pad: 1},
		LayerSpec{Name: "pool1", Kind: KindPool, K: 2, Mode: PoolMax},
		LayerSpec{Name: "ip1", Kind: KindFull, Out: 16},
		LayerSpec{Name: "relu1", Kind: KindReLU},
		LayerSpec{Name: "ip2", Kind: KindFull, Out: 10},
		LayerSpec{Name: "prob", Kind: KindSoftmax},
	)
}

func TestValidateOK(t *testing.T) {
	if err := lenetDef().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*NetDef)
	}{
		{"bad input", func(n *NetDef) { n.InC = 0 }},
		{"no layers", func(n *NetDef) { n.Nodes = nil; n.Edges = nil }},
		{"dup name", func(n *NetDef) { n.Nodes[1].Name = "conv1" }},
		{"unnamed", func(n *NetDef) { n.Nodes[0].Name = "" }},
		{"bad kind", func(n *NetDef) { n.Nodes[0].Kind = "wat" }},
		{"conv no out", func(n *NetDef) { n.Nodes[0].Out = 0 }},
		{"pool no mode", func(n *NetDef) { n.Nodes[1].Mode = "" }},
		{"full no out", func(n *NetDef) { n.Nodes[2].Out = 0 }},
		{"edge unknown", func(n *NetDef) { n.Edges[0].To = "ghost" }},
		{"self edge", func(n *NetDef) { n.Edges[0].To = n.Edges[0].From }},
		{"cycle", func(n *NetDef) { n.Edges = append(n.Edges, Edge{From: "prob", To: "conv1"}) }},
	}
	for _, c := range cases {
		def := lenetDef()
		c.mut(def)
		if err := def.Validate(); !errors.Is(err, ErrNetDef) {
			t.Errorf("%s: want ErrNetDef, got %v", c.name, err)
		}
	}
}

func TestTopoOrder(t *testing.T) {
	def := lenetDef()
	order, err := def.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 6 || order[0] != "conv1" || order[5] != "prob" {
		t.Fatalf("order = %v", order)
	}
}

func TestChainRejectsBranch(t *testing.T) {
	def := lenetDef()
	def.Edges = append(def.Edges, Edge{From: "conv1", To: "ip1"})
	if _, err := def.Chain(); !errors.Is(err, ErrNetDef) {
		t.Fatalf("want branch rejection, got %v", err)
	}
}

func TestNextPrev(t *testing.T) {
	def := lenetDef()
	if next := def.Next("conv1"); len(next) != 1 || next[0] != "pool1" {
		t.Fatalf("Next = %v", next)
	}
	if prev := def.Prev("pool1"); len(prev) != 1 || prev[0] != "conv1" {
		t.Fatalf("Prev = %v", prev)
	}
	if def.Next("prob") != nil {
		t.Fatal("terminal node should have no next")
	}
}

func TestCloneIndependent(t *testing.T) {
	def := lenetDef()
	c := def.Clone()
	c.Nodes[0].Out = 99
	c.Edges[0].To = "x"
	if def.Nodes[0].Out == 99 || def.Edges[0].To == "x" {
		t.Fatal("Clone must deep-copy nodes and edges")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	def := lenetDef()
	blob, err := def.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := NetDefFromJSON(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != def.Name || len(got.Nodes) != len(def.Nodes) || len(got.Edges) != len(def.Edges) {
		t.Fatal("JSON round trip lost structure")
	}
}

func TestNetDefFromJSONInvalid(t *testing.T) {
	if _, err := NetDefFromJSON([]byte("{")); err == nil {
		t.Fatal("want parse error")
	}
	if _, err := NetDefFromJSON([]byte(`{"name":"x"}`)); !errors.Is(err, ErrNetDef) {
		t.Fatalf("want ErrNetDef, got %v", err)
	}
}

func TestNodeLookup(t *testing.T) {
	def := lenetDef()
	if def.Node("ip1") == nil || def.Node("nope") != nil {
		t.Fatal("Node lookup wrong")
	}
}

func TestOutShape(t *testing.T) {
	in := Shape{C: 1, H: 12, W: 12}
	conv := LayerSpec{Name: "c", Kind: KindConv, Out: 4, K: 3, Pad: 1}
	s, err := conv.OutShape(in)
	if err != nil || s != (Shape{C: 4, H: 12, W: 12}) {
		t.Fatalf("conv OutShape = %v, %v", s, err)
	}
	convNoPad := LayerSpec{Name: "c", Kind: KindConv, Out: 4, K: 5}
	s, err = convNoPad.OutShape(in)
	if err != nil || s != (Shape{C: 4, H: 8, W: 8}) {
		t.Fatalf("conv nopad OutShape = %v, %v", s, err)
	}
	pool := LayerSpec{Name: "p", Kind: KindPool, K: 2, Mode: PoolMax}
	s, err = pool.OutShape(Shape{C: 4, H: 12, W: 12})
	if err != nil || s != (Shape{C: 4, H: 6, W: 6}) {
		t.Fatalf("pool OutShape = %v, %v", s, err)
	}
	full := LayerSpec{Name: "f", Kind: KindFull, Out: 7}
	s, err = full.OutShape(Shape{C: 4, H: 6, W: 6})
	if err != nil || s != (Shape{C: 7, H: 1, W: 1}) {
		t.Fatalf("full OutShape = %v, %v", s, err)
	}
	tooBig := LayerSpec{Name: "c", Kind: KindConv, Out: 1, K: 20}
	if _, err := tooBig.OutShape(in); err == nil {
		t.Fatal("oversized kernel must error")
	}
}

func TestParamShape(t *testing.T) {
	conv := LayerSpec{Name: "c", Kind: KindConv, Out: 4, K: 3}
	r, c, err := conv.ParamShape(Shape{C: 2, H: 8, W: 8})
	if err != nil || r != 4 || c != 2*9+1 {
		t.Fatalf("conv ParamShape = %d,%d,%v", r, c, err)
	}
	full := LayerSpec{Name: "f", Kind: KindFull, Out: 5}
	r, c, err = full.ParamShape(Shape{C: 3, H: 2, W: 2})
	if err != nil || r != 5 || c != 13 {
		t.Fatalf("full ParamShape = %d,%d,%v", r, c, err)
	}
	relu := LayerSpec{Name: "r", Kind: KindReLU}
	if _, _, err := relu.ParamShape(Shape{C: 1, H: 1, W: 1}); err == nil {
		t.Fatal("non-parametric layer must error")
	}
}

func TestParametric(t *testing.T) {
	if !(LayerSpec{Kind: KindConv}).Parametric() || (LayerSpec{Kind: KindPool}).Parametric() {
		t.Fatal("Parametric flags wrong")
	}
}
