package dnn

import (
	"fmt"
	"math"

	"modelhub/internal/tensor"
)

// runtimeLayer is a built, executable layer. Forward caches whatever the
// subsequent Backward call needs, so a runtime layer is not safe for
// concurrent use; clone the Network per goroutine instead.
type runtimeLayer interface {
	Spec() LayerSpec
	InShape() Shape
	OutShape() Shape
	Forward(in *Volume) *Volume
	Backward(dOut *Volume) *Volume
	// Weights returns the learnable parameter matrix (bias folded in as the
	// last column) or nil for non-parametric layers.
	Weights() *tensor.Matrix
	// Grad returns the accumulated weight gradient, or nil.
	Grad() *tensor.Matrix
	// release returns the layer's scratch buffers (activations, gradient
	// volumes, im2col unrolls) to the shared arena pool; see scratch.go.
	release()
}

// buildLayer constructs the runtime layer for a spec at a given input shape.
func buildLayer(spec LayerSpec, in Shape) (runtimeLayer, error) {
	out, err := spec.OutShape(in)
	if err != nil {
		return nil, err
	}
	base := layerBase{spec: spec, in: in, out: out}
	switch spec.Kind {
	case KindConv:
		stride := spec.Stride
		if stride == 0 {
			stride = 1
		}
		rows, cols, err := spec.ParamShape(in)
		if err != nil {
			return nil, err
		}
		return &convLayer{layerBase: base, stride: stride,
			w: tensor.NewMatrix(rows, cols), g: tensor.NewMatrix(rows, cols)}, nil
	case KindPool:
		stride := spec.Stride
		if stride == 0 {
			stride = spec.K
		}
		return &poolLayer{layerBase: base, stride: stride}, nil
	case KindFull:
		rows, cols, err := spec.ParamShape(in)
		if err != nil {
			return nil, err
		}
		return &fullLayer{layerBase: base,
			w: tensor.NewMatrix(rows, cols), g: tensor.NewMatrix(rows, cols)}, nil
	case KindReLU, KindSigmoid, KindTanh:
		return &actLayer{layerBase: base}, nil
	case KindSoftmax:
		return &softmaxLayer{layerBase: base}, nil
	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrNetDef, spec.Kind)
	}
}

type layerBase struct {
	spec LayerSpec
	in   Shape
	out  Shape
}

func (b *layerBase) Spec() LayerSpec         { return b.spec }
func (b *layerBase) InShape() Shape          { return b.in }
func (b *layerBase) OutShape() Shape         { return b.out }
func (b *layerBase) Weights() *tensor.Matrix { return nil }
func (b *layerBase) Grad() *tensor.Matrix    { return nil }
func (b *layerBase) release()                {}

// ---------- convolution ----------

type convLayer struct {
	layerBase
	stride int
	w, g   *tensor.Matrix
	lastIn *Volume
	// cols holds the im2col unroll of lastIn (C·k·k × outH·outW); dcols the
	// matching gradient buffer. Both are lazily allocated once per layer and
	// reused across examples, so steady-state training and batched
	// evaluation do no per-example column allocation. Forward fills cols and
	// Backward consumes it, so the forward pass's unroll doubles as the dW
	// operand for free.
	cols, dcols *tensor.Matrix
	// outBuf/dInBuf are the layer's persistent activation and input-gradient
	// volumes (scratch.go); dInBuf is a col2im scatter-add target and is
	// zeroed on reuse.
	outBuf, dInBuf *Volume
}

func (l *convLayer) Weights() *tensor.Matrix { return l.w }
func (l *convLayer) Grad() *tensor.Matrix    { return l.g }

func (l *convLayer) release() {
	releaseMatrix(&l.cols)
	releaseMatrix(&l.dcols)
	releaseVolume(&l.outBuf)
	releaseVolume(&l.dInBuf)
	l.lastIn = nil
}

func (l *convLayer) Forward(in *Volume) *Volume {
	if ActiveConvKernel() == ConvNaive {
		return l.forwardNaive(in)
	}
	l.lastIn = in
	k, pad := l.spec.K, l.spec.Pad
	kk := l.in.C * k * k   // contraction depth (weight columns sans bias)
	n := l.out.H * l.out.W // output pixels
	cols := scratchMatrix(&l.cols, kk, n)
	im2col(in, cols, k, l.stride, pad, l.out.H, l.out.W)
	// Bias seed below writes every output element, so no zero-on-reuse.
	out := scratchVolume(&l.outBuf, l.out, false)
	// Seed each output row with its bias, then accumulate W·cols on top:
	// per-element summation order (bias first, then k ascending) matches the
	// naive kernel bit-for-bit.
	biasCol := l.w.Cols() - 1
	for oc := 0; oc < l.out.C; oc++ {
		b := l.w.Row(oc)[biasCol]
		row := out.Data[oc*n : (oc+1)*n]
		for j := range row {
			row[j] = b
		}
	}
	tensor.GemmStrided(l.out.C, n, kk, l.w.Data(), l.w.Cols(), cols.Data(), n, out.Data, n, true)
	return out
}

func (l *convLayer) Backward(dOut *Volume) *Volume {
	if ActiveConvKernel() == ConvNaive {
		return l.backwardNaive(dOut)
	}
	k, pad := l.spec.K, l.spec.Pad
	kk := l.in.C * k * k
	n := l.out.H * l.out.W
	biasCol := l.w.Cols() - 1
	// dW += dOut · colsᵀ, reusing the unroll the forward pass left behind.
	tensor.GemmNTStrided(l.out.C, kk, n, dOut.Data, n, l.cols.Data(), n, l.g.Data(), l.g.Cols(), true)
	for oc := 0; oc < l.out.C; oc++ {
		var s float32
		for _, d := range dOut.Data[oc*n : (oc+1)*n] {
			s += d
		}
		l.g.Row(oc)[biasCol] += s
	}
	// dIn = col2im(Wᵀ · dOut).
	dcols := scratchMatrix(&l.dcols, kk, n)
	tensor.GemmTNStrided(kk, n, l.out.C, l.w.Data(), l.w.Cols(), dOut.Data, n, dcols.Data(), n, false)
	dIn := scratchVolume(&l.dInBuf, l.in, true) // col2im scatter-adds
	col2im(dcols, dIn, k, l.stride, pad, l.out.H, l.out.W)
	return dIn
}

func (l *convLayer) forwardNaive(in *Volume) *Volume {
	l.lastIn = in
	// Every output element is assigned below, so no zero-on-reuse.
	out := scratchVolume(&l.outBuf, l.out, false)
	k, pad := l.spec.K, l.spec.Pad
	biasCol := l.w.Cols() - 1
	for oc := 0; oc < l.out.C; oc++ {
		wrow := l.w.Row(oc)
		for oy := 0; oy < l.out.H; oy++ {
			for ox := 0; ox < l.out.W; ox++ {
				sum := wrow[biasCol]
				for ic := 0; ic < l.in.C; ic++ {
					for ky := 0; ky < k; ky++ {
						iy := oy*l.stride + ky - pad
						if iy < 0 || iy >= l.in.H {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*l.stride + kx - pad
							if ix < 0 || ix >= l.in.W {
								continue
							}
							sum += wrow[(ic*k+ky)*k+kx] * in.At(ic, iy, ix)
						}
					}
				}
				out.Set(oc, oy, ox, sum)
			}
		}
	}
	return out
}

func (l *convLayer) backwardNaive(dOut *Volume) *Volume {
	in := l.lastIn
	dIn := scratchVolume(&l.dInBuf, l.in, true) // scatter-add target
	k, pad := l.spec.K, l.spec.Pad
	biasCol := l.w.Cols() - 1
	for oc := 0; oc < l.out.C; oc++ {
		wrow := l.w.Row(oc)
		grow := l.g.Row(oc)
		for oy := 0; oy < l.out.H; oy++ {
			for ox := 0; ox < l.out.W; ox++ {
				d := dOut.At(oc, oy, ox)
				if d == 0 {
					continue
				}
				grow[biasCol] += d
				for ic := 0; ic < l.in.C; ic++ {
					for ky := 0; ky < k; ky++ {
						iy := oy*l.stride + ky - pad
						if iy < 0 || iy >= l.in.H {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*l.stride + kx - pad
							if ix < 0 || ix >= l.in.W {
								continue
							}
							idx := (ic*k+ky)*k + kx
							grow[idx] += d * in.At(ic, iy, ix)
							dIn.Data[(ic*l.in.H+iy)*l.in.W+ix] += d * wrow[idx]
						}
					}
				}
			}
		}
	}
	return dIn
}

// ---------- pooling ----------

type poolLayer struct {
	layerBase
	stride         int
	argmax         []int // for MAX: input index chosen per output element
	lastIn         *Volume
	outBuf, dInBuf *Volume
}

func (l *poolLayer) release() {
	releaseVolume(&l.outBuf)
	releaseVolume(&l.dInBuf)
	l.argmax = nil
	l.lastIn = nil
}

func (l *poolLayer) Forward(in *Volume) *Volume {
	l.lastIn = in
	// Every output element (and argmax entry) is assigned below.
	out := scratchVolume(&l.outBuf, l.out, false)
	k := l.spec.K
	isMax := l.spec.Mode == PoolMax
	if isMax {
		if sz := l.out.Size(); ScratchPooling() && cap(l.argmax) >= sz {
			l.argmax = l.argmax[:sz]
		} else {
			l.argmax = make([]int, sz)
		}
	}
	oi := 0
	for c := 0; c < l.out.C; c++ {
		for oy := 0; oy < l.out.H; oy++ {
			for ox := 0; ox < l.out.W; ox++ {
				if isMax {
					best := float32(math.Inf(-1))
					bestIdx := -1
					for ky := 0; ky < k; ky++ {
						iy := oy*l.stride + ky
						if iy >= l.in.H {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*l.stride + kx
							if ix >= l.in.W {
								continue
							}
							idx := (c*l.in.H+iy)*l.in.W + ix
							if v := in.Data[idx]; v > best {
								best, bestIdx = v, idx
							}
						}
					}
					out.Data[oi] = best
					l.argmax[oi] = bestIdx
				} else {
					var sum float32
					n := 0
					for ky := 0; ky < k; ky++ {
						iy := oy*l.stride + ky
						if iy >= l.in.H {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*l.stride + kx
							if ix >= l.in.W {
								continue
							}
							sum += in.At(c, iy, ix)
							n++
						}
					}
					out.Data[oi] = sum / float32(n)
				}
				oi++
			}
		}
	}
	return out
}

func (l *poolLayer) Backward(dOut *Volume) *Volume {
	dIn := scratchVolume(&l.dInBuf, l.in, true) // scatter-add target
	k := l.spec.K
	if l.spec.Mode == PoolMax {
		for oi, idx := range l.argmax {
			if idx >= 0 {
				dIn.Data[idx] += dOut.Data[oi]
			}
		}
		return dIn
	}
	oi := 0
	for c := 0; c < l.out.C; c++ {
		for oy := 0; oy < l.out.H; oy++ {
			for ox := 0; ox < l.out.W; ox++ {
				// Count window size (borders may be smaller).
				n := 0
				for ky := 0; ky < k; ky++ {
					if oy*l.stride+ky < l.in.H {
						for kx := 0; kx < k; kx++ {
							if ox*l.stride+kx < l.in.W {
								n++
							}
						}
					}
				}
				share := dOut.Data[oi] / float32(n)
				for ky := 0; ky < k; ky++ {
					iy := oy*l.stride + ky
					if iy >= l.in.H {
						continue
					}
					for kx := 0; kx < k; kx++ {
						ix := ox*l.stride + kx
						if ix >= l.in.W {
							continue
						}
						dIn.Data[(c*l.in.H+iy)*l.in.W+ix] += share
					}
				}
				oi++
			}
		}
	}
	return dIn
}

// ---------- fully connected ----------

type fullLayer struct {
	layerBase
	w, g           *tensor.Matrix
	lastIn         *Volume
	outBuf, dInBuf *Volume
}

func (l *fullLayer) Weights() *tensor.Matrix { return l.w }
func (l *fullLayer) Grad() *tensor.Matrix    { return l.g }

func (l *fullLayer) release() {
	releaseVolume(&l.outBuf)
	releaseVolume(&l.dInBuf)
	l.lastIn = nil
}

func (l *fullLayer) Forward(in *Volume) *Volume {
	l.lastIn = in
	// Bias seed writes every output element before the accumulating GEMM.
	out := scratchVolume(&l.outBuf, l.out, false)
	biasCol := l.w.Cols() - 1
	nIn := len(in.Data)
	// Seed with biases, then one matrix-vector GEMM: summation order (bias
	// first, then inputs ascending) matches the previous scalar loop.
	for o := 0; o < l.out.C; o++ {
		out.Data[o] = l.w.Row(o)[biasCol]
	}
	tensor.GemmStrided(l.out.C, 1, nIn, l.w.Data(), l.w.Cols(), in.Data, 1, out.Data, 1, true)
	return out
}

func (l *fullLayer) Backward(dOut *Volume) *Volume {
	in := l.lastIn
	dIn := scratchVolume(&l.dInBuf, l.in, true) // AddScaled accumulates

	biasCol := l.w.Cols() - 1
	nIn := len(in.Data)
	for o := 0; o < l.out.C; o++ {
		d := dOut.Data[o]
		row := l.w.Row(o)
		grow := l.g.Row(o)
		grow[biasCol] += d
		tensor.AddScaled(grow[:nIn], in.Data, d)
		tensor.AddScaled(dIn.Data, row[:nIn], d)
	}
	return dIn
}

// ---------- activations ----------

type actLayer struct {
	layerBase
	lastOut        *Volume
	outBuf, dInBuf *Volume
}

func (l *actLayer) release() {
	releaseVolume(&l.outBuf)
	releaseVolume(&l.dInBuf)
	l.lastOut = nil
}

func (l *actLayer) Forward(in *Volume) *Volume {
	// Each branch assigns every element (ReLU writes explicit zeros), so the
	// reused buffer needs no clearing.
	out := scratchVolume(&l.outBuf, l.out, false)
	switch l.spec.Kind {
	case KindReLU:
		for i, v := range in.Data {
			if v > 0 {
				out.Data[i] = v
			} else {
				out.Data[i] = 0
			}
		}
	case KindSigmoid:
		for i, v := range in.Data {
			out.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
		}
	case KindTanh:
		for i, v := range in.Data {
			out.Data[i] = float32(math.Tanh(float64(v)))
		}
	}
	l.lastOut = out
	return out
}

func (l *actLayer) Backward(dOut *Volume) *Volume {
	dIn := scratchVolume(&l.dInBuf, l.in, false) // every element assigned
	out := l.lastOut
	switch l.spec.Kind {
	case KindReLU:
		for i, v := range out.Data {
			if v > 0 {
				dIn.Data[i] = dOut.Data[i]
			} else {
				dIn.Data[i] = 0
			}
		}
	case KindSigmoid:
		for i, v := range out.Data {
			dIn.Data[i] = dOut.Data[i] * v * (1 - v)
		}
	case KindTanh:
		for i, v := range out.Data {
			dIn.Data[i] = dOut.Data[i] * (1 - v*v)
		}
	}
	return dIn
}

// ---------- softmax ----------

type softmaxLayer struct {
	layerBase
	lastOut        *Volume
	outBuf, dInBuf *Volume
}

func (l *softmaxLayer) release() {
	releaseVolume(&l.outBuf)
	releaseVolume(&l.dInBuf)
	l.lastOut = nil
}

// softmaxInto writes the softmax of logits into dst (len(dst) must equal
// len(logits)), with the usual max-subtraction for numerical stability.
func softmaxInto(dst, logits []float32) {
	mx := float32(math.Inf(-1))
	for _, v := range logits {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(float64(v - mx))
		dst[i] = float32(e)
		sum += e
	}
	for i := range dst {
		dst[i] = float32(float64(dst[i]) / sum)
	}
}

// Softmax computes the softmax of logits into a new slice.
func Softmax(logits []float32) []float32 {
	out := make([]float32, len(logits))
	softmaxInto(out, logits)
	return out
}

func (l *softmaxLayer) Forward(in *Volume) *Volume {
	out := scratchVolume(&l.outBuf, l.out, false) // softmaxInto assigns all
	softmaxInto(out.Data, in.Data)
	l.lastOut = out
	return out
}

func (l *softmaxLayer) Backward(dOut *Volume) *Volume {
	// dIn_i = s_i * (dOut_i - sum_j dOut_j * s_j)
	s := l.lastOut.Data
	var dot float64
	for j, d := range dOut.Data {
		dot += float64(d) * float64(s[j])
	}
	dIn := scratchVolume(&l.dInBuf, l.in, false) // every element assigned
	for i := range dIn.Data {
		dIn.Data[i] = s[i] * (dOut.Data[i] - float32(dot))
	}
	return dIn
}
