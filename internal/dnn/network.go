package dnn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"modelhub/internal/tensor"
)

// Network is a built, runnable DNN: the layer DAG of a NetDef with
// allocated weight matrices. Chains are the common case (paper Table I);
// general DAGs with add/concat merge nodes (residual/skip connections) run
// through the same executor. Forward/Backward cache state, so a Network is
// not safe for concurrent use.
type Network struct {
	Def *NetDef
	// order is the node execution order (topological).
	order []string
	specs map[string]LayerSpec
	// preds lists each node's predecessors in edge-declaration order
	// (which fixes the channel order of concat merges).
	preds             map[string][]string
	layers            map[string]runtimeLayer // ordinary (non-merge) nodes only
	inShape, outShape map[string]Shape
	source, sink      string
	layerList         []runtimeLayer // ordinary layers in execution order
	// fwd caches node outputs of the latest forward pass for gradient
	// routing through merge nodes.
	fwd map[string]*Volume
	// Persistent scratch (scratch.go): merge-node input volumes, backward
	// gradient accumulators keyed by node, the fused-loss logits gradient,
	// and the softmax probability buffer. ReleaseScratch returns them all to
	// the shared arena pool.
	mergeBuf map[string]*Volume
	bwdBuf   map[string]*Volume
	gradBuf  *Volume
	probs    []float32
}

// Build constructs a runtime network for def, initializing all weights with
// Xavier initialization from rng (pass a deterministic source for
// reproducible experiments).
func Build(def *NetDef, rng *rand.Rand) (*Network, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	order, err := def.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := &Network{
		Def:      def,
		order:    order,
		specs:    map[string]LayerSpec{},
		preds:    map[string][]string{},
		layers:   map[string]runtimeLayer{},
		inShape:  map[string]Shape{},
		outShape: map[string]Shape{},
		fwd:      map[string]*Volume{},
		mergeBuf: map[string]*Volume{},
		bwdBuf:   map[string]*Volume{},
	}
	for _, l := range def.Nodes {
		n.specs[l.Name] = l
		n.preds[l.Name] = def.Prev(l.Name)
	}
	// Exactly one source (receives the network input) and one sink (the
	// prediction output).
	var sources, sinks []string
	for _, name := range order {
		if len(n.preds[name]) == 0 {
			sources = append(sources, name)
		}
		if len(def.Next(name)) == 0 {
			sinks = append(sinks, name)
		}
	}
	if len(sources) != 1 || len(sinks) != 1 {
		return nil, fmt.Errorf("%w: runtime needs exactly one source and one sink, got %d/%d",
			ErrNetDef, len(sources), len(sinks))
	}
	n.source, n.sink = sources[0], sinks[0]

	netIn := Shape{C: def.InC, H: def.InH, W: def.InW}
	for _, name := range order {
		spec := n.specs[name]
		in, err := n.mergeInputShape(name, netIn)
		if err != nil {
			return nil, err
		}
		n.inShape[name] = in
		if spec.Kind == KindAdd || spec.Kind == KindConcat {
			n.outShape[name] = in
			continue
		}
		l, err := buildLayer(spec, in)
		if err != nil {
			return nil, err
		}
		if w := l.Weights(); w != nil {
			fanIn := w.Cols() - 1
			fanOut := w.Rows()
			init := tensor.XavierInit(rng, w.Rows(), w.Cols(), fanIn, fanOut)
			copy(w.Data(), init.Data())
			// Zero the bias column.
			for r := 0; r < w.Rows(); r++ {
				w.Set(r, w.Cols()-1, 0)
			}
		}
		n.layers[name] = l
		n.layerList = append(n.layerList, l)
		n.outShape[name] = l.OutShape()
	}
	if last := n.outShape[n.sink]; def.Labels > 0 && last.Size() != def.Labels {
		return nil, fmt.Errorf("%w: final layer produces %d outputs, want %d labels", ErrNetDef, last.Size(), def.Labels)
	}
	return n, nil
}

// mergeInputShape resolves the input shape of a node from its predecessors'
// output shapes (or the network input for the source).
func (n *Network) mergeInputShape(name string, netIn Shape) (Shape, error) {
	preds := n.preds[name]
	spec := n.specs[name]
	switch {
	case len(preds) == 0:
		return netIn, nil
	case len(preds) == 1:
		return n.outShape[preds[0]], nil
	case spec.Kind == KindAdd:
		first := n.outShape[preds[0]]
		for _, p := range preds[1:] {
			if n.outShape[p] != first {
				return Shape{}, fmt.Errorf("%w: add node %q inputs %v and %v differ",
					ErrNetDef, name, first, n.outShape[p])
			}
		}
		return first, nil
	case spec.Kind == KindConcat:
		first := n.outShape[preds[0]]
		total := 0
		for _, p := range preds {
			s := n.outShape[p]
			if s.H != first.H || s.W != first.W {
				return Shape{}, fmt.Errorf("%w: concat node %q spatial extents %v and %v differ",
					ErrNetDef, name, first, s)
			}
			total += s.C
		}
		return Shape{C: total, H: first.H, W: first.W}, nil
	default:
		return Shape{}, fmt.Errorf("%w: node %q (%s) has %d inputs; only add/concat merge",
			ErrNetDef, name, spec.Kind, len(preds))
	}
}

// Layers returns the runtime layers (merge nodes excluded) in execution
// order.
func (n *Network) Layers() []runtimeLayer { return n.layerList }

// nodeInput assembles a node's input volume from the forward cache.
func (n *Network) nodeInput(name string, in *Volume) *Volume {
	preds := n.preds[name]
	switch {
	case len(preds) == 0:
		return in
	case len(preds) == 1:
		return n.fwd[preds[0]]
	case n.specs[name].Kind == KindAdd:
		// Copy the first predecessor, then add the rest: identical sums to
		// zero-then-accumulate, with no zero-on-reuse needed.
		out := scratchMapVolume(n.mergeBuf, name, n.inShape[name], false)
		copy(out.Data, n.fwd[preds[0]].Data)
		for _, p := range preds[1:] {
			for i, v := range n.fwd[p].Data {
				out.Data[i] += v
			}
		}
		return out
	default: // concat — predecessor spans cover the whole buffer
		out := scratchMapVolume(n.mergeBuf, name, n.inShape[name], false)
		off := 0
		for _, p := range preds {
			copy(out.Data[off:], n.fwd[p].Data)
			off += n.fwd[p].Shape.Size()
		}
		return out
	}
}

// forwardUpTo runs nodes in order, stopping after `stop` (inclusive), and
// returns its output.
func (n *Network) forwardUpTo(in *Volume, stop string) *Volume {
	for _, name := range n.order {
		x := n.nodeInput(name, in)
		if l, ok := n.layers[name]; ok {
			x = l.Forward(x)
		}
		n.fwd[name] = x
		if name == stop {
			return x
		}
	}
	return n.fwd[n.sink]
}

// Forward runs the full DAG on an input volume and returns the output. The
// returned volume is the caller's: it is a copy of the (small) sink
// activation, detached from the network's internal scratch buffers, so it
// survives subsequent passes.
func (n *Network) Forward(in *Volume) *Volume {
	return n.forwardUpTo(in, n.sink).Clone()
}

// logitsNode is where the fused softmax-cross-entropy loss attaches: the
// sink, or its predecessor when the sink is a softmax layer.
func (n *Network) logitsNode() string {
	if n.specs[n.sink].Kind == KindSoftmax {
		if preds := n.preds[n.sink]; len(preds) == 1 {
			return preds[0]
		}
	}
	return n.sink
}

// Logits runs the DAG but stops before a trailing softmax layer, returning
// raw scores — what the fused softmax-cross-entropy loss consumes. Like
// Forward, the returned volume is a caller-owned copy.
func (n *Network) Logits(in *Volume) *Volume {
	return n.forwardUpTo(in, n.logitsNode()).Clone()
}

// Predict returns the argmax label for an input.
func (n *Network) Predict(in *Volume) int {
	out := n.forwardUpTo(in, n.sink) // argmax only — no copy needed
	best, bi := float32(math.Inf(-1)), 0
	for i, v := range out.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// ForwardBatch runs the full DAG on each input in order and returns the
// outputs. Layer-internal scratch (conv column buffers) is allocated once on
// the first example and reused for the rest, so batched evaluation amortizes
// buffer setup that per-call users pay every time.
func (n *Network) ForwardBatch(ins []*Volume) []*Volume {
	outs := make([]*Volume, len(ins))
	for i, in := range ins {
		outs[i] = n.Forward(in)
	}
	return outs
}

// PredictBatch returns the argmax label for each input, reusing layer
// buffers across the batch (see ForwardBatch).
func (n *Network) PredictBatch(ins []*Volume) []int {
	labels := make([]int, len(ins))
	for i, in := range ins {
		labels[i] = n.Predict(in)
	}
	return labels
}

// LossAndBackward computes softmax cross-entropy loss of the input against
// the true label and backpropagates, accumulating weight gradients. It
// returns the loss and whether the prediction was correct.
func (n *Network) LossAndBackward(in *Volume, label int) (loss float64, correct bool) {
	logitsNode := n.logitsNode()
	logits := n.forwardUpTo(in, logitsNode)
	var probs []float32
	if ScratchPooling() {
		if cap(n.probs) < len(logits.Data) {
			n.probs = make([]float32, len(logits.Data))
		}
		probs = n.probs[:len(logits.Data)]
		softmaxInto(probs, logits.Data)
	} else {
		probs = Softmax(logits.Data)
	}
	loss = -math.Log(math.Max(float64(probs[label]), 1e-12))
	best, bi := float32(math.Inf(-1)), 0
	for i, v := range probs {
		if v > best {
			best, bi = v, i
		}
	}
	correct = bi == label
	// Fused softmax + CE gradient: dLogits = probs - onehot(label).
	grad := scratchVolume(&n.gradBuf, logits.Shape, false) // copy assigns all
	copy(grad.Data, probs)
	grad.Data[label] -= 1

	// Reverse-topological gradient routing. dOut accumulates per node.
	dOut := map[string]*Volume{logitsNode: grad}
	started := false
	for i := len(n.order) - 1; i >= 0; i-- {
		name := n.order[i]
		if name == logitsNode {
			started = true
		}
		if !started {
			continue // nodes after the logits node carry no loss gradient
		}
		g, ok := dOut[name]
		if !ok {
			continue
		}
		var dIn *Volume
		if l, isLayer := n.layers[name]; isLayer {
			dIn = l.Backward(g)
		} else {
			dIn = g // merge nodes route gradients below
		}
		preds := n.preds[name]
		switch {
		case len(preds) == 0:
			// Source: gradient w.r.t. the input is dropped.
		case len(preds) == 1:
			n.accumulate(dOut, preds[0], n.outShape[preds[0]], dIn.Data)
		case n.specs[name].Kind == KindAdd:
			for _, p := range preds {
				n.accumulate(dOut, p, n.outShape[p], dIn.Data)
			}
		default: // concat: split by predecessor channel spans
			off := 0
			for _, p := range preds {
				size := n.outShape[p].Size()
				n.accumulate(dOut, p, n.outShape[p], dIn.Data[off:off+size])
				off += size
			}
		}
	}
	return loss, correct
}

// accumulate adds grad into the dOut buffer of node name, acquiring the
// node's persistent accumulator (zeroed on first touch of the pass) when the
// routing map has no entry yet.
func (n *Network) accumulate(dOut map[string]*Volume, name string, shape Shape, grad []float32) {
	buf, ok := dOut[name]
	if !ok {
		buf = scratchMapVolume(n.bwdBuf, name, shape, true)
		dOut[name] = buf
	}
	for i, v := range grad {
		buf.Data[i] += v
	}
}

// ReleaseScratch returns all of the network's scratch buffers — layer
// activations, gradient volumes, im2col unrolls, merge and accumulator
// buffers — to the shared arena pool and drops the forward cache. Call it
// when retiring a network other workers may build successors of (e.g. a DQL
// candidate after its grid cell finishes); the network remains fully usable,
// it simply re-acquires scratch on the next pass.
func (n *Network) ReleaseScratch() {
	for _, l := range n.layerList {
		l.release()
	}
	for name, v := range n.mergeBuf {
		putFloats(v.Data)
		delete(n.mergeBuf, name)
	}
	for name, v := range n.bwdBuf {
		putFloats(v.Data)
		delete(n.bwdBuf, name)
	}
	releaseVolume(&n.gradBuf)
	n.probs = nil
	for name := range n.fwd {
		delete(n.fwd, name)
	}
}

// ZeroGrads clears all accumulated gradients.
func (n *Network) ZeroGrads() {
	for _, l := range n.layerList {
		if g := l.Grad(); g != nil {
			for i := range g.Data() {
				g.Data()[i] = 0
			}
		}
	}
}

// SGD holds the optimizer hyperparameters the paper's metadata records.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	// LayerLR overrides the learning rate for specific layers by name — the
	// per-layer tuning dimension DQL's `config.net["conv*"].lr` varies
	// (paper Query 4). A rate of 0 freezes the layer.
	LayerLR  map[string]float64
	velocity map[string]*tensor.Matrix
}

// Step applies one SGD update using the gradients accumulated over
// batchSize examples.
func (s *SGD) Step(n *Network, batchSize int) {
	if s.velocity == nil {
		s.velocity = make(map[string]*tensor.Matrix)
	}
	inv := 1.0 / float64(batchSize)
	for _, l := range n.layerList {
		w, g := l.Weights(), l.Grad()
		if w == nil {
			continue
		}
		name := l.Spec().Name
		lr := s.LR
		if override, ok := s.LayerLR[name]; ok {
			lr = override
		}
		v, ok := s.velocity[name]
		if !ok {
			v = tensor.NewMatrix(w.Rows(), w.Cols())
			s.velocity[name] = v
		}
		wd, gd, vd := w.Data(), g.Data(), v.Data()
		for i := range wd {
			grad := float64(gd[i])*inv + s.WeightDecay*float64(wd[i])
			vd[i] = float32(s.Momentum*float64(vd[i]) - lr*grad)
			wd[i] += vd[i]
		}
	}
}

// Params returns the named learnable weight matrices in execution order.
// The matrices are live views: mutating them mutates the network.
func (n *Network) Params() map[string]*tensor.Matrix {
	out := make(map[string]*tensor.Matrix)
	for _, l := range n.layerList {
		if w := l.Weights(); w != nil {
			out[l.Spec().Name] = w
		}
	}
	return out
}

// ParamNames returns the parametric layer names in execution order.
func (n *Network) ParamNames() []string {
	var out []string
	for _, l := range n.layerList {
		if l.Weights() != nil {
			out = append(out, l.Spec().Name)
		}
	}
	return out
}

// ParamCount returns the total number of learnable floats (|W| in Table I).
func (n *Network) ParamCount() int {
	total := 0
	for _, l := range n.layerList {
		if w := l.Weights(); w != nil {
			total += w.Len()
		}
	}
	return total
}

// Snapshot deep-copies the current weights, keyed by layer name. This is
// the unit PAS archives (paper Fig. 4: a snapshot is a named list of float
// matrices).
func (n *Network) Snapshot() map[string]*tensor.Matrix {
	out := make(map[string]*tensor.Matrix)
	for name, w := range n.Params() {
		out[name] = w.Clone()
	}
	return out
}

// Restore copies the given snapshot into the network weights. Every
// parametric layer must be present with matching shape.
func (n *Network) Restore(snap map[string]*tensor.Matrix) error {
	for _, l := range n.layerList {
		w := l.Weights()
		if w == nil {
			continue
		}
		src, ok := snap[l.Spec().Name]
		if !ok {
			return fmt.Errorf("dnn: snapshot missing weights for layer %q", l.Spec().Name)
		}
		if !src.SameShape(w) {
			return fmt.Errorf("dnn: snapshot weights for %q are %dx%d, want %dx%d",
				l.Spec().Name, src.Rows(), src.Cols(), w.Rows(), w.Cols())
		}
		copy(w.Data(), src.Data())
	}
	return nil
}

// SortedNames returns the keys of a snapshot in deterministic order; PAS and
// DLV iterate snapshots this way so stored artifacts are reproducible.
func SortedNames(snap map[string]*tensor.Matrix) []string {
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Clone returns an independent copy of the network (same definition and
// weights, separate caches), for concurrent inference: a Network is not
// safe for concurrent use, so clone one per goroutine.
func (n *Network) Clone() (*Network, error) {
	// The rng only seeds throwaway weights; Restore overwrites them.
	c, err := Build(n.Def, rand.New(rand.NewSource(0)))
	if err != nil {
		return nil, err
	}
	if err := c.Restore(n.Snapshot()); err != nil {
		return nil, err
	}
	return c, nil
}
