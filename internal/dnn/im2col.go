package dnn

import (
	"sync/atomic"

	"modelhub/internal/tensor"
)

// ConvKernel selects the convolution implementation: the im2col/GEMM kernel
// (default) or the naive six-loop reference. The naive kernel is kept both
// as the correctness oracle for the property tests and as the baseline the
// training experiment (mhbench -exp training) compares against.
type ConvKernel int32

const (
	// ConvIm2col lowers each convolution to an im2col unroll followed by a
	// blocked, parallel GEMM (tensor.GemmStrided), with per-layer reusable
	// column buffers so steady-state training does no per-example column
	// allocation.
	ConvIm2col ConvKernel = iota
	// ConvNaive is the reference six-deep scalar loop.
	ConvNaive
)

// convKernel is the process-wide kernel selection, read atomically at each
// Forward/Backward so concurrent network clones see a consistent value.
var convKernel atomic.Int32

// SetConvKernel selects the convolution kernel for subsequently executed
// forward/backward passes and returns the previous selection. Values that
// name no kernel (negative, or beyond the defined constants) clamp to the
// default ConvIm2col rather than leaving passes on an undefined path. Safe
// for concurrent callers.
func SetConvKernel(k ConvKernel) ConvKernel {
	if k != ConvIm2col && k != ConvNaive {
		k = ConvIm2col
	}
	return ConvKernel(convKernel.Swap(int32(k)))
}

// ActiveConvKernel reports the current selection.
func ActiveConvKernel() ConvKernel { return ConvKernel(convKernel.Load()) }

// im2col unrolls in (C×H×W) into cols (C·k·k × outH·outW): row (ic·k+ky)·k+kx,
// column oy·outW+ox holds in[ic, oy·stride+ky-pad, ox·stride+kx-pad], or 0
// where that index falls in the padding. Every cell of cols is written, so a
// reused buffer needs no prior zeroing. The stride-1 common case copies
// contiguous input runs per output row.
func im2col(in *Volume, cols *tensor.Matrix, k, stride, pad, outH, outW int) {
	h, w := in.Shape.H, in.Shape.W
	n := outH * outW
	cdata := cols.Data()
	row := 0
	for ic := 0; ic < in.Shape.C; ic++ {
		chOff := ic * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				dst := cdata[row*n : (row+1)*n]
				row++
				di := 0
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						for ox := 0; ox < outW; ox++ {
							dst[di] = 0
							di++
						}
						continue
					}
					src := in.Data[chOff+iy*w : chOff+(iy+1)*w]
					if stride == 1 {
						ix0 := kx - pad // input x for ox = 0
						left, right := 0, outW
						if -ix0 > left {
							left = -ix0
						}
						if w-ix0 < right {
							right = w - ix0
						}
						for ox := 0; ox < left; ox++ {
							dst[di+ox] = 0
						}
						if right > left {
							copy(dst[di+left:di+right], src[ix0+left:ix0+right])
						}
						for ox := right; ox < outW; ox++ {
							dst[di+ox] = 0
						}
						di += outW
					} else {
						for ox := 0; ox < outW; ox++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= w {
								dst[di] = 0
							} else {
								dst[di] = src[ix]
							}
							di++
						}
					}
				}
			}
		}
	}
}

// col2im scatter-adds cols (C·k·k × outH·outW) back into dIn, the adjoint of
// im2col: overlapping windows accumulate.
func col2im(cols *tensor.Matrix, dIn *Volume, k, stride, pad, outH, outW int) {
	h, w := dIn.Shape.H, dIn.Shape.W
	n := outH * outW
	cdata := cols.Data()
	row := 0
	for ic := 0; ic < dIn.Shape.C; ic++ {
		chOff := ic * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				src := cdata[row*n : (row+1)*n]
				row++
				si := 0
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						si += outW
						continue
					}
					dst := dIn.Data[chOff+iy*w : chOff+(iy+1)*w]
					if stride == 1 {
						ix0 := kx - pad
						left, right := 0, outW
						if -ix0 > left {
							left = -ix0
						}
						if w-ix0 < right {
							right = w - ix0
						}
						if right > left {
							tensor.AddScaled(dst[ix0+left:ix0+right], src[si+left:si+right], 1)
						}
						si += outW
					} else {
						for ox := 0; ox < outW; ox++ {
							ix := ox*stride + kx - pad
							if ix >= 0 && ix < w {
								dst[ix] += src[si]
							}
							si++
						}
					}
				}
			}
		}
	}
}
