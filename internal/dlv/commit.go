package dlv

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"modelhub/internal/catalog"
	"modelhub/internal/dnn"
	"modelhub/internal/obs"
	"modelhub/internal/tensor"
)

// LatestSnap is the reserved snapshot label of a version's final weights.
const LatestSnap = "latest"

// CommitInput bundles everything a model version carries (paper Sec. III-A:
// model_version(name, id, N, W, M, F)).
type CommitInput struct {
	// Name is the human-readable model version name (required).
	Name string
	// Msg is the commit message.
	Msg string
	// NetDef is the network definition N (required).
	NetDef *dnn.NetDef
	// Hyper holds training hyperparameters recorded as metadata.
	Hyper map[string]string
	// Log holds per-iteration training measurements.
	Log []dnn.LogEntry
	// Checkpoints are the intermediate weight snapshots, in iteration order.
	Checkpoints []dnn.Checkpoint
	// Final holds the latest weights (required for trained versions; may be
	// nil for scaffolds).
	Final map[string]*tensor.Matrix
	// Accuracy is the held-out accuracy of the final weights.
	Accuracy float64
	// Files maps repo-relative paths to contents (scripts, configs, ...).
	Files map[string][]byte
	// ParentID links lineage (0 = no parent).
	ParentID int64
}

// Commit records a new model version and returns its id.
func (r *Repo) Commit(in CommitInput) (int64, error) {
	return r.CommitCtx(context.Background(), in)
}

// CommitCtx is Commit under a caller-supplied context, so the commit span
// joins the caller's trace instead of rooting its own.
func (r *Repo) CommitCtx(ctx context.Context, in CommitInput) (id int64, err error) {
	_, span := obs.Start(ctx, "dlv.commit")
	span.SetAttr("dlv.model", in.Name)
	defer func() {
		if err != nil {
			span.SetError()
		}
		span.SetAttrInt("dlv.version", id)
		span.End()
	}()
	if in.Name == "" {
		return 0, fmt.Errorf("%w: commit needs a model name", ErrRepo)
	}
	if in.NetDef == nil {
		return 0, fmt.Errorf("%w: commit needs a network definition", ErrRepo)
	}
	if err := in.NetDef.Validate(); err != nil {
		return 0, err
	}
	if in.ParentID != 0 {
		if _, ok, err := r.db.Get("model_version", in.ParentID); err != nil {
			return 0, err
		} else if !ok {
			return 0, fmt.Errorf("%w: parent version %d does not exist", ErrRepo, in.ParentID)
		}
	}
	id, err = r.nextVersionID()
	if err != nil {
		return 0, err
	}
	ndJSON, err := in.NetDef.ToJSON()
	if err != nil {
		return 0, err
	}
	if err := r.db.Insert("model_version", catalog.Row{
		"id": id, "name": in.Name, "netdef": string(ndJSON), "msg": in.Msg,
		"created": r.now().UTC().Format(time.RFC3339), "accuracy": finiteOr(in.Accuracy, 0),
		"archived": false,
	}); err != nil {
		return 0, err
	}
	for _, n := range in.NetDef.Nodes {
		attrs, err := json.Marshal(n)
		if err != nil {
			return 0, err
		}
		if err := r.db.Insert("node", catalog.Row{
			"version_id": id, "name": n.Name, "kind": n.Kind, "attrs": string(attrs),
		}); err != nil {
			return 0, err
		}
	}
	for _, e := range in.NetDef.Edges {
		if err := r.db.Insert("edge", catalog.Row{"version_id": id, "efrom": e.From, "eto": e.To}); err != nil {
			return 0, err
		}
	}
	if in.ParentID != 0 {
		if err := r.db.Insert("parent", catalog.Row{"base": in.ParentID, "derived": id, "msg": in.Msg}); err != nil {
			return 0, err
		}
	}
	for _, k := range sortedStringKeys(in.Hyper) {
		if err := r.db.Insert("metadata", catalog.Row{"version_id": id, "mkey": k, "mvalue": in.Hyper[k]}); err != nil {
			return 0, err
		}
	}
	for _, le := range in.Log {
		if err := r.db.Insert("trainlog", catalog.Row{
			"version_id": id, "iter": int64(le.Iter),
			// Diverged runs produce NaN/Inf losses; clamp so the catalog
			// (JSON-backed) can always record the row.
			"loss": finiteOr(le.Loss, math.MaxFloat64),
			"acc":  finiteOr(le.Accuracy, 0),
			"lr":   finiteOr(le.LR, 0),
		}); err != nil {
			return 0, err
		}
	}
	for _, ck := range in.Checkpoints {
		label := fmt.Sprintf("ckpt-%06d", ck.Iter)
		if err := r.writeRawSnapshot(id, label, ck.Weights); err != nil {
			return 0, err
		}
		if err := r.db.Insert("snapshot", catalog.Row{
			"version_id": id, "snap": label, "iter": int64(ck.Iter), "latest": false,
		}); err != nil {
			return 0, err
		}
	}
	if in.Final != nil {
		if err := r.writeRawSnapshot(id, LatestSnap, in.Final); err != nil {
			return 0, err
		}
		maxIter := int64(0)
		if n := len(in.Checkpoints); n > 0 {
			maxIter = int64(in.Checkpoints[n-1].Iter)
		}
		if err := r.db.Insert("snapshot", catalog.Row{
			"version_id": id, "snap": LatestSnap, "iter": maxIter, "latest": true,
		}); err != nil {
			return 0, err
		}
	}
	// Staged files (dlv add) merge with explicitly provided contents;
	// explicit contents win on path conflicts.
	staged, err := r.collectStaged()
	if err != nil {
		return 0, err
	}
	files := make(map[string][]byte, len(in.Files)+len(staged))
	for path, content := range staged {
		files[path] = content
	}
	for path, content := range in.Files {
		files[path] = content
	}
	for _, path := range sortedByteKeys(files) {
		sha, err := r.putObject(files[path])
		if err != nil {
			return 0, err
		}
		if err := r.db.Insert("file", catalog.Row{"version_id": id, "path": path, "sha": sha}); err != nil {
			return 0, err
		}
	}
	if err := r.db.Save(); err != nil {
		return 0, err
	}
	return id, nil
}

func (r *Repo) nextVersionID() (int64, error) {
	rows, err := r.db.Select("model_version", catalog.Query{OrderBy: "id", Desc: true, Limit: 1})
	if err != nil {
		return 0, err
	}
	if len(rows) == 0 {
		return 1, nil
	}
	return rows[0]["id"].(int64) + 1, nil
}

// snapshotDir is where a version's raw (not yet archived) weights live.
func (r *Repo) snapshotDir(versionID int64, snap string) string {
	return filepath.Join(r.root, dlvDir, weightsDir, fmt.Sprintf("v%06d", versionID), snap)
}

func (r *Repo) writeRawSnapshot(versionID int64, snap string, weights map[string]*tensor.Matrix) error {
	dir := r.snapshotDir(versionID, snap)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("%w: %v", ErrRepo, err)
	}
	for _, name := range dnn.SortedNames(weights) {
		f, err := os.Create(filepath.Join(dir, name+".bin"))
		if err != nil {
			return fmt.Errorf("%w: %v", ErrRepo, err)
		}
		if _, err := weights[name].WriteTo(f); err != nil {
			_ = f.Close() //mhlint:ignore errcheck the write error takes precedence over cleanup
			return fmt.Errorf("%w: writing %s: %v", ErrRepo, name, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("%w: %v", ErrRepo, err)
		}
	}
	return nil
}

func (r *Repo) readRawSnapshot(versionID int64, snap string) (map[string]*tensor.Matrix, error) {
	dir := r.snapshotDir(versionID, snap)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("%w: snapshot v%d/%s: %v", ErrRepo, versionID, snap, err)
	}
	out := map[string]*tensor.Matrix{}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".bin" {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRepo, err)
		}
		m, err := tensor.ReadMatrix(f)
		cerr := f.Close()
		if err != nil {
			return nil, fmt.Errorf("%w: reading %s: %v", ErrRepo, e.Name(), err)
		}
		if cerr != nil {
			return nil, fmt.Errorf("%w: closing %s: %v", ErrRepo, e.Name(), cerr)
		}
		out[e.Name()[:len(e.Name())-4]] = m
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: snapshot v%d/%s is empty", ErrRepo, versionID, snap)
	}
	return out, nil
}

// Copy scaffolds a new model version from an existing one (dlv copy): same
// network definition and metadata, no weights, lineage recorded.
func (r *Repo) Copy(srcID int64, newName, msg string) (int64, error) {
	v, err := r.Version(srcID)
	if err != nil {
		return 0, err
	}
	def := v.NetDef.Clone()
	def.Name = newName
	return r.Commit(CommitInput{
		Name:     newName,
		Msg:      msg,
		NetDef:   def,
		Hyper:    v.Hyper,
		ParentID: srcID,
	})
}

// finiteOr replaces non-finite floats with a fallback so diverged training
// metrics remain storable.
func finiteOr(v, fallback float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fallback
	}
	return v
}

func sortedStringKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedByteKeys(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
