package dlv

import (
	"errors"
	"sync"
	"testing"

	"modelhub/internal/floatenc"
	"modelhub/internal/pas"
)

// Re-archiving with degraded checkpoints displaces the original lossless
// checkpoint payloads — garbage only GC reclaims. The latest snapshot must
// stay exact throughout, including for checkouts racing the GC (run under
// -race in CI).
func TestGCReclaimsAfterRearchive(t *testing.T) {
	r := initRepo(t)
	id, res, _ := commitToy(t, r, "toy", 51, 0)
	if _, err := r.Archive(ArchiveOptions{Algorithm: "pas-mt", Alpha: 2}); err != nil {
		t.Fatal(err)
	}
	layout, err := r.ArchiveLayout()
	if err != nil {
		t.Fatal(err)
	}
	if layout != pas.LayoutSegment {
		t.Skipf("archive layout %s: gc applies to the segment layout only", layout)
	}
	// Settle the archive first so the later GC's reclaimed bytes measure
	// re-archive garbage, not first-write fragmentation.
	if _, err := r.GC(); err != nil {
		t.Fatal(err)
	}

	fixed := &floatenc.Scheme{Kind: floatenc.Fixed, Bits: 8}
	if _, err := r.Archive(ArchiveOptions{Algorithm: "pas-mt", Alpha: 2, CheckpointScheme: fixed}); err != nil {
		t.Fatal(err)
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	readErrs := make([]error, 4)
	for w := 0; w < len(readErrs); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 5; i++ {
				weights, err := r.Weights(id, LatestSnap, 4)
				if err != nil {
					readErrs[w] = err
					return
				}
				for name, want := range res.Final {
					if !weights[name].Equal(want) {
						readErrs[w] = errors.New("latest weights drifted for " + name)
						return
					}
				}
			}
		}(w)
	}
	close(start)
	stats, err := r.GC()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for _, err := range readErrs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if stats.DroppedChunks == 0 || stats.ReclaimedBytes <= 0 {
		t.Fatalf("gc reclaimed nothing after degrading re-archive: %+v", stats)
	}

	// Repack coalesces what several archive passes fragmented.
	rstats, err := r.Repack()
	if err != nil {
		t.Fatal(err)
	}
	if rstats.Segments != 1 {
		t.Fatalf("repack left %d segments, want 1", rstats.Segments)
	}
	weights, err := r.Weights(id, LatestSnap, 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range res.Final {
		if !weights[name].Equal(want) {
			t.Fatalf("latest weights wrong after repack: %s", name)
		}
	}
}

// GC before any archive exists must fail typed, not panic.
func TestGCUnarchivedRepo(t *testing.T) {
	r := initRepo(t)
	commitToy(t, r, "toy", 52, 0)
	if _, err := r.GC(); !errors.Is(err, ErrRepo) {
		t.Fatalf("gc on unarchived repo = %v, want ErrRepo", err)
	}
	if _, err := r.Repack(); !errors.Is(err, ErrRepo) {
		t.Fatalf("repack on unarchived repo = %v, want ErrRepo", err)
	}
}
