package dlv

import (
	"fmt"
	"math/rand"
	"runtime"

	"modelhub/internal/dnn"
	"modelhub/internal/perturb"
	"modelhub/internal/tensor"
)

// EvalResult reports a dlv eval run.
type EvalResult struct {
	Accuracy float64
	// Prefix is the byte-plane resolution the weights were read at.
	Prefix int
}

// Eval runs the test phase of a stored model version on the given examples
// (dlv eval), reading weights at the requested byte-plane prefix (4 =
// full precision; lower values exercise the lossy fast path).
func (r *Repo) Eval(versionID int64, snap string, examples []dnn.Example, prefix int) (*EvalResult, error) {
	v, err := r.Version(versionID)
	if err != nil {
		return nil, err
	}
	weights, err := r.Weights(versionID, snap, prefix)
	if err != nil {
		return nil, err
	}
	net, err := buildWith(v.NetDef, weights)
	if err != nil {
		return nil, err
	}
	// Sharded parallel evaluation; matches sequential dnn.Evaluate exactly.
	acc, err := dnn.EvaluateParallel(net, examples, runtime.GOMAXPROCS(0))
	if err != nil {
		return nil, err
	}
	return &EvalResult{Accuracy: acc, Prefix: prefix}, nil
}

// ProgressiveEvalResult summarizes a progressive dlv eval over a dataset.
type ProgressiveEvalResult struct {
	Accuracy float64
	// PrefixHistogram[p] counts queries that resolved using p byte planes.
	PrefixHistogram [5]int
}

// EvalProgressive answers eval queries with the paper's progressive scheme:
// start from high-order byte planes and fetch more only when Lemma 4 cannot
// certify the top-1 prediction. The version must be archived.
func (r *Repo) EvalProgressive(versionID int64, snap string, examples []dnn.Example) (*ProgressiveEvalResult, error) {
	return r.EvalProgressiveTopK(versionID, snap, examples, 1)
}

// EvalProgressiveTopK generalizes EvalProgressive to top-k determination
// (the paper evaluates both top-1 and top-5): accuracy counts a query
// correct when the true label is anywhere in the certified top-k set.
func (r *Repo) EvalProgressiveTopK(versionID int64, snap string, examples []dnn.Example, k int) (*ProgressiveEvalResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: top-k needs k >= 1", ErrRepo)
	}
	v, err := r.Version(versionID)
	if err != nil {
		return nil, err
	}
	if !v.Archived {
		return nil, fmt.Errorf("%w: progressive eval requires an archived version", ErrRepo)
	}
	ev, err := perturb.NewEvaluator(v.NetDef)
	if err != nil {
		return nil, err
	}
	// Fetch all layers of a prefix concurrently (PrefetchSource) on top of
	// the archive's concurrent retrieval engine; results cache across the
	// whole example batch, so each (layer, prefix) hits the store once.
	base := perturb.SourceFunc(func(layer string, prefix int) (*tensor.Matrix, *tensor.Matrix, error) {
		return r.WeightIntervals(versionID, snap, layer, prefix)
	})
	src := perturb.NewPrefetchSource(base, perturb.ParametricNames(v.NetDef), 0)
	res := &ProgressiveEvalResult{}
	correct := 0
	for _, ex := range examples {
		out, err := perturb.Progressive(ev, src, ex.Input, k, 1)
		if err != nil {
			return nil, err
		}
		res.PrefixHistogram[out.PrefixUsed]++
		for _, label := range out.Labels {
			if label == ex.Label {
				correct++
				break
			}
		}
	}
	if len(examples) > 0 {
		res.Accuracy = float64(correct) / float64(len(examples))
	}
	return res, nil
}

// buildWith constructs a runtime network and installs the given weights.
func buildWith(def *dnn.NetDef, weights map[string]*tensor.Matrix) (*dnn.Network, error) {
	// The rng only seeds throwaway initial weights; Restore overwrites them.
	net, err := dnn.Build(def, rand.New(rand.NewSource(0)))
	if err != nil {
		return nil, err
	}
	if err := net.Restore(weights); err != nil {
		return nil, err
	}
	return net, nil
}

// SnapshotAccuracy is one point of a version's training trajectory.
type SnapshotAccuracy struct {
	Snapshot string
	Accuracy float64
}

// EvalHistory evaluates every stored snapshot of a version on the examples
// (dlv history): the accuracy trajectory across checkpoints, one of the
// insights the paper keeps checkpoints for.
func (r *Repo) EvalHistory(versionID int64, examples []dnn.Example) ([]SnapshotAccuracy, error) {
	v, err := r.Version(versionID)
	if err != nil {
		return nil, err
	}
	if len(v.Snapshots) == 0 {
		return nil, fmt.Errorf("%w: version %d has no snapshots", ErrRepo, versionID)
	}
	out := make([]SnapshotAccuracy, 0, len(v.Snapshots))
	for _, snap := range v.Snapshots {
		res, err := r.Eval(versionID, snap, examples, 4)
		if err != nil {
			return nil, err
		}
		out = append(out, SnapshotAccuracy{Snapshot: snap, Accuracy: res.Accuracy})
	}
	return out, nil
}
