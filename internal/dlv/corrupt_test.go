package dlv

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"modelhub/internal/pas"
)

// rawWeightFiles lists a version's raw snapshot .bin files.
func rawWeightFiles(t *testing.T, r *Repo, versionID int64, snap string) []string {
	t.Helper()
	dir := r.snapshotDir(versionID, snap)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".bin" {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	if len(out) == 0 {
		t.Fatalf("no raw weight files for v%d/%s", versionID, snap)
	}
	return out
}

// A truncated raw weight file must surface as a typed repository error on
// checkout — not a panic, and never silently short weights.
func TestWeightsTruncatedRawFile(t *testing.T) {
	r := initRepo(t)
	id, _, _ := commitToy(t, r, "toy", 21, 0)
	files := rawWeightFiles(t, r, id, LatestSnap)
	info, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(files[0], info.Size()/2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Weights(id, LatestSnap, 4); !errors.Is(err, ErrRepo) {
		t.Fatalf("Weights on truncated raw file = %v, want ErrRepo", err)
	}
}

// A corrupted archive chunk must surface as a typed store error through the
// full checkout path (Repo.Weights -> PAS concurrent retrieval).
func TestWeightsCorruptArchiveChunk(t *testing.T) {
	r := initRepo(t)
	id, _, _ := commitToy(t, r, "toy", 22, 0)
	if _, err := r.Archive(ArchiveOptions{Algorithm: "pas-mt", Alpha: 2}); err != nil {
		t.Fatal(err)
	}
	// Payload files of either layout: segment files (default) or legacy
	// per-chunk files.
	pasDir := filepath.Join(r.Root(), ".dlv", "pas")
	files, err := filepath.Glob(filepath.Join(pasDir, "segments", "seg-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := filepath.Glob(filepath.Join(pasDir, "chunks", "*"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, legacy...)
	if len(files) == 0 {
		t.Fatal("archive has no chunk payload files")
	}
	// Flip a bit in every byte of every payload file so the snapshot's
	// chain cannot avoid a corrupted chunk, whichever records it reads.
	for _, path := range files {
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := range blob {
			blob[i] ^= 0x20
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen so neither the memoized store nor its plane caches mask the
	// corruption.
	r2, err := Open(r.Root())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Weights(id, LatestSnap, 4); !errors.Is(err, pas.ErrStore) {
		t.Fatalf("Weights on corrupted archive = %v, want pas.ErrStore", err)
	}
}
