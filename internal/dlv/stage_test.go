package dlv

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"modelhub/internal/zoo"
)

func writeRepoFile(t *testing.T, r *Repo, rel, content string) {
	t.Helper()
	abs := filepath.Join(r.Root(), rel)
	if err := os.MkdirAll(filepath.Dir(abs), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(abs, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestAddAndCommitStaged(t *testing.T) {
	r := initRepo(t)
	writeRepoFile(t, r, "train.sh", "#!/bin/sh\n")
	writeRepoFile(t, r, "configs/solver.cfg", "lr=0.1\n")
	if err := r.Add("train.sh"); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("configs/solver.cfg"); err != nil {
		t.Fatal(err)
	}
	// Double add is idempotent.
	if err := r.Add("train.sh"); err != nil {
		t.Fatal(err)
	}
	staged, err := r.Staged()
	if err != nil || len(staged) != 2 {
		t.Fatalf("staged = %v, %v", staged, err)
	}
	id, err := r.Commit(CommitInput{Name: "m", NetDef: zoo.LeNet("m")})
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.Version(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Files) != 2 {
		t.Fatalf("files = %v", v.Files)
	}
	content, err := r.GetObject(v.Files["configs/solver.cfg"])
	if err != nil || string(content) != "lr=0.1\n" {
		t.Fatalf("object = %q, %v", content, err)
	}
	// Stage cleared after commit.
	staged, err = r.Staged()
	if err != nil || len(staged) != 0 {
		t.Fatalf("stage not cleared: %v, %v", staged, err)
	}
}

func TestAddRejections(t *testing.T) {
	r := initRepo(t)
	if err := r.Add("/etc/passwd"); !errors.Is(err, ErrRepo) {
		t.Fatal("absolute path must be rejected")
	}
	if err := r.Add("../outside"); !errors.Is(err, ErrRepo) {
		t.Fatal("traversal must be rejected")
	}
	if err := r.Add(".dlv/catalog.json"); !errors.Is(err, ErrRepo) {
		t.Fatal("metadata must be rejected")
	}
	if err := r.Add("ghost.txt"); !errors.Is(err, ErrRepo) {
		t.Fatal("missing file must be rejected")
	}
	if err := os.MkdirAll(filepath.Join(r.Root(), "dir"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("dir"); !errors.Is(err, ErrRepo) {
		t.Fatal("directory must be rejected")
	}
}

func TestUnstage(t *testing.T) {
	r := initRepo(t)
	writeRepoFile(t, r, "a.txt", "a")
	writeRepoFile(t, r, "b.txt", "b")
	if err := r.Add("a.txt"); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("b.txt"); err != nil {
		t.Fatal(err)
	}
	if err := r.Unstage("a.txt"); err != nil {
		t.Fatal(err)
	}
	staged, err := r.Staged()
	if err != nil || len(staged) != 1 || staged[0] != "b.txt" {
		t.Fatalf("staged = %v, %v", staged, err)
	}
	if err := r.Unstage("ghost"); err != nil {
		t.Fatal("unstaging an absent path must be a no-op")
	}
}

func TestExplicitFilesWinOverStaged(t *testing.T) {
	r := initRepo(t)
	writeRepoFile(t, r, "note.md", "staged content")
	if err := r.Add("note.md"); err != nil {
		t.Fatal(err)
	}
	id, err := r.Commit(CommitInput{
		Name: "m", NetDef: zoo.LeNet("m"),
		Files: map[string][]byte{"note.md": []byte("explicit content")},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.Version(id)
	if err != nil {
		t.Fatal(err)
	}
	content, err := r.GetObject(v.Files["note.md"])
	if err != nil || string(content) != "explicit content" {
		t.Fatalf("object = %q, %v", content, err)
	}
}

func TestStagedMissingAtCommit(t *testing.T) {
	r := initRepo(t)
	writeRepoFile(t, r, "temp.txt", "x")
	if err := r.Add("temp.txt"); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(r.Root(), "temp.txt")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Commit(CommitInput{Name: "m", NetDef: zoo.LeNet("m")}); !errors.Is(err, ErrRepo) {
		t.Fatal("commit with a vanished staged file must fail")
	}
}
