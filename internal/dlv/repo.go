// Package dlv implements the DLV model versioning system (paper Sec. III):
// a git-like version control system specialized for DNN modeling artifacts.
// A repository stores, per model version: the network definition N (as
// node/edge relations), the learned weights W (raw at commit time, migrated
// into a PAS archive by `dlv archive`), extracted metadata M (hyper-
// parameters, per-iteration training measurements), and associated files F
// (content-addressed, like git blobs). Lineage between versions lives in
// the parent relation.
package dlv

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"modelhub/internal/catalog"
	"modelhub/internal/pas"
)

// Directory layout inside a repository root.
const (
	dlvDir      = ".dlv"
	catalogFile = "catalog.json"
	objectsDir  = "objects"
	weightsDir  = "weights"
	pasDir      = "pas"
)

// ErrRepo reports repository-level failures.
var ErrRepo = errors.New("dlv: repository error")

// Repo is an opened DLV repository.
type Repo struct {
	root string
	db   *catalog.DB
	// now is the clock, replaceable in tests.
	now func() time.Time

	// pasMu guards pasStore, the memoized opened archive. Keeping one
	// *pas.Store per Repo lets the concurrent retrieval engine's plane LRU
	// persist across Weights/WeightIntervals calls.
	pasMu    sync.Mutex
	pasStore *pas.Store
}

// Init creates a new repository in root (which must exist).
func Init(root string) (*Repo, error) {
	meta := filepath.Join(root, dlvDir)
	if _, err := os.Stat(meta); err == nil {
		return nil, fmt.Errorf("%w: repository already exists at %s", ErrRepo, root)
	}
	for _, d := range []string{meta, filepath.Join(meta, objectsDir), filepath.Join(meta, weightsDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRepo, err)
		}
	}
	db, err := catalog.Open(filepath.Join(meta, catalogFile))
	if err != nil {
		return nil, err
	}
	if err := createSchema(db); err != nil {
		return nil, err
	}
	if err := db.Save(); err != nil {
		return nil, err
	}
	return &Repo{root: root, db: db, now: time.Now}, nil
}

// Open loads an existing repository.
func Open(root string) (*Repo, error) {
	meta := filepath.Join(root, dlvDir)
	if _, err := os.Stat(meta); err != nil {
		return nil, fmt.Errorf("%w: no repository at %s", ErrRepo, root)
	}
	db, err := catalog.Open(filepath.Join(meta, catalogFile))
	if err != nil {
		return nil, err
	}
	if !db.HasTable("model_version") {
		return nil, fmt.Errorf("%w: catalog missing model_version table", ErrRepo)
	}
	return &Repo{root: root, db: db, now: time.Now}, nil
}

// Root returns the repository root directory.
func (r *Repo) Root() string { return r.root }

// DB exposes the relational catalog (used by DQL).
func (r *Repo) DB() *catalog.DB { return r.db }

func createSchema(db *catalog.DB) error {
	schemas := []catalog.Schema{
		{Name: "model_version", Columns: []catalog.Column{
			{Name: "id", Type: catalog.Int, Primary: true},
			{Name: "name", Type: catalog.Text, Indexed: true},
			{Name: "netdef", Type: catalog.Text},
			{Name: "msg", Type: catalog.Text},
			{Name: "created", Type: catalog.Text},
			{Name: "accuracy", Type: catalog.Float},
			{Name: "archived", Type: catalog.Bool},
		}},
		{Name: "node", Columns: []catalog.Column{
			{Name: "version_id", Type: catalog.Int, Indexed: true},
			{Name: "name", Type: catalog.Text},
			{Name: "kind", Type: catalog.Text},
			{Name: "attrs", Type: catalog.Text},
		}},
		{Name: "edge", Columns: []catalog.Column{
			{Name: "version_id", Type: catalog.Int, Indexed: true},
			{Name: "efrom", Type: catalog.Text},
			{Name: "eto", Type: catalog.Text},
		}},
		{Name: "parent", Columns: []catalog.Column{
			{Name: "base", Type: catalog.Int},
			{Name: "derived", Type: catalog.Int, Indexed: true},
			{Name: "msg", Type: catalog.Text},
		}},
		{Name: "metadata", Columns: []catalog.Column{
			{Name: "version_id", Type: catalog.Int, Indexed: true},
			{Name: "mkey", Type: catalog.Text},
			{Name: "mvalue", Type: catalog.Text},
		}},
		{Name: "trainlog", Columns: []catalog.Column{
			{Name: "version_id", Type: catalog.Int, Indexed: true},
			{Name: "iter", Type: catalog.Int},
			{Name: "loss", Type: catalog.Float},
			{Name: "acc", Type: catalog.Float},
			{Name: "lr", Type: catalog.Float},
		}},
		{Name: "snapshot", Columns: []catalog.Column{
			{Name: "version_id", Type: catalog.Int, Indexed: true},
			{Name: "snap", Type: catalog.Text},
			{Name: "iter", Type: catalog.Int},
			{Name: "latest", Type: catalog.Bool},
		}},
		{Name: "file", Columns: []catalog.Column{
			{Name: "version_id", Type: catalog.Int, Indexed: true},
			{Name: "path", Type: catalog.Text},
			{Name: "sha", Type: catalog.Text},
		}},
	}
	for _, s := range schemas {
		if err := db.CreateTable(s); err != nil {
			return err
		}
	}
	return nil
}

// putObject stores content in the content-addressed object store and
// returns its hex SHA-256.
func (r *Repo) putObject(content []byte) (string, error) {
	sum := sha256.Sum256(content)
	sha := hex.EncodeToString(sum[:])
	path := filepath.Join(r.root, dlvDir, objectsDir, sha)
	if _, err := os.Stat(path); err == nil {
		return sha, nil // dedup
	}
	if err := os.WriteFile(path, content, 0o644); err != nil {
		return "", fmt.Errorf("%w: storing object: %v", ErrRepo, err)
	}
	return sha, nil
}

// GetObject retrieves content by SHA-256, verifying integrity.
func (r *Repo) GetObject(sha string) ([]byte, error) {
	path := filepath.Join(r.root, dlvDir, objectsDir, sha)
	content, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: object %s: %v", ErrRepo, sha, err)
	}
	sum := sha256.Sum256(content)
	if hex.EncodeToString(sum[:]) != sha {
		return nil, fmt.Errorf("%w: object %s is corrupt", ErrRepo, sha)
	}
	return content, nil
}
