package dlv

import (
	"fmt"
	"math"
	"sort"
)

// WeightDiff compares one layer's learned parameters across two versions
// (paper Sec. I: "differences among both the metadata about the model ...
// as well as the actual learned parameters, are of interest").
type WeightDiff struct {
	Layer string
	// RowsA x ColsA and RowsB x ColsB are the two shapes (they can differ
	// when an architecture change resized the layer).
	RowsA, ColsA, RowsB, ColsB int
	// MeanAbsDiff is the mean absolute elementwise difference over the
	// overlapping region.
	MeanAbsDiff float64
	// CosineSim is the cosine similarity of the overlapping region
	// (1 = identical direction, 0 = orthogonal).
	CosineSim float64
	// L2A, L2B are the Frobenius norms of the full matrices.
	L2A, L2B float64
	// OnlyIn is "a" or "b" when the layer exists in just one version.
	OnlyIn string
}

// DiffWeights compares the latest-snapshot parameters of two versions layer
// by layer (dlv diff -weights). Shape-mismatched layers are compared over
// their overlapping region.
func (r *Repo) DiffWeights(aID, bID int64, snap string) ([]WeightDiff, error) {
	if snap == "" {
		snap = LatestSnap
	}
	wa, err := r.Weights(aID, snap, 4)
	if err != nil {
		return nil, err
	}
	wb, err := r.Weights(bID, snap, 4)
	if err != nil {
		return nil, err
	}
	names := map[string]bool{}
	for n := range wa {
		names[n] = true
	}
	for n := range wb {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	var out []WeightDiff
	for _, name := range sorted {
		ma, okA := wa[name]
		mb, okB := wb[name]
		d := WeightDiff{Layer: name}
		switch {
		case okA && !okB:
			d.OnlyIn = "a"
			d.RowsA, d.ColsA = ma.Rows(), ma.Cols()
			d.L2A = ma.ComputeStats().L2
		case !okA && okB:
			d.OnlyIn = "b"
			d.RowsB, d.ColsB = mb.Rows(), mb.Cols()
			d.L2B = mb.ComputeStats().L2
		default:
			d.RowsA, d.ColsA = ma.Rows(), ma.Cols()
			d.RowsB, d.ColsB = mb.Rows(), mb.Cols()
			d.L2A = ma.ComputeStats().L2
			d.L2B = mb.ComputeStats().L2
			rows := min(ma.Rows(), mb.Rows())
			cols := min(ma.Cols(), mb.Cols())
			var sumAbs, dot, na, nb float64
			n := 0
			for i := 0; i < rows; i++ {
				ra, rb := ma.Row(i)[:cols], mb.Row(i)[:cols]
				for j := range ra {
					va, vb := float64(ra[j]), float64(rb[j])
					diff := va - vb
					if diff < 0 {
						diff = -diff
					}
					sumAbs += diff
					dot += va * vb
					na += va * va
					nb += vb * vb
					n++
				}
			}
			if n > 0 {
				d.MeanAbsDiff = sumAbs / float64(n)
			}
			if na > 0 && nb > 0 {
				d.CosineSim = dot / math.Sqrt(na*nb)
			}
		}
		out = append(out, d)
	}
	return out, nil
}

// FormatWeightDiffs renders the comparison as a table.
func FormatWeightDiffs(diffs []WeightDiff) string {
	out := fmt.Sprintf("%-12s %-14s %-14s %12s %10s\n", "LAYER", "SHAPE A", "SHAPE B", "MEAN|Δ|", "COS-SIM")
	for _, d := range diffs {
		shapeA, shapeB := "-", "-"
		if d.OnlyIn != "b" {
			shapeA = fmt.Sprintf("%dx%d", d.RowsA, d.ColsA)
		}
		if d.OnlyIn != "a" {
			shapeB = fmt.Sprintf("%dx%d", d.RowsB, d.ColsB)
		}
		if d.OnlyIn != "" {
			out += fmt.Sprintf("%-12s %-14s %-14s %12s %10s\n", d.Layer, shapeA, shapeB, "-", "only in "+d.OnlyIn)
			continue
		}
		out += fmt.Sprintf("%-12s %-14s %-14s %12.6f %10.4f\n", d.Layer, shapeA, shapeB, d.MeanAbsDiff, d.CosineSim)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
