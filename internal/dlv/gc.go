package dlv

// Archive maintenance: dlv gc and dlv repack. Re-archiving never overwrites
// segment payloads in place — content-addressed dedup makes displaced
// payloads garbage instead — so a long-lived repository wants a GC that
// reclaims them, and a repack that additionally coalesces fragmented
// segment files. Both are safe under concurrent checkouts of the same
// in-process store (pas commit order: write new segments → flip index →
// unlink old).

import (
	"fmt"

	"modelhub/internal/obs"
	"modelhub/internal/pas"
)

// GC compacts the repository's PAS archive: segment files holding payloads
// no archived snapshot references are rewritten to live-only segments, and
// the reclaimed bytes are returned. The repository must have been archived
// (dlv archive) with the segment layout.
func (r *Repo) GC() (pas.GCStats, error) {
	defer obs.StartRoot("dlv.gc").End()
	store, err := r.openArchive()
	if err != nil {
		return pas.GCStats{}, fmt.Errorf("%w: gc: %v", ErrRepo, err)
	}
	return store.GC()
}

// Repack rewrites every segment file of the repository's PAS archive into
// freshly packed segments — GC plus defragmentation after many incremental
// re-archives.
func (r *Repo) Repack() (pas.GCStats, error) {
	defer obs.StartRoot("dlv.repack").End()
	store, err := r.openArchive()
	if err != nil {
		return pas.GCStats{}, fmt.Errorf("%w: repack: %v", ErrRepo, err)
	}
	return store.Repack()
}

// ArchiveLayout reports the on-disk layout of the repository's PAS archive.
func (r *Repo) ArchiveLayout() (string, error) {
	store, err := r.openArchive()
	if err != nil {
		return "", err
	}
	return store.Layout(), nil
}
