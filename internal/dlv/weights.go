package dlv

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"modelhub/internal/catalog"
	"modelhub/internal/floatenc"
	"modelhub/internal/obs"
	"modelhub/internal/pas"
	"modelhub/internal/tensor"
)

// pasSnapID is the PAS snapshot identifier of a DLV snapshot.
func pasSnapID(versionID int64, snap string) string {
	return fmt.Sprintf("v%06d/%s", versionID, snap)
}

// ArchiveOptions configure dlv archive.
type ArchiveOptions struct {
	// Algorithm, Scheme, Alpha mirror pas.Options.
	Algorithm string
	Scheme    pas.Scheme
	Alpha     float64
	// LatestBudget and CheckpointBudget set per-snapshot budgets directly
	// (used when Alpha == 0): latest snapshots are hot (paper Sec. IV-A,
	// unbalanced access frequencies), checkpoints are cold.
	LatestBudget     float64
	CheckpointBudget float64
	// CheckpointScheme, when non-nil, degrades checkpoint (non-latest)
	// snapshots through a lossy float representation before archival —
	// the paper's alternative to deleting snapshots under resource
	// pressure (Sec. IV-B: "most useful for snapshots whose weights are
	// primarily used for fine-tuning or initialization"). Latest snapshots
	// always stay lossless.
	CheckpointScheme *floatenc.Scheme
	// PlaneGranularity lets the plan optimizer choose storage per byte
	// segment rather than per matrix (pas.Options.PlaneGranularity).
	PlaneGranularity bool
	// Purge removes the raw weight files after a successful archive.
	Purge bool
}

// Archive consolidates every snapshot of every version into a PAS archive
// (dlv archive). Within a version, consecutive snapshots become delta
// candidates; across versions, the parent relation links the parent's
// latest snapshot to the child's snapshots (the fine-tuning pattern the
// paper exploits).
func (r *Repo) Archive(opts ArchiveOptions) (*pas.Store, error) {
	versions, err := r.List()
	if err != nil {
		return nil, err
	}
	var snaps []pas.SnapshotIn
	var extra [][2]pas.MatrixRef
	firstSnapOf := map[int64]string{}
	latestSnapOf := map[int64]string{}
	for _, v := range versions {
		for i, snap := range v.Snapshots {
			w, err := r.readRawSnapshot(v.ID, snap)
			if err != nil {
				return nil, err
			}
			if opts.CheckpointScheme != nil && snap != LatestSnap {
				if w, err = degradeSnapshot(w, *opts.CheckpointScheme); err != nil {
					return nil, err
				}
			}
			budget := opts.CheckpointBudget
			if snap == LatestSnap {
				budget = opts.LatestBudget
			}
			id := pasSnapID(v.ID, snap)
			snaps = append(snaps, pas.SnapshotIn{ID: id, Matrices: w, Budget: budget})
			if i == 0 {
				firstSnapOf[v.ID] = id
			}
			if i > 0 {
				// In-version chain: adjacent snapshots share layer names.
				prevID := pasSnapID(v.ID, v.Snapshots[i-1])
				for name := range w {
					extra = append(extra, [2]pas.MatrixRef{
						{Snapshot: prevID, Name: name},
						{Snapshot: id, Name: name},
					})
				}
			}
			if snap == LatestSnap {
				latestSnapOf[v.ID] = id
			}
		}
	}
	if len(snaps) == 0 {
		return nil, fmt.Errorf("%w: nothing to archive", ErrRepo)
	}
	// Cross-version candidates along lineage: parent's latest snapshot vs
	// the child's first snapshot, for layer names they share.
	for _, v := range versions {
		if v.ParentID == 0 {
			continue
		}
		parentLatest, okP := latestSnapOf[v.ParentID]
		childFirst, okC := firstSnapOf[v.ID]
		if !okP || !okC {
			continue
		}
		pw, err := r.readRawSnapshot(v.ParentID, LatestSnap)
		if err != nil {
			return nil, err
		}
		cw, err := r.readRawSnapshot(v.ID, v.Snapshots[0])
		if err != nil {
			return nil, err
		}
		for name := range cw {
			if _, ok := pw[name]; ok {
				extra = append(extra, [2]pas.MatrixRef{
					{Snapshot: parentLatest, Name: name},
					{Snapshot: childFirst, Name: name},
				})
			}
		}
	}
	store, err := pas.Create(r.pasPath(), snaps, pas.Options{
		Algorithm:        opts.Algorithm,
		Scheme:           opts.Scheme,
		Alpha:            opts.Alpha,
		ExtraPairs:       extra,
		NoDefaultPairs:   true,
		PlaneGranularity: opts.PlaneGranularity,
	})
	if err != nil {
		return nil, err
	}
	for _, v := range versions {
		if len(v.Snapshots) == 0 {
			continue
		}
		if _, err := r.db.Update("model_version",
			[]catalog.Cond{{Col: "id", Op: catalog.Eq, Val: v.ID}},
			catalog.Row{"archived": true}); err != nil {
			return nil, err
		}
		if opts.Purge {
			if err := os.RemoveAll(filepath.Join(r.root, dlvDir, weightsDir, fmt.Sprintf("v%06d", v.ID))); err != nil {
				return nil, fmt.Errorf("%w: purging raw weights: %v", ErrRepo, err)
			}
		}
	}
	if err := r.db.Save(); err != nil {
		return nil, err
	}
	r.setArchive(store)
	return store, nil
}

// degradeSnapshot round-trips every matrix through a lossy float scheme,
// collapsing low-order entropy so the archived chunks compress much better.
func degradeSnapshot(w map[string]*tensor.Matrix, scheme floatenc.Scheme) (map[string]*tensor.Matrix, error) {
	out := make(map[string]*tensor.Matrix, len(w))
	for name, m := range w {
		enc, err := floatenc.Encode(scheme, m)
		if err != nil {
			return nil, err
		}
		dec, err := floatenc.Decode(enc)
		if err != nil {
			return nil, err
		}
		out[name] = dec
	}
	return out, nil
}

func (r *Repo) pasPath() string { return filepath.Join(r.root, dlvDir, pasDir) }

// openArchive returns the PAS store if the repo has been archived. The store
// is memoized on the Repo so the concurrent retrieval engine's decoded-plane
// LRU persists across Weights/WeightIntervals calls.
func (r *Repo) openArchive() (*pas.Store, error) {
	r.pasMu.Lock()
	defer r.pasMu.Unlock()
	if r.pasStore != nil {
		return r.pasStore, nil
	}
	store, err := pas.Open(r.pasPath())
	if err != nil {
		return nil, err
	}
	r.pasStore = store
	return store, nil
}

// setArchive replaces the memoized store after a re-archive, dropping any
// caches keyed against the old plan.
func (r *Repo) setArchive(store *pas.Store) {
	r.pasMu.Lock()
	r.pasStore = store
	r.pasMu.Unlock()
}

// Weights loads a snapshot's weight matrices via the concurrent retrieval
// engine (checkout is the hot path PAS is read-optimized for). prefix
// selects the byte-plane resolution (4 = exact); raw (unarchived) snapshots
// only support prefix 4.
func (r *Repo) Weights(versionID int64, snap string, prefix int) (map[string]*tensor.Matrix, error) {
	return r.WeightsCtx(context.Background(), versionID, snap, prefix)
}

// WeightsCtx is Weights under a caller-supplied context, so the checkout
// span joins the caller's trace instead of rooting its own.
func (r *Repo) WeightsCtx(ctx context.Context, versionID int64, snap string, prefix int) (out map[string]*tensor.Matrix, err error) {
	ctx, span := obs.Start(ctx, "dlv.checkout")
	span.SetAttrInt("dlv.version", versionID)
	span.SetAttrInt("dlv.prefix", int64(prefix))
	defer func() {
		if err != nil {
			span.SetError()
		}
		span.End()
	}()
	v, err := r.Version(versionID)
	if err != nil {
		return nil, err
	}
	if v.Archived {
		store, err := r.openArchive()
		if err != nil {
			return nil, err
		}
		return store.GetSnapshotCtx(ctx, pasSnapID(versionID, snap), prefix, pas.Concurrent)
	}
	if prefix != 4 {
		return nil, fmt.Errorf("%w: version %d is not archived; only full-precision weights available", ErrRepo, versionID)
	}
	return r.readRawSnapshot(versionID, snap)
}

// WeightIntervals returns lo/hi bounds of one layer's weights at a given
// byte-plane prefix, serving progressive evaluation over archived models.
// Reads go through the concurrent engine, whose (node, prefix) LRU pays off
// exactly here: progressive evaluation revisits the same chains at
// escalating prefixes.
func (r *Repo) WeightIntervals(versionID int64, snap, layer string, prefix int) (lo, hi *tensor.Matrix, err error) {
	store, err := r.openArchive()
	if err != nil {
		return nil, nil, err
	}
	return store.GetIntervalsConcurrent(pas.MatrixRef{Snapshot: pasSnapID(versionID, snap), Name: layer}, prefix)
}
