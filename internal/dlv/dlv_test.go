package dlv

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"modelhub/internal/data"
	"modelhub/internal/delta"
	"modelhub/internal/dnn"
	"modelhub/internal/floatenc"
	"modelhub/internal/pas"
	"modelhub/internal/tensor"
	"modelhub/internal/zoo"
)

func initRepo(t *testing.T) *Repo {
	t.Helper()
	r, err := Init(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// trainToy trains a tiny model and returns everything a commit needs.
func trainToy(t *testing.T, seed int64) (*dnn.NetDef, *dnn.TrainResult, []dnn.Example) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	examples := data.Digits(rng, 200, 0.05)
	def := zoo.LeNet("lenet")
	n, err := dnn.Build(def, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dnn.Train(n, examples, dnn.TrainConfig{
		Epochs: 2, BatchSize: 16, LR: 0.1, CheckpointEvery: 10, Seed: seed + 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return def, res, examples
}

func commitToy(t *testing.T, r *Repo, name string, seed int64, parent int64) (int64, *dnn.TrainResult, []dnn.Example) {
	t.Helper()
	def, res, examples := trainToy(t, seed)
	id, err := r.Commit(CommitInput{
		Name:        name,
		Msg:         "trained " + name,
		NetDef:      def,
		Hyper:       map[string]string{"base_lr": "0.1", "momentum": "0.0"},
		Log:         res.Log,
		Checkpoints: res.Checkpoints,
		Final:       res.Final,
		Accuracy:    0.9,
		Files:       map[string][]byte{"train.cfg": []byte("lr=0.1\n")},
		ParentID:    parent,
	})
	if err != nil {
		t.Fatal(err)
	}
	return id, res, examples
}

func TestInitOpen(t *testing.T) {
	dir := t.TempDir()
	if _, err := Init(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := Init(dir); !errors.Is(err, ErrRepo) {
		t.Fatal("double init must fail")
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(t.TempDir()); !errors.Is(err, ErrRepo) {
		t.Fatal("open of non-repo must fail")
	}
}

func TestCommitAndVersion(t *testing.T) {
	r := initRepo(t)
	id, res, _ := commitToy(t, r, "lenet", 1, 0)
	if id != 1 {
		t.Fatalf("first id = %d", id)
	}
	v, err := r.Version(id)
	if err != nil {
		t.Fatal(err)
	}
	if v.Name != "lenet" || v.Accuracy != 0.9 || v.Archived {
		t.Fatalf("version = %+v", v)
	}
	if len(v.Snapshots) != len(res.Checkpoints)+1 {
		t.Fatalf("snapshots = %v", v.Snapshots)
	}
	if v.Snapshots[len(v.Snapshots)-1] != LatestSnap {
		t.Fatal("latest snapshot must sort last")
	}
	if v.Hyper["base_lr"] != "0.1" {
		t.Fatalf("hyper = %v", v.Hyper)
	}
	if len(v.Files) != 1 {
		t.Fatalf("files = %v", v.Files)
	}
}

func TestCommitValidation(t *testing.T) {
	r := initRepo(t)
	if _, err := r.Commit(CommitInput{}); !errors.Is(err, ErrRepo) {
		t.Fatal("empty commit must fail")
	}
	if _, err := r.Commit(CommitInput{Name: "x"}); !errors.Is(err, ErrRepo) {
		t.Fatal("missing netdef must fail")
	}
	def := zoo.LeNet("x")
	if _, err := r.Commit(CommitInput{Name: "x", NetDef: def, ParentID: 99}); !errors.Is(err, ErrRepo) {
		t.Fatal("missing parent must fail")
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	r := initRepo(t)
	id, res, _ := commitToy(t, r, "lenet", 2, 0)
	w, err := r.Weights(id, LatestSnap, 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range res.Final {
		if !w[name].Equal(m) {
			t.Fatalf("weights %s differ after round trip", name)
		}
	}
	if _, err := r.Weights(id, LatestSnap, 2); !errors.Is(err, ErrRepo) {
		t.Fatal("partial read of unarchived version must fail")
	}
	if _, err := r.Weights(id, "nope", 4); !errors.Is(err, ErrRepo) {
		t.Fatal("unknown snapshot must fail")
	}
}

func TestObjectStore(t *testing.T) {
	r := initRepo(t)
	id, _, _ := commitToy(t, r, "lenet", 3, 0)
	v, err := r.Version(id)
	if err != nil {
		t.Fatal(err)
	}
	sha := v.Files["train.cfg"]
	content, err := r.GetObject(sha)
	if err != nil {
		t.Fatal(err)
	}
	if string(content) != "lr=0.1\n" {
		t.Fatalf("object content = %q", content)
	}
	if _, err := r.GetObject(strings.Repeat("0", 64)); !errors.Is(err, ErrRepo) {
		t.Fatal("missing object must fail")
	}
}

func TestLineageAndChildren(t *testing.T) {
	r := initRepo(t)
	id1, _, _ := commitToy(t, r, "base", 4, 0)
	id2, _, _ := commitToy(t, r, "ft-a", 5, id1)
	id3, _, _ := commitToy(t, r, "ft-b", 6, id2)
	lineage, err := r.Lineage(id3)
	if err != nil {
		t.Fatal(err)
	}
	if len(lineage) != 2 || lineage[0] != id2 || lineage[1] != id1 {
		t.Fatalf("lineage = %v", lineage)
	}
	kids, err := r.Children(id1)
	if err != nil || len(kids) != 1 || kids[0] != id2 {
		t.Fatalf("children = %v, %v", kids, err)
	}
}

func TestCopyScaffold(t *testing.T) {
	r := initRepo(t)
	id1, _, _ := commitToy(t, r, "base", 7, 0)
	id2, err := r.Copy(id1, "variant", "scaffolded")
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.Version(id2)
	if err != nil {
		t.Fatal(err)
	}
	if v.Name != "variant" || v.ParentID != id1 || len(v.Snapshots) != 0 {
		t.Fatalf("copy = %+v", v)
	}
	if v.NetDef.Name != "variant" {
		t.Fatal("copied netdef must be renamed")
	}
}

func TestListAndByName(t *testing.T) {
	r := initRepo(t)
	commitToy(t, r, "a", 8, 0)
	commitToy(t, r, "b", 9, 0)
	versions, err := r.List()
	if err != nil || len(versions) != 2 {
		t.Fatalf("list = %v, %v", versions, err)
	}
	v, err := r.VersionByName("b")
	if err != nil || v.Name != "b" {
		t.Fatalf("byName = %+v, %v", v, err)
	}
	if _, err := r.VersionByName("zzz"); !errors.Is(err, ErrRepo) {
		t.Fatal("unknown name must fail")
	}
}

func TestDiff(t *testing.T) {
	r := initRepo(t)
	id1, _, _ := commitToy(t, r, "base", 10, 0)
	// A variant with one layer changed and one removed.
	def := zoo.LeNet("variant")
	def.Nodes[0].Out = 16 // conv1 widened
	def.Nodes = def.Nodes[:len(def.Nodes)-1]
	def.Edges = def.Edges[:len(def.Edges)-1]
	id2, err := r.Commit(CommitInput{
		Name: "variant", NetDef: def,
		Hyper:    map[string]string{"base_lr": "0.01"},
		Accuracy: 0.95, ParentID: id1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Diff(id1, id2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OnlyInA) != 1 || rep.OnlyInA[0] != "prob" {
		t.Fatalf("OnlyInA = %v", rep.OnlyInA)
	}
	if len(rep.ChangedLayers) != 1 || rep.ChangedLayers[0] != "conv1" {
		t.Fatalf("Changed = %v", rep.ChangedLayers)
	}
	if rep.HyperChanged["base_lr"] != [2]string{"0.1", "0.01"} {
		t.Fatalf("HyperChanged = %v", rep.HyperChanged)
	}
	if rep.AccuracyDelta <= 0 {
		t.Fatalf("AccuracyDelta = %v", rep.AccuracyDelta)
	}
}

func TestDescribe(t *testing.T) {
	r := initRepo(t)
	id, _, _ := commitToy(t, r, "lenet", 11, 0)
	desc, err := r.Describe(id)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lenet", "conv1", "base_lr", "latest"} {
		if !strings.Contains(desc, want) {
			t.Fatalf("describe missing %q:\n%s", want, desc)
		}
	}
}

func TestTrainLog(t *testing.T) {
	r := initRepo(t)
	id, res, _ := commitToy(t, r, "lenet", 12, 0)
	log, err := r.TrainLog(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != len(res.Log) {
		t.Fatalf("log rows = %d, want %d", len(log), len(res.Log))
	}
	if log[0].Iter != res.Log[0].Iter || log[0].Loss != res.Log[0].Loss {
		t.Fatal("log content mismatch")
	}
}

func TestArchiveAndRetrieve(t *testing.T) {
	r := initRepo(t)
	id1, res1, _ := commitToy(t, r, "base", 13, 0)
	// Fine-tune: derive from base weights, nudge them, commit as child.
	ft := map[string]*tensor.Matrix{}
	rng := rand.New(rand.NewSource(14))
	for name, m := range res1.Final {
		ft[name] = m.Perturb(rng, 1e-4)
	}
	def := zoo.LeNet("ft")
	id2, err := r.Commit(CommitInput{
		Name: "ft", NetDef: def, Final: ft, Accuracy: 0.91, ParentID: id1,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := r.Archive(ArchiveOptions{Algorithm: "pas-mt", Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !store.Info().Feasible {
		t.Fatal("archive plan should be feasible at α=2")
	}
	// Both versions flagged archived; weights retrievable from PAS.
	for _, id := range []int64{id1, id2} {
		v, err := r.Version(id)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Archived {
			t.Fatalf("version %d not flagged archived", id)
		}
	}
	w, err := r.Weights(id2, LatestSnap, 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range ft {
		if !w[name].Equal(m) {
			t.Fatalf("archived weights %s differ", name)
		}
	}
	// Partial retrieval now works.
	if _, err := r.Weights(id1, LatestSnap, 2); err != nil {
		t.Fatal(err)
	}
	// Intervals are retrievable per layer.
	lo, hi, err := r.WeightIntervals(id2, LatestSnap, "ip2", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ft["ip2"].Data() {
		if !(lo.Data()[i] <= v && v <= hi.Data()[i]) {
			t.Fatal("interval does not contain true weight")
		}
	}
}

func TestArchivePurge(t *testing.T) {
	r := initRepo(t)
	id, res, _ := commitToy(t, r, "lenet", 15, 0)
	if _, err := r.Archive(ArchiveOptions{Purge: true}); err != nil {
		t.Fatal(err)
	}
	w, err := r.Weights(id, LatestSnap, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !w["ip2"].Equal(res.Final["ip2"]) {
		t.Fatal("post-purge weights must come from PAS and be exact")
	}
}

func TestArchiveEmpty(t *testing.T) {
	r := initRepo(t)
	if _, err := r.Archive(ArchiveOptions{}); !errors.Is(err, ErrRepo) {
		t.Fatal("archiving an empty repo must fail")
	}
}

func TestEvalMatchesDirect(t *testing.T) {
	r := initRepo(t)
	def, res, examples := trainToy(t, 16)
	id, err := r.Commit(CommitInput{Name: "m", NetDef: def, Final: res.Final})
	if err != nil {
		t.Fatal(err)
	}
	test := examples[:50]
	got, err := r.Eval(id, LatestSnap, test, 4)
	if err != nil {
		t.Fatal(err)
	}
	net, err := buildWith(def, res.Final)
	if err != nil {
		t.Fatal(err)
	}
	want := dnn.Evaluate(net, test)
	if got.Accuracy != want {
		t.Fatalf("eval accuracy %v != direct %v", got.Accuracy, want)
	}
}

func TestEvalProgressive(t *testing.T) {
	r := initRepo(t)
	def, res, examples := trainToy(t, 17)
	id, err := r.Commit(CommitInput{Name: "m", NetDef: def, Final: res.Final})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.EvalProgressive(id, LatestSnap, examples[:5]); !errors.Is(err, ErrRepo) {
		t.Fatal("progressive eval before archive must fail")
	}
	if _, err := r.Archive(ArchiveOptions{}); err != nil {
		t.Fatal(err)
	}
	test := examples[:30]
	prog, err := r.EvalProgressive(id, LatestSnap, test)
	if err != nil {
		t.Fatal(err)
	}
	full, err := r.Eval(id, LatestSnap, test, 4)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Accuracy != full.Accuracy {
		t.Fatalf("progressive accuracy %v != full %v", prog.Accuracy, full.Accuracy)
	}
	resolved := 0
	for p := 1; p <= 4; p++ {
		resolved += prog.PrefixHistogram[p]
	}
	if resolved != len(test) {
		t.Fatalf("histogram %v does not cover all queries", prog.PrefixHistogram)
	}
}

func TestPersistenceAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	r, err := Init(dir)
	if err != nil {
		t.Fatal(err)
	}
	def, res, _ := trainToy(t, 18)
	id, err := r.Commit(CommitInput{Name: "m", NetDef: def, Final: res.Final, Accuracy: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	v, err := r2.Version(id)
	if err != nil || v.Name != "m" || v.Accuracy != 0.8 {
		t.Fatalf("reopened version = %+v, %v", v, err)
	}
	w, err := r2.Weights(id, LatestSnap, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !w["conv1"].Equal(res.Final["conv1"]) {
		t.Fatal("weights must survive reopen")
	}
}

func TestArchiveUsesCrossVersionDeltas(t *testing.T) {
	// A fine-tuned child whose weights are near-copies of the parent must
	// archive smaller than two unrelated models.
	r1 := initRepo(t)
	_, res, _ := commitToy(t, r1, "base", 19, 0)
	rng := rand.New(rand.NewSource(20))
	ft := map[string]*tensor.Matrix{}
	for name, m := range res.Final {
		ft[name] = m.Perturb(rng, 1e-5)
	}
	v1, err := r1.VersionByName("base")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Commit(CommitInput{Name: "ft", NetDef: zoo.LeNet("ft"), Final: ft, ParentID: v1.ID}); err != nil {
		t.Fatal(err)
	}
	linked, err := r1.Archive(ArchiveOptions{Algorithm: "mst"})
	if err != nil {
		t.Fatal(err)
	}

	r2 := initRepo(t)
	commitToy(t, r2, "base", 21, 0)
	if _, err := r2.Commit(CommitInput{Name: "unrelated", NetDef: zoo.LeNet("u"), Final: trainFinal(t, 22)}); err != nil {
		t.Fatal(err)
	}
	unlinked, err := r2.Archive(ArchiveOptions{Algorithm: "mst"})
	if err != nil {
		t.Fatal(err)
	}
	if linked.TotalChunkBytes(4) >= unlinked.TotalChunkBytes(4) {
		t.Fatalf("fine-tuned archive %d should beat unrelated archive %d",
			linked.TotalChunkBytes(4), unlinked.TotalChunkBytes(4))
	}
	_ = pas.Independent
}

func trainFinal(t *testing.T, seed int64) map[string]*tensor.Matrix {
	t.Helper()
	_, res, _ := trainToy(t, seed)
	return res.Final
}

func TestArchiveCheckpointScheme(t *testing.T) {
	// Lossy checkpoint archival: checkpoints shrink, latest stays exact.
	buildRepo := func(scheme *floatenc.Scheme) (*Repo, *dnn.TrainResult, int64) {
		r := initRepo(t)
		id, res, _ := commitToy(t, r, "m", 30, 0)
		if _, err := r.Archive(ArchiveOptions{Algorithm: "mst", CheckpointScheme: scheme}); err != nil {
			t.Fatal(err)
		}
		return r, res, id
	}
	lossless, _, _ := buildRepo(nil)
	fixed := &floatenc.Scheme{Kind: floatenc.Fixed, Bits: 8}
	lossy, res, id := buildRepo(fixed)

	losslessStore, err := lossless.openArchive()
	if err != nil {
		t.Fatal(err)
	}
	lossyStore, err := lossy.openArchive()
	if err != nil {
		t.Fatal(err)
	}
	if lossyStore.TotalChunkBytes(4) >= losslessStore.TotalChunkBytes(4) {
		t.Fatalf("fixed-8 checkpoints (%d) should archive smaller than lossless (%d)",
			lossyStore.TotalChunkBytes(4), losslessStore.TotalChunkBytes(4))
	}
	// Latest snapshot is untouched.
	w, err := lossy.Weights(id, LatestSnap, 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range res.Final {
		if !w[name].Equal(m) {
			t.Fatalf("latest weights %s must stay lossless", name)
		}
	}
	// Checkpoints are degraded but close (within the fixed-8 step).
	v, err := lossy.Version(id)
	if err != nil {
		t.Fatal(err)
	}
	ckptLabel := v.Snapshots[0]
	got, err := lossy.Weights(id, ckptLabel, 4)
	if err != nil {
		t.Fatal(err)
	}
	orig := res.Checkpoints[0].Weights
	for name, m := range orig {
		if got[name].Equal(m) {
			// At least some matrices must differ (they were quantized)...
			continue
		}
		if !got[name].ApproxEqual(m, m.AbsMax()/64) {
			t.Fatalf("checkpoint %s drifted beyond the quantization step", name)
		}
	}
}

func TestEvalProgressiveTopK(t *testing.T) {
	r := initRepo(t)
	def, res, examples := trainToy(t, 31)
	id, err := r.Commit(CommitInput{Name: "m", NetDef: def, Final: res.Final})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Archive(ArchiveOptions{}); err != nil {
		t.Fatal(err)
	}
	test := examples[:25]
	top1, err := r.EvalProgressiveTopK(id, LatestSnap, test, 1)
	if err != nil {
		t.Fatal(err)
	}
	top5, err := r.EvalProgressiveTopK(id, LatestSnap, test, 5)
	if err != nil {
		t.Fatal(err)
	}
	if top5.Accuracy < top1.Accuracy {
		t.Fatalf("top-5 accuracy %v must be >= top-1 %v", top5.Accuracy, top1.Accuracy)
	}
	// Top-5 determination is harder: at least as many planes consumed.
	planes := func(r *ProgressiveEvalResult) int {
		total := 0
		for p := 1; p <= 4; p++ {
			total += p * r.PrefixHistogram[p]
		}
		return total
	}
	if planes(top5) < planes(top1) {
		t.Fatalf("top-5 should need at least as many byte planes (%d vs %d)", planes(top5), planes(top1))
	}
	if _, err := r.EvalProgressiveTopK(id, LatestSnap, test, 0); !errors.Is(err, ErrRepo) {
		t.Fatal("k=0 must error")
	}
}

// The full lifecycle works on DAG models with skip connections: commit,
// archive, retrieve, evaluate (full and progressive).
func TestDAGModelLifecycle(t *testing.T) {
	r := initRepo(t)
	rng := rand.New(rand.NewSource(33))
	examples := data.Digits(rng, 200, 0.05)
	def := zoo.ResNetSkip("resnet-skip")
	n, err := dnn.Build(def, rand.New(rand.NewSource(34)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dnn.Train(n, examples, dnn.TrainConfig{
		Epochs: 1, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: 35,
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := r.Commit(CommitInput{Name: "resnet-skip", NetDef: def, Final: res.Final})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Archive(ArchiveOptions{}); err != nil {
		t.Fatal(err)
	}
	w, err := r.Weights(id, LatestSnap, 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range res.Final {
		if !w[name].Equal(m) {
			t.Fatalf("archived DAG weights %s differ", name)
		}
	}
	test := examples[:20]
	full, err := r.Eval(id, LatestSnap, test, 4)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := r.EvalProgressive(id, LatestSnap, test)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Accuracy != full.Accuracy {
		t.Fatalf("DAG progressive %v != full %v", prog.Accuracy, full.Accuracy)
	}
}

func TestDiffWeights(t *testing.T) {
	r := initRepo(t)
	id1, res, _ := commitToy(t, r, "base", 50, 0)
	// A fine-tuned near-copy plus a resized layer and a dropped layer.
	rng := rand.New(rand.NewSource(51))
	ft := map[string]*tensor.Matrix{}
	for name, m := range res.Final {
		ft[name] = m.Perturb(rng, 1e-4)
	}
	resized := delta.ResizeTo(ft["ip1"], ft["ip1"].Rows()+4, ft["ip1"].Cols())
	ft["ip1"] = resized
	delete(ft, "conv1")
	ft["conv_new"] = tensor.RandNormal(rng, 4, 10, 0.1)
	id2, err := r.Commit(CommitInput{Name: "variant", NetDef: zoo.LeNet("variant"), Final: ft})
	if err != nil {
		t.Fatal(err)
	}
	diffs, err := r.DiffWeights(id1, id2, LatestSnap)
	if err != nil {
		t.Fatal(err)
	}
	byLayer := map[string]WeightDiff{}
	for _, d := range diffs {
		byLayer[d.Layer] = d
	}
	// ip2 is a near-copy: tiny mean diff, cosine ~1.
	if d := byLayer["ip2"]; d.MeanAbsDiff > 1e-3 || d.CosineSim < 0.999 {
		t.Fatalf("ip2 diff = %+v", d)
	}
	// ip1 resized: shapes differ, overlap still compared.
	if d := byLayer["ip1"]; d.RowsA == d.RowsB || d.MeanAbsDiff > 1e-3 {
		t.Fatalf("ip1 diff = %+v", d)
	}
	if d := byLayer["conv1"]; d.OnlyIn != "a" {
		t.Fatalf("conv1 diff = %+v", d)
	}
	if d := byLayer["conv_new"]; d.OnlyIn != "b" {
		t.Fatalf("conv_new diff = %+v", d)
	}
	text := FormatWeightDiffs(diffs)
	for _, want := range []string{"ip2", "only in a", "only in b", "COS-SIM"} {
		if !strings.Contains(text, want) {
			t.Fatalf("formatted diff missing %q:\n%s", want, text)
		}
	}
}

func TestArchivePlaneGranularity(t *testing.T) {
	r := initRepo(t)
	id, res, _ := commitToy(t, r, "m", 60, 0)
	store, err := r.Archive(ArchiveOptions{Algorithm: "pas-mt", Alpha: 1.5, PlaneGranularity: true})
	if err != nil {
		t.Fatal(err)
	}
	if !store.Info().Feasible {
		t.Fatal("granular archive should be feasible")
	}
	w, err := r.Weights(id, LatestSnap, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !w["ip2"].Equal(res.Final["ip2"]) {
		t.Fatal("granular archive must retrieve exactly")
	}
	// Progressive eval still works on the granular archive.
	prog, err := r.EvalProgressive(id, LatestSnap, core_TestSetStub(20))
	if err != nil {
		t.Fatal(err)
	}
	full, err := r.Eval(id, LatestSnap, core_TestSetStub(20), 4)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Accuracy != full.Accuracy {
		t.Fatalf("granular progressive %v != full %v", prog.Accuracy, full.Accuracy)
	}
}

// core_TestSetStub avoids importing core (cycle): deterministic digits.
func core_TestSetStub(n int) []dnn.Example {
	return data.Digits(rand.New(rand.NewSource(777)), n, 0.05)
}

func TestEvalHistory(t *testing.T) {
	r := initRepo(t)
	id, res, examples := commitToy(t, r, "m", 70, 0)
	hist, err := r.EvalHistory(id, examples[:40])
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != len(res.Checkpoints)+1 {
		t.Fatalf("history points = %d", len(hist))
	}
	if hist[len(hist)-1].Snapshot != LatestSnap {
		t.Fatal("latest snapshot must be last")
	}
	// Training should improve from the first checkpoint to the final model.
	if hist[len(hist)-1].Accuracy < hist[0].Accuracy {
		t.Fatalf("trajectory should not end below its start: %+v", hist)
	}
	// Versions without snapshots error cleanly.
	id2, err := r.Commit(CommitInput{Name: "empty", NetDef: zoo.LeNet("empty")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.EvalHistory(id2, examples[:5]); !errors.Is(err, ErrRepo) {
		t.Fatal("snapshot-less version must error")
	}
}
