package dlv

import (
	"fmt"
	"sort"
	"strings"

	"modelhub/internal/catalog"
	"modelhub/internal/dnn"
)

// Version is the materialized view of one model version.
type Version struct {
	ID       int64
	Name     string
	Msg      string
	Created  string
	Accuracy float64
	Archived bool
	NetDef   *dnn.NetDef
	Hyper    map[string]string
	// Snapshots lists snapshot labels in iteration order (latest last).
	Snapshots []string
	// Files maps path -> object sha.
	Files map[string]string
	// ParentID is 0 for root versions.
	ParentID int64
}

// Version loads one model version by id.
func (r *Repo) Version(id int64) (*Version, error) {
	row, ok, err := r.db.Get("model_version", id)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: no version %d", ErrRepo, id)
	}
	return r.versionFromRow(row)
}

// VersionByName returns the newest version with the given name.
func (r *Repo) VersionByName(name string) (*Version, error) {
	rows, err := r.db.Select("model_version", catalog.Query{
		Where:   []catalog.Cond{{Col: "name", Op: catalog.Eq, Val: name}},
		OrderBy: "id", Desc: true, Limit: 1,
	})
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%w: no version named %q", ErrRepo, name)
	}
	return r.versionFromRow(rows[0])
}

func (r *Repo) versionFromRow(row catalog.Row) (*Version, error) {
	id := row["id"].(int64)
	def, err := dnn.NetDefFromJSON([]byte(row["netdef"].(string)))
	if err != nil {
		return nil, err
	}
	v := &Version{
		ID:       id,
		Name:     row["name"].(string),
		Msg:      stringOr(row["msg"]),
		Created:  stringOr(row["created"]),
		Accuracy: floatOr(row["accuracy"]),
		Archived: boolOr(row["archived"]),
		NetDef:   def,
		Hyper:    map[string]string{},
		Files:    map[string]string{},
	}
	metaRows, err := r.db.Select("metadata", catalog.Query{
		Where: []catalog.Cond{{Col: "version_id", Op: catalog.Eq, Val: id}},
	})
	if err != nil {
		return nil, err
	}
	for _, m := range metaRows {
		v.Hyper[m["mkey"].(string)] = m["mvalue"].(string)
	}
	snapRows, err := r.db.Select("snapshot", catalog.Query{
		Where:   []catalog.Cond{{Col: "version_id", Op: catalog.Eq, Val: id}},
		OrderBy: "iter",
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(snapRows, func(a, b int) bool {
		// Same iteration: checkpoints before latest.
		ia, ib := snapRows[a]["iter"].(int64), snapRows[b]["iter"].(int64)
		if ia != ib {
			return ia < ib
		}
		return !boolOr(snapRows[a]["latest"]) && boolOr(snapRows[b]["latest"])
	})
	for _, s := range snapRows {
		v.Snapshots = append(v.Snapshots, s["snap"].(string))
	}
	fileRows, err := r.db.Select("file", catalog.Query{
		Where: []catalog.Cond{{Col: "version_id", Op: catalog.Eq, Val: id}},
	})
	if err != nil {
		return nil, err
	}
	for _, f := range fileRows {
		v.Files[f["path"].(string)] = f["sha"].(string)
	}
	parentRows, err := r.db.Select("parent", catalog.Query{
		Where: []catalog.Cond{{Col: "derived", Op: catalog.Eq, Val: id}},
	})
	if err != nil {
		return nil, err
	}
	if len(parentRows) > 0 {
		v.ParentID = parentRows[0]["base"].(int64)
	}
	return v, nil
}

// List returns summaries of all versions in id order (dlv list).
func (r *Repo) List() ([]*Version, error) {
	rows, err := r.db.Select("model_version", catalog.Query{OrderBy: "id"})
	if err != nil {
		return nil, err
	}
	out := make([]*Version, 0, len(rows))
	for _, row := range rows {
		v, err := r.versionFromRow(row)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// TrainLog returns the per-iteration measurements of a version (dlv desc).
func (r *Repo) TrainLog(id int64) ([]dnn.LogEntry, error) {
	rows, err := r.db.Select("trainlog", catalog.Query{
		Where:   []catalog.Cond{{Col: "version_id", Op: catalog.Eq, Val: id}},
		OrderBy: "iter",
	})
	if err != nil {
		return nil, err
	}
	out := make([]dnn.LogEntry, 0, len(rows))
	for _, row := range rows {
		out = append(out, dnn.LogEntry{
			Iter:     int(row["iter"].(int64)),
			Loss:     floatOr(row["loss"]),
			Accuracy: floatOr(row["acc"]),
			LR:       floatOr(row["lr"]),
		})
	}
	return out, nil
}

// Lineage returns the chain of ancestor version ids, nearest first.
func (r *Repo) Lineage(id int64) ([]int64, error) {
	var out []int64
	seen := map[int64]bool{id: true}
	cur := id
	for {
		rows, err := r.db.Select("parent", catalog.Query{
			Where: []catalog.Cond{{Col: "derived", Op: catalog.Eq, Val: cur}},
		})
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			return out, nil
		}
		base := rows[0]["base"].(int64)
		if seen[base] {
			return nil, fmt.Errorf("%w: lineage cycle at version %d", ErrRepo, base)
		}
		seen[base] = true
		out = append(out, base)
		cur = base
	}
}

// Children returns the ids of versions directly derived from id.
func (r *Repo) Children(id int64) ([]int64, error) {
	rows, err := r.db.Select("parent", catalog.Query{
		Where: []catalog.Cond{{Col: "base", Op: catalog.Eq, Val: id}},
	})
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, row := range rows {
		out = append(out, row["derived"].(int64))
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// DiffReport is the structural comparison of two versions (dlv diff).
type DiffReport struct {
	A, B          int64
	OnlyInA       []string // layer names
	OnlyInB       []string
	ChangedLayers []string // same name, different spec
	HyperChanged  map[string][2]string
	AccuracyDelta float64
}

// Diff compares two versions side by side via their metadata and network
// definitions.
func (r *Repo) Diff(aID, bID int64) (*DiffReport, error) {
	a, err := r.Version(aID)
	if err != nil {
		return nil, err
	}
	b, err := r.Version(bID)
	if err != nil {
		return nil, err
	}
	rep := &DiffReport{A: aID, B: bID, HyperChanged: map[string][2]string{}}
	aNodes := map[string]dnn.LayerSpec{}
	for _, n := range a.NetDef.Nodes {
		aNodes[n.Name] = n
	}
	bNodes := map[string]dnn.LayerSpec{}
	for _, n := range b.NetDef.Nodes {
		bNodes[n.Name] = n
	}
	for name, an := range aNodes {
		bn, ok := bNodes[name]
		if !ok {
			rep.OnlyInA = append(rep.OnlyInA, name)
			continue
		}
		if an != bn {
			rep.ChangedLayers = append(rep.ChangedLayers, name)
		}
	}
	for name := range bNodes {
		if _, ok := aNodes[name]; !ok {
			rep.OnlyInB = append(rep.OnlyInB, name)
		}
	}
	sort.Strings(rep.OnlyInA)
	sort.Strings(rep.OnlyInB)
	sort.Strings(rep.ChangedLayers)
	keys := map[string]bool{}
	for k := range a.Hyper {
		keys[k] = true
	}
	for k := range b.Hyper {
		keys[k] = true
	}
	for k := range keys {
		if a.Hyper[k] != b.Hyper[k] {
			rep.HyperChanged[k] = [2]string{a.Hyper[k], b.Hyper[k]}
		}
	}
	rep.AccuracyDelta = b.Accuracy - a.Accuracy
	return rep, nil
}

// Describe renders a human-readable description of a version (dlv desc).
func (r *Repo) Describe(id int64) (string, error) {
	v, err := r.Version(id)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "model version %d: %s\n", v.ID, v.Name)
	fmt.Fprintf(&b, "  created:  %s\n", v.Created)
	fmt.Fprintf(&b, "  message:  %s\n", v.Msg)
	fmt.Fprintf(&b, "  accuracy: %.4f\n", v.Accuracy)
	fmt.Fprintf(&b, "  archived: %v\n", v.Archived)
	if v.ParentID != 0 {
		fmt.Fprintf(&b, "  parent:   %d\n", v.ParentID)
	}
	fmt.Fprintf(&b, "  network (%d layers):\n", len(v.NetDef.Nodes))
	chain, err := v.NetDef.Chain()
	if err == nil {
		for _, l := range chain {
			fmt.Fprintf(&b, "    %-10s %s\n", l.Name, l.Kind)
		}
	}
	if len(v.Hyper) > 0 {
		fmt.Fprintf(&b, "  hyperparameters:\n")
		for _, k := range sortedStringKeys(v.Hyper) {
			fmt.Fprintf(&b, "    %s = %s\n", k, v.Hyper[k])
		}
	}
	fmt.Fprintf(&b, "  snapshots: %s\n", strings.Join(v.Snapshots, ", "))
	return b.String(), nil
}

func stringOr(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	return ""
}

func floatOr(v any) float64 {
	if f, ok := v.(float64); ok {
		return f
	}
	return 0
}

func boolOr(v any) bool {
	if b, ok := v.(bool); ok {
		return b
	}
	return false
}
