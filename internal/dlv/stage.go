package dlv

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Staging area (dlv add, paper Table II): paths registered with Add are
// picked up by the next Commit, snapshotting their contents into the object
// store, and the stage is cleared.

func (r *Repo) stagePath() string { return filepath.Join(r.root, dlvDir, "stage.json") }

// Add stages a repository-relative file for the next commit (dlv add). The
// file must exist under the repository root.
func (r *Repo) Add(relPath string) error {
	clean := filepath.Clean(relPath)
	if filepath.IsAbs(clean) || strings.HasPrefix(clean, "..") {
		return fmt.Errorf("%w: path %q must be repository-relative", ErrRepo, relPath)
	}
	if strings.HasPrefix(clean, dlvDir) {
		return fmt.Errorf("%w: cannot stage repository metadata %q", ErrRepo, relPath)
	}
	abs := filepath.Join(r.root, clean)
	info, err := os.Stat(abs)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrRepo, err)
	}
	if info.IsDir() {
		return fmt.Errorf("%w: %q is a directory; stage files individually", ErrRepo, relPath)
	}
	staged, err := r.Staged()
	if err != nil {
		return err
	}
	for _, s := range staged {
		if s == clean {
			return nil // already staged
		}
	}
	staged = append(staged, clean)
	sort.Strings(staged)
	return r.writeStage(staged)
}

// Unstage removes a path from the staging area (no error if absent).
func (r *Repo) Unstage(relPath string) error {
	clean := filepath.Clean(relPath)
	staged, err := r.Staged()
	if err != nil {
		return err
	}
	out := staged[:0]
	for _, s := range staged {
		if s != clean {
			out = append(out, s)
		}
	}
	return r.writeStage(out)
}

// Staged lists the currently staged repository-relative paths.
func (r *Repo) Staged() ([]string, error) {
	blob, err := os.ReadFile(r.stagePath())
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRepo, err)
	}
	var staged []string
	if err := json.Unmarshal(blob, &staged); err != nil {
		return nil, fmt.Errorf("%w: corrupt stage file: %v", ErrRepo, err)
	}
	return staged, nil
}

func (r *Repo) writeStage(staged []string) error {
	if len(staged) == 0 {
		err := os.Remove(r.stagePath())
		if err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("%w: %v", ErrRepo, err)
		}
		return nil
	}
	blob, err := json.Marshal(staged)
	if err != nil {
		return err
	}
	if err := os.WriteFile(r.stagePath(), blob, 0o644); err != nil {
		return fmt.Errorf("%w: %v", ErrRepo, err)
	}
	return nil
}

// collectStaged reads the staged files' contents for a commit and clears
// the stage.
func (r *Repo) collectStaged() (map[string][]byte, error) {
	staged, err := r.Staged()
	if err != nil {
		return nil, err
	}
	if len(staged) == 0 {
		return nil, nil
	}
	out := make(map[string][]byte, len(staged))
	for _, rel := range staged {
		content, err := os.ReadFile(filepath.Join(r.root, rel))
		if err != nil {
			return nil, fmt.Errorf("%w: staged file %q: %v", ErrRepo, rel, err)
		}
		out[rel] = content
	}
	if err := r.writeStage(nil); err != nil {
		return nil, err
	}
	return out, nil
}
