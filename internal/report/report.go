// Package report renders model exploration results as HTML — the paper's
// "we render results in HTML front end when needed" (Sec. III-B) for
// dlv list, dlv desc (including an inline SVG training-loss chart), and
// dlv diff. Everything is self-contained HTML with no external assets.
package report

import (
	"fmt"
	"html/template"
	"sort"
	"strings"

	"modelhub/internal/dlv"
	"modelhub/internal/dnn"
)

const pageStyle = `<style>
body { font-family: system-ui, sans-serif; margin: 2rem; color: #222; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.5rem; }
table { border-collapse: collapse; margin: .75rem 0; }
th, td { border: 1px solid #ccc; padding: .35rem .7rem; text-align: left; font-size: .9rem; }
th { background: #f2f2f2; }
.kind { color: #666; } .added { color: #0a7f2e; } .removed { color: #b3261e; }
.changed { color: #8a6d00; } .mono { font-family: ui-monospace, monospace; }
</style>`

var pageTemplate = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{{.Title}}</title>` + pageStyle + `</head>
<body><h1>{{.Title}}</h1>{{.Body}}</body></html>`))

func renderPage(title string, body string) (string, error) {
	var sb strings.Builder
	err := pageTemplate.Execute(&sb, struct {
		Title string
		Body  template.HTML
	}{Title: title, Body: template.HTML(body)}) //nolint:gosec // body built from escaped fragments below
	return sb.String(), err
}

func esc(s string) string { return template.HTMLEscapeString(s) }

// List renders the dlv list view: one row per model version with lineage.
func List(versions []*dlv.Version) (string, error) {
	var b strings.Builder
	b.WriteString("<table><tr><th>ID</th><th>Name</th><th>Accuracy</th><th>Snapshots</th><th>Parent</th><th>Created</th><th>Message</th></tr>")
	for _, v := range versions {
		parent := "&mdash;"
		if v.ParentID != 0 {
			parent = fmt.Sprintf("%d", v.ParentID)
		}
		fmt.Fprintf(&b, "<tr><td>%d</td><td>%s</td><td>%.4f</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td></tr>",
			v.ID, esc(v.Name), v.Accuracy, len(v.Snapshots), parent, esc(v.Created), esc(v.Msg))
	}
	b.WriteString("</table>")
	return renderPage("dlv list", b.String())
}

// Desc renders the dlv desc view: metadata, the network table, the
// hyperparameters, and an inline SVG chart of the training loss.
func Desc(v *dlv.Version, log []dnn.LogEntry) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "<h2>model version %d: %s</h2>", v.ID, esc(v.Name))
	b.WriteString("<table>")
	fmt.Fprintf(&b, "<tr><th>created</th><td>%s</td></tr>", esc(v.Created))
	fmt.Fprintf(&b, "<tr><th>message</th><td>%s</td></tr>", esc(v.Msg))
	fmt.Fprintf(&b, "<tr><th>accuracy</th><td>%.4f</td></tr>", v.Accuracy)
	fmt.Fprintf(&b, "<tr><th>archived</th><td>%v</td></tr>", v.Archived)
	if v.ParentID != 0 {
		fmt.Fprintf(&b, "<tr><th>parent</th><td>%d</td></tr>", v.ParentID)
	}
	fmt.Fprintf(&b, "<tr><th>snapshots</th><td>%s</td></tr>", esc(strings.Join(v.Snapshots, ", ")))
	b.WriteString("</table>")

	b.WriteString("<h2>network</h2><table><tr><th>layer</th><th>kind</th><th>hyperparameters</th></tr>")
	chain, err := v.NetDef.Chain()
	if err != nil {
		chain = v.NetDef.Nodes // render unordered if not a chain
	}
	for _, l := range chain {
		var hyper []string
		if l.Out > 0 {
			hyper = append(hyper, fmt.Sprintf("out=%d", l.Out))
		}
		if l.K > 0 {
			hyper = append(hyper, fmt.Sprintf("k=%d", l.K))
		}
		if l.Stride > 0 {
			hyper = append(hyper, fmt.Sprintf("stride=%d", l.Stride))
		}
		if l.Pad > 0 {
			hyper = append(hyper, fmt.Sprintf("pad=%d", l.Pad))
		}
		if l.Mode != "" {
			hyper = append(hyper, "mode="+l.Mode)
		}
		fmt.Fprintf(&b, `<tr><td class="mono">%s</td><td class="kind">%s</td><td>%s</td></tr>`,
			esc(l.Name), esc(l.Kind), esc(strings.Join(hyper, " ")))
	}
	b.WriteString("</table>")

	if len(v.Hyper) > 0 {
		b.WriteString("<h2>training hyperparameters</h2><table><tr><th>key</th><th>value</th></tr>")
		for _, k := range sortedKeys(v.Hyper) {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td></tr>", esc(k), esc(v.Hyper[k]))
		}
		b.WriteString("</table>")
	}

	if len(log) > 0 {
		b.WriteString("<h2>training loss</h2>")
		b.WriteString(lossChart(log, 560, 220))
	}

	if len(v.Files) > 0 {
		b.WriteString("<h2>files</h2><table><tr><th>path</th><th>sha256</th></tr>")
		for _, path := range sortedKeys(v.Files) {
			fmt.Fprintf(&b, `<tr><td class="mono">%s</td><td class="mono">%s</td></tr>`,
				esc(path), esc(v.Files[path][:12]+"…"))
		}
		b.WriteString("</table>")
	}
	return renderPage(fmt.Sprintf("dlv desc %d", v.ID), b.String())
}

// Diff renders the dlv diff side-by-side comparison.
func Diff(a, b *dlv.Version, rep *dlv.DiffReport) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "<h2>%s (v%d) vs %s (v%d)</h2>", esc(a.Name), a.ID, esc(b.Name), b.ID)
	sb.WriteString("<table><tr><th></th><th>change</th></tr>")
	for _, name := range rep.OnlyInA {
		fmt.Fprintf(&sb, `<tr><td class="mono">%s</td><td class="removed">only in v%d</td></tr>`, esc(name), rep.A)
	}
	for _, name := range rep.OnlyInB {
		fmt.Fprintf(&sb, `<tr><td class="mono">%s</td><td class="added">only in v%d</td></tr>`, esc(name), rep.B)
	}
	for _, name := range rep.ChangedLayers {
		fmt.Fprintf(&sb, `<tr><td class="mono">%s</td><td class="changed">spec changed</td></tr>`, esc(name))
	}
	sb.WriteString("</table>")
	if len(rep.HyperChanged) > 0 {
		sb.WriteString("<h2>hyperparameters</h2><table><tr><th>key</th><th>before</th><th>after</th></tr>")
		for _, k := range sortedKeys2(rep.HyperChanged) {
			vals := rep.HyperChanged[k]
			fmt.Fprintf(&sb, "<tr><td>%s</td><td>%s</td><td>%s</td></tr>", esc(k), esc(vals[0]), esc(vals[1]))
		}
		sb.WriteString("</table>")
	}
	fmt.Fprintf(&sb, "<p>accuracy delta: <b>%+.4f</b></p>", rep.AccuracyDelta)
	return renderPage("dlv diff", sb.String())
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeys2(m map[string][2]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
