package report

import (
	"fmt"
	"math"
	"strings"

	"modelhub/internal/dnn"
)

// lossChart renders a training log as a self-contained inline SVG line
// chart (loss over iterations), the visual dlv desc shows for a model's
// learning measurements.
func lossChart(log []dnn.LogEntry, width, height int) string {
	if len(log) == 0 {
		return ""
	}
	const padL, padR, padT, padB = 46, 12, 10, 28
	plotW := float64(width - padL - padR)
	plotH := float64(height - padT - padB)

	minIter, maxIter := log[0].Iter, log[0].Iter
	minLoss, maxLoss := log[0].Loss, log[0].Loss
	for _, e := range log {
		if e.Iter < minIter {
			minIter = e.Iter
		}
		if e.Iter > maxIter {
			maxIter = e.Iter
		}
		if e.Loss < minLoss {
			minLoss = e.Loss
		}
		if e.Loss > maxLoss {
			maxLoss = e.Loss
		}
	}
	if maxIter == minIter {
		maxIter = minIter + 1
	}
	if maxLoss-minLoss < 1e-12 {
		maxLoss = minLoss + 1
	}
	x := func(iter int) float64 {
		return float64(padL) + plotW*float64(iter-minIter)/float64(maxIter-minIter)
	}
	y := func(loss float64) float64 {
		return float64(padT) + plotH*(1-(loss-minLoss)/(maxLoss-minLoss))
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d" role="img" aria-label="training loss">`,
		width, height, width, height)
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999"/>`,
		padL, height-padB, width-padR, height-padB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999"/>`,
		padL, padT, padL, height-padB)
	// Y labels (min / max) and X labels (first / last iteration).
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" text-anchor="end" fill="#555">%s</text>`,
		padL-4, padT+8, fmtLoss(maxLoss))
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" text-anchor="end" fill="#555">%s</text>`,
		padL-4, height-padB, fmtLoss(minLoss))
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" fill="#555">%d</text>`,
		padL, height-padB+14, minIter)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" text-anchor="end" fill="#555">%d</text>`,
		width-padR, height-padB+14, maxIter)
	// The loss polyline.
	var pts []string
	for _, e := range log {
		pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(e.Iter), y(e.Loss)))
	}
	fmt.Fprintf(&b, `<polyline fill="none" stroke="#2962ab" stroke-width="1.6" points="%s"/>`,
		strings.Join(pts, " "))
	// Point markers for sparse logs.
	if len(log) <= 40 {
		for _, e := range log {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.2" fill="#2962ab"/>`, x(e.Iter), y(e.Loss))
		}
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func fmtLoss(v float64) string {
	if math.Abs(v) >= 100 || (math.Abs(v) < 0.01 && v != 0) {
		return fmt.Sprintf("%.2g", v)
	}
	return fmt.Sprintf("%.3f", v)
}
