package report

import (
	"fmt"
	"math"
	"strings"

	"modelhub/internal/tensor"
)

// WeightHeatmap renders a weight matrix as an inline SVG heatmap — the
// "matrix plot" exploration query of the paper's Sec. IV-D, which can be
// answered from high-order byte planes alone (pass a partially retrieved
// matrix; its values are simply what gets plotted). Blue is negative, white
// zero, red positive; color scales to the matrix's absolute maximum.
// Matrices larger than maxCells are downsampled by block-averaging so the
// SVG stays small.
func WeightHeatmap(m *tensor.Matrix, title string) string {
	const maxCells = 64 // per side
	rows, cols := m.Rows(), m.Cols()
	if rows == 0 || cols == 0 {
		return ""
	}
	br := (rows + maxCells - 1) / maxCells // block height
	bc := (cols + maxCells - 1) / maxCells // block width
	gr := (rows + br - 1) / br             // grid rows
	gc := (cols + bc - 1) / bc             // grid cols

	grid := make([]float64, gr*gc)
	absMax := 0.0
	for gy := 0; gy < gr; gy++ {
		for gx := 0; gx < gc; gx++ {
			var sum float64
			n := 0
			for y := gy * br; y < (gy+1)*br && y < rows; y++ {
				for x := gx * bc; x < (gx+1)*bc && x < cols; x++ {
					v := float64(m.At(y, x))
					if math.IsNaN(v) || math.IsInf(v, 0) {
						continue
					}
					sum += v
					n++
				}
			}
			if n > 0 {
				grid[gy*gc+gx] = sum / float64(n)
			}
			if a := math.Abs(grid[gy*gc+gx]); a > absMax {
				absMax = a
			}
		}
	}
	if absMax == 0 {
		absMax = 1
	}

	const cell = 8
	width := gc*cell + 2
	height := gr*cell + 18
	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d" role="img" aria-label="%s">`,
		width, height, width, height, esc(title))
	fmt.Fprintf(&b, `<text x="1" y="12" font-size="11" fill="#333">%s (%dx%d)</text>`,
		esc(title), rows, cols)
	for gy := 0; gy < gr; gy++ {
		for gx := 0; gx < gc; gx++ {
			v := grid[gy*gc+gx] / absMax // [-1, 1]
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`,
				1+gx*cell, 16+gy*cell, cell, cell, divergingColor(v))
		}
	}
	b.WriteString("</svg>")
	return b.String()
}

// divergingColor maps [-1,1] to a blue-white-red ramp.
func divergingColor(v float64) string {
	if v > 1 {
		v = 1
	}
	if v < -1 {
		v = -1
	}
	// Interpolate from blue (38,84,171) through white to red (179,38,30).
	var r, g, bl int
	if v >= 0 {
		r = 255 - int((255-179)*v)
		g = 255 - int((255-38)*v)
		bl = 255 - int((255-30)*v)
	} else {
		v = -v
		r = 255 - int((255-38)*v)
		g = 255 - int((255-84)*v)
		bl = 255 - int((255-171)*v)
	}
	return fmt.Sprintf("#%02x%02x%02x", r, g, bl)
}

// HeatmapPage wraps one or more heatmap SVGs into a standalone HTML page.
func HeatmapPage(title string, svgs []string) (string, error) {
	var body strings.Builder
	for _, svg := range svgs {
		body.WriteString("<div>")
		body.WriteString(svg)
		body.WriteString("</div>")
	}
	return renderPage(title, body.String())
}
