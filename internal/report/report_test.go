package report

import (
	"strings"
	"testing"

	"modelhub/internal/dlv"
	"modelhub/internal/dnn"
	"modelhub/internal/tensor"
	"modelhub/internal/zoo"
)

func sampleVersion() *dlv.Version {
	return &dlv.Version{
		ID:        3,
		Name:      "lenet <v1>", // angle brackets exercise escaping
		Msg:       "baseline & more",
		Created:   "2026-07-04T00:00:00Z",
		Accuracy:  0.9125,
		NetDef:    zoo.LeNet("lenet"),
		Hyper:     map[string]string{"base_lr": "0.1", "momentum": "0.9"},
		Snapshots: []string{"ckpt-000010", "latest"},
		Files:     map[string]string{"train.cfg": strings.Repeat("ab", 32)},
		ParentID:  1,
	}
}

func sampleLog() []dnn.LogEntry {
	return []dnn.LogEntry{
		{Iter: 10, Loss: 2.1, Accuracy: 0.2, LR: 0.1},
		{Iter: 20, Loss: 1.2, Accuracy: 0.5, LR: 0.1},
		{Iter: 30, Loss: 0.4, Accuracy: 0.9, LR: 0.1},
	}
}

func TestListHTML(t *testing.T) {
	html, err := List([]*dlv.Version{sampleVersion()})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<!DOCTYPE html>", "dlv list", "lenet &lt;v1&gt;", "0.9125"} {
		if !strings.Contains(html, want) {
			t.Fatalf("list html missing %q", want)
		}
	}
	if strings.Contains(html, "<v1>") {
		t.Fatal("version name must be HTML-escaped")
	}
}

func TestDescHTML(t *testing.T) {
	html, err := Desc(sampleVersion(), sampleLog())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"conv1", "pool1", "mode=MAX", "base_lr", "<svg", "polyline", "train.cfg",
		"baseline &amp; more",
	} {
		if !strings.Contains(html, want) {
			t.Fatalf("desc html missing %q", want)
		}
	}
}

func TestDescHTMLNoLog(t *testing.T) {
	html, err := Desc(sampleVersion(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(html, "<svg") {
		t.Fatal("no chart without a log")
	}
}

func TestDiffHTML(t *testing.T) {
	a, b := sampleVersion(), sampleVersion()
	b.ID = 4
	rep := &dlv.DiffReport{
		A: 3, B: 4,
		OnlyInA:       []string{"prob"},
		OnlyInB:       []string{"extra1"},
		ChangedLayers: []string{"conv1"},
		HyperChanged:  map[string][2]string{"base_lr": {"0.1", "0.01"}},
		AccuracyDelta: 0.05,
	}
	html, err := Diff(a, b, rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"only in v3", "only in v4", "spec changed", "+0.0500", "0.01"} {
		if !strings.Contains(html, want) {
			t.Fatalf("diff html missing %q", want)
		}
	}
}

func TestLossChartDegenerate(t *testing.T) {
	// Single point and flat loss must not divide by zero.
	if svg := lossChart([]dnn.LogEntry{{Iter: 5, Loss: 1}}, 200, 100); !strings.Contains(svg, "<svg") {
		t.Fatal("single-point chart failed")
	}
	flat := []dnn.LogEntry{{Iter: 1, Loss: 2}, {Iter: 2, Loss: 2}}
	if svg := lossChart(flat, 200, 100); !strings.Contains(svg, "polyline") {
		t.Fatal("flat chart failed")
	}
	if svg := lossChart(nil, 200, 100); svg != "" {
		t.Fatal("empty log must render nothing")
	}
}

func TestWeightHeatmap(t *testing.T) {
	m := tensor.MustFromSlice(2, 3, []float32{-1, 0, 1, 0.5, -0.5, 0})
	svg := WeightHeatmap(m, "ip1")
	for _, want := range []string{"<svg", "ip1 (2x3)", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("heatmap missing %q", want)
		}
	}
	if WeightHeatmap(tensor.NewMatrix(0, 0), "empty") != "" {
		t.Fatal("empty matrix must render nothing")
	}
	// Large matrices downsample rather than exploding the SVG.
	big := tensor.NewMatrix(512, 512)
	svg = WeightHeatmap(big, "big")
	if n := strings.Count(svg, "<rect"); n > 64*64 {
		t.Fatalf("heatmap not downsampled: %d cells", n)
	}
}

func TestDivergingColor(t *testing.T) {
	if divergingColor(0) != "#ffffff" {
		t.Fatalf("zero = %s", divergingColor(0))
	}
	if divergingColor(1) != "#b3261e" {
		t.Fatalf("pos = %s", divergingColor(1))
	}
	if divergingColor(-1) != "#2654ab" {
		t.Fatalf("neg = %s", divergingColor(-1))
	}
	if divergingColor(5) != divergingColor(1) {
		t.Fatal("overflow must clamp")
	}
}

func TestHeatmapPage(t *testing.T) {
	m := tensor.MustFromSlice(1, 2, []float32{1, -1})
	html, err := HeatmapPage("weights", []string{WeightHeatmap(m, "a"), WeightHeatmap(m, "b")})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(html, "<svg") != 2 {
		t.Fatal("page must embed both heatmaps")
	}
}
