package obs

import (
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strings"
	"time"
)

// MiddlewareOptions configure WrapHandler.
type MiddlewareOptions struct {
	// Prefix namespaces the metrics, e.g. "hub.http" yields
	// hub.http.requests, hub.http.request_seconds, hub.http.response_bytes,
	// hub.http.in_flight, hub.http.status_Nxx, hub.http.panics. It also
	// names the request span: "<prefix>.request".
	Prefix string
	// PanicBody is the response body sent with the 500 when a handler
	// panics (defaults to "internal server error").
	PanicBody string
}

// WrapHandler wraps next with the full observability stack: panic recovery
// (a panicking handler becomes a 500 response instead of a crashed
// goroutine, and — under tracing — a span event carrying the stack, so the
// crashed request is findable in /debug/traces), request metrics under
// opts.Prefix, a per-request span that joins the caller's trace when the
// request carries a traceparent header, and structured request logging
// through the package logger with trace correlation. Recovery is always
// active; metrics, spans, and logging follow the global gates.
func WrapHandler(next http.Handler, opts MiddlewareOptions) http.Handler {
	if opts.Prefix == "" {
		opts.Prefix = "http"
	}
	if opts.PanicBody == "" {
		opts.PanicBody = "internal server error"
	}
	requests := GetCounter(opts.Prefix + ".requests")
	seconds := GetHistogram(opts.Prefix + ".request_seconds")
	respBytes := GetCounter(opts.Prefix + ".response_bytes")
	inFlight := GetGauge(opts.Prefix + ".in_flight")
	panics := GetCounter(opts.Prefix + ".panics")
	statuses := [5]*Counter{
		GetCounter(opts.Prefix + ".status_1xx"),
		GetCounter(opts.Prefix + ".status_2xx"),
		GetCounter(opts.Prefix + ".status_3xx"),
		GetCounter(opts.Prefix + ".status_4xx"),
		GetCounter(opts.Prefix + ".status_5xx"),
	}
	spanName := opts.Prefix + ".request"
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		requests.Inc()
		inFlight.Add(1)
		defer inFlight.Add(-1)
		rec := &statusRecorder{ResponseWriter: w}
		// Debug endpoints (/debug/traces, /debug/pprof) are not traced:
		// scraping the flight recorder must not fill it with its own
		// requests. They still get metrics and recovery.
		var span *Span
		if !strings.HasPrefix(r.URL.Path, "/debug/") {
			ctx := r.Context()
			if tp := r.Header.Get(TraceparentHeader); tp != "" {
				if tid, sid, sampled, err := ParseTraceparent(tp); err == nil {
					ctx, span = StartRemote(ctx, spanName, tid, sid, sampled)
				}
			}
			if span == nil {
				ctx, span = Start(ctx, spanName)
			}
			span.SetAttr("http.method", r.Method)
			span.SetAttr("http.path", r.URL.Path)
			r = r.WithContext(ctx)
		}
		defer func() {
			if p := recover(); p != nil {
				panics.Inc()
				span.Event("panic",
					Attr{Key: "panic.value", Value: panicString(p)},
					Attr{Key: "panic.stack", Value: string(debug.Stack())})
				span.SetError()
				Logger().ErrorContext(r.Context(), "handler panic",
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.Any("panic", p))
				if !rec.wroteHeader {
					http.Error(rec, opts.PanicBody, http.StatusInternalServerError)
				}
			}
			status := rec.status
			if status == 0 {
				status = http.StatusOK
			}
			if class := status/100 - 1; class >= 0 && class < len(statuses) {
				statuses[class].Inc()
			}
			elapsed := time.Since(start)
			seconds.Observe(elapsed.Seconds())
			respBytes.Add(rec.bytes)
			span.SetAttrInt("http.status", int64(status))
			span.SetAttrInt("http.response_bytes", rec.bytes)
			if status >= 500 {
				span.SetError()
			}
			span.End()
			Logger().InfoContext(r.Context(), "http request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", status),
				slog.Int64("bytes", rec.bytes),
				slog.Duration("elapsed", elapsed))
		}()
		next.ServeHTTP(rec, r)
	})
}

// panicString renders a recovered panic value for a span event attribute.
func panicString(p any) string { return fmt.Sprint(p) }

// statusRecorder captures the response status and byte count.
type statusRecorder struct {
	http.ResponseWriter
	status      int
	bytes       int64
	wroteHeader bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wroteHeader {
		r.status = code
		r.wroteHeader = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if !r.wroteHeader {
		r.status = http.StatusOK
		r.wroteHeader = true
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}
