// Package obs is the stdlib-only observability layer of the ModelHub
// reproduction: a concurrency-safe metrics registry (atomic counters,
// gauges, bounded-bucket histograms with quantile snapshots), lightweight
// hierarchical spans, structured logging via log/slog, and HTTP middleware
// that instruments and hardens the hub server.
//
// The layer is off by default and globally gated: every metric operation
// first performs one atomic load and a branch, so library hot paths (PAS
// retrieval, GEMM-backed training, DQL enumeration) pay near nothing until a
// binary opts in with Enable — modelhub-server's -metrics flag, mhbench's
// -metrics flag, or a test. Logging is likewise silent by default: the
// package-scoped slog.Logger discards records until SetLogger installs a
// real handler, keeping library packages free of stdout/stderr writes.
package obs

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync/atomic"
)

// enabled is the global metrics gate. All Counter/Gauge/Histogram/Span
// operations check it first; when false they return immediately.
var enabled atomic.Bool

// Enable turns metric collection on process-wide.
func Enable() { enabled.Store(true) }

// Disable turns metric collection off. Already-recorded values remain
// readable through Snapshot.
func Disable() { enabled.Store(false) }

// Enabled reports whether metric collection is on. Instrumentation sites
// that need extra work beyond a metric update (e.g. a time.Now call) should
// guard it with Enabled.
func Enabled() bool { return enabled.Load() }

// logger is the package-scoped structured logger. It defaults to a no-op
// handler so libraries importing obs stay silent.
var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(slog.New(discardHandler{}))
}

// Logger returns the package-scoped structured logger. The default logger
// discards everything; binaries install a real one with SetLogger.
func Logger() *slog.Logger { return logger.Load() }

// SetLogger installs the process-wide structured logger. Passing nil
// restores the silent default. The handler is wrapped so every record made
// under a traced span (via the *Context logging methods) is stamped with
// trace_id and span_id, correlating log lines with /debug/traces.
func SetLogger(l *slog.Logger) {
	if l == nil {
		logger.Store(slog.New(discardHandler{}))
		return
	}
	logger.Store(slog.New(traceHandler{inner: l.Handler()}))
}

// traceHandler decorates an slog.Handler with trace correlation: when the
// record's context carries a traced span, trace_id and span_id attributes
// are appended before the inner handler formats the line.
type traceHandler struct {
	inner slog.Handler
}

func (h traceHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h traceHandler) Handle(ctx context.Context, r slog.Record) error {
	if s := FromContext(ctx); s != nil && s.tr != nil {
		r.AddAttrs(
			slog.String("trace_id", s.tr.id.String()),
			slog.String("span_id", s.spanID.String()),
		)
	}
	return h.inner.Handle(ctx, r)
}

func (h traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return traceHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h traceHandler) WithGroup(name string) slog.Handler {
	return traceHandler{inner: h.inner.WithGroup(name)}
}

// ParseLevel resolves a -log-level flag value ("debug", "info", "warn",
// "error") to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", s)
	}
}

// discardHandler is a slog.Handler that drops everything. Its Enabled
// returns false, so record construction is skipped entirely.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
