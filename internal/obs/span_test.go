package obs

import (
	"context"
	"testing"
	"time"
)

func TestSpanDisabledIsNil(t *testing.T) {
	Disable()
	ctx, s := Start(context.Background(), "test.span.off")
	if s != nil {
		t.Fatal("Start returned a live span while disabled")
	}
	if FromContext(ctx) != nil {
		t.Fatal("disabled Start attached a span to the context")
	}
	if d := s.End(); d != 0 {
		t.Fatalf("nil span End = %v, want 0", d)
	}
	if s.Name() != "" {
		t.Fatalf("nil span Name = %q, want empty", s.Name())
	}
}

func TestSpanNestingRollups(t *testing.T) {
	Enable()
	defer Disable()
	ctx, parent := Start(context.Background(), "test.span.parent")
	if FromContext(ctx) != parent {
		t.Fatal("context does not carry the parent span")
	}
	cctx, child := Start(ctx, "test.span.child")
	if FromContext(cctx) != child {
		t.Fatal("context does not carry the child span")
	}
	time.Sleep(time.Millisecond)
	if d := child.End(); d <= 0 {
		t.Fatalf("child duration = %v, want > 0", d)
	}
	// A second child of the same name accumulates into the same rollup.
	_, child2 := Start(ctx, "test.span.child")
	child2.End()
	parent.End()

	if s := GetHistogram("span.test.span.parent.seconds").Snapshot(); s.Count == 0 {
		t.Fatal("parent span recorded no duration")
	}
	if s := GetHistogram("span.test.span.child.seconds").Snapshot(); s.Count < 2 {
		t.Fatalf("child span histogram count = %d, want >= 2", s.Count)
	}
	roll := GetCounter("span.test.span.parent.child_ns.test.span.child").Value()
	if roll < time.Millisecond.Nanoseconds() {
		t.Fatalf("child rollup = %dns, want >= 1ms", roll)
	}
}

func TestStartRoot(t *testing.T) {
	Enable()
	defer Disable()
	s := StartRoot("test.span.root")
	if s == nil {
		t.Fatal("StartRoot returned nil while enabled")
	}
	if s.Name() != "test.span.root" {
		t.Fatalf("Name = %q", s.Name())
	}
	s.End()
	if snap := GetHistogram("span.test.span.root.seconds").Snapshot(); snap.Count == 0 {
		t.Fatal("root span recorded no duration")
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	Enable()
	defer Disable()
	ctx, parent := Start(context.Background(), "test.span.par")
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			_, c := Start(ctx, "test.span.par.worker")
			c.End()
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	parent.End()
	if GetCounter("span.test.span.par.child_ns.test.span.par.worker").Value() <= 0 {
		t.Fatal("concurrent children did not roll up into the parent")
	}
}
