package obs

import (
	"runtime"
	"time"
)

// Runtime health gauges, refreshed on every /metrics scrape (not on a
// background ticker — a scraper that never comes costs nothing):
//
//	runtime.goroutines   live goroutine count
//	runtime.heap_bytes   bytes of allocated heap objects (MemStats.HeapAlloc)
//	runtime.gc_pauses    histogram of individual GC stop-the-world pauses
//	                     (seconds), fed from the pause ring since last scrape
//	runtime.uptime_seconds  seconds since process start

// processStart anchors the uptime gauge.
var processStart = time.Now()

// lastGCSeen tracks how far into MemStats.PauseNs the pause histogram has
// consumed, so each scrape observes only new pauses.
var lastGCSeen uint32

// refreshRuntimeMetrics samples the Go runtime into the registry. Called by
// the /metrics handler before each snapshot; callers scraping via
// SnapshotJSON directly (mhbench) can call it themselves.
func refreshRuntimeMetrics() {
	GetGauge("runtime.goroutines").Set(int64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	GetGauge("runtime.heap_bytes").Set(int64(ms.HeapAlloc))
	GetFloatGauge("runtime.uptime_seconds").Set(time.Since(processStart).Seconds())

	// PauseNs is a circular buffer of the last 256 pause durations, indexed
	// by GC cycle number; replay the cycles since the previous scrape.
	pauses := GetHistogram("runtime.gc_pauses")
	n := ms.NumGC
	if n > lastGCSeen {
		newPauses := n - lastGCSeen
		if newPauses > uint32(len(ms.PauseNs)) {
			newPauses = uint32(len(ms.PauseNs))
		}
		for i := uint32(0); i < newPauses; i++ {
			cycle := n - i
			pauses.Observe(float64(ms.PauseNs[(cycle+255)%256]) / 1e9)
		}
	}
	lastGCSeen = n
}
