package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Span is one timed region of work. Spans form a hierarchy through
// context.Context: Start called with a context that already carries a span
// makes the new span its child, and when a child ends its duration is
// billed to the parent's per-child rollup.
//
// Each ended span records into two metric families:
//
//	span.<name>.seconds             histogram of the span's own durations
//	span.<name>.child_ns.<child>    counter of cumulative nanoseconds the
//	                                named child spans consumed under it
//
// A nil *Span is a valid no-op (the disabled path), so call sites can
// unconditionally defer End.
type Span struct {
	name   string
	start  time.Time
	parent *Span

	mu      sync.Mutex
	childNS map[string]int64
}

// spanKey carries the active span in a context.
type spanKey struct{}

// Start begins a span named name. When metrics are disabled it returns the
// context unchanged and a nil span whose End is a no-op. The returned
// context carries the span, so nested Start calls build a hierarchy.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	s := &Span{name: name, start: time.Now(), parent: parent}
	return context.WithValue(ctx, spanKey{}, s), s
}

// StartRoot begins a parentless span — for call sites without a context
// (DLV checkout/commit, DQL statement execution).
func StartRoot(name string) *Span {
	_, s := Start(context.Background(), name)
	return s
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// End finishes the span: it observes the duration in the span's histogram,
// bills the duration to the parent's rollup, and flushes this span's own
// child rollups to counters. Safe on a nil receiver. Returns the measured
// duration (0 when nil).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	GetHistogram("span." + s.name + ".seconds").Observe(d.Seconds())
	if s.parent != nil {
		s.parent.addChild(s.name, d)
	}
	s.mu.Lock()
	children := s.childNS
	s.childNS = nil
	s.mu.Unlock()
	// Deterministic flush order keeps registry lock contention predictable
	// and tests stable.
	names := make([]string, 0, len(children))
	for name := range children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		GetCounter("span." + s.name + ".child_ns." + name).Add(children[name])
	}
	return d
}

// addChild accumulates a finished child's duration under its name. Children
// may end concurrently (parallel retrieval tasks under one checkout span).
func (s *Span) addChild(name string, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.childNS == nil {
		s.childNS = map[string]int64{}
	}
	s.childNS[name] += d.Nanoseconds()
}

// Name returns the span's name ("" for the nil no-op span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}
