package obs

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Span is one timed region of work. Spans form a hierarchy through
// context.Context: Start called with a context that already carries a span
// makes the new span its child, and when a child ends its duration is
// billed to the parent's per-child rollup.
//
// Each ended span records into two metric families:
//
//	span.<name>.seconds             histogram of the span's own durations
//	span.<name>.child_ns.<child>    counter of cumulative nanoseconds the
//	                                named child spans consumed under it
//
// When tracing is enabled (EnableTracing), spans additionally carry trace
// identity: a new root draws a 128-bit trace ID (or adopts a propagated
// one via StartRemote), every span gets a 64-bit span ID, and End emits a
// SpanRecord into the trace's accumulator; when the root ends, the keep
// policy decides whether the whole trace reaches the ring-buffer collector.
//
// A nil *Span is a valid no-op (the disabled path), so call sites can
// unconditionally defer End and set attributes.
type Span struct {
	name   string
	start  time.Time
	parent *Span

	// Trace identity; tr is nil when tracing was off at Start, making every
	// trace-side method a cheap no-op.
	tr       *trace
	spanID   SpanID
	parentID SpanID

	mu      sync.Mutex
	childNS map[string]int64
	attrs   []Attr
	events  []Event
	errored bool
}

// spanKey carries the active span in a context.
type spanKey struct{}

// Start begins a span named name. When metrics are disabled it returns the
// context unchanged and a nil span whose End is a no-op. The returned
// context carries the span, so nested Start calls build a hierarchy.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	s := &Span{name: name, start: time.Now(), parent: parent}
	if tracing.Load() {
		if parent != nil && parent.tr != nil {
			s.tr = parent.tr
			s.parentID = parent.spanID
		} else {
			s.tr = &trace{id: newTraceID(), sampled: headSample()}
			s.tr.root = s
		}
		s.spanID = newSpanID()
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// StartRoot begins a parentless span — for call sites without a context
// (DLV checkout/commit, DQL statement execution).
func StartRoot(name string) *Span {
	_, s := Start(context.Background(), name)
	return s
}

// StartRemote begins a span that continues a trace started in another
// process: tid/parentID come off the wire (a traceparent header) and
// sampled is the propagated head decision. The span is a local root — its
// End applies the keep policy for the records this process accumulated —
// but its records name the remote parent, so the collector's merged view
// nests it under the caller's span. Falls back to Start when tracing is
// off or the IDs are zero.
func StartRemote(ctx context.Context, name string, tid TraceID, parentID SpanID, sampled bool) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	if !tracing.Load() || tid.IsZero() || parentID.IsZero() {
		return Start(ctx, name)
	}
	s := &Span{name: name, start: time.Now()}
	s.tr = &trace{id: tid, sampled: sampled}
	s.tr.root = s
	s.spanID = newSpanID()
	s.parentID = parentID
	return context.WithValue(ctx, spanKey{}, s), s
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// End finishes the span: it observes the duration in the span's histogram,
// bills the duration to the parent's rollup, flushes this span's own child
// rollups to counters, and — when the span belongs to a trace — emits its
// SpanRecord (publishing the whole trace if this span is the trace root).
// Safe on a nil receiver. Returns the measured duration (0 when nil).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	GetHistogram("span." + s.name + ".seconds").Observe(d.Seconds())
	if s.parent != nil {
		s.parent.addChild(s.name, d)
	}
	s.mu.Lock()
	children := s.childNS
	s.childNS = nil
	attrs := s.attrs
	events := s.events
	errored := s.errored
	s.attrs, s.events = nil, nil
	s.mu.Unlock()
	// Deterministic flush order keeps registry lock contention predictable
	// and tests stable.
	names := make([]string, 0, len(children))
	for name := range children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		GetCounter("span." + s.name + ".child_ns." + name).Add(children[name])
	}
	if s.tr != nil {
		rec := SpanRecord{
			TraceID:       s.tr.id.String(),
			SpanID:        s.spanID.String(),
			Name:          s.name,
			Service:       Service(),
			StartUnixNano: s.start.UnixNano(),
			DurationNS:    d.Nanoseconds(),
			Attrs:         attrs,
			Events:        events,
			Error:         errored,
		}
		if !s.parentID.IsZero() {
			rec.ParentID = s.parentID.String()
		}
		s.tr.add(rec)
		if s.tr.root == s {
			s.tr.finish(d)
		}
	}
	return d
}

// addChild accumulates a finished child's duration under its name. Children
// may end concurrently (parallel retrieval tasks under one checkout span).
func (s *Span) addChild(name string, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.childNS == nil {
		s.childNS = map[string]int64{}
	}
	s.childNS[name] += d.Nanoseconds()
}

// Name returns the span's name ("" for the nil no-op span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// TraceID returns the span's trace ID (zero when the span is nil or has no
// trace).
func (s *Span) TraceID() TraceID {
	if s == nil || s.tr == nil {
		return TraceID{}
	}
	return s.tr.id
}

// SpanID returns the span's ID (zero when the span is nil or has no trace).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.spanID
}

// SetAttr attaches a string attribute to the span's trace record. No-op on
// nil spans or spans without a trace.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.tr == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetAttrInt attaches an integer attribute to the span's trace record.
func (s *Span) SetAttrInt(key string, value int64) {
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// Event records a timestamped point event on the span (a retry, a panic).
// No-op on nil spans or spans without a trace.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil || s.tr == nil {
		return
	}
	ev := Event{TimeUnixNano: time.Now().UnixNano(), Name: name, Attrs: attrs}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// SetError marks the span failed; an errored span forces its whole trace to
// be kept regardless of the sampling rate. No-op on nil spans or spans
// without a trace.
func (s *Span) SetError() {
	if s == nil || s.tr == nil {
		return
	}
	s.mu.Lock()
	s.errored = true
	s.mu.Unlock()
}
