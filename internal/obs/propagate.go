package obs

import (
	"fmt"
	"net/http"
	"strings"
)

// Trace context crosses the client↔server boundary as a W3C-style
// traceparent header:
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent span-id>-<2 hex flags>
//
// Version is fixed at 00; the only defined flag is 0x01 (sampled). The hub
// client injects it on every request made under a span; WrapHandler
// extracts it so the server's spans join the caller's trace.

// TraceparentHeader is the propagation header name.
const TraceparentHeader = "traceparent"

// traceFlagSampled marks the head-sampling decision on the wire.
const traceFlagSampled = 0x01

// FormatTraceparent renders the header value for an outgoing request.
func FormatTraceparent(tid TraceID, sid SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + tid.String() + "-" + sid.String() + "-" + flags
}

// ParseTraceparent parses a traceparent header value. Unknown versions are
// accepted if the 00-shaped prefix fields parse (per the W3C forward-compat
// rule); malformed values return an error and the caller starts a new trace.
func ParseTraceparent(v string) (tid TraceID, sid SpanID, sampled bool, err error) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) < 4 {
		return tid, sid, false, fmt.Errorf("obs: traceparent needs 4 fields, got %q", v)
	}
	if len(parts[0]) != 2 || parts[0] == "ff" {
		return tid, sid, false, fmt.Errorf("obs: bad traceparent version %q", parts[0])
	}
	if tid, err = ParseTraceID(parts[1]); err != nil {
		return TraceID{}, SpanID{}, false, err
	}
	if sid, err = ParseSpanID(parts[2]); err != nil {
		return TraceID{}, SpanID{}, false, err
	}
	if len(parts[3]) != 2 {
		return TraceID{}, SpanID{}, false, fmt.Errorf("obs: bad traceparent flags %q", parts[3])
	}
	var flags byte
	if _, err := fmt.Sscanf(parts[3], "%02x", &flags); err != nil {
		return TraceID{}, SpanID{}, false, fmt.Errorf("obs: bad traceparent flags %q", parts[3])
	}
	return tid, sid, flags&traceFlagSampled != 0, nil
}

// Inject stamps the span's trace context into outgoing request headers.
// No-op for nil spans or spans without a trace (tracing disabled).
func (s *Span) Inject(h http.Header) {
	if s == nil || s.tr == nil {
		return
	}
	h.Set(TraceparentHeader, FormatTraceparent(s.tr.id, s.spanID, s.tr.sampled))
}
