package obs

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// tracingTest flips the gates on with a fresh collector and restores the
// defaults afterwards, so trace tests do not bleed into each other.
func tracingTest(t *testing.T) {
	t.Helper()
	Enable()
	EnableTracing()
	SetTraceBufferSize(16)
	SetTraceSampler(1)
	t.Cleanup(func() {
		SetTraceSampler(1)
		SetSlowTraceThreshold(time.Second)
		SetTraceBufferSize(DefaultTraceBufferSize)
		DisableTracing()
		Disable()
	})
}

func TestTraceparentRoundTrip(t *testing.T) {
	tid, err := ParseTraceID("0af7651916cd43dd8448eb211c80319c")
	if err != nil {
		t.Fatal(err)
	}
	sid, err := ParseSpanID("b7ad6b7169203331")
	if err != nil {
		t.Fatal(err)
	}
	for _, sampled := range []bool{true, false} {
		v := FormatTraceparent(tid, sid, sampled)
		wantFlags := "00"
		if sampled {
			wantFlags = "01"
		}
		want := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-" + wantFlags
		if v != want {
			t.Fatalf("FormatTraceparent = %q, want %q", v, want)
		}
		gtid, gsid, gsampled, err := ParseTraceparent(v)
		if err != nil {
			t.Fatalf("ParseTraceparent(%q): %v", v, err)
		}
		if gtid != tid || gsid != sid || gsampled != sampled {
			t.Fatalf("round trip = %v %v %v, want %v %v %v", gtid, gsid, gsampled, tid, sid, sampled)
		}
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-abc",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",      // missing flags
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",   // forbidden version
		"0-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",    // short version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",   // all-zero trace
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",   // all-zero span
		"00-0af7651916cd43dd8448eb211c80319-b7ad6b7169203331-01",    // short trace id
		"00-zzf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",   // non-hex trace id
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0101", // long flags
	}
	for _, v := range bad {
		if _, _, _, err := ParseTraceparent(v); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted, want error", v)
		}
	}
	// Unknown (but well-formed) versions and extra fields are accepted per
	// the W3C forward-compatibility rule.
	ok := "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-futurefield"
	if _, _, sampled, err := ParseTraceparent(ok); err != nil || !sampled {
		t.Fatalf("forward-compat value rejected: %v (sampled=%v)", err, sampled)
	}
}

func TestSpanRecordsParentChild(t *testing.T) {
	tracingTest(t)
	ctx, parent := Start(context.Background(), "test.trace.parent")
	_, child := Start(ctx, "test.trace.child")
	tid, psid, csid := parent.TraceID(), parent.SpanID(), child.SpanID()
	if tid.IsZero() || psid.IsZero() || csid.IsZero() {
		t.Fatal("tracing on but IDs are zero")
	}
	if child.TraceID() != tid {
		t.Fatalf("child trace = %v, want %v", child.TraceID(), tid)
	}
	child.SetAttr("k", "v")
	child.End()
	parent.End()

	records, ok := TraceRecords(tid)
	if !ok || len(records) != 2 {
		t.Fatalf("TraceRecords = %d records, ok=%v; want 2", len(records), ok)
	}
	byName := map[string]SpanRecord{}
	for _, rec := range records {
		byName[rec.Name] = rec
	}
	crec := byName["test.trace.child"]
	if crec.ParentID != psid.String() {
		t.Fatalf("child parent = %q, want %q", crec.ParentID, psid.String())
	}
	if len(crec.Attrs) != 1 || crec.Attrs[0] != (Attr{Key: "k", Value: "v"}) {
		t.Fatalf("child attrs = %+v", crec.Attrs)
	}
	if prec := byName["test.trace.parent"]; prec.ParentID != "" {
		t.Fatalf("root parent = %q, want empty", prec.ParentID)
	}

	det, ok := Detail(tid.String())
	if !ok || det.Spans != 2 || det.Root != "test.trace.parent" {
		t.Fatalf("Detail = %+v, ok=%v", det.TraceSummary, ok)
	}
	if det.SpansDetail[0].OffsetNS != 0 {
		t.Fatalf("first span offset = %d, want 0", det.SpansDetail[0].OffsetNS)
	}
}

func TestSamplerZeroDropsCleanKeepsErrorAndSlow(t *testing.T) {
	tracingTest(t)
	SetTraceSampler(0)

	// A clean, fast trace is dropped.
	clean := StartRoot("test.trace.clean")
	cleanID := clean.TraceID()
	clean.End()
	if _, ok := TraceRecords(cleanID); ok {
		t.Fatal("rate-0 sampler kept a clean trace")
	}

	// An errored trace is always kept.
	failed := StartRoot("test.trace.failed")
	failedID := failed.TraceID()
	failed.SetError()
	failed.End()
	records, ok := TraceRecords(failedID)
	if !ok || len(records) != 1 || !records[0].Error {
		t.Fatalf("errored trace not kept: ok=%v records=%+v", ok, records)
	}

	// A slow trace is always kept.
	SetSlowTraceThreshold(time.Nanosecond)
	slow := StartRoot("test.trace.slow")
	slowID := slow.TraceID()
	time.Sleep(time.Millisecond)
	slow.End()
	if _, ok := TraceRecords(slowID); !ok {
		t.Fatal("slow trace not kept")
	}
}

func TestTraceBufferWrapKeepsNewest(t *testing.T) {
	tracingTest(t)
	SetTraceBufferSize(4)
	var ids []string
	for i := 0; i < 10; i++ {
		s := StartRoot("test.trace.wrap")
		ids = append(ids, s.TraceID().String())
		s.End()
	}
	list := Traces()
	if len(list) != 4 {
		t.Fatalf("Traces after wrap = %d, want 4", len(list))
	}
	// The newest four survive; the oldest six are gone.
	for _, id := range ids[6:] {
		if _, ok := TraceRecordsByString(id); !ok {
			t.Fatalf("newest trace %s evicted", id)
		}
	}
	for _, id := range ids[:6] {
		if _, ok := TraceRecordsByString(id); ok {
			t.Fatalf("oldest trace %s still present after wrap", id)
		}
	}
}

func TestIngestSpansMergesAndDedupes(t *testing.T) {
	tracingTest(t)
	rec := SpanRecord{
		TraceID: "0af7651916cd43dd8448eb211c80319c", SpanID: "b7ad6b7169203331",
		Name: "remote.op", Service: "other-process", StartUnixNano: 100, DurationNS: 50,
	}
	IngestSpans([]SpanRecord{rec, rec, {Name: "no.ids"}}) // dup + id-less record dropped
	records, ok := TraceRecordsByString(rec.TraceID)
	if !ok || len(records) != 1 {
		t.Fatalf("ingested records = %d (ok=%v), want 1", len(records), ok)
	}
	// A second process's record under the same trace ID merges.
	IngestSpans([]SpanRecord{{
		TraceID: rec.TraceID, SpanID: "c8be7c827a314442", ParentID: rec.SpanID,
		Name: "remote.child", Service: "third-process", StartUnixNano: 110, DurationNS: 20,
	}})
	det, ok := Detail(rec.TraceID)
	if !ok || det.Spans != 2 {
		t.Fatalf("merged detail = %+v, ok=%v", det.TraceSummary, ok)
	}
	if want := []string{"other-process", "third-process"}; len(det.Services) != 2 ||
		det.Services[0] != want[0] || det.Services[1] != want[1] {
		t.Fatalf("services = %v, want %v", det.Services, want)
	}
}

func TestIngestSpansNoopWhileTracingDisabled(t *testing.T) {
	Disable()
	DisableTracing()
	IngestSpans([]SpanRecord{{
		TraceID: "1af7651916cd43dd8448eb211c80319c", SpanID: "a7ad6b7169203331", Name: "x",
	}})
	if _, ok := TraceRecordsByString("1af7651916cd43dd8448eb211c80319c"); ok {
		t.Fatal("IngestSpans stored records while tracing disabled")
	}
}

func TestWrapHandlerJoinsRemoteTrace(t *testing.T) {
	tracingTest(t)
	SetTraceSampler(0) // only the propagated flag can keep this trace
	h := WrapHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), MiddlewareOptions{Prefix: "test.tracejoin"})
	srv := httptest.NewServer(h)
	defer srv.Close()

	tid, _ := ParseTraceID("4bf92f3577b34da6a3ce929d0e0e4736")
	sid, _ := ParseSpanID("00f067aa0ba902b7")
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/op", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TraceparentHeader, FormatTraceparent(tid, sid, true))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}

	records, ok := TraceRecords(tid)
	if !ok || len(records) != 1 {
		t.Fatalf("remote-joined trace records = %d (ok=%v), want 1", len(records), ok)
	}
	rec := records[0]
	if rec.Name != "test.tracejoin.request" {
		t.Fatalf("span name = %q", rec.Name)
	}
	if rec.ParentID != sid.String() {
		t.Fatalf("server span parent = %q, want the remote caller %q", rec.ParentID, sid.String())
	}
}

func TestWrapHandlerPanicEventInTrace(t *testing.T) {
	tracingTest(t)
	SetTraceSampler(0) // the panic marks the trace errored, which must keep it
	h := WrapHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("trace boom")
	}), MiddlewareOptions{Prefix: "test.tracepanic"})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/kaboom")
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}

	var panicked *TraceSummary
	for _, tr := range Traces() {
		if tr.Root == "test.tracepanic.request" {
			panicked = &tr
			break
		}
	}
	if panicked == nil {
		t.Fatal("panicked request trace not collected")
	}
	if !panicked.Error {
		t.Fatal("panicked trace not marked errored")
	}
	det, ok := Detail(panicked.ID)
	if !ok {
		t.Fatal("panicked trace has no detail")
	}
	var ev *Event
	for _, sv := range det.SpansDetail {
		for _, e := range sv.Events {
			if e.Name == "panic" {
				ev = &e
				break
			}
		}
	}
	if ev == nil {
		t.Fatal("no panic event on the crashed span")
	}
	attrs := map[string]string{}
	for _, a := range ev.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["panic.value"] != "trace boom" {
		t.Fatalf("panic.value = %q", attrs["panic.value"])
	}
	if !strings.Contains(attrs["panic.stack"], "http_test") &&
		!strings.Contains(attrs["panic.stack"], "goroutine") {
		t.Fatalf("panic.stack does not look like a stack: %q", attrs["panic.stack"])
	}
}

func TestTracesHandlerServesListDetailAndIngest(t *testing.T) {
	tracingTest(t)
	s := StartRoot("test.trace.http")
	tid := s.TraceID().String()
	s.End()
	srv := httptest.NewServer(TracesHandler())
	defer srv.Close()

	// List.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("list Content-Type = %q", resp.Header.Get("Content-Type"))
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	// Detail by ID; unknown IDs 404.
	if resp, err = http.Get(srv.URL + "?id=" + tid); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("detail status = %v, %v", resp.StatusCode, err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp, err = http.Get(srv.URL + "?id=ffffffffffffffffffffffffffffffff"); err != nil ||
		resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status = %v, %v", resp.StatusCode, err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	// Ingest.
	body := `[{"trace_id":"2af7651916cd43dd8448eb211c80319c","span_id":"d7ad6b7169203331","name":"posted.op"}]`
	resp, err = http.Post(srv.URL, "application/json", strings.NewReader(body))
	if err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("ingest status = %v, %v", resp.StatusCode, err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := TraceRecordsByString("2af7651916cd43dd8448eb211c80319c"); !ok {
		t.Fatal("POSTed records not ingested")
	}
	// Garbage bodies are rejected.
	resp, err = http.Post(srv.URL, "application/json", strings.NewReader("not json"))
	if err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad ingest status = %v, %v", resp.StatusCode, err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceMethodsNoopWithoutTracing(t *testing.T) {
	Enable()
	defer Disable()
	DisableTracing()
	_, s := Start(context.Background(), "test.trace.off")
	if s == nil {
		t.Fatal("metrics on: span must be live")
	}
	if !s.TraceID().IsZero() || !s.SpanID().IsZero() {
		t.Fatal("tracing off but the span has trace identity")
	}
	h := http.Header{}
	s.Inject(h)
	if h.Get(TraceparentHeader) != "" {
		t.Fatal("tracing off but Inject set a header")
	}
	s.SetAttr("k", "v")
	s.Event("e")
	s.SetError()
	s.End()
}
