package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// The trace collector is a bounded ring buffer of completed traces (the
// flight recorder): slots are atomic pointers, so /debug/traces readers
// never take a lock and never block a publisher; publication find-or-insert
// is serialized by one small mutex well off any request hot path (it runs
// once per completed trace, not per span). When the ring wraps, the oldest
// trace is overwritten — the newest N traces are always retrievable.

// DefaultTraceBufferSize is the ring capacity a process starts with.
const DefaultTraceBufferSize = 256

// TraceData is one collected trace: the merged span records of every
// process that contributed to the trace ID. Merging dedupes on span ID, so
// a record that arrives twice (an in-process client exporting to its own
// collector, a retried export) is stored once.
type TraceData struct {
	id string

	mu      sync.Mutex
	records []SpanRecord
	seen    map[string]bool // span IDs already merged
}

// traceRing is the bounded collector. cursor claims slots monotonically;
// slot i holds the (cursor≡i mod len)-th most recent publication.
type traceRing struct {
	slots  []atomic.Pointer[TraceData]
	cursor atomic.Uint64
	// pubMu serializes find-or-insert so concurrent publications of one
	// trace ID merge instead of claiming duplicate slots.
	pubMu sync.Mutex
}

func newTraceRing(n int) *traceRing {
	if n < 1 {
		n = 1
	}
	return &traceRing{slots: make([]atomic.Pointer[TraceData], n)}
}

// traceBuffer wraps the swappable ring so SetTraceBufferSize can replace
// the whole collector atomically.
type traceBuffer struct {
	ring atomic.Pointer[traceRing]
}

// defaultTraceBuffer is the process-wide collector behind Traces,
// TraceRecords, IngestSpans, and TracesHandler.
var defaultTraceBuffer traceBuffer

func init() {
	defaultTraceBuffer.ring.Store(newTraceRing(DefaultTraceBufferSize))
}

// SetTraceBufferSize resizes the trace collector to hold the newest n
// traces. Resizing installs a fresh, empty ring; previously collected
// traces are discarded. n < 1 resets to DefaultTraceBufferSize.
func SetTraceBufferSize(n int) {
	if n < 1 {
		n = DefaultTraceBufferSize
	}
	defaultTraceBuffer.ring.Store(newTraceRing(n))
}

// find returns the collected trace with the given ID, scanning the ring
// lock-free.
func (b *traceBuffer) find(id string) *TraceData {
	r := b.ring.Load()
	for i := range r.slots {
		if td := r.slots[i].Load(); td != nil && td.id == id {
			return td
		}
	}
	return nil
}

// publish merges records into the trace with the given ID, creating (and
// possibly evicting the oldest trace for) a ring slot when the ID is new.
func (b *traceBuffer) publish(id string, records []SpanRecord) {
	if len(records) == 0 {
		return
	}
	r := b.ring.Load()
	r.pubMu.Lock()
	var td *TraceData
	for i := range r.slots {
		if cur := r.slots[i].Load(); cur != nil && cur.id == id {
			td = cur
			break
		}
	}
	if td == nil {
		td = &TraceData{id: id}
		slot := (r.cursor.Add(1) - 1) % uint64(len(r.slots))
		r.slots[slot].Store(td)
	}
	r.pubMu.Unlock()
	td.mu.Lock()
	if td.seen == nil {
		td.seen = make(map[string]bool, len(records))
	}
	for _, rec := range records {
		// maxCollectedSpans bounds the merged trace the same way
		// maxTraceSpans bounds a single process's accumulator.
		if td.seen[rec.SpanID] || len(td.records) >= maxCollectedSpans {
			continue
		}
		td.seen[rec.SpanID] = true
		td.records = append(td.records, rec)
	}
	td.mu.Unlock()
}

// maxCollectedSpans caps one merged trace in the collector: several
// processes can each contribute up to maxTraceSpans records.
const maxCollectedSpans = 4 * maxTraceSpans

// IngestSpans merges externally produced span records (another process's
// exported trace) into the collector, grouped by trace ID. Records without
// a trace ID are dropped. No-op while tracing is disabled.
func IngestSpans(records []SpanRecord) {
	if !TracingEnabled() {
		return
	}
	byTrace := map[string][]SpanRecord{}
	var order []string
	for _, rec := range records {
		if rec.TraceID == "" || rec.SpanID == "" {
			continue
		}
		if _, ok := byTrace[rec.TraceID]; !ok {
			order = append(order, rec.TraceID)
		}
		byTrace[rec.TraceID] = append(byTrace[rec.TraceID], rec)
	}
	for _, id := range order {
		recs := byTrace[id]
		defaultTraceBuffer.publish(id, recs)
		mTracesIngested.Add(int64(len(recs)))
	}
}

// TraceSummary is the list-view form of one collected trace.
type TraceSummary struct {
	ID            string   `json:"id"`
	Root          string   `json:"root"`
	StartUnixNano int64    `json:"start_unix_nano"`
	DurationNS    int64    `json:"duration_ns"`
	Spans         int      `json:"spans"`
	Services      []string `json:"services"`
	Error         bool     `json:"error"`
}

// snapshotRecords copies the trace's records under its lock.
func (td *TraceData) snapshotRecords() []SpanRecord {
	td.mu.Lock()
	defer td.mu.Unlock()
	out := make([]SpanRecord, len(td.records))
	copy(out, td.records)
	return out
}

// summarize folds a trace's records into its list-view summary: the root is
// the span with no (or an unresolved, i.e. remote) parent that starts
// earliest; duration spans first start to last end.
func summarize(id string, records []SpanRecord) TraceSummary {
	s := TraceSummary{ID: id, Spans: len(records)}
	local := map[string]bool{}
	for _, rec := range records {
		local[rec.SpanID] = true
	}
	var minStart, maxEnd int64
	seenSvc := map[string]bool{}
	for _, rec := range records {
		if minStart == 0 || rec.StartUnixNano < minStart {
			minStart = rec.StartUnixNano
		}
		if end := rec.StartUnixNano + rec.DurationNS; end > maxEnd {
			maxEnd = end
		}
		if rec.Error {
			s.Error = true
		}
		if rec.Service != "" && !seenSvc[rec.Service] {
			seenSvc[rec.Service] = true
			s.Services = append(s.Services, rec.Service)
		}
		isRoot := rec.ParentID == "" || !local[rec.ParentID]
		if isRoot && (s.Root == "" || rec.StartUnixNano == minStart) {
			s.Root = rec.Name
		}
	}
	sort.Strings(s.Services)
	s.StartUnixNano = minStart
	s.DurationNS = maxEnd - minStart
	return s
}

// Traces lists the collected traces, newest first.
func Traces() []TraceSummary {
	r := defaultTraceBuffer.ring.Load()
	var out []TraceSummary
	for i := range r.slots {
		td := r.slots[i].Load()
		if td == nil {
			continue
		}
		out = append(out, summarize(td.id, td.snapshotRecords()))
	}
	sort.Slice(out, func(a, b int) bool { return out[a].StartUnixNano > out[b].StartUnixNano })
	return out
}

// TraceRecords returns the collected span records of one trace ID.
func TraceRecords(id TraceID) ([]SpanRecord, bool) {
	return TraceRecordsByString(id.String())
}

// TraceRecordsByString is TraceRecords keyed by the hex form.
func TraceRecordsByString(id string) ([]SpanRecord, bool) {
	td := defaultTraceBuffer.find(id)
	if td == nil {
		return nil, false
	}
	return td.snapshotRecords(), true
}

// SpanView is one span in the waterfall detail payload: the record plus its
// start offset from the trace start, so a client renders bars directly.
type SpanView struct {
	SpanRecord
	OffsetNS int64 `json:"offset_ns"`
}

// TraceDetail is the fetch-by-ID payload of /debug/traces.
type TraceDetail struct {
	TraceSummary
	SpansDetail []SpanView `json:"spans_detail"`
}

// Detail assembles the waterfall view of one collected trace.
func Detail(id string) (TraceDetail, bool) {
	records, ok := TraceRecordsByString(id)
	if !ok {
		return TraceDetail{}, false
	}
	sum := summarize(id, records)
	sort.Slice(records, func(a, b int) bool {
		if records[a].StartUnixNano != records[b].StartUnixNano {
			return records[a].StartUnixNano < records[b].StartUnixNano
		}
		return records[a].SpanID < records[b].SpanID
	})
	det := TraceDetail{TraceSummary: sum, SpansDetail: make([]SpanView, 0, len(records))}
	for _, rec := range records {
		det.SpansDetail = append(det.SpansDetail, SpanView{
			SpanRecord: rec,
			OffsetNS:   rec.StartUnixNano - sum.StartUnixNano,
		})
	}
	return det, true
}

// maxIngestBytes bounds one trace-export POST body.
const maxIngestBytes = 8 << 20

// TracesHandler serves the trace collector:
//
//	GET  /debug/traces           -> {"traces": [TraceSummary...]} newest first
//	GET  /debug/traces?id=HEX    -> TraceDetail (waterfall-ready span views)
//	POST /debug/traces           -> ingest a JSON array of SpanRecord
//	                                (cross-process trace export)
//
// The POST side is how a dlv client's spans reach the server's flight
// recorder: after a traced publish/search/pull, the client exports its
// half of the trace and the two halves merge under one trace ID.
func TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxIngestBytes))
			if err != nil {
				http.Error(w, "trace ingest: "+err.Error(), http.StatusBadRequest)
				return
			}
			var records []SpanRecord
			if err := json.Unmarshal(blob, &records); err != nil {
				http.Error(w, "trace ingest: "+err.Error(), http.StatusBadRequest)
				return
			}
			IngestSpans(records)
			w.WriteHeader(http.StatusNoContent)
		case http.MethodGet:
			w.Header().Set("Content-Type", "application/json")
			if id := r.URL.Query().Get("id"); id != "" {
				det, ok := Detail(id)
				if !ok {
					http.Error(w, "unknown trace id", http.StatusNotFound)
					return
				}
				writeJSON(w, det)
				return
			}
			list := Traces()
			if list == nil {
				list = []TraceSummary{}
			}
			writeJSON(w, struct {
				Traces []TraceSummary `json:"traces"`
			}{list})
		default:
			http.Error(w, "GET or POST required", http.StatusMethodNotAllowed)
		}
	})
}

// writeJSON marshals v indented; a failed response write only gets a debug
// log (the scraper went away).
func writeJSON(w http.ResponseWriter, v any) {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if _, err := w.Write(blob); err != nil {
		Logger().Debug("trace response write failed", "err", err)
	}
}
