package obs

import (
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Distributed tracing rides the span layer: when tracing is enabled, every
// span carries a 128-bit trace ID and a 64-bit span ID, and a completed
// trace's spans are recorded into a bounded ring-buffer collector
// (collector.go) that /debug/traces and `dlv trace` read. The contract from
// PR 4 holds: with obs disabled a span site is one atomic load + a branch;
// with metrics but not tracing enabled, spans cost what they cost before;
// tracing adds ID generation and one record append per ended span.

// tracing gates trace-ID assignment and record collection. Tracing is only
// active when the metrics gate is also on (spans do not exist otherwise).
var tracing atomic.Bool

// EnableTracing turns trace collection on process-wide. Metrics must also be
// enabled (Enable) for spans — and therefore traces — to exist.
func EnableTracing() { tracing.Store(true) }

// DisableTracing turns trace collection off. Already-collected traces remain
// readable through Traces / TraceByID.
func DisableTracing() { tracing.Store(false) }

// TracingEnabled reports whether spans are being assigned trace IDs and
// recorded (both the metrics gate and the tracing gate are on).
func TracingEnabled() bool { return enabled.Load() && tracing.Load() }

// service names this process in exported span records ("dlv",
// "modelhub-server"); cross-process waterfalls group spans by it.
var service atomic.Pointer[string]

// SetService names this process in span records. Binaries call it once at
// startup; the default is empty.
func SetService(name string) { service.Store(&name) }

// Service returns the process's span-record service name.
func Service() string {
	if p := service.Load(); p != nil {
		return *p
	}
	return ""
}

// TraceID is a 128-bit trace identifier (W3C trace-context trace-id).
type TraceID [16]byte

// SpanID is a 64-bit span identifier (W3C trace-context parent-id).
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the trace ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the span ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID parses 32 hex digits into a TraceID. The all-zero ID is
// rejected (it is the W3C invalid value).
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, fmt.Errorf("obs: trace id must be 32 hex digits, got %q", s)
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("obs: bad trace id %q: %w", s, err)
	}
	if t.IsZero() {
		return TraceID{}, fmt.Errorf("obs: all-zero trace id is invalid")
	}
	return t, nil
}

// ParseSpanID parses 16 hex digits into a SpanID. The all-zero ID is
// rejected.
func ParseSpanID(s string) (SpanID, error) {
	var id SpanID
	if len(s) != 16 {
		return id, fmt.Errorf("obs: span id must be 16 hex digits, got %q", s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, fmt.Errorf("obs: bad span id %q: %w", s, err)
	}
	if id.IsZero() {
		return SpanID{}, fmt.Errorf("obs: all-zero span id is invalid")
	}
	return id, nil
}

// idState seeds the lock-free splitmix64 ID generator. Seeded per process so
// concurrent client and server processes never collide.
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano())*0x9e3779b97f4a7c15 ^ uint64(os.Getpid())<<32)
}

// rand64 advances the shared splitmix64 state by one step. Not
// cryptographic; IDs only need process-level uniqueness.
func rand64() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// newTraceID generates a non-zero random trace ID.
func newTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		a, b := rand64(), rand64()
		for i := 0; i < 8; i++ {
			t[i] = byte(a >> (8 * i))
			t[8+i] = byte(b >> (8 * i))
		}
	}
	return t
}

// newSpanID generates a non-zero random span ID.
func newSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		a := rand64()
		for i := 0; i < 8; i++ {
			s[i] = byte(a >> (8 * i))
		}
	}
	return s
}

// Attr is one string key-value span attribute. Values are rendered to
// strings at set time so records marshal without reflection surprises.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Event is one timestamped point event on a span (a retry, a panic).
type Event struct {
	TimeUnixNano int64  `json:"time_unix_nano"`
	Name         string `json:"name"`
	Attrs        []Attr `json:"attrs,omitempty"`
}

// SpanRecord is the completed form of one span: the unit /debug/traces
// serves and the trace-export wire format. ParentID is empty for roots (or
// names a remote parent), so a waterfall renders directly from the parent /
// start / duration triple.
type SpanRecord struct {
	TraceID       string  `json:"trace_id"`
	SpanID        string  `json:"span_id"`
	ParentID      string  `json:"parent_id,omitempty"`
	Name          string  `json:"name"`
	Service       string  `json:"service,omitempty"`
	StartUnixNano int64   `json:"start_unix_nano"`
	DurationNS    int64   `json:"duration_ns"`
	Attrs         []Attr  `json:"attrs,omitempty"`
	Events        []Event `json:"events,omitempty"`
	Error         bool    `json:"error,omitempty"`
}

// Sampling policy: samplerBits holds the head-sampling rate as float64 bits
// (default 1.0). Error and slow traces are always kept regardless of the
// head decision (tail sampling), so failures stay findable at low rates.
var samplerBits atomic.Uint64

// slowTraceNS is the "always keep" duration threshold (default 1s).
var slowTraceNS atomic.Int64

func init() {
	samplerBits.Store(math.Float64bits(1.0))
	slowTraceNS.Store(int64(time.Second))
}

// SetTraceSampler sets the head-sampling rate in [0, 1]: the fraction of
// new root traces recorded into the collector. Error traces and traces
// slower than the slow threshold are always kept. Out-of-range values clamp.
func SetTraceSampler(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	samplerBits.Store(math.Float64bits(rate))
}

// TraceSampler returns the current head-sampling rate.
func TraceSampler() float64 { return math.Float64frombits(samplerBits.Load()) }

// SetSlowTraceThreshold sets the duration above which a trace is always
// kept, regardless of the sampling rate. Non-positive disables the slow
// keep.
func SetSlowTraceThreshold(d time.Duration) { slowTraceNS.Store(int64(d)) }

// headSample draws the head-sampling decision for a new root trace.
func headSample() bool {
	rate := TraceSampler()
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	// 53 random bits into [0, 1).
	return float64(rand64()>>11)/(1<<53) < rate
}

// maxTraceSpans bounds one trace's in-memory record accumulation; spans
// beyond it are counted, not stored, so a runaway loop cannot OOM the
// process through its trace.
const maxTraceSpans = 512

// trace accumulates the span records of one local trace. Every span under
// one root shares the root's trace; when the root ends, the keep policy
// (head sample ∨ error ∨ slow) decides whether the records reach the
// collector.
type trace struct {
	id      TraceID
	root    *Span
	sampled bool // head decision (local draw, or the propagated flag)

	mu      sync.Mutex
	records []SpanRecord
	errored bool
	dropped int
}

// add appends one completed span's record (bounded by maxTraceSpans).
func (tr *trace) add(rec SpanRecord) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if rec.Error {
		tr.errored = true
	}
	if len(tr.records) >= maxTraceSpans {
		tr.dropped++
		return
	}
	tr.records = append(tr.records, rec)
}

// finish applies the keep policy when the trace's root span ends and, when
// kept, publishes the records to the collector.
func (tr *trace) finish(rootDuration time.Duration) {
	tr.mu.Lock()
	keep := tr.sampled || tr.errored
	if !keep {
		if slow := slowTraceNS.Load(); slow > 0 && rootDuration.Nanoseconds() >= slow {
			keep = true
		}
	}
	records := tr.records
	dropped := tr.dropped
	tr.records = nil
	tr.mu.Unlock()
	if !keep {
		mTracesDropped.Inc()
		return
	}
	if dropped > 0 {
		mTraceSpansDropped.Add(int64(dropped))
	}
	mTracesKept.Inc()
	defaultTraceBuffer.publish(tr.id.String(), records)
}

// Trace-layer meta metrics.
var (
	mTracesKept        = GetCounter("obs.traces.kept")
	mTracesDropped     = GetCounter("obs.traces.dropped")
	mTraceSpansDropped = GetCounter("obs.traces.spans_dropped")
	mTracesIngested    = GetCounter("obs.traces.ingested_spans")
)
