package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero-cost rule: when
// metrics are disabled, Add is one atomic load plus a branch.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op when metrics are disabled or the
// receiver is nil.
func (c *Counter) Add(n int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (readable even while disabled).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer level that can move both ways (bytes cached, requests
// in flight).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's value.
func (g *Gauge) Set(n int64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.v.Add(n)
}

// Value returns the gauge's current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is a float-valued level (loss, examples/sec), stored as
// float64 bits in a uint64 for lock-free updates.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores the gauge's value.
func (g *FloatGauge) Set(v float64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the gauge's current value.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the fixed bucket count of every histogram: exponential
// boundaries from histStart doubling per bucket, plus one overflow bucket.
// 1µs × 2^39 ≈ 6.1 days, so any realistic duration or size lands in-range.
const histBuckets = 40

// histStart is the upper bound of the first bucket.
const histStart = 1e-6

// histBounds[i] is the inclusive upper bound of bucket i.
var histBounds = func() [histBuckets]float64 {
	var b [histBuckets]float64
	v := histStart
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// Histogram is a bounded-bucket histogram with lock-free observation.
// Buckets are fixed at construction (exponential, base 2), so Observe never
// allocates and concurrent writers only touch atomics.
type Histogram struct {
	counts  [histBuckets + 1]atomic.Int64 // last bucket = overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	maxBits atomic.Uint64
}

// Observe records one value (typically seconds or bytes). Values below the
// first boundary land in bucket 0. No-op when metrics are disabled.
func (h *Histogram) Observe(v float64) {
	if h == nil || !enabled.Load() {
		return
	}
	h.counts[bucketIdx(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) && old != 0 {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Time starts a timer and returns a function that observes the elapsed
// seconds when called. When metrics are disabled it returns a no-op without
// reading the clock.
func (h *Histogram) Time() func() {
	if h == nil || !enabled.Load() {
		return func() {}
	}
	t0 := time.Now()
	return func() { h.Observe(time.Since(t0).Seconds()) }
}

// bucketIdx locates the bucket of v by binary search over the fixed bounds.
func bucketIdx(v float64) int {
	lo, hi := 0, histBuckets
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= histBounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo // histBuckets = overflow
}

// HistogramSnapshot summarizes a histogram at one instant. Quantiles are
// upper-bound estimates taken from the bucket boundaries.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Snapshot reads the histogram's current summary. Concurrent writers may
// land between the count and bucket reads; the summary is approximate by
// design, never torn at the word level.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var counts [histBuckets + 1]int64
	var total int64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{
		Count: total,
		Sum:   math.Float64frombits(h.sumBits.Load()),
		Max:   math.Float64frombits(h.maxBits.Load()),
	}
	if total == 0 {
		return s
	}
	s.Mean = s.Sum / float64(total)
	s.P50 = quantile(&counts, total, 0.50)
	s.P90 = quantile(&counts, total, 0.90)
	s.P99 = quantile(&counts, total, 0.99)
	return s
}

// quantile returns the upper bound of the bucket containing the q-quantile
// observation.
func quantile(counts *[histBuckets + 1]int64, total int64, q float64) float64 {
	rank := int64(math.Ceil(q * float64(total)))
	var seen int64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			if i >= histBuckets {
				return math.Inf(1) // overflow bucket has no upper bound
			}
			return histBounds[i]
		}
	}
	return math.Inf(1)
}

// Registry holds named metrics. Lookups are read-locked; registration
// happens once per name and is get-or-create, so callers can resolve
// metrics in package var initializers and share them freely.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	fgauges    map[string]*FloatGauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry. Most code uses the package-level
// default via GetCounter and friends.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		fgauges:    map[string]*FloatGauge{},
		histograms: map[string]*Histogram{},
	}
}

// std is the process-wide default registry. It is a package var (not built
// in init) so metrics resolved from other packages' var initializers are
// safe: imported packages finish variable initialization first.
var std = NewRegistry()

// Default returns the process-wide registry backing GetCounter, Snapshot,
// and Handler.
func Default() *Registry { return std }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	r.mu.RLock()
	g := r.fgauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.fgauges[name]; g != nil {
		return g
	}
	g = &FloatGauge{}
	r.fgauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.histograms[name]; h != nil {
		return h
	}
	h = &Histogram{}
	r.histograms[name] = h
	return h
}

// GetCounter resolves a counter in the default registry.
func GetCounter(name string) *Counter { return std.Counter(name) }

// GetGauge resolves a gauge in the default registry.
func GetGauge(name string) *Gauge { return std.Gauge(name) }

// GetFloatGauge resolves a float gauge in the default registry.
func GetFloatGauge(name string) *FloatGauge { return std.FloatGauge(name) }

// GetHistogram resolves a histogram in the default registry.
func GetHistogram(name string) *Histogram { return std.Histogram(name) }

// Snapshot returns every registered metric's current value as a flat,
// JSON-marshalable map (expvar-style): counters and gauges map to numbers,
// histograms to {count, sum, mean, p50, p90, p99, max} objects.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.fgauges)+len(r.histograms))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, g := range r.fgauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		out[name] = h.Snapshot()
	}
	return out
}

// Names lists the registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.fgauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.fgauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns the default registry's metrics.
func Snapshot() map[string]any { return std.Snapshot() }

// SnapshotJSON marshals the default registry's snapshot as indented JSON —
// the payload of the /metrics endpoint and of mhbench -metrics files.
// Infinities (overflow-bucket quantiles) are clamped to MaxFloat64 so the
// output is always valid JSON.
func SnapshotJSON() ([]byte, error) {
	return json.MarshalIndent(sanitize(Snapshot()), "", "  ")
}

// sanitize replaces non-finite floats, which encoding/json rejects.
func sanitize(m map[string]any) map[string]any {
	for k, v := range m {
		if hs, ok := v.(HistogramSnapshot); ok {
			hs.P50 = finite(hs.P50)
			hs.P90 = finite(hs.P90)
			hs.P99 = finite(hs.P99)
			hs.Max = finite(hs.Max)
			hs.Sum = finite(hs.Sum)
			hs.Mean = finite(hs.Mean)
			m[k] = hs
		}
	}
	return m
}

func finite(v float64) float64 {
	if math.IsInf(v, 1) || math.IsNaN(v) {
		return math.MaxFloat64
	}
	if math.IsInf(v, -1) {
		return -math.MaxFloat64
	}
	return v
}

// Handler serves the default registry as a JSON document — the /metrics
// endpoint of modelhub-server.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		refreshRuntimeMetrics()
		blob, err := SnapshotJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write(blob); err != nil {
			// The scraper went away mid-response; log and move on.
			Logger().Debug("metrics response write failed", "err", err)
		}
	})
}
