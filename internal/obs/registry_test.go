package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// Tests in this package toggle the global Enable gate, so none of them may
// run with t.Parallel; each test that enables metrics restores the disabled
// default on exit.

func TestDisabledOpsAreNoops(t *testing.T) {
	Disable()
	c := GetCounter("test.disabled.counter")
	g := GetGauge("test.disabled.gauge")
	f := GetFloatGauge("test.disabled.fgauge")
	h := GetHistogram("test.disabled.hist")
	c.Inc()
	c.Add(10)
	g.Set(5)
	g.Add(3)
	f.Set(1.5)
	h.Observe(0.25)
	h.Time()()
	if c.Value() != 0 || g.Value() != 0 || f.Value() != 0 {
		t.Fatalf("disabled metrics recorded: counter=%d gauge=%d fgauge=%g",
			c.Value(), g.Value(), f.Value())
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("disabled histogram recorded %d observations", s.Count)
	}
}

func TestNilMetricsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var f *FloatGauge
	var h *Histogram
	c.Inc()
	g.Set(1)
	f.Set(1)
	h.Observe(1)
	h.Time()()
	if c.Value() != 0 || g.Value() != 0 || f.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil metrics should read as zero")
	}
}

func TestCounterGaugeEnabled(t *testing.T) {
	Enable()
	defer Disable()
	c := GetCounter("test.enabled.counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := GetGauge("test.enabled.gauge")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	f := GetFloatGauge("test.enabled.fgauge")
	f.Set(2.25)
	if f.Value() != 2.25 {
		t.Fatalf("float gauge = %g, want 2.25", f.Value())
	}
}

func TestGetOrCreateReturnsSameInstance(t *testing.T) {
	if GetCounter("test.identity") != GetCounter("test.identity") {
		t.Fatal("GetCounter returned distinct instances for one name")
	}
	if GetHistogram("test.identity.h") != GetHistogram("test.identity.h") {
		t.Fatal("GetHistogram returned distinct instances for one name")
	}
}

func TestHistogramSnapshot(t *testing.T) {
	Enable()
	defer Disable()
	h := GetHistogram("test.hist.quantiles")
	// 100 observations at ~1ms, one at ~1s: p50/p90 land in the 1ms bucket,
	// max is the big one.
	for i := 0; i < 100; i++ {
		h.Observe(0.001)
	}
	h.Observe(1.0)
	s := h.Snapshot()
	if s.Count != 101 {
		t.Fatalf("count = %d, want 101", s.Count)
	}
	if math.Abs(s.Sum-1.1) > 1e-9 {
		t.Fatalf("sum = %g, want 1.1", s.Sum)
	}
	if s.Max != 1.0 {
		t.Fatalf("max = %g, want 1.0", s.Max)
	}
	// Quantiles are bucket upper bounds: the 1ms bucket's bound is in
	// [0.001, 0.002); the p99 must be >= p50.
	if s.P50 < 0.001 || s.P50 >= 0.01 {
		t.Fatalf("p50 = %g, want ~1ms bucket bound", s.P50)
	}
	if s.P99 < s.P50 {
		t.Fatalf("p99 %g < p50 %g", s.P99, s.P50)
	}
	if s.Mean <= 0 {
		t.Fatalf("mean = %g, want > 0", s.Mean)
	}
}

func TestHistogramOverflowQuantileIsClamped(t *testing.T) {
	Enable()
	defer Disable()
	h := GetHistogram("test.hist.overflow")
	h.Observe(math.MaxFloat64 / 2) // beyond the last bucket bound
	s := h.Snapshot()
	if !math.IsInf(s.P99, 1) {
		t.Fatalf("overflow p99 = %g, want +Inf pre-sanitize", s.P99)
	}
	blob, err := SnapshotJSON()
	if err != nil {
		t.Fatalf("SnapshotJSON: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if _, ok := decoded["test.hist.overflow"]; !ok {
		t.Fatal("snapshot is missing the overflow histogram")
	}
}

// TestRegistryRace hammers one counter and one histogram from parallel
// writers while snapshots are taken concurrently; run with -race.
func TestRegistryRace(t *testing.T) {
	Enable()
	defer Disable()
	const writers = 8
	const perWriter = 500
	c := GetCounter("test.race.counter")
	h := GetHistogram("test.race.hist")
	base := c.Value()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(float64(i%7) * 0.001)
				if i%50 == 0 {
					// Snapshot mid-write: must not race or tear.
					_ = Snapshot()
					_ = h.Snapshot()
				}
			}
		}(w)
	}
	// Concurrent get-or-create of fresh names races registration paths.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			GetCounter("test.race.shared").Inc()
			_ = Default().Names()
		}
	}()
	wg.Wait()
	if got := c.Value() - base; got != writers*perWriter {
		t.Fatalf("counter delta = %d, want %d", got, writers*perWriter)
	}
	if s := h.Snapshot(); s.Count < writers*perWriter {
		t.Fatalf("histogram count = %d, want >= %d", s.Count, writers*perWriter)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]string{
		"debug": "DEBUG", "info": "INFO", "warn": "WARN", "WARNING": "WARN", "Error": "ERROR",
	} {
		lvl, err := ParseLevel(in)
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", in, err)
		}
		if lvl.String() != want {
			t.Fatalf("ParseLevel(%q) = %v, want %s", in, lvl, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted an unknown level")
	}
}

func TestSetLoggerNilRestoresSilence(t *testing.T) {
	SetLogger(nil)
	if Logger() == nil {
		t.Fatal("Logger() returned nil")
	}
	// The silent default must drop records without formatting them.
	Logger().Info("this must go nowhere")
}

// BenchmarkCounterDisabled measures the disabled fast path: one atomic load
// plus a branch per operation.
func BenchmarkCounterDisabled(b *testing.B) {
	Disable()
	c := GetCounter("bench.counter.disabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	Enable()
	defer Disable()
	c := GetCounter("bench.counter.enabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	Enable()
	defer Disable()
	h := GetHistogram("bench.hist.enabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0001)
	}
}
