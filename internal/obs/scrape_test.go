// External-package test: drives a real PAS retrieval with metrics enabled
// and scrapes the /metrics handler the way modelhub-server serves it,
// asserting the pas.* instrumentation shows up nonzero in the JSON payload.
package obs_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"modelhub/internal/obs"
	"modelhub/internal/pas"
	"modelhub/internal/tensor"
)

func TestMetricsScrapeAfterPASRetrieval(t *testing.T) {
	obs.Enable()
	defer obs.Disable()

	rng := rand.New(rand.NewSource(41))
	base := map[string]*tensor.Matrix{
		"conv1": tensor.RandNormal(rng, 12, 30, 0.1),
		"ip1":   tensor.RandNormal(rng, 20, 80, 0.1),
	}
	var snaps []pas.SnapshotIn
	cur := base
	for i := 0; i < 4; i++ {
		snap := pas.SnapshotIn{ID: fmt.Sprintf("s%d", i), Matrices: map[string]*tensor.Matrix{}}
		for name, m := range cur {
			snap.Matrices[name] = m.Perturb(rng, 1e-3)
		}
		snaps = append(snaps, snap)
		cur = snap.Matrices
	}
	dir := t.TempDir()
	if _, err := pas.Create(dir, snaps, pas.Options{Algorithm: "mst"}); err != nil {
		t.Fatal(err)
	}
	st, err := pas.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := snaps[len(snaps)-1].ID
	// First retrieval fills the plane LRU (misses), second hits it.
	for i := 0; i < 2; i++ {
		if _, err := st.GetSnapshot(last, 4, pas.Concurrent); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	var metrics map[string]any
	if err := json.Unmarshal(blob, &metrics); err != nil {
		t.Fatalf("scrape is not valid JSON: %v", err)
	}
	for _, key := range []string{
		"pas.plane_cache.misses",
		"pas.plane_cache.hits",
		"pas.chunk.reads",
		"pas.chunk.read_bytes",
		"pas.retrieval.snapshots.concurrent",
	} {
		v, ok := metrics[key].(float64)
		if !ok {
			t.Fatalf("scrape is missing counter %q (got %T)", key, metrics[key])
		}
		if v <= 0 {
			t.Fatalf("%s = %v, want nonzero after a concurrent retrieval", key, v)
		}
	}
	hist, ok := metrics["pas.retrieval.seconds"].(map[string]any)
	if !ok {
		t.Fatalf("pas.retrieval.seconds missing or not a histogram: %T", metrics["pas.retrieval.seconds"])
	}
	if count, _ := hist["count"].(float64); count < 2 {
		t.Fatalf("pas.retrieval.seconds count = %v, want >= 2", hist["count"])
	}
}
