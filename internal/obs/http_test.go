package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWrapHandlerMetrics(t *testing.T) {
	Enable()
	defer Disable()
	h := WrapHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := io.WriteString(w, "hello"); err != nil {
			t.Errorf("write: %v", err)
		}
	}), MiddlewareOptions{Prefix: "test.http.ok"})
	srv := httptest.NewServer(h)
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/x")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}
	if got := GetCounter("test.http.ok.requests").Value(); got != 3 {
		t.Fatalf("requests = %d, want 3", got)
	}
	if got := GetCounter("test.http.ok.status_2xx").Value(); got != 3 {
		t.Fatalf("status_2xx = %d, want 3", got)
	}
	if got := GetCounter("test.http.ok.response_bytes").Value(); got != 15 {
		t.Fatalf("response_bytes = %d, want 15", got)
	}
	if s := GetHistogram("test.http.ok.request_seconds").Snapshot(); s.Count != 3 {
		t.Fatalf("latency count = %d, want 3", s.Count)
	}
	if got := GetGauge("test.http.ok.in_flight").Value(); got != 0 {
		t.Fatalf("in_flight after drain = %d, want 0", got)
	}
}

func TestWrapHandlerPanicRecovery(t *testing.T) {
	Enable()
	defer Disable()
	h := WrapHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}), MiddlewareOptions{Prefix: "test.http.panic", PanicBody: "hub: error: internal server error"})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/kaboom")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(string(body), "hub: error: internal server error") {
		t.Fatalf("body = %q, want the panic body", body)
	}
	if got := GetCounter("test.http.panic.panics").Value(); got != 1 {
		t.Fatalf("panics = %d, want 1", got)
	}
	if got := GetCounter("test.http.panic.status_5xx").Value(); got != 1 {
		t.Fatalf("status_5xx = %d, want 1", got)
	}
}

// TestWrapHandlerPanicRecoveryAlwaysOn: recovery must protect the server
// even when metrics are disabled.
func TestWrapHandlerPanicRecoveryDisabled(t *testing.T) {
	Disable()
	h := WrapHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}), MiddlewareOptions{Prefix: "test.http.panicoff"})
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/kaboom")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if got := GetCounter("test.http.panicoff.panics").Value(); got != 0 {
		t.Fatalf("disabled panics counter = %d, want 0", got)
	}
}
