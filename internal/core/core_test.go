package core

import (
	"net/http/httptest"
	"testing"

	"modelhub/internal/dlv"
	"modelhub/internal/hub"
)

func TestEndToEndLifecycle(t *testing.T) {
	// Init -> train/commit -> query -> fine-tune -> archive -> eval:
	// the full Fig. 1 loop through the facade.
	mh, err := Init(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id1, err := mh.TrainAndCommit("lenet-base", TrainOptions{
		Epochs: 1, CheckpointEvery: 8, Seed: 1, Msg: "baseline",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fine-tune from the base.
	id2, err := mh.TrainAndCommit("lenet-ft", TrainOptions{
		Epochs: 1, LR: 0.01, Seed: 2, ParentID: id1, Msg: "fine-tuned",
	})
	if err != nil {
		t.Fatal(err)
	}
	// DQL over the repository.
	res, err := mh.Query(`select m where m.name like "lenet%"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Versions) != 2 {
		t.Fatalf("query found %d versions", len(res.Versions))
	}
	// Lineage is recorded.
	lineage, err := mh.Repo.Lineage(id2)
	if err != nil || len(lineage) != 1 || lineage[0] != id1 {
		t.Fatalf("lineage = %v, %v", lineage, err)
	}
	// Archive and evaluate from the archive, progressively.
	if err := mh.Archive(dlv.ArchiveOptions{Algorithm: "pas-mt", Alpha: 2}); err != nil {
		t.Fatal(err)
	}
	test := TestSet(40, 3)
	full, err := mh.Repo.Eval(id2, dlv.LatestSnap, test, 4)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mh.Repo.EvalProgressive(id2, dlv.LatestSnap, test)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Accuracy != full.Accuracy {
		t.Fatalf("progressive %v != full %v", prog.Accuracy, full.Accuracy)
	}
	if full.Accuracy < 0.5 {
		t.Fatalf("trained model accuracy suspiciously low: %v", full.Accuracy)
	}
}

func TestArchUnknown(t *testing.T) {
	if _, err := Arch("resnet-9000"); err == nil {
		t.Fatal("unknown arch must error")
	}
	for _, name := range []string{"lenet", "alexnet-mini", "vgg-mini", "resnet-mini", "resnet-skip"} {
		if _, err := Arch(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestPublishSearchPullViaFacade(t *testing.T) {
	srv, err := hub.NewServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mh, err := Init(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mh.TrainAndCommit("shared-model", TrainOptions{Epochs: 1, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	if err := mh.Publish(ts.URL, "myrepo"); err != nil {
		t.Fatal(err)
	}
	found, err := Search(ts.URL, "shared")
	if err != nil || len(found) != 1 {
		t.Fatalf("search = %v, %v", found, err)
	}
	pulled, err := Pull(ts.URL, "myrepo", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	v, err := pulled.Repo.VersionByName("shared-model")
	if err != nil {
		t.Fatal(err)
	}
	if v.Accuracy <= 0 {
		t.Fatalf("pulled version = %+v", v)
	}
}

func TestOpenNonRepo(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("open of non-repo must fail")
	}
}
