// Package core is the ModelHub facade: one documented entry point wiring
// the DLV version control system, the relational catalog, the DQL engine,
// the PAS parameter archive, and the hub client together (paper Fig. 3).
// The command-line tool and the examples program against this API.
package core

import (
	"context"
	"fmt"
	"math/rand"

	"modelhub/internal/data"
	"modelhub/internal/dlv"
	"modelhub/internal/dnn"
	"modelhub/internal/dql"
	"modelhub/internal/hub"
	"modelhub/internal/obs"
	"modelhub/internal/pas"
	"modelhub/internal/zoo"
)

// ModelHub is an opened workspace: a local DLV repository plus the DQL
// engine bound to it.
type ModelHub struct {
	Repo   *dlv.Repo
	Engine *dql.Engine
}

// Init creates a new repository in dir and returns the workspace.
func Init(dir string) (*ModelHub, error) {
	repo, err := dlv.Init(dir)
	if err != nil {
		return nil, err
	}
	return wrap(repo), nil
}

// Open opens an existing repository in dir.
func Open(dir string) (*ModelHub, error) {
	repo, err := dlv.Open(dir)
	if err != nil {
		return nil, err
	}
	return wrap(repo), nil
}

func wrap(repo *dlv.Repo) *ModelHub {
	mh := &ModelHub{Repo: repo, Engine: dql.NewEngine(repo)}
	// The synthetic digit task is the default evaluation dataset; callers
	// can register more via mh.Engine.RegisterDataset.
	rng := rand.New(rand.NewSource(12345))
	mh.Engine.RegisterDataset("digits", data.Digits(rng, 400, 0.05))
	return mh
}

// Arch resolves a named reference architecture from the model zoo.
func Arch(name string) (*dnn.NetDef, error) {
	switch name {
	case "lenet":
		return zoo.LeNet(name), nil
	case "alexnet-mini":
		return zoo.AlexNetMini(name), nil
	case "vgg-mini":
		return zoo.VGGMini(name), nil
	case "resnet-mini":
		return zoo.ResNetMini(name), nil
	case "resnet-skip":
		return zoo.ResNetSkip(name), nil
	default:
		return nil, fmt.Errorf("core: unknown architecture %q (lenet, alexnet-mini, vgg-mini, resnet-mini, resnet-skip)", name)
	}
}

// TrainOptions configure TrainAndCommit.
type TrainOptions struct {
	Arch            string // zoo architecture name
	Epochs          int
	BatchSize       int
	LR              float64
	Momentum        float64
	CheckpointEvery int
	Examples        int
	Seed            int64
	ParentID        int64
	Msg             string
}

// TrainAndCommit trains a zoo architecture on the synthetic digit task and
// commits the resulting model version, returning its id — the create/update
// + train/test + evaluate loop of the paper's Fig. 1 in one call. The whole
// loop runs under one "core.train_and_commit" trace: parent checkout,
// training epochs, and the commit are all child spans.
func (m *ModelHub) TrainAndCommit(name string, opts TrainOptions) (id int64, err error) {
	ctx, span := obs.Start(context.Background(), "core.train_and_commit")
	span.SetAttr("core.model", name)
	defer func() {
		if err != nil {
			span.SetError()
		}
		span.End()
	}()
	if opts.Arch == "" {
		opts.Arch = "lenet"
	}
	if opts.Epochs == 0 {
		opts.Epochs = 2
	}
	if opts.BatchSize == 0 {
		opts.BatchSize = 16
	}
	if opts.LR == 0 {
		opts.LR = 0.1
	}
	if opts.Examples == 0 {
		opts.Examples = 400
	}
	def, err := Arch(opts.Arch)
	if err != nil {
		return 0, err
	}
	def.Name = name
	rng := rand.New(rand.NewSource(opts.Seed))
	examples := data.Digits(rng, opts.Examples, 0.05)
	train, test := data.Split(examples, 0.8)
	net, err := dnn.Build(def, rand.New(rand.NewSource(opts.Seed+1)))
	if err != nil {
		return 0, err
	}
	span.SetAttr("core.arch", opts.Arch)
	if opts.ParentID != 0 {
		parent, err := m.Repo.WeightsCtx(ctx, opts.ParentID, dlv.LatestSnap, 4)
		if err != nil {
			return 0, err
		}
		for lname, dst := range net.Params() {
			if src, ok := parent[lname]; ok && src.SameShape(dst) {
				copy(dst.Data(), src.Data())
			}
		}
	}
	res, err := dnn.Train(net, train, dnn.TrainConfig{
		Ctx:             ctx,
		Epochs:          opts.Epochs,
		BatchSize:       opts.BatchSize,
		LR:              opts.LR,
		Momentum:        opts.Momentum,
		CheckpointEvery: opts.CheckpointEvery,
		Seed:            opts.Seed + 2,
		EpochHook:       dnn.ObsEpochHook(),
	})
	if err != nil {
		return 0, err
	}
	return m.Repo.CommitCtx(ctx, dlv.CommitInput{
		Name:   name,
		Msg:    opts.Msg,
		NetDef: def,
		Hyper: map[string]string{
			"base_lr":  fmt.Sprintf("%g", opts.LR),
			"momentum": fmt.Sprintf("%g", opts.Momentum),
			"batch":    fmt.Sprintf("%d", opts.BatchSize),
			"arch":     opts.Arch,
		},
		Log:         res.Log,
		Checkpoints: res.Checkpoints,
		Final:       res.Final,
		Accuracy:    dnn.Evaluate(net, test),
		ParentID:    opts.ParentID,
	})
}

// Query runs a DQL statement (dlv query).
func (m *ModelHub) Query(text string) (*dql.Result, error) {
	return m.Engine.Run(text)
}

// Archive consolidates all versions into the PAS store (dlv archive).
func (m *ModelHub) Archive(opts dlv.ArchiveOptions) error {
	_, err := m.Repo.Archive(opts)
	return err
}

// GC reclaims unreferenced bytes from the PAS archive's segment files
// (dlv gc).
func (m *ModelHub) GC() (pas.GCStats, error) {
	return m.Repo.GC()
}

// Repack rewrites the PAS archive into freshly packed segment files
// (dlv repack).
func (m *ModelHub) Repack() (pas.GCStats, error) {
	return m.Repo.Repack()
}

// Publish uploads the repository to a hub server (dlv publish).
func (m *ModelHub) Publish(remote, name string) error {
	return m.PublishWith(context.Background(), remote, name, hub.Options{})
}

// PublishWith is Publish with explicit transfer options (timeouts, stall
// watchdog, retry policy) and a caller context: cancelling ctx aborts the
// in-flight upload, including its retry backoffs.
func (m *ModelHub) PublishWith(ctx context.Context, remote, name string, o hub.Options) error {
	return hub.NewClientWith(remote, o).PublishCtx(ctx, m.Repo.Root(), name)
}

// Search queries a hub server (dlv search).
func Search(remote, q string) ([]hub.RepoInfo, error) {
	return SearchWith(context.Background(), remote, q, hub.Options{})
}

// SearchWith is Search with explicit transfer options and a caller context.
func SearchWith(ctx context.Context, remote, q string, o hub.Options) ([]hub.RepoInfo, error) {
	return hub.NewClientWith(remote, o).SearchCtx(ctx, q)
}

// Pull downloads a published repository into dir and opens it (dlv pull).
func Pull(remote, name, dir string) (*ModelHub, error) {
	return PullWith(context.Background(), remote, name, dir, hub.Options{})
}

// PullWith is Pull with explicit transfer options and a caller context:
// cancelling ctx aborts the download mid-stream or mid-backoff.
func PullWith(ctx context.Context, remote, name, dir string, o hub.Options) (*ModelHub, error) {
	if err := hub.NewClientWith(remote, o).PullCtx(ctx, name, dir); err != nil {
		return nil, err
	}
	return Open(dir)
}

// TestSet returns a deterministic held-out digit set for eval commands.
func TestSet(n int, seed int64) []dnn.Example {
	return data.Digits(rand.New(rand.NewSource(seed)), n, 0.05)
}
