// Package synth generates the synthetic evaluation datasets of the paper's
// Sec. V-A. SD simulates an automated modeler iterating on a prediction
// task: a state machine that repeatedly derives new model versions from
// existing ones (hyperparameter fine-tuning, label-domain changes, small
// architecture tweaks), warm-starting each from its parent's weights and
// actually training it, checkpointing along the way. The result is a DLV
// repository whose parameter matrices have the similarity structure PAS
// exploits. RD derives parameterized storage-graph families (varying delta
// ratios, group sizes, model counts) for scaling experiments.
package synth

import (
	"fmt"
	"math/rand"

	"modelhub/internal/data"
	"modelhub/internal/dlv"
	"modelhub/internal/dnn"
	"modelhub/internal/pas"
	"modelhub/internal/zoo"
)

// SDConfig sizes the SD repository. The paper's SD has 54 versions x 10
// snapshots of a VGG-scale model; defaults here are laptop-scale and the
// knobs scale up.
type SDConfig struct {
	Versions            int // number of model versions (default 8)
	SnapshotsPerVersion int // checkpoints per version incl. latest (default 4)
	ItersPerSnapshot    int // training iterations between checkpoints (default 8)
	TrainExamples       int // dataset size (default 300)
	Seed                int64
}

func (c SDConfig) withDefaults() SDConfig {
	if c.Versions == 0 {
		c.Versions = 8
	}
	if c.SnapshotsPerVersion == 0 {
		c.SnapshotsPerVersion = 4
	}
	if c.ItersPerSnapshot == 0 {
		c.ItersPerSnapshot = 8
	}
	if c.TrainExamples == 0 {
		c.TrainExamples = 300
	}
	return c
}

// GenerateSD drives the automated modeler and returns the populated
// repository rooted at root.
func GenerateSD(root string, cfg SDConfig) (*dlv.Repo, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	repo, err := dlv.Init(root)
	if err != nil {
		return nil, err
	}
	examples := data.Digits(rng, cfg.TrainExamples, 0.05)
	train, test := data.Split(examples, 0.8)

	type versionInfo struct {
		id  int64
		def *dnn.NetDef
	}
	var versions []versionInfo

	trainAndCommit := func(name string, def *dnn.NetDef, warm map[string]*dnn.Network, parent int64, lr float64) error {
		net, err := dnn.Build(def, rand.New(rand.NewSource(rng.Int63())))
		if err != nil {
			return err
		}
		if parentNet, ok := warm["net"]; ok && parentNet != nil {
			warmStart(net, parentNet)
		}
		iters := cfg.ItersPerSnapshot * cfg.SnapshotsPerVersion
		res, err := dnn.Train(net, train, dnn.TrainConfig{
			Epochs:          1,
			BatchSize:       16,
			LR:              lr,
			Momentum:        0.9,
			MaxIters:        iters,
			CheckpointEvery: cfg.ItersPerSnapshot,
			LogEvery:        cfg.ItersPerSnapshot,
			Seed:            rng.Int63(),
		})
		if err != nil {
			return err
		}
		// Keep SnapshotsPerVersion-1 checkpoints plus the latest snapshot.
		ckpts := res.Checkpoints
		if len(ckpts) >= cfg.SnapshotsPerVersion {
			ckpts = ckpts[:cfg.SnapshotsPerVersion-1]
		}
		id, err := repo.Commit(dlv.CommitInput{
			Name:        name,
			Msg:         fmt.Sprintf("automated modeler: %s", name),
			NetDef:      def,
			Hyper:       map[string]string{"base_lr": fmt.Sprintf("%g", lr), "momentum": "0.9"},
			Log:         res.Log,
			Checkpoints: ckpts,
			Final:       res.Final,
			Accuracy:    dnn.Evaluate(net, test),
			ParentID:    parent,
		})
		if err != nil {
			return err
		}
		versions = append(versions, versionInfo{id: id, def: def})
		warm["committed"] = net
		return nil
	}

	// Seed version: train the base architecture from scratch.
	base := zoo.LeNet("sd-base")
	scratch := map[string]*dnn.Network{}
	if err := trainAndCommit("sd-base", base, scratch, 0, 0.05); err != nil {
		return nil, err
	}

	moves := []string{"finetune-lr", "widen-fc", "toggle-activation"}
	for vi := 1; vi < cfg.Versions; vi++ {
		// Prefer recent parents, like a modeler iterating on the newest model.
		parent := versions[len(versions)-1-rng.Intn(min(3, len(versions)))]
		parentNet, err := netFromRepo(repo, parent.id, parent.def)
		if err != nil {
			return nil, err
		}
		move := moves[rng.Intn(len(moves))]
		def := parent.def.Clone()
		name := fmt.Sprintf("sd-v%02d-%s", vi, move)
		def.Name = name
		lr := []float64{0.05, 0.02, 0.01}[rng.Intn(3)]
		switch move {
		case "finetune-lr":
			// Same architecture, new hyperparameters.
		case "widen-fc":
			if n := def.Node("ip1"); n != nil {
				n.Out += 8 * (1 + rng.Intn(2))
			}
		case "toggle-activation":
			if n := def.Node("relu1"); n != nil {
				if n.Kind == dnn.KindReLU {
					n.Kind = dnn.KindTanh
				} else {
					n.Kind = dnn.KindReLU
				}
			}
		}
		warm := map[string]*dnn.Network{"net": parentNet}
		if err := trainAndCommit(name, def, warm, parent.id, lr); err != nil {
			return nil, err
		}
	}
	return repo, nil
}

// warmStart copies parent weights into net wherever layer names and shapes
// match — the fine-tuning initialization of the paper's Sec. II.
func warmStart(net, parent *dnn.Network) {
	src := parent.Params()
	for name, dst := range net.Params() {
		if from, ok := src[name]; ok && from.SameShape(dst) {
			copy(dst.Data(), from.Data())
		}
	}
}

// netFromRepo rebuilds a committed version's network with its final weights.
func netFromRepo(repo *dlv.Repo, id int64, def *dnn.NetDef) (*dnn.Network, error) {
	weights, err := repo.Weights(id, dlv.LatestSnap, 4)
	if err != nil {
		return nil, err
	}
	net, err := dnn.Build(def, rand.New(rand.NewSource(0)))
	if err != nil {
		return nil, err
	}
	if err := net.Restore(weights); err != nil {
		return nil, err
	}
	return net, nil
}

// RDConfig parameterizes the derived storage-graph family (paper: "based on
// SD, we vary the delta ratios, group sizes, and number of models").
type RDConfig struct {
	Snapshots           int     // number of snapshot groups (default 20)
	MatricesPerSnapshot int     // group size (default 4)
	DeltaRatio          float64 // delta cost / materialization cost (default 0.2)
	ExtraEdges          int     // random extra delta candidates (default 2x snapshots)
	Seed                int64
}

func (c RDConfig) withDefaults() RDConfig {
	if c.Snapshots == 0 {
		c.Snapshots = 20
	}
	if c.MatricesPerSnapshot == 0 {
		c.MatricesPerSnapshot = 4
	}
	if c.DeltaRatio == 0 {
		c.DeltaRatio = 0.2
	}
	if c.ExtraEdges == 0 {
		c.ExtraEdges = 2 * c.Snapshots
	}
	return c
}

// GenerateRD builds a synthetic matrix storage graph shaped like an SD
// archive: every matrix has a materialization edge from ν0, chain deltas
// link the same matrix across consecutive snapshots at the configured delta
// ratio, and random cross edges emulate fine-tuned relatives.
func GenerateRD(cfg RDConfig) *pas.Graph {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Snapshots * cfg.MatricesPerSnapshot
	g := pas.NewGraph(n)
	node := func(snap, mat int) pas.NodeID {
		return pas.NodeID(snap*cfg.MatricesPerSnapshot + mat + 1)
	}
	for s := 0; s < cfg.Snapshots; s++ {
		var group []pas.NodeID
		for m := 0; m < cfg.MatricesPerSnapshot; m++ {
			v := node(s, m)
			group = append(group, v)
			matCost := 8 + rng.Float64()*4 // materialized compressed size
			g.AddEdge(pas.Root, v, matCost, matCost)
			if s > 0 {
				d := matCost * cfg.DeltaRatio * (0.75 + rng.Float64()*0.5)
				g.AddSymmetricEdge(node(s-1, m), v, d, d)
			}
		}
		g.AddSnapshot(fmt.Sprintf("s%03d", s), group, 0)
	}
	for i := 0; i < cfg.ExtraEdges; i++ {
		a := pas.NodeID(1 + rng.Intn(n))
		b := pas.NodeID(1 + rng.Intn(n))
		if a == b {
			continue
		}
		d := (8 + rng.Float64()*4) * cfg.DeltaRatio * (1 + rng.Float64())
		g.AddSymmetricEdge(a, b, d, d)
	}
	return g
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
