package synth

import (
	"testing"

	"modelhub/internal/dlv"
	"modelhub/internal/pas"
)

func TestGenerateSDStructure(t *testing.T) {
	repo, err := GenerateSD(t.TempDir(), SDConfig{
		Versions: 4, SnapshotsPerVersion: 3, ItersPerSnapshot: 4, TrainExamples: 120, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	versions, err := repo.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 4 {
		t.Fatalf("versions = %d", len(versions))
	}
	for i, v := range versions {
		if len(v.Snapshots) != 3 {
			t.Fatalf("version %d snapshots = %v", v.ID, v.Snapshots)
		}
		if i == 0 && v.ParentID != 0 {
			t.Fatal("base version must have no parent")
		}
		if i > 0 && v.ParentID == 0 {
			t.Fatalf("derived version %d has no parent", v.ID)
		}
		if v.Hyper["base_lr"] == "" {
			t.Fatal("hyperparameters missing")
		}
	}
	// Training logs were recorded.
	log, err := repo.TrainLog(versions[0].ID)
	if err != nil || len(log) == 0 {
		t.Fatalf("train log = %v, %v", log, err)
	}
}

func TestGenerateSDDeterministic(t *testing.T) {
	cfg := SDConfig{Versions: 3, SnapshotsPerVersion: 2, ItersPerSnapshot: 3, TrainExamples: 80, Seed: 7}
	r1, err := GenerateSD(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := GenerateSD(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := r1.Weights(1, dlv.LatestSnap, 4)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := r2.Weights(1, dlv.LatestSnap, 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range w1 {
		if !w2[name].Equal(m) {
			t.Fatalf("SD generation not deterministic at layer %s", name)
		}
	}
}

// The whole point of SD: its archive must compress well via delta chains.
func TestGenerateSDArchivesWell(t *testing.T) {
	repo, err := GenerateSD(t.TempDir(), SDConfig{
		Versions: 3, SnapshotsPerVersion: 3, ItersPerSnapshot: 4, TrainExamples: 120, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := repo.Archive(dlv.ArchiveOptions{Algorithm: "mst"})
	if err != nil {
		t.Fatal(err)
	}
	info := store.Info()
	if info.StorageCost >= info.SPTCost {
		t.Fatalf("delta archive (%v) should beat materialization (%v)", info.StorageCost, info.SPTCost)
	}
}

func TestGenerateRD(t *testing.T) {
	g := GenerateRD(RDConfig{Snapshots: 10, MatricesPerSnapshot: 3, DeltaRatio: 0.2, Seed: 3})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != 31 || len(g.Snapshots) != 10 {
		t.Fatalf("graph = %d nodes, %d snapshots", g.NumNodes, len(g.Snapshots))
	}
	mst, err := pas.MST(g)
	if err != nil {
		t.Fatal(err)
	}
	spt, err := pas.SPT(g)
	if err != nil {
		t.Fatal(err)
	}
	if mst.StorageCost() >= spt.StorageCost() {
		t.Fatal("RD deltas should make MST cheaper than SPT")
	}
}

// Delta ratio controls how much the MST wins: smaller ratio, bigger gap.
func TestGenerateRDDeltaRatioEffect(t *testing.T) {
	gap := func(ratio float64) float64 {
		g := GenerateRD(RDConfig{Snapshots: 15, MatricesPerSnapshot: 3, DeltaRatio: ratio, Seed: 4})
		mst, err := pas.MST(g)
		if err != nil {
			t.Fatal(err)
		}
		spt, err := pas.SPT(g)
		if err != nil {
			t.Fatal(err)
		}
		return mst.StorageCost() / spt.StorageCost()
	}
	if gap(0.1) >= gap(0.8) {
		t.Fatalf("lower delta ratio should compress more: %v vs %v", gap(0.1), gap(0.8))
	}
}

func TestGenerateRDScalesWithModels(t *testing.T) {
	small := GenerateRD(RDConfig{Snapshots: 5, MatricesPerSnapshot: 2, Seed: 5})
	large := GenerateRD(RDConfig{Snapshots: 50, MatricesPerSnapshot: 2, Seed: 5})
	if large.NumNodes <= small.NumNodes {
		t.Fatal("node count must scale with snapshots")
	}
	if _, _, err := pas.PASMT(large, pas.Independent); err != nil {
		t.Fatal(err)
	}
}
