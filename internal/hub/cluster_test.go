package hub

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// testNode is one storage node of a test cluster: a real TCP listener (so
// it can be killed and restarted on the same address, unlike httptest) with
// its own data directory.
type testNode struct {
	t    *testing.T
	dir  string
	addr string
	url  string

	mu  sync.Mutex
	srv *Server
	hs  *http.Server
	wg  sync.WaitGroup
	// wrap optionally decorates the handler on (re)start — fault injection.
	wrap func(http.Handler) http.Handler
}

// testCluster boots n storage nodes with the given replication factor. The
// anti-entropy loop is disabled (sweeps run on demand via RepairOnce) and
// peer timeouts are short so dead-node requests fail fast.
type testCluster struct {
	t     *testing.T
	nodes []*testNode
	urls  []string
	cfg   ClusterConfig
}

func newTestCluster(t *testing.T, n, replicas int) *testCluster {
	t.Helper()
	tc := &testCluster{t: t}
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		tc.urls = append(tc.urls, "http://"+ln.Addr().String())
	}
	tc.cfg = ClusterConfig{
		Peers:          tc.urls,
		Replicas:       replicas,
		RepairInterval: -1, // sweeps run on demand in tests
		PeerTimeout:    2 * time.Second,
	}
	for i := 0; i < n; i++ {
		node := &testNode{
			t:    t,
			dir:  t.TempDir(),
			addr: listeners[i].Addr().String(),
			url:  tc.urls[i],
		}
		tc.nodes = append(tc.nodes, node)
		tc.startNode(node, listeners[i])
	}
	t.Cleanup(func() {
		for _, node := range tc.nodes {
			node.kill()
		}
	})
	return tc
}

// startNode builds a fresh Server over the node's (persistent) data dir and
// serves it on ln until killed.
func (tc *testCluster) startNode(node *testNode, ln net.Listener) {
	tc.t.Helper()
	srv, err := NewServer(node.dir)
	if err != nil {
		tc.t.Fatal(err)
	}
	cfg := tc.cfg
	cfg.Self = node.url
	if err := srv.EnableCluster(cfg); err != nil {
		tc.t.Fatal(err)
	}
	var handler http.Handler = srv.Handler()
	if node.wrap != nil {
		handler = node.wrap(handler)
	}
	hs := &http.Server{Handler: handler}
	node.mu.Lock()
	node.srv, node.hs = srv, hs
	node.mu.Unlock()
	node.wg.Add(1)
	go func() {
		defer node.wg.Done()
		//mhlint:ignore errcheck Serve always returns ErrServerClosed or a listener error after kill
		_ = hs.Serve(ln)
	}()
}

// kill closes the node's listener and every open connection — the abrupt
// death of a process, not a graceful drain — and joins the serve goroutine.
func (n *testNode) kill() {
	n.mu.Lock()
	hs := n.hs
	n.hs = nil
	n.mu.Unlock()
	if hs != nil {
		//mhlint:ignore errcheck Close on an already-closed server is fine in teardown
		_ = hs.Close()
	}
	n.wg.Wait()
}

// restart brings a killed node back on its old address with its old data
// directory, as a crashed process restarting would.
func (tc *testCluster) restart(node *testNode) {
	tc.t.Helper()
	var ln net.Listener
	var err error
	// The old listener's port lingers briefly on some kernels; retry.
	for i := 0; i < 50; i++ {
		if ln, err = net.Listen("tcp", node.addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		tc.t.Fatalf("relisten on %s: %v", node.addr, err)
	}
	tc.startNode(node, ln)
}

func (n *testNode) server() *Server {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.srv
}

// hasBlob reports whether the node's index has name and the stored blob's
// bytes still hash to the indexed digest.
func (n *testNode) hasBlob(name string) bool {
	srv := n.server()
	srv.mu.RLock()
	info, ok := srv.index[name]
	srv.mu.RUnlock()
	if !ok {
		return false
	}
	got, _, err := fileDigest(srv.blobPath(name, info.SHA256))
	return err == nil && strings.EqualFold(got, info.SHA256)
}

func (tc *testCluster) client(i int) *Client {
	return NewClientWith(tc.urls[i], Options{Timeout: 5 * time.Second, Retries: 1, BaseBackoff: 10 * time.Millisecond})
}

// replicaCount counts live, digest-valid copies of name across the cluster.
func (tc *testCluster) replicaCount(name string) int {
	count := 0
	for _, node := range tc.nodes {
		node.mu.Lock()
		alive := node.hs != nil
		node.mu.Unlock()
		if alive && node.hasBlob(name) {
			count++
		}
	}
	return count
}

func TestClusterReplicatesToAllOwners(t *testing.T) {
	tc := newTestCluster(t, 3, 3)
	if err := tc.client(0).Publish(makeRepo(t, "m"), "replicated"); err != nil {
		t.Fatal(err)
	}
	// Replication is synchronous with the publish response: every node
	// holds a digest-valid copy the moment the client returns.
	if got := tc.replicaCount("replicated"); got != 3 {
		t.Fatalf("replicas after publish: %d, want 3", got)
	}
}

func TestClusterForwardsPublishToOwner(t *testing.T) {
	tc := newTestCluster(t, 3, 1)
	root := makeRepo(t, "m")
	name := "routed-model"
	owner := tc.nodes[0].server().cluster.ring.Owners(name, 1)[0]
	// Publish to a node that is NOT the owner; the publish must land on
	// the owner anyway (and, with replicas=1, only there).
	var via int
	for i, u := range tc.urls {
		if u != owner {
			via = i
			break
		}
	}
	if err := tc.client(via).Publish(root, name); err != nil {
		t.Fatal(err)
	}
	for i, node := range tc.nodes {
		want := tc.urls[i] == owner
		if node.hasBlob(name) != want {
			t.Errorf("node %d (%s): hasBlob=%v, want %v", i, tc.urls[i], node.hasBlob(name), want)
		}
	}
}

func TestClusterSurvivesReplicaDeathMidPublish(t *testing.T) {
	tc := newTestCluster(t, 3, 3)
	dead := tc.nodes[2]
	dead.kill()

	// Publishing with a dead replica must still succeed: the live owners
	// commit, the dead peer's push fails softly.
	if err := tc.client(0).Publish(makeRepo(t, "m"), "during-outage"); err != nil {
		t.Fatalf("publish with a dead replica: %v", err)
	}
	if got := tc.replicaCount("during-outage"); got != 2 {
		t.Fatalf("live replicas: %d, want 2", got)
	}
	// Reads succeed from the survivors.
	if err := tc.client(1).Pull("during-outage", t.TempDir()); err != nil {
		t.Fatalf("pull from survivor: %v", err)
	}

	// The node comes back empty-handed; one anti-entropy sweep restores
	// full replication, digest-verified.
	tc.restart(dead)
	stats, err := dead.server().RepairOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Missing != 1 || stats.Repaired != 1 || stats.Failed != 0 {
		t.Fatalf("repair stats: %+v", stats)
	}
	if got := tc.replicaCount("during-outage"); got != 3 {
		t.Fatalf("replicas after repair: %d, want 3", got)
	}
}

func TestClusterRepairHealsCorruptReplica(t *testing.T) {
	tc := newTestCluster(t, 3, 3)
	if err := tc.client(0).Publish(makeRepo(t, "m"), "bitrot"); err != nil {
		t.Fatal(err)
	}
	// Flip bytes in one node's blob without touching its index: the index
	// still looks right, only a digest check can tell.
	victim := tc.nodes[1].server()
	victim.mu.RLock()
	info := victim.index["bitrot"]
	victim.mu.RUnlock()
	path := victim.blobPath("bitrot", info.SHA256)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8 && i < len(blob); i++ {
		blob[i] ^= 0xff
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if tc.nodes[1].hasBlob("bitrot") {
		t.Fatal("corruption not visible to the digest check")
	}

	stats, err := victim.RepairOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Corrupt != 1 || stats.Repaired != 1 {
		t.Fatalf("repair stats: %+v", stats)
	}
	if !tc.nodes[1].hasBlob("bitrot") {
		t.Fatal("blob still corrupt after repair")
	}
}

func TestClusterRepairSurvivesDeadSource(t *testing.T) {
	tc := newTestCluster(t, 3, 3)
	if err := tc.client(0).Publish(makeRepo(t, "m"), "resilient"); err != nil {
		t.Fatal(err)
	}
	// Node 1 loses its copy on disk AND node 2 (one of the two possible
	// repair sources) dies: the sweep must converge from node 0 alone.
	victim := tc.nodes[1].server()
	victim.mu.RLock()
	info := victim.index["resilient"]
	victim.mu.RUnlock()
	if err := os.Remove(victim.blobPath("resilient", info.SHA256)); err != nil {
		t.Fatal(err)
	}
	victim.mu.Lock()
	delete(victim.index, "resilient")
	victim.mu.Unlock()
	tc.nodes[2].kill()

	stats, err := victim.RepairOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Repaired != 1 || stats.Failed != 0 {
		t.Fatalf("repair stats: %+v", stats)
	}
	if !tc.nodes[1].hasBlob("resilient") {
		t.Fatal("repair did not converge with one source dead")
	}
}

func TestReplicateRejectsDigestMismatch(t *testing.T) {
	tc := newTestCluster(t, 2, 2)
	info := RepoInfo{
		Name: "spoofed", SizeBytes: 4, PublishedAt: "2026-01-01T00:00:00Z",
		SHA256: strings.Repeat("ab", 32),
	}
	meta, err := json.Marshal(info)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, tc.urls[0]+"/api/replicate?name=spoofed",
		bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RepoInfoHeader, string(meta))
	req.Header.Set(ReplicaHeader, tc.urls[1])
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("replicate with a lying digest: status %d, want 400", resp.StatusCode)
	}
	if tc.nodes[0].hasBlob("spoofed") {
		t.Fatal("mismatched replica must not be stored")
	}
}

// TestNameLocksStayBounded is the regression test for the per-name lock
// leak: the locks map must be empty once no publish is in flight, no matter
// how many distinct names were ever published.
func TestNameLocksStayBounded(t *testing.T) {
	srv, client := newTestServer(t)
	for i := 0; i < 8; i++ {
		if err := client.Publish(makeRepo(t, "m"), fmt.Sprintf("name-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.nameLockCount(); got != 0 {
		t.Fatalf("nameLocks entries after publishes drained: %d, want 0", got)
	}
}

func TestNameLocksBoundedUnderContention(t *testing.T) {
	srv, client := newTestServer(t)
	roots := []string{makeRepo(t, "a"), makeRepo(t, "b")}
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				name := fmt.Sprintf("contended-%d", (p+i)%3)
				if err := client.Publish(roots[i%2], name); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if got := srv.nameLockCount(); got != 0 {
		t.Fatalf("nameLocks entries after the hammer: %d, want 0", got)
	}
}

// TestPullDuringRebalanceReadsThrough covers the rebalance window: a name
// published under a 2-node ring stays pullable when the ring grows to 3
// nodes and its ownership moves, because repair never deletes and the new
// owner converges via anti-entropy.
func TestPullDuringRebalanceReadsThrough(t *testing.T) {
	tc := newTestCluster(t, 3, 1)
	// Find a name whose 3-node owner is node 2 but whose 2-node owner
	// (old ring, before node 2 joined) is node 0 or 1 — i.e. a name that
	// moved when the cluster grew.
	oldRing, err := NewRing(tc.urls[:2], 0)
	if err != nil {
		t.Fatal(err)
	}
	newRing := tc.nodes[0].server().cluster.ring
	name := ""
	for i := 0; i < 10000; i++ {
		cand := fmt.Sprintf("moved-%d", i)
		if newRing.Owners(cand, 1)[0] == tc.urls[2] && oldRing.Owners(cand, 1)[0] != tc.urls[2] {
			name = cand
			break
		}
	}
	if name == "" {
		t.Fatal("no moved name found")
	}
	oldOwner := oldRing.Owners(name, 1)[0]
	var oldIdx int
	for i, u := range tc.urls {
		if u == oldOwner {
			oldIdx = i
		}
	}
	// Plant the blob on the OLD owner only, replicating the state right
	// after the ring grew: storeBlob directly, bypassing routing.
	srv := tc.nodes[oldIdx].server()
	root := makeRepo(t, "m")
	var buf bytes.Buffer
	if err := PackRepo(root, &buf); err != nil {
		t.Fatal(err)
	}
	tmpName, digest, size, err := srv.spoolBody(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	info := RepoInfo{Name: name, SizeBytes: size, PublishedAt: "2026-01-01T00:00:00Z", Models: []string{"m"}, SHA256: digest}
	if _, err := srv.storeBlob(tmpName, info, func(RepoInfo, bool) bool { return true }); err != nil {
		t.Fatal(err)
	}

	// A pull routed to the new owner 404s locally — but one sweep on the
	// new owner pulls the blob over, and direct pulls from the old owner
	// keep working the whole time (repair never deletes).
	if err := tc.client(oldIdx).Pull(name, t.TempDir()); err != nil {
		t.Fatalf("pull from old owner during rebalance: %v", err)
	}
	stats, err := tc.nodes[2].server().RepairOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Repaired != 1 {
		t.Fatalf("repair stats: %+v", stats)
	}
	if err := tc.client(2).Pull(name, t.TempDir()); err != nil {
		t.Fatalf("pull from new owner after repair: %v", err)
	}
	if !tc.nodes[oldIdx].hasBlob(name) {
		t.Fatal("old owner's copy must survive the rebalance (read-through window)")
	}
}
