package hub

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
)

// Client talks to a ModelHub server.
type Client struct {
	// Base is the server URL, e.g. "http://localhost:8080".
	Base string
	// HTTP is the transport; defaults to http.DefaultClient.
	HTTP *http.Client
}

// NewClient creates a client for a server base URL.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: http.DefaultClient}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Publish packs the repository at root and uploads it under the given name
// (dlv publish).
func (c *Client) Publish(root, name string) error {
	var buf bytes.Buffer
	if err := PackRepo(root, &buf); err != nil {
		return err
	}
	u := fmt.Sprintf("%s/api/publish?name=%s", c.Base, url.QueryEscape(name))
	resp, err := c.httpClient().Post(u, "application/gzip", &buf)
	if err != nil {
		return fmt.Errorf("%w: publish: %v", ErrHub, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		//mhlint:ignore errcheck best-effort read of the error body for the message
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("%w: publish failed (%d): %s", ErrHub, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

// Search queries the server for repositories matching q (dlv search).
func (c *Client) Search(q string) ([]RepoInfo, error) {
	u := fmt.Sprintf("%s/api/search?q=%s", c.Base, url.QueryEscape(q))
	resp, err := c.httpClient().Get(u)
	if err != nil {
		return nil, fmt.Errorf("%w: search: %v", ErrHub, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: search failed (%d)", ErrHub, resp.StatusCode)
	}
	var out []RepoInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("%w: search response: %v", ErrHub, err)
	}
	return out, nil
}

// Pull downloads a published repository into destRoot (dlv pull). destRoot
// must not already contain a repository.
func (c *Client) Pull(name, destRoot string) error {
	if _, err := os.Stat(destRoot + "/.dlv"); err == nil {
		return fmt.Errorf("%w: destination already contains a repository", ErrHub)
	}
	u := fmt.Sprintf("%s/api/pull?name=%s", c.Base, url.QueryEscape(name))
	resp, err := c.httpClient().Get(u)
	if err != nil {
		return fmt.Errorf("%w: pull: %v", ErrHub, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: pull failed (%d)", ErrHub, resp.StatusCode)
	}
	return UnpackRepo(resp.Body, destRoot)
}
