package hub

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"hash"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"modelhub/internal/obs"
)

// Client talks to a ModelHub server. Transfers are crash- and
// disconnect-safe: publishes stream from a packed temp file with an
// end-to-end SHA-256, pulls download to a temp file (resuming cut streams
// via Range requests from the verified byte offset), digest-verify the
// archive, and only then extract + atomically promote into the destination.
type Client struct {
	// Base is the server URL, e.g. "http://localhost:8080".
	Base string
	// HTTP is the transport; nil selects DefaultHTTPClient (sane dial and
	// response-header timeouts, no whole-request ceiling).
	HTTP *http.Client
	// Opts tunes timeouts, the stall watchdog, and the retry policy.
	// Zero fields select defaults; see Options.
	Opts Options
}

// NewClient creates a client with default transfer options.
func NewClient(base string) *Client { return NewClientWith(base, Options{}) }

// NewClientWith creates a client with explicit transfer options.
func NewClientWith(base string, o Options) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: DefaultHTTPClient(), Opts: o}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return DefaultHTTPClient()
}

// Publish packs the repository at root and uploads it under the given name
// (dlv publish). The archive is packed to a temp file and hashed, the hash
// travels in DigestHeader, and the server rejects any upload whose streamed
// bytes do not match — a cut upload can never become visible server state.
func (c *Client) Publish(root, name string) error {
	return c.PublishCtx(context.Background(), root, name)
}

// PublishCtx is Publish under a caller-supplied context: cancelling ctx
// aborts the in-flight upload immediately instead of leaving it to stream
// until the stall watchdog notices.
func (c *Client) PublishCtx(ctx context.Context, root, name string) (err error) {
	rctx, span := obs.Start(ctx, "hub.client.publish")
	span.SetAttr("hub.name", name)
	defer func() { c.endAndExport(span, err) }()
	opts := c.Opts.withDefaults()
	tmp, err := os.CreateTemp("", "dlv-publish-*.tar.gz")
	if err != nil {
		return fmt.Errorf("%w: publish: %v", ErrHub, err)
	}
	defer func() {
		//mhlint:ignore errcheck best-effort temp cleanup after the upload outcome is decided
		_ = tmp.Close()
		//mhlint:ignore errcheck best-effort temp cleanup after the upload outcome is decided
		_ = os.Remove(tmp.Name())
	}()
	h := sha256.New()
	if err := PackRepo(root, io.MultiWriter(tmp, h)); err != nil {
		return err
	}
	size, err := tmp.Seek(0, io.SeekCurrent)
	if err != nil {
		return fmt.Errorf("%w: publish: %v", ErrHub, err)
	}
	if _, err := tmp.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("%w: publish: %v", ErrHub, err)
	}
	digest := digestString(h.Sum(nil))
	span.SetAttrInt("hub.archive_bytes", size)

	ctx, cancel := context.WithCancel(rctx)
	defer cancel()
	body := newStallReader(tmp, cancel, opts.StallTimeout)
	defer body.stop()
	u := fmt.Sprintf("%s/api/publish?name=%s", c.Base, url.QueryEscape(name))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, body)
	if err != nil {
		return fmt.Errorf("%w: publish: %v", ErrHub, err)
	}
	req.ContentLength = size
	req.Header.Set("Content-Type", "application/gzip")
	req.Header.Set(DigestHeader, digest)
	span.Inject(req.Header)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		// rctx, not the derived ctx: the stall watchdog cancels the child
		// and must keep reporting as a stall, not a caller abort.
		return ctxAbort(rctx, fmt.Errorf("%w: publish: %v", ErrHub, err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		//mhlint:ignore errcheck best-effort read of the error body for the message
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("%w: publish failed (%d): %s", ErrHub, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

// Search queries the server for repositories matching q (dlv search).
// Transient failures (connection errors, cut responses, 5xx) are retried
// with backoff under a per-attempt timeout; each attempt is a child span of
// one search trace.
func (c *Client) Search(q string) ([]RepoInfo, error) {
	return c.SearchCtx(context.Background(), q)
}

// SearchCtx is Search under a caller-supplied context: cancellation aborts
// the in-flight attempt and any backoff wait between retries.
func (c *Client) SearchCtx(ctx context.Context, q string) (out []RepoInfo, err error) {
	rctx, span := obs.Start(ctx, "hub.client.search")
	span.SetAttr("hub.query", q)
	defer func() { c.endAndExport(span, err) }()
	opts := c.Opts.withDefaults()
	u := fmt.Sprintf("%s/api/search?q=%s", c.Base, url.QueryEscape(q))
	attempt := 0
	err = retry(rctx, opts, func(ctx context.Context) error {
		attempt++
		ctx, aspan := obs.Start(ctx, "hub.client.search.attempt")
		aspan.SetAttrInt("hub.attempt", int64(attempt))
		aerr := c.searchAttempt(ctx, u, &out)
		if aerr != nil {
			aspan.SetError()
		}
		aspan.End()
		return aerr
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// searchAttempt performs one search GET, decoding into *out.
func (c *Client) searchAttempt(ctx context.Context, u string, out *[]RepoInfo) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("%w: search: %v", ErrHub, err)
	}
	obs.FromContext(ctx).Inject(req.Header)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return transientf("search: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode >= 500 {
			return transientf("search failed (%d)", resp.StatusCode)
		}
		return fmt.Errorf("%w: search failed (%d)", ErrHub, resp.StatusCode)
	}
	*out = nil // a retried attempt must not append to a torn first decode
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return transientf("search response: %v", err)
	}
	return nil
}

// Pull downloads a published repository into destRoot (dlv pull). destRoot
// must not already contain a repository. The archive lands in a temp file
// first (cut streams resume via Range from the verified offset), is
// digest-verified against the server's DigestHeader, extracted into a
// staging directory, and promoted into destRoot with one atomic rename —
// a failed or interrupted pull leaves destRoot untouched, so a retry
// always starts clean.
func (c *Client) Pull(name, destRoot string) error {
	return c.PullCtx(context.Background(), name, destRoot)
}

// PullCtx is Pull under a caller-supplied context: a cancelled ctx aborts
// the in-flight download (and any retry backoff) within one backoff
// interval instead of streaming on until the stall watchdog fires.
func (c *Client) PullCtx(ctx context.Context, name, destRoot string) (err error) {
	rctx, span := obs.Start(ctx, "hub.client.pull")
	span.SetAttr("hub.name", name)
	defer func() { c.endAndExport(span, err) }()
	dest := filepath.Join(destRoot, ".dlv")
	if _, err := os.Stat(dest); err == nil {
		return fmt.Errorf("%w: destination already contains a repository", ErrHub)
	}
	if err := os.MkdirAll(destRoot, 0o755); err != nil {
		return fmt.Errorf("%w: pull: %v", ErrHub, err)
	}
	arch, err := os.CreateTemp("", "dlv-pull-*.tar.gz")
	if err != nil {
		return fmt.Errorf("%w: pull: %v", ErrHub, err)
	}
	defer func() {
		//mhlint:ignore errcheck best-effort temp cleanup after the pull outcome is decided
		_ = arch.Close()
		//mhlint:ignore errcheck best-effort temp cleanup after the pull outcome is decided
		_ = os.Remove(arch.Name())
	}()
	if err := c.download(rctx, name, arch); err != nil {
		return err
	}
	if _, err := arch.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("%w: pull: %v", ErrHub, err)
	}

	// Extract into a staging dir inside destRoot (same filesystem), then
	// promote the .dlv tree with one rename. A crash or unpack failure
	// strands at most a hidden staging dir, never a half-extracted .dlv.
	stage, err := os.MkdirTemp(destRoot, ".dlv-stage-*")
	if err != nil {
		return fmt.Errorf("%w: pull: %v", ErrHub, err)
	}
	defer func() {
		//mhlint:ignore errcheck best-effort cleanup; promotion already moved the repo out
		_ = os.RemoveAll(stage)
	}()
	if err := UnpackRepo(arch, stage); err != nil {
		return err
	}
	staged := filepath.Join(stage, ".dlv")
	if _, err := os.Stat(staged); err != nil {
		return fmt.Errorf("%w: pulled archive contains no repository", ErrHub)
	}
	if err := os.Rename(staged, dest); err != nil {
		if _, serr := os.Stat(dest); serr == nil {
			return fmt.Errorf("%w: destination already contains a repository", ErrHub)
		}
		return fmt.Errorf("%w: pull: %v", ErrHub, err)
	}
	return nil
}

// download fetches the named archive into f, retrying transient failures
// and resuming from the number of bytes already written and hashed. The
// final file is verified against the server-advertised digest.
func (c *Client) download(ctx context.Context, name string, f *os.File) error {
	opts := c.Opts.withDefaults()
	h := sha256.New()
	var written int64
	var expected string // digest pinned from the first response
	attempt := 0
	for {
		actx, aspan := obs.Start(ctx, "hub.client.pull.attempt")
		aspan.SetAttrInt("hub.attempt", int64(attempt+1))
		aspan.SetAttrInt("hub.resume_offset", written)
		err := c.pullAttempt(actx, opts, name, f, h, &written, &expected)
		aspan.SetAttrInt("hub.bytes_written", written)
		if err != nil {
			aspan.SetError()
		}
		aspan.End()
		if err == nil {
			got := digestString(h.Sum(nil))
			if expected == "" || got == expected {
				mPullBytes.Observe(float64(written))
				return nil
			}
			mDigestMismatch.Inc()
			err = transientf("pull digest mismatch: got %s, want %s", got, expected)
			if rerr := resetDownload(f, h, &written); rerr != nil {
				return rerr
			}
		}
		if !isTransient(err) || attempt >= opts.Retries {
			return ctxAbort(ctx, err)
		}
		attempt++
		mRetries.Inc()
		if serr := sleepCtx(ctx, backoffDelay(attempt, opts)); serr != nil {
			return ctxAbort(ctx, err)
		}
	}
}

// pullAttempt performs one GET, resuming with a Range request when earlier
// attempts already banked verified bytes. If-Range pins the pinned digest's
// ETag so a republish between attempts yields a clean full restart (200)
// instead of a mixed-content archive.
func (c *Client) pullAttempt(ctx context.Context, opts Options, name string, f *os.File,
	h hash.Hash, written *int64, expected *string) error {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	u := fmt.Sprintf("%s/api/pull?name=%s", c.Base, url.QueryEscape(name))
	req, err := http.NewRequestWithContext(actx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("%w: pull: %v", ErrHub, err)
	}
	obs.FromContext(actx).Inject(req.Header)
	resuming := *written > 0
	if resuming {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-", *written))
		if *expected != "" {
			req.Header.Set("If-Range", etagFor(*expected))
		}
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return transientf("pull: %v", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		// Full body: either a fresh download, a server without Range
		// support, or content that changed since the partial download.
		if resuming {
			if err := resetDownload(f, h, written); err != nil {
				return err
			}
		}
	case http.StatusPartialContent:
		start, err := parseContentRangeStart(resp.Header.Get("Content-Range"))
		if err != nil || start != *written {
			if rerr := resetDownload(f, h, written); rerr != nil {
				return rerr
			}
			return transientf("pull resume at wrong offset (%q)", resp.Header.Get("Content-Range"))
		}
		mResumes.Inc()
	default:
		if resp.StatusCode >= 500 {
			return transientf("pull failed (%d)", resp.StatusCode)
		}
		return fmt.Errorf("%w: pull failed (%d)", ErrHub, resp.StatusCode)
	}
	if d := resp.Header.Get(DigestHeader); d != "" {
		if *expected == "" {
			*expected = d
		} else if d != *expected {
			// The name was republished. Pin the new digest and start over.
			*expected = d
			if err := resetDownload(f, h, written); err != nil {
				return err
			}
			if resp.StatusCode == http.StatusPartialContent {
				return transientf("pull content changed mid-download")
			}
		}
	}
	body := newStallReader(resp.Body, cancel, opts.StallTimeout)
	defer body.stop()
	n, err := io.Copy(io.MultiWriter(f, h), body)
	*written += n
	if err != nil {
		return transientf("pull stream: %v", err)
	}
	return nil
}

// resetDownload discards banked partial-download state: the file is
// truncated and the hash restarted so the next attempt begins from byte 0.
func resetDownload(f *os.File, h hash.Hash, written *int64) error {
	if err := f.Truncate(0); err != nil {
		return fmt.Errorf("%w: pull: %v", ErrHub, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("%w: pull: %v", ErrHub, err)
	}
	h.Reset()
	*written = 0
	return nil
}

// endAndExport finishes a client operation's root span, marking it failed
// when err is non-nil, and — if the trace was kept by the sampling policy —
// exports the client-side span records to the server's flight recorder so
// both halves of the distributed trace are visible at one /debug/traces.
func (c *Client) endAndExport(span *obs.Span, err error) {
	if span == nil {
		return
	}
	if err != nil {
		span.SetError()
	}
	tid := span.TraceID()
	span.End()
	c.exportTrace(tid)
}

// exportTrace POSTs the locally collected records of one trace to the
// server's /debug/traces ingest endpoint. Best-effort: telemetry delivery
// must never fail an operation, so errors are only debug-logged.
func (c *Client) exportTrace(tid obs.TraceID) {
	if tid.IsZero() {
		return
	}
	records, ok := obs.TraceRecords(tid)
	if !ok {
		return
	}
	blob, err := json.Marshal(records)
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/debug/traces", bytes.NewReader(blob))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		obs.Logger().Debug("trace export failed", "err", err)
		return
	}
	defer resp.Body.Close()
	//mhlint:ignore errcheck best-effort drain so the connection can be reused
	_, _ = io.Copy(io.Discard, resp.Body)
}

// parseContentRangeStart extracts the first byte offset of a
// "bytes START-END/TOTAL" Content-Range header.
func parseContentRangeStart(v string) (int64, error) {
	v, ok := strings.CutPrefix(v, "bytes ")
	if !ok {
		return 0, fmt.Errorf("%w: bad Content-Range", ErrHub)
	}
	dash := strings.IndexByte(v, '-')
	if dash < 0 {
		return 0, fmt.Errorf("%w: bad Content-Range", ErrHub)
	}
	start, err := strconv.ParseInt(v[:dash], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad Content-Range: %v", ErrHub, err)
	}
	return start, nil
}
