package hub

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// packedRepo packs a dlv repository into an in-memory archive stream.
func packedRepo(t *testing.T, root string) io.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := PackRepo(root, &buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// gatewayFor boots a stateless gateway over the cluster's peers and returns
// a client pointed at it.
func gatewayFor(t *testing.T, tc *testCluster) (*Gateway, *Client) {
	t.Helper()
	gw, err := NewGateway(ClusterConfig{
		Peers:       tc.urls,
		Replicas:    tc.cfg.Replicas,
		PeerTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return gw, NewClientWith(ts.URL, Options{Timeout: 5 * time.Second, Retries: 2, BaseBackoff: 10 * time.Millisecond})
}

func TestGatewayRoutesPublishAndPull(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	_, client := gatewayFor(t, tc)
	if err := client.Publish(makeRepo(t, "m"), "via-gateway"); err != nil {
		t.Fatal(err)
	}
	// The gateway holds nothing itself; the blob landed on exactly the
	// name's two owners.
	if got := tc.replicaCount("via-gateway"); got != 2 {
		t.Fatalf("replicas after gateway publish: %d, want 2", got)
	}
	if err := client.Pull("via-gateway", t.TempDir()); err != nil {
		t.Fatalf("pull through gateway: %v", err)
	}
}

func TestGatewayPullFailsOverDeadOwner(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	_, client := gatewayFor(t, tc)
	if err := client.Publish(makeRepo(t, "m"), "failover-model"); err != nil {
		t.Fatal(err)
	}
	// Kill the primary owner; the gateway must serve the pull from the
	// surviving replica, digest-verified end to end.
	primary := tc.nodes[0].server().cluster.ring.Owners("failover-model", 1)[0]
	for i, u := range tc.urls {
		if u == primary {
			tc.nodes[i].kill()
		}
	}
	if err := client.Pull("failover-model", t.TempDir()); err != nil {
		t.Fatalf("pull with dead primary: %v", err)
	}
}

func TestGatewaySearchMergesAndDedups(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	_, client := gatewayFor(t, tc)
	names := []string{"search-a", "search-b", "search-c"}
	for _, name := range names {
		if err := client.Publish(makeRepo(t, "m"), name); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := client.Search("search-")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("merged search results: %d (%v), want 3 deduplicated names", len(infos), infos)
	}
	for i, name := range names {
		if infos[i].Name != name {
			t.Fatalf("result %d: %q, want %q (sorted)", i, infos[i].Name, name)
		}
	}

	// With one node down every name still has a live replica (replicas=2
	// over 3 nodes), so the fanout keeps answering complete results.
	tc.nodes[0].kill()
	infos, err = client.Search("search-")
	if err != nil {
		t.Fatalf("search with a dead peer: %v", err)
	}
	if len(infos) != 3 {
		t.Fatalf("search results with a dead peer: %d, want 3", len(infos))
	}
}

func TestGatewaySearchAllPeersDown(t *testing.T) {
	tc := newTestCluster(t, 2, 2)
	_, client := gatewayFor(t, tc)
	tc.nodes[0].kill()
	tc.nodes[1].kill()
	if _, err := client.Search("anything"); !errors.Is(err, ErrHub) {
		t.Fatalf("search with every peer down: %v, want ErrHub", err)
	}
}

// TestGatewayPullResumesAcrossNodeDeath is the mid-stream kill scenario:
// the owner serving a pull cuts the stream partway and dies; the client's
// Range resume goes back through the gateway, which fails over to the
// surviving replica, and the download completes digest-verified.
func TestGatewayPullResumesAcrossNodeDeath(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	if err := tc.client(0).Publish(makeRepo(t, "m"), "cut-model"); err != nil {
		t.Fatal(err)
	}
	primary := tc.nodes[0].server().cluster.ring.Owners("cut-model", 1)[0]
	var primaryNode *testNode
	for i, u := range tc.urls {
		if u == primary {
			primaryNode = tc.nodes[i]
		}
	}
	// Restart the primary with a lethal fault: the first full-archive pull
	// is severed after 100 bytes and the whole node dies with it.
	primaryNode.kill()
	var once sync.Once
	primaryNode.wrap = func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/api/pull" || r.Header.Get("Range") != "" {
				next.ServeHTTP(w, r)
				return
			}
			once.Do(func() {
				cw := &killingWriter{ResponseWriter: w, remaining: 100}
				next.ServeHTTP(cw, r)
				if hj, ok := w.(http.Hijacker); ok {
					if conn, _, err := hj.Hijack(); err == nil {
						//mhlint:ignore errcheck the connection is being severed on purpose
						_ = conn.Close()
					}
				}
				go primaryNode.kill()
			})
		})
	}
	tc.restart(primaryNode)

	_, client := gatewayFor(t, tc)
	if err := client.Pull("cut-model", t.TempDir()); err != nil {
		t.Fatalf("pull across a mid-stream node death: %v", err)
	}
	primaryNode.wg.Wait()
}

// killingWriter truncates the response after its byte budget, mimicking a
// crash mid-stream.
type killingWriter struct {
	http.ResponseWriter
	remaining int64
}

var errTestCut = errors.New("stream cut (test fault injection)")

func (c *killingWriter) Write(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, errTestCut
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.ResponseWriter.Write(p)
	c.remaining -= int64(n)
	if err == nil && c.remaining <= 0 {
		if f, ok := c.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		err = errTestCut
	}
	return n, err
}

// TestGatewayReadThroughDuringRebalance grows a 2-node cluster to 3 nodes
// and pulls a name whose ownership moved, through a gateway that already
// sees the 3-node ring: the new owner has no copy yet, so the gateway must
// read through to the node that still holds it.
func TestGatewayReadThroughDuringRebalance(t *testing.T) {
	tc := newTestCluster(t, 3, 1)
	oldRing, err := NewRing(tc.urls[:2], 0)
	if err != nil {
		t.Fatal(err)
	}
	newRing := tc.nodes[0].server().cluster.ring
	name := ""
	for i := 0; i < 10000; i++ {
		cand := fmt.Sprintf("rebalanced-%d", i)
		if newRing.Owners(cand, 1)[0] == tc.urls[2] && oldRing.Owners(cand, 1)[0] != tc.urls[2] {
			name = cand
			break
		}
	}
	if name == "" {
		t.Fatal("no moved name found")
	}
	// Plant the blob on its pre-growth owner only (direct replicate push,
	// as the old 2-node cluster would have left it).
	oldOwner := oldRing.Owners(name, 1)[0]
	var oldIdx int
	for i, u := range tc.urls {
		if u == oldOwner {
			oldIdx = i
		}
	}
	srv := tc.nodes[oldIdx].server()
	root := makeRepo(t, "m")
	tmpName, digest, size, err := srv.spoolBody(packedRepo(t, root))
	if err != nil {
		t.Fatal(err)
	}
	info := RepoInfo{Name: name, SizeBytes: size, PublishedAt: "2026-01-01T00:00:00Z", Models: []string{"m"}, SHA256: digest}
	if _, err := srv.storeBlob(tmpName, info, func(RepoInfo, bool) bool { return true }); err != nil {
		t.Fatal(err)
	}

	// The gateway routes to the new owner first, gets a 404, and reads
	// through to the old owner: the pull never fails.
	_, client := gatewayFor(t, tc)
	if err := client.Pull(name, t.TempDir()); err != nil {
		t.Fatalf("pull during rebalance through gateway: %v", err)
	}
	// Anti-entropy on the new owner converges it; the pull then serves
	// from the new owner directly.
	if _, err := tc.nodes[2].server().RepairOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !tc.nodes[2].hasBlob(name) {
		t.Fatal("new owner did not converge")
	}
	if err := client.Pull(name, t.TempDir()); err != nil {
		t.Fatalf("pull after convergence: %v", err)
	}
}
