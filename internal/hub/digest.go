package hub

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
)

// DigestHeader carries the hex SHA-256 of a transferred archive. Publishes
// send it so the server can verify the upload end to end; pulls receive it
// so the client can verify the download and guard resumed Range requests
// (via If-Range on the matching ETag).
const DigestHeader = "X-Content-SHA256"

// digestString renders a finished SHA-256 sum as the lowercase hex form used
// in DigestHeader, ETags, and blob file names.
func digestString(sum []byte) string { return hex.EncodeToString(sum) }

// fileDigest hashes a file on disk, returning its hex SHA-256 and size. Used
// when reconciling a server data directory whose index lost (or predates)
// the digest of a blob.
func fileDigest(path string) (string, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return "", 0, fmt.Errorf("%w: hashing %s: %v", ErrHub, path, err)
	}
	return digestString(h.Sum(nil)), n, nil
}

// etagFor wraps a digest in the strong-ETag quoting http.ServeContent and
// If-Range expect.
func etagFor(digest string) string { return `"` + digest + `"` }
