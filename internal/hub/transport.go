package hub

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"modelhub/internal/obs"
)

// Transfer metrics (DESIGN.md §8): resolved once from the default registry;
// all no-ops until a binary calls obs.Enable.
var (
	mPublishBytes   = obs.GetHistogram("hub.transfer.publish.bytes")
	mPullBytes      = obs.GetHistogram("hub.transfer.pull.bytes")
	mPullResumed    = obs.GetCounter("hub.transfer.pull.resumed_requests")
	mRetries        = obs.GetCounter("hub.transfer.retries")
	mResumes        = obs.GetCounter("hub.transfer.resumes")
	mDigestMismatch = obs.GetCounter("hub.transfer.digest_mismatch")
)

// Options tunes the client-side transfer behaviour: per-attempt timeouts,
// a progress watchdog for streaming bodies, and bounded retries with
// exponential backoff + jitter on idempotent requests (search, pull).
// The zero value of any field selects its default; negative values disable
// the mechanism entirely.
type Options struct {
	// Timeout bounds one whole attempt of a small control request
	// (search). Streaming transfers are bounded by StallTimeout instead,
	// so a large archive on a slow link is never killed by a fixed
	// ceiling. Default 30s.
	Timeout time.Duration
	// StallTimeout aborts a publish upload or pull download whose body
	// makes no progress for this long. Default 30s.
	StallTimeout time.Duration
	// Retries is the number of extra attempts (after the first) for
	// idempotent requests. Pull retries resume from the verified byte
	// offset via a Range request. Default 2.
	Retries int
	// BaseBackoff and MaxBackoff shape the exponential backoff between
	// retries; each delay is jittered into [d/2, d]. Defaults 100ms / 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterSeed seeds the backoff jitter source. Zero selects a
	// process-unique seed; tests pin it to make delay sequences
	// reproducible.
	JitterSeed int64

	// rng is the per-operation jitter source, attached by withDefaults.
	// Each operation (one publish, one search, one pull) owns its source,
	// so concurrent clients never serialize on the global math/rand lock.
	rng *rand.Rand
}

// withDefaults resolves zero fields to defaults and negative fields to off.
func (o Options) withDefaults() Options {
	pick := func(v, def time.Duration) time.Duration {
		if v < 0 {
			return 0
		}
		if v == 0 {
			return def
		}
		return v
	}
	o.Timeout = pick(o.Timeout, 30*time.Second)
	o.StallTimeout = pick(o.StallTimeout, 30*time.Second)
	o.BaseBackoff = pick(o.BaseBackoff, 100*time.Millisecond)
	o.MaxBackoff = pick(o.MaxBackoff, 5*time.Second)
	switch {
	case o.Retries < 0:
		o.Retries = 0
	case o.Retries == 0:
		o.Retries = 2
	}
	seed := o.JitterSeed
	if seed == 0 {
		// Uncorrelated across concurrent operations: a fixed process base
		// mixed with a monotonic counter, no clock reads per operation.
		seed = jitterSeedBase ^ jitterSeedSeq.Add(1)
	}
	o.rng = rand.New(rand.NewSource(seed))
	return o
}

// jitterSeedBase and jitterSeedSeq derive per-operation jitter seeds when
// Options.JitterSeed is zero.
var (
	jitterSeedBase = time.Now().UnixNano()
	jitterSeedSeq  atomic.Int64
)

// DefaultHTTPClient builds the client used when Client.HTTP is nil: dial and
// response-header timeouts so a hung or unreachable server fails fast, but
// no whole-request ceiling — streaming transfers are guarded by the
// per-attempt stall watchdog instead.
func DefaultHTTPClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			Proxy: http.ProxyFromEnvironment,
			DialContext: (&net.Dialer{
				Timeout:   10 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			ResponseHeaderTimeout: 30 * time.Second,
			IdleConnTimeout:       90 * time.Second,
			MaxIdleConns:          100,
			ExpectContinueTimeout: time.Second,
		},
	}
}

// transientError marks a failure worth retrying: connection errors, cut
// streams, 5xx responses. Anything unmarked (4xx, digest-verified protocol
// violations, local filesystem errors) is permanent.
type transientError struct{ err error }

func (t transientError) Error() string { return t.err.Error() }
func (t transientError) Unwrap() error { return t.err }

// transientf builds an ErrHub-wrapped retryable error.
func transientf(format string, args ...any) error {
	return transientError{fmt.Errorf("%w: "+format, append([]any{ErrHub}, args...)...)}
}

// isTransient reports whether err is safe and useful to retry.
func isTransient(err error) bool {
	var t transientError
	return errors.As(err, &t)
}

// retry runs op, retrying transient failures up to o.Retries times with
// jittered exponential backoff. Each attempt gets its own timeout context
// when o.Timeout is set. Intended for idempotent control requests; pull
// carries cross-attempt resume state and drives backoffLoop directly.
func retry(ctx context.Context, o Options, op func(context.Context) error) error {
	attempt := 0
	for {
		err := runAttempt(ctx, o.Timeout, op)
		if err == nil || !isTransient(err) || attempt >= o.Retries {
			return ctxAbort(ctx, err)
		}
		attempt++
		mRetries.Inc()
		if serr := sleepCtx(ctx, backoffDelay(attempt, o)); serr != nil {
			return ctxAbort(ctx, err)
		}
	}
}

// ctxAbort surfaces caller cancellation: when the operation context ended,
// the attempt's own error (usually a wrapped transport failure that lost
// the cause) is replaced by one carrying ctx.Err(), so callers can
// errors.Is(err, context.Canceled) on an aborted transfer.
func ctxAbort(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("%w: aborted: %w", ErrHub, cerr)
	}
	return err
}

// runAttempt executes one attempt under an optional per-attempt deadline.
func runAttempt(ctx context.Context, timeout time.Duration, op func(context.Context) error) error {
	if timeout <= 0 {
		return op(ctx)
	}
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	return op(actx)
}

// backoffDelay is the jittered exponential delay before retry `attempt`
// (1-based): base·2^(attempt-1) capped at max, then jittered into [d/2, d].
// Jitter draws from the operation's own seeded source (withDefaults), never
// the globally locked math/rand state.
func backoffDelay(attempt int, o Options) time.Duration {
	d := o.BaseBackoff
	for i := 1; i < attempt && d < o.MaxBackoff; i++ {
		d *= 2
	}
	if o.MaxBackoff > 0 && d > o.MaxBackoff {
		d = o.MaxBackoff
	}
	if d <= 0 {
		return 0
	}
	rng := o.rng
	if rng == nil {
		// Options that skipped withDefaults (hand-built in tests).
		rng = rand.New(rand.NewSource(jitterSeedBase ^ jitterSeedSeq.Add(1)))
	}
	return d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
}

// sleepCtx waits for d or until ctx is done, whichever comes first. It is
// the retry loop's backoff primitive: timer + select, so a cancelled context
// aborts the wait immediately (and gohygiene's no-time.Sleep rule holds).
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// stallReader watches a streaming body for progress: every successful Read
// re-arms a watchdog timer that cancels the attempt's context when
// StallTimeout passes with no bytes. This bounds hung transfers without
// putting a fixed ceiling on large-but-moving ones.
type stallReader struct {
	r     io.Reader
	d     time.Duration
	timer *time.Timer
}

// newStallReader arms a watchdog around r that fires cancel after d without
// progress. A non-positive d disables the watchdog.
func newStallReader(r io.Reader, cancel context.CancelFunc, d time.Duration) *stallReader {
	s := &stallReader{r: r, d: d}
	if d > 0 {
		s.timer = time.AfterFunc(d, func() { cancel() })
	}
	return s
}

func (s *stallReader) Read(p []byte) (int, error) {
	n, err := s.r.Read(p)
	if s.timer != nil && n > 0 {
		s.timer.Reset(s.d)
	}
	return n, err
}

// stop disarms the watchdog; call it as soon as the copy finishes so a slow
// caller can't be cancelled retroactively.
func (s *stallReader) stop() {
	if s.timer != nil {
		s.timer.Stop()
	}
}
