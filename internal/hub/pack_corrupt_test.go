package hub

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tarGz builds a tar.gz archive with the given entries in memory.
func tarGz(t *testing.T, entries map[string]string) []byte {
	t.Helper()
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	tw := tar.NewWriter(gz)
	for name, body := range entries {
		hdr := &tar.Header{Name: name, Mode: 0o644, Size: int64(len(body)), Typeflag: tar.TypeReg}
		if err := tw.WriteHeader(hdr); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write([]byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// A truncated gzip trailer (CRC/length cut off after the tar end marker)
// must surface as an error, not a silently short unpack.
func TestUnpackDetectsTruncatedGzipTrailer(t *testing.T) {
	blob := tarGz(t, map[string]string{".dlv/config": "x"})
	// The gzip trailer is the last 8 bytes (CRC32 + ISIZE). Cut into it.
	truncated := blob[:len(blob)-4]
	err := UnpackRepo(bytes.NewReader(truncated), t.TempDir())
	if err == nil {
		t.Fatal("truncated gzip trailer unpacked cleanly")
	}
	if !errors.Is(err, ErrHub) {
		t.Fatalf("error not wrapped as ErrHub: %v", err)
	}
}

// A flipped byte in the stored CRC must fail the unpack.
func TestUnpackDetectsCorruptGzipCRC(t *testing.T) {
	blob := tarGz(t, map[string]string{".dlv/config": "x"})
	blob[len(blob)-8] ^= 0xff // first CRC byte of the gzip trailer
	err := UnpackRepo(bytes.NewReader(blob), t.TempDir())
	if err == nil {
		t.Fatal("corrupt gzip CRC unpacked cleanly")
	}
	if !errors.Is(err, ErrHub) {
		t.Fatalf("error not wrapped as ErrHub: %v", err)
	}
}

// "..foo" is a legitimate file name, not upward traversal; it must be
// classified as "outside .dlv", not rejected as escaping the root.
func TestUnpackDotDotPrefixNameNotTraversal(t *testing.T) {
	blob := tarGz(t, map[string]string{"..foo": "x"})
	err := UnpackRepo(bytes.NewReader(blob), t.TempDir())
	if err == nil {
		t.Fatal("entry outside .dlv unpacked cleanly")
	}
	if strings.Contains(err.Error(), "escapes root") {
		t.Fatalf("%q misclassified as traversal: %v", "..foo", err)
	}
	if !strings.Contains(err.Error(), "outside .dlv") {
		t.Fatalf("unexpected rejection reason: %v", err)
	}
}

// A dot-dot-prefixed name nested under .dlv is accepted and extracted.
func TestUnpackAcceptsDotDotPrefixedNameInsideDlv(t *testing.T) {
	blob := tarGz(t, map[string]string{".dlv/..cache": "payload"})
	root := t.TempDir()
	if err := UnpackRepo(bytes.NewReader(blob), root); err != nil {
		t.Fatalf("legitimate ..-prefixed name rejected: %v", err)
	}
	got, err := os.ReadFile(filepath.Join(root, ".dlv", "..cache"))
	if err != nil || string(got) != "payload" {
		t.Fatalf("extracted file = %q, %v", got, err)
	}
}

// Real traversal still dies, for every spelling.
func TestUnpackStillRejectsRealTraversal(t *testing.T) {
	for _, name := range []string{"../evil", "..", ".dlv/../../evil", "/abs/evil"} {
		blob := tarGz(t, map[string]string{name: "x"})
		err := UnpackRepo(bytes.NewReader(blob), t.TempDir())
		if err == nil {
			t.Fatalf("%q unpacked cleanly", name)
		}
		if !errors.Is(err, ErrHub) {
			t.Fatalf("%q: error not wrapped as ErrHub: %v", name, err)
		}
	}
}

// Truncation inside a file body (mid-deflate) is also reported.
func TestUnpackDetectsTruncatedBody(t *testing.T) {
	blob := tarGz(t, map[string]string{".dlv/weights": strings.Repeat("w", 1<<16)})
	err := UnpackRepo(bytes.NewReader(blob[:len(blob)/2]), t.TempDir())
	if err == nil {
		t.Fatal("half an archive unpacked cleanly")
	}
	if !errors.Is(err, ErrHub) {
		t.Fatalf("error not wrapped as ErrHub: %v", err)
	}
}
