package hub

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"modelhub/internal/dlv"
	"modelhub/internal/obs"
)

// maxPublishBytes bounds one published archive (compressed).
const maxPublishBytes = 1 << 30

// RepoInfo is the search-result record for one published repository.
type RepoInfo struct {
	Name        string   `json:"name"`
	SizeBytes   int64    `json:"size_bytes"`
	PublishedAt string   `json:"published_at"`
	Models      []string `json:"models"`
}

// Server is the hosted ModelHub: it stores published repositories on disk
// and answers search/pull requests. Create one with NewServer and mount its
// Handler on an http.Server (or httptest).
type Server struct {
	dir string
	mu  sync.RWMutex
	// index holds metadata per published name.
	index map[string]RepoInfo
	now   func() time.Time
}

// NewServer stores published repositories under dir.
func NewServer(dir string) (*Server, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHub, err)
	}
	s := &Server{dir: dir, index: map[string]RepoInfo{}, now: time.Now}
	if err := s.loadIndex(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Server) indexPath() string { return filepath.Join(s.dir, "index.json") }

func (s *Server) loadIndex() error {
	blob, err := os.ReadFile(s.indexPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("%w: %v", ErrHub, err)
	}
	if err := json.Unmarshal(blob, &s.index); err != nil {
		return fmt.Errorf("%w: corrupt index: %v", ErrHub, err)
	}
	return nil
}

func (s *Server) saveIndexLocked() error {
	blob, err := json.MarshalIndent(s.index, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(s.indexPath(), blob, 0o644)
}

func (s *Server) blobPath(name string) string {
	// Names are restricted to a safe charset by validateName.
	return filepath.Join(s.dir, name+".tar.gz")
}

func validateName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("%w: bad repository name %q", ErrHub, name)
	}
	for _, r := range name {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
			r == '-' || r == '_' || r == '.') {
			return fmt.Errorf("%w: bad repository name %q", ErrHub, name)
		}
	}
	if strings.HasPrefix(name, ".") {
		return fmt.Errorf("%w: bad repository name %q", ErrHub, name)
	}
	return nil
}

// Handler returns the HTTP API:
//
//	POST /api/publish?name=N   (body: tar.gz)  -> 200
//	GET  /api/search?q=substr                  -> JSON []RepoInfo
//	GET  /api/pull?name=N                      -> tar.gz
//
// The mux is wrapped in the obs middleware stack: panic recovery is always
// active (a panicking handler yields a 500 with an ErrHub body instead of a
// dead connection), and request metrics under hub.http.* plus structured
// request logs follow the global obs gate.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/publish", s.handlePublish)
	mux.HandleFunc("/api/search", s.handleSearch)
	mux.HandleFunc("/api/pull", s.handlePull)
	return obs.WrapHandler(mux, obs.MiddlewareOptions{
		Prefix:    "hub.http",
		PanicBody: ErrHub.Error() + ": internal server error",
	})
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	name := r.URL.Query().Get("name")
	if err := validateName(name); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxPublishBytes)); err != nil {
		http.Error(w, "archive too large or unreadable: "+err.Error(), http.StatusRequestEntityTooLarge)
		return
	}
	models, err := inspectRepo(buf.Bytes())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.WriteFile(s.blobPath(name), buf.Bytes(), 0o644); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.index[name] = RepoInfo{
		Name:        name,
		SizeBytes:   int64(buf.Len()),
		PublishedAt: s.now().UTC().Format(time.RFC3339),
		Models:      models,
	}
	if err := s.saveIndexLocked(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// inspectRepo unpacks a published archive into a temp dir and lists its
// model names, validating the archive in the process. For repositories with
// an archived version, the first archived snapshot is probed at byte-plane
// prefix 1 through the PAS concurrent engine — a cheap high-plane integrity
// check that rejects archives whose parameter store cannot be read back.
func inspectRepo(blob []byte) ([]string, error) {
	tmp, err := os.MkdirTemp("", "hub-inspect-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	if err := UnpackRepo(bytes.NewReader(blob), tmp); err != nil {
		return nil, err
	}
	repo, err := dlv.Open(tmp)
	if err != nil {
		return nil, err
	}
	versions, err := repo.List()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var models []string
	probed := false
	for _, v := range versions {
		if !seen[v.Name] {
			seen[v.Name] = true
			models = append(models, v.Name)
		}
		if !probed && v.Archived && len(v.Snapshots) > 0 {
			probed = true
			if _, err := repo.Weights(v.ID, v.Snapshots[0], 1); err != nil {
				return nil, fmt.Errorf("%w: archived weights unreadable: %v", ErrHub, err)
			}
		}
	}
	sort.Strings(models)
	return models, nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	q := strings.ToLower(r.URL.Query().Get("q"))
	s.mu.RLock()
	var out []RepoInfo
	for _, info := range s.index {
		if q == "" || strings.Contains(strings.ToLower(info.Name), q) || matchModels(info.Models, q) {
			out = append(out, info)
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	w.Header().Set("Content-Type", "application/json")
	//mhlint:ignore errcheck a response-write failure means the client went away; nothing to do
	_ = json.NewEncoder(w).Encode(out)
}

func matchModels(models []string, q string) bool {
	for _, m := range models {
		if strings.Contains(strings.ToLower(m), q) {
			return true
		}
	}
	return false
}

func (s *Server) handlePull(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	name := r.URL.Query().Get("name")
	if err := validateName(name); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.RLock()
	_, ok := s.index[name]
	s.mu.RUnlock()
	if !ok {
		http.Error(w, "unknown repository", http.StatusNotFound)
		return
	}
	blob, err := os.ReadFile(s.blobPath(name))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/gzip")
	//mhlint:ignore errcheck a response-write failure means the client went away; nothing to do
	_, _ = w.Write(blob)
}
