package hub

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"modelhub/internal/dlv"
	"modelhub/internal/obs"
)

// maxPublishBytes bounds one published archive (compressed). A var so the
// limit-handling tests can lower it without uploading a gigabyte.
var maxPublishBytes int64 = 1 << 30

// tmpPrefix marks in-flight files in the data directory. validateName
// rejects leading dots, so no blob can ever collide with the prefix, and
// startup reconciliation may delete anything carrying it.
const tmpPrefix = ".tmp-"

// RepoInfo is the search-result record for one published repository.
type RepoInfo struct {
	Name        string   `json:"name"`
	SizeBytes   int64    `json:"size_bytes"`
	PublishedAt string   `json:"published_at"`
	Models      []string `json:"models"`
	// SHA256 is the hex digest of the stored archive; it names the blob
	// file on disk and travels in DigestHeader on pulls.
	SHA256 string `json:"sha256,omitempty"`
}

// Server is the hosted ModelHub: it stores published repositories on disk
// and answers search/pull requests. Create one with NewServer and mount its
// Handler on an http.Server (or httptest).
//
// Storage is crash- and race-safe: publishes stream to a temp file, are
// hashed while streaming, and are promoted with one atomic rename to a
// content-addressed blob (<name>.<sha256>.tar.gz) under a per-name lock;
// the index is journaled the same way (temp + rename). The commit order is
// blob first, index second, and old blobs are unlinked only after the index
// points away from them — so a concurrent pull never sees a torn archive
// and a crash at any point is reconciled away at the next startup.
type Server struct {
	dir string
	mu  sync.RWMutex
	// index holds metadata per published name.
	index map[string]RepoInfo
	now   func() time.Time

	// lockMu guards nameLocks; each per-name mutex serializes the
	// promote + index-update critical section of concurrent publishes.
	// Entries are refcounted and removed once uncontended, so the map
	// stays bounded by the number of in-flight publishes, not the number
	// of names ever published.
	lockMu    sync.Mutex
	nameLocks map[string]*nameLock

	// cluster is non-nil once EnableCluster made this node part of a
	// multi-node hub: it holds the ring, the replication factor, and the
	// peer HTTP client used for replicate pushes and anti-entropy repair.
	cluster *cluster
}

// nameLock is one entry of Server.nameLocks: the per-name mutex plus the
// number of holders/waiters keeping the entry alive.
type nameLock struct {
	mu   sync.Mutex
	refs int
}

// NewServer stores published repositories under dir. Leftover state from a
// crashed predecessor (temp files, promoted-but-unindexed blobs,
// indexed-but-missing entries, pre-digest blob layouts) is reconciled so
// the loaded index and the directory always agree.
func NewServer(dir string) (*Server, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHub, err)
	}
	s := &Server{dir: dir, index: map[string]RepoInfo{}, now: time.Now, nameLocks: map[string]*nameLock{}}
	if err := s.loadIndex(); err != nil {
		return nil, err
	}
	if err := s.reconcile(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Server) indexPath() string { return filepath.Join(s.dir, "index.json") }

func (s *Server) loadIndex() error {
	blob, err := os.ReadFile(s.indexPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("%w: %v", ErrHub, err)
	}
	if err := json.Unmarshal(blob, &s.index); err != nil {
		return fmt.Errorf("%w: corrupt index: %v", ErrHub, err)
	}
	return nil
}

// reconcile repairs the data directory after a crash or an upgrade:
//
//   - index entries whose blob is missing are dropped (a crash before the
//     blob rename, or manual deletion) unless a legacy <name>.tar.gz blob
//     exists, which is hashed and migrated to the content-addressed layout;
//   - temp files and blobs no index entry references (a crash between blob
//     promotion and index save) are deleted — that publish never became
//     visible, and after reconciliation it is unobservable.
func (s *Server) reconcile() error {
	dirty := false
	referenced := map[string]bool{"index.json": true}
	for name, info := range s.index {
		if info.SHA256 != "" {
			if _, err := os.Stat(s.blobPath(name, info.SHA256)); err == nil {
				referenced[blobFileName(name, info.SHA256)] = true
				continue
			}
		}
		legacy := filepath.Join(s.dir, name+".tar.gz")
		if _, err := os.Stat(legacy); err == nil {
			digest, size, err := fileDigest(legacy)
			if err != nil {
				return fmt.Errorf("%w: migrating %s: %v", ErrHub, name, err)
			}
			if err := os.Rename(legacy, s.blobPath(name, digest)); err != nil {
				return fmt.Errorf("%w: migrating %s: %v", ErrHub, name, err)
			}
			info.SHA256 = digest
			info.SizeBytes = size
			s.index[name] = info
			referenced[blobFileName(name, digest)] = true
			dirty = true
			continue
		}
		delete(s.index, name)
		dirty = true
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrHub, err)
	}
	for _, e := range entries {
		base := e.Name()
		if e.IsDir() || referenced[base] {
			continue
		}
		if strings.HasPrefix(base, tmpPrefix) || strings.HasSuffix(base, ".tar.gz") {
			if err := os.Remove(filepath.Join(s.dir, base)); err != nil {
				return fmt.Errorf("%w: removing stray %s: %v", ErrHub, base, err)
			}
		}
	}
	if dirty {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.saveIndexLocked()
	}
	return nil
}

// saveIndexLocked journals the index: marshal to a temp file, fsync, and
// atomically rename over index.json, so a reader (or a restarted server)
// sees either the old or the new index, never a torn one.
func (s *Server) saveIndexLocked() error {
	blob, err := json.MarshalIndent(s.index, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"index-*")
	if err != nil {
		return err
	}
	if err := writeSyncClose(tmp, blob); err != nil {
		//mhlint:ignore errcheck the write error takes precedence over cleanup
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.indexPath()); err != nil {
		//mhlint:ignore errcheck the rename error takes precedence over cleanup
		_ = os.Remove(tmp.Name())
		return err
	}
	return nil
}

// writeSyncClose writes blob to f, then fsyncs and closes, reporting the
// first failure.
func writeSyncClose(f *os.File, blob []byte) error {
	if _, err := f.Write(blob); err != nil {
		//mhlint:ignore errcheck the write error takes precedence over cleanup
		_ = f.Close()
		return err
	}
	return syncClose(f)
}

// syncClose fsyncs and closes an already-written file, reporting the first
// failure — the durability step before an atomic rename promotes the file.
func syncClose(f *os.File) error {
	if err := f.Sync(); err != nil {
		//mhlint:ignore errcheck the sync error takes precedence over cleanup
		_ = f.Close()
		return err
	}
	return f.Close()
}

// blobFileName is the content-addressed base name of a stored archive.
func blobFileName(name, digest string) string { return name + "." + digest + ".tar.gz" }

func (s *Server) blobPath(name, digest string) string {
	// Names are restricted to a safe charset by validateName; digests are
	// lowercase hex.
	return filepath.Join(s.dir, blobFileName(name, digest))
}

// lockName serializes publishes of one name; the returned func releases.
// The entry is refcounted: the last releaser deletes it, so names that are
// not being published right now cost no memory — the map is bounded by
// concurrent publishes, not by every name the server ever stored.
func (s *Server) lockName(name string) func() {
	s.lockMu.Lock()
	l := s.nameLocks[name]
	if l == nil {
		l = &nameLock{}
		s.nameLocks[name] = l
	}
	l.refs++
	s.lockMu.Unlock()
	l.mu.Lock()
	return func() {
		l.mu.Unlock()
		s.lockMu.Lock()
		l.refs--
		if l.refs == 0 {
			delete(s.nameLocks, name)
		}
		s.lockMu.Unlock()
	}
}

// nameLockCount reports the live nameLocks entries (tests assert bounds).
func (s *Server) nameLockCount() int {
	s.lockMu.Lock()
	defer s.lockMu.Unlock()
	return len(s.nameLocks)
}

func validateName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("%w: bad repository name %q", ErrHub, name)
	}
	for _, r := range name {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
			r == '-' || r == '_' || r == '.') {
			return fmt.Errorf("%w: bad repository name %q", ErrHub, name)
		}
	}
	if strings.HasPrefix(name, ".") {
		return fmt.Errorf("%w: bad repository name %q", ErrHub, name)
	}
	return nil
}

// Handler returns the HTTP API:
//
//	POST /api/publish?name=N   (body: tar.gz)  -> 200
//	GET  /api/search?q=substr                  -> JSON []RepoInfo
//	GET  /api/pull?name=N                      -> tar.gz (Range supported)
//
// Pull responses carry Content-Length, an X-Content-SHA256 digest header,
// and a digest-derived ETag, and honour Range/If-Range so interrupted
// clients resume from their verified offset.
//
// The mux is wrapped in the obs middleware stack: panic recovery is always
// active (a panicking handler yields a 500 with an ErrHub body instead of a
// dead connection), and request metrics under hub.http.* plus structured
// request logs follow the global obs gate.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/publish", s.handlePublish)
	mux.HandleFunc("/api/search", s.handleSearch)
	mux.HandleFunc("/api/pull", s.handlePull)
	// Cluster surface: replicate receives blobs pushed by owner peers and
	// repair triggers one anti-entropy sweep on demand (both answer 412
	// until EnableCluster is called); inventory lists the local index and
	// is always served — it is what peers diff against during repair.
	mux.HandleFunc("/api/replicate", s.handleReplicate)
	mux.HandleFunc("/api/inventory", s.handleInventory)
	mux.HandleFunc("/api/repair", s.handleRepair)
	// The flight recorder rides the API mux so every deployment (and every
	// httptest server in the suite) serves GET /debug/traces and accepts
	// client-side trace exports on POST. WrapHandler excludes /debug/ paths
	// from tracing, so scraping it cannot fill the ring with itself.
	mux.Handle("/debug/traces", obs.TracesHandler())
	return obs.WrapHandler(mux, obs.MiddlewareOptions{
		Prefix:    "hub.http",
		PanicBody: ErrHub.Error() + ": internal server error",
	})
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	name := r.URL.Query().Get("name")
	if err := validateName(name); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cl := s.cluster
	if cl != nil && r.Header.Get(ForwardedHeader) == "" && !cl.ring.Owns(name, cl.self, cl.replicas) {
		// Not an owner of this name: spool and hand the publish to the
		// replica set, exactly as the gateway would. ForwardedHeader breaks
		// forward loops when peers disagree about ring membership.
		s.forwardPublish(w, r, name)
		return
	}

	// Stream the body to a temp file, hashing as it lands: no whole-archive
	// buffer in memory, and nothing visible to search/pull until promotion.
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"publish-*")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	tmpName := tmp.Name()
	promoted := false
	defer func() {
		if !promoted {
			//mhlint:ignore errcheck best-effort cleanup of an unpromoted upload
			_ = os.Remove(tmpName)
		}
	}()
	h := sha256.New()
	size, err := io.Copy(io.MultiWriter(tmp, h), http.MaxBytesReader(w, r.Body, maxPublishBytes))
	if err != nil {
		//mhlint:ignore errcheck the copy error takes precedence over cleanup
		_ = tmp.Close()
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("archive exceeds the %d-byte publish limit", maxPublishBytes),
				http.StatusRequestEntityTooLarge)
			return
		}
		// The client disconnected or the body was malformed mid-upload;
		// nothing was promoted, so the failed publish is unobservable.
		http.Error(w, "upload aborted or unreadable: "+err.Error(), http.StatusBadRequest)
		return
	}
	digest := digestString(h.Sum(nil))
	if want := r.Header.Get(DigestHeader); want != "" && !strings.EqualFold(want, digest) {
		//mhlint:ignore errcheck the digest failure takes precedence over cleanup
		_ = tmp.Close()
		mDigestMismatch.Inc()
		http.Error(w, fmt.Sprintf("digest mismatch: body is %s, %s says %s", digest, DigestHeader, want),
			http.StatusBadRequest)
		return
	}
	if err := syncClose(tmp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	models, err := inspectArchive(tmpName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	info := RepoInfo{
		Name:        name,
		SizeBytes:   size,
		PublishedAt: s.now().UTC().Format(time.RFC3339),
		Models:      models,
		SHA256:      digest,
	}
	// Promote: blob rename first, index save second, old blob unlink last —
	// all under the per-name lock so concurrent publishes of one name
	// serialize and their blob/index states never interleave. A client
	// publish always replaces the current record.
	if _, err := s.storeBlob(tmpName, info, func(RepoInfo, bool) bool { return true }); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	promoted = true
	if cl != nil && r.Header.Get(ReplicaHeader) == "" {
		// Push the fresh record to the other owners while the publisher
		// waits: a 200 means every reachable replica holds the blob.
		// Unreachable peers are converged by the anti-entropy loop.
		cl.replicateOut(r.Context(), s, info)
	}
	mPublishBytes.Observe(float64(size))
	w.Header().Set(DigestHeader, digest)
	w.WriteHeader(http.StatusOK)
}

// storeBlob promotes a digest-verified temp file and its metadata record
// into the store under the per-name lock: blob rename first, index save
// second, superseded-blob unlink last — the same commit order as a direct
// publish, shared by replica receives and anti-entropy repair. accept
// decides, given the current entry, whether the incoming record replaces
// it (publishes always win; replicas only accept records at least as new
// as what they hold). When accept declines, the temp file is removed and
// stored is false.
func (s *Server) storeBlob(tmpName string, info RepoInfo, accept func(prev RepoInfo, exists bool) bool) (stored bool, err error) {
	unlock := s.lockName(info.Name)
	defer unlock()
	s.mu.RLock()
	prev, exists := s.index[info.Name]
	s.mu.RUnlock()
	if !accept(prev, exists) {
		//mhlint:ignore errcheck best-effort cleanup of a declined replica blob
		_ = os.Remove(tmpName)
		return false, nil
	}
	if err := os.Rename(tmpName, s.blobPath(info.Name, info.SHA256)); err != nil {
		return false, err
	}
	s.mu.Lock()
	s.index[info.Name] = info
	err = s.saveIndexLocked()
	if err != nil {
		// Roll the in-memory index back to match the persisted one.
		if exists {
			s.index[info.Name] = prev
		} else {
			delete(s.index, info.Name)
		}
	}
	s.mu.Unlock()
	if err != nil {
		return false, err
	}
	if exists && prev.SHA256 != "" && prev.SHA256 != info.SHA256 {
		// Unlink the superseded blob. In-flight pulls keep their open file
		// handle; new pulls already resolve the new digest.
		//mhlint:ignore errcheck best-effort removal; reconcile sweeps strays at next startup
		_ = os.Remove(s.blobPath(info.Name, prev.SHA256))
	}
	return true, nil
}

// inspectArchive unpacks a stored archive into a temp dir and lists its
// model names, validating the archive in the process. For repositories with
// an archived version, the first archived snapshot is probed at byte-plane
// prefix 1 through the PAS concurrent engine — a cheap high-plane integrity
// check that rejects archives whose parameter store cannot be read back.
func inspectArchive(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tmp, err := os.MkdirTemp("", "hub-inspect-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	if err := UnpackRepo(f, tmp); err != nil {
		return nil, err
	}
	repo, err := dlv.Open(tmp)
	if err != nil {
		return nil, err
	}
	versions, err := repo.List()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var models []string
	probed := false
	for _, v := range versions {
		if !seen[v.Name] {
			seen[v.Name] = true
			models = append(models, v.Name)
		}
		if !probed && v.Archived && len(v.Snapshots) > 0 {
			probed = true
			if _, err := repo.Weights(v.ID, v.Snapshots[0], 1); err != nil {
				return nil, fmt.Errorf("%w: archived weights unreadable: %v", ErrHub, err)
			}
		}
	}
	sort.Strings(models)
	return models, nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	q := strings.ToLower(r.URL.Query().Get("q"))
	s.mu.RLock()
	// Empty results must encode as the JSON array [], not null — strict
	// clients reject null where a list is promised.
	out := []RepoInfo{}
	for _, info := range s.index {
		if q == "" || strings.Contains(strings.ToLower(info.Name), q) || matchModels(info.Models, q) {
			out = append(out, info)
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	w.Header().Set("Content-Type", "application/json")
	//mhlint:ignore errcheck a response-write failure means the client went away; nothing to do
	_ = json.NewEncoder(w).Encode(out)
}

func matchModels(models []string, q string) bool {
	for _, m := range models {
		if strings.Contains(strings.ToLower(m), q) {
			return true
		}
	}
	return false
}

func (s *Server) handlePull(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	name := r.URL.Query().Get("name")
	if err := validateName(name); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Resolve the current digest and open its blob. Content addressing
	// makes the pair exact: an open handle always matches the digest it was
	// resolved from, even while a republish promotes a new blob. If the
	// blob vanished between the index read and the open (republish unlinked
	// it), the re-read index names the new digest.
	var info RepoInfo
	var f *os.File
	for attempt := 0; ; attempt++ {
		var ok bool
		s.mu.RLock()
		info, ok = s.index[name]
		s.mu.RUnlock()
		if !ok {
			http.Error(w, "unknown repository", http.StatusNotFound)
			return
		}
		var err error
		f, err = os.Open(s.blobPath(name, info.SHA256))
		if err == nil {
			break
		}
		if !os.IsNotExist(err) || attempt >= 4 {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if r.Header.Get("Range") != "" {
		mPullResumed.Inc()
	}
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set(DigestHeader, info.SHA256)
	w.Header().Set("ETag", etagFor(info.SHA256))
	cw := &countingResponseWriter{ResponseWriter: w}
	// ServeContent supplies Content-Length and Range/If-Range semantics
	// over the open (immutable) blob handle.
	http.ServeContent(cw, r, "", st.ModTime(), f)
	mPullBytes.Observe(float64(cw.n))
}

// countingResponseWriter counts response-body bytes for the
// hub.transfer.pull.bytes histogram.
type countingResponseWriter struct {
	http.ResponseWriter
	n int64
}

func (c *countingResponseWriter) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	c.n += int64(n)
	return n, err
}
