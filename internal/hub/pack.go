// Package hub implements the hosted ModelHub service (paper Sec. III, Fig.
// 3): a server that stores published DLV repositories and lets modelers
// discover (search) and reuse (pull) them, plus the client used by the
// `dlv publish / search / pull` commands. Repositories travel as tar.gz
// archives of their .dlv directory.
package hub

import (
	"archive/tar"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// ErrHub reports client/server-level failures.
var ErrHub = errors.New("hub: error")

// PackRepo archives the .dlv directory under root into a tar.gz stream.
func PackRepo(root string, w io.Writer) error {
	meta := filepath.Join(root, ".dlv")
	if _, err := os.Stat(meta); err != nil {
		return fmt.Errorf("%w: no repository at %s", ErrHub, root)
	}
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	err := filepath.Walk(meta, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		hdr, err := tar.FileInfoHeader(info, "")
		if err != nil {
			return err
		}
		hdr.Name = rel
		if info.IsDir() {
			hdr.Name += "/"
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		if info.IsDir() {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = io.Copy(tw, f)
		return err
	})
	if err != nil {
		return fmt.Errorf("%w: packing: %v", ErrHub, err)
	}
	if err := tw.Close(); err != nil {
		return err
	}
	return gz.Close()
}

// UnpackRepo extracts a tar.gz produced by PackRepo into root. Paths are
// sanitized: entries must stay under ".dlv/" and may not traverse upward.
// The gzip trailer is verified after the tar end marker, so a truncated or
// checksum-corrupted archive is always reported even when the tar stream
// itself looked complete.
func UnpackRepo(r io.Reader, root string) (err error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return fmt.Errorf("%w: bad archive: %v", ErrHub, err)
	}
	defer func() {
		if cerr := gz.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("%w: corrupt archive: %v", ErrHub, cerr)
		}
	}()
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			// The tar end marker can arrive before the gzip stream ends.
			// Drain the remainder so gzip verifies its CRC/length trailer —
			// a truncated trailer must not pass as a clean unpack.
			if _, derr := io.Copy(io.Discard, gz); derr != nil {
				return fmt.Errorf("%w: corrupt archive: %v", ErrHub, derr)
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("%w: reading archive: %v", ErrHub, err)
		}
		clean := filepath.Clean(filepath.FromSlash(hdr.Name))
		// Only a literal ".." path element traverses upward; a name that
		// merely starts with two dots (e.g. "..foo") is legitimate.
		if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) || filepath.IsAbs(clean) {
			return fmt.Errorf("%w: archive entry escapes root: %q", ErrHub, hdr.Name)
		}
		if clean != ".dlv" && !strings.HasPrefix(clean, ".dlv"+string(filepath.Separator)) {
			return fmt.Errorf("%w: archive entry outside .dlv: %q", ErrHub, hdr.Name)
		}
		dest := filepath.Join(root, clean)
		switch hdr.Typeflag {
		case tar.TypeDir:
			if err := os.MkdirAll(dest, 0o755); err != nil {
				return fmt.Errorf("%w: %v", ErrHub, err)
			}
		case tar.TypeReg:
			if err := os.MkdirAll(filepath.Dir(dest), 0o755); err != nil {
				return fmt.Errorf("%w: %v", ErrHub, err)
			}
			f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
			if err != nil {
				return fmt.Errorf("%w: %v", ErrHub, err)
			}
			if _, err := io.Copy(f, tr); err != nil { //nolint:gosec // local trusted archives
				_ = f.Close() //mhlint:ignore errcheck the copy error takes precedence over cleanup
				return fmt.Errorf("%w: %v", ErrHub, err)
			}
			if err := f.Close(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unsupported archive entry type %d", ErrHub, hdr.Typeflag)
		}
	}
}
