package hub

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"modelhub/internal/dlv"
	"modelhub/internal/obs"
)

// fastOpts keeps retry tests quick: real retries, millisecond backoff.
func fastOpts(retries int) Options {
	return Options{Retries: retries, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
}

// cutBody cuts a response body after `remaining` bytes with a transport
// error — the client-side view of a server killed mid-stream.
type cutBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (c *cutBody) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, errors.New("injected stream cut")
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.rc.Read(p)
	c.remaining -= int64(n)
	return n, err
}

func (c *cutBody) Close() error { return c.rc.Close() }

// flakyTransport is an http.RoundTripper that cuts the first `cuts` pull
// response bodies after cutAt bytes and records the Range header of every
// pull request it forwards.
type flakyTransport struct {
	base  http.RoundTripper
	cutAt int64
	cuts  int32 // remaining cuts

	mu     sync.Mutex
	ranges []string
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	isPull := strings.HasSuffix(req.URL.Path, "/api/pull")
	if isPull {
		f.mu.Lock()
		f.ranges = append(f.ranges, req.Header.Get("Range"))
		f.mu.Unlock()
	}
	resp, err := f.base.RoundTrip(req)
	if err != nil || !isPull {
		return resp, err
	}
	if atomic.AddInt32(&f.cuts, -1) >= 0 {
		resp.Body = &cutBody{rc: resp.Body, remaining: f.cutAt}
	}
	return resp, nil
}

func (f *flakyTransport) seenRanges() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.ranges...)
}

// A pull whose stream is cut at an arbitrary byte must resume from the
// verified offset via a Range request and produce a digest-clean repo.
func TestPullResumesAfterCutStream(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	resumesBefore := obs.GetCounter("hub.transfer.resumes").Value()

	_, client := newTestServer(t)
	if err := client.Publish(makeRepo(t, "resumed-model"), "r"); err != nil {
		t.Fatal(err)
	}
	infos, err := client.Search("r")
	if err != nil || len(infos) != 1 {
		t.Fatalf("search = %v, %v", infos, err)
	}
	cutAt := infos[0].SizeBytes / 2
	if cutAt <= 0 {
		t.Fatalf("archive too small to cut: %d bytes", infos[0].SizeBytes)
	}
	ft := &flakyTransport{base: http.DefaultTransport, cutAt: cutAt, cuts: 1}
	client.HTTP = &http.Client{Transport: ft}
	client.Opts = fastOpts(3)

	dest := t.TempDir()
	if err := client.Pull("r", dest); err != nil {
		t.Fatalf("pull with cut stream: %v", err)
	}
	repo, err := dlv.Open(dest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.VersionByName("resumed-model"); err != nil {
		t.Fatal(err)
	}
	// The second attempt must have resumed exactly at the cut offset.
	ranges := ft.seenRanges()
	want := fmt.Sprintf("bytes=%d-", cutAt)
	if len(ranges) != 2 || ranges[0] != "" || ranges[1] != want {
		t.Fatalf("pull ranges = %q, want [\"\" %q]", ranges, want)
	}
	if got := obs.GetCounter("hub.transfer.resumes").Value(); got != resumesBefore+1 {
		t.Fatalf("hub.transfer.resumes = %d, want %d", got, resumesBefore+1)
	}
}

// Every attempt cut and retries exhausted: the pull must fail AND leave the
// destination untouched so a later retry starts clean.
func TestPullCutEveryAttemptFailsClean(t *testing.T) {
	_, client := newTestServer(t)
	if err := client.Publish(makeRepo(t, "m"), "r"); err != nil {
		t.Fatal(err)
	}
	client.HTTP = &http.Client{Transport: &flakyTransport{base: http.DefaultTransport, cutAt: 16, cuts: 100}}
	client.Opts = fastOpts(2)
	dest := t.TempDir()
	if err := client.Pull("r", dest); !errors.Is(err, ErrHub) {
		t.Fatalf("pull = %v, want ErrHub", err)
	}
	assertDirClean(t, dest)
}

// assertDirClean fails if dest contains any entry (a partial .dlv, a
// staging dir, anything a failed pull might strand).
func assertDirClean(t *testing.T, dest string) {
	t.Helper()
	entries, err := os.ReadDir(dest)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("failed pull left %q in the destination", e.Name())
	}
}

// Regression for the partial-state bug family: a pull that dies during
// extraction must not leave a half-extracted .dlv that makes every retry
// fail with "destination already contains a repository".
func TestPullFailedExtractThenRetrySucceeds(t *testing.T) {
	root := makeRepo(t, "m")
	var mu sync.Mutex
	var blob []byte // current archive served for pulls
	setBlob := func(b []byte) {
		mu.Lock()
		blob = b
		mu.Unlock()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/pull", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		b := append([]byte(nil), blob...)
		mu.Unlock()
		sum := sha256.Sum256(b)
		w.Header().Set(DigestHeader, digestString(sum[:]))
		w.Header().Set("Content-Length", strconv.Itoa(len(b)))
		_, _ = w.Write(b)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var full strings.Builder
	if err := PackRepo(root, &full); err != nil {
		t.Fatal(err)
	}
	good := []byte(full.String())
	// Truncated archive with a *matching* digest: the download verifies but
	// extraction dies partway — exactly the mid-extract crash case.
	setBlob(good[:len(good)/2])

	client := NewClientWith(ts.URL, fastOpts(0))
	dest := t.TempDir()
	if err := client.Pull("r", dest); !errors.Is(err, ErrHub) {
		t.Fatalf("pull of truncated archive = %v, want ErrHub", err)
	}
	assertDirClean(t, dest)

	// The retry against a healthy server must succeed into the SAME dest.
	setBlob(good)
	if err := client.Pull("r", dest); err != nil {
		t.Fatalf("retry after failed extract: %v", err)
	}
	if _, err := dlv.Open(dest); err != nil {
		t.Fatal(err)
	}
}

// A body that never matches the advertised digest must fail after bounded
// retries with a digest error, never hand back a corrupt repo.
func TestPullDigestMismatchRejected(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	before := obs.GetCounter("hub.transfer.digest_mismatch").Value()

	mux := http.NewServeMux()
	mux.HandleFunc("/api/pull", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(DigestHeader, strings.Repeat("0", 64)) // never the body's digest
		w.Header().Set("Content-Length", "9")
		_, _ = w.Write([]byte("not-a-zip"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	client := NewClientWith(ts.URL, fastOpts(1))
	err := client.Pull("r", t.TempDir())
	if !errors.Is(err, ErrHub) || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("pull = %v, want digest mismatch", err)
	}
	if got := obs.GetCounter("hub.transfer.digest_mismatch").Value(); got <= before {
		t.Fatalf("hub.transfer.digest_mismatch did not increase (= %d)", got)
	}
}

// Search must retry transient 5xx responses and then succeed.
func TestSearchRetriesServerErrors(t *testing.T) {
	var calls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("/api/search", func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "wedged", http.StatusInternalServerError)
			return
		}
		_, _ = w.Write([]byte(`[{"name":"r"}]`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	out, err := NewClientWith(ts.URL, fastOpts(2)).Search("r")
	if err != nil || len(out) != 1 || out[0].Name != "r" {
		t.Fatalf("search = %v, %v", out, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("search attempts = %d, want 2", calls.Load())
	}
	// 4xx responses are permanent: no retry.
	calls.Store(0)
	mux2 := http.NewServeMux()
	mux2.HandleFunc("/api/search", func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "nope", http.StatusBadRequest)
	})
	ts2 := httptest.NewServer(mux2)
	defer ts2.Close()
	if _, err := NewClientWith(ts2.URL, fastOpts(3)).Search("r"); !errors.Is(err, ErrHub) {
		t.Fatalf("search on 400 = %v, want ErrHub", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("400 was retried %d times", calls.Load()-1)
	}
}

// A server that accepts the connection but never answers must trip the
// per-attempt timeout instead of hanging the client forever (the old
// http.DefaultClient behaviour).
func TestSearchTimesOutOnHungServer(t *testing.T) {
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/api/search", func(w http.ResponseWriter, r *http.Request) {
		<-release // hold the request until the test finishes
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	defer close(release) // LIFO: release the handler before ts.Close waits on it

	client := NewClientWith(ts.URL, Options{Timeout: 50 * time.Millisecond, Retries: -1})
	done := make(chan error, 1)
	go func() { _, err := client.Search("x"); done <- err }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrHub) {
			t.Fatalf("search = %v, want ErrHub timeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("search did not time out")
	}
}

// A pull body that stalls (no progress) must be aborted by the stall
// watchdog rather than blocking forever.
func TestPullStallWatchdogAborts(t *testing.T) {
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/api/pull", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "1024")
		_, _ = w.Write([]byte("partial"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		<-release // stall: promised 1024 bytes, never send the rest
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	defer close(release) // LIFO: release the handler before ts.Close waits on it

	client := NewClientWith(ts.URL, Options{StallTimeout: 100 * time.Millisecond, Retries: -1})
	done := make(chan error, 1)
	go func() { done <- client.Pull("r", t.TempDir()) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrHub) {
			t.Fatalf("pull = %v, want ErrHub stall abort", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stalled pull was not aborted")
	}
}

func TestBackoffDelayBounds(t *testing.T) {
	o := Options{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second}.withDefaults()
	for attempt := 1; attempt <= 10; attempt++ {
		for i := 0; i < 20; i++ {
			d := backoffDelay(attempt, o)
			if d < o.BaseBackoff/2 || d > o.MaxBackoff {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, o.BaseBackoff/2, o.MaxBackoff)
			}
		}
	}
}

func TestParseContentRangeStart(t *testing.T) {
	if start, err := parseContentRangeStart("bytes 42-99/100"); err != nil || start != 42 {
		t.Fatalf("start = %d, %v", start, err)
	}
	for _, bad := range []string{"", "bytes", "bytes x-9/10", "units 1-2/3"} {
		if _, err := parseContentRangeStart(bad); err == nil {
			t.Errorf("%q must not parse", bad)
		}
	}
}

func TestOptionsDefaultsAndDisable(t *testing.T) {
	d := Options{}.withDefaults()
	if d.Timeout <= 0 || d.StallTimeout <= 0 || d.Retries != 2 || d.BaseBackoff <= 0 || d.MaxBackoff < d.BaseBackoff {
		t.Fatalf("defaults = %+v", d)
	}
	off := Options{Timeout: -1, StallTimeout: -1, Retries: -1}.withDefaults()
	if off.Timeout != 0 || off.StallTimeout != 0 || off.Retries != 0 {
		t.Fatalf("disabled = %+v", off)
	}
}

// NewClient must not hand out the timeout-free http.DefaultClient.
func TestNewClientHasTimeouts(t *testing.T) {
	c := NewClient("http://example.invalid")
	if c.HTTP == nil || c.HTTP == http.DefaultClient {
		t.Fatal("NewClient must default to a timeout-configured client")
	}
	tr, ok := c.HTTP.Transport.(*http.Transport)
	if !ok || tr.ResponseHeaderTimeout <= 0 {
		t.Fatalf("default transport lacks a response-header timeout: %+v", c.HTTP.Transport)
	}
}

// Pulling over a pre-existing repository must still be refused, and must
// not touch the existing repository.
func TestPullRefusesExistingRepoBeforeDownload(t *testing.T) {
	var pulls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("/api/pull", func(w http.ResponseWriter, r *http.Request) {
		pulls.Add(1)
		http.NotFound(w, r)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	dest := t.TempDir()
	if err := os.Mkdir(filepath.Join(dest, ".dlv"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := NewClientWith(ts.URL, fastOpts(0)).Pull("r", dest); !errors.Is(err, ErrHub) {
		t.Fatalf("pull into existing repo = %v", err)
	}
	if pulls.Load() != 0 {
		t.Fatal("pull must refuse before contacting the server")
	}
}
