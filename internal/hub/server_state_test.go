package hub

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// packBytes packs the repo at root into memory.
func packBytes(t *testing.T, root string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := PackRepo(root, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// publishTo drives one publish through the real HTTP API and fails the test
// on a non-200.
func publishTo(t *testing.T, client *Client, root, name string) {
	t.Helper()
	if err := client.Publish(root, name); err != nil {
		t.Fatal(err)
	}
}

// serverFiles lists the base names in a server data directory.
func serverFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		out = append(out, e.Name())
	}
	return out
}

// An upload cut mid-stream must leave no visible server state: no index
// entry, no blob, no temp file.
func TestPublishCutUploadLeavesNoState(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob := packBytes(t, makeRepo(t, "m"))
	for _, cutAt := range []int{1, len(blob) / 2, len(blob) - 1} {
		req := httptest.NewRequest(http.MethodPost, "/api/publish?name=r",
			io.MultiReader(bytes.NewReader(blob[:cutAt]), &errorReader{}))
		rec := httptest.NewRecorder()
		srv.handlePublish(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("cut at %d: status = %d, want 400", cutAt, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), "upload aborted") {
			t.Fatalf("cut at %d: body = %q", cutAt, rec.Body.String())
		}
	}
	for _, f := range serverFiles(t, dir) {
		t.Errorf("failed publish left %q in the data dir", f)
	}
	if res := searchBody(t, srv, "r"); res != "[]\n" {
		t.Fatalf("search after failed publishes = %q", res)
	}
}

type errorReader struct{}

func (errorReader) Read([]byte) (int, error) { return 0, errors.New("injected upload cut") }

// Only the MaxBytesReader limit may answer 413; transport failures are 400.
func TestPublishStatusDistinguishesLimitFromDisconnect(t *testing.T) {
	old := maxPublishBytes
	maxPublishBytes = 1024
	defer func() { maxPublishBytes = old }()

	srv, err := NewServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/api/publish?name=r",
		bytes.NewReader(make([]byte, 4096)))
	rec := httptest.NewRecorder()
	srv.handlePublish(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize publish status = %d, want 413", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "publish limit") {
		t.Fatalf("oversize body = %q", rec.Body.String())
	}
}

// A publish whose body does not match its declared digest is rejected
// before anything is promoted.
func TestPublishDigestHeaderMismatch(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/api/publish?name=r",
		bytes.NewReader(packBytes(t, makeRepo(t, "m"))))
	req.Header.Set(DigestHeader, strings.Repeat("f", 64))
	rec := httptest.NewRecorder()
	srv.handlePublish(rec, req)
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "digest mismatch") {
		t.Fatalf("publish = %d %q", rec.Code, rec.Body.String())
	}
	for _, f := range serverFiles(t, dir) {
		t.Errorf("rejected publish left %q", f)
	}
}

// searchBody fetches the raw search response body.
func searchBody(t *testing.T, srv *Server, q string) string {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.handleSearch(rec, httptest.NewRequest(http.MethodGet, "/api/search?q="+q, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("search status = %d", rec.Code)
	}
	return rec.Body.String()
}

// An empty result set must encode as the JSON array literal [], not null.
func TestSearchEmptyEncodesAsArray(t *testing.T) {
	srv, err := NewServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if body := searchBody(t, srv, "nothing-matches"); body != "[]\n" {
		t.Fatalf("empty search body = %q, want \"[]\\n\"", body)
	}
}

// Pulls carry Content-Length, the digest header, a digest ETag, and honour
// Range requests with correct 206 semantics.
func TestPullHeadersAndRange(t *testing.T) {
	_, client := newTestServer(t)
	publishTo(t, client, makeRepo(t, "m"), "r")
	infos, err := client.Search("r")
	if err != nil || len(infos) != 1 {
		t.Fatalf("search = %v, %v", infos, err)
	}
	resp, err := http.Get(client.Base + "/api/pull?name=r")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pull = %d, %v", resp.StatusCode, err)
	}
	if int64(len(body)) != infos[0].SizeBytes || resp.ContentLength != infos[0].SizeBytes {
		t.Fatalf("len(body) = %d, Content-Length = %d, want %d", len(body), resp.ContentLength, infos[0].SizeBytes)
	}
	sum := sha256.Sum256(body)
	if got := resp.Header.Get(DigestHeader); got != digestString(sum[:]) || got != infos[0].SHA256 {
		t.Fatalf("digest header = %q, body digest = %q, index digest = %q", got, digestString(sum[:]), infos[0].SHA256)
	}
	if etag := resp.Header.Get("ETag"); etag != etagFor(infos[0].SHA256) {
		t.Fatalf("ETag = %q", etag)
	}

	// Resume from byte 10 with the matching If-Range.
	req, err := http.NewRequest(http.MethodGet, client.Base+"/api/pull?name=r", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Range", "bytes=10-")
	req.Header.Set("If-Range", etagFor(infos[0].SHA256))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rest, err := io.ReadAll(resp2.Body)
	_ = resp2.Body.Close()
	if err != nil || resp2.StatusCode != http.StatusPartialContent {
		t.Fatalf("range pull = %d, %v", resp2.StatusCode, err)
	}
	if want := fmt.Sprintf("bytes 10-%d/%d", len(body)-1, len(body)); resp2.Header.Get("Content-Range") != want {
		t.Fatalf("Content-Range = %q, want %q", resp2.Header.Get("Content-Range"), want)
	}
	if !bytes.Equal(rest, body[10:]) {
		t.Fatal("range pull body differs from the archive suffix")
	}
	// A stale If-Range (content replaced) falls back to a full 200 body.
	req.Header.Set("If-Range", etagFor(strings.Repeat("0", 64)))
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	full, err := io.ReadAll(resp3.Body)
	_ = resp3.Body.Close()
	if err != nil || resp3.StatusCode != http.StatusOK || !bytes.Equal(full, body) {
		t.Fatalf("stale If-Range: status %d, %d bytes, %v", resp3.StatusCode, len(full), err)
	}
}

// A crash between blob promotion and index save (fresh name) must be
// unobservable after restart: the orphan blob is swept, search stays empty.
func TestReconcileSweepsOrphanBlob(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	client := NewClientWith(ts.URL, Options{})
	publishTo(t, client, makeRepo(t, "m"), "kept")
	ts.Close()

	// Simulate the crash: a promoted blob for a name the index never saw.
	blob := packBytes(t, makeRepo(t, "ghost-model"))
	sum := sha256.Sum256(blob)
	orphan := filepath.Join(dir, blobFileName("ghost", digestString(sum[:])))
	if err := os.WriteFile(orphan, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	if body := searchBody(t, srv2, "ghost"); body != "[]\n" {
		t.Fatalf("orphan blob became visible: %q", body)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan blob survived reconciliation")
	}
	if body := searchBody(t, srv2, "kept"); !strings.Contains(body, `"kept"`) {
		t.Fatalf("committed publish lost in reconciliation: %q", body)
	}
}

// A crash during a REpublish (new blob promoted, index not yet saved) must
// leave the previous version fully intact after restart.
func TestReconcileRepublishCrashKeepsOldVersion(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	client := NewClientWith(ts.URL, Options{})
	publishTo(t, client, makeRepo(t, "v1-model"), "r")
	infos, err := client.Search("r")
	if err != nil || len(infos) != 1 {
		t.Fatalf("search = %v, %v", infos, err)
	}
	oldDigest := infos[0].SHA256
	ts.Close()

	// The crashed republish: its blob landed, the index save never did.
	newBlob := packBytes(t, makeRepo(t, "v2-model"))
	sum := sha256.Sum256(newBlob)
	stranded := filepath.Join(dir, blobFileName("r", digestString(sum[:])))
	if err := os.WriteFile(stranded, newBlob, 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, err := NewServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	client2 := NewClientWith(ts2.URL, Options{})
	infos2, err := client2.Search("r")
	if err != nil || len(infos2) != 1 || infos2[0].SHA256 != oldDigest {
		t.Fatalf("after crash-restart: %+v, %v (want digest %s)", infos2, err, oldDigest)
	}
	if len(infos2[0].Models) != 1 || infos2[0].Models[0] != "v1-model" {
		t.Fatalf("models after crash-restart = %v", infos2[0].Models)
	}
	if _, err := os.Stat(stranded); !os.IsNotExist(err) {
		t.Fatal("stranded republish blob survived reconciliation")
	}
	// And the old version still pulls + digest-verifies end to end.
	dest := t.TempDir()
	if err := client2.Pull("r", dest); err != nil {
		t.Fatal(err)
	}
}

// An index entry whose blob is gone must be dropped at load, not serve 500s.
func TestReconcileDropsIndexedButMissing(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	client := NewClientWith(ts.URL, Options{})
	publishTo(t, client, makeRepo(t, "m"), "gone")
	infos, err := client.Search("gone")
	if err != nil || len(infos) != 1 {
		t.Fatalf("search = %v, %v", infos, err)
	}
	ts.Close()
	if err := os.Remove(filepath.Join(dir, blobFileName("gone", infos[0].SHA256))); err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	if body := searchBody(t, srv2, "gone"); body != "[]\n" {
		t.Fatalf("missing-blob entry still visible: %q", body)
	}
}

// Pre-digest data directories (legacy <name>.tar.gz layout, no sha256 in
// the index) are migrated in place on load.
func TestReconcileMigratesLegacyLayout(t *testing.T) {
	dir := t.TempDir()
	blob := packBytes(t, makeRepo(t, "old-model"))
	if err := os.WriteFile(filepath.Join(dir, "legacy.tar.gz"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	idx := map[string]RepoInfo{"legacy": {
		Name: "legacy", SizeBytes: int64(len(blob)), PublishedAt: "2026-01-01T00:00:00Z",
		Models: []string{"old-model"},
	}}
	idxBlob, err := json.Marshal(idx)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "index.json"), idxBlob, 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClientWith(ts.URL, Options{})
	infos, err := client.Search("legacy")
	if err != nil || len(infos) != 1 {
		t.Fatalf("search = %v, %v", infos, err)
	}
	sum := sha256.Sum256(blob)
	if infos[0].SHA256 != digestString(sum[:]) {
		t.Fatalf("migrated digest = %q, want %q", infos[0].SHA256, digestString(sum[:]))
	}
	if _, err := os.Stat(filepath.Join(dir, "legacy.tar.gz")); !os.IsNotExist(err) {
		t.Fatal("legacy blob not renamed")
	}
	if err := client.Pull("legacy", t.TempDir()); err != nil {
		t.Fatalf("pull of migrated repo: %v", err)
	}
}

// Stray temp files from in-flight publishes are removed at startup.
func TestReconcileRemovesTempFiles(t *testing.T) {
	dir := t.TempDir()
	stray := filepath.Join(dir, tmpPrefix+"publish-12345")
	if err := os.WriteFile(stray, []byte("partial upload"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("temp file survived startup reconciliation")
	}
}

// The torn-blob race: concurrent publishes, pulls, and searches on one name
// must never let a pull observe bytes that do not hash to the digest the
// server advertised for them.
func TestConcurrentPublishPullSearch(t *testing.T) {
	_, client := newTestServer(t)
	roots := []string{makeRepo(t, "gen1"), makeRepo(t, "gen2")}
	publishTo(t, client, roots[0], "hammer")

	var wg sync.WaitGroup
	errs := make(chan error, 128)
	report := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if err := client.Publish(roots[(p+i)%2], "hammer"); err != nil {
					report("publish: %v", err)
				}
			}
		}(p)
	}
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				resp, err := http.Get(client.Base + "/api/pull?name=hammer")
				if err != nil {
					report("pull: %v", err)
					continue
				}
				body, err := io.ReadAll(resp.Body)
				_ = resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					report("pull read: %d, %v", resp.StatusCode, err)
					continue
				}
				sum := sha256.Sum256(body)
				if got, want := digestString(sum[:]), resp.Header.Get(DigestHeader); got != want {
					report("torn pull: body digest %s, advertised %s", got, want)
				}
				if int64(len(body)) != resp.ContentLength {
					report("short pull: %d of %d bytes", len(body), resp.ContentLength)
				}
			}
		}()
	}
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if _, err := client.Search("hammer"); err != nil {
					report("search: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
