package hub

import (
	"fmt"
	"testing"
)

func ringPeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://node-%d:8080", i)
	}
	return peers
}

func TestRingDeterministicAndOrderInsensitive(t *testing.T) {
	a, err := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same peers in a different order, with duplicates and trailing slashes.
	b, err := NewRing([]string{"http://c/", "http://a", "http://b", "http://a"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("model-%d", i)
		oa, ob := a.Owners(key, 2), b.Owners(key, 2)
		if len(oa) != 2 || len(ob) != 2 || oa[0] != ob[0] || oa[1] != ob[1] {
			t.Fatalf("key %q: owners differ across equivalent rings: %v vs %v", key, oa, ob)
		}
	}
}

func TestRingEmptyPeersRejected(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty peer list must be rejected")
	}
	if _, err := NewRing([]string{"  ", ""}, 0); err == nil {
		t.Fatal("blank peer list must be rejected")
	}
}

func TestRingOwnersDistinctAndClamped(t *testing.T) {
	r, err := NewRing(ringPeers(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k-%d", i)
		// Asking for more replicas than peers clamps to the peer count,
		// and every returned owner is distinct.
		owners := r.Owners(key, 10)
		if len(owners) != 3 {
			t.Fatalf("key %q: got %d owners, want 3", key, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %q: duplicate owner %s", key, o)
			}
			seen[o] = true
		}
		if !r.Owns(key, owners[0], 1) {
			t.Fatalf("key %q: primary owner %s not reported by Owns", key, owners[0])
		}
		if r.Owns(key, owners[2], 2) {
			t.Fatalf("key %q: third owner %s must not own at n=2", key, owners[2])
		}
	}
	if got := r.Owners("x", 0); got != nil {
		t.Fatalf("n=0 must return nil, got %v", got)
	}
}

func TestRingDistribution(t *testing.T) {
	const keys = 3000
	r, err := NewRing(ringPeers(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Owners(fmt.Sprintf("key-%d", i), 1)[0]]++
	}
	// With 64 vnodes per peer the primary-owner share should land within a
	// loose band around the fair share of 20%.
	for peer, n := range counts {
		share := float64(n) / keys
		if share < 0.08 || share > 0.36 {
			t.Errorf("peer %s owns %.1f%% of keys; want roughly balanced", peer, share*100)
		}
	}
}

// TestRingRebalanceMovesFewKeys is the consistent-hashing contract: growing
// a 4-node ring to 5 nodes remaps only about 1/5 of the primary
// assignments, and every reassigned key lands on the new node — existing
// nodes never trade keys among themselves.
func TestRingRebalanceMovesFewKeys(t *testing.T) {
	const keys = 3000
	old, err := NewRing(ringPeers(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := NewRing(ringPeers(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	added := ringPeers(5)[4]
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		was, is := old.Owners(key, 1)[0], grown.Owners(key, 1)[0]
		if was == is {
			continue
		}
		moved++
		if is != added {
			t.Fatalf("key %q moved from %s to %s, not to the added node", key, was, is)
		}
	}
	share := float64(moved) / keys
	if share < 0.10 || share > 0.32 {
		t.Errorf("adding 1 of 5 nodes moved %.1f%% of keys; want near 20%%", share*100)
	}
}

// TestRingRemovalMovesOnlyOrphans is the inverse: removing a node remaps
// only the keys it owned.
func TestRingRemovalMovesOnlyOrphans(t *testing.T) {
	const keys = 2000
	full, err := NewRing(ringPeers(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	removed := ringPeers(4)[3]
	shrunk, err := NewRing(ringPeers(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		was, is := full.Owners(key, 1)[0], shrunk.Owners(key, 1)[0]
		if was != removed && was != is {
			t.Fatalf("key %q moved from surviving node %s to %s", key, was, is)
		}
	}
}
