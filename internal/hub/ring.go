package hub

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// defaultVNodes is the number of virtual nodes each peer contributes to the
// ring. 64 points per peer keeps the expected load imbalance of a small
// cluster under a few percent while the ring stays tiny (a 16-node cluster
// is 1024 points, one binary search per lookup).
const defaultVNodes = 64

// Ring is an immutable consistent-hash ring mapping string keys (published
// repository names) to an ordered list of owner peers. Each peer is hashed
// onto the ring at VNodes points; a key's owners are the first N distinct
// peers clockwise from the key's own hash. Adding or removing one peer
// therefore moves only ~K/len(peers) of K keys — the property the cluster's
// rebalancing story depends on.
//
// Hashing is SHA-256 truncated to 64 bits, so every process that agrees on
// the peer list computes identical placements — gateway, owners, and repair
// loops never need to exchange routing state.
type Ring struct {
	points []ringPoint
	peers  []string
}

type ringPoint struct {
	hash uint64
	peer string
}

// NewRing builds a ring over the given peer base URLs with vnodes virtual
// nodes per peer (<=0 selects defaultVNodes). Peers are normalized (trailing
// slash trimmed) and deduplicated; at least one peer is required.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	seen := map[string]bool{}
	var normalized []string
	for _, p := range peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		normalized = append(normalized, p)
	}
	if len(normalized) == 0 {
		return nil, fmt.Errorf("%w: ring needs at least one peer", ErrHub)
	}
	sort.Strings(normalized)
	r := &Ring{peers: normalized, points: make([]ringPoint, 0, len(normalized)*vnodes)}
	for _, p := range normalized {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", p, v)), peer: p})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].peer < r.points[b].peer
	})
	return r, nil
}

// ringHash maps a string to its position on the ring: the first 8 bytes of
// its SHA-256, big-endian. Stable across processes and Go versions.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Peers returns the normalized, sorted peer list the ring was built over.
func (r *Ring) Peers() []string {
	out := make([]string, len(r.peers))
	copy(out, r.peers)
	return out
}

// Owners returns the first n distinct peers clockwise from key's hash: the
// replica set responsible for key, primary first. n is clamped to the peer
// count, so Owners(key, 3) on a 2-peer ring returns both peers.
func (r *Ring) Owners(key string, n int) []string {
	if n <= 0 || len(r.peers) == 0 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	kh := ringHash(key)
	// First point with hash >= kh; wraps to 0 past the last point.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	owners := make([]string, 0, n)
	seen := map[string]bool{}
	for j := 0; len(owners) < n && j < len(r.points); j++ {
		p := r.points[(i+j)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			owners = append(owners, p)
		}
	}
	return owners
}

// Owns reports whether peer is among the n owners of key.
func (r *Ring) Owns(key, peer string, n int) bool {
	for _, o := range r.Owners(key, n) {
		if o == peer {
			return true
		}
	}
	return false
}
