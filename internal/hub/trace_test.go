package hub

import (
	"net/http"
	"testing"
	"time"

	"modelhub/internal/obs"
)

// tracingTest turns the obs gates on with a fresh collector for one test.
func tracingTest(t *testing.T) {
	t.Helper()
	obs.Enable()
	obs.EnableTracing()
	obs.SetTraceBufferSize(32)
	obs.SetTraceSampler(1)
	t.Cleanup(func() {
		obs.SetTraceSampler(1)
		obs.SetTraceBufferSize(obs.DefaultTraceBufferSize)
		obs.DisableTracing()
		obs.Disable()
	})
}

// pullTraceRecords finds the newest hub.client.pull trace and waits briefly
// for the server's span to land (the handler may still be finishing its End
// when Pull returns).
func pullTraceRecords(t *testing.T, wantSpans int) []obs.SpanRecord {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		for _, tr := range obs.Traces() {
			if tr.Root != "hub.client.pull" {
				continue
			}
			records, ok := obs.TraceRecordsByString(tr.ID)
			if ok && len(records) >= wantSpans {
				return records
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no hub.client.pull trace with >= %d spans collected", wantSpans)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// One pull against a live server must produce ONE trace holding both sides:
// the client's pull root and attempt spans, and the server's request span as
// a child of the attempt that carried the traceparent header.
func TestPullTraceClientServerRoundTrip(t *testing.T) {
	tracingTest(t)
	_, client := newTestServer(t)
	if err := client.Publish(makeRepo(t, "traced-model"), "r"); err != nil {
		t.Fatal(err)
	}
	if err := client.Pull("r", t.TempDir()); err != nil {
		t.Fatal(err)
	}

	// pull root + pull attempt + server request span.
	records := pullTraceRecords(t, 3)
	tid := records[0].TraceID
	byName := map[string]obs.SpanRecord{}
	for _, rec := range records {
		if rec.TraceID != tid {
			t.Fatalf("span %s has trace %s, want %s", rec.Name, rec.TraceID, tid)
		}
		byName[rec.Name] = rec
	}
	root, ok := byName["hub.client.pull"]
	if !ok || root.ParentID != "" {
		t.Fatalf("pull root = %+v, ok=%v", root, ok)
	}
	attempt, ok := byName["hub.client.pull.attempt"]
	if !ok || attempt.ParentID != root.SpanID {
		t.Fatalf("pull attempt = %+v (ok=%v), want child of %s", attempt, ok, root.SpanID)
	}
	server, ok := byName["hub.http.request"]
	if !ok {
		t.Fatal("server span missing from the merged trace")
	}
	if server.ParentID != attempt.SpanID {
		t.Fatalf("server span parent = %s, want the pull attempt %s", server.ParentID, attempt.SpanID)
	}
}

// A cut-and-resumed pull is ONE trace whose root has one child span per
// attempt: the first errored at the cut, the second resuming mid-archive.
func TestPullTraceResumeHasAttemptChildren(t *testing.T) {
	tracingTest(t)
	_, client := newTestServer(t)
	if err := client.Publish(makeRepo(t, "traced-resume"), "r"); err != nil {
		t.Fatal(err)
	}
	infos, err := client.Search("r")
	if err != nil || len(infos) != 1 {
		t.Fatalf("search = %v, %v", infos, err)
	}
	cutAt := infos[0].SizeBytes / 2
	client.HTTP = &http.Client{Transport: &flakyTransport{base: http.DefaultTransport, cutAt: cutAt, cuts: 1}}
	client.Opts = fastOpts(3)
	if err := client.Pull("r", t.TempDir()); err != nil {
		t.Fatalf("pull with cut stream: %v", err)
	}

	// pull root + 2 attempts (+ server spans arriving asynchronously).
	records := pullTraceRecords(t, 3)
	var root obs.SpanRecord
	var attempts []obs.SpanRecord
	for _, rec := range records {
		switch rec.Name {
		case "hub.client.pull":
			root = rec
		case "hub.client.pull.attempt":
			attempts = append(attempts, rec)
		}
	}
	if len(attempts) != 2 {
		t.Fatalf("attempt spans = %d, want 2", len(attempts))
	}
	attrOf := func(rec obs.SpanRecord, key string) string {
		for _, a := range rec.Attrs {
			if a.Key == key {
				return a.Value
			}
		}
		return ""
	}
	for _, a := range attempts {
		if a.ParentID != root.SpanID {
			t.Fatalf("attempt parent = %s, want the pull root %s", a.ParentID, root.SpanID)
		}
	}
	if attrOf(attempts[0], "hub.attempt") > attrOf(attempts[1], "hub.attempt") {
		attempts[0], attempts[1] = attempts[1], attempts[0]
	}
	if !attempts[0].Error {
		t.Fatal("cut first attempt not marked errored")
	}
	if off := attrOf(attempts[1], "hub.resume_offset"); off == "" || off == "0" {
		t.Fatalf("second attempt resume offset = %q, want the cut offset", off)
	}
	if attempts[1].Error {
		t.Fatal("successful resume attempt marked errored")
	}
}

// The client exports its spans with a POST to /debug/traces; the server
// handler must expose that endpoint (here the client and server share one
// in-process collector, so the export is a dedup no-op — the endpoint
// contract is what's under test).
func TestServerHandlerServesDebugTraces(t *testing.T) {
	tracingTest(t)
	_, client := newTestServer(t)
	resp, err := client.httpClient().Get(client.Base + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces status = %d", resp.StatusCode)
	}
}
