package hub

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"modelhub/internal/obs"
)

// Repair metrics (DESIGN.md §8).
var (
	mRepairSweeps   = obs.GetCounter("hub.cluster.repair.sweeps")
	mRepairMissing  = obs.GetCounter("hub.cluster.repair.missing")
	mRepairStale    = obs.GetCounter("hub.cluster.repair.stale")
	mRepairCorrupt  = obs.GetCounter("hub.cluster.repair.corrupt")
	mRepairRepaired = obs.GetCounter("hub.cluster.repair.repaired")
	mRepairFailed   = obs.GetCounter("hub.cluster.repair.failed")
)

// RepairStats summarizes one anti-entropy sweep.
type RepairStats struct {
	PeersProbed int `json:"peers_probed"`
	PeersFailed int `json:"peers_failed"`
	// Missing, Stale, and Corrupt count owned names whose local replica
	// was absent, superseded by a newer record elsewhere, or failed its
	// on-disk digest check.
	Missing int `json:"missing"`
	Stale   int `json:"stale"`
	Corrupt int `json:"corrupt"`
	// Repaired and Failed count re-pull outcomes for those names.
	Repaired int `json:"repaired"`
	Failed   int `json:"failed"`
}

// RepairOnce runs one anti-entropy sweep: fetch every peer's digest
// inventory, merge it with the local index under last-writer-wins, and for
// each name this node owns re-pull (digest-verified) whatever is missing,
// stale, or corrupt from a peer that holds the wanted record. Every repair
// transfer is a child span of the sweep's "hub.cluster.repair" span.
//
// The sweep never deletes: names this node no longer owns after a ring
// change stay on disk, which is exactly the read-through window that lets
// pulls succeed against old owners while the new owners converge.
func (s *Server) RepairOnce(ctx context.Context) (RepairStats, error) {
	cl := s.cluster
	if cl == nil {
		return RepairStats{}, fmt.Errorf("%w: not a cluster node", ErrHub)
	}
	ctx, span := obs.Start(ctx, "hub.cluster.repair")
	failed := false
	defer func() {
		if failed {
			span.SetError()
		}
		span.End()
	}()
	mRepairSweeps.Inc()

	var stats RepairStats
	// desired is the cluster-wide winning record per name; sources lists
	// which peers advertise exactly that record (digest match), i.e. where
	// a repair pull can be verified against the wanted digest.
	desired := map[string]RepoInfo{}
	sources := map[string][]string{}
	merge := func(peer string, infos []RepoInfo) {
		for _, info := range infos {
			cur, ok := desired[info.Name]
			switch {
			case !ok || newerThan(info, cur):
				desired[info.Name] = info
				sources[info.Name] = nil
				if peer != "" {
					sources[info.Name] = []string{peer}
				}
			case info.SHA256 == cur.SHA256 && peer != "":
				sources[info.Name] = append(sources[info.Name], peer)
			}
		}
	}
	s.mu.RLock()
	local := make([]RepoInfo, 0, len(s.index))
	for _, info := range s.index {
		local = append(local, info)
	}
	s.mu.RUnlock()
	merge("", local)
	for _, peer := range cl.peers {
		if peer == cl.self {
			continue
		}
		stats.PeersProbed++
		infos, err := cl.fetchInventory(ctx, peer)
		if err != nil {
			stats.PeersFailed++
			obs.Logger().Warn("anti-entropy inventory fetch failed", "peer", peer, "err", err)
			continue
		}
		merge(peer, infos)
	}

	names := make([]string, 0, len(desired))
	for name := range desired {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if ctx.Err() != nil {
			failed = true
			return stats, ctx.Err()
		}
		if !cl.ring.Owns(name, cl.self, cl.replicas) {
			continue
		}
		want := desired[name]
		reason := s.replicaDefect(name, want)
		if reason == "" {
			continue
		}
		switch reason {
		case "missing":
			stats.Missing++
			mRepairMissing.Inc()
		case "stale":
			stats.Stale++
			mRepairStale.Inc()
		case "corrupt":
			stats.Corrupt++
			mRepairCorrupt.Inc()
		}
		if err := s.repairName(ctx, want, sources[name], reason); err != nil {
			stats.Failed++
			mRepairFailed.Inc()
			obs.Logger().Warn("anti-entropy repair failed", "name", name, "reason", reason, "err", err)
			continue
		}
		stats.Repaired++
		mRepairRepaired.Inc()
	}
	failed = stats.Failed > 0
	return stats, nil
}

// replicaDefect classifies the local copy of an owned name against the
// cluster-wide winning record: "" (healthy), "missing", "stale", or
// "corrupt" (on-disk bytes no longer hash to the indexed digest).
func (s *Server) replicaDefect(name string, want RepoInfo) string {
	s.mu.RLock()
	have, ok := s.index[name]
	s.mu.RUnlock()
	if !ok {
		return "missing"
	}
	if have.SHA256 != want.SHA256 && newerThan(want, have) {
		return "stale"
	}
	got, _, err := fileDigest(s.blobPath(name, have.SHA256))
	if err != nil || !strings.EqualFold(got, have.SHA256) {
		return "corrupt"
	}
	return ""
}

// repairName re-pulls one name's wanted archive from the first source peer
// that delivers bytes matching the wanted digest, committing through the
// shared storeBlob path. Trying every source means a peer dying mid-repair
// costs one failed attempt, not the sweep.
func (s *Server) repairName(ctx context.Context, want RepoInfo, sources []string, reason string) error {
	rctx, span := obs.Start(ctx, "hub.cluster.repair.pull")
	span.SetAttr("hub.name", want.Name)
	span.SetAttr("hub.repair_reason", reason)
	repaired := false
	defer func() {
		if !repaired {
			span.SetError()
		}
		span.End()
	}()
	if len(sources) == 0 {
		return fmt.Errorf("%w: no peer holds %s@%s", ErrHub, want.Name, want.SHA256)
	}
	var lastErr error
	for _, peer := range sources {
		if err := s.fetchReplica(rctx, peer, want); err != nil {
			lastErr = err
			continue
		}
		repaired = true
		span.SetAttr("hub.peer", peer)
		return nil
	}
	return lastErr
}

// fetchReplica pulls want's archive from one peer, verifies the streamed
// bytes against want.SHA256, and commits it under last-writer-wins.
func (s *Server) fetchReplica(ctx context.Context, peer string, want RepoInfo) error {
	cl := s.cluster
	actx, cancel := context.WithTimeout(ctx, 10*cl.peerTimeout)
	defer cancel()
	u := fmt.Sprintf("%s/api/pull?name=%s", peer, url.QueryEscape(want.Name))
	req, err := http.NewRequestWithContext(actx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("%w: repair: %v", ErrHub, err)
	}
	obs.FromContext(actx).Inject(req.Header)
	resp, err := cl.hc.Do(req)
	if err != nil {
		return fmt.Errorf("%w: repair pull from %s: %v", ErrHub, peer, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: repair pull from %s failed (%d)", ErrHub, peer, resp.StatusCode)
	}
	tmpName, digest, _, err := s.spoolBody(resp.Body)
	if err != nil {
		return fmt.Errorf("%w: repair pull from %s: %v", ErrHub, peer, err)
	}
	stored := false
	defer func() {
		if !stored {
			//mhlint:ignore errcheck best-effort cleanup of an unpromoted repair download
			_ = os.Remove(tmpName)
		}
	}()
	if !strings.EqualFold(digest, want.SHA256) {
		mDigestMismatch.Inc()
		return fmt.Errorf("%w: repair pull from %s: digest mismatch (got %s, want %s)",
			ErrHub, peer, digest, want.SHA256)
	}
	stored, err = s.storeBlob(tmpName, want, acceptReplica(want))
	if err != nil {
		return err
	}
	return nil
}

// StartAntiEntropy launches the background repair loop at the configured
// RepairInterval. The returned stop function cancels the loop and joins the
// goroutine; call it during shutdown. A non-positive interval (explicitly
// disabled) returns a no-op stop.
func (s *Server) StartAntiEntropy() (stop func()) {
	cl := s.cluster
	if cl == nil || cl.repairInterval <= 0 {
		return func() {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(cl.repairInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
			if _, err := s.RepairOnce(ctx); err != nil && ctx.Err() == nil {
				obs.Logger().Warn("anti-entropy sweep failed", "err", err)
			}
		}
	}()
	return func() {
		cancel()
		wg.Wait()
	}
}

// handleRepair triggers one anti-entropy sweep on demand (POST /api/repair)
// and returns its stats — how the smoke tests and operators assert
// convergence without waiting out the background interval.
func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if s.cluster == nil {
		http.Error(w, ErrHub.Error()+": not a cluster node", http.StatusPreconditionFailed)
		return
	}
	stats, err := s.RepairOnce(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	//mhlint:ignore errcheck a response-write failure means the client went away; nothing to do
	_ = json.NewEncoder(w).Encode(stats)
}
