package hub

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"modelhub/internal/obs"
)

// Cluster request headers. Replication and forwarding both ride the
// existing streamed-publish path (temp file + SHA-256 while streaming,
// DigestHeader verify), so these headers only carry routing intent and
// metadata — integrity is always the digest.
const (
	// ReplicaHeader marks a replication push from an owner peer; its value
	// is the sender's advertised base URL. A node receiving one stores the
	// blob locally and does not replicate further (the pushing owner is
	// already fanning out), which breaks replication loops.
	ReplicaHeader = "X-Hub-Replica-From"
	// ForwardedHeader marks a publish forwarded by a non-owner node or the
	// gateway. The receiving node stores it even if its own ring view says
	// it is not an owner, so disagreeing ring configurations degrade into
	// an extra replica instead of a forwarding loop.
	ForwardedHeader = "X-Hub-Forwarded"
	// RepoInfoHeader carries the JSON RepoInfo record of a replicated
	// blob: the receiving peer keeps the origin's publication timestamp
	// and model list instead of re-inspecting the archive.
	RepoInfoHeader = "X-Hub-Repo-Info"
)

// Cluster metrics (DESIGN.md §8): all no-ops until obs.Enable.
var (
	mForwarded     = obs.GetCounter("hub.cluster.publish.forwarded")
	mForwardFailed = obs.GetCounter("hub.cluster.publish.forward_failed")
	mReplicateOK   = obs.GetCounter("hub.cluster.replicate.success")
	mReplicateFail = obs.GetCounter("hub.cluster.replicate.failure")
	mReplicaRecv   = obs.GetCounter("hub.cluster.replicate.received")
	mReplicaSkip   = obs.GetCounter("hub.cluster.replicate.skipped_stale")
)

// ClusterConfig describes one node's view of a multi-node hub. The same
// Peers list (order-insensitive) and Replicas value must be handed to every
// node and to the gateway: placement is pure consistent hashing, so agreeing
// on the inputs is all the coordination the cluster needs.
type ClusterConfig struct {
	// Self is this node's advertised base URL, e.g. "http://10.0.0.1:8080".
	// It must appear in Peers (it is added if missing). Gateways leave it
	// empty — they route, they do not own.
	Self string
	// Peers are the base URLs of every storage node in the cluster.
	Peers []string
	// Replicas is the N-way replication factor. 0 selects 3; values above
	// the peer count are clamped to it.
	Replicas int
	// VNodes is the virtual-node count per peer on the ring (0 selects 64).
	VNodes int
	// RepairInterval is the anti-entropy sweep period for
	// StartAntiEntropy. 0 selects 30s; negative disables the loop.
	RepairInterval time.Duration
	// PeerTimeout bounds one control request to a peer (inventory fetch,
	// replicate/forward/repair transfers get 10x this for streaming).
	// 0 selects 10s.
	PeerTimeout time.Duration
	// Client is the HTTP client used for peer traffic; nil selects
	// DefaultHTTPClient.
	Client *http.Client
}

// withDefaults normalizes the config: peers deduped via the ring, Self
// appended to Peers when missing, zero fields resolved.
func (c ClusterConfig) withDefaults() ClusterConfig {
	c.Self = strings.TrimRight(strings.TrimSpace(c.Self), "/")
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.RepairInterval == 0 {
		c.RepairInterval = 30 * time.Second
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 10 * time.Second
	}
	if c.Client == nil {
		c.Client = DefaultHTTPClient()
	}
	return c
}

// cluster is the resolved cluster state hanging off a Server (and, without
// a self identity, off a Gateway).
type cluster struct {
	self           string
	ring           *Ring
	peers          []string
	replicas       int
	repairInterval time.Duration
	peerTimeout    time.Duration
	hc             *http.Client
}

func newCluster(cfg ClusterConfig, needSelf bool) (*cluster, error) {
	cfg = cfg.withDefaults()
	peers := cfg.Peers
	if needSelf {
		if cfg.Self == "" {
			return nil, fmt.Errorf("%w: cluster config needs a Self URL", ErrHub)
		}
		peers = append(append([]string{}, peers...), cfg.Self)
	}
	ring, err := NewRing(peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	replicas := cfg.Replicas
	if n := len(ring.Peers()); replicas > n {
		replicas = n
	}
	return &cluster{
		self:           cfg.Self,
		ring:           ring,
		peers:          ring.Peers(),
		replicas:       replicas,
		repairInterval: cfg.RepairInterval,
		peerTimeout:    cfg.PeerTimeout,
		hc:             cfg.Client,
	}, nil
}

// EnableCluster makes this server a member of a multi-node hub: publishes
// of names it does not own are forwarded to the owners, owned publishes are
// replicated to the other N-1 owners, and the replicate/repair endpoints
// come alive. Call it after NewServer and before serving requests; the
// anti-entropy loop is started separately with StartAntiEntropy.
func (s *Server) EnableCluster(cfg ClusterConfig) error {
	cl, err := newCluster(cfg, true)
	if err != nil {
		return err
	}
	s.cluster = cl
	return nil
}

// newerThan reports whether a supersedes b under last-writer-wins:
// publication time first (RFC3339 strings compare chronologically), digest
// as the deterministic tie-break so all replicas converge on one record
// even when two publishes carry the same timestamp.
func newerThan(a, b RepoInfo) bool {
	if a.PublishedAt != b.PublishedAt {
		return a.PublishedAt > b.PublishedAt
	}
	return a.SHA256 > b.SHA256
}

// acceptReplica is the storeBlob policy for replica receives and repair:
// take the record unless the local one is strictly newer. Equal records are
// re-accepted on purpose — that is how repair overwrites a corrupt blob
// whose index entry still looks right.
func acceptReplica(info RepoInfo) func(prev RepoInfo, exists bool) bool {
	return func(prev RepoInfo, exists bool) bool {
		return !exists || !newerThan(prev, info)
	}
}

// replicateOut pushes a freshly stored record to the other owners of its
// name, sequentially, each push a child span of the publish request trace.
// Failures are counted and logged, never fatal: the publish already
// committed locally, and anti-entropy re-converges the missing replicas.
func (cl *cluster) replicateOut(ctx context.Context, s *Server, info RepoInfo) {
	for _, peer := range cl.ring.Owners(info.Name, cl.replicas) {
		if peer == cl.self {
			continue
		}
		rctx, span := obs.Start(ctx, "hub.cluster.replicate")
		span.SetAttr("hub.peer", peer)
		span.SetAttr("hub.name", info.Name)
		err := cl.pushReplica(rctx, s.blobPath(info.Name, info.SHA256), info, peer)
		if err != nil {
			span.SetError()
			mReplicateFail.Inc()
			obs.Logger().Warn("replica push failed", "name", info.Name, "peer", peer, "err", err)
		} else {
			mReplicateOK.Inc()
		}
		span.End()
	}
}

// pushReplica streams one blob to peer's /api/replicate, digest in
// DigestHeader and the metadata record in RepoInfoHeader.
func (cl *cluster) pushReplica(ctx context.Context, blobPath string, info RepoInfo, peer string) error {
	f, err := os.Open(blobPath)
	if err != nil {
		return fmt.Errorf("%w: replicate: %v", ErrHub, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("%w: replicate: %v", ErrHub, err)
	}
	meta, err := json.Marshal(info)
	if err != nil {
		return fmt.Errorf("%w: replicate: %v", ErrHub, err)
	}
	rctx, cancel := context.WithTimeout(ctx, 10*cl.peerTimeout)
	defer cancel()
	u := fmt.Sprintf("%s/api/replicate?name=%s", peer, url.QueryEscape(info.Name))
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, u, f)
	if err != nil {
		return fmt.Errorf("%w: replicate: %v", ErrHub, err)
	}
	req.ContentLength = st.Size()
	req.Header.Set("Content-Type", "application/gzip")
	req.Header.Set(DigestHeader, info.SHA256)
	req.Header.Set(RepoInfoHeader, string(meta))
	req.Header.Set(ReplicaHeader, cl.self)
	obs.FromContext(rctx).Inject(req.Header)
	resp, err := cl.hc.Do(req)
	if err != nil {
		return fmt.Errorf("%w: replicate to %s: %v", ErrHub, peer, err)
	}
	defer resp.Body.Close()
	//mhlint:ignore errcheck best-effort drain so the connection can be reused
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: replicate to %s failed (%d)", ErrHub, peer, resp.StatusCode)
	}
	return nil
}

// handleReplicate receives a blob pushed by an owner peer (or repair):
// stream to temp hashing, verify against the advertised digest, then commit
// through the shared storeBlob path under last-writer-wins.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if s.cluster == nil {
		http.Error(w, ErrHub.Error()+": not a cluster node", http.StatusPreconditionFailed)
		return
	}
	name := r.URL.Query().Get("name")
	if err := validateName(name); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var info RepoInfo
	if err := json.Unmarshal([]byte(r.Header.Get(RepoInfoHeader)), &info); err != nil {
		http.Error(w, ErrHub.Error()+": bad "+RepoInfoHeader+": "+err.Error(), http.StatusBadRequest)
		return
	}
	if info.Name != name || info.SHA256 == "" {
		http.Error(w, ErrHub.Error()+": metadata does not match the request", http.StatusBadRequest)
		return
	}
	tmpName, digest, _, err := s.spoolBody(r.Body)
	if err != nil {
		http.Error(w, "replica upload aborted or unreadable: "+err.Error(), http.StatusBadRequest)
		return
	}
	stored := false
	defer func() {
		if !stored {
			//mhlint:ignore errcheck best-effort cleanup of an unpromoted replica upload
			_ = os.Remove(tmpName)
		}
	}()
	if !strings.EqualFold(digest, info.SHA256) {
		mDigestMismatch.Inc()
		http.Error(w, fmt.Sprintf("digest mismatch: body is %s, record says %s", digest, info.SHA256),
			http.StatusBadRequest)
		return
	}
	stored, err = s.storeBlob(tmpName, info, acceptReplica(info))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if stored {
		mReplicaRecv.Inc()
	} else {
		mReplicaSkip.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	//mhlint:ignore errcheck a response-write failure means the peer went away; nothing to do
	_ = json.NewEncoder(w).Encode(map[string]bool{"stored": stored})
}

// spoolBody streams an upload body into a temp file in the data directory,
// hashing while it lands, and returns the temp path, hex digest, and size.
// Bodies beyond maxPublishBytes are rejected. The caller owns the temp file
// on success.
func (s *Server) spoolBody(body io.Reader) (tmpName, digest string, size int64, err error) {
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"replica-*")
	if err != nil {
		return "", "", 0, err
	}
	return spoolTo(tmp, body)
}

// spoolTo is the shared spool core: stream body into the open temp file,
// hashing while it lands. On error the temp file is removed. Used by both
// storage nodes (spoolBody) and the gateway, which has no data directory.
func spoolTo(tmp *os.File, body io.Reader) (tmpName, digest string, size int64, err error) {
	tmpName = tmp.Name()
	h := sha256.New()
	size, err = io.Copy(io.MultiWriter(tmp, h), io.LimitReader(body, maxPublishBytes+1))
	if err == nil && size > maxPublishBytes {
		err = fmt.Errorf("archive exceeds the %d-byte publish limit", maxPublishBytes)
	}
	if err != nil {
		//mhlint:ignore errcheck the copy error takes precedence over cleanup
		_ = tmp.Close()
		//mhlint:ignore errcheck the copy error takes precedence over cleanup
		_ = os.Remove(tmpName)
		return "", "", 0, err
	}
	if err := syncClose(tmp); err != nil {
		//mhlint:ignore errcheck the sync error takes precedence over cleanup
		_ = os.Remove(tmpName)
		return "", "", 0, err
	}
	return tmpName, digestString(h.Sum(nil)), size, nil
}

// forwardPublish relays a publish this node does not own to the name's
// replica set: spool + hash first (so the upload is verified once and can
// be retried against each owner), then POST the spooled archive to owners
// in ring order until one accepts.
func (s *Server) forwardPublish(w http.ResponseWriter, r *http.Request, name string) {
	cl := s.cluster
	ctx, span := obs.Start(r.Context(), "hub.cluster.forward")
	span.SetAttr("hub.name", name)
	ok := false
	defer func() {
		if !ok {
			span.SetError()
		}
		span.End()
	}()
	tmpName, digest, _, err := s.spoolBody(r.Body)
	if err != nil {
		http.Error(w, "upload aborted or unreadable: "+err.Error(), http.StatusBadRequest)
		return
	}
	defer func() {
		//mhlint:ignore errcheck best-effort cleanup after the forward outcome is decided
		_ = os.Remove(tmpName)
	}()
	if want := r.Header.Get(DigestHeader); want != "" && !strings.EqualFold(want, digest) {
		mDigestMismatch.Inc()
		http.Error(w, fmt.Sprintf("digest mismatch: body is %s, %s says %s", digest, DigestHeader, want),
			http.StatusBadRequest)
		return
	}
	owners := cl.ring.Owners(name, cl.replicas)
	status, body, derr := forwardSpooled(ctx, cl.hc, cl.self, owners, name, tmpName, digest, cl.peerTimeout)
	if derr != nil {
		mForwardFailed.Inc()
		http.Error(w, derr.Error(), http.StatusBadGateway)
		return
	}
	ok = status == http.StatusOK
	if ok {
		mForwarded.Inc()
		w.Header().Set(DigestHeader, digest)
	}
	w.WriteHeader(status)
	//mhlint:ignore errcheck a response-write failure means the client went away; nothing to do
	_, _ = w.Write(body)
}

// forwardSpooled POSTs a spooled archive to each owner in order until one
// answers. Connection failures and 5xx move on to the next owner; any
// definitive answer (2xx/4xx) is relayed as-is. from is stamped into
// ForwardedHeader ("gateway" when relayed by the stateless tier).
func forwardSpooled(ctx context.Context, hc *http.Client, from string, owners []string,
	name, tmpName, digest string, peerTimeout time.Duration) (status int, body []byte, err error) {
	if from == "" {
		from = "gateway"
	}
	var lastErr error
	for _, peer := range owners {
		f, err := os.Open(tmpName)
		if err != nil {
			return 0, nil, fmt.Errorf("%w: forward: %v", ErrHub, err)
		}
		st, err := f.Stat()
		if err != nil {
			//mhlint:ignore errcheck the stat error takes precedence over cleanup
			_ = f.Close()
			return 0, nil, fmt.Errorf("%w: forward: %v", ErrHub, err)
		}
		actx, cancel := context.WithTimeout(ctx, 10*peerTimeout)
		u := fmt.Sprintf("%s/api/publish?name=%s", peer, url.QueryEscape(name))
		req, err := http.NewRequestWithContext(actx, http.MethodPost, u, f)
		if err != nil {
			cancel()
			//mhlint:ignore errcheck the request error takes precedence over cleanup
			_ = f.Close()
			return 0, nil, fmt.Errorf("%w: forward: %v", ErrHub, err)
		}
		req.ContentLength = st.Size()
		req.Header.Set("Content-Type", "application/gzip")
		req.Header.Set(DigestHeader, digest)
		req.Header.Set(ForwardedHeader, from)
		obs.FromContext(ctx).Inject(req.Header)
		resp, err := hc.Do(req)
		//mhlint:ignore errcheck the response outcome takes precedence over closing the spool handle
		_ = f.Close()
		if err != nil {
			cancel()
			lastErr = err
			continue
		}
		msg, rerr := io.ReadAll(io.LimitReader(resp.Body, 4096))
		//mhlint:ignore errcheck best-effort close; the body was already read
		_ = resp.Body.Close()
		cancel()
		if rerr != nil {
			lastErr = rerr
			continue
		}
		if resp.StatusCode >= 500 {
			lastErr = fmt.Errorf("owner %s answered %d", peer, resp.StatusCode)
			continue
		}
		return resp.StatusCode, msg, nil
	}
	return 0, nil, fmt.Errorf("%w: no owner of %q reachable: %v", ErrHub, name, lastErr)
}

// handleInventory lists the local index as sorted JSON — the per-peer
// digest inventory that anti-entropy sweeps diff against each other.
func (s *Server) handleInventory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	s.mu.RLock()
	out := make([]RepoInfo, 0, len(s.index))
	for _, info := range s.index {
		out = append(out, info)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	w.Header().Set("Content-Type", "application/json")
	//mhlint:ignore errcheck a response-write failure means the client went away; nothing to do
	_ = json.NewEncoder(w).Encode(out)
}

// fetchInventory retrieves one peer's /api/inventory.
func (cl *cluster) fetchInventory(ctx context.Context, peer string) ([]RepoInfo, error) {
	actx, cancel := context.WithTimeout(ctx, cl.peerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, peer+"/api/inventory", nil)
	if err != nil {
		return nil, fmt.Errorf("%w: inventory: %v", ErrHub, err)
	}
	obs.FromContext(ctx).Inject(req.Header)
	resp, err := cl.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: inventory from %s: %v", ErrHub, peer, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: inventory from %s failed (%d)", ErrHub, peer, resp.StatusCode)
	}
	var out []RepoInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("%w: inventory from %s: %v", ErrHub, peer, err)
	}
	return out, nil
}
