package hub

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"modelhub/internal/obs"
)

// Gateway metrics (DESIGN.md §8).
var (
	mGwPublish      = obs.GetCounter("hub.cluster.gateway.publish.routed")
	mGwPull         = obs.GetCounter("hub.cluster.gateway.pull.routed")
	mGwPullFailover = obs.GetCounter("hub.cluster.gateway.pull.failover")
	mGwSearchFanout = obs.GetCounter("hub.cluster.gateway.search.fanout")
	mGwPeerErrors   = obs.GetCounter("hub.cluster.gateway.peer_errors")
)

// Gateway is the stateless routing tier in front of a replicated hub
// cluster: it speaks the exact client API (/api/publish, /api/search,
// /api/pull), so dlv clients point at the gateway and never learn the
// topology.
//
//   - Publishes are spooled, digest-verified, and handed to the name's
//     replica set in ring order (the owner then fans out to its peers).
//   - Pulls are routed to the owners first and read through every remaining
//     peer on miss — a name whose owners just changed (rebalance) or died
//     (failure) is still served by whichever node holds the blob, and a
//     gateway-side mid-stream cut is healed by the client's Range resume
//     landing on the next healthy peer.
//   - Searches fan out to all peers concurrently and return merged results,
//     deduplicated by name under last-writer-wins.
//
// The gateway holds no index and no blobs: consistent hashing over the
// shared peer list is its only routing state, so any number of gateways can
// run side by side.
type Gateway struct {
	ring        *Ring
	peers       []string
	replicas    int
	peerTimeout time.Duration
	hc          *http.Client
}

// NewGateway builds a gateway over cfg.Peers. cfg.Self is ignored — the
// gateway is not a replica.
func NewGateway(cfg ClusterConfig) (*Gateway, error) {
	cfg.Self = ""
	cl, err := newCluster(cfg, false)
	if err != nil {
		return nil, err
	}
	return &Gateway{
		ring:        cl.ring,
		peers:       cl.peers,
		replicas:    cl.replicas,
		peerTimeout: cl.peerTimeout,
		hc:          cl.hc,
	}, nil
}

// Handler returns the gateway's HTTP surface, wrapped in the same obs
// middleware stack as a storage node (hub.http.* metrics, panic recovery,
// trace extraction) and serving the /debug/traces flight recorder.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/publish", g.handlePublish)
	mux.HandleFunc("/api/search", g.handleSearch)
	mux.HandleFunc("/api/pull", g.handlePull)
	mux.HandleFunc("/api/inventory", g.handleInventory)
	mux.Handle("/debug/traces", obs.TracesHandler())
	return obs.WrapHandler(mux, obs.MiddlewareOptions{
		Prefix:    "hub.http",
		PanicBody: ErrHub.Error() + ": internal server error",
	})
}

// handlePublish spools the upload (verifying the client digest), then
// relays it to the name's owners in ring order until one commits it.
func (g *Gateway) handlePublish(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	name := r.URL.Query().Get("name")
	if err := validateName(name); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, span := obs.Start(r.Context(), "hub.gateway.publish")
	span.SetAttr("hub.name", name)
	ok := false
	defer func() {
		if !ok {
			span.SetError()
		}
		span.End()
	}()
	tmpName, digest, _, err := g.spool(r.Body)
	if err != nil {
		http.Error(w, "upload aborted or unreadable: "+err.Error(), http.StatusBadRequest)
		return
	}
	defer func() {
		//mhlint:ignore errcheck best-effort cleanup after the relay outcome is decided
		_ = os.Remove(tmpName)
	}()
	if want := r.Header.Get(DigestHeader); want != "" && !strings.EqualFold(want, digest) {
		mDigestMismatch.Inc()
		http.Error(w, fmt.Sprintf("digest mismatch: body is %s, %s says %s", digest, DigestHeader, want),
			http.StatusBadRequest)
		return
	}
	owners := g.ring.Owners(name, g.replicas)
	status, body, derr := forwardSpooled(ctx, g.hc, "gateway", owners, name, tmpName, digest, g.peerTimeout)
	if derr != nil {
		mGwPeerErrors.Inc()
		http.Error(w, derr.Error(), http.StatusBadGateway)
		return
	}
	ok = status == http.StatusOK
	if ok {
		mGwPublish.Inc()
		span.SetAttr("hub.owner", owners[0])
		w.Header().Set(DigestHeader, digest)
	}
	w.WriteHeader(status)
	//mhlint:ignore errcheck a response-write failure means the client went away; nothing to do
	_, _ = w.Write(body)
}

// spool streams a request body to a temp file, hashing as it lands.
func (g *Gateway) spool(body io.Reader) (tmpName, digest string, size int64, err error) {
	tmp, err := os.CreateTemp("", "hub-gateway-*.tar.gz")
	if err != nil {
		return "", "", 0, err
	}
	return spoolTo(tmp, body)
}

// handlePull routes a pull to the name's owners first, then reads through
// every remaining peer: rebalanced or partially-failed clusters keep
// serving as long as one node holds the blob. Range and If-Range headers
// pass through untouched, so client resume semantics are identical to
// talking to a storage node directly.
func (g *Gateway) handlePull(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	name := r.URL.Query().Get("name")
	if err := validateName(name); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, span := obs.Start(r.Context(), "hub.gateway.pull")
	span.SetAttr("hub.name", name)
	ok := false
	defer func() {
		if !ok {
			span.SetError()
		}
		span.End()
	}()

	candidates := g.pullOrder(name)
	lastStatus := http.StatusBadGateway
	lastBody := ErrHub.Error() + ": no peer reachable"
	for i, peer := range candidates {
		u := fmt.Sprintf("%s/api/pull?name=%s", peer, url.QueryEscape(name))
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		copyHeader(req.Header, r.Header, "Range", "If-Range", "If-None-Match", "Accept-Encoding")
		obs.FromContext(ctx).Inject(req.Header)
		resp, err := g.hc.Do(req)
		if err != nil {
			mGwPeerErrors.Inc()
			continue
		}
		if resp.StatusCode == http.StatusNotFound || resp.StatusCode >= 500 {
			lastStatus = resp.StatusCode
			//mhlint:ignore errcheck best-effort read of the error body for the message
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
			//mhlint:ignore errcheck best-effort close before moving to the next peer
			_ = resp.Body.Close()
			lastBody = strings.TrimSpace(string(msg))
			if resp.StatusCode >= 500 {
				mGwPeerErrors.Inc()
			}
			continue
		}
		// Definitive answer (200, 206, 304, 416, 4xx): relay it.
		if i > 0 {
			mGwPullFailover.Inc()
		}
		ok = resp.StatusCode < 400
		if ok {
			mGwPull.Inc()
		}
		span.SetAttr("hub.peer", peer)
		span.SetAttrInt("hub.failover_hops", int64(i))
		relayResponse(w, resp)
		//mhlint:ignore errcheck the relay already finished or failed with the client
		_ = resp.Body.Close()
		return
	}
	http.Error(w, lastBody, lastStatus)
}

// pullOrder is the peer probe order for one name: its owners in ring
// order, then every other peer (the read-through set for rebalances).
func (g *Gateway) pullOrder(name string) []string {
	owners := g.ring.Owners(name, g.replicas)
	inOwners := map[string]bool{}
	for _, o := range owners {
		inOwners[o] = true
	}
	out := append([]string{}, owners...)
	for _, p := range g.peers {
		if !inOwners[p] {
			out = append(out, p)
		}
	}
	return out
}

// relayResponse copies a peer response — transfer headers, status, body —
// to the client.
func relayResponse(w http.ResponseWriter, resp *http.Response) {
	copyHeader(w.Header(), resp.Header,
		"Content-Type", "Content-Length", "Content-Range", "Accept-Ranges",
		"Last-Modified", "ETag", DigestHeader)
	w.WriteHeader(resp.StatusCode)
	//mhlint:ignore errcheck a mid-stream relay failure is healed by the client's Range resume
	_, _ = io.Copy(w, resp.Body)
}

// copyHeader copies the named header keys from src to dst when present.
func copyHeader(dst, src http.Header, keys ...string) {
	for _, k := range keys {
		if vs := src.Values(k); len(vs) > 0 {
			dst[http.CanonicalHeaderKey(k)] = append([]string{}, vs...)
		}
	}
}

// handleSearch fans the query out to every peer concurrently and merges
// the answers: deduplicated by name with the newest record winning, sorted,
// always a JSON array. The search succeeds while at least one peer answers.
func (g *Gateway) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	g.fanout(w, r, "hub.gateway.search", "/api/search?q="+url.QueryEscape(r.URL.Query().Get("q")))
}

// handleInventory serves the merged cluster inventory — every name the
// cluster holds with its winning record. Handy for debugging and for the
// smoke tests' convergence asserts.
func (g *Gateway) handleInventory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	g.fanout(w, r, "hub.gateway.inventory", "/api/inventory")
}

// fanout GETs path on every peer concurrently and writes the merged,
// deduplicated []RepoInfo answer.
func (g *Gateway) fanout(w http.ResponseWriter, r *http.Request, spanName, path string) {
	ctx, span := obs.Start(r.Context(), spanName)
	ok := false
	defer func() {
		if !ok {
			span.SetError()
		}
		span.End()
	}()
	mGwSearchFanout.Inc()
	results := make([][]RepoInfo, len(g.peers))
	errs := make([]error, len(g.peers))
	var wg sync.WaitGroup
	for i, peer := range g.peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			results[i], errs[i] = g.fetchRepoList(ctx, peer, path)
		}(i, peer)
	}
	wg.Wait()
	merged := map[string]RepoInfo{}
	answered := 0
	for i := range results {
		if errs[i] != nil {
			mGwPeerErrors.Inc()
			continue
		}
		answered++
		for _, info := range results[i] {
			if cur, exists := merged[info.Name]; !exists || newerThan(info, cur) {
				merged[info.Name] = info
			}
		}
	}
	span.SetAttrInt("hub.peers_answered", int64(answered))
	if answered == 0 {
		http.Error(w, ErrHub.Error()+": no peer reachable", http.StatusBadGateway)
		return
	}
	ok = true
	// Empty results must encode as the JSON array [], not null.
	out := make([]RepoInfo, 0, len(merged))
	for _, info := range merged {
		out = append(out, info)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	w.Header().Set("Content-Type", "application/json")
	//mhlint:ignore errcheck a response-write failure means the client went away; nothing to do
	_ = json.NewEncoder(w).Encode(out)
}

// fetchRepoList GETs one peer's []RepoInfo answer for path.
func (g *Gateway) fetchRepoList(ctx context.Context, peer, path string) ([]RepoInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+path, nil)
	if err != nil {
		return nil, err
	}
	obs.FromContext(ctx).Inject(req.Header)
	resp, err := g.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: peer %s answered %d", ErrHub, peer, resp.StatusCode)
	}
	var out []RepoInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}
