package hub

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// hangingServer accepts requests and sits on them until the client goes
// away — the regression surface for the old bug where Publish/Search/Pull
// minted fresh background contexts and caller cancellation never reached
// the in-flight transfer.
func hangingServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: only after the body is consumed does
		// net/http watch the connection, so a client abort cancels
		// r.Context() and lets ts.Close() finish.
		//mhlint:ignore errcheck the drain exists only to unblock abort detection
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	t.Cleanup(ts.Close)
	return ts
}

// cancelOpts keeps retries/backoff small but non-zero so the test also
// proves cancellation cuts through the retry loop, and disables the stall
// watchdog as an accidental rescuer.
func cancelOpts() Options {
	return Options{Timeout: 30 * time.Second, StallTimeout: 30 * time.Second,
		Retries: 2, BaseBackoff: 50 * time.Millisecond}
}

// assertCancels runs op with a context cancelled after 100ms and asserts it
// returns context.Canceled well within one backoff interval of the cancel,
// not after the server deigns to answer.
func assertCancels(t *testing.T, what string, op func(ctx context.Context) error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(100*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()
	start := time.Now()
	err := op(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("%s under a cancelled context: %v, want context.Canceled", what, err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("%s took %s to notice cancellation", what, elapsed)
	}
}

func TestPublishCtxCancelAbortsUpload(t *testing.T) {
	ts := hangingServer(t)
	root := makeRepo(t, "m")
	client := NewClientWith(ts.URL, cancelOpts())
	assertCancels(t, "PublishCtx", func(ctx context.Context) error {
		return client.PublishCtx(ctx, root, "r")
	})
}

func TestPullCtxCancelAbortsDownload(t *testing.T) {
	ts := hangingServer(t)
	client := NewClientWith(ts.URL, cancelOpts())
	assertCancels(t, "PullCtx", func(ctx context.Context) error {
		return client.PullCtx(ctx, "r", t.TempDir())
	})
}

func TestSearchCtxCancelCutsBackoff(t *testing.T) {
	// Every attempt fails transiently (503), so the client sits in its
	// retry backoff — made enormous here so only cancellation can end the
	// call quickly.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	t.Cleanup(ts.Close)
	client := NewClientWith(ts.URL, Options{
		Timeout: 5 * time.Second, Retries: 3, BaseBackoff: time.Hour, MaxBackoff: time.Hour,
	})
	assertCancels(t, "SearchCtx", func(ctx context.Context) error {
		_, err := client.SearchCtx(ctx, "q")
		return err
	})
}

// TestBackoffJitterSeedDeterminism pins JitterSeed and asserts the delay
// sequence is reproducible — and that an unpinned seed gives each operation
// its own source rather than the old process-global one.
func TestBackoffJitterSeedDeterminism(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		o := Options{JitterSeed: seed, BaseBackoff: 100 * time.Millisecond, MaxBackoff: 5 * time.Second}.withDefaults()
		var out []time.Duration
		for attempt := 1; attempt <= 5; attempt++ {
			out = append(out, backoffDelay(attempt, o))
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pinned seed must reproduce delays: %v vs %v", a, b)
		}
	}
	if c := seq(43); a[0] == c[0] && a[1] == c[1] && a[2] == c[2] {
		t.Fatalf("different seeds gave identical delays: %v", a)
	}
}

func TestBackoffDelayStaysJitteredInRange(t *testing.T) {
	o := Options{JitterSeed: 7, BaseBackoff: 100 * time.Millisecond, MaxBackoff: 2 * time.Second}.withDefaults()
	for attempt := 1; attempt <= 8; attempt++ {
		// The deterministic (unjittered) exponential ceiling.
		d := o.BaseBackoff
		for i := 1; i < attempt && d < o.MaxBackoff; i++ {
			d *= 2
		}
		if d > o.MaxBackoff {
			d = o.MaxBackoff
		}
		got := backoffDelay(attempt, o)
		if got < d/2 || got > d {
			t.Fatalf("attempt %d: delay %s outside [%s, %s]", attempt, got, d/2, d)
		}
	}
}

// TestBackoffDelayConcurrentClients drives backoffDelay from many
// goroutines at once: per-operation sources mean no shared lock and no data
// race (the -race build is the real assertion here).
func TestBackoffDelayConcurrentClients(t *testing.T) {
	done := make(chan struct{}, 8)
	for g := 0; g < 8; g++ {
		go func() {
			o := Options{}.withDefaults()
			for i := 1; i <= 100; i++ {
				backoffDelay(i%5+1, o)
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
