package hub

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"errors"
	"math/rand"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"modelhub/internal/dlv"
	"modelhub/internal/tensor"
	"modelhub/internal/zoo"
)

// makeRepo builds a small repository with one committed model.
func makeRepo(t *testing.T, name string) string {
	t.Helper()
	root := t.TempDir()
	repo, err := dlv.Init(root)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	weights := map[string]*tensor.Matrix{
		"conv1": tensor.RandNormal(rng, 8, 10, 0.1),
		"ip2":   tensor.RandNormal(rng, 10, 65, 0.1),
	}
	_ = weights
	if _, err := repo.Commit(dlv.CommitInput{
		Name: name, NetDef: zoo.LeNet(name), Accuracy: 0.9,
		Files: map[string][]byte{"notes.md": []byte("hello")},
	}); err != nil {
		t.Fatal(err)
	}
	return root
}

func newTestServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL)
}

func TestPackUnpackRoundTrip(t *testing.T) {
	root := makeRepo(t, "lenet")
	var buf bytes.Buffer
	if err := PackRepo(root, &buf); err != nil {
		t.Fatal(err)
	}
	dest := t.TempDir()
	if err := UnpackRepo(bytes.NewReader(buf.Bytes()), dest); err != nil {
		t.Fatal(err)
	}
	repo, err := dlv.Open(dest)
	if err != nil {
		t.Fatal(err)
	}
	v, err := repo.VersionByName("lenet")
	if err != nil || v.Accuracy != 0.9 {
		t.Fatalf("unpacked repo: %+v, %v", v, err)
	}
	content, err := repo.GetObject(v.Files["notes.md"])
	if err != nil || string(content) != "hello" {
		t.Fatalf("object: %q, %v", content, err)
	}
}

func TestPackNonRepo(t *testing.T) {
	if err := PackRepo(t.TempDir(), &bytes.Buffer{}); !errors.Is(err, ErrHub) {
		t.Fatal("packing a non-repo must fail")
	}
}

func TestUnpackRejectsTraversal(t *testing.T) {
	evil := func(name string) []byte {
		var buf bytes.Buffer
		gz := gzip.NewWriter(&buf)
		tw := tar.NewWriter(gz)
		tw.WriteHeader(&tar.Header{Name: name, Mode: 0o644, Size: 4, Typeflag: tar.TypeReg})
		tw.Write([]byte("evil"))
		tw.Close()
		gz.Close()
		return buf.Bytes()
	}
	for _, name := range []string{"../escape", "/abs", "outside.txt", ".dlv/../../x"} {
		if err := UnpackRepo(bytes.NewReader(evil(name)), t.TempDir()); !errors.Is(err, ErrHub) {
			t.Errorf("entry %q must be rejected", name)
		}
	}
}

func TestPublishSearchPull(t *testing.T) {
	_, client := newTestServer(t)
	root := makeRepo(t, "alexnet_v1")
	if err := client.Publish(root, "vision-models"); err != nil {
		t.Fatal(err)
	}
	// Search by repo name substring.
	res, err := client.Search("vision")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Name != "vision-models" || res[0].SizeBytes <= 0 {
		t.Fatalf("search = %+v", res)
	}
	if len(res[0].Models) != 1 || res[0].Models[0] != "alexnet_v1" {
		t.Fatalf("models = %v", res[0].Models)
	}
	// Search by model name substring.
	res, err = client.Search("alexnet")
	if err != nil || len(res) != 1 {
		t.Fatalf("model search = %+v, %v", res, err)
	}
	// No match.
	res, err = client.Search("zzz")
	if err != nil || len(res) != 0 {
		t.Fatalf("miss search = %+v, %v", res, err)
	}
	// Pull into a fresh root and open it.
	dest := t.TempDir()
	if err := client.Pull("vision-models", dest); err != nil {
		t.Fatal(err)
	}
	repo, err := dlv.Open(dest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.VersionByName("alexnet_v1"); err != nil {
		t.Fatal(err)
	}
}

func TestPublishRejectsBadNames(t *testing.T) {
	_, client := newTestServer(t)
	root := makeRepo(t, "m")
	for _, bad := range []string{"", "../evil", "a/b", ".hidden", "sp ace"} {
		if err := client.Publish(root, bad); err == nil {
			t.Errorf("name %q must be rejected", bad)
		}
	}
}

func TestPublishRejectsGarbage(t *testing.T) {
	_, client := newTestServer(t)
	resp, err := client.httpClient().Post(client.Base+"/api/publish?name=x", "application/gzip",
		bytes.NewReader([]byte("not a tarball")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("garbage archive must be rejected")
	}
}

func TestPullUnknown(t *testing.T) {
	_, client := newTestServer(t)
	if err := client.Pull("ghost", t.TempDir()); !errors.Is(err, ErrHub) {
		t.Fatal("unknown pull must fail")
	}
}

func TestPullIntoExistingRepo(t *testing.T) {
	_, client := newTestServer(t)
	root := makeRepo(t, "m")
	if err := client.Publish(root, "r"); err != nil {
		t.Fatal(err)
	}
	if err := client.Pull("r", root); !errors.Is(err, ErrHub) {
		t.Fatal("pull into existing repo must fail")
	}
}

func TestServerIndexPersistence(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	client := NewClient(ts.URL)
	if err := client.Publish(makeRepo(t, "m"), "persisted"); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	// Reload the server from the same directory.
	srv2, err := NewServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	res, err := NewClient(ts2.URL).Search("persisted")
	if err != nil || len(res) != 1 {
		t.Fatalf("reloaded search = %+v, %v", res, err)
	}
}

func TestRepublishOverwrites(t *testing.T) {
	_, client := newTestServer(t)
	if err := client.Publish(makeRepo(t, "m1"), "r"); err != nil {
		t.Fatal(err)
	}
	if err := client.Publish(makeRepo(t, "m2"), "r"); err != nil {
		t.Fatal(err)
	}
	res, err := client.Search("r")
	if err != nil || len(res) != 1 {
		t.Fatalf("search = %+v, %v", res, err)
	}
	if len(res[0].Models) != 1 || res[0].Models[0] != "m2" {
		t.Fatalf("republish did not overwrite: %v", res[0].Models)
	}
}

func TestClientUnreachableServer(t *testing.T) {
	client := NewClient("http://127.0.0.1:1") // nothing listens there
	if err := client.Publish(makeRepo(t, "m"), "x"); !errors.Is(err, ErrHub) {
		t.Fatal("publish to dead server must fail with ErrHub")
	}
	if _, err := client.Search("x"); !errors.Is(err, ErrHub) {
		t.Fatal("search against dead server must fail")
	}
	if err := client.Pull("x", t.TempDir()); !errors.Is(err, ErrHub) {
		t.Fatal("pull from dead server must fail")
	}
}

func TestServerMethodNotAllowed(t *testing.T) {
	_, client := newTestServer(t)
	resp, err := client.httpClient().Get(client.Base + "/api/publish?name=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET publish = %d", resp.StatusCode)
	}
	resp, err = client.httpClient().Post(client.Base+"/api/search", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("POST search = %d", resp.StatusCode)
	}
	resp, err = client.httpClient().Post(client.Base+"/api/pull?name=x", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("POST pull = %d", resp.StatusCode)
	}
}

func TestServerCorruptIndex(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/index.json", []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(dir); !errors.Is(err, ErrHub) {
		t.Fatal("corrupt index must fail to load")
	}
}

func TestValidateNameEdgeCases(t *testing.T) {
	long := strings.Repeat("a", 200)
	for _, bad := range []string{long, "a:b", "a\\b"} {
		if err := validateName(bad); err == nil {
			t.Errorf("name %q must be invalid", bad)
		}
	}
	for _, good := range []string{"repo-1", "A.B_c"} {
		if err := validateName(good); err != nil {
			t.Errorf("name %q must be valid: %v", good, err)
		}
	}
}
