package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// detpath extends floatdet from a lexical scan to a path-sensitive check
// over the CFG, for the same packages carrying the bit-identical-results
// contract (internal/tensor, internal/dnn, internal/pas). floatdet catches
// float accumulation directly inside a map-range body; detpath catches the
// two ways nondeterministic map order leaks out of the loop:
//
//   - ordered sinks: writing to an outer strings.Builder / bytes.Buffer /
//     io.Writer (or fmt.Fprint* to one) inside a map-range body emits in
//     iteration order — no later fix-up is possible, so it is reported at
//     the write;
//   - unsorted key/value collection: appending to an outer slice inside a
//     map-range body taints the slice with iteration order. The taint is
//     killed by a sort call (sort.* / slices.Sort*) naming the slice. A
//     CFG path on which the tainted slice reaches a `return` or is itself
//     ranged over (the classic collect-keys-then-iterate pattern, minus
//     the sort) is reported — float accumulation over such a range is
//     exactly the nondeterminism floatdet exists to prevent.
var analyzerDetpath = &Analyzer{
	Name: "detpath",
	Doc:  "map-iteration order escaping via unsorted collected slices or ordered sinks in the deterministic packages",
	Run:  runDetpath,
}

func runDetpath(pass *Pass) {
	covered := false
	for _, suf := range floatdetSuffixes {
		if strings.HasSuffix(pass.Path, suf) {
			covered = true
			break
		}
	}
	if !covered {
		return
	}
	eachFunc(pass.Files, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		checkDetpathBody(pass, body)
	})
}

// taintSource is one append-into-outer-slice site inside a map-range body.
type taintSource struct {
	assign *ast.AssignStmt
	pos    token.Pos
	name   string
}

func checkDetpathBody(pass *Pass, body *ast.BlockStmt) {
	taints := map[types.Object]taintSource{}
	inspectSkippingFuncLits(body, func(n ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(pass.Info, rng) {
			return
		}
		inspectSkippingFuncLits(rng.Body, func(m ast.Node) {
			switch m := m.(type) {
			case *ast.AssignStmt:
				collectAppendTaint(pass, rng, m, taints)
			case *ast.CallExpr:
				checkOrderedSink(pass, rng, m)
			}
		})
	})
	if len(taints) == 0 {
		return
	}
	cfg := buildCFG(body)
	apply := func(n ast.Node, facts objSet) {
		ast.Inspect(n, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			if as, ok := x.(*ast.AssignStmt); ok {
				for obj, t := range taints {
					if t.assign == as {
						facts[obj] = true
					}
				}
			}
			if call, ok := x.(*ast.CallExpr); ok && isSortCall(pass.Info, call) {
				for obj := range taints {
					if callMentionsObj(pass.Info, call, obj) {
						delete(facts, obj)
					}
				}
			}
			return true
		})
	}
	visit := func(n ast.Node, facts objSet) {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for obj := range facts {
				if mentionsObj(pass.Info, n, obj) {
					t := taints[obj]
					pass.Reportf(n.Pos(), "%s collects map keys/values in iteration order (append at line %d) and reaches this return unsorted; sort it for bit-identical results", t.name, pass.Fset.Position(t.pos).Line)
				}
			}
		case ast.Expr:
			// Range heads record their X expression; ranging over a tainted
			// slice replays map order.
			if id := identFor(n); id != nil {
				if obj := pass.Info.Uses[id]; obj != nil && facts[obj] {
					if isRangeHead(pass.Info, id) {
						t := taints[obj]
						pass.Reportf(n.Pos(), "range over %s replays map iteration order (append at line %d); sort it first for bit-identical results", t.name, pass.Fset.Position(t.pos).Line)
					}
				}
			}
		}
	}
	forwardFlow(cfg, apply, visit)
}

// isMapRange reports whether the range statement iterates a map.
func isMapRange(info *types.Info, rng *ast.RangeStmt) bool {
	t := info.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// collectAppendTaint records `x = append(x, ...)` where x is a slice
// declared outside the map-range statement.
func collectAppendTaint(pass *Pass, rng *ast.RangeStmt, as *ast.AssignStmt, taints map[types.Object]taintSource) {
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
			continue
		}
		id := identFor(as.Lhs[i])
		if id == nil || id.Name == "_" {
			continue
		}
		obj := objOf(pass.Info, id)
		if obj == nil {
			continue
		}
		if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
			continue // loop-local collection never escapes an iteration
		}
		if _, seen := taints[obj]; !seen {
			taints[obj] = taintSource{assign: as, pos: as.Pos(), name: id.Name}
		}
	}
}

// orderedSinkRecvs are receiver types whose writes emit in call order.
var orderedSinkRecvs = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
}

// checkOrderedSink flags writes to an outer ordered sink inside a map-range
// body.
func checkOrderedSink(pass *Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	outer := func(e ast.Expr) bool {
		root := rootIdent(e)
		if root == nil {
			return false
		}
		obj := objOf(pass.Info, root)
		return obj != nil && (obj.Pos() < rng.Pos() || obj.Pos() >= rng.End())
	}
	if r := recvNamed(pass.Info, call); orderedSinkRecvs[r] {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if ok && strings.HasPrefix(sel.Sel.Name, "Write") && outer(sel.X) {
			pass.Reportf(call.Pos(), "write to %s inside a map range emits in iteration order; iterate sorted keys", types.ExprString(sel.X))
		}
		return
	}
	if path := calleePath(pass.Info, call); strings.HasPrefix(path, "fmt.Fprint") && len(call.Args) > 0 && outer(call.Args[0]) {
		pass.Reportf(call.Pos(), "%s to %s inside a map range emits in iteration order; iterate sorted keys", path, types.ExprString(call.Args[0]))
	}
}

// isSortCall reports whether the call is a sort.* or slices.Sort* ordering
// call.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	path := calleePath(info, call)
	return strings.HasPrefix(path, "sort.") || strings.HasPrefix(path, "slices.Sort")
}

// callMentionsObj reports whether any call argument references obj.
func callMentionsObj(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	for _, a := range call.Args {
		if mentionsObj(info, a, obj) {
			return true
		}
	}
	return false
}

// isRangeHead reports whether the identifier is the X of a range statement.
// The CFG records range heads as bare expressions, so the ident's immediate
// role is recovered from the expression itself: detpath passes only nodes
// recorded by the builder, and a bare expression node that IS the ident can
// only have come from a range head or a condition; conditions over slices
// don't type-check, so the ident's slice type suffices.
func isRangeHead(info *types.Info, id *ast.Ident) bool {
	t := info.TypeOf(id)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}
