package lint

import (
	"go/ast"
	"go/token"
)

// This file is the gen-2 framework's control-flow layer: a per-function CFG
// built directly from the AST, statement-granular, with no x/tools
// dependency. Analyzers that reason about paths (spanend, detpath) or
// reachability (goroleak) build one CFG per function and run the forward
// dataflow engine in dataflow.go over it.
//
// The graph is deliberately simple:
//
//   - a Block is a maximal straight-line run of statements/expressions in
//     execution order; Nodes holds them (conditions of if/for/switch appear
//     as expression nodes so transfer functions see their evaluation);
//   - Blocks[0] is the entry; Exit is one synthetic, empty exit block that
//     every return, panic, and fall-off-the-end edge targets;
//   - `defer` statements are recorded in Defers (in registration order) as
//     well as appearing in their block, because deferred calls execute at
//     every later exit — path analyses treat a deferred call as covering
//     all returns downstream of its registration;
//   - nested function literals are NOT flowed into: their bodies run at
//     some other time. Analyzers build separate CFGs for literals they care
//     about.
//
// goto/labeled break/continue are resolved with a patch list, so forward
// gotos work. Unreachable code after a terminating statement lands in a
// fresh predecessor-less block — it stays visible to analyzers but carries
// no facts.

// Block is one straight-line run of nodes with its control-flow successors.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block // Blocks[0] is the entry
	Exit   *Block   // synthetic exit; empty Nodes
	// Defers lists every defer statement in the body (outside nested
	// function literals), in registration order.
	Defers []*ast.DeferStmt
	// blockOf maps each recorded node to its containing block.
	blockOf map[ast.Node]*Block
}

// BlockOf returns the block holding a node recorded in the CFG, or nil.
func (c *CFG) BlockOf(n ast.Node) *Block { return c.blockOf[n] }

// ReachableFrom returns the set of blocks reachable from b, including b
// itself.
func (c *CFG) ReachableFrom(b *Block) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(x *Block) {
		if x == nil || seen[x] {
			return
		}
		seen[x] = true
		for _, s := range x.Succs {
			walk(s)
		}
	}
	walk(b)
	return seen
}

// preds computes the predecessor lists of every block.
func (c *CFG) preds() map[*Block][]*Block {
	p := map[*Block][]*Block{}
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			p[s] = append(p[s], b)
		}
	}
	return p
}

// buildCFG constructs the CFG of one function body.
func buildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg: &CFG{blockOf: map[ast.Node]*Block{}},
	}
	b.cfg.Exit = &Block{Index: -1}
	b.cur = b.newBlock()
	b.labels = map[string]*Block{}
	b.stmt(body)
	// Falling off the end of the body reaches the exit.
	b.edge(b.cur, b.cfg.Exit)
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	b.patchGotos()
	return b.cfg
}

// loopFrame is one enclosing breakable/continuable construct.
type loopFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	frames []loopFrame
	labels map[string]*Block
	gotos  []pendingGoto
	// nextLabel names the label attached to the next loop/switch statement.
	nextLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// add records a node in the current block.
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
	b.cfg.blockOf[n] = b.cur
}

// terminate ends the current block with an edge to `to` (nil for none) and
// continues building in a fresh, possibly unreachable block.
func (b *cfgBuilder) terminate(to *Block) {
	b.edge(b.cur, to)
	b.cur = b.newBlock()
}

// takeLabel consumes the pending label for a loop/switch statement.
func (b *cfgBuilder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

func (b *cfgBuilder) pushFrame(label string, breakTo, continueTo *Block) {
	b.frames = append(b.frames, loopFrame{label: label, breakTo: breakTo, continueTo: continueTo})
}

func (b *cfgBuilder) popFrame() { b.frames = b.frames[:len(b.frames)-1] }

// findBreak resolves the break target for an optional label.
func (b *cfgBuilder) findBreak(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label == "" || f.label == label {
			return f.breakTo
		}
	}
	return nil
}

// findContinue resolves the continue target for an optional label.
func (b *cfgBuilder) findContinue(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if f.continueTo == nil {
			continue // switch/select frames are not continue targets
		}
		if label == "" || f.label == label {
			return f.continueTo
		}
	}
	return nil
}

func (b *cfgBuilder) patchGotos() {
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, target)
		}
	}
}

// stmt builds flow for one statement.
func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.IfStmt:
		b.stmt(s.Init)
		b.add(s.Cond)
		condBlk := b.cur
		thenBlk := b.newBlock()
		join := b.newBlock()
		b.edge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmt(s.Body)
		b.edge(b.cur, join)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(condBlk, join)
		}
		b.cur = join
	case *ast.ForStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		head := b.newBlock()
		b.edge(b.cur, head)
		body := b.newBlock()
		post := b.newBlock()
		done := b.newBlock()
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(head, done)
		}
		b.edge(head, body)
		b.pushFrame(label, done, post)
		b.cur = body
		b.stmt(s.Body)
		b.popFrame()
		b.edge(b.cur, post)
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.cur, head)
		b.cur = done
	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head := b.newBlock()
		b.edge(b.cur, head)
		body := b.newBlock()
		done := b.newBlock()
		b.cur = head
		if s.Key != nil {
			b.add(s.Key)
		}
		if s.Value != nil {
			b.add(s.Value)
		}
		b.edge(head, body)
		b.edge(head, done)
		b.pushFrame(label, done, head)
		b.cur = body
		b.stmt(s.Body)
		b.popFrame()
		b.edge(b.cur, head)
		b.cur = done
	case *ast.SwitchStmt:
		b.switchLike(s.Init, s.Tag, s.Body)
	case *ast.TypeSwitchStmt:
		b.stmt(s.Init)
		b.add(s.Assign) // the `v := x.(type)` guard evaluates in the eval block
		b.switchLike(nil, nil, s.Body)
	case *ast.SelectStmt:
		label := b.takeLabel()
		sel := b.cur
		done := b.newBlock()
		b.pushFrame(label, done, nil)
		hasDefault := false
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.edge(sel, blk)
			b.cur = blk
			if cc.Comm == nil {
				hasDefault = true
			} else {
				b.stmt(cc.Comm)
			}
			for _, st := range cc.Body {
				b.stmt(st)
			}
			b.edge(b.cur, done)
		}
		b.popFrame()
		_ = hasDefault // a defaultless select still terminates via some clause
		b.cur = done
	case *ast.LabeledStmt:
		target := b.newBlock()
		b.edge(b.cur, target)
		b.cur = target
		b.labels[s.Label.Name] = target
		b.nextLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.nextLabel = ""
	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			b.add(s)
			b.terminate(b.findBreak(label))
		case token.CONTINUE:
			b.add(s)
			b.terminate(b.findContinue(label))
		case token.GOTO:
			b.add(s)
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
			b.cur = b.newBlock()
		case token.FALLTHROUGH:
			// Handled structurally in switchLike; nothing to record.
		}
	case *ast.ReturnStmt:
		b.add(s)
		b.terminate(b.cfg.Exit)
	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanicCall(call) {
			b.terminate(b.cfg.Exit)
		}
	default:
		// Assignments, declarations, go statements, sends, inc/dec, empty
		// statements: straight-line.
		b.add(s)
	}
}

// switchLike builds flow for expression and type switches.
func (b *cfgBuilder) switchLike(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt) {
	label := b.takeLabel()
	b.stmt(init)
	if tag != nil {
		b.add(tag)
	}
	eval := b.cur
	done := b.newBlock()
	b.pushFrame(label, done, nil)
	var caseBlocks []*Block
	var caseClauses []*ast.CaseClause
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(eval, blk)
		caseBlocks = append(caseBlocks, blk)
		caseClauses = append(caseClauses, cc)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(eval, done)
	}
	for i, cc := range caseClauses {
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		falls := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls = true
				continue
			}
			b.stmt(st)
		}
		if falls && i+1 < len(caseBlocks) {
			b.edge(b.cur, caseBlocks[i+1])
		} else {
			b.edge(b.cur, done)
		}
	}
	b.popFrame()
	b.cur = done
}

// isPanicCall reports whether the expression is a direct call to the builtin
// panic. The builder treats it as terminating; analyzers that care whether
// the ident truly resolves to the builtin refine with type info.
func isPanicCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// eachFunc visits every function with a body in the package: declarations
// and all nested function literals, each paired with its enclosing
// declaration (for diagnostics and scope classification).
func eachFunc(files []*ast.File, fn func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn(fd, nil, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					fn(fd, lit, lit.Body)
				}
				return true
			})
		}
	}
}
