package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// fixture type-checking shares one file set and one source importer so the
// stdlib is only type-checked once per test binary.
var (
	fixOnce sync.Once
	fixFset *token.FileSet
	fixImp  types.Importer
)

// loadFixture parses and type-checks one fixture source under the given
// import path (the path drives the package-scoping rules).
func loadFixture(t *testing.T, path, src string) *Package {
	t.Helper()
	fixOnce.Do(func() {
		fixFset = token.NewFileSet()
		fixImp = importer.ForCompiler(fixFset, "source", nil)
	})
	f, err := parser.ParseFile(fixFset, t.Name()+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: fixImp}
	tpkg, err := conf.Check(path, fixFset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	return &Package{
		Module: "modelhub",
		Path:   path,
		Fset:   fixFset,
		Files:  []*ast.File{f},
		Types:  tpkg,
		Info:   info,
	}
}

// runFixture runs one analyzer over one fixture.
func runFixture(t *testing.T, a *Analyzer, path, src string) Result {
	t.Helper()
	return Run([]*Package{loadFixture(t, path, src)}, []*Analyzer{a})
}

// wantFindings asserts the active findings contain each wanted substring,
// in order, and nothing else.
func wantFindings(t *testing.T, res Result, want []string, wantSuppressed int) {
	t.Helper()
	if len(res.Findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(res.Findings), len(want), formatFindings(res.Findings))
	}
	for i, w := range want {
		if !strings.Contains(res.Findings[i].Message, w) {
			t.Errorf("finding %d = %q, want substring %q", i, res.Findings[i].Message, w)
		}
	}
	if len(res.Suppressed) != wantSuppressed {
		t.Errorf("got %d suppressed, want %d:\n%s", len(res.Suppressed), wantSuppressed, formatFindings(res.Suppressed))
	}
}

func formatFindings(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}

func TestIgnoreDirectiveMalformed(t *testing.T) {
	res := runFixture(t, analyzerAPIHygiene, "modelhub/internal/fix", `package fix

import "fmt"

//mhlint:ignore apihygiene
func F() { fmt.Println("x") }
`)
	// The malformed directive (no reason) is itself a finding, and it does
	// not suppress the fmt.Println finding.
	if len(res.Findings) != 2 {
		t.Fatalf("got %d findings, want 2 (malformed directive + unsuppressed):\n%s", len(res.Findings), formatFindings(res.Findings))
	}
	if res.Findings[0].Analyzer != "mhlint" || !strings.Contains(res.Findings[0].Message, "malformed") {
		t.Errorf("first finding = %v, want malformed-directive report", res.Findings[0])
	}
}

func TestIgnoreWildcard(t *testing.T) {
	res := runFixture(t, analyzerAPIHygiene, "modelhub/internal/fix", `package fix

import "fmt"

func F() {
	fmt.Println("x") //mhlint:ignore * demo of the wildcard form
}
`)
	wantFindings(t, res, nil, 1)
}

func TestByName(t *testing.T) {
	as, err := ByName("locksafe, errcheck")
	if err != nil || len(as) != 2 {
		t.Fatalf("ByName = %v, %v", as, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) should fail")
	}
	if _, err := ByName(""); err == nil {
		t.Fatal("ByName(empty) should fail")
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pat, imp string
		want     bool
	}{
		{"./...", "modelhub", true},
		{"./...", "modelhub/internal/pas", true},
		{"./internal/...", "modelhub/internal/pas", true},
		{"./internal/...", "modelhub/cmd/dlv", false},
		{"./internal/pas", "modelhub/internal/pas", true},
		{"./internal/pas", "modelhub/internal/pasx", false},
		{"internal/pas", "modelhub/internal/pas", true},
		{"modelhub/internal/pas", "modelhub/internal/pas", true},
	}
	for _, c := range cases {
		if got := matchPattern("modelhub", c.pat, c.imp); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.pat, c.imp, got, c.want)
		}
	}
}

// TestLoadModule builds a miniature two-package module on disk and checks
// the loader resolves the internal import and the analyzers see both
// packages.
func TestLoadModule(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module mini\n\ngo 1.22\n")
	write("internal/a/a.go", `package a

// V is a demo value.
var V = 1
`)
	write("internal/b/b.go", `package b

import (
	"fmt"

	"mini/internal/a"
)

// F prints the demo value.
func F() { fmt.Println(a.V) }
`)
	write("internal/b/b_test.go", `package b

// Test files must not be loaded; this one would not even parse OK(
`)
	pkgs, err := Load(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	// fmt.Println in a library package trips both apihygiene (stdout) and
	// errcheck (dropped (n, err)).
	res := Run(pkgs, All())
	if len(res.Findings) != 2 ||
		res.Findings[0].Analyzer != "apihygiene" || res.Findings[1].Analyzer != "errcheck" ||
		!strings.Contains(res.Findings[0].Message, "fmt.Println") {
		t.Fatalf("mini-module findings = %s, want the fmt.Println apihygiene + errcheck pair", formatFindings(res.Findings))
	}

	if _, err := Load(dir, []string{"./nope/..."}); err == nil {
		t.Fatal("Load with unmatched pattern should fail")
	}
}
