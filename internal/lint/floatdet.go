package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// floatdet protects the bit-identical-results guarantees of the numeric
// packages: PR 2's GEMM kernels and parallel enumeration are bit-exact at
// any worker count precisely because accumulation order is fixed. A `range`
// over a map whose body accumulates into a float declared outside the loop
// reintroduces nondeterminism — Go randomizes map iteration order, and
// float addition does not commute in rounding.
//
// Scope: the packages carrying numeric determinism guarantees
// (internal/tensor, internal/dnn, internal/pas). The fix is to iterate
// sorted keys.
var analyzerFloatdet = &Analyzer{
	Name: "floatdet",
	Doc:  "map-ordered float accumulation in the deterministic numeric packages",
	Run:  runFloatdet,
}

// floatdetSuffixes are the package paths (relative to the module) under the
// determinism contract.
var floatdetSuffixes = []string{"/internal/tensor", "/internal/dnn", "/internal/pas"}

func runFloatdet(pass *Pass) {
	covered := false
	for _, suf := range floatdetSuffixes {
		if strings.HasSuffix(pass.Path, suf) {
			covered = true
			break
		}
	}
	if !covered {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rng)
			return true
		})
	}
}

// checkMapRangeBody flags float accumulation into loop-external variables
// inside a map-range body.
func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			reportIfFloatAccum(pass, rng, as.Lhs[0])
		case token.ASSIGN:
			// x = x + v style accumulation.
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				if bin, ok := ast.Unparen(as.Rhs[i]).(*ast.BinaryExpr); ok && exprMentions(bin, lhs) {
					reportIfFloatAccum(pass, rng, lhs)
				}
			}
		}
		return true
	})
}

// reportIfFloatAccum reports when lhs is a float lvalue rooted at a
// variable declared outside the range statement.
func reportIfFloatAccum(pass *Pass, rng *ast.RangeStmt, lhs ast.Expr) {
	t := pass.Info.TypeOf(lhs)
	basic, ok := t.(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return
	}
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	obj := pass.Info.Uses[root]
	if obj == nil {
		obj = pass.Info.Defs[root]
	}
	if obj == nil {
		return
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return // loop-local accumulator: reset each iteration, order-free
	}
	pass.Reportf(lhs.Pos(), "float accumulation into %s under map iteration order; iterate sorted keys for bit-identical results", types.ExprString(lhs))
}

// rootIdent returns the base identifier of an lvalue (x, x.f, x[i], *x).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X // &x roots at x
		default:
			return nil
		}
	}
}

// exprMentions reports whether the expression tree contains a sub-expression
// textually identical to target.
func exprMentions(e ast.Expr, target ast.Expr) bool {
	want := types.ExprString(target)
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if sub, ok := n.(ast.Expr); ok && types.ExprString(sub) == want {
			found = true
		}
		return !found
	})
	return found
}
