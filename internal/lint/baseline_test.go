package lint

import (
	"go/token"
	"strings"
	"testing"
	"unicode/utf8"
)

func mkFinding(file string, line int, analyzer, msg string) Finding {
	return Finding{
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Analyzer: analyzer,
		Message:  msg,
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		mkFinding("/root/mod/internal/a/a.go", 10, "goroleak", "leak"),
		mkFinding("/root/mod/internal/b/b.go", 20, "ctxflow", "fresh root"),
	}
	rel := ModuleRel("/root/mod")
	b := MakeBaseline(findings, rel)
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(data)
	if err != nil {
		t.Fatalf("LoadBaseline after Marshal: %v", err)
	}
	if len(got.Findings) != 2 || got.Findings[0].File != "internal/a/a.go" {
		t.Fatalf("round trip = %+v", got.Findings)
	}

	fresh, accepted, unmatched := got.Split(findings, rel)
	if len(fresh) != 0 || len(accepted) != 2 || unmatched != 0 {
		t.Fatalf("Split of the exact set = fresh %d, accepted %d, unmatched %d", len(fresh), len(accepted), unmatched)
	}
}

func TestBaselineSplitIsLineInsensitive(t *testing.T) {
	old := mkFinding("a.go", 10, "goroleak", "leak")
	b := MakeBaseline([]Finding{old}, nil)
	// The same finding drifted to another line still matches.
	drifted := mkFinding("a.go", 99, "goroleak", "leak")
	fresh, accepted, unmatched := b.Split([]Finding{drifted}, nil)
	if len(fresh) != 0 || len(accepted) != 1 || unmatched != 0 {
		t.Fatalf("drifted finding not accepted: fresh %d, accepted %d, unmatched %d", len(fresh), len(accepted), unmatched)
	}
}

func TestBaselineSplitMultiset(t *testing.T) {
	dup := mkFinding("a.go", 1, "errcheck", "dropped")
	b := MakeBaseline([]Finding{dup}, nil) // ONE accepted instance
	fresh, accepted, unmatched := b.Split([]Finding{dup, mkFinding("a.go", 2, "errcheck", "dropped")}, nil)
	if len(accepted) != 1 || len(fresh) != 1 {
		t.Fatalf("multiset budget violated: fresh %d, accepted %d", len(fresh), len(accepted))
	}
	if unmatched != 0 {
		t.Fatalf("unmatched = %d, want 0", unmatched)
	}

	// A baseline row matching nothing is counted, not fatal.
	_, _, unmatched = b.Split(nil, nil)
	if unmatched != 1 {
		t.Fatalf("unmatched = %d, want 1", unmatched)
	}
}

func TestLoadBaselineRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"wrong version":  `{"version": 2, "findings": []}`,
		"unknown field":  `{"version": 1, "findings": [], "extra": true}`,
		"missing fields": `{"version": 1, "findings": [{"file": "a.go"}]}`,
		"not json":       `boom`,
	}
	for name, src := range cases {
		if _, err := LoadBaseline([]byte(src)); err == nil {
			t.Errorf("%s: LoadBaseline accepted %q", name, src)
		}
	}
}

func TestModuleRel(t *testing.T) {
	rel := ModuleRel("/root/mod")
	cases := [][2]string{
		{"/root/mod/internal/a/a.go", "internal/a/a.go"},
		{"/elsewhere/b.go", "/elsewhere/b.go"},
		{"fixture.go", "fixture.go"}, // already relative: untouched
	}
	for _, c := range cases {
		if got := rel(c[0]); got != c[1] {
			t.Errorf("rel(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}

func TestJSONReportShape(t *testing.T) {
	fresh := []Finding{mkFinding("a.go", 1, "goroleak", "leak")}
	sup := []Finding{{
		Pos:          token.Position{Filename: "b.go", Line: 2, Column: 3},
		Analyzer:     "errcheck",
		Message:      "dropped",
		SuppressedBy: "audited",
	}}
	r := Report("modelhub", 3, All(), fresh, nil, sup, nil)
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{
		`"module": "modelhub"`,
		`"packages": 3`,
		`"goroleak"`,
		`"suppressed_by": "audited"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report JSON missing %s:\n%s", want, s)
		}
	}
	if !strings.HasSuffix(s, "\n") {
		t.Error("report JSON should end in a newline")
	}
}

func TestParseIgnoreDirective(t *testing.T) {
	cases := []struct {
		text     string
		analyzer string
		reason   string
		ok       bool
	}{
		{"//mhlint:ignore errcheck close error is moot", "errcheck", "close error is moot", true},
		{"//mhlint:ignore * blanket", "*", "blanket", true},
		{"//mhlint:ignore errcheck", "errcheck", "", true},
		{"//mhlint:ignore", "", "", true},
		{"// mhlint:ignore errcheck spaced out", "", "", false},
		{"//nolint:errcheck", "", "", false},
		{"plain text", "", "", false},
	}
	for _, c := range cases {
		a, r, ok := ParseIgnoreDirective(c.text)
		if a != c.analyzer || r != c.reason || ok != c.ok {
			t.Errorf("ParseIgnoreDirective(%q) = (%q, %q, %v), want (%q, %q, %v)", c.text, a, r, ok, c.analyzer, c.reason, c.ok)
		}
	}
}

// FuzzLintDirectiveAndBaseline drives arbitrary bytes through the two
// text-format parsers the lint gate trusts: the //mhlint:ignore directive
// parser and the baseline JSON loader. Invariants: neither panics; a
// directive parse that claims ok really saw the prefix; a baseline that
// loads survives a marshal/load round trip with the same entry count.
func FuzzLintDirectiveAndBaseline(f *testing.F) {
	f.Add([]byte("//mhlint:ignore errcheck close error is moot"))
	f.Add([]byte("//mhlint:ignore * blanket excuse"))
	f.Add([]byte("//mhlint:ignore\t"))
	f.Add([]byte(`{"version": 1, "findings": []}`))
	f.Add([]byte(`{"version": 1, "findings": [{"file": "a.go", "analyzer": "goroleak", "message": "leak"}]}`))
	f.Add([]byte(`{"version": 9}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		text := string(data)
		analyzer, reason, ok := ParseIgnoreDirective(text)
		if ok && !strings.HasPrefix(text, "//mhlint:ignore") {
			t.Fatalf("ok=true for non-directive %q", text)
		}
		if !ok && (analyzer != "" || reason != "") {
			t.Fatalf("not-a-directive returned content (%q, %q)", analyzer, reason)
		}
		if ok && utf8.ValidString(text) {
			// Reparsing a directive rebuilt from its parts must agree on
			// the analyzer (reason whitespace is normalized).
			a2, _, ok2 := ParseIgnoreDirective("//mhlint:ignore " + analyzer + " " + reason)
			if analyzer != "" && (!ok2 || a2 != analyzer) {
				t.Fatalf("rebuilt directive parsed as (%q, %v), want analyzer %q", a2, ok2, analyzer)
			}
		}

		b, err := LoadBaseline(data)
		if err != nil {
			return
		}
		out, err := b.Marshal()
		if err != nil {
			t.Fatalf("loaded baseline fails to marshal: %v", err)
		}
		b2, err := LoadBaseline(out)
		if err != nil {
			t.Fatalf("marshalled baseline fails to reload: %v", err)
		}
		if len(b2.Findings) != len(b.Findings) {
			t.Fatalf("round trip changed entry count: %d -> %d", len(b.Findings), len(b2.Findings))
		}
	})
}
