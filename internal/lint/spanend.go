package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// spanend guards the obs span protocol: a span returned by obs.Start or
// obs.StartRoot must be Ended on every return path, or its duration is
// never observed and its parent's child rollup silently loses time. PR 4
// wired spans through checkout/commit/evaluate by hand; this analyzer makes
// the discipline mechanical before the service arc adds request-scoped
// spans to every handler.
//
// The check is a forward may-analysis over the function CFG: starting a
// span gens an "unended" fact on its variable; calling End (directly or via
// defer) kills it; any other use — passing the span to a function,
// returning it, storing it, capturing it in a closure — is treated as an
// ownership transfer and conservatively kills too. A fact that survives to
// the synthetic exit block means some path returns without End.
//
// Annotation methods (SetAttr, Event, SetError, ...) are neutral: they
// read or decorate the span without ending it, so calling them neither
// kills the fact nor counts as an escape — a span that is annotated but
// never Ended is still reported.
var analyzerSpanend = &Analyzer{
	Name: "spanend",
	Doc:  "obs spans started without an End on every return path",
	Run:  runSpanend,
}

func runSpanend(pass *Pass) {
	obsPath := pass.Module + "/internal/obs"
	if pass.Path == obsPath {
		return // the obs package itself constructs spans internally
	}
	eachFunc(pass.Files, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		checkSpanBody(pass, obsPath, body)
	})
}

// spanStart records one tracked span variable and its starting assignment.
type spanStart struct {
	assign *ast.AssignStmt
	pos    token.Pos
	name   string
}

// checkSpanBody analyzes one function body (nested literals excluded: they
// are analyzed as their own bodies).
func checkSpanBody(pass *Pass, obsPath string, body *ast.BlockStmt) {
	starts := map[types.Object]spanStart{}
	inspectSkippingFuncLits(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		var spanIdx int
		switch calleePath(pass.Info, call) {
		case obsPath + ".Start":
			spanIdx = 1 // (ctx, span)
		case obsPath + ".StartRoot":
			spanIdx = 0
		case obsPath + ".StartRemote":
			spanIdx = 1 // (ctx, span), continuing a remote trace
		default:
			return
		}
		if spanIdx >= len(as.Lhs) {
			return
		}
		id := identFor(as.Lhs[spanIdx])
		if id == nil || id.Name == "_" {
			return
		}
		if obj := objOf(pass.Info, id); obj != nil {
			starts[obj] = spanStart{assign: as, pos: call.Pos(), name: id.Name}
		}
	})
	if len(starts) == 0 {
		return
	}
	cfg := buildCFG(body)
	apply := func(n ast.Node, facts objSet) {
		applySpanEffects(pass.Info, n, starts, facts)
	}
	in := forwardFlow(cfg, apply, nil)
	for obj := range in[cfg.Exit] {
		s := starts[obj]
		pass.Reportf(s.pos, "span %s may reach a return without End(); defer %s.End() at the start site", s.name, s.name)
	}
}

// spanNeutralMethods are Span methods that read or annotate a live span
// without ending it. Calling one on a tracked span keeps the must-End
// obligation in force (and is not an ownership transfer).
var spanNeutralMethods = map[string]bool{
	"SetAttr": true, "SetAttrInt": true, "Event": true, "SetError": true,
	"Name": true, "TraceID": true, "SpanID": true, "Inject": true,
}

// applySpanEffects walks one CFG node applying span gen/kill:
//
//	gen:     the recorded starting assignment
//	kill:    <span>.End() (called directly, deferred, or value-used), or
//	         any non-neutral appearance of the span variable (escape)
//	neutral: annotation calls (<span>.SetAttr(...) etc.) — the fact
//	         survives, but their arguments are still inspected
func applySpanEffects(info *types.Info, n ast.Node, starts map[types.Object]spanStart, facts objSet) {
	isStartAssign := func(x ast.Node) (types.Object, bool) {
		for obj, s := range starts {
			if s.assign == x {
				return obj, true
			}
		}
		return nil, false
	}
	// trackedRecv reports whether sel.X is a span variable under analysis.
	trackedRecv := func(sel *ast.SelectorExpr) bool {
		id := identFor(sel.X)
		if id == nil {
			return false
		}
		obj := info.Uses[id]
		if obj == nil {
			return false
		}
		_, tracked := starts[obj]
		return tracked
	}
	var visit func(x ast.Node) bool
	visit = func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			// Closure capture transfers ownership: conservatively ended.
			for obj := range starts {
				if mentionsObj(info, x.Body, obj) {
					delete(facts, obj)
				}
			}
			return false
		case *ast.AssignStmt:
			if obj, ok := isStartAssign(x); ok {
				facts[obj] = true
				return false // the defining assign is not an escape
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && trackedRecv(sel) {
				switch {
				case sel.Sel.Name == "End":
					if id := identFor(sel.X); id != nil {
						delete(facts, info.Uses[id])
					}
					return false // the End receiver is not an escape
				case spanNeutralMethods[sel.Sel.Name]:
					// Annotation: skip the receiver ident (not an escape)
					// but look inside the arguments normally.
					for _, arg := range x.Args {
						ast.Inspect(arg, visit)
					}
					return false
				}
			}
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				if _, tracked := starts[obj]; tracked {
					delete(facts, obj) // escape: returned, passed, or stored
				}
			}
		}
		return true
	}
	ast.Inspect(n, visit)
}

// inspectSkippingFuncLits visits every node of the body except subtrees of
// nested function literals.
func inspectSkippingFuncLits(body ast.Node, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
