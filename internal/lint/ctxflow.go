package lint

import (
	"go/ast"
	"go/types"
)

// ctxflow guards context plumbing on the handler and client paths that the
// service arc rides on. A function that already holds a request context —
// a context.Context parameter, or an *http.Request parameter (the carrier
// of one) — must not:
//
//   - mint a fresh root with context.Background() or context.TODO(): a
//     downstream call chained off the fresh root outlives cancellation and
//     deadlines of the request that spawned it;
//   - call context-oblivious blocking I/O (http.Get/Post/Head helpers,
//     Client.Get-style helper methods, net.Dial, http.NewRequest): the
//     request's cancellation can never reach the blocked call. Use
//     http.NewRequestWithContext / net.Dialer.DialContext and plumb the
//     context through.
//
// Functions without a context in scope are exempt — there is nothing to
// plumb; growing a ctx parameter is an API decision, not a lint fix.
var analyzerCtxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context.Background()/blocking no-ctx I/O inside functions that already hold a request context",
	Run:  runCtxflow,
}

// ctxOblivious maps package-level callees to the ctx-aware replacement.
var ctxOblivious = map[string]string{
	"net/http.Get":        "http.NewRequestWithContext + Client.Do",
	"net/http.Post":       "http.NewRequestWithContext + Client.Do",
	"net/http.PostForm":   "http.NewRequestWithContext + Client.Do",
	"net/http.Head":       "http.NewRequestWithContext + Client.Do",
	"net/http.NewRequest": "http.NewRequestWithContext",
	"net.Dial":            "net.Dialer.DialContext",
	"net.DialTimeout":     "net.Dialer.DialContext",
}

// ctxObliviousClientMethods are (*http.Client) helper methods without a ctx
// parameter.
var ctxObliviousClientMethods = map[string]bool{
	"Get": true, "Post": true, "PostForm": true, "Head": true,
}

func runCtxflow(pass *Pass) {
	eachFunc(pass.Files, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		carrier := ctxCarrier(pass.Info, decl, lit)
		if carrier == "" && lit != nil {
			// A literal with no context parameter of its own can still reach
			// the enclosing declaration's context lexically.
			carrier = ctxCarrier(pass.Info, decl, nil)
		}
		if carrier == "" {
			return
		}
		inspectSkippingFuncLits(body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			path := calleePath(pass.Info, call)
			switch path {
			case "context.Background", "context.TODO":
				pass.Reportf(call.Pos(), "%s inside a function holding a request context; derive from %s so cancellation propagates", path, carrier)
				return
			}
			if fix, bad := ctxOblivious[path]; bad {
				pass.Reportf(call.Pos(), "%s ignores the in-scope request context (%s); use %s", path, carrier, fix)
				return
			}
			if recvNamed(pass.Info, call) == "net/http.Client" {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && ctxObliviousClientMethods[sel.Sel.Name] {
					pass.Reportf(call.Pos(), "(*http.Client).%s ignores the in-scope request context (%s); use http.NewRequestWithContext + Client.Do", sel.Sel.Name, carrier)
				}
			}
		})
	})
}

// ctxCarrier reports how the function can reach a request context: the name
// of a context.Context parameter, "<req>.Context()" for an *http.Request
// parameter, or "" when it holds neither.
func ctxCarrier(info *types.Info, decl *ast.FuncDecl, lit *ast.FuncLit) string {
	ftype := decl.Type
	if lit != nil {
		ftype = lit.Type
	}
	if ftype.Params == nil {
		return ""
	}
	for _, f := range ftype.Params.List {
		t := info.TypeOf(f.Type)
		if t == nil {
			continue
		}
		if isContextType(t) {
			if len(f.Names) > 0 && f.Names[0].Name != "_" {
				return f.Names[0].Name
			}
			continue // an ignored ctx param cannot be plumbed
		}
		if isHTTPRequestPtr(t) && len(f.Names) > 0 && f.Names[0].Name != "_" {
			return f.Names[0].Name + ".Context()"
		}
	}
	return ""
}

// isContextType matches context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isHTTPRequestPtr matches *net/http.Request.
func isHTTPRequestPtr(t types.Type) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(p.Elem()).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}
