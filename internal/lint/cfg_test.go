package lint

import (
	"go/ast"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// cfgOf builds the CFG of the named top-level function of a fixture.
func cfgOf(t *testing.T, pkg *Package, name string) *CFG {
	t.Helper()
	var body *ast.BlockStmt
	eachFuncDecl(pkg.Files, func(fd *ast.FuncDecl) {
		if fd.Name.Name == name && fd.Body != nil {
			body = fd.Body
		}
	})
	if body == nil {
		t.Fatalf("fixture has no function %s", name)
	}
	return buildCFG(body)
}

// entryReaches returns the blocks reachable from the entry.
func entryReaches(c *CFG) map[*Block]bool {
	return c.ReachableFrom(c.Blocks[0])
}

// findNode returns the first recorded node satisfying pred and its block.
func findNode(c *CFG, pred func(ast.Node) bool) (ast.Node, *Block) {
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if pred(n) {
				return n, b
			}
		}
	}
	return nil, nil
}

const cfgFixture = `package fix

func cond(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func loop(xs []int) int {
	s := 0
	for i := 0; i < len(xs); i++ {
		s += xs[i]
	}
	return s
}

func afterReturn() int {
	return 1
	goto done // unreachable, and a backward-less goto target below
done:
	return 2
}

func gotoLoop(n int) int {
	i := 0
again:
	if i < n {
		i++
		goto again
	}
	return i
}

func fallth(n int) string {
	switch n {
	case 0:
		fallthrough
	case 1:
		return "small"
	default:
		return "big"
	}
}

func deferInLoop(files []string) {
	for _, f := range files {
		defer println(f)
	}
	defer println("outer")
}

func sel(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func panics(v bool) int {
	if v {
		panic("boom")
	}
	return 0
}
`

func TestCFGShapes(t *testing.T) {
	pkg := loadFixture(t, "modelhub/internal/fix", cfgFixture)

	t.Run("if-else both reach exit", func(t *testing.T) {
		c := cfgOf(t, pkg, "cond")
		if !entryReaches(c)[c.Exit] {
			t.Fatal("exit not reachable from entry")
		}
		// Both returns must sit in blocks reaching the exit.
		n := 0
		for _, b := range c.Blocks {
			for _, node := range b.Nodes {
				if _, ok := node.(*ast.ReturnStmt); ok {
					n++
					if !entryReaches(c)[b] {
						t.Fatal("return in unreachable block")
					}
				}
			}
		}
		if n != 2 {
			t.Fatalf("recorded %d returns, want 2", n)
		}
	})

	t.Run("for loop has back edge", func(t *testing.T) {
		c := cfgOf(t, pkg, "loop")
		_, body := findNode(c, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			return ok && len(as.Lhs) == 1 && ast.Unparen(as.Lhs[0]).(*ast.Ident).Name == "s" && as.Tok.String() == "+="
		})
		if body == nil {
			t.Fatal("loop body statement not recorded")
		}
		// The body must be able to reach itself again (head -> body cycle).
		if !c.ReachableFrom(body)[body] || len(c.ReachableFrom(body)) < 2 {
			t.Fatal("no back edge: loop body cannot re-reach itself")
		}
	})

	t.Run("code after return is unreachable", func(t *testing.T) {
		c := cfgOf(t, pkg, "afterReturn")
		node, blk := findNode(c, func(n ast.Node) bool {
			br, ok := n.(*ast.BranchStmt)
			return ok && br.Tok.String() == "goto"
		})
		if node == nil {
			t.Fatal("goto not recorded")
		}
		if entryReaches(c)[blk] {
			t.Fatal("statement after return should be unreachable from entry")
		}
	})

	t.Run("backward goto forms a cycle", func(t *testing.T) {
		c := cfgOf(t, pkg, "gotoLoop")
		_, inc := findNode(c, func(n ast.Node) bool {
			_, ok := n.(*ast.IncDecStmt)
			return ok
		})
		if inc == nil {
			t.Fatal("i++ not recorded")
		}
		if !c.ReachableFrom(inc)[inc] {
			t.Fatal("goto again does not loop back")
		}
		if !entryReaches(c)[c.Exit] {
			t.Fatal("exit unreachable")
		}
	})

	t.Run("fallthrough chains cases", func(t *testing.T) {
		c := cfgOf(t, pkg, "fallth")
		lit0, b0 := findNode(c, func(n ast.Node) bool {
			bl, ok := n.(*ast.BasicLit)
			return ok && bl.Value == "0"
		})
		_, ret := findNode(c, func(n ast.Node) bool {
			r, ok := n.(*ast.ReturnStmt)
			return ok && len(r.Results) == 1 && strings.Contains(astString(r.Results[0]), "small")
		})
		if lit0 == nil || ret == nil {
			t.Fatal("case label or return not recorded")
		}
		if !c.ReachableFrom(b0)[ret] {
			t.Fatal("fallthrough edge missing: case 0 cannot reach case 1 body")
		}
	})

	t.Run("defer in loop recorded", func(t *testing.T) {
		c := cfgOf(t, pkg, "deferInLoop")
		if len(c.Defers) != 2 {
			t.Fatalf("recorded %d defers, want 2 (loop + outer)", len(c.Defers))
		}
	})

	t.Run("select clauses all reach exit", func(t *testing.T) {
		c := cfgOf(t, pkg, "sel")
		n := 0
		for _, b := range c.Blocks {
			for _, node := range b.Nodes {
				if _, ok := node.(*ast.ReturnStmt); ok {
					n++
					if !entryReaches(c)[b] {
						t.Fatal("select clause unreachable")
					}
				}
			}
		}
		if n != 2 {
			t.Fatalf("recorded %d returns in select, want 2", n)
		}
	})

	t.Run("panic terminates", func(t *testing.T) {
		c := cfgOf(t, pkg, "panics")
		node, blk := findNode(c, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return false
			}
			call, ok := es.X.(*ast.CallExpr)
			return ok && isPanicCall(call)
		})
		if node == nil {
			t.Fatal("panic not recorded")
		}
		reach := c.ReachableFrom(blk)
		for b := range reach {
			for _, n := range b.Nodes {
				if r, ok := n.(*ast.ReturnStmt); ok {
					t.Fatalf("panic block reaches return %v", r)
				}
			}
		}
	})
}

func astString(n ast.Node) string {
	if bl, ok := n.(*ast.BasicLit); ok {
		return bl.Value
	}
	return ""
}

// TestCFGNoPanicOnHardSyntax builds a CFG for every function of a fixture
// exercising generics, method values, defer in loops, labeled breaks, and
// nested literals — the shapes most likely to trip an AST-walking builder.
func TestCFGNoPanicOnHardSyntax(t *testing.T) {
	pkg := loadFixture(t, "modelhub/internal/fix", `package fix

import "sort"

// Map is a generic helper with its own control flow.
func Map[T any, U any](xs []T, f func(T) U) []U {
	out := make([]U, 0, len(xs))
	for _, x := range xs {
		out = append(out, f(x))
	}
	return out
}

// Pair is a generic type with a method.
type Pair[K comparable, V any] struct {
	k K
	v V
}

func (p Pair[K, V]) Key() K { return p.k }

func methodValues(ps []Pair[string, int]) []string {
	get := ps[0].Key // method value
	_ = get
	sorter := sort.Strings
	var out []string
	for _, p := range ps {
		out = append(out, p.Key())
	}
	sorter(out)
	return out
}

func labeledBreaks(grid [][]int) int {
outer:
	for _, row := range grid {
		for _, v := range row {
			if v < 0 {
				break outer
			}
			if v == 0 {
				continue outer
			}
		}
	}
	return 0
}

func nested() func() int {
	n := 0
	f := func() int {
		for i := 0; i < 3; i++ {
			defer func() { n++ }()
		}
		return n
	}
	return f
}

func typeSwitch(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case int:
		if x > 0 {
			return "pos"
		}
		return "neg"
	default:
		return "?"
	}
}
`)
	count := 0
	eachFunc(pkg.Files, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		count++
		c := buildCFG(body)
		if c.Exit == nil || len(c.Blocks) == 0 {
			t.Fatalf("degenerate CFG for %s", decl.Name.Name)
		}
		if !entryReaches(c)[c.Exit] {
			t.Errorf("exit unreachable in %s (lit=%v)", decl.Name.Name, lit != nil)
		}
	})
	if count < 8 {
		t.Fatalf("eachFunc visited %d bodies, want at least 8 (decls + literals)", count)
	}
}

func TestForwardFlowJoinIsUnion(t *testing.T) {
	// A fact genned before a branch and killed on only one arm must
	// survive to the exit: may-analysis joins with union.
	pkg := loadFixture(t, "modelhub/internal/fix", `package fix

func f(v bool) {
	x := 1
	if v {
		x = 2 // kill
	}
	_ = x
}
`)
	var body *ast.BlockStmt
	eachFuncDecl(pkg.Files, func(fd *ast.FuncDecl) { body = fd.Body })
	c := buildCFG(body)
	isDefine := func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		return ok && as.Tok.String() == ":="
	}
	isKill := func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		return ok && as.Tok.String() == "="
	}
	use, _ := findNode(c, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		return ok && len(as.Lhs) == 1 && astIdentName(as.Lhs[0]) == "_"
	})
	if use == nil {
		t.Fatal("use site not recorded")
	}
	if !reachingBefore(c, use, isDefine, isKill) {
		t.Fatal("fact should survive the unkilled else-arm to the use")
	}
	// And a kill on the only path does stop it.
	pkg2 := loadFixture(t, "modelhub/internal/fix2", `package fix2

func f() {
	x := 1
	x = 2
	_ = x
}
`)
	var body2 *ast.BlockStmt
	eachFuncDecl(pkg2.Files, func(fd *ast.FuncDecl) { body2 = fd.Body })
	c2 := buildCFG(body2)
	var target ast.Node
	for _, b := range c2.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && astIdentName(as.Lhs[0]) == "_" {
				target = n
			}
		}
	}
	if reachingBefore(c2, target, isDefine, isKill) {
		t.Fatal("fact killed on the only path should not reach the use")
	}
}

func astIdentName(e ast.Expr) string {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// TestLoadBuildTags checks the loader honors //go:build lines and
// _GOOS/_GOARCH filename suffixes: files for other platforms are skipped
// (even when they would not type-check here), and a package whose files
// are all foreign is dropped from ./... rather than failing the load.
func TestLoadBuildTags(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("fixture assumes a non-windows host")
	}
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module mini\n\ngo 1.22\n")
	write("internal/a/a.go", "package a\n\n// V is a demo value.\nvar V = 1\n")
	// Foreign by build tag: references an undefined symbol, so loading it
	// would be a type error.
	write("internal/a/gated.go", "//go:build windows\n\npackage a\n\nvar W = undefinedSymbol\n")
	// Foreign by filename suffix, same trap.
	write("internal/a/sys_windows.go", "package a\n\nvar X = alsoUndefined\n")
	// Tagged for the host: must load and type-check.
	write("internal/a/host.go", "//go:build unix || windows\n\npackage a\n\n// H is host-gated.\nvar H = 2\n")
	// A package that exists only on another platform disappears from ./...
	write("internal/w/w.go", "//go:build windows\n\npackage w\n\nvar Only = windowsOnly\n")

	pkgs, err := Load(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "mini/internal/a" {
		t.Fatalf("loaded %d packages, want just mini/internal/a", len(pkgs))
	}
	if got := len(pkgs[0].Files); got != 2 {
		t.Fatalf("package a has %d files, want 2 (a.go + host.go)", got)
	}
	if pkgs[0].Root != dir {
		t.Fatalf("Root = %q, want %q", pkgs[0].Root, dir)
	}
}

func TestFileSuffixOK(t *testing.T) {
	if runtime.GOOS != "linux" || runtime.GOARCH != "amd64" {
		t.Skipf("case table assumes linux/amd64, host is %s/%s", runtime.GOOS, runtime.GOARCH)
	}
	cases := []struct {
		name string
		want bool
	}{
		{"plain.go", true},
		{"store_test_helpers.go", true}, // "helpers" is not a GOOS/GOARCH
		{"sys_linux.go", true},
		{"sys_windows.go", false},
		{"asm_amd64.go", true},
		{"asm_arm64.go", false},
		{"sys_linux_amd64.go", true},
		{"sys_darwin_amd64.go", false},
		{"sys_linux_arm64.go", false},
		{"linux.go", true}, // a bare GOOS name is not a suffix
	}
	for _, c := range cases {
		if got := fileSuffixOK(c.name); got != c.want {
			t.Errorf("fileSuffixOK(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}
