package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// apihygiene keeps library packages embeddable: a package under
// <module>/internal/ is linked into the server, the CLI, and tests alike,
// so it must never write to process-global streams or kill the process.
//
//   - fmt.Print / fmt.Printf / fmt.Println write to stdout — return values
//     or accept an io.Writer instead;
//   - log.Fatal* / log.Panic* / os.Exit terminate the caller's process;
//   - panic is reserved for documented invariant checks: allowed only when
//     the enclosing function's doc comment says it panics.
var analyzerAPIHygiene = &Analyzer{
	Name: "apihygiene",
	Doc:  "stdout writes, process exits, and undocumented panics in library packages",
	Run:  runAPIHygiene,
}

// fatalCallees terminate or bypass the caller's control flow.
var fatalCallees = map[string]string{
	"fmt.Print":   "writes to stdout",
	"fmt.Printf":  "writes to stdout",
	"fmt.Println": "writes to stdout",
	"log.Fatal":   "exits the process",
	"log.Fatalf":  "exits the process",
	"log.Fatalln": "exits the process",
	"log.Panic":   "panics with global logging",
	"log.Panicf":  "panics with global logging",
	"log.Panicln": "panics with global logging",
	"os.Exit":     "exits the process",
	"log.Print":   "writes to the global logger",
	"log.Printf":  "writes to the global logger",
	"log.Println": "writes to the global logger",
}

func runAPIHygiene(pass *Pass) {
	if !pass.InLibrary() {
		return
	}
	eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		if fd.Body == nil {
			return
		}
		panicDocumented := fd.Doc != nil && strings.Contains(strings.ToLower(fd.Doc.Text()), "panic")
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if why, bad := fatalCallees[calleePath(pass.Info, call)]; bad {
				pass.Reportf(call.Pos(), "%s %s; library code must not", calleePath(pass.Info, call), why)
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, builtin := pass.Info.Uses[id].(*types.Builtin); builtin && !panicDocumented {
					pass.Reportf(call.Pos(), "panic outside a documented invariant check; return an error or document the panic in %s's doc comment", fd.Name.Name)
				}
			}
			return true
		})
	})
}
