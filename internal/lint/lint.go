// Package lint is mhlint's analysis engine: a from-scratch static-analysis
// driver on the stdlib go/parser + go/types + go/ast stack (no x/tools).
// It loads every package of this module from source, runs a registry of
// named analyzers over the type-checked ASTs, and reports findings as
// file:line:col [analyzer] message.
//
// Each analyzer encodes one invariant of the ModelHub codebase that the
// compiler cannot check — the invariant catalog lives in DESIGN.md. A
// finding is suppressed in place with
//
//	//mhlint:ignore <analyzer> <reason>
//
// either trailing the offending line or on the line directly above it. The
// reason is mandatory: an ignore without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// SuppressedBy holds the reason of the matching //mhlint:ignore
	// directive, when one suppressed this finding.
	SuppressedBy string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named check.
type Analyzer struct {
	// Name is the registry key, used in findings and ignore directives.
	Name string
	// Doc is a one-line description for `mhlint -list`.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset *token.FileSet
	// Module is the module path (e.g. "modelhub").
	Module string
	// Path is the package import path.
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer string
	report   func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InLibrary reports whether the package is a library package of this module
// (under <module>/internal/). cmd/ binaries and examples/ are exempt from
// the library-only hygiene rules.
func (p *Pass) InLibrary() bool {
	return strings.HasPrefix(p.Path, p.Module+"/internal/")
}

// All returns the full analyzer registry in stable order: the five gen-1
// syntax-level analyzers, then the five gen-2 CFG/dataflow analyzers.
func All() []*Analyzer {
	return []*Analyzer{
		analyzerLocksafe,
		analyzerErrcheck,
		analyzerGohygiene,
		analyzerFloatdet,
		analyzerAPIHygiene,
		analyzerGoroleak,
		analyzerAtomicfield,
		analyzerCtxflow,
		analyzerSpanend,
		analyzerDetpath,
	}
}

// ByName resolves a comma-separated analyzer subset against the registry.
func ByName(names string) ([]*Analyzer, error) {
	reg := map[string]*Analyzer{}
	for _, a := range All() {
		reg[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := reg[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: empty analyzer selection %q", names)
	}
	return out, nil
}

// Result is the outcome of running analyzers over packages.
type Result struct {
	// Findings are the active (unsuppressed) diagnostics, sorted by position.
	Findings []Finding
	// Suppressed are findings matched by an //mhlint:ignore directive.
	Suppressed []Finding
}

// Run executes the analyzers over each package, applies suppression
// directives, and reports directive hygiene: a directive naming an unknown
// analyzer is a finding, and a directive that suppresses nothing (stale —
// the code it excused was fixed or moved) is a finding too, so the
// suppression count is an enforced budget rather than a ratchet. Staleness
// is only decidable for directives whose analyzer actually ran: partial
// `-only` runs skip the check for unselected analyzers, and wildcard
// directives are only checked when the full registry runs.
func Run(pkgs []*Package, analyzers []*Analyzer) Result {
	registry := map[string]bool{}
	for _, a := range All() {
		registry[a.Name] = true
	}
	selected := map[string]bool{}
	for _, a := range analyzers {
		selected[a.Name] = true
	}
	fullRun := len(selected) == len(registry)

	var res Result
	for _, pkg := range pkgs {
		ignores, directives, malformed := collectIgnores(pkg.Fset, pkg.Files)
		res.Findings = append(res.Findings, malformed...)
		var raw []Finding
		for _, a := range analyzers {
			pass := &Pass{
				Fset:     pkg.Fset,
				Module:   pkg.Module,
				Path:     pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				analyzer: a.Name,
				report:   func(f Finding) { raw = append(raw, f) },
			}
			a.Run(pass)
		}
		for _, f := range raw {
			if reason, ok := ignores.match(f); ok {
				f.SuppressedBy = reason
				res.Suppressed = append(res.Suppressed, f)
			} else {
				res.Findings = append(res.Findings, f)
			}
		}
		for _, d := range directives {
			switch {
			case d.analyzer != "*" && !registry[d.analyzer]:
				res.Findings = append(res.Findings, Finding{
					Pos:      d.pos,
					Analyzer: "mhlint",
					Message:  fmt.Sprintf("ignore directive names unknown analyzer %q", d.analyzer),
				})
			case d.used:
			case d.analyzer == "*" && !fullRun:
				// A wildcard's staleness is undecidable on a partial run.
			case d.analyzer == "*" || selected[d.analyzer]:
				res.Findings = append(res.Findings, Finding{
					Pos:      d.pos,
					Analyzer: "mhlint",
					Message:  fmt.Sprintf("stale ignore directive: no %s finding on this or the next line; delete it or re-justify", d.analyzer),
				})
			}
		}
	}
	sortFindings(res.Findings)
	sortFindings(res.Suppressed)
	return res
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ignoreDirective is one parsed //mhlint:ignore comment. `used` is set
// when the directive suppresses at least one finding, so unused directives
// surface as stale.
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

// ignoreIndex maps file -> line -> directives covering that line. A
// directive covers its own source line (trailing comment) and the line
// directly below it (comment on its own line).
type ignoreIndex map[string]map[int][]*ignoreDirective

const ignorePrefix = "//mhlint:ignore"

// ParseIgnoreDirective parses the text of one comment as an
// //mhlint:ignore directive. It returns ok=false when the comment is not a
// directive at all, and an empty analyzer or reason when it is one but is
// malformed (both are mandatory).
func ParseIgnoreDirective(text string) (analyzer, reason string, ok bool) {
	if !strings.HasPrefix(text, ignorePrefix) {
		return "", "", false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
	analyzer, reason, _ = strings.Cut(rest, " ")
	return analyzer, strings.TrimSpace(reason), true
}

// collectIgnores parses every //mhlint:ignore directive in the package.
// Malformed directives (missing analyzer or reason) are returned as
// findings under the reserved analyzer name "mhlint"; well-formed ones are
// returned both indexed by covered line and as a flat list for staleness
// accounting.
func collectIgnores(fset *token.FileSet, files []*ast.File) (ignoreIndex, []*ignoreDirective, []Finding) {
	idx := ignoreIndex{}
	var directives []*ignoreDirective
	var malformed []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, isDirective := ParseIgnoreDirective(c.Text)
				if !isDirective {
					continue
				}
				pos := fset.Position(c.Pos())
				if name == "" || reason == "" {
					malformed = append(malformed, Finding{
						Pos:      pos,
						Analyzer: "mhlint",
						Message:  "malformed ignore directive: want //mhlint:ignore <analyzer> <reason>",
					})
					continue
				}
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*ignoreDirective{}
					idx[pos.Filename] = byLine
				}
				d := &ignoreDirective{analyzer: name, reason: reason, pos: pos}
				directives = append(directives, d)
				byLine[pos.Line] = append(byLine[pos.Line], d)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], d)
			}
		}
	}
	return idx, directives, malformed
}

// match reports whether a directive suppresses the finding, returning the
// directive's reason and marking the directive used.
func (idx ignoreIndex) match(f Finding) (string, bool) {
	for _, d := range idx[f.Pos.Filename][f.Pos.Line] {
		if d.analyzer == f.Analyzer || d.analyzer == "*" {
			d.used = true
			return d.reason, true
		}
	}
	return "", false
}
