package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// atomicfield guards the memory model around sync/atomic, the exact bug
// class behind the pre-PR-7 racy `Engine.Workers` public field (read
// plainly by callers while worker goroutines updated it):
//
//   - a variable or struct field accessed through sync/atomic functions
//     (atomic.AddInt64(&x.f, …), atomic.LoadUint32(&x.f), …) anywhere in
//     the package must be accessed that way EVERYWHERE — one plain read or
//     write next to atomic uses is a data race the race detector only
//     catches when the interleaving happens in a test;
//   - typed atomics (atomic.Int64, atomic.Bool, atomic.Pointer[T], …) and
//     values embedding them must never be copied: by-value receivers,
//     params, results, assignments, call arguments, or range. A copied
//     atomic is a fresh, unrelated variable — locksafe's rule, extended to
//     sync/atomic.
var analyzerAtomicfield = &Analyzer{
	Name: "atomicfield",
	Doc:  "mixed atomic/plain access to the same variable, and by-value copies of sync/atomic types",
	Run:  runAtomicfield,
}

// atomicFnPrefixes match the sync/atomic package-level access functions.
var atomicFnPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"}

// atomicTypeNames are the sync/atomic typed atomics whose copy is a bug.
var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// atomicKind returns a description like "atomic.Int64" when a value of
// type t embeds a typed atomic (directly, via struct fields, or arrays),
// or "". Pointers stop the search, as in lockKind.
func atomicKind(t types.Type) string {
	return namedKind(t, func(pkg, name string) string {
		if pkg == "sync/atomic" && atomicTypeNames[name] {
			return "atomic." + name
		}
		return ""
	})
}

func runAtomicfield(pass *Pass) {
	checkMixedAccess(pass)
	checkAtomicCopies(pass)
}

// checkMixedAccess finds variables touched by sync/atomic calls and reports
// every plain access to the same variable elsewhere in the package.
func checkMixedAccess(pass *Pass) {
	// Pass 1: objects accessed atomically, and the ident nodes forming those
	// atomic access expressions (exempt from the plain-access scan).
	atomicAt := map[types.Object]token.Position{}
	atomicSite := map[*ast.Ident]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path := calleePath(pass.Info, call)
			name, ok := strings.CutPrefix(path, "sync/atomic.")
			if !ok || !isAtomicFnName(name) || len(call.Args) == 0 {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			id := accessIdent(un.X)
			if id == nil {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				return true
			}
			if _, seen := atomicAt[obj]; !seen {
				atomicAt[obj] = pass.Fset.Position(call.Pos())
			}
			markAccessIdents(un.X, atomicSite)
			return true
		})
	}
	if len(atomicAt) == 0 {
		return
	}
	// Pass 2: plain accesses. Report deterministically by position.
	var plains []*ast.Ident
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || atomicSite[id] {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				return true
			}
			if _, hot := atomicAt[obj]; hot {
				plains = append(plains, id)
			}
			return true
		})
	}
	sort.Slice(plains, func(i, j int) bool { return plains[i].Pos() < plains[j].Pos() })
	for _, id := range plains {
		at := atomicAt[pass.Info.Uses[id]]
		pass.Reportf(id.Pos(), "%s is accessed atomically (e.g. %s:%d) but plainly here; every access must go through sync/atomic", id.Name, shortPath(at.Filename), at.Line)
	}
}

// isAtomicFnName matches AddInt64, LoadUint32, StoreInt32, SwapPointer,
// CompareAndSwapInt64, …
func isAtomicFnName(name string) bool {
	for _, p := range atomicFnPrefixes {
		if rest, ok := strings.CutPrefix(name, p); ok && rest != "" {
			return true
		}
	}
	return false
}

// accessIdent returns the field/variable identifier of an atomic access
// target: f for &f, and f for &x.f (the field, not the receiver).
func accessIdent(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	case *ast.IndexExpr:
		return accessIdent(e.X)
	}
	return nil
}

// markAccessIdents records every identifier inside an atomic access
// expression, so `&e.workers` does not count e or workers as plain uses.
func markAccessIdents(e ast.Expr, set map[*ast.Ident]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			set[id] = true
		}
		return true
	})
}

// shortPath trims a filename to its final two path segments for messages.
func shortPath(p string) string {
	parts := strings.Split(p, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}

// checkAtomicCopies mirrors locksafe's copy detection for sync/atomic
// typed values.
func checkAtomicCopies(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkAtomicSig(pass, n.Recv, n.Type)
			case *ast.FuncLit:
				checkAtomicSig(pass, nil, n.Type)
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for _, rhs := range n.Rhs {
					switch ast.Unparen(rhs).(type) {
					case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					default:
						continue
					}
					if k := atomicKind(pass.Info.TypeOf(rhs)); k != "" {
						pass.Reportf(rhs.Pos(), "assignment copies atomic value: %s contains %s", types.ExprString(rhs), k)
					}
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					switch ast.Unparen(arg).(type) {
					case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					default:
						continue
					}
					if k := atomicKind(pass.Info.TypeOf(arg)); k != "" {
						pass.Reportf(arg.Pos(), "call copies atomic value: argument %s contains %s", types.ExprString(arg), k)
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if k := atomicKind(pass.Info.TypeOf(n.Value)); k != "" {
						pass.Reportf(n.Value.Pos(), "range copies atomic value: element contains %s", k)
					}
				}
			}
			return true
		})
	}
}

// checkAtomicSig flags by-value receivers, params, and results embedding a
// typed atomic.
func checkAtomicSig(pass *Pass, recv *ast.FieldList, ftype *ast.FuncType) {
	lists := []*ast.FieldList{recv, ftype.Params, ftype.Results}
	what := []string{"receiver", "parameter", "result"}
	for i, fl := range lists {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			if k := atomicKind(pass.Info.TypeOf(field.Type)); k != "" {
				pass.Reportf(field.Type.Pos(), "by-value %s contains %s; use a pointer", what[i], k)
			}
		}
	}
}
