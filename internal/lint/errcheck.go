package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// errcheck enforces error hygiene in library packages (<module>/internal/):
// checkout and archival paths must propagate I/O and decode errors, never
// drop them.
//
//   - a call whose (last) result is an error must not be used as a bare
//     statement;
//   - an error result must not be assigned to the blank identifier;
//   - fmt.Errorf with an error-typed argument must wrap with %w somewhere
//     in the format, so errors.Is/As keep working through the wrap.
//
// Deferred calls are exempt (the `defer f.Close()` read-path idiom), as are
// error-free-by-contract writers: bytes.Buffer, strings.Builder, hash.Hash,
// and math/rand readers.
var analyzerErrcheck = &Analyzer{
	Name: "errcheck",
	Doc:  "discarded error returns and fmt.Errorf wrapping without %w in internal packages",
	Run:  runErrcheck,
}

func runErrcheck(pass *Pass) {
	if !pass.InLibrary() {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkBareCall(pass, call)
				}
			case *ast.AssignStmt:
				checkBlankErr(pass, n)
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
}

// errFreeCallees never fail by documented contract.
var errFreeCallees = map[string]bool{
	"math/rand.Read": true,
}

// errFreeRecvs are receiver types whose methods never return a non-nil
// error by documented contract.
var errFreeRecvs = map[string]bool{
	"bytes.Buffer":    true,
	"strings.Builder": true,
	"hash.Hash":       true,
	"math/rand.Rand":  true,
}

// errFreeWriters are fmt.Fprint* targets that never fail.
var errFreeWriters = map[string]bool{
	"bytes.Buffer":    true,
	"strings.Builder": true,
}

// callErrFree reports whether a call's error can be ignored by contract.
func callErrFree(info *types.Info, call *ast.CallExpr) bool {
	if errFreeCallees[calleePath(info, call)] {
		return true
	}
	if errFreeRecvs[recvNamed(info, call)] {
		return true
	}
	if path := calleePath(info, call); strings.HasPrefix(path, "fmt.Fprint") && len(call.Args) > 0 {
		t := info.TypeOf(call.Args[0])
		if p, ok := types.Unalias(t).(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok && named.Obj().Pkg() != nil {
			return errFreeWriters[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
		}
	}
	return false
}

// errResultIndexes returns the positions of error-typed results of a call.
func errResultIndexes(info *types.Info, call *ast.CallExpr) (idx []int, n int) {
	t := info.TypeOf(call)
	if t == nil {
		return nil, 0
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				idx = append(idx, i)
			}
		}
		return idx, tuple.Len()
	}
	if isErrorType(t) {
		return []int{0}, 1
	}
	return nil, 1
}

func checkBareCall(pass *Pass, call *ast.CallExpr) {
	idx, _ := errResultIndexes(pass.Info, call)
	if len(idx) == 0 || callErrFree(pass.Info, call) {
		return
	}
	pass.Reportf(call.Pos(), "unchecked error return from %s", callName(pass.Info, call))
}

// checkBlankErr flags `v, _ := f()` where the blanked result is an error.
func checkBlankErr(pass *Pass, as *ast.AssignStmt) {
	isBlank := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "_"
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || callErrFree(pass.Info, call) {
			return
		}
		idx, n := errResultIndexes(pass.Info, call)
		if n != len(as.Lhs) {
			return
		}
		for _, i := range idx {
			if isBlank(as.Lhs[i]) {
				pass.Reportf(as.Lhs[i].Pos(), "error result of %s discarded with _", callName(pass.Info, call))
			}
		}
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		if !isBlank(as.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || callErrFree(pass.Info, call) {
			continue
		}
		if isErrorType(pass.Info.TypeOf(rhs)) {
			pass.Reportf(as.Lhs[i].Pos(), "error result of %s discarded with _", callName(pass.Info, call))
		}
	}
}

// checkErrorfWrap flags fmt.Errorf calls that take an error argument but
// never use %w in the format string.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if calleePath(pass.Info, call) != "fmt.Errorf" || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || strings.Contains(lit.Value, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if isErrorType(pass.Info.TypeOf(arg)) {
			pass.Reportf(call.Pos(), "fmt.Errorf has error argument %s but no %%w verb; wrap it so errors.Is keeps working", types.ExprString(arg))
			return
		}
	}
}

// callName renders the callee for diagnostics.
func callName(info *types.Info, call *ast.CallExpr) string {
	if r := recvNamed(info, call); r != "" {
		if obj := calleeObj(info, call); obj != nil {
			return "(" + r + ")." + obj.Name()
		}
	}
	if p := calleePath(info, call); p != "" {
		return p
	}
	return types.ExprString(call.Fun)
}
