package lint

import "testing"

// Each analyzer is exercised on embedded fixture sources with at least one
// true positive, one suppressed case, and one clean case. Fixtures under
// modelhub/internal/... are subject to the library-package rules; the
// deliberately seeded violations (copied mutex, dropped error, map-order
// float sum, bare goroutine, stdout write) must all be detected.

func TestLocksafe(t *testing.T) {
	cases := []struct {
		name           string
		path           string
		src            string
		want           []string
		wantSuppressed int
	}{
		{
			name: "copied mutex value",
			path: "modelhub/internal/fix",
			src: `package fix

import "sync"

var mu sync.Mutex

// Grab takes a copy of the global lock — a seeded violation.
func Grab() {
	mu2 := mu
	mu2.Lock()
	mu2.Unlock()
}
`,
			want: []string{"assignment copies lock value"},
		},
		{
			name: "copied struct embedding waitgroup",
			path: "modelhub/internal/fix",
			src: `package fix

import "sync"

type pool struct {
	wg sync.WaitGroup
}

// Use passes the pool by value.
func Use(p pool) {}
`,
			want: []string{"by-value parameter contains sync.WaitGroup"},
		},
		{
			name: "lock without unlock",
			path: "modelhub/internal/fix",
			src: `package fix

import "sync"

var mu sync.Mutex

// Leak locks and never unlocks.
func Leak() {
	mu.Lock()
}
`,
			want: []string{"never Unlocked"},
		},
		{
			name: "rlock needs runlock",
			path: "modelhub/internal/fix",
			src: `package fix

import "sync"

var mu sync.RWMutex

// Leak read-locks and write-unlocks: the read lock leaks.
func Leak() {
	mu.RLock()
	mu.Unlock()
}
`,
			want: []string{"never RUnlocked"},
		},
		{
			name: "channel send while holding lock",
			path: "modelhub/internal/fix",
			src: `package fix

import "sync"

var (
	mu sync.Mutex
	ch = make(chan int, 1)
)

// Send blocks on a channel while holding mu.
func Send() {
	mu.Lock()
	ch <- 1
	mu.Unlock()
}
`,
			want: []string{"channel send while holding mu"},
		},
		{
			name: "wait while holding lock",
			path: "modelhub/internal/fix",
			src: `package fix

import "sync"

var mu sync.Mutex

// Wait waits on a WaitGroup under mu.
func Wait(wg *sync.WaitGroup) {
	mu.Lock()
	wg.Wait()
	mu.Unlock()
}
`,
			want: []string{"sync wait on wg while holding mu"},
		},
		{
			name: "branch unlock before receive is clean",
			path: "modelhub/internal/fix",
			src: `package fix

import "sync"

var (
	mu   sync.Mutex
	done = make(chan struct{})
)

// Flight mirrors the single-flight pattern: unlock, then block.
func Flight(waiting bool) {
	mu.Lock()
	if waiting {
		mu.Unlock()
		<-done
		return
	}
	mu.Unlock()
}
`,
			want: nil,
		},
		{
			name: "suppressed copy",
			path: "modelhub/internal/fix",
			src: `package fix

import "sync"

var mu sync.Mutex

// Snapshot deliberately copies a never-used lock.
func Snapshot() {
	//mhlint:ignore locksafe fixture demonstrating a justified ignore
	mu2 := mu
	mu2.Lock()
	mu2.Unlock()
}
`,
			want:           nil,
			wantSuppressed: 1,
		},
		{
			name: "clean locking",
			path: "modelhub/internal/fix",
			src: `package fix

import "sync"

var mu sync.Mutex

// Good locks with a deferred unlock and passes locks by pointer.
func Good(other *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	_ = other
}
`,
			want: nil,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wantFindings(t, runFixture(t, analyzerLocksafe, c.path, c.src), c.want, c.wantSuppressed)
		})
	}
}

func TestErrcheck(t *testing.T) {
	cases := []struct {
		name           string
		path           string
		src            string
		want           []string
		wantSuppressed int
	}{
		{
			name: "dropped error statement",
			path: "modelhub/internal/fix",
			src: `package fix

import "os"

// Drop discards os.Remove's error — a seeded violation.
func Drop() {
	os.Remove("x")
}
`,
			want: []string{"unchecked error return from os.Remove"},
		},
		{
			name: "blank error assignment",
			path: "modelhub/internal/fix",
			src: `package fix

import "os"

// Blank discards the error with _.
func Blank() {
	_ = os.Remove("x")
}
`,
			want: []string{"discarded with _"},
		},
		{
			name: "blank error in tuple",
			path: "modelhub/internal/fix",
			src: `package fix

import "os"

// Open drops the error half of the tuple.
func Open() *os.File {
	f, _ := os.Open("x")
	return f
}
`,
			want: []string{"error result of os.Open discarded with _"},
		},
		{
			name: "errorf without wrap",
			path: "modelhub/internal/fix",
			src: `package fix

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

// Wrap loses the error chain by formatting with %v.
func Wrap() error {
	return fmt.Errorf("context: %v", errBase)
}
`,
			want: []string{"no %w verb"},
		},
		{
			name: "errorf with wrap is clean",
			path: "modelhub/internal/fix",
			src: `package fix

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

// Wrap keeps the chain: the sentinel rides %w.
func Wrap(err error) error {
	return fmt.Errorf("%w: detail: %v", errBase, err)
}
`,
			want: nil,
		},
		{
			name: "builder writes are exempt",
			path: "modelhub/internal/fix",
			src: `package fix

import (
	"bytes"
	"fmt"
	"strings"
)

// Render uses error-free-by-contract writers.
func Render() string {
	var b strings.Builder
	b.WriteString("x")
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%d", 1)
	return b.String() + buf.String()
}
`,
			want: nil,
		},
		{
			name: "defer close is exempt",
			path: "modelhub/internal/fix",
			src: `package fix

import "os"

// Read uses the read-path defer-close idiom.
func Read() error {
	f, err := os.Open("x")
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}
`,
			want: nil,
		},
		{
			name: "suppressed drop",
			path: "modelhub/internal/fix",
			src: `package fix

import "os"

// Cleanup ignores a best-effort removal.
func Cleanup() {
	os.Remove("x") //mhlint:ignore errcheck best-effort temp cleanup
}
`,
			want:           nil,
			wantSuppressed: 1,
		},
		{
			name: "non-library packages are out of scope",
			path: "modelhub/cmd/fix",
			src: `package fix

import "os"

// Drop is allowed in cmd/ packages.
func Drop() {
	os.Remove("x")
}
`,
			want: nil,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wantFindings(t, runFixture(t, analyzerErrcheck, c.path, c.src), c.want, c.wantSuppressed)
		})
	}
}

func TestGohygiene(t *testing.T) {
	cases := []struct {
		name           string
		path           string
		src            string
		want           []string
		wantSuppressed int
	}{
		{
			name: "bare goroutine",
			path: "modelhub/internal/fix",
			src: `package fix

var x int

// Fire leaks an unjoinable goroutine.
func Fire() {
	go func() { x++ }()
}
`,
			want: []string{"bare goroutine launch"},
		},
		{
			name: "waitgroup goroutine is clean",
			path: "modelhub/internal/fix",
			src: `package fix

import "sync"

// Join runs one joined worker.
func Join() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}
`,
			want: nil,
		},
		{
			name: "named closure resolved through assignment",
			path: "modelhub/internal/fix",
			src: `package fix

import "sync"

// Pool launches a named closure that joins via the WaitGroup.
func Pool() {
	var wg sync.WaitGroup
	run := func() { defer wg.Done() }
	wg.Add(1)
	go run()
	wg.Wait()
}
`,
			want: nil,
		},
		{
			name: "same-package function body resolved",
			path: "modelhub/internal/fix",
			src: `package fix

var x int

func work() { x++ }

// Fire launches a function whose body has no completion mechanism.
func Fire() {
	go work()
}
`,
			want: []string{"bare goroutine launch"},
		},
		{
			name: "sleep synchronization",
			path: "modelhub/internal/fix",
			src: `package fix

import "time"

// Settle sleeps instead of synchronizing.
func Settle() {
	time.Sleep(10 * time.Millisecond)
}
`,
			want: []string{"time.Sleep in library code"},
		},
		{
			name: "suppressed sleep",
			path: "modelhub/internal/fix",
			src: `package fix

import "time"

// Backoff sleeps deliberately between retries.
func Backoff() {
	time.Sleep(time.Second) //mhlint:ignore gohygiene fixture retry backoff is a real delay, not synchronization
}
`,
			want:           nil,
			wantSuppressed: 1,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wantFindings(t, runFixture(t, analyzerGohygiene, c.path, c.src), c.want, c.wantSuppressed)
		})
	}
}

func TestFloatdet(t *testing.T) {
	cases := []struct {
		name           string
		path           string
		src            string
		want           []string
		wantSuppressed int
	}{
		{
			name: "map-order float sum",
			path: "modelhub/internal/tensor",
			src: `package tensor

// Sum accumulates in map order — a seeded violation.
func Sum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
`,
			want: []string{"float accumulation into sum under map iteration order"},
		},
		{
			name: "x = x + v form",
			path: "modelhub/internal/dnn",
			src: `package dnn

// Total accumulates through plain assignment.
func Total(m map[string]float32) float32 {
	var total float32
	for _, v := range m {
		total = total + v
	}
	return total
}
`,
			want: []string{"float accumulation into total"},
		},
		{
			name: "loop-local accumulator is clean",
			path: "modelhub/internal/pas",
			src: `package pas

// Scale writes per-key results only.
func Scale(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		var s float64
		for _, v := range vs {
			s += v
		}
		out[k] = s
	}
	return out
}
`,
			want: nil,
		},
		{
			name: "integer accumulation is clean",
			path: "modelhub/internal/tensor",
			src: `package tensor

// Count sums exact integers; order cannot matter.
func Count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
`,
			want: nil,
		},
		{
			name: "uncovered package is out of scope",
			path: "modelhub/internal/hub",
			src: `package hub

// Sum is outside the determinism contract.
func Sum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
`,
			want: nil,
		},
		{
			name: "suppressed sum",
			path: "modelhub/internal/tensor",
			src: `package tensor

// Mean is display-only; determinism is waived on purpose here.
func Mean(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //mhlint:ignore floatdet fixture display-only statistic, never persisted
	}
	return sum / float64(len(m))
}
`,
			want:           nil,
			wantSuppressed: 1,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wantFindings(t, runFixture(t, analyzerFloatdet, c.path, c.src), c.want, c.wantSuppressed)
		})
	}
}

func TestAPIHygiene(t *testing.T) {
	cases := []struct {
		name           string
		path           string
		src            string
		want           []string
		wantSuppressed int
	}{
		{
			name: "stdout write",
			path: "modelhub/internal/fix",
			src: `package fix

import "fmt"

// Shout writes to stdout from a library.
func Shout() {
	fmt.Println("hi")
}
`,
			want: []string{"fmt.Println writes to stdout"},
		},
		{
			name: "fatal and exit",
			path: "modelhub/internal/fix",
			src: `package fix

import (
	"log"
	"os"
)

// Die kills the whole process.
func Die() {
	log.Fatalf("no")
	os.Exit(1)
}
`,
			want: []string{"log.Fatalf exits the process", "os.Exit exits the process"},
		},
		{
			name: "undocumented panic",
			path: "modelhub/internal/fix",
			src: `package fix

// Bad checks the sign without telling anyone what happens.
func Bad(n int) {
	if n < 0 {
		panic("negative")
	}
}
`,
			want: []string{"panic outside a documented invariant check"},
		},
		{
			name: "documented panic is clean",
			path: "modelhub/internal/fix",
			src: `package fix

// Must panics if n is negative — a documented invariant check.
func Must(n int) int {
	if n < 0 {
		panic("negative")
	}
	return n
}
`,
			want: nil,
		},
		{
			name: "suppressed exit",
			path: "modelhub/internal/fix",
			src: `package fix

import "os"

// Abort exits.
func Abort() {
	os.Exit(3) //mhlint:ignore apihygiene fixture demonstrating a justified exit
}
`,
			want:           nil,
			wantSuppressed: 1,
		},
		{
			name: "cmd packages are out of scope",
			path: "modelhub/cmd/fix",
			src: `package fix

import "fmt"

// Shout is fine in a binary.
func Shout() {
	fmt.Println("hi")
}
`,
			want: nil,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wantFindings(t, runFixture(t, analyzerAPIHygiene, c.path, c.src), c.want, c.wantSuppressed)
		})
	}
}
