package lint

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the machine-readable half of the driver: a JSON report for
// CI artifacts and a committed-baseline workflow. The baseline holds the
// accepted findings of a codebase (typically empty once everything is
// fixed); `mhlint -baseline lint.baseline.json` fails only on findings NOT
// in the baseline, so a large new analyzer can land gated before every
// legacy finding is burned down, without letting new regressions through.
//
// Baseline entries are keyed by (file, analyzer, message) with
// multiplicity — deliberately no line numbers, so unrelated edits that
// shift code do not churn the file. Paths are module-relative for the same
// reason.

// BaselineVersion is the schema version written and accepted.
const BaselineVersion = 1

// BaselineEntry identifies one accepted finding, line-insensitively.
type BaselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Baseline is the decoded accepted-findings file.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// LoadBaseline decodes and validates a baseline file's bytes.
func LoadBaseline(data []byte) (*Baseline, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var b Baseline
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	if b.Version != BaselineVersion {
		return nil, fmt.Errorf("lint: baseline: unsupported version %d (want %d)", b.Version, BaselineVersion)
	}
	for i, e := range b.Findings {
		if e.File == "" || e.Analyzer == "" || e.Message == "" {
			return nil, fmt.Errorf("lint: baseline: entry %d missing file/analyzer/message", i)
		}
	}
	return &b, nil
}

// MakeBaseline builds a baseline accepting the given findings, with paths
// rewritten by rel (pass nil for identity) and entries sorted.
func MakeBaseline(findings []Finding, rel func(string) string) *Baseline {
	b := &Baseline{Version: BaselineVersion, Findings: []BaselineEntry{}}
	for _, f := range findings {
		b.Findings = append(b.Findings, BaselineEntry{
			File:     relPath(rel, f.Pos.Filename),
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// Marshal renders the baseline as stable, indented JSON ending in a
// newline, for committing.
func (b *Baseline) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	return append(data, '\n'), nil
}

// Split partitions findings into those not covered by the baseline (new —
// these should fail the build) and those it accepts. Each baseline entry
// accepts at most as many findings as its multiplicity. It also returns
// how many baseline entries matched nothing (stale baseline rows worth a
// refresh).
func (b *Baseline) Split(findings []Finding, rel func(string) string) (fresh, accepted []Finding, unmatched int) {
	budget := map[BaselineEntry]int{}
	for _, e := range b.Findings {
		budget[e]++
	}
	for _, f := range findings {
		key := BaselineEntry{
			File:     relPath(rel, f.Pos.Filename),
			Analyzer: f.Analyzer,
			Message:  f.Message,
		}
		if budget[key] > 0 {
			budget[key]--
			accepted = append(accepted, f)
		} else {
			fresh = append(fresh, f)
		}
	}
	for _, n := range budget {
		unmatched += n
	}
	return fresh, accepted, unmatched
}

func relPath(rel func(string) string, p string) string {
	if rel != nil {
		return rel(p)
	}
	return p
}

// ModuleRel returns a function rewriting absolute file paths to
// slash-separated module-relative ones, leaving paths outside root (and
// already-relative fixture names) untouched.
func ModuleRel(root string) func(string) string {
	return func(p string) string {
		if root == "" || !filepath.IsAbs(p) {
			return filepath.ToSlash(p)
		}
		r, err := filepath.Rel(root, p)
		if err != nil || strings.HasPrefix(r, "..") {
			return filepath.ToSlash(p)
		}
		return filepath.ToSlash(r)
	}
}

// JSONFinding is the machine-readable form of one finding.
type JSONFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed string `json:"suppressed_by,omitempty"`
}

// JSONReport is the full machine-readable run outcome, ordered
// deterministically (findings sorted by file, line, col, analyzer).
type JSONReport struct {
	Module     string        `json:"module"`
	Packages   int           `json:"packages"`
	Analyzers  []string      `json:"analyzers"`
	Findings   []JSONFinding `json:"findings"`
	Baselined  []JSONFinding `json:"baselined,omitempty"`
	Suppressed []JSONFinding `json:"suppressed"`
}

// Report assembles the JSON form of a run. fresh/accepted come from
// Baseline.Split (pass res.Findings and nil when no baseline is in play).
func Report(module string, packages int, analyzers []*Analyzer, fresh, accepted, suppressed []Finding, rel func(string) string) *JSONReport {
	conv := func(fs []Finding) []JSONFinding {
		out := make([]JSONFinding, 0, len(fs))
		for _, f := range fs {
			out = append(out, JSONFinding{
				File:       relPath(rel, f.Pos.Filename),
				Line:       f.Pos.Line,
				Col:        f.Pos.Column,
				Analyzer:   f.Analyzer,
				Message:    f.Message,
				Suppressed: f.SuppressedBy,
			})
		}
		return out
	}
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	return &JSONReport{
		Module:     module,
		Packages:   packages,
		Analyzers:  names,
		Findings:   conv(fresh),
		Baselined:  conv(accepted),
		Suppressed: conv(suppressed),
	}
}

// Marshal renders the report as indented JSON ending in a newline.
func (r *JSONReport) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("lint: json report: %w", err)
	}
	return append(data, '\n'), nil
}
