package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module under analysis.
// Only non-test files are loaded: the hygiene invariants target shipping
// code, and test packages may deliberately violate them (fixtures, fault
// injection). Files excluded from the host build by //go:build lines or
// _GOOS/_GOARCH filename suffixes are skipped the same way `go build`
// skips them.
type Package struct {
	Module string
	Path   string
	Dir    string
	// Root is the module root directory, for rendering module-relative
	// finding paths.
	Root  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Load parses and type-checks the module rooted at dir (the directory
// holding go.mod, or any directory below it) for the given package
// patterns. Patterns follow the go tool's shape: "./..." for the whole
// module, "./internal/pas/..." for a subtree, "./internal/pas" for one
// package.
func Load(dir string, patterns []string) ([]*Package, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:    token.NewFileSet(),
		module:  modPath,
		root:    root,
		dirs:    map[string]string{},
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	if err := l.discover(); err != nil {
		return nil, err
	}
	want, err := l.selectPaths(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, path := range want {
		pkg, err := l.load(path)
		if errors.Is(err, errNoHostFiles) {
			// Every file is build-constrained off this platform; the go
			// tool would not build it here either.
			continue
		}
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// errNoHostFiles marks a package whose files are all excluded by build
// constraints on the host platform.
var errNoHostFiles = errors.New("lint: no source files for this platform")

// findModule walks upward from dir to the directory containing go.mod and
// extracts the module path.
func findModule(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for cur := abs; ; cur = filepath.Dir(cur) {
		data, err := os.ReadFile(filepath.Join(cur, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return cur, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", cur)
		}
		if filepath.Dir(cur) == cur {
			return "", "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
	}
}

type loader struct {
	fset    *token.FileSet
	module  string
	root    string
	dirs    map[string]string // import path -> directory
	pkgs    map[string]*Package
	loading map[string]bool // cycle guard
	std     types.Importer
}

// discover indexes every package directory of the module.
func (l *loader) discover() error {
	return filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if len(l.sourceFiles(path)) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.root, path)
		if err != nil {
			return err
		}
		imp := l.module
		if rel != "." {
			imp = l.module + "/" + filepath.ToSlash(rel)
		}
		l.dirs[imp] = path
		return nil
	})
}

// sourceFiles lists the non-test .go files of a directory that build on
// the host platform.
func (l *loader) sourceFiles(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !fileSuffixOK(name) {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out
}

// knownOS / knownArch are the GOOS/GOARCH values recognized in filename
// suffixes (name_GOOS.go, name_GOARCH.go, name_GOOS_GOARCH.go).
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mipsle": true, "mips64": true,
	"mips64le": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// unixOS is the set of GOOS values satisfying the "unix" build tag.
var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// fileSuffixOK applies go's implicit filename build constraints for the
// host platform.
func fileSuffixOK(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	if len(parts) < 2 {
		return true
	}
	last := parts[len(parts)-1]
	if knownArch[last] {
		if last != runtime.GOARCH {
			return false
		}
		if len(parts) >= 3 && knownOS[parts[len(parts)-2]] {
			return parts[len(parts)-2] == runtime.GOOS
		}
		return true
	}
	if knownOS[last] {
		return last == runtime.GOOS
	}
	return true
}

// buildTagSatisfied evaluates one build-constraint tag for the host.
func buildTagSatisfied(tag string) bool {
	switch {
	case tag == runtime.GOOS, tag == runtime.GOARCH, tag == "gc":
		return true
	case tag == "unix":
		return unixOS[runtime.GOOS]
	case strings.HasPrefix(tag, "go1."):
		// The toolchain running this loader satisfies every released
		// go1.x constraint this module is allowed to state (go.mod pins
		// the floor); accepting them all avoids parsing runtime.Version.
		return true
	}
	return false
}

// buildConstraintOK reports whether the //go:build line of a file (if any)
// is satisfied on the host platform. Only the header — lines before the
// package clause — is scanned, matching go/build.
func buildConstraintOK(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if constraint.IsGoBuild(line) {
			expr, err := constraint.Parse(line)
			if err != nil {
				return true // malformed: let the type-checker surface it
			}
			return expr.Eval(buildTagSatisfied)
		}
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		break // package clause or code: past the header
	}
	return true
}

// selectPaths expands patterns against the discovered package index.
func (l *loader) selectPaths(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var out []string
	for _, pat := range patterns {
		matched := false
		for _, imp := range sortedPathKeys(l.dirs) {
			if !matchPattern(l.module, pat, imp) {
				continue
			}
			matched = true
			if !seen[imp] {
				seen[imp] = true
				out = append(out, imp)
			}
		}
		if !matched {
			return nil, fmt.Errorf("lint: pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

// matchPattern reports whether the import path matches one go-style
// pattern, resolved relative to the module root.
func matchPattern(module, pat, imp string) bool {
	pat = strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/")
	if pat == "" || pat == "." {
		pat = module
	} else if !strings.HasPrefix(pat, module) {
		pat = module + "/" + pat
	}
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		return imp == rest || strings.HasPrefix(imp, rest+"/")
	}
	if pat == module+"/..." { // "..." alone
		return true
	}
	return imp == pat
}

func sortedPathKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// load parses and type-checks one module package (memoized).
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.dirs[path]
	if !ok {
		return nil, fmt.Errorf("lint: no package %s in module %s", path, l.module)
	}
	var files []*ast.File
	for _, name := range l.sourceFiles(dir) {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !buildConstraintOK(src) {
			continue
		}
		f, err := parser.ParseFile(l.fset, name, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%w: %s", errNoHostFiles, path)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(l.importPath),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		err = typeErrs[0] // the collector saw every error; the first is the root cause
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Module: l.module,
		Path:   path,
		Dir:    dir,
		Root:   l.root,
		Fset:   l.fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// importPath resolves an import: module-internal packages recurse through
// the loader; everything else must be stdlib and goes through the source
// importer (this module is dependency-free by policy).
func (l *loader) importPath(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
