package lint

import (
	"go/ast"
	"go/types"
)

// gohygiene enforces the goroutine discipline PR 2 established for the
// training and retrieval runtimes: library packages never leak unjoinable
// goroutines and never synchronize by sleeping.
//
//   - every `go` launch in <module>/internal/ must be visibly tied to a
//     completion mechanism: the goroutine body (or the same-package
//     function it calls) must touch a sync.WaitGroup, operate on a
//     channel, or select;
//   - time.Sleep is banned in library code — sleeping is not
//     synchronization.
var analyzerGohygiene = &Analyzer{
	Name: "gohygiene",
	Doc:  "bare goroutine launches and time.Sleep synchronization in library packages",
	Run:  runGohygiene,
}

func runGohygiene(pass *Pass) {
	if !pass.InLibrary() {
		return
	}
	bodies := funcBodies(pass.Info, pass.Files)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkGoStmt(pass, n, bodies)
			case *ast.CallExpr:
				if calleePath(pass.Info, n) == "time.Sleep" {
					pass.Reportf(n.Pos(), "time.Sleep in library code: sleeping is not synchronization")
				}
			}
			return true
		})
	}
}

// checkGoStmt verifies a goroutine launch is tied to a WaitGroup, channel,
// or select — either in its function-literal body or in the body of the
// same-package function it invokes.
func checkGoStmt(pass *Pass, g *ast.GoStmt, bodies map[types.Object]*ast.BlockStmt) {
	var body ast.Node
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if obj := calleeObj(pass.Info, g.Call); obj != nil {
			if b, ok := bodies[obj]; ok {
				body = b
			}
		}
	}
	if body == nil {
		pass.Reportf(g.Pos(), "goroutine launch whose body cannot be inspected; tie it to a WaitGroup or bounded pool")
		return
	}
	if !usesCompletionMechanism(pass.Info, body) {
		pass.Reportf(g.Pos(), "bare goroutine launch: body uses no WaitGroup, channel, or select, so nothing can join or bound it")
	}
}

// usesCompletionMechanism looks for any WaitGroup method call, channel
// operation, select, or close() in the body.
func usesCompletionMechanism(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if recvNamed(info, n) == "sync.WaitGroup" {
				found = true
			}
			if obj := calleeObj(info, n); obj != nil {
				if b, ok := obj.(*types.Builtin); ok && b.Name() == "close" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
