package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// This file tests the five gen-2 CFG/dataflow analyzers. Each gets
// positive fixtures (the invariant violated), negative fixtures (the
// idiomatic repair), and a suppression check, including seeded
// regressions of real past bug classes: the pre-PR-7 racy Engine.Workers
// field (atomicfield) and an unjoined per-request goroutine (goroleak).

// fixtureChainImporter serves previously type-checked fixture packages
// before falling back to the stdlib source importer, so fixtures can
// import module-internal stubs (e.g. a fake modelhub/internal/obs).
type fixtureChainImporter struct {
	pkgs map[string]*types.Package
}

func (i *fixtureChainImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.pkgs[path]; ok {
		return p, nil
	}
	return fixImp.Import(path)
}

// loadFixtureChain type-checks a sequence of single-file packages in
// order, each able to import the ones before it, and returns the last as
// the package under analysis.
func loadFixtureChain(t *testing.T, pkgs [][2]string) *Package {
	t.Helper()
	fixOnce.Do(func() {
		fixFset = token.NewFileSet()
		fixImp = importer.ForCompiler(fixFset, "source", nil)
	})
	imp := &fixtureChainImporter{pkgs: map[string]*types.Package{}}
	var last *Package
	for i, pc := range pkgs {
		path, src := pc[0], pc[1]
		f, err := parser.ParseFile(fixFset, fmt.Sprintf("%s_%d.go", t.Name(), i), src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse fixture %s: %v", path, err)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fixFset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("type-check fixture %s: %v", path, err)
		}
		imp.pkgs[path] = tpkg
		last = &Package{
			Module: "modelhub",
			Path:   path,
			Fset:   fixFset,
			Files:  []*ast.File{f},
			Types:  tpkg,
			Info:   info,
		}
	}
	return last
}

// obsStub is a miniature modelhub/internal/obs with the span API surface
// spanend tracks.
const obsStub = `package obs

import "context"

// Span is a stub of the obs span.
type Span struct{ name string }

// TraceID is a stub trace identifier.
type TraceID [16]byte

// SpanID is a stub span identifier.
type SpanID [8]byte

// Attr is a stub span attribute.
type Attr struct{ Key, Value string }

// End closes the span.
func (s *Span) End() {}

// SetAttr annotates the span.
func (s *Span) SetAttr(k, v string) {}

// SetAttrInt annotates the span with an integer.
func (s *Span) SetAttrInt(k string, v int64) {}

// Event records a point-in-time event on the span.
func (s *Span) Event(name string, attrs ...Attr) {}

// SetError marks the span failed.
func (s *Span) SetError() {}

// TraceID returns the span's trace ID.
func (s *Span) TraceID() TraceID { return TraceID{} }

// SpanID returns the span's ID.
func (s *Span) SpanID() SpanID { return SpanID{} }

// Start opens a child span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{name: name}
}

// StartRoot opens a root span.
func StartRoot(name string) *Span { return &Span{name: name} }

// StartRemote continues a trace started in another process.
func StartRemote(ctx context.Context, name string, tid TraceID, parent SpanID, sampled bool) (context.Context, *Span) {
	return ctx, &Span{name: name}
}
`

func runSpanendFixture(t *testing.T, src string) Result {
	t.Helper()
	pkg := loadFixtureChain(t, [][2]string{
		{"modelhub/internal/obs", obsStub},
		{"modelhub/internal/fix", src},
	})
	return Run([]*Package{pkg}, []*Analyzer{analyzerSpanend})
}

func TestSpanendEarlyReturnLeaks(t *testing.T) {
	res := runSpanendFixture(t, `package fix

import (
	"context"
	"errors"

	"modelhub/internal/obs"
)

func Work(ctx context.Context, fail bool) error {
	ctx, span := obs.Start(ctx, "work")
	_ = ctx
	if fail {
		return errors.New("early") // span not ended on this path
	}
	span.End()
	return nil
}
`)
	wantFindings(t, res, []string{"span span may reach a return without End()"}, 0)
}

func TestSpanendBranchWithoutEnd(t *testing.T) {
	res := runSpanendFixture(t, `package fix

import "modelhub/internal/obs"

func Partial(v bool) {
	span := obs.StartRoot("p")
	if v {
		span.End()
	}
}
`)
	wantFindings(t, res, []string{"span span may reach a return without End()"}, 0)
}

func TestSpanendDeferIsClean(t *testing.T) {
	res := runSpanendFixture(t, `package fix

import (
	"context"
	"errors"

	"modelhub/internal/obs"
)

func Work(ctx context.Context, fail bool) error {
	ctx, span := obs.Start(ctx, "work")
	defer span.End()
	_ = ctx
	if fail {
		return errors.New("early")
	}
	return nil
}
`)
	wantFindings(t, res, nil, 0)
}

func TestSpanendEscapeTransfersOwnership(t *testing.T) {
	res := runSpanendFixture(t, `package fix

import "modelhub/internal/obs"

// Returning the span hands the End obligation to the caller.
func Open() *obs.Span {
	span := obs.StartRoot("open")
	return span
}

// Capturing the span in a closure transfers ownership too.
func Closure() func() {
	span := obs.StartRoot("closure")
	return func() { span.End() }
}
`)
	wantFindings(t, res, nil, 0)
}

func TestSpanendAnnotatedSpanStillNeedsEnd(t *testing.T) {
	// Annotation methods must not count as an escape: a span that is
	// decorated with attributes and events but never Ended is still leaked.
	res := runSpanendFixture(t, `package fix

import (
	"context"
	"errors"

	"modelhub/internal/obs"
)

func Work(ctx context.Context, fail bool) error {
	ctx, span := obs.Start(ctx, "work")
	_ = ctx
	span.SetAttr("k", "v")
	span.SetAttrInt("n", 1)
	span.Event("step", obs.Attr{Key: "a", Value: "b"})
	if fail {
		span.SetError()
		return errors.New("early") // annotated but not ended
	}
	span.End()
	return nil
}
`)
	wantFindings(t, res, []string{"span span may reach a return without End()"}, 0)
}

func TestSpanendAnnotatedWithDeferIsClean(t *testing.T) {
	res := runSpanendFixture(t, `package fix

import (
	"context"

	"modelhub/internal/obs"
)

func Work(ctx context.Context) {
	ctx, span := obs.Start(ctx, "work")
	defer span.End()
	_ = ctx
	span.SetAttr("k", "v")
	_ = span.TraceID()
	_ = span.SpanID()
}
`)
	wantFindings(t, res, nil, 0)
}

func TestSpanendStartRemoteTracked(t *testing.T) {
	res := runSpanendFixture(t, `package fix

import (
	"context"

	"modelhub/internal/obs"
)

func Handle(ctx context.Context, tid obs.TraceID, parent obs.SpanID) {
	ctx, span := obs.StartRemote(ctx, "req", tid, parent, true)
	_ = ctx
	span.SetAttr("http.method", "GET")
}
`)
	wantFindings(t, res, []string{"span span may reach a return without End()"}, 0)
}

func TestSpanendSuppressed(t *testing.T) {
	res := runSpanendFixture(t, `package fix

import "modelhub/internal/obs"

func Audited(v bool) {
	//mhlint:ignore spanend intentionally open on the failure path
	span := obs.StartRoot("audited")
	if v {
		span.End()
	}
}
`)
	wantFindings(t, res, nil, 1)
}

func TestGoroleakHandlerRegression(t *testing.T) {
	// Seeded regression: the unjoined per-request goroutine shape that once
	// shipped in a hub handler.
	res := runFixture(t, analyzerGoroleak, "modelhub/internal/fix", `package fix

import "net/http"

func work() {}

func Handle(w http.ResponseWriter, r *http.Request) {
	go work() // one goroutine per request, nothing joins it
	w.WriteHeader(http.StatusAccepted)
}
`)
	wantFindings(t, res, []string{"goroutine launched in request scope with no visible bound"}, 0)
}

func TestGoroleakLoopLaunch(t *testing.T) {
	res := runFixture(t, analyzerGoroleak, "modelhub/internal/fix", `package fix

func work() {}

func Fan(items []int) {
	for range items {
		go work()
	}
}
`)
	wantFindings(t, res, []string{"goroutine launched in loop scope with no visible bound"}, 0)
}

func TestGoroleakWaitGroupIsClean(t *testing.T) {
	res := runFixture(t, analyzerGoroleak, "modelhub/internal/fix", `package fix

import "sync"

func work() {}

func Join(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

func DeferredJoin(items []int) {
	var wg sync.WaitGroup
	defer wg.Wait()
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
}
`)
	wantFindings(t, res, nil, 0)
}

func TestGoroleakSemaphoreIsClean(t *testing.T) {
	res := runFixture(t, analyzerGoroleak, "modelhub/internal/fix", `package fix

func work() {}

func Sem(items []int) {
	sem := make(chan struct{}, 4)
	for range items {
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			work()
		}()
	}
}
`)
	wantFindings(t, res, nil, 0)
}

func TestGoroleakPoolWorkerIsClean(t *testing.T) {
	res := runFixture(t, analyzerGoroleak, "modelhub/internal/fix", `package fix

func Pool(tasks chan func()) {
	for i := 0; i < 4; i++ {
		go func() {
			for f := range tasks {
				f()
			}
		}()
	}
}

// The worker body may also live in a named function the go statement calls.
func drain(tasks chan func()) {
	for f := range tasks {
		f()
	}
}

func NamedPool(tasks chan func()) {
	for i := 0; i < 4; i++ {
		go drain(tasks)
	}
}
`)
	wantFindings(t, res, nil, 0)
}

func TestGoroleakSingleLaunchIsClean(t *testing.T) {
	// A one-off goroutine outside loops and handlers is gohygiene's
	// business, not goroleak's: cardinality is 1.
	res := runFixture(t, analyzerGoroleak, "modelhub/internal/fix", `package fix

func work() {}

func Once() {
	go work()
}
`)
	wantFindings(t, res, nil, 0)
}

func TestGoroleakSuppressed(t *testing.T) {
	res := runFixture(t, analyzerGoroleak, "modelhub/internal/fix", `package fix

func work() {}

func Fan(items []int) {
	for range items {
		//mhlint:ignore goroleak bounded by caller contract in this fixture
		go work()
	}
}
`)
	wantFindings(t, res, nil, 1)
}

func TestAtomicfieldMixedAccessRegression(t *testing.T) {
	// Seeded regression: the pre-PR-7 Engine.Workers shape — a counter
	// updated atomically by workers but read plainly by callers.
	res := runFixture(t, analyzerAtomicfield, "modelhub/internal/fix", `package fix

import "sync/atomic"

type Engine struct {
	workers int64
}

func (e *Engine) Inc() {
	atomic.AddInt64(&e.workers, 1)
}

func (e *Engine) Racy() int64 {
	return e.workers // plain read of an atomically-updated field
}
`)
	wantFindings(t, res, []string{"workers is accessed atomically"}, 0)
}

func TestAtomicfieldAllAtomicIsClean(t *testing.T) {
	res := runFixture(t, analyzerAtomicfield, "modelhub/internal/fix", `package fix

import "sync/atomic"

type Engine struct {
	workers int64
}

func (e *Engine) Inc() {
	atomic.AddInt64(&e.workers, 1)
}

func (e *Engine) Load() int64 {
	return atomic.LoadInt64(&e.workers)
}
`)
	wantFindings(t, res, nil, 0)
}

func TestAtomicfieldTypedAtomicIsClean(t *testing.T) {
	// The idiomatic repair: a typed atomic makes plain access impossible.
	res := runFixture(t, analyzerAtomicfield, "modelhub/internal/fix", `package fix

import "sync/atomic"

type Engine struct {
	workers atomic.Int64
}

func (e *Engine) Inc()        { e.workers.Add(1) }
func (e *Engine) Load() int64 { return e.workers.Load() }
`)
	wantFindings(t, res, nil, 0)
}

func TestAtomicfieldCopies(t *testing.T) {
	res := runFixture(t, analyzerAtomicfield, "modelhub/internal/fix", `package fix

import "sync/atomic"

type Gauge struct {
	v atomic.Int64
}

func ByValueParam(g Gauge) {} // by-value parameter

func Copy(g *Gauge) {
	snapshot := *g // assignment copy
	_ = snapshot.v.Load()
}
`)
	wantFindings(t, res, []string{
		"by-value parameter contains atomic.Int64",
		"assignment copies atomic value",
	}, 0)
}

func TestAtomicfieldSuppressed(t *testing.T) {
	res := runFixture(t, analyzerAtomicfield, "modelhub/internal/fix", `package fix

import "sync/atomic"

type Engine struct {
	workers int64
}

func (e *Engine) Inc() {
	atomic.AddInt64(&e.workers, 1)
}

func (e *Engine) Snapshot() int64 {
	//mhlint:ignore atomicfield read under the engine mutex in this fixture
	return e.workers
}
`)
	wantFindings(t, res, nil, 1)
}

func TestCtxflowFreshRootAndObliviousCalls(t *testing.T) {
	res := runFixture(t, analyzerCtxflow, "modelhub/internal/fix", `package fix

import (
	"context"
	"net/http"
)

func Fetch(ctx context.Context, url string) {
	_ = context.Background() // fresh root under a live ctx
	resp, err := http.Get(url)
	if err == nil {
		resp.Body.Close()
	}
}
`)
	wantFindings(t, res, []string{
		"context.Background inside a function holding a request context; derive from ctx",
		"net/http.Get ignores the in-scope request context (ctx)",
	}, 0)
}

func TestCtxflowHandlerCarrier(t *testing.T) {
	res := runFixture(t, analyzerCtxflow, "modelhub/internal/fix", `package fix

import "net/http"

func Proxy(w http.ResponseWriter, r *http.Request) {
	resp, err := http.Get("http://upstream/health")
	if err == nil {
		resp.Body.Close()
	}
}
`)
	wantFindings(t, res, []string{"ignores the in-scope request context (r.Context())"}, 0)
}

func TestCtxflowClosureInheritsContext(t *testing.T) {
	res := runFixture(t, analyzerCtxflow, "modelhub/internal/fix", `package fix

import (
	"context"
	"net/http"
)

func Retry(ctx context.Context) {
	attempt := func() {
		resp, err := http.Get("http://x") // ctx is lexically in scope
		if err == nil {
			resp.Body.Close()
		}
	}
	attempt()
}
`)
	wantFindings(t, res, []string{"ignores the in-scope request context (ctx)"}, 0)
}

func TestCtxflowNoCarrierIsClean(t *testing.T) {
	// Without a context in scope there is nothing to plumb: growing a ctx
	// parameter is an API decision, not a lint fix.
	res := runFixture(t, analyzerCtxflow, "modelhub/internal/fix", `package fix

import "net/http"

func Poll(url string) {
	resp, err := http.Get(url)
	if err == nil {
		resp.Body.Close()
	}
}
`)
	wantFindings(t, res, nil, 0)
}

func TestCtxflowHeaderGetIsNotHTTPGet(t *testing.T) {
	// Regression: (http.Header).Get must not alias net/http.Get through
	// callee resolution.
	res := runFixture(t, analyzerCtxflow, "modelhub/internal/fix", `package fix

import (
	"context"
	"net/http"
)

func Inspect(ctx context.Context, r *http.Response) string {
	return r.Header.Get("Content-Range")
}
`)
	wantFindings(t, res, nil, 0)
}

func TestCtxflowCtxAwareIsClean(t *testing.T) {
	res := runFixture(t, analyzerCtxflow, "modelhub/internal/fix", `package fix

import (
	"context"
	"net/http"
)

func Fetch(ctx context.Context, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}
`)
	wantFindings(t, res, nil, 0)
}

func TestCtxflowSuppressed(t *testing.T) {
	res := runFixture(t, analyzerCtxflow, "modelhub/internal/fix", `package fix

import "context"

func Detach(ctx context.Context) context.Context {
	//mhlint:ignore ctxflow audit trail must survive request cancellation
	return context.Background()
}
`)
	wantFindings(t, res, nil, 1)
}

func TestDetpathUnsortedReturn(t *testing.T) {
	res := runFixture(t, analyzerDetpath, "modelhub/internal/tensor", `package tensor

func Keys(m map[string]float64) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
`)
	wantFindings(t, res, []string{"ks collects map keys/values in iteration order"}, 0)
}

func TestDetpathUnsortedRangeReplay(t *testing.T) {
	res := runFixture(t, analyzerDetpath, "modelhub/internal/dnn", `package dnn

func Sum(m map[string]float64) float64 {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	var s float64
	for _, k := range ks {
		s += m[k]
	}
	return s
}
`)
	wantFindings(t, res, []string{"range over ks replays map iteration order"}, 0)
}

func TestDetpathSortedIsClean(t *testing.T) {
	res := runFixture(t, analyzerDetpath, "modelhub/internal/tensor", `package tensor

import "sort"

func Keys(m map[string]float64) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func Sum(m map[string]float64) float64 {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	var s float64
	for _, k := range ks {
		s += m[k]
	}
	return s
}
`)
	wantFindings(t, res, nil, 0)
}

func TestDetpathOrderedSink(t *testing.T) {
	res := runFixture(t, analyzerDetpath, "modelhub/internal/pas", `package pas

import (
	"fmt"
	"strings"
)

func Dump(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		fmt.Fprintf(&b, "%s=%d\n", k, v)
	}
	return b.String()
}

func Concat(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}
`)
	wantFindings(t, res, []string{
		"fmt.Fprintf to &b inside a map range emits in iteration order",
		"write to b inside a map range emits in iteration order",
	}, 0)
}

func TestDetpathLoopLocalIsClean(t *testing.T) {
	// A slice declared inside the range body is rebuilt every iteration
	// and cannot carry iteration order across the loop.
	res := runFixture(t, analyzerDetpath, "modelhub/internal/tensor", `package tensor

func Local(m map[string][]float64) int {
	n := 0
	for _, vs := range m {
		var sq []float64
		for _, v := range vs {
			sq = append(sq, v*v)
		}
		n += len(sq)
	}
	return n
}
`)
	wantFindings(t, res, nil, 0)
}

func TestDetpathScopedToDeterministicPackages(t *testing.T) {
	// The same collect-without-sort shape outside tensor/dnn/pas is fine:
	// only those packages carry the bit-identical contract.
	res := runFixture(t, analyzerDetpath, "modelhub/internal/hub", `package hub

func Keys(m map[string]float64) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
`)
	wantFindings(t, res, nil, 0)
}

func TestDetpathSuppressed(t *testing.T) {
	res := runFixture(t, analyzerDetpath, "modelhub/internal/tensor", `package tensor

func Keys(m map[string]float64) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	//mhlint:ignore detpath caller sorts; order is documented as unspecified
	return ks
}
`)
	wantFindings(t, res, nil, 1)
}

func TestStaleDirectiveOnFullRun(t *testing.T) {
	pkg := loadFixture(t, "modelhub/internal/fix", `package fix

//mhlint:ignore goroleak historical justification that no longer applies
var V = 1
`)
	res := Run([]*Package{pkg}, All())
	wantFindings(t, res, []string{"stale ignore directive: no goroleak finding"}, 0)
}

func TestStaleDirectiveSkippedOnPartialRun(t *testing.T) {
	pkg := loadFixture(t, "modelhub/internal/fix", `package fix

//mhlint:ignore goroleak undecidable when goroleak does not run
var V = 1
`)
	res := Run([]*Package{pkg}, []*Analyzer{analyzerCtxflow})
	wantFindings(t, res, nil, 0)
}

func TestStaleWildcardDirective(t *testing.T) {
	src := `package fix

//mhlint:ignore * blanket excuse covering nothing
var V = 1
`
	// On a full run an unused wildcard is stale; on a partial run its
	// staleness is undecidable and it is left alone.
	res := Run([]*Package{loadFixture(t, "modelhub/internal/fix", src)}, All())
	wantFindings(t, res, []string{"stale ignore directive: no * finding"}, 0)
	res = Run([]*Package{loadFixture(t, "modelhub/internal/fix2", src)}, []*Analyzer{analyzerCtxflow})
	wantFindings(t, res, nil, 0)
}

func TestUnknownAnalyzerDirective(t *testing.T) {
	pkg := loadFixture(t, "modelhub/internal/fix", `package fix

//mhlint:ignore gorleak typo for goroleak
var V = 1
`)
	res := Run([]*Package{pkg}, []*Analyzer{analyzerCtxflow})
	wantFindings(t, res, []string{`ignore directive names unknown analyzer "gorleak"`}, 0)
}

func TestUsedDirectiveIsNotStale(t *testing.T) {
	pkg := loadFixture(t, "modelhub/internal/fix", `package fix

func work() {}

func Fan(items []int) {
	for range items {
		//mhlint:ignore goroleak bounded by fixture contract
		go work()
	}
}
`)
	res := Run([]*Package{pkg}, All())
	// gohygiene legitimately flags the bare launch too; what must NOT
	// appear is a stale-directive finding for the used goroleak ignore.
	for _, f := range res.Findings {
		if f.Analyzer == "mhlint" {
			t.Fatalf("used directive reported stale:\n%s", formatFindings(res.Findings))
		}
	}
	found := false
	for _, f := range res.Suppressed {
		if f.Analyzer == "goroleak" {
			found = true
		}
	}
	if !found {
		t.Fatalf("goroleak finding not suppressed:\n%s", formatFindings(res.Suppressed))
	}
}

// TestSuppressedOutputDeterministic locks the ordering contract for
// -suppressed output: position-sorted, stable across runs.
func TestSuppressedOutputDeterministic(t *testing.T) {
	src := `package fix

func work() {}

func Fan(items []int) {
	for range items {
		//mhlint:ignore goroleak first
		go work()
	}
	for range items {
		//mhlint:ignore goroleak second
		go work()
	}
}
`
	var prev []string
	for i := 0; i < 3; i++ {
		res := Run([]*Package{loadFixture(t, fmt.Sprintf("modelhub/internal/fix%d", i), src)}, All())
		var got []string
		for _, f := range res.Suppressed {
			got = append(got, fmt.Sprintf("%d:%d %s %s", f.Pos.Line, f.Pos.Column, f.Analyzer, f.SuppressedBy))
		}
		if len(got) != 2 || !strings.Contains(got[0], "first") || !strings.Contains(got[1], "second") {
			t.Fatalf("run %d: suppressed output %v, want position-sorted pair", i, got)
		}
		if prev != nil && !equalStrings(prev, got) {
			t.Fatalf("run %d: order changed: %v vs %v", i, prev, got)
		}
		prev = got
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
