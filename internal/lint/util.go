package lint

import (
	"go/ast"
	"go/types"
)

// errorIface is the built-in error interface, for implements checks.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t is (or implements) the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Identical(t, errorIface)
}

// syncLockNames are the sync types whose by-value copy is always a bug.
var syncLockNames = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true,
}

// lockKind returns a description like "sync.Mutex" when a value of type t
// embeds a sync lock (directly, via struct fields, or via arrays), or ""
// otherwise. Pointers stop the search: copying a pointer to a lock is fine.
func lockKind(t types.Type) string {
	return namedKind(t, func(pkg, name string) string {
		if pkg == "sync" && syncLockNames[name] {
			return "sync." + name
		}
		return ""
	})
}

// namedKind walks a type (through named types, struct fields, and arrays —
// pointers stop the search) and returns the first non-empty result of
// match applied to a named type's (package path, name).
func namedKind(t types.Type, match func(pkg, name string) string) string {
	return namedKindRec(t, match, map[types.Type]bool{})
}

func namedKindRec(t types.Type, match func(pkg, name string) string, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	t = types.Unalias(t)
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			if k := match(obj.Pkg().Path(), obj.Name()); k != "" {
				return k
			}
		}
		return namedKindRec(named.Underlying(), match, seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if k := namedKindRec(u.Field(i).Type(), match, seen); k != "" {
				return k
			}
		}
	case *types.Array:
		return namedKindRec(u.Elem(), match, seen)
	}
	return ""
}

// calleeObj resolves the object a call invokes: a *types.Func for direct
// function and method calls, a *types.Builtin for builtins, nil for
// indirect calls through function values.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel] // package-qualified call
	}
	return nil
}

// calleePath returns "pkgpath.Name" for a call to a package-level function
// of a stdlib/module package, or "" when unresolvable. Methods are
// deliberately excluded — (http.Header).Get must not alias net/http.Get —
// and resolve through recvNamed instead.
func calleePath(info *types.Info, call *ast.CallExpr) string {
	obj := calleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return ""
		}
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// recvNamed returns the named type of a method call's receiver, following
// one pointer indirection ("bytes.Buffer" for (*bytes.Buffer).Write).
func recvNamed(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s, ok := info.Selections[sel]
	if !ok {
		return ""
	}
	t := s.Recv()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	}
	return ""
}

// funcBodies maps every function, method, and closure-valued variable
// declared in the package to its body, so analyzers can look through
// same-package calls (including `run := func() {...}; go run()`).
func funcBodies(info *types.Info, files []*ast.File) map[types.Object]*ast.BlockStmt {
	out := map[types.Object]*ast.BlockStmt{}
	bind := func(name *ast.Ident, rhs ast.Expr) {
		lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
		if !ok {
			return
		}
		if obj := info.Defs[name]; obj != nil {
			out[obj] = lit.Body
		}
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					if obj := info.Defs[n.Name]; obj != nil {
						out[obj] = n.Body
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if id, ok := lhs.(*ast.Ident); ok {
						bind(id, n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						bind(name, n.Values[i])
					}
				}
			}
			return true
		})
	}
	return out
}

// eachFuncDecl visits every top-level function declaration of the package.
func eachFuncDecl(files []*ast.File, fn func(*ast.FuncDecl)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				fn(fd)
			}
		}
	}
}
