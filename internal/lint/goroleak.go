package lint

import (
	"go/ast"
	"go/types"
)

// goroleak guards goroutine cardinality on the service arc: a goroutine
// launched per request or per loop iteration multiplies under load, so the
// launch SCOPE must carry a visible bound or join. gohygiene (gen 1)
// checks the goroutine's body for a completion mechanism; goroleak checks
// the launch site with the CFG:
//
//	trigger — the `go` statement sits inside a for/range body, or inside a
//	handler-shaped function (http.ResponseWriter / *http.Request parameter
//	or a ServeHTTP method), where every request replays the launch;
//
//	bound evidence (any one clears the launch):
//	  - a sync.WaitGroup Wait (or deferred Wait) CFG-reachable from the
//	    launch block — the scope joins what it spawned;
//	  - a channel receive, channel range, or select CFG-reachable from the
//	    launch block — the scope collects results or completion signals;
//	  - a channel send reaching the launch (forward dataflow) — the
//	    acquire-token half of a buffered-channel semaphore caps concurrency;
//	  - the goroutine body (or the same-package function it calls) ranges
//	    over a channel or selects — a worker-pool member bounded by channel
//	    close, not by the launch count.
var analyzerGoroleak = &Analyzer{
	Name: "goroleak",
	Doc:  "request- or loop-scoped goroutine launches with no reachable join, semaphore, or pool bound",
	Run:  runGoroleak,
}

func runGoroleak(pass *Pass) {
	bodies := funcBodies(pass.Info, pass.Files)
	eachFunc(pass.Files, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		handler := isHandlerShaped(pass.Info, decl, lit)
		var goStmts []*ast.GoStmt
		inLoop := map[*ast.GoStmt]bool{}
		markLoopGoStmts(body, false, &goStmts, inLoop)
		if len(goStmts) == 0 {
			return
		}
		var cfg *CFG
		for _, g := range goStmts {
			if !inLoop[g] && !handler {
				continue
			}
			if goroutineBodyIsPoolWorker(pass.Info, g, bodies) {
				continue
			}
			if cfg == nil {
				cfg = buildCFG(body)
			}
			if launchScopeBounds(pass.Info, cfg, g) {
				continue
			}
			scope := "loop"
			if !inLoop[g] {
				scope = "request"
			}
			pass.Reportf(g.Pos(), "goroutine launched in %s scope with no visible bound: no reachable WaitGroup.Wait, channel receive, or semaphore, and the body is not a channel-draining worker", scope)
		}
	})
}

// markLoopGoStmts collects the go statements of a body (nested literals
// excluded — they are analyzed as their own bodies) and whether each sits
// inside a for/range statement.
func markLoopGoStmts(n ast.Node, loop bool, out *[]*ast.GoStmt, inLoop map[*ast.GoStmt]bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.FuncLit:
		return
	case *ast.GoStmt:
		*out = append(*out, n)
		inLoop[n] = loop
		return // the launch call's args may contain literals; skip them
	case *ast.ForStmt:
		markLoopGoStmts(n.Body, true, out, inLoop)
		return
	case *ast.RangeStmt:
		markLoopGoStmts(n.Body, true, out, inLoop)
		return
	}
	// Generic recursion one level down.
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		switch c.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.ForStmt, *ast.RangeStmt:
			markLoopGoStmts(c, loop, out, inLoop)
			return false
		}
		return true
	})
}

// isHandlerShaped reports whether the function is on the request path: it
// has an http.ResponseWriter or *http.Request parameter (declaration or
// literal), or is a ServeHTTP method.
func isHandlerShaped(info *types.Info, decl *ast.FuncDecl, lit *ast.FuncLit) bool {
	var ftype *ast.FuncType
	if lit != nil {
		ftype = lit.Type
	} else {
		ftype = decl.Type
		if decl.Name.Name == "ServeHTTP" && decl.Recv != nil {
			return true
		}
	}
	if ftype.Params == nil {
		return false
	}
	for _, f := range ftype.Params.List {
		if isHTTPParam(info.TypeOf(f.Type)) {
			return true
		}
	}
	return false
}

// isHTTPParam matches net/http.ResponseWriter and *net/http.Request.
func isHTTPParam(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
		return false
	}
	return obj.Name() == "ResponseWriter" || obj.Name() == "Request"
}

// goroutineBodyIsPoolWorker reports whether the launched body (resolved
// through same-package function values for `go run()`) drains a channel —
// a pool worker bounded by channel close rather than launch count.
func goroutineBodyIsPoolWorker(info *types.Info, g *ast.GoStmt, bodies map[types.Object]*ast.BlockStmt) bool {
	var body ast.Node
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if obj := calleeObj(info, g.Call); obj != nil {
			if b, ok := bodies[obj]; ok {
				body = b
			}
		}
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// launchScopeBounds reports whether the launching scope bounds the
// goroutine: a WaitGroup Wait / channel receive reachable from the launch
// block, a deferred Wait anywhere, or a semaphore send reaching the launch.
func launchScopeBounds(info *types.Info, cfg *CFG, g *ast.GoStmt) bool {
	// Deferred joins cover every exit, wherever the launch sits.
	for _, d := range cfg.Defers {
		if nodeHasJoin(info, d) {
			return true
		}
	}
	goBlock := cfg.BlockOf(g)
	if goBlock != nil {
		for b := range cfg.ReachableFrom(goBlock) {
			for _, n := range b.Nodes {
				if n == g {
					continue
				}
				if nodeHasJoin(info, n) {
					return true
				}
			}
		}
	}
	// Semaphore acquire: a channel send on some path into the launch.
	return reachingBefore(cfg, g,
		func(n ast.Node) bool { return nodeHasSend(n) },
		nil)
}

// nodeHasJoin reports whether the node (outside nested literals) waits on a
// WaitGroup or receives from / selects on a channel.
func nodeHasJoin(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if recvNamed(info, x) == "sync.WaitGroup" {
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// nodeHasSend reports whether the node (outside nested literals) performs a
// channel send.
func nodeHasSend(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			found = true
		}
		return !found
	})
	return found
}
