package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// locksafe enforces the concurrency invariants of the PAS retrieval engine
// and the training runtime:
//
//   - sync.Mutex / sync.RWMutex / sync.WaitGroup / sync.Once / sync.Cond
//     values (or values embedding one) must never be copied — by
//     assignment, argument passing, by-value receivers/params, or range;
//   - every Lock()/RLock() must have a reachable Unlock()/RUnlock() on the
//     same lock expression within the same function (no lock handoffs);
//   - no channel operations, select, WaitGroup.Wait, or time.Sleep while a
//     lock is explicitly held in the same statement sequence (the engine's
//     single-flight protocol depends on never blocking under fmu).
//
// The held-lock scan is an under-approximation: an Unlock in any branch
// releases the lock for the remainder of the scan, so findings are
// high-confidence at the cost of missing some fallthrough paths.
var analyzerLocksafe = &Analyzer{
	Name: "locksafe",
	Doc:  "copied sync primitives, Lock without Unlock, blocking while a lock is held",
	Run:  runLocksafe,
}

func runLocksafe(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFuncSig(pass, n.Recv, n.Type)
			case *ast.FuncLit:
				checkFuncSig(pass, nil, n.Type)
			case *ast.AssignStmt:
				checkLockAssign(pass, n)
			case *ast.CallExpr:
				checkLockArgs(pass, n)
			case *ast.RangeStmt:
				if n.Value != nil {
					if k := lockKind(pass.Info.TypeOf(n.Value)); k != "" {
						pass.Reportf(n.Value.Pos(), "range copies lock value: element contains %s", k)
					}
				}
			}
			return true
		})
	}
	eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		if fd.Body == nil {
			return
		}
		checkLockPairs(pass, fd)
		hs := &heldScanner{pass: pass, held: map[string]token.Pos{}}
		hs.stmts(fd.Body.List)
	})
}

// checkFuncSig flags by-value receivers, params, and results whose type
// embeds a sync primitive.
func checkFuncSig(pass *Pass, recv *ast.FieldList, ftype *ast.FuncType) {
	lists := []*ast.FieldList{recv, ftype.Params, ftype.Results}
	what := []string{"receiver", "parameter", "result"}
	for i, fl := range lists {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			if k := lockKind(pass.Info.TypeOf(field.Type)); k != "" {
				pass.Reportf(field.Type.Pos(), "by-value %s contains %s; use a pointer", what[i], k)
			}
		}
	}
}

// checkLockAssign flags assignments that copy an existing lock-containing
// value. Fresh values (composite literals, function calls) initialize
// rather than copy.
func checkLockAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for _, rhs := range as.Rhs {
		switch ast.Unparen(rhs).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			continue
		}
		if k := lockKind(pass.Info.TypeOf(rhs)); k != "" {
			pass.Reportf(rhs.Pos(), "assignment copies lock value: %s contains %s", types.ExprString(rhs), k)
		}
	}
}

// checkLockArgs flags call arguments that pass a lock-containing value by
// value.
func checkLockArgs(pass *Pass, call *ast.CallExpr) {
	for _, arg := range call.Args {
		switch ast.Unparen(arg).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			continue
		}
		if k := lockKind(pass.Info.TypeOf(arg)); k != "" {
			pass.Reportf(arg.Pos(), "call copies lock value: argument %s contains %s", types.ExprString(arg), k)
		}
	}
}

// syncMethod resolves a call to a method of a sync lock type, returning the
// lock expression key ("s.mu/w") and the method name. RLock/RUnlock get a
// distinct key suffix so read and write pairing stay separate.
func syncMethod(info *types.Info, call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	s, found := info.Selections[sel]
	if !found {
		return "", "", false
	}
	obj := s.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	method = obj.Name()
	kind := "/w"
	if method == "RLock" || method == "RUnlock" {
		kind = "/r"
	}
	return types.ExprString(sel.X) + kind, method, true
}

// checkLockPairs reports Lock/RLock calls with no matching Unlock/RUnlock
// on the same lock expression anywhere in the function (deferred or not).
func checkLockPairs(pass *Pass, fd *ast.FuncDecl) {
	type lockSite struct {
		pos  token.Pos
		name string
	}
	locks := map[string]lockSite{}
	unlocked := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, method, ok := syncMethod(pass.Info, call)
		if !ok {
			return true
		}
		switch method {
		case "Lock", "RLock":
			if _, dup := locks[key]; !dup {
				locks[key] = lockSite{pos: call.Pos(), name: types.ExprString(ast.Unparen(call.Fun).(*ast.SelectorExpr).X)}
			}
		case "Unlock", "RUnlock":
			unlocked[key] = true
		}
		return true
	})
	keys := make([]string, 0, len(locks))
	for k := range locks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !unlocked[k] {
			want := "Unlock"
			if strings.HasSuffix(k, "/r") {
				want = "RUnlock"
			}
			pass.Reportf(locks[k].pos, "%s is locked but never %sed in %s", locks[k].name, want, fd.Name.Name)
		}
	}
}

// heldScanner walks a statement sequence tracking explicitly-held locks and
// flagging blocking operations under them.
type heldScanner struct {
	pass *Pass
	held map[string]token.Pos
}

func (s *heldScanner) stmts(list []ast.Stmt) {
	for _, st := range list {
		s.stmt(st)
	}
}

func (s *heldScanner) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if key, method, ok := syncMethod(s.pass.Info, call); ok {
				switch method {
				case "Lock", "RLock":
					s.held[key] = call.Pos()
					return
				case "Unlock", "RUnlock":
					delete(s.held, key)
					return
				}
			}
		}
		s.check(st)
	case *ast.DeferStmt:
		// Deferred calls run at return; a deferred Unlock releases after
		// every statement below, so it neither blocks now nor releases now.
	case *ast.BlockStmt:
		s.stmts(st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.check(st.Cond)
		s.stmt(st.Body)
		if st.Else != nil {
			s.stmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Cond != nil {
			s.check(st.Cond)
		}
		s.stmt(st.Body)
	case *ast.RangeStmt:
		s.check(st.X)
		s.stmt(st.Body)
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		if len(s.held) > 0 {
			s.report(st.Pos(), "select")
		}
	default:
		s.check(st)
	}
}

// check inspects one non-compound statement or expression for blocking
// operations while any lock is held. Function literals are skipped: their
// bodies run elsewhere.
func (s *heldScanner) check(n ast.Node) {
	if len(s.held) == 0 || n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			s.report(n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.report(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if key, method, ok := syncMethod(s.pass.Info, n); ok && method == "Wait" {
				s.report(n.Pos(), "sync wait on "+key[:len(key)-2])
			}
			if calleePath(s.pass.Info, n) == "time.Sleep" {
				s.report(n.Pos(), "time.Sleep")
			}
		}
		return true
	})
}

func (s *heldScanner) report(pos token.Pos, what string) {
	names := make([]string, 0, len(s.held))
	for k := range s.held {
		names = append(names, strings.TrimSuffix(strings.TrimSuffix(k, "/w"), "/r"))
	}
	sort.Strings(names)
	s.pass.Reportf(pos, "%s while holding %s", what, strings.Join(names, ", "))
}
