package tensor

import (
	"math"
	"math/rand"
)

// RandMatrix returns a rows x cols matrix with elements drawn uniformly from
// [-scale, scale) using rng. All randomness in the repository flows through
// explicit *rand.Rand instances so experiments are reproducible.
func RandMatrix(rng *rand.Rand, rows, cols int, scale float32) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.data {
		m.data[i] = (rng.Float32()*2 - 1) * scale
	}
	return m
}

// RandNormal returns a matrix with elements drawn from N(0, std²).
func RandNormal(rng *rand.Rand, rows, cols int, std float64) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.data {
		m.data[i] = float32(rng.NormFloat64() * std)
	}
	return m
}

// XavierInit returns a matrix initialized with the Glorot/Xavier uniform
// scheme for a layer with fanIn inputs and fanOut outputs, the standard
// initialization for the DNN substrate.
func XavierInit(rng *rand.Rand, rows, cols, fanIn, fanOut int) *Matrix {
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	return RandMatrix(rng, rows, cols, limit)
}

// Perturb returns a copy of m with N(0, std²) noise added to every element.
// It is used by the synthetic repository generator to mimic checkpoint and
// fine-tuning drift without full retraining.
func (m *Matrix) Perturb(rng *rand.Rand, std float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] += float32(rng.NormFloat64() * std)
	}
	return out
}
