package tensor

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func randMat(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.data {
		m.data[i] = float32(rng.NormFloat64())
	}
	return m
}

// TestGemmMatchesRef: the blocked kernel must be bit-identical to the
// reference triple loop across random shapes — the determinism contract says
// blocking and tiling may not change any element's summation order.
func TestGemmMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		m, k, n := 1+rng.Intn(70), 1+rng.Intn(300), 1+rng.Intn(70)
		a, b := randMat(rng, m, k), randMat(rng, k, n)
		want, err := a.MatMulRef(b)
		if err != nil {
			t.Fatal(err)
		}
		got := NewMatrix(m, n)
		if err := Gemm(got, a, b); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d (%dx%dx%d): Gemm differs from reference", trial, m, k, n)
		}
		viaMatMul, err := a.MatMul(b)
		if err != nil {
			t.Fatal(err)
		}
		if !viaMatMul.Equal(want) {
			t.Fatalf("trial %d: MatMul delegate differs from reference", trial)
		}
	}
}

// TestGemmWorkerInvariance: results must not depend on the worker count.
func TestGemmWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randMat(rng, 120, 90), randMat(rng, 90, 110)
	prev := SetGemmWorkers(1)
	defer SetGemmWorkers(prev)
	serial := NewMatrix(120, 110)
	if err := Gemm(serial, a, b); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8} {
		SetGemmWorkers(w)
		got := NewMatrix(120, 110)
		if err := Gemm(got, a, b); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(serial) {
			t.Fatalf("workers=%d differs from serial", w)
		}
	}
}

// TestGemmAcc: accumulate form adds on top of the destination.
func TestGemmAcc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := randMat(rng, 5, 7), randMat(rng, 7, 4)
	dst := randMat(rng, 5, 4)
	init := dst.Clone()
	if err := GemmAcc(dst, a, b); err != nil {
		t.Fatal(err)
	}
	// Reference: per-term accumulation on top of the initial contents (the
	// same order the kernel guarantees — NOT init + full product, which
	// rounds differently).
	want := init.Clone()
	for i := 0; i < a.rows; i++ {
		for k := 0; k < a.cols; k++ {
			av := a.At(i, k)
			for j := 0; j < b.cols; j++ {
				want.data[i*want.cols+j] += av * b.At(k, j)
			}
		}
	}
	if !dst.Equal(want) {
		t.Fatal("GemmAcc differs from per-term reference")
	}
	if err := Gemm(NewMatrix(5, 5), a, b); err == nil {
		t.Fatal("want shape error for bad dst")
	}
	if err := Gemm(NewMatrix(5, 4), b, a); err == nil {
		t.Fatal("want shape error for incompatible inner dims")
	}
}

// TestGemmStridedBiasColumnView: the strided form addresses a weight matrix
// whose last (bias) column is excluded via lda = k+1, the conv layout.
func TestGemmStridedBiasColumnView(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const m, k, n = 6, 11, 9
	w := randMat(rng, m, k+1) // trailing bias column must be ignored
	b := randMat(rng, k, n)
	got := NewMatrix(m, n)
	GemmStrided(m, n, k, w.data, k+1, b.data, n, got.data, n, false)
	trimmed := NewMatrix(m, k)
	for i := 0; i < m; i++ {
		copy(trimmed.Row(i), w.Row(i)[:k])
	}
	want, _ := trimmed.MatMulRef(b)
	if !got.Equal(want) {
		t.Fatal("strided bias-column view differs from trimmed multiply")
	}
}

// TestGemmTNStrided: C = Aᵀ·B with strided A, against transpose + reference.
// Covers both the packed-panel path (large n) and the direct path (n < 4).
func TestGemmTNStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 3, 8, 40} {
		const m, k = 13, 9
		a := randMat(rng, k, m+2) // two extra columns exercise the stride
		b := randMat(rng, k, n)
		got := NewMatrix(m, n)
		GemmTNStrided(m, n, k, a.data, m+2, b.data, n, got.data, n, false)
		at := NewMatrix(m, k)
		for i := 0; i < k; i++ {
			for j := 0; j < m; j++ {
				at.Set(j, i, a.At(i, j))
			}
		}
		want, _ := at.MatMulRef(b)
		if !got.Equal(want) {
			t.Fatalf("n=%d: TN kernel differs from transpose+reference", n)
		}
	}
}

// TestGemmNTStrided: C = A·Bᵀ against transpose + reference.
func TestGemmNTStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const m, k, n = 7, 12, 10
	a := randMat(rng, m, k)
	b := randMat(rng, n, k)
	got := NewMatrix(m, n)
	GemmNTStrided(m, n, k, a.data, k, b.data, k, got.data, n, false)
	want, _ := a.MatMulRef(b.Transpose())
	if !got.Equal(want) {
		t.Fatal("NT kernel differs from transpose+reference")
	}
	// Accumulate form.
	acc := got.Clone()
	GemmNTStrided(m, n, k, a.data, k, b.data, k, acc.data, n, true)
	for i := range acc.data {
		if acc.data[i] != got.data[i]+want.data[i] {
			t.Fatal("NT accumulate differs")
		}
	}
}

func TestAddScaled(t *testing.T) {
	dst := []float32{1, 2, 3}
	AddScaled(dst, []float32{10, 20, 30}, 0.5)
	for i, want := range []float32{6, 12, 18} {
		if dst[i] != want {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on length mismatch")
		}
	}()
	AddScaled(dst, []float32{1}, 1)
}

// TestGemmConcurrent hammers the shared worker pool from many goroutines;
// meaningful under -race (make test-race).
func TestGemmConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, b := randMat(rng, 64, 64), randMat(rng, 64, 64)
	want, _ := a.MatMulRef(b)
	prev := SetGemmWorkers(4)
	defer SetGemmWorkers(prev)
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got := NewMatrix(64, 64)
				if err := Gemm(got, a, b); err != nil {
					errc <- err
					return
				}
				if !got.Equal(want) {
					errc <- ErrShape
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatalf("concurrent gemm: %v", err)
	}
}

// TestTransposeBlockedLarge exercises multi-tile transposes beyond the
// 32-edge tile, which the small fixtures in matrix_test.go do not reach.
func TestTransposeBlockedLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randMat(rng, 70, 45)
	tr := m.Transpose()
	if tr.Rows() != 45 || tr.Cols() != 70 {
		t.Fatalf("transpose shape %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("tr[%d,%d] mismatch", j, i)
			}
		}
	}
}

// TestSetGemmWorkersClamp pins the documented clamp rules: negatives restore
// the GOMAXPROCS default (stored as 0), absurd values clamp to the 256
// ceiling, and the previous value is returned.
func TestSetGemmWorkersClamp(t *testing.T) {
	prev := SetGemmWorkers(0)
	defer SetGemmWorkers(prev)

	if got := SetGemmWorkers(-5); got != 0 {
		t.Fatalf("previous after reset = %d, want 0", got)
	}
	if got := GemmWorkers(); got < 1 {
		t.Fatalf("GemmWorkers with negative override = %d, want >= 1", got)
	}
	SetGemmWorkers(1 << 20)
	if got := GemmWorkers(); got != 256 {
		t.Fatalf("GemmWorkers after absurd override = %d, want 256", got)
	}
	if got := SetGemmWorkers(3); got != 256 {
		t.Fatalf("previous after clamp = %d, want 256", got)
	}
	if got := GemmWorkers(); got != 3 {
		t.Fatalf("GemmWorkers = %d, want 3", got)
	}
}

// TestSetGemmKCClamp pins the blocking-depth override rules: 0 restores
// autotuning, oversized values clamp to 1024, and the autotuned depth stays
// within [64, 1024] across output widths.
func TestSetGemmKCClamp(t *testing.T) {
	prev := SetGemmKC(0)
	defer SetGemmKC(prev)

	SetGemmKC(1 << 20)
	if got := gemmKCFor(8); got != 1024 {
		t.Fatalf("pinned kc = %d, want 1024", got)
	}
	SetGemmKC(0)
	for _, n := range []int{1, 8, 64, 512, 4096, 1 << 20} {
		kc := gemmKCFor(n)
		if kc < 64 || kc > 1024 {
			t.Fatalf("autotuned kc for n=%d is %d, outside [64, 1024]", n, kc)
		}
	}
	// Narrower outputs must get panels at least as deep as wider ones.
	if gemmKCFor(16) < gemmKCFor(1024) {
		t.Fatalf("kc not monotone: n=16 -> %d < n=1024 -> %d", gemmKCFor(16), gemmKCFor(1024))
	}
}

// TestSetGemmWorkersConcurrent hammers the worker and KC knobs from many
// goroutines while kernels run, asserting (under -race) that tuning is safe
// mid-flight and that every result stays bit-identical to the reference.
func TestSetGemmWorkersConcurrent(t *testing.T) {
	prevW := SetGemmWorkers(0)
	prevKC := SetGemmKC(0)
	defer func() {
		SetGemmWorkers(prevW)
		SetGemmKC(prevKC)
	}()

	rng := rand.New(rand.NewSource(17))
	a := randMat(rng, 48, 40)
	b := randMat(rng, 40, 52)
	want, err := a.MatMulRef(b)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				SetGemmWorkers((g+i)%7 - 1) // sweeps -1..5, exercising the clamp
				SetGemmKC((i % 3) * 128)
				got := NewMatrix(48, 52)
				if err := Gemm(got, a, b); err != nil {
					errc <- err
					return
				}
				if !got.Equal(want) {
					errc <- fmt.Errorf("result diverged from reference at g=%d i=%d", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatalf("concurrent tuning: %v", err)
	}
}

// TestGemmWorkerInvarianceLarge runs a multiply big enough to engage the
// chunked work-stealing dispatcher (many chunks per worker) and checks
// bit-identity across worker counts, including counts above the chunk count.
func TestGemmWorkerInvarianceLarge(t *testing.T) {
	prev := SetGemmWorkers(1)
	defer SetGemmWorkers(prev)

	rng := rand.New(rand.NewSource(23))
	a := randMat(rng, 200, 96)
	b := randMat(rng, 96, 64)
	want := NewMatrix(200, 64)
	if err := Gemm(want, a, b); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 5, 16, 256} {
		SetGemmWorkers(w)
		got := NewMatrix(200, 64)
		if err := Gemm(got, a, b); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("workers=%d diverged from workers=1", w)
		}
	}
}
