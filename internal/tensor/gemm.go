package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the compute core behind the DNN engine's hot paths: a
// cache-blocked, goroutine-parallel float32 GEMM plus the strided and
// transposed variants im2col convolution needs, and small fused helpers
// (AddScaled). Determinism contract: for every output element the k-summation
// runs in strictly increasing k order, one rounding per term, so results are
// bit-identical to the reference triple loop (MatMulRef) regardless of
// blocking or worker count — parallelism only partitions output rows, never
// a single element's reduction.
//
// Parallel dispatch is a work-stealing chunk queue on a shared persistent
// worker pool: output rows are cut into fine-grained chunks sized by a flop
// target, and every participant (the caller plus pool workers) claims the
// next unstarted chunk off an atomic counter until the queue drains. Fast
// workers therefore steal work a static band split would have stranded on
// slow or preempted ones. Cache-blocking depth (the k panel) is autotuned
// from the multiply's column width against an L2 budget instead of a fixed
// constant; SetGemmKC pins it for experiments.

const (
	// gemmL2Bytes is the per-core L2 budget the k-panel autotuner targets.
	// Typical x86 cores have 256KB-1.25MB private L2; the conservative end
	// keeps the streamed B panel resident even on small parts, and larger
	// caches simply see more reuse.
	gemmL2Bytes = 256 << 10
	// gemmKCMin/Max clamp the autotuned k-blocking depth: below 64 the
	// per-panel loop overhead dominates, above 1024 the panel thrashes L1
	// evictions for no additional reuse.
	gemmKCMin = 64
	gemmKCMax = 1024
	// gemmParallelMin is the flop floor (m*n*k) below which dispatching to
	// the worker pool costs more than the multiply.
	gemmParallelMin = 32 * 1024
	// gemmChunkFlops is the work-stealing granularity target: each claimed
	// chunk carries at least this many flops so the claim's atomic increment
	// and cache handoff are amortized.
	gemmChunkFlops = 96 * 1024
	// gemmChunksPerWorker bounds how fine chunking may get: at most this
	// many chunks per worker, so tiny multiplies are not shredded into
	// claim-counter contention.
	gemmChunksPerWorker = 8
	// gemmMaxWorkers is the clamp ceiling for SetGemmWorkers — beyond it the
	// claim counter and memory bandwidth are the bottleneck, not cores.
	gemmMaxWorkers = 256
	// gemmMaxPoolWorkers caps the persistent pool; dispatches wanting more
	// helpers than this spawn the difference as fresh goroutines.
	gemmMaxPoolWorkers = 64
)

// gemmWorkerOverride holds the package-level worker override; <= 0 means use
// GOMAXPROCS.
var gemmWorkerOverride atomic.Int32

// SetGemmWorkers overrides the number of workers GEMM dispatches to and
// returns the previous override. Values clamp to a documented rule rather
// than silently misbehaving: n <= 0 restores the GOMAXPROCS-derived default,
// and n > 256 (gemmMaxWorkers) clamps to 256. Safe to call concurrently with
// running kernels (they snapshot the setting at dispatch).
func SetGemmWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	if n > gemmMaxWorkers {
		n = gemmMaxWorkers
	}
	return int(gemmWorkerOverride.Swap(int32(n)))
}

// GemmWorkers returns the effective worker count: the override if set,
// otherwise GOMAXPROCS (clamped to the same 256 ceiling as SetGemmWorkers).
func GemmWorkers() int {
	v := int(gemmWorkerOverride.Load())
	if v <= 0 {
		v = runtime.GOMAXPROCS(0)
	}
	if v > gemmMaxWorkers {
		v = gemmMaxWorkers
	}
	return v
}

// gemmKCOverride pins the k-blocking depth for experiments; 0 = autotune.
var gemmKCOverride atomic.Int32

// SetGemmKC pins the k-blocking depth (panel height) and returns the
// previous override. kc <= 0 restores autotuning; kc > 1024 clamps to 1024.
// Blocking depth never changes results — each element's k-summation stays in
// ascending order across panel boundaries — so this is purely a performance
// knob.
func SetGemmKC(kc int) int {
	if kc < 0 {
		kc = 0
	}
	if kc > gemmKCMax {
		kc = gemmKCMax
	}
	return int(gemmKCOverride.Swap(int32(kc)))
}

// gemmKCFor autotunes the k-blocking depth for an n-column multiply: the
// streamed B panel (kc × n float32) targets half the per-core L2 budget so
// it stays resident while a band of C rows streams over it. Narrow outputs
// get deeper panels, wide ones shallower, clamped to [64, 1024].
func gemmKCFor(n int) int {
	if v := gemmKCOverride.Load(); v > 0 {
		return int(v)
	}
	kc := gemmL2Bytes / 2 / 4 / n
	if kc < gemmKCMin {
		kc = gemmKCMin
	}
	if kc > gemmKCMax {
		kc = gemmKCMax
	}
	return kc
}

// gemmPool is the shared persistent worker pool all GEMM dispatches hand
// chunks to. It starts lazily on the first parallel kernel and grows on
// demand up to gemmMaxPoolWorkers when GOMAXPROCS (or the override) rises —
// workers are never torn down. Tasks that cannot be enqueued without
// blocking (queue saturated by nested parallelism, e.g. concurrent DQL
// candidates each running GEMMs) fall back to fresh goroutines so dispatch
// never deadlocks.
var gemmPool struct {
	once    sync.Once
	mu      sync.Mutex // serializes growth
	started atomic.Int32
	tasks   chan func()
}

// gemmPoolEnsure grows the pool to at least `want` workers (capped at
// gemmMaxPoolWorkers).
func gemmPoolEnsure(want int) {
	if want > gemmMaxPoolWorkers {
		want = gemmMaxPoolWorkers
	}
	if int(gemmPool.started.Load()) >= want {
		return
	}
	gemmPool.once.Do(func() { gemmPool.tasks = make(chan func(), gemmMaxPoolWorkers) })
	gemmPool.mu.Lock()
	for int(gemmPool.started.Load()) < want {
		gemmPool.started.Add(1)
		go func() {
			for f := range gemmPool.tasks {
				f()
			}
		}()
	}
	gemmPool.mu.Unlock()
	gGemmPoolWorkers.Set(int64(gemmPool.started.Load()))
}

// runChunks executes body(0..chunks-1) across the caller plus workers-1
// helpers, with chunk indices handed out by an atomic claim counter — the
// work-stealing queue. Helpers come from the persistent pool when its queue
// has room and are spawned fresh otherwise.
func runChunks(chunks, workers int, body func(chunk int)) {
	gemmPoolEnsure(workers - 1)
	var (
		next    atomic.Int64
		stolen  atomic.Int64
		spawned int64
		wg      sync.WaitGroup
	)
	// fair is the even-split share; anything a participant claims beyond it
	// was stolen from a slower participant.
	fair := (chunks + workers - 1) / workers
	run := func() {
		defer wg.Done()
		claimed := 0
		for {
			i := int(next.Add(1)) - 1
			if i >= chunks {
				break
			}
			body(i)
			claimed++
		}
		if claimed > fair {
			stolen.Add(int64(claimed - fair))
		}
	}
	wg.Add(workers)
	for w := 0; w < workers-1; w++ {
		select {
		case gemmPool.tasks <- run:
		default:
			spawned++
			go run()
		}
	}
	run() // the caller participates as the last worker
	wg.Wait()
	mGemmDispatchParallel.Inc()
	mGemmChunks.Add(int64(chunks))
	if s := stolen.Load(); s > 0 {
		mGemmChunksStolen.Add(s)
	}
	if spawned > 0 {
		mGemmSpawnFallback.Add(spawned)
	}
}

// chunkRows picks the work-stealing granularity: rows per chunk such that a
// chunk carries at least gemmChunkFlops of work, bounded below so no more
// than workers*gemmChunksPerWorker chunks exist.
func chunkRows(m, n, k, workers int) int {
	rowFlops := n * k
	rows := (gemmChunkFlops + rowFlops - 1) / rowFlops
	if maxChunks := workers * gemmChunksPerWorker; maxChunks > 0 {
		if minRows := (m + maxChunks - 1) / maxChunks; rows < minRows {
			rows = minRows
		}
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

// dispatchRows cuts rows [0, m) into claim-counter chunks and runs them on
// the shared pool when the multiply is large enough to amortize dispatch.
func dispatchRows(m, n, k int, body func(i0, i1 int)) {
	workers := GemmWorkers()
	if workers <= 1 || m == 1 || m*n*k < gemmParallelMin {
		mGemmDispatchInline.Inc()
		body(0, m)
		return
	}
	rows := chunkRows(m, n, k, workers)
	chunks := (m + rows - 1) / rows
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		mGemmDispatchInline.Inc()
		body(0, m)
		return
	}
	runChunks(chunks, workers, func(chunk int) {
		i0 := chunk * rows
		i1 := i0 + rows
		if i1 > m {
			i1 = m
		}
		body(i0, i1)
	})
}

// AddScaled computes dst[i] += alpha * x[i] (axpy). It panics if the slices
// differ in length.
func AddScaled(dst, x []float32, alpha float32) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("tensor: AddScaled length %d != %d", len(dst), len(x)))
	}
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// zeroRows clears rows [0, m) of c (row length n, stride ldc).
func zeroRows(m, n int, c []float32, ldc int) {
	for i := 0; i < m; i++ {
		row := c[i*ldc : i*ldc+n]
		for j := range row {
			row[j] = 0
		}
	}
}

// GemmStrided computes C += A·B (acc=true) or C = A·B (acc=false) on raw
// row-major storage: A is m×k with row stride lda, B is k×n with stride ldb,
// C is m×n with stride ldc. Strides let callers address submatrix views,
// e.g. a weight matrix whose trailing bias column is excluded (lda = k+1).
func GemmStrided(m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int, acc bool) {
	if m <= 0 || n <= 0 {
		return
	}
	if !acc {
		zeroRows(m, n, c, ldc)
	}
	if k <= 0 {
		return
	}
	kc := gemmKCFor(n)
	dispatchRows(m, n, k, func(i0, i1 int) {
		gemmBandN(i0, i1, n, k, kc, a, lda, b, ldb, c, ldc)
	})
}

// packPool recycles the scratch panels GemmTNStrided packs Aᵀ into, so
// per-example backward passes do not allocate.
var packPool = sync.Pool{New: func() any { return new([]float32) }}

// GemmTNStrided computes C += Aᵀ·B (acc=true) or C = Aᵀ·B: A is k×m with
// stride lda (so Aᵀ is m×k), B is k×n with stride ldb, C is m×n. When the
// multiply is large enough to amortize the copy, A is packed into a
// contiguous m×k panel first so the inner kernel streams unit-stride
// memory; packing is pure data movement and does not change the summation
// order.
func GemmTNStrided(m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int, acc bool) {
	if m <= 0 || n <= 0 {
		return
	}
	if !acc {
		zeroRows(m, n, c, ldc)
	}
	if k <= 0 {
		return
	}
	kc := gemmKCFor(n)
	if n >= 4 && m*n*k >= 4*m*k { // packing cost m*k is negligible vs m*n*k
		bufp := packPool.Get().(*[]float32)
		buf := *bufp
		if cap(buf) < m*k {
			buf = make([]float32, m*k)
		}
		buf = buf[:m*k]
		transposeBlocked(k, m, a, lda, buf, k)
		dispatchRows(m, n, k, func(i0, i1 int) {
			gemmBandN(i0, i1, n, k, kc, buf, k, b, ldb, c, ldc)
		})
		*bufp = buf
		packPool.Put(bufp)
		return
	}
	dispatchRows(m, n, k, func(i0, i1 int) {
		gemmBandTN(i0, i1, n, k, kc, a, lda, b, ldb, c, ldc)
	})
}

// GemmNTStrided computes C += A·Bᵀ (acc=true) or C = A·Bᵀ: A is m×k with
// stride lda, B is n×k with stride ldb (so Bᵀ is k×n), C is m×n. Each output
// element is a dot product of two contiguous rows.
func GemmNTStrided(m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int, acc bool) {
	if m <= 0 || n <= 0 {
		return
	}
	if !acc {
		zeroRows(m, n, c, ldc)
	}
	if k <= 0 {
		return
	}
	dispatchRows(m, n, k, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			arow := a[i*lda : i*lda+k]
			crow := c[i*ldc : i*ldc+n]
			for j := 0; j < n; j++ {
				brow := b[j*ldb : j*ldb+k]
				var s float32
				for t, av := range arow {
					s += av * brow[t]
				}
				crow[j] += s
			}
		}
	})
}

// gemmBandN is the serial N/N inner kernel over C rows [i0, i1): k-blocked
// into kc-deep panels with two-row register tiling, so each panel of B is
// streamed once for two output rows.
func gemmBandN(i0, i1, n, k, kc int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	if n == 1 {
		// Matrix-vector: each output element is one running dot, accumulated
		// in a register in the same order as the general path.
		for i := i0; i < i1; i++ {
			arow := a[i*lda : i*lda+k]
			s := c[i*ldc]
			if ldb == 1 {
				x := b[:k]
				for t, av := range arow {
					s += av * x[t]
				}
			} else {
				for t, av := range arow {
					s += av * b[t*ldb]
				}
			}
			c[i*ldc] = s
		}
		return
	}
	for kb := 0; kb < k; kb += kc {
		kEnd := kb + kc
		if kEnd > k {
			kEnd = k
		}
		i := i0
		for ; i+1 < i1; i += 2 {
			arow0 := a[i*lda : i*lda+k]
			arow1 := a[(i+1)*lda : (i+1)*lda+k]
			crow0 := c[i*ldc : i*ldc+n]
			crow1 := c[(i+1)*ldc : (i+1)*ldc+n]
			for t := kb; t < kEnd; t++ {
				a0, a1 := arow0[t], arow1[t]
				brow := b[t*ldb : t*ldb+n]
				for j, bv := range brow {
					crow0[j] += a0 * bv
					crow1[j] += a1 * bv
				}
			}
		}
		if i < i1 {
			arow := a[i*lda : i*lda+k]
			crow := c[i*ldc : i*ldc+n]
			for t := kb; t < kEnd; t++ {
				av := arow[t]
				brow := b[t*ldb : t*ldb+n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// gemmBandTN is gemmBandN with A read transposed (A is k×m, element (t, i)
// at a[t*lda+i]).
func gemmBandTN(i0, i1, n, k, kc int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	for kb := 0; kb < k; kb += kc {
		kEnd := kb + kc
		if kEnd > k {
			kEnd = k
		}
		i := i0
		for ; i+1 < i1; i += 2 {
			crow0 := c[i*ldc : i*ldc+n]
			crow1 := c[(i+1)*ldc : (i+1)*ldc+n]
			for t := kb; t < kEnd; t++ {
				a0, a1 := a[t*lda+i], a[t*lda+i+1]
				brow := b[t*ldb : t*ldb+n]
				for j, bv := range brow {
					crow0[j] += a0 * bv
					crow1[j] += a1 * bv
				}
			}
		}
		if i < i1 {
			crow := c[i*ldc : i*ldc+n]
			for t := kb; t < kEnd; t++ {
				av := a[t*lda+i]
				brow := b[t*ldb : t*ldb+n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// Gemm computes dst = a·b. dst must be preallocated with shape
// a.Rows()×b.Cols() and must not alias a or b.
func Gemm(dst, a, b *Matrix) error {
	if a.cols != b.rows {
		return fmt.Errorf("tensor: gemm %dx%d by %dx%d: %w", a.rows, a.cols, b.rows, b.cols, ErrShape)
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		return fmt.Errorf("tensor: gemm dst %dx%d, want %dx%d: %w", dst.rows, dst.cols, a.rows, b.cols, ErrShape)
	}
	GemmStrided(a.rows, b.cols, a.cols, a.data, a.cols, b.data, b.cols, dst.data, dst.cols, false)
	return nil
}

// GemmAcc computes dst += a·b with the same shape rules as Gemm.
func GemmAcc(dst, a, b *Matrix) error {
	if a.cols != b.rows {
		return fmt.Errorf("tensor: gemm %dx%d by %dx%d: %w", a.rows, a.cols, b.rows, b.cols, ErrShape)
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		return fmt.Errorf("tensor: gemm dst %dx%d, want %dx%d: %w", dst.rows, dst.cols, a.rows, b.cols, ErrShape)
	}
	GemmStrided(a.rows, b.cols, a.cols, a.data, a.cols, b.data, b.cols, dst.data, dst.cols, true)
	return nil
}
