package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the compute core behind the DNN engine's hot paths: a
// cache-blocked, goroutine-parallel float32 GEMM plus the strided and
// transposed variants im2col convolution needs, and small fused helpers
// (AddScaled). Determinism contract: for every output element the k-summation
// runs in strictly increasing k order, one rounding per term, so results are
// bit-identical to the reference triple loop (MatMulRef) regardless of
// blocking or worker count — parallelism only partitions output rows, never
// a single element's reduction.

const (
	// gemmKC is the k-blocking depth: a KC-row panel of B (KC * n floats)
	// stays resident in cache while a band of C rows streams over it.
	gemmKC = 240
	// gemmParallelMin is the flop floor (m*n*k) below which dispatching to
	// the worker pool costs more than the multiply.
	gemmParallelMin = 32 * 1024
	// gemmBandsPerWorker oversubscribes row bands so the atomic-counter
	// work-stealing loop balances uneven bands.
	gemmBandsPerWorker = 4
)

// gemmWorkerOverride holds the package-level worker override; <= 0 means use
// GOMAXPROCS.
var gemmWorkerOverride atomic.Int32

// SetGemmWorkers overrides the number of workers GEMM dispatches to and
// returns the previous override. n <= 0 restores the GOMAXPROCS-derived
// default. Safe to call concurrently with running kernels (they snapshot the
// setting at dispatch).
func SetGemmWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(gemmWorkerOverride.Swap(int32(n)))
}

// GemmWorkers returns the effective worker count: the override if set,
// otherwise GOMAXPROCS.
func GemmWorkers() int {
	if v := gemmWorkerOverride.Load(); v > 0 {
		return int(v)
	}
	return runtime.GOMAXPROCS(0)
}

// gemmPool is the shared worker pool all GEMM calls dispatch row bands to.
// Workers are started lazily on the first parallel kernel; tasks that cannot
// be enqueued without blocking (pool saturated by nested parallelism, e.g.
// concurrent DQL candidates each running GEMMs) fall back to fresh
// goroutines so dispatch never deadlocks.
var gemmPool struct {
	once  sync.Once
	tasks chan func()
}

func gemmPoolStart() {
	size := runtime.GOMAXPROCS(0)
	if size < 2 {
		size = 2 // keep the concurrent path exercised on single-CPU hosts
	}
	if size > 16 {
		size = 16
	}
	gemmPool.tasks = make(chan func(), size)
	for i := 0; i < size; i++ {
		go func() {
			for f := range gemmPool.tasks {
				f()
			}
		}()
	}
}

// parallelBands runs body(0..bands-1) across the caller plus workers-1 pool
// goroutines, with band indices handed out by an atomic counter (work
// stealing: fast workers drain the remaining bands).
func parallelBands(bands, workers int, body func(band int)) {
	if workers > bands {
		workers = bands
	}
	if workers <= 1 {
		for i := 0; i < bands; i++ {
			body(i)
		}
		return
	}
	gemmPool.once.Do(gemmPoolStart)
	var next atomic.Int64
	var wg sync.WaitGroup
	run := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= bands {
				return
			}
			body(i)
		}
	}
	wg.Add(workers)
	for w := 0; w < workers-1; w++ {
		select {
		case gemmPool.tasks <- run:
		default:
			go run()
		}
	}
	run() // the caller participates as the last worker
	wg.Wait()
}

// AddScaled computes dst[i] += alpha * x[i] (axpy). It panics if the slices
// differ in length.
func AddScaled(dst, x []float32, alpha float32) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("tensor: AddScaled length %d != %d", len(dst), len(x)))
	}
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// zeroRows clears rows [0, m) of c (row length n, stride ldc).
func zeroRows(m, n int, c []float32, ldc int) {
	for i := 0; i < m; i++ {
		row := c[i*ldc : i*ldc+n]
		for j := range row {
			row[j] = 0
		}
	}
}

// GemmStrided computes C += A·B (acc=true) or C = A·B (acc=false) on raw
// row-major storage: A is m×k with row stride lda, B is k×n with stride ldb,
// C is m×n with stride ldc. Strides let callers address submatrix views,
// e.g. a weight matrix whose trailing bias column is excluded (lda = k+1).
func GemmStrided(m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int, acc bool) {
	if m <= 0 || n <= 0 {
		return
	}
	if !acc {
		zeroRows(m, n, c, ldc)
	}
	if k <= 0 {
		return
	}
	dispatchRows(m, n, k, func(i0, i1 int) {
		gemmBandN(i0, i1, n, k, a, lda, b, ldb, c, ldc)
	})
}

// packPool recycles the scratch panels GemmTNStrided packs Aᵀ into, so
// per-example backward passes do not allocate.
var packPool = sync.Pool{New: func() any { return new([]float32) }}

// GemmTNStrided computes C += Aᵀ·B (acc=true) or C = Aᵀ·B: A is k×m with
// stride lda (so Aᵀ is m×k), B is k×n with stride ldb, C is m×n. When the
// multiply is large enough to amortize the copy, A is packed into a
// contiguous m×k panel first so the inner kernel streams unit-stride
// memory; packing is pure data movement and does not change the summation
// order.
func GemmTNStrided(m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int, acc bool) {
	if m <= 0 || n <= 0 {
		return
	}
	if !acc {
		zeroRows(m, n, c, ldc)
	}
	if k <= 0 {
		return
	}
	if n >= 4 && m*n*k >= 4*m*k { // packing cost m*k is negligible vs m*n*k
		bufp := packPool.Get().(*[]float32)
		buf := *bufp
		if cap(buf) < m*k {
			buf = make([]float32, m*k)
		}
		buf = buf[:m*k]
		transposeBlocked(k, m, a, lda, buf, k)
		dispatchRows(m, n, k, func(i0, i1 int) {
			gemmBandN(i0, i1, n, k, buf, k, b, ldb, c, ldc)
		})
		*bufp = buf
		packPool.Put(bufp)
		return
	}
	dispatchRows(m, n, k, func(i0, i1 int) {
		gemmBandTN(i0, i1, n, k, a, lda, b, ldb, c, ldc)
	})
}

// GemmNTStrided computes C += A·Bᵀ (acc=true) or C = A·Bᵀ: A is m×k with
// stride lda, B is n×k with stride ldb (so Bᵀ is k×n), C is m×n. Each output
// element is a dot product of two contiguous rows.
func GemmNTStrided(m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int, acc bool) {
	if m <= 0 || n <= 0 {
		return
	}
	if !acc {
		zeroRows(m, n, c, ldc)
	}
	if k <= 0 {
		return
	}
	dispatchRows(m, n, k, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			arow := a[i*lda : i*lda+k]
			crow := c[i*ldc : i*ldc+n]
			for j := 0; j < n; j++ {
				brow := b[j*ldb : j*ldb+k]
				var s float32
				for t, av := range arow {
					s += av * brow[t]
				}
				crow[j] += s
			}
		}
	})
}

// dispatchRows splits rows [0, m) into bands and runs them on the shared
// pool when the multiply is large enough to amortize dispatch.
func dispatchRows(m, n, k int, body func(i0, i1 int)) {
	workers := GemmWorkers()
	if workers <= 1 || m*n*k < gemmParallelMin || m == 1 {
		body(0, m)
		return
	}
	bands := workers * gemmBandsPerWorker
	if bands > m {
		bands = m
	}
	size := (m + bands - 1) / bands
	bands = (m + size - 1) / size
	parallelBands(bands, workers, func(band int) {
		i0 := band * size
		i1 := i0 + size
		if i1 > m {
			i1 = m
		}
		body(i0, i1)
	})
}

// gemmBandN is the serial N/N inner kernel over C rows [i0, i1): k-blocked
// with two-row register tiling, so each KC-row panel of B is streamed once
// for two output rows.
func gemmBandN(i0, i1, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	if n == 1 {
		// Matrix-vector: each output element is one running dot, accumulated
		// in a register in the same order as the general path.
		for i := i0; i < i1; i++ {
			arow := a[i*lda : i*lda+k]
			s := c[i*ldc]
			if ldb == 1 {
				x := b[:k]
				for t, av := range arow {
					s += av * x[t]
				}
			} else {
				for t, av := range arow {
					s += av * b[t*ldb]
				}
			}
			c[i*ldc] = s
		}
		return
	}
	for kb := 0; kb < k; kb += gemmKC {
		kEnd := kb + gemmKC
		if kEnd > k {
			kEnd = k
		}
		i := i0
		for ; i+1 < i1; i += 2 {
			arow0 := a[i*lda : i*lda+k]
			arow1 := a[(i+1)*lda : (i+1)*lda+k]
			crow0 := c[i*ldc : i*ldc+n]
			crow1 := c[(i+1)*ldc : (i+1)*ldc+n]
			for t := kb; t < kEnd; t++ {
				a0, a1 := arow0[t], arow1[t]
				brow := b[t*ldb : t*ldb+n]
				for j, bv := range brow {
					crow0[j] += a0 * bv
					crow1[j] += a1 * bv
				}
			}
		}
		if i < i1 {
			arow := a[i*lda : i*lda+k]
			crow := c[i*ldc : i*ldc+n]
			for t := kb; t < kEnd; t++ {
				av := arow[t]
				brow := b[t*ldb : t*ldb+n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// gemmBandTN is gemmBandN with A read transposed (A is k×m, element (t, i)
// at a[t*lda+i]).
func gemmBandTN(i0, i1, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	for kb := 0; kb < k; kb += gemmKC {
		kEnd := kb + gemmKC
		if kEnd > k {
			kEnd = k
		}
		i := i0
		for ; i+1 < i1; i += 2 {
			crow0 := c[i*ldc : i*ldc+n]
			crow1 := c[(i+1)*ldc : (i+1)*ldc+n]
			for t := kb; t < kEnd; t++ {
				a0, a1 := a[t*lda+i], a[t*lda+i+1]
				brow := b[t*ldb : t*ldb+n]
				for j, bv := range brow {
					crow0[j] += a0 * bv
					crow1[j] += a1 * bv
				}
			}
		}
		if i < i1 {
			crow := c[i*ldc : i*ldc+n]
			for t := kb; t < kEnd; t++ {
				av := a[t*lda+i]
				brow := b[t*ldb : t*ldb+n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// Gemm computes dst = a·b. dst must be preallocated with shape
// a.Rows()×b.Cols() and must not alias a or b.
func Gemm(dst, a, b *Matrix) error {
	if a.cols != b.rows {
		return fmt.Errorf("tensor: gemm %dx%d by %dx%d: %w", a.rows, a.cols, b.rows, b.cols, ErrShape)
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		return fmt.Errorf("tensor: gemm dst %dx%d, want %dx%d: %w", dst.rows, dst.cols, a.rows, b.cols, ErrShape)
	}
	GemmStrided(a.rows, b.cols, a.cols, a.data, a.cols, b.data, b.cols, dst.data, dst.cols, false)
	return nil
}

// GemmAcc computes dst += a·b with the same shape rules as Gemm.
func GemmAcc(dst, a, b *Matrix) error {
	if a.cols != b.rows {
		return fmt.Errorf("tensor: gemm %dx%d by %dx%d: %w", a.rows, a.cols, b.rows, b.cols, ErrShape)
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		return fmt.Errorf("tensor: gemm dst %dx%d, want %dx%d: %w", dst.rows, dst.cols, a.rows, b.cols, ErrShape)
	}
	GemmStrided(a.rows, b.cols, a.cols, a.data, a.cols, b.data, b.cols, dst.data, dst.cols, true)
	return nil
}
