package tensor

import "modelhub/internal/obs"

// GEMM dispatch metrics (see DESIGN.md §8). All counters are registered at
// init and gated by the global obs enable switch, so disabled-path overhead
// is one atomic load per dispatch. Chunk-level accounting is accumulated in
// plain locals inside a dispatch and published with a single Add per
// counter when the dispatch completes.
var (
	// mGemmDispatchParallel counts kernel calls that went to the worker pool.
	mGemmDispatchParallel = obs.GetCounter("tensor.gemm.dispatch.parallel")
	// mGemmDispatchInline counts kernel calls executed on the caller alone
	// (small products, one effective worker, or single-row outputs).
	mGemmDispatchInline = obs.GetCounter("tensor.gemm.dispatch.inline")
	// mGemmChunks counts row chunks claimed across all parallel dispatches.
	mGemmChunks = obs.GetCounter("tensor.gemm.chunks")
	// mGemmChunksStolen counts chunks a participant claimed beyond its fair
	// share ceil(chunks/participants) — the work-stealing imbalance signal:
	// zero means perfectly even progress, large values mean fast workers
	// drained chunks that a static band split would have left on slow ones.
	mGemmChunksStolen = obs.GetCounter("tensor.gemm.chunks.stolen")
	// mGemmSpawnFallback counts helper goroutines spawned fresh because the
	// shared pool's queue was saturated (nested parallelism).
	mGemmSpawnFallback = obs.GetCounter("tensor.gemm.pool.spawn_fallback")
	// gGemmPoolWorkers reports the persistent pool's current worker count.
	gGemmPoolWorkers = obs.GetGauge("tensor.gemm.pool.workers")
)
