package tensor

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary wire format for a Matrix:
//
//	magic  uint32  'M','H','T','0'
//	rows   uint32
//	cols   uint32
//	data   rows*cols little-endian float32 bit patterns
//
// The format is used by the DLV object store and the PAS chunk store.
const matrixMagic uint32 = 0x4d485430 // "MHT0"

// WriteTo serializes m in the ModelHub binary matrix format.
func (m *Matrix) WriteTo(w io.Writer) (int64, error) {
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:], matrixMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.rows))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(m.cols))
	n, err := w.Write(hdr)
	written := int64(n)
	if err != nil {
		return written, err
	}
	buf := make([]byte, 4*len(m.data))
	for i, v := range m.data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	n, err = w.Write(buf)
	return written + int64(n), err
}

// ReadMatrix deserializes a matrix previously written by WriteTo.
func ReadMatrix(r io.Reader) (*Matrix, error) {
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("tensor: reading matrix header: %w", err)
	}
	if magic := binary.LittleEndian.Uint32(hdr[0:]); magic != matrixMagic {
		return nil, fmt.Errorf("tensor: bad matrix magic %#x", magic)
	}
	rows := int(binary.LittleEndian.Uint32(hdr[4:]))
	cols := int(binary.LittleEndian.Uint32(hdr[8:]))
	const maxElems = 1 << 30
	if rows < 0 || cols < 0 || rows*cols > maxElems {
		return nil, fmt.Errorf("tensor: implausible matrix size %dx%d", rows, cols)
	}
	m := NewMatrix(rows, cols)
	buf := make([]byte, 4*len(m.data))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("tensor: reading matrix body: %w", err)
	}
	for i := range m.data {
		m.data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return m, nil
}

// Bytes returns the raw little-endian float32 bytes of m (no header). The
// byte-segmentation code in floatenc operates on this representation.
func (m *Matrix) Bytes() []byte {
	buf := make([]byte, 4*len(m.data))
	for i, v := range m.data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	return buf
}

// FromBytes reconstructs a rows x cols matrix from raw little-endian float32
// bytes produced by Bytes.
func FromBytes(rows, cols int, raw []byte) (*Matrix, error) {
	if len(raw) != 4*rows*cols {
		return nil, fmt.Errorf("tensor: raw length %d != 4*%d*%d: %w", len(raw), rows, cols, ErrShape)
	}
	m := NewMatrix(rows, cols)
	for i := range m.data {
		m.data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return m, nil
}
