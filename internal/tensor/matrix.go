// Package tensor provides the dense float32 matrix and tensor types that
// underlie every other ModelHub component. Learned DNN parameters are viewed
// throughout the system as collections of float matrices (paper Sec. IV-A),
// so Matrix is the first-class data type of the parameter archival store.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense, row-major float32 matrix. The zero value is an empty
// 0x0 matrix ready to use.
type Matrix struct {
	rows, cols int
	data       []float32
}

// ErrShape is returned when matrix dimensions are incompatible with the
// requested operation.
var ErrShape = errors.New("tensor: shape mismatch")

// NewMatrix returns a zeroed rows x cols matrix. It panics if either
// dimension is negative.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float32, rows*cols)}
}

// FromSlice wraps data as a rows x cols matrix without copying. The slice
// length must equal rows*cols.
func FromSlice(rows, cols int, data []float32) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("tensor: data length %d != %d*%d: %w", len(data), rows, cols, ErrShape)
	}
	return &Matrix{rows: rows, cols: cols, data: data}, nil
}

// MustFromSlice is FromSlice but panics on shape mismatch. Intended for
// tests and literals.
func MustFromSlice(rows, cols int, data []float32) *Matrix {
	m, err := FromSlice(rows, cols, data)
	if err != nil {
		panic(err)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Len returns the total number of elements.
func (m *Matrix) Len() int { return len(m.data) }

// Data returns the underlying row-major storage. Mutating it mutates the
// matrix.
func (m *Matrix) Data() []float32 { return m.data }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float32 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float32) { m.data[i*m.cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float32 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Reshape returns a new matrix header sharing m's storage with the given
// dimensions. rows*cols must equal m.Len().
func (m *Matrix) Reshape(rows, cols int) (*Matrix, error) {
	if rows*cols != len(m.data) {
		return nil, fmt.Errorf("tensor: cannot reshape %dx%d to %dx%d: %w", m.rows, m.cols, rows, cols, ErrShape)
	}
	return &Matrix{rows: rows, cols: cols, data: m.data}, nil
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool {
	return m.rows == o.rows && m.cols == o.cols
}

// Equal reports whether m and o have identical shape and bit-identical
// elements (NaNs compare equal to themselves bit-wise).
func (m *Matrix) Equal(o *Matrix) bool {
	if !m.SameShape(o) {
		return false
	}
	for i, v := range m.data {
		if math.Float32bits(v) != math.Float32bits(o.data[i]) {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether m and o have identical shape and all elements
// within tol of each other.
func (m *Matrix) ApproxEqual(o *Matrix, tol float32) bool {
	if !m.SameShape(o) {
		return false
	}
	for i, v := range m.data {
		d := v - o.data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}

// String renders a compact description, eliding large matrices.
func (m *Matrix) String() string {
	if len(m.data) <= 16 {
		return fmt.Sprintf("Matrix(%dx%d)%v", m.rows, m.cols, m.data)
	}
	return fmt.Sprintf("Matrix(%dx%d, %d elems)", m.rows, m.cols, len(m.data))
}

// Add returns m + o elementwise.
func (m *Matrix) Add(o *Matrix) (*Matrix, error) {
	if !m.SameShape(o) {
		return nil, fmt.Errorf("tensor: add %dx%d to %dx%d: %w", m.rows, m.cols, o.rows, o.cols, ErrShape)
	}
	out := NewMatrix(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] + o.data[i]
	}
	return out, nil
}

// Sub returns m - o elementwise.
func (m *Matrix) Sub(o *Matrix) (*Matrix, error) {
	if !m.SameShape(o) {
		return nil, fmt.Errorf("tensor: sub %dx%d from %dx%d: %w", o.rows, o.cols, m.rows, m.cols, ErrShape)
	}
	out := NewMatrix(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] - o.data[i]
	}
	return out, nil
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float32) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// MatVec computes m · x for a vector x of length Cols, returning a vector of
// length Rows.
func (m *Matrix) MatVec(x []float32) ([]float32, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("tensor: matvec %dx%d with vec %d: %w", m.rows, m.cols, len(x), ErrShape)
	}
	out := make([]float32, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s float32
		for j, w := range row {
			s += w * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// MatMul returns m · o. It delegates to the blocked, parallel Gemm kernel;
// MatMulRef is the reference implementation both are checked against.
func (m *Matrix) MatMul(o *Matrix) (*Matrix, error) {
	if m.cols != o.rows {
		return nil, fmt.Errorf("tensor: matmul %dx%d by %dx%d: %w", m.rows, m.cols, o.rows, o.cols, ErrShape)
	}
	out := NewMatrix(m.rows, o.cols)
	GemmStrided(m.rows, o.cols, m.cols, m.data, m.cols, o.data, o.cols, out.data, o.cols, true)
	return out, nil
}

// MatMulRef is the reference triple-loop product kept for cross-checking the
// blocked kernel. The inner loop is branch-free: skipping zero multiplicands
// pessimizes dense weights via branch misprediction, so any sparse shortcut
// belongs in the caller.
func (m *Matrix) MatMulRef(o *Matrix) (*Matrix, error) {
	if m.cols != o.rows {
		return nil, fmt.Errorf("tensor: matmul %dx%d by %dx%d: %w", m.rows, m.cols, o.rows, o.cols, ErrShape)
	}
	out := NewMatrix(m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			orow := o.data[k*o.cols : (k+1)*o.cols]
			dst := out.data[i*o.cols : (i+1)*o.cols]
			for j, b := range orow {
				dst[j] += a * b
			}
		}
	}
	return out, nil
}

// transposeTile is the square tile edge for blocked transposes: 32x32
// float32 tiles (4KB in + 4KB out) keep both the read rows and the written
// columns cache-resident.
const transposeTile = 32

// transposeBlocked writes the transpose of the rows×cols matrix src (row
// stride lds) into dst (row stride ldd, shape cols×rows), walking square
// tiles so both sides stay cache-friendly.
func transposeBlocked(rows, cols int, src []float32, lds int, dst []float32, ldd int) {
	for ib := 0; ib < rows; ib += transposeTile {
		iEnd := ib + transposeTile
		if iEnd > rows {
			iEnd = rows
		}
		for jb := 0; jb < cols; jb += transposeTile {
			jEnd := jb + transposeTile
			if jEnd > cols {
				jEnd = cols
			}
			for i := ib; i < iEnd; i++ {
				row := src[i*lds : i*lds+cols]
				for j := jb; j < jEnd; j++ {
					dst[j*ldd+i] = row[j]
				}
			}
		}
	}
}

// Transpose returns mᵀ (cache-blocked tiles).
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	transposeBlocked(m.rows, m.cols, m.data, m.cols, out.data, m.rows)
	return out
}
