package tensor

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 || m.Len() != 12 {
		t.Fatalf("bad dims: %dx%d len %d", m.Rows(), m.Cols(), m.Len())
	}
	for i, v := range m.Data() {
		if v != 0 {
			t.Fatalf("element %d not zero: %v", i, v)
		}
	}
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	NewMatrix(-1, 2)
}

func TestFromSlice(t *testing.T) {
	m, err := FromSlice(2, 2, []float32{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	if _, err := FromSlice(2, 2, []float32{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestSetAtRow(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("At(1,2) = %v", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 7.5 {
		t.Fatalf("Row(1)[2] = %v", row[2])
	}
	row[0] = 1 // views alias storage
	if m.At(1, 0) != 1 {
		t.Fatal("Row must be a view, not a copy")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := MustFromSlice(1, 2, []float32{1, 2})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias original storage")
	}
}

func TestReshape(t *testing.T) {
	m := MustFromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	r, err := m.Reshape(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.At(2, 1) != 6 {
		t.Fatalf("reshaped At(2,1) = %v", r.At(2, 1))
	}
	if _, err := m.Reshape(4, 2); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestEqualBitwise(t *testing.T) {
	nan := float32(math.NaN())
	a := MustFromSlice(1, 2, []float32{nan, 1})
	b := MustFromSlice(1, 2, []float32{nan, 1})
	if !a.Equal(b) {
		t.Fatal("bit-identical NaNs should compare equal")
	}
	c := MustFromSlice(2, 1, []float32{nan, 1})
	if a.Equal(c) {
		t.Fatal("different shapes must not be equal")
	}
}

func TestApproxEqual(t *testing.T) {
	a := MustFromSlice(1, 2, []float32{1, 2})
	b := MustFromSlice(1, 2, []float32{1.0005, 2})
	if !a.ApproxEqual(b, 1e-3) {
		t.Fatal("should be approx equal at 1e-3")
	}
	if a.ApproxEqual(b, 1e-5) {
		t.Fatal("should differ at 1e-5")
	}
}

func TestAddSubScale(t *testing.T) {
	a := MustFromSlice(1, 3, []float32{1, 2, 3})
	b := MustFromSlice(1, 3, []float32{4, 5, 6})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromSlice(1, 3, []float32{5, 7, 9})
	if !sum.Equal(want) {
		t.Fatalf("sum = %v", sum)
	}
	diff, err := b.Sub(a)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equal(MustFromSlice(1, 3, []float32{3, 3, 3})) {
		t.Fatalf("diff = %v", diff)
	}
	if _, err := a.Add(NewMatrix(2, 2)); !errors.Is(err, ErrShape) {
		t.Fatal("want shape error")
	}
	a.Scale(2)
	if !a.Equal(MustFromSlice(1, 3, []float32{2, 4, 6})) {
		t.Fatalf("scaled = %v", a)
	}
}

func TestMatVec(t *testing.T) {
	m := MustFromSlice(2, 3, []float32{1, 0, 2, 0, 1, -1})
	y, err := m.MatVec([]float32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 7 || y[1] != -1 {
		t.Fatalf("y = %v", y)
	}
	if _, err := m.MatVec([]float32{1}); !errors.Is(err, ErrShape) {
		t.Fatal("want shape error")
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandMatrix(rng, 4, 5, 1)
	b := RandMatrix(rng, 5, 3, 1)
	got, err := a.MatMul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := NewMatrix(4, 3)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			var s float32
			for k := 0; k < 5; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			want.Set(i, j, s)
		}
	}
	if !got.ApproxEqual(want, 1e-5) {
		t.Fatal("MatMul disagrees with naive triple loop")
	}
	if _, err := a.MatMul(a); !errors.Is(err, ErrShape) {
		t.Fatal("want shape error for incompatible matmul")
	}
}

func TestTranspose(t *testing.T) {
	m := MustFromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("transpose = %v", tr)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := RandMatrix(rng, 1+rng.Intn(8), 1+rng.Intn(8), 10)
		return m.Transpose().Transpose().Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComputeStats(t *testing.T) {
	m := MustFromSlice(1, 5, []float32{-2, 0, 2, float32(math.NaN()), float32(math.Inf(1))})
	s := m.ComputeStats()
	if s.Min != -2 || s.Max != 2 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.NaNs != 1 || s.Infs != 1 || s.NonZero != 2 {
		t.Fatalf("counts = %+v", s)
	}
	if math.Abs(s.Mean) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if math.Abs(s.Std-math.Sqrt(8.0/3.0)) > 1e-9 {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := NewMatrix(0, 0).ComputeStats()
	if s.Min != 0 || s.Max != 0 || s.Mean != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestAbsMax(t *testing.T) {
	m := MustFromSlice(1, 3, []float32{-5, 3, float32(math.NaN())})
	if m.AbsMax() != 5 {
		t.Fatalf("AbsMax = %v", m.AbsMax())
	}
}

func TestMeanAbsDiff(t *testing.T) {
	a := MustFromSlice(1, 2, []float32{1, 2})
	b := MustFromSlice(1, 2, []float32{2, 4})
	d, err := a.MeanAbsDiff(b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1.5 {
		t.Fatalf("MeanAbsDiff = %v", d)
	}
	if _, err := a.MeanAbsDiff(NewMatrix(2, 2)); !errors.Is(err, ErrShape) {
		t.Fatal("want shape error")
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := XavierInit(rng, 10, 10, 100, 100)
	limit := float32(math.Sqrt(6.0 / 200.0))
	for _, v := range m.Data() {
		if v < -limit || v > limit {
			t.Fatalf("value %v outside xavier bound %v", v, limit)
		}
	}
}

func TestPerturbChangesCopyOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := RandMatrix(rng, 4, 4, 1)
	orig := m.Clone()
	p := m.Perturb(rng, 0.1)
	if !m.Equal(orig) {
		t.Fatal("Perturb must not mutate the receiver")
	}
	if p.Equal(m) {
		t.Fatal("Perturb should change values")
	}
}

func TestMatrixSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := RandMatrix(rng, 7, 5, 3)
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	got, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("round trip mismatch")
	}
}

func TestReadMatrixBadMagic(t *testing.T) {
	if _, err := ReadMatrix(bytes.NewReader(make([]byte, 12))); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestReadMatrixTruncated(t *testing.T) {
	m := NewMatrix(4, 4)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadMatrix(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error for truncated body")
	}
}

func TestBytesRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := RandNormal(rng, 1+rng.Intn(6), 1+rng.Intn(6), 2)
		got, err := FromBytes(m.Rows(), m.Cols(), m.Bytes())
		return err == nil && got.Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromBytesBadLength(t *testing.T) {
	if _, err := FromBytes(2, 2, make([]byte, 7)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestRandMatrixDeterministic(t *testing.T) {
	a := RandMatrix(rand.New(rand.NewSource(42)), 3, 3, 1)
	b := RandMatrix(rand.New(rand.NewSource(42)), 3, 3, 1)
	if !a.Equal(b) {
		t.Fatal("same seed must produce identical matrices")
	}
}
