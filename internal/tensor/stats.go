package tensor

import "math"

// Stats summarizes the value distribution of a matrix. It is used by the
// lossy float encodings (which need min/max and exponent ranges) and by
// dlv desc / dlv diff.
type Stats struct {
	Min, Max   float32
	Mean, Std  float64
	L2         float64 // Frobenius norm
	NonZero    int
	NaNs, Infs int
}

// ComputeStats scans the matrix once and returns its Stats. NaN and Inf
// elements are counted but excluded from Min/Max/Mean/Std/L2.
func (m *Matrix) ComputeStats() Stats {
	s := Stats{Min: float32(math.Inf(1)), Max: float32(math.Inf(-1))}
	var sum, sumsq float64
	n := 0
	for _, v := range m.data {
		switch {
		case math.IsNaN(float64(v)):
			s.NaNs++
			continue
		case math.IsInf(float64(v), 0):
			s.Infs++
			continue
		}
		if v != 0 {
			s.NonZero++
		}
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		f := float64(v)
		sum += f
		sumsq += f * f
		n++
	}
	if n == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	s.Mean = sum / float64(n)
	s.L2 = math.Sqrt(sumsq)
	variance := sumsq/float64(n) - s.Mean*s.Mean
	if variance < 0 {
		variance = 0
	}
	s.Std = math.Sqrt(variance)
	return s
}

// AbsMax returns the largest absolute finite value in the matrix, or 0 for
// an empty or all-non-finite matrix.
func (m *Matrix) AbsMax() float32 {
	var mx float32
	for _, v := range m.data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			continue
		}
		if v < 0 {
			v = -v
		}
		if v > mx {
			mx = v
		}
	}
	return mx
}

// MeanAbsDiff returns the mean absolute elementwise difference between m and
// o, a cheap similarity measure used by dlv diff and the delta selector.
func (m *Matrix) MeanAbsDiff(o *Matrix) (float64, error) {
	if !m.SameShape(o) {
		return 0, ErrShape
	}
	if len(m.data) == 0 {
		return 0, nil
	}
	var sum float64
	for i, v := range m.data {
		d := float64(v - o.data[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(m.data)), nil
}
