package dql

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"modelhub/internal/tensor"
)

const gridQuery = `evaluate m
	from (select m1 where m1.name like "%net%")
	vary config.base_lr in [0.1, 0.01] and config.momentum in [0, 0.9]
	keep top(4, m["loss"], 6)`

// TestEvaluateParallelBitIdentical is the determinism contract of parallel
// model enumeration: at any worker count, evaluate must return candidates
// bit-identical to sequential execution — same losses, same accuracies, and
// the same keep-clause survivors in the same order.
func TestEvaluateParallelBitIdentical(t *testing.T) {
	_, eng := populated(t)
	eng.SetWorkers(1)
	seq, err := eng.Run(gridQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Candidates) != 4 {
		t.Fatalf("sequential candidates = %d", len(seq.Candidates))
	}
	for _, workers := range []int{2, 4, 8} {
		eng.SetWorkers(workers)
		par, err := eng.Run(gridQuery)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par.Candidates) != len(seq.Candidates) {
			t.Fatalf("workers=%d: %d candidates, sequential had %d",
				workers, len(par.Candidates), len(seq.Candidates))
		}
		for i, c := range par.Candidates {
			s := seq.Candidates[i]
			if math.Float64bits(c.Loss) != math.Float64bits(s.Loss) ||
				math.Float64bits(c.Acc) != math.Float64bits(s.Acc) {
				t.Fatalf("workers=%d candidate %d: (loss %v, acc %v) != sequential (loss %v, acc %v)",
					workers, i, c.Loss, c.Acc, s.Loss, s.Acc)
			}
			if c.Def.Name != s.Def.Name ||
				c.Config.BaseLR != s.Config.BaseLR ||
				c.Config.Momentum != s.Config.Momentum ||
				c.Config.Batch != s.Config.Batch ||
				c.Config.InputData != s.Config.InputData {
				t.Fatalf("workers=%d candidate %d: survivor (%s, %+v) != sequential (%s, %+v)",
					workers, i, c.Def.Name, c.Config, s.Def.Name, s.Config)
			}
		}
	}
}

// TestEvaluateParallelFirstErrorWins: a grid whose candidates all fail (the
// dataset is registered but a config names a missing one) must surface an
// error, not hang or panic, under parallel execution.
func TestEvaluateParallelFirstErrorWins(t *testing.T) {
	_, eng := populated(t)
	eng.SetWorkers(4)
	_, err := eng.Run(`evaluate m
		from (select m1 where m1.name = "lenet")
		vary config.base_lr in [0.1, 0.01, 0.001] and config.input_data in ["nope"]
		keep top(1, m["loss"], 4)`)
	if err == nil {
		t.Fatal("want error for unknown dataset")
	}
}

// TestEvaluateParallelWithConcurrentGemm runs parallel enumeration while
// other goroutines hammer the shared GEMM pool — the cross-subsystem race
// test (run under -race via make test-race).
func TestEvaluateParallelWithConcurrentGemm(t *testing.T) {
	_, eng := populated(t)
	eng.SetWorkers(4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(13))
	a := tensor.NewMatrix(48, 48)
	b := tensor.NewMatrix(48, 48)
	for i := range a.Data() {
		a.Data()[i] = float32(rng.NormFloat64())
		b.Data()[i] = float32(rng.NormFloat64())
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := tensor.NewMatrix(48, 48)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := tensor.Gemm(out, a, b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	res, err := eng.Run(`evaluate m
		from (select m1 where m1.name = "lenet")
		vary config.base_lr in [0.1, 0.01]
		keep top(2, m["loss"], 6)`)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 2 {
		t.Fatalf("candidates = %d", len(res.Candidates))
	}
}

// TestSetWorkersClamp pins the documented clamp rules: negatives restore the
// GOMAXPROCS default (stored as 0), values above 1024 clamp to 1024, and the
// previous setting is returned.
func TestSetWorkersClamp(t *testing.T) {
	eng := NewEngine(nil)
	if got := eng.SetWorkers(-7); got != 0 {
		t.Fatalf("initial setting = %d, want 0", got)
	}
	if got := eng.Workers(); got != 0 {
		t.Fatalf("negative clamps to %d, want 0 (GOMAXPROCS default)", got)
	}
	eng.SetWorkers(1 << 20)
	if got := eng.Workers(); got != 1024 {
		t.Fatalf("absurd setting clamps to %d, want 1024", got)
	}
	if got := eng.SetWorkers(2); got != 1024 {
		t.Fatalf("previous setting = %d, want 1024", got)
	}
	if got := eng.Workers(); got != 2 {
		t.Fatalf("Workers = %d, want 2", got)
	}
}

// TestSetWorkersConcurrent retunes the worker bound from several goroutines
// while an evaluate statement runs — under -race this asserts the knob is
// safe mid-flight, and the grid result must stay bit-identical to the
// sequential baseline regardless of what the tuners did.
func TestSetWorkersConcurrent(t *testing.T) {
	_, eng := populated(t)
	eng.SetWorkers(1)
	seq, err := eng.Run(gridQuery)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				eng.SetWorkers((g+i)%6 - 1) // sweeps -1..4 through the clamp
				if w := eng.Workers(); w < 0 || w > 1024 {
					t.Errorf("Workers out of range: %d", w)
					return
				}
			}
		}(g)
	}
	eng.SetWorkers(4)
	par, err := eng.Run(gridQuery)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Candidates) != len(seq.Candidates) {
		t.Fatalf("candidates = %d, want %d", len(par.Candidates), len(seq.Candidates))
	}
	for i, c := range par.Candidates {
		s := seq.Candidates[i]
		if math.Float64bits(c.Loss) != math.Float64bits(s.Loss) ||
			math.Float64bits(c.Acc) != math.Float64bits(s.Acc) {
			t.Fatalf("candidate %d diverged under concurrent retuning", i)
		}
	}
}
