package dql

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex(`select m1 where m1.name like "alex_%" and m1.accuracy >= 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokKind{}
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[0].text != "select" || toks[0].kind != tokKeyword {
		t.Fatalf("first token = %v", toks[0])
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Fatal("missing EOF token")
	}
	_ = kinds
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := lex(`"a\"b"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != `a"b` {
		t.Fatalf("string = %q", toks[0].text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{`"unterminated`, `$x`, `m ! x`, "sel@ect"} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q) should fail", bad)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lex("0.01 -3 1e-4")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "0.01" || toks[1].text != "-3" || toks[2].text != "1e-4" {
		t.Fatalf("numbers = %v %v %v", toks[0], toks[1], toks[2])
	}
}

// Query 1 from the paper (adapted: creation_time attribute and selector).
func TestParseSelectQuery1(t *testing.T) {
	stmt, err := Parse(`select m1
		where m1.name like "alexnet_%" and
		      m1.creation_time > "2015-11-22" and
		      m1["conv[1,3,5]"].next has POOL("MAX")`)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := stmt.(*SelectStmt)
	if !ok {
		t.Fatalf("stmt type %T", stmt)
	}
	if s.Var != "m1" || len(s.Where) != 3 {
		t.Fatalf("parsed = %+v", s)
	}
	if s.Where[0].Op != "like" || s.Where[0].Value.Str != "alexnet_%" {
		t.Fatalf("cond0 = %+v", s.Where[0])
	}
	if s.Where[2].Selector != "conv[1,3,5]" || s.Where[2].Direction != "next" ||
		s.Where[2].Template.Kind != "pool" || s.Where[2].Template.Arg != "MAX" {
		t.Fatalf("cond2 = %+v", s.Where[2])
	}
}

// Query 2 from the paper.
func TestParseSliceQuery2(t *testing.T) {
	stmt, err := Parse(`slice m2 from m1
		where m1.name like "alexnet-origin%"
		mutate m2.input = m1["conv1"] and m2.output = m1["fc7"]`)
	if err != nil {
		t.Fatal(err)
	}
	s := stmt.(*SliceStmt)
	if s.NewVar != "m2" || s.SrcVar != "m1" || s.Input != "conv1" || s.Output != "fc7" {
		t.Fatalf("parsed = %+v", s)
	}
}

// Query 3 from the paper.
func TestParseConstructQuery3(t *testing.T) {
	stmt, err := Parse(`construct m2 from m1
		where m1.name like "alexnet-avgv1%" and
		      m1["conv*($1)"].next has POOL("AVG")
		mutate m1["conv*($1)"].insert = RELU("relu$1")`)
	if err != nil {
		t.Fatal(err)
	}
	s := stmt.(*ConstructStmt)
	if len(s.Mutations) != 1 || s.Mutations[0].Action != "insert" ||
		s.Mutations[0].Template.Kind != "relu" || s.Mutations[0].Template.Arg != "relu$1" {
		t.Fatalf("mutations = %+v", s.Mutations)
	}
}

// Query 4 from the paper (adapted: keep syntax made explicit).
func TestParseEvaluateQuery4(t *testing.T) {
	stmt, err := Parse(`evaluate m
		from "query3"
		with config = "{\"input_data\":\"digits\"}"
		vary config.base_lr in [0.1, 0.01, 0.001] and
		     config.momentum auto and
		     config.input_data in ["digits", "digits-hard"]
		keep top(5, m["loss"], 100)`)
	if err != nil {
		t.Fatal(err)
	}
	s := stmt.(*EvaluateStmt)
	if s.FromName != "query3" || len(s.Vary) != 3 {
		t.Fatalf("parsed = %+v", s)
	}
	if !s.Vary[1].Auto || s.Vary[1].Key != "momentum" {
		t.Fatalf("vary[1] = %+v", s.Vary[1])
	}
	if len(s.Vary[0].Values) != 3 || s.Vary[0].Values[1].Num != 0.01 {
		t.Fatalf("vary[0] = %+v", s.Vary[0])
	}
	if s.Keep.Kind != "top" || s.Keep.K != 5 || s.Keep.Metric != "loss" || s.Keep.Iters != 100 {
		t.Fatalf("keep = %+v", s.Keep)
	}
}

func TestParseEvaluateNested(t *testing.T) {
	stmt, err := Parse(`evaluate m from (select m1 where m1.name like "x%") keep top(1, m["acc"], 10)`)
	if err != nil {
		t.Fatal(err)
	}
	s := stmt.(*EvaluateStmt)
	if s.FromQuery == nil {
		t.Fatal("nested query not parsed")
	}
	if _, ok := s.FromQuery.(*SelectStmt); !ok {
		t.Fatalf("nested type %T", s.FromQuery)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`frobnicate m`,
		`select`,
		`select m where`,
		`select m where x.name = "y"`,            // wrong variable
		`select m where m.name ~ "y"`,            // bad operator
		`slice s from m mutate s.input = m["a"]`, // missing output
		`construct c from m mutate m["a"].paint = RELU`,
		`evaluate m from "q"`,                          // missing keep
		`evaluate m from "q" keep top(1, m["wat"], 5)`, // bad metric
		`evaluate m from "q" keep top(1, m["loss"], 0)`,
		`select m where m["a"].sideways has POOL`,
		`select m where m["a"].next has WIDGET`,
		`select m trailing`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestSelectorCompile(t *testing.T) {
	sel, err := CompileSelector("conv[1,3,5]")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"conv1", "conv3", "conv5"} {
		if ok, _ := sel.Match(name); !ok {
			t.Errorf("%s should match", name)
		}
	}
	for _, name := range []string{"conv2", "conv10", "xconv1"} {
		if ok, _ := sel.Match(name); ok {
			t.Errorf("%s should not match", name)
		}
	}
}

func TestSelectorStarCapture(t *testing.T) {
	sel, err := CompileSelector("conv*($1)")
	if err != nil {
		t.Fatal(err)
	}
	ok, caps := sel.Match("conv2_1")
	if !ok || caps[1] != "2_1" {
		t.Fatalf("ok=%v caps=%v", ok, caps)
	}
	if got := SubstituteCaptures("relu$1", caps); got != "relu2_1" {
		t.Fatalf("substituted = %q", got)
	}
}

func TestSelectorPlainStar(t *testing.T) {
	sel, err := CompileSelector("ip*")
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := sel.Match("ip1"); !ok {
		t.Fatal("ip1 should match")
	}
	if ok, _ := sel.Match("zip1"); ok {
		t.Fatal("zip1 should not match")
	}
}

func TestSelectorErrors(t *testing.T) {
	for _, bad := range []string{"conv[13", "a(b)", "a$1"} {
		if _, err := CompileSelector(bad); err == nil {
			t.Errorf("CompileSelector(%q) should fail", bad)
		}
	}
}

func TestSelectorLiteralRegexChars(t *testing.T) {
	sel, err := CompileSelector("fc7.w")
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := sel.Match("fc7xw"); ok {
		t.Fatal("dot must be literal, not regexp wildcard")
	}
	if ok, _ := sel.Match("fc7.w"); !ok {
		t.Fatal("literal dot should match itself")
	}
}

func TestGlobLike(t *testing.T) {
	if !globLike("alexnet_%", "alexnet_v1") || globLike("alexnet_%", "vgg") {
		t.Fatal("globLike wrong")
	}
	if !globLike("%", "") || !globLike("a_c", "abc") || globLike("a_c", "ac") {
		t.Fatal("globLike wildcards wrong")
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("select m where m.name =")
	if err == nil || !strings.Contains(err.Error(), "syntax error") {
		t.Fatalf("err = %v", err)
	}
}

// Lexer and parser must never panic, whatever bytes arrive (fuzz-lite).
func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(input string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Parse(%q) panicked: %v", input, r)
			}
		}()
		_, _ = Parse(input)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// And a few adversarial shapes random strings rarely hit.
	for _, s := range []string{
		`select m where m["`, `select m where m[""].next has`, "evaluate m from (",
		`construct c from m mutate m["*($1)"].insert = RELU("$1")`,
		"select m where m.a = -", "slice s from m mutate", "$1", "((((",
		`evaluate m from (evaluate x from "q" keep top(1, x["loss"], 1)) keep top(1, m["acc"], 1)`,
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Parse(%q) panicked: %v", s, r)
				}
			}()
			_, _ = Parse(s)
		}()
	}
}

// Selector compilation must never panic either.
func TestSelectorNeverPanicsProperty(t *testing.T) {
	f := func(src, name string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("CompileSelector(%q) panicked: %v", src, r)
			}
		}()
		sel, err := CompileSelector(src)
		if err == nil {
			sel.Match(name)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// The paper's Query 4 parses verbatim (modulo the explicit keep syntax).
func TestParsePaperQuery4Verbatim(t *testing.T) {
	stmt, err := Parse(`evaluate m
		from "query3"
		with config = "path_to_config"
		vary config.base_lr in [0.1, 0.01, 0.001] and
		     config.net["conv*"].lr auto and
		     config.input_data in ["path1", "path2"]
		keep top(5, m["loss"], 100)`)
	if err != nil {
		t.Fatal(err)
	}
	s := stmt.(*EvaluateStmt)
	if len(s.Vary) != 3 {
		t.Fatalf("vary = %+v", s.Vary)
	}
	if s.Vary[1].Key != "net.lr" || s.Vary[1].Selector != "conv*" || !s.Vary[1].Auto {
		t.Fatalf("net.lr clause = %+v", s.Vary[1])
	}
}

func TestParsePerLayerVaryErrors(t *testing.T) {
	for _, q := range []string{
		`evaluate m from "q" vary config.net["a"].momentum auto keep top(1, m["loss"], 5)`,
		`evaluate m from "q" vary config.net.lr auto keep top(1, m["loss"], 5)`,
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}
