package dql

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"modelhub/internal/dlv"
	"modelhub/internal/dnn"
)

// ErrQuery reports semantic (non-syntax) query failures.
var ErrQuery = errors.New("dql: query error")

// maxWorkers is the SetWorkers clamp ceiling: beyond it candidate training
// is memory-bound, not core-bound, and the goroutine count stops helping.
const maxWorkers = 1024

// Engine executes DQL statements against a DLV repository (dlv query).
type Engine struct {
	repo     *dlv.Repo
	named    map[string]Stmt
	datasets map[string][]dnn.Example
	// Seed drives candidate training in evaluate statements.
	Seed int64
	// workers bounds evaluate-statement concurrency; read/written only via
	// Workers/SetWorkers so concurrent sessions can retune it mid-flight.
	workers atomic.Int32
}

// SetWorkers bounds how many evaluate-statement candidates train
// concurrently and returns the previous setting. 0 (and any negative value)
// means GOMAXPROCS, 1 forces sequential execution, and values above 1024
// clamp to 1024. Every candidate trains on its own Network clone with
// seeding independent of scheduling, so results are bit-identical at any
// worker count; the setter is safe under concurrent callers and running
// statements (each statement snapshots the value when it starts).
func (e *Engine) SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	if n > maxWorkers {
		n = maxWorkers
	}
	return int(e.workers.Swap(int32(n)))
}

// Workers reports the current evaluate concurrency bound (0 = GOMAXPROCS).
func (e *Engine) Workers() int { return int(e.workers.Load()) }

// NewEngine wraps a repository.
func NewEngine(repo *dlv.Repo) *Engine {
	return &Engine{
		repo:     repo,
		named:    map[string]Stmt{},
		datasets: map[string][]dnn.Example{},
	}
}

// RegisterQuery stores a named query, referencable as `from "<name>"` in
// evaluate statements (the paper's `from "query3"`).
func (e *Engine) RegisterQuery(name, text string) error {
	stmt, err := Parse(text)
	if err != nil {
		return err
	}
	e.named[name] = stmt
	return nil
}

// RegisterDataset makes labelled examples available to evaluate statements
// under the given input_data name.
func (e *Engine) RegisterDataset(name string, examples []dnn.Example) {
	e.datasets[name] = examples
}

// Result carries the output of a statement; exactly one field group is
// populated depending on the statement kind.
type Result struct {
	// Versions: select output.
	Versions []*dlv.Version
	// Defs: slice and construct output (derived network definitions).
	Defs []*dnn.NetDef
	// Candidates: evaluate output, best first.
	Candidates []Candidate
}

// Candidate is one evaluated (model, hyperparameter) combination.
type Candidate struct {
	Def    *dnn.NetDef
	Config EvalConfig
	Loss   float64
	Acc    float64
}

// Run parses and executes one statement.
func (e *Engine) Run(text string) (*Result, error) {
	stmt, err := Parse(text)
	if err != nil {
		return nil, err
	}
	return e.Exec(stmt)
}

// Exec executes a parsed statement.
func (e *Engine) Exec(stmt Stmt) (*Result, error) {
	switch s := stmt.(type) {
	case *SelectStmt:
		vs, err := e.execSelect(s.Where)
		if err != nil {
			return nil, err
		}
		return &Result{Versions: vs}, nil
	case *SliceStmt:
		defs, err := e.execSlice(s)
		if err != nil {
			return nil, err
		}
		return &Result{Defs: defs}, nil
	case *ConstructStmt:
		defs, err := e.execConstruct(s)
		if err != nil {
			return nil, err
		}
		return &Result{Defs: defs}, nil
	case *EvaluateStmt:
		cands, err := e.execEvaluate(s)
		if err != nil {
			return nil, err
		}
		return &Result{Candidates: cands}, nil
	default:
		return nil, fmt.Errorf("%w: unknown statement type %T", ErrQuery, stmt)
	}
}

// execSelect filters the repository's versions by the where conditions.
func (e *Engine) execSelect(where []Cond) ([]*dlv.Version, error) {
	all, err := e.repo.List()
	if err != nil {
		return nil, err
	}
	var out []*dlv.Version
	for _, v := range all {
		ok, err := matchVersion(v, where)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, v)
		}
	}
	return out, nil
}

func matchVersion(v *dlv.Version, where []Cond) (bool, error) {
	for _, c := range where {
		var ok bool
		var err error
		if c.Selector != "" {
			ok, err = matchGraphCond(v.NetDef, c)
		} else {
			ok, err = matchAttrCond(v, c)
		}
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func matchAttrCond(v *dlv.Version, c Cond) (bool, error) {
	var actual any
	switch c.Attr {
	case "name":
		actual = v.Name
	case "creation_time", "created":
		actual = v.Created
	case "accuracy":
		actual = v.Accuracy
	case "id":
		actual = float64(v.ID)
	case "msg", "message":
		actual = v.Msg
	default:
		// Unknown attributes fall back to hyperparameter metadata.
		hv, ok := v.Hyper[c.Attr]
		if !ok {
			return false, nil
		}
		actual = hv
	}
	switch av := actual.(type) {
	case string:
		if c.Op == "like" {
			return globLike(c.Value.Str, av), nil
		}
		if c.Value.IsNum {
			return false, fmt.Errorf("%w: comparing text attribute %q with a number", ErrQuery, c.Attr)
		}
		return cmpOrdered(strings.Compare(av, c.Value.Str), c.Op)
	case float64:
		if !c.Value.IsNum {
			return false, fmt.Errorf("%w: comparing numeric attribute %q with a string", ErrQuery, c.Attr)
		}
		switch {
		case av < c.Value.Num:
			return cmpOrdered(-1, c.Op)
		case av > c.Value.Num:
			return cmpOrdered(1, c.Op)
		default:
			return cmpOrdered(0, c.Op)
		}
	default:
		return false, fmt.Errorf("%w: unsupported attribute type", ErrQuery)
	}
}

func cmpOrdered(cmp int, op string) (bool, error) {
	switch op {
	case "=":
		return cmp == 0, nil
	case "!=":
		return cmp != 0, nil
	case "<":
		return cmp < 0, nil
	case "<=":
		return cmp <= 0, nil
	case ">":
		return cmp > 0, nil
	case ">=":
		return cmp >= 0, nil
	case "like":
		return false, fmt.Errorf("%w: LIKE on non-text attribute", ErrQuery)
	default:
		return false, fmt.Errorf("%w: unknown operator %q", ErrQuery, op)
	}
}

// globLike is SQL LIKE with % and _ wildcards (iterative single-star
// backtracking, O(len(p)·len(s)) worst case).
func globLike(p, s string) bool {
	i, j := 0, 0
	starP, starS := -1, 0
	for i < len(s) {
		switch {
		case j < len(p) && (p[j] == s[i] || p[j] == '_'):
			i++
			j++
		case j < len(p) && p[j] == '%':
			starP, starS = j, i
			j++
		case starP >= 0:
			starS++
			i = starS
			j = starP + 1
		default:
			return false
		}
	}
	for j < len(p) && p[j] == '%' {
		j++
	}
	return j == len(p)
}

// matchGraphCond evaluates m["sel"].next has TEMPLATE: the selector must
// match at least one node, and every matched node must have a next/prev
// neighbour matching the template (or none, when negated with `not has`).
func matchGraphCond(def *dnn.NetDef, c Cond) (bool, error) {
	sel, err := CompileSelector(c.Selector)
	if err != nil {
		return false, err
	}
	matched := 0
	for _, n := range def.Nodes {
		ok, _ := sel.Match(n.Name)
		if !ok {
			continue
		}
		matched++
		var neighbours []string
		if c.Direction == "next" {
			neighbours = def.Next(n.Name)
		} else {
			neighbours = def.Prev(n.Name)
		}
		has := false
		for _, nb := range neighbours {
			if nodeMatchesTemplate(def.Node(nb), c.Template) {
				has = true
				break
			}
		}
		if has == c.Negated {
			return false, nil
		}
	}
	return matched > 0, nil
}

// nodeMatchesTemplate tests a node against POOL("MAX")-style templates: the
// kind must match; for pool templates the argument is the mode; for other
// kinds a non-empty argument must equal the node name.
func nodeMatchesTemplate(n *dnn.LayerSpec, t NodeTemplate) bool {
	if n == nil || n.Kind != t.Kind {
		return false
	}
	if t.Arg == "" {
		return true
	}
	if t.Kind == dnn.KindPool {
		return strings.EqualFold(n.Mode, t.Arg)
	}
	return n.Name == t.Arg
}

// newestPerName keeps only the newest version of each model name; slices
// and constructs operate on current models, not their whole history.
func newestPerName(vs []*dlv.Version) []*dlv.Version {
	byName := map[string]*dlv.Version{}
	for _, v := range vs {
		if cur, ok := byName[v.Name]; !ok || v.ID > cur.ID {
			byName[v.Name] = v
		}
	}
	out := make([]*dlv.Version, 0, len(byName))
	for _, v := range byName {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
