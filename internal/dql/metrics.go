package dql

import (
	"time"

	"modelhub/internal/obs"
)

// Evaluate-statement metrics (see DESIGN.md §8): how many candidates the
// grid enumeration trained, how long the workers were busy, and how long
// jobs waited in the queue before a worker claimed them.
var (
	mCandidatesTrained = obs.GetCounter("dql.candidates.trained")
	mWorkerBusyNS      = obs.GetCounter("dql.worker.busy_ns")
	hQueueWaitSeconds  = obs.GetHistogram("dql.queue.wait_seconds")
)

// obsNow reads the clock only when obs is enabled; the zero Time marks a
// disabled observation so the matching observe helpers stay free.
func obsNow() time.Time {
	if !obs.Enabled() {
		return time.Time{}
	}
	return time.Now()
}

// observeQueueWait records how long a job sat enqueued (claim time minus
// pool start) before a worker picked it up.
func observeQueueWait(poolStart time.Time) {
	if poolStart.IsZero() {
		return
	}
	hQueueWaitSeconds.Observe(time.Since(poolStart).Seconds())
}

// countCandidate records one trained candidate and bills its training time
// to the worker-busy counter.
func countCandidate(start time.Time) {
	mCandidatesTrained.Inc()
	if !start.IsZero() {
		mWorkerBusyNS.Add(time.Since(start).Nanoseconds())
	}
}
