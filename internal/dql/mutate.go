package dql

import (
	"fmt"

	"modelhub/internal/dnn"
)

// execSlice implements Query 2: cut the sub-network between the input and
// output boundary nodes out of every matching model. In a DAG the slice is
// every node on a path from the input node to the output node; the new
// definition's input shape is the input node's activation input shape,
// computed by shape propagation over the source chain.
func (e *Engine) execSlice(s *SliceStmt) ([]*dnn.NetDef, error) {
	vs, err := e.execSelect(s.Where)
	if err != nil {
		return nil, err
	}
	var out []*dnn.NetDef
	for _, v := range newestPerName(vs) {
		def, err := sliceDef(v.NetDef, s.Input, s.Output, fmt.Sprintf("%s-%s", v.Name, s.NewVar))
		if err != nil {
			return nil, fmt.Errorf("%w: slicing %s: %v", ErrQuery, v.Name, err)
		}
		out = append(out, def)
	}
	return out, nil
}

// sliceDef extracts the sub-network of def between the (unique) nodes
// matching the start and end selectors.
func sliceDef(def *dnn.NetDef, startSel, endSel, newName string) (*dnn.NetDef, error) {
	start, err := uniqueMatch(def, startSel)
	if err != nil {
		return nil, err
	}
	end, err := uniqueMatch(def, endSel)
	if err != nil {
		return nil, err
	}
	// Nodes on any start->end path: reachable from start AND co-reachable
	// from end.
	fromStart := reach(def, start, false)
	toEnd := reach(def, end, true)
	keep := map[string]bool{}
	for n := range fromStart {
		if toEnd[n] {
			keep[n] = true
		}
	}
	if !keep[start] || !keep[end] {
		return nil, fmt.Errorf("no path from %q to %q", start, end)
	}
	inShape, err := inputShapeOf(def, start)
	if err != nil {
		return nil, err
	}
	sliced := &dnn.NetDef{
		Name: newName,
		InC:  inShape.C, InH: inShape.H, InW: inShape.W,
	}
	for _, n := range def.Nodes {
		if keep[n.Name] {
			sliced.Nodes = append(sliced.Nodes, n)
		}
	}
	for _, ed := range def.Edges {
		if keep[ed.From] && keep[ed.To] {
			sliced.Edges = append(sliced.Edges, ed)
		}
	}
	// The label domain of a slice is its final layer's output size when
	// determinable (full layer), otherwise left open.
	if endNode := sliced.Node(end); endNode != nil && endNode.Kind == dnn.KindFull {
		sliced.Labels = endNode.Out
	}
	if err := sliced.Validate(); err != nil {
		return nil, err
	}
	return sliced, nil
}

// uniqueMatch resolves a selector that must match exactly one node.
func uniqueMatch(def *dnn.NetDef, selSrc string) (string, error) {
	sel, err := CompileSelector(selSrc)
	if err != nil {
		return "", err
	}
	var found []string
	for _, n := range def.Nodes {
		if ok, _ := sel.Match(n.Name); ok {
			found = append(found, n.Name)
		}
	}
	if len(found) != 1 {
		return "", fmt.Errorf("selector %q matches %d nodes, want exactly 1", selSrc, len(found))
	}
	return found[0], nil
}

// reach returns the nodes reachable from start (following edges forward, or
// backward when reverse is set), including start itself.
func reach(def *dnn.NetDef, start string, reverse bool) map[string]bool {
	out := map[string]bool{start: true}
	stack := []string{start}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		var nbs []string
		if reverse {
			nbs = def.Prev(cur)
		} else {
			nbs = def.Next(cur)
		}
		for _, nb := range nbs {
			if !out[nb] {
				out[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	return out
}

// inputShapeOf computes the activation shape entering the named node by
// propagating shapes along the chain.
func inputShapeOf(def *dnn.NetDef, name string) (dnn.Shape, error) {
	chain, err := def.Chain()
	if err != nil {
		return dnn.Shape{}, err
	}
	shape := dnn.Shape{C: def.InC, H: def.InH, W: def.InW}
	for _, l := range chain {
		if l.Name == name {
			return shape, nil
		}
		shape, err = l.OutShape(shape)
		if err != nil {
			return dnn.Shape{}, err
		}
	}
	return dnn.Shape{}, fmt.Errorf("node %q not in chain", name)
}

// execConstruct implements Query 3: derive new models from matching ones by
// inserting nodes after selector matches (splitting the outgoing edge) or
// deleting template-matched successors (bypassing them).
func (e *Engine) execConstruct(s *ConstructStmt) ([]*dnn.NetDef, error) {
	vs, err := e.execSelect(s.Where)
	if err != nil {
		return nil, err
	}
	var out []*dnn.NetDef
	for _, v := range newestPerName(vs) {
		def := v.NetDef.Clone()
		def.Name = fmt.Sprintf("%s-%s", v.Name, s.NewVar)
		changed := false
		for _, mut := range s.Mutations {
			n, err := applyMutation(def, mut)
			if err != nil {
				return nil, fmt.Errorf("%w: constructing from %s: %v", ErrQuery, v.Name, err)
			}
			if n > 0 {
				changed = true
			}
		}
		if !changed {
			continue // the paper's construct only yields models it changed
		}
		if err := def.Validate(); err != nil {
			return nil, fmt.Errorf("%w: constructed model invalid: %v", ErrQuery, err)
		}
		out = append(out, def)
	}
	return out, nil
}

// applyMutation applies one insert/delete to def, returning how many sites
// changed.
func applyMutation(def *dnn.NetDef, mut Mutation) (int, error) {
	sel, err := CompileSelector(mut.Selector)
	if err != nil {
		return 0, err
	}
	type site struct {
		name string
		caps map[int]string
	}
	var sites []site
	for _, n := range def.Nodes {
		if ok, caps := sel.Match(n.Name); ok {
			sites = append(sites, site{name: n.Name, caps: caps})
		}
	}
	changed := 0
	for _, st := range sites {
		switch mut.Action {
		case "insert":
			if err := insertAfter(def, st.name, mut.Template, st.caps); err != nil {
				return changed, err
			}
			changed++
		case "delete":
			n, err := deleteSuccessors(def, st.name, mut.Template)
			if err != nil {
				return changed, err
			}
			changed += n
		default:
			return changed, fmt.Errorf("unknown mutation action %q", mut.Action)
		}
	}
	return changed, nil
}

// insertAfter splits the outgoing edge(s) of node `name` with a fresh node
// built from the template. Only non-parametric templates can be inserted
// (parametric layers need hyperparameters DQL templates do not carry).
func insertAfter(def *dnn.NetDef, name string, tmpl NodeTemplate, caps map[int]string) error {
	spec, err := templateToSpec(def, tmpl, caps)
	if err != nil {
		return err
	}
	if def.Node(spec.Name) != nil {
		return fmt.Errorf("inserted node %q already exists", spec.Name)
	}
	def.Nodes = append(def.Nodes, spec)
	next := def.Next(name)
	if len(next) == 0 {
		def.Edges = append(def.Edges, dnn.Edge{From: name, To: spec.Name})
		return nil
	}
	// Splice the new node into the node's output as a whole: on DAG models
	// a node can fan out (e.g. into a skip connection), so all outgoing
	// edges X->Yi become New->Yi behind a single X->New edge.
	var edges []dnn.Edge
	for _, e := range def.Edges {
		if e.From == name {
			edges = append(edges, dnn.Edge{From: spec.Name, To: e.To})
			continue
		}
		edges = append(edges, e)
	}
	edges = append(edges, dnn.Edge{From: name, To: spec.Name})
	def.Edges = edges
	return nil
}

// deleteSuccessors removes template-matching direct successors of `name`,
// reconnecting their own successors to `name` (bypass).
func deleteSuccessors(def *dnn.NetDef, name string, tmpl NodeTemplate) (int, error) {
	removed := 0
	for {
		var victim string
		for _, nb := range def.Next(name) {
			if nodeMatchesTemplate(def.Node(nb), tmpl) {
				victim = nb
				break
			}
		}
		if victim == "" {
			return removed, nil
		}
		after := def.Next(victim)
		var edges []dnn.Edge
		for _, e := range def.Edges {
			if e.To == victim || e.From == victim {
				continue
			}
			edges = append(edges, e)
		}
		for _, a := range after {
			edges = append(edges, dnn.Edge{From: name, To: a})
		}
		def.Edges = edges
		var nodes []dnn.LayerSpec
		for _, n := range def.Nodes {
			if n.Name != victim {
				nodes = append(nodes, n)
			}
		}
		def.Nodes = nodes
		removed++
	}
}

// templateToSpec builds an insertable layer spec. Pool templates use the
// argument as the mode with a generated name; other kinds use the argument
// (after capture substitution) as the node name.
func templateToSpec(def *dnn.NetDef, tmpl NodeTemplate, caps map[int]string) (dnn.LayerSpec, error) {
	switch tmpl.Kind {
	case dnn.KindReLU, dnn.KindSigmoid, dnn.KindTanh, dnn.KindSoftmax:
		name := SubstituteCaptures(tmpl.Arg, caps)
		if name == "" {
			name = freshName(def, tmpl.Kind)
		}
		return dnn.LayerSpec{Name: name, Kind: tmpl.Kind}, nil
	case dnn.KindPool:
		mode := tmpl.Arg
		if mode == "" {
			mode = dnn.PoolMax
		}
		return dnn.LayerSpec{Name: freshName(def, "pool"), Kind: dnn.KindPool, K: 2, Mode: mode}, nil
	default:
		return dnn.LayerSpec{}, fmt.Errorf("cannot insert parametric layer kind %q via a template", tmpl.Kind)
	}
}

func freshName(def *dnn.NetDef, base string) string {
	for i := 1; ; i++ {
		name := fmt.Sprintf("%s_dql%d", base, i)
		if def.Node(name) == nil {
			return name
		}
	}
}
