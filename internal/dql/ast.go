package dql

import "fmt"

// Stmt is a parsed DQL statement.
type Stmt interface{ stmt() }

// SelectStmt is Query 1: pick model versions from the repository.
type SelectStmt struct {
	Var   string
	Where []Cond
}

// SliceStmt is Query 2: cut a reusable sub-network out of matching models.
type SliceStmt struct {
	NewVar string
	SrcVar string
	Where  []Cond
	// Input/Output are selector expressions naming the slice boundary.
	Input, Output string
}

// ConstructStmt is Query 3: derive new models by mutating matching models.
type ConstructStmt struct {
	NewVar    string
	SrcVar    string
	Where     []Cond
	Mutations []Mutation
}

// Mutation is one insert/delete action on selector-matched nodes.
type Mutation struct {
	Selector string
	// Action is "insert" or "delete".
	Action string
	// Template is the node template to insert (or to match for delete).
	Template NodeTemplate
}

// EvaluateStmt is Query 4: try models under hyperparameter combinations and
// keep the good ones.
type EvaluateStmt struct {
	Var string
	// FromQuery is a nested statement producing candidate models, or nil
	// when FromName references a registered named query.
	FromQuery Stmt
	FromName  string
	// ConfigJSON is the body (or registered name) of the tuning config
	// template given by `with config = ...`.
	ConfigJSON string
	Vary       []VaryClause
	Keep       KeepClause
}

// VaryClause is one dimension of the hyperparameter grid.
type VaryClause struct {
	// Key is the config field, e.g. "base_lr" or "input_data"; the
	// per-layer form `config.net["sel"].lr` uses Key "net.lr" with
	// Selector set (paper Query 4).
	Key string
	// Selector targets layers for per-layer dimensions.
	Selector string
	// Values holds the explicit grid (`in [...]`); empty with Auto set
	// means use the engine's default grid for the key.
	Values []Value
	Auto   bool
}

// KeepClause bounds the exploration (early stopping of bad models).
type KeepClause struct {
	// Kind is "top" (keep k best) or "above" (keep those above threshold).
	Kind string
	// K is top-k count; Threshold for "above".
	K         int
	Threshold float64
	// Metric is "loss" or "acc".
	Metric string
	// Iters is the training iteration budget per candidate.
	Iters int
}

// Value is a string or number literal.
type Value struct {
	Str   string
	Num   float64
	IsNum bool
}

func (v Value) String() string {
	if v.IsNum {
		return fmt.Sprintf("%g", v.Num)
	}
	return v.Str
}

// Cond is one conjunct of a where clause: either an attribute comparison or
// a graph-traversal predicate.
type Cond struct {
	// Attr form: <var>.<attr> <op> <value>; Op one of = != < <= > >= like.
	Attr  string
	Op    string
	Value Value
	// Graph form: <var>["sel"].next|prev has TEMPLATE, set when Selector
	// is non-empty.
	Selector string
	// Direction is "next" or "prev".
	Direction string
	Negated   bool
	Template  NodeTemplate
}

// NodeTemplate is a layer pattern like POOL("MAX") or RELU("relu$1"): a
// layer kind plus one optional argument (pool mode, or the name for
// inserted nodes, possibly with $N capture substitutions).
type NodeTemplate struct {
	Kind string // conv, pool, full, relu, sigmoid, tanh, softmax
	Arg  string
}

func (SelectStmt) stmt()    {}
func (SliceStmt) stmt()     {}
func (ConstructStmt) stmt() {}
func (EvaluateStmt) stmt()  {}
