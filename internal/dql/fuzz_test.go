package dql

import "testing"

// FuzzDQLParse throws arbitrary input at the DQL front end. The parser's
// contract is: never panic, and on success return a non-nil statement. The
// seed corpus covers every statement kind plus known-tricky fragments from
// the parser tests.
func FuzzDQLParse(f *testing.F) {
	seeds := []string{
		`select m1 where m1.name like "alex_%" and m1.accuracy >= 0.5`,
		`select m where m["conv1"].next has POOL order by m.accuracy desc limit 3`,
		`slice m2 from m1 where input = m1["conv1"] and output = m1["fc7"]`,
		`construct m3 from m1 where m1["fc6"].units in {2048, 4096}`,
		`evaluate m from "lenet" with config = "base" vary m["fc1"].units in {64, 128} keep top 2 on accuracy`,
		`select`,
		`select m where`,
		`select m where x.name = "y"`,
		`select m where m.name ~ "y"`,
		`select m where m["a"].sideways has POOL`,
		"select m where m.accuracy >= 0.5 \x00",
		`evaluate m from "x" with config = "c" vary m["l"].units in {}`,
		"\"unterminated",
		`{{{{`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err == nil && stmt == nil {
			t.Fatalf("Parse(%q) returned nil statement without an error", input)
		}
		if err != nil && stmt != nil {
			t.Fatalf("Parse(%q) returned both a statement and error %v", input, err)
		}
	})
}
