package dql

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Selector implements the paper's regexp-style node selector, e.g.
// m["conv[1,3,5]"] or m["conv*($1)"]. The syntax is glob-like:
//
//   - literal characters match themselves
//   - `*` matches any run of characters
//   - `[abc]` / `[1,3,5]` matches one character from the set (commas are
//     separators, as in the paper's example)
//   - `($N)` immediately after a `*` captures that run as variable $N,
//     usable in node templates of the same statement (e.g. RELU("relu$1"))
type Selector struct {
	src string
	re  *regexp.Regexp
	// capVar[i] is the $-variable number bound to regexp group i+1, or 0.
	capVar []int
}

// CompileSelector translates the selector syntax into an anchored regexp.
func CompileSelector(src string) (*Selector, error) {
	var re strings.Builder
	re.WriteString("^")
	var capVar []int
	i := 0
	for i < len(src) {
		c := src[i]
		switch c {
		case '*':
			// Peek for a ($N) capture binding.
			varNum := 0
			j := i + 1
			if j+3 <= len(src) && src[j] == '(' && src[j+1] == '$' {
				k := j + 2
				for k < len(src) && src[k] >= '0' && src[k] <= '9' {
					k++
				}
				if k < len(src) && src[k] == ')' && k > j+2 {
					n, err := strconv.Atoi(src[j+2 : k])
					if err == nil {
						varNum = n
						j = k + 1
					}
				}
			}
			re.WriteString("(.*)")
			capVar = append(capVar, varNum)
			i = j
		case '[':
			end := strings.IndexByte(src[i:], ']')
			if end < 0 {
				return nil, fmt.Errorf("dql: unterminated character class in selector %q", src)
			}
			class := src[i+1 : i+end]
			class = strings.ReplaceAll(class, ",", "")
			re.WriteString("[" + class + "]")
			i += end + 1
		case '(', ')', '$':
			return nil, fmt.Errorf("dql: stray %q in selector %q (captures only follow '*')", c, src)
		default:
			re.WriteString(regexp.QuoteMeta(string(c)))
			i++
		}
	}
	re.WriteString("$")
	compiled, err := regexp.Compile(re.String())
	if err != nil {
		return nil, fmt.Errorf("dql: selector %q: %w", src, err)
	}
	return &Selector{src: src, re: compiled, capVar: capVar}, nil
}

// Match reports whether name matches, and if so the captured $-variables.
func (s *Selector) Match(name string) (bool, map[int]string) {
	groups := s.re.FindStringSubmatch(name)
	if groups == nil {
		return false, nil
	}
	caps := map[int]string{}
	for gi, varNum := range s.capVar {
		if varNum > 0 && gi+1 < len(groups) {
			caps[varNum] = groups[gi+1]
		}
	}
	return true, caps
}

// SubstituteCaptures replaces $N references in a template argument with the
// captured strings.
func SubstituteCaptures(arg string, caps map[int]string) string {
	out := arg
	for n, v := range caps {
		out = strings.ReplaceAll(out, fmt.Sprintf("$%d", n), v)
	}
	return out
}
