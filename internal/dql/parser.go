package dql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one DQL statement.
func Parse(input string) (Stmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input %s", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(kind tokKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, got %s", text, p.peek())
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.accept(tokKeyword, "select"):
		return p.parseSelect()
	case p.accept(tokKeyword, "slice"):
		return p.parseSlice()
	case p.accept(tokKeyword, "construct"):
		return p.parseConstruct()
	case p.accept(tokKeyword, "evaluate"):
		return p.parseEvaluate()
	default:
		return nil, p.errf("expected select/slice/construct/evaluate, got %s", p.peek())
	}
}

func (p *parser) parseSelect() (Stmt, error) {
	v, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	s := &SelectStmt{Var: v.text}
	if p.accept(tokKeyword, "where") {
		s.Where, err = p.parseConds(v.text)
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *parser) parseSlice() (Stmt, error) {
	nv, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "from"); err != nil {
		return nil, err
	}
	sv, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	s := &SliceStmt{NewVar: nv.text, SrcVar: sv.text}
	if p.accept(tokKeyword, "where") {
		s.Where, err = p.parseConds(sv.text)
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "mutate"); err != nil {
		return nil, err
	}
	// m2.input = m1["sel"] and m2.output = m1["sel"]
	for {
		if _, err := p.expect(tokIdent, nv.text); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "."); err != nil {
			return nil, err
		}
		var field string
		switch {
		case p.accept(tokKeyword, "input"):
			field = "input"
		case p.accept(tokKeyword, "output"):
			field = "output"
		default:
			return nil, p.errf("expected input or output, got %s", p.peek())
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		sel, err := p.parseSelector(sv.text)
		if err != nil {
			return nil, err
		}
		if field == "input" {
			s.Input = sel
		} else {
			s.Output = sel
		}
		if !p.accept(tokKeyword, "and") {
			break
		}
	}
	if s.Input == "" || s.Output == "" {
		return nil, p.errf("slice needs both input and output boundaries")
	}
	return s, nil
}

func (p *parser) parseConstruct() (Stmt, error) {
	nv, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "from"); err != nil {
		return nil, err
	}
	sv, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	s := &ConstructStmt{NewVar: nv.text, SrcVar: sv.text}
	if p.accept(tokKeyword, "where") {
		s.Where, err = p.parseConds(sv.text)
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "mutate"); err != nil {
		return nil, err
	}
	for {
		// <srcvar>["sel"].insert|delete = TEMPLATE
		sel, err := p.parseSelector(sv.text)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "."); err != nil {
			return nil, err
		}
		var action string
		switch {
		case p.accept(tokKeyword, "insert"):
			action = "insert"
		case p.accept(tokKeyword, "delete"):
			action = "delete"
		default:
			return nil, p.errf("expected insert or delete, got %s", p.peek())
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		tmpl, err := p.parseTemplate()
		if err != nil {
			return nil, err
		}
		s.Mutations = append(s.Mutations, Mutation{Selector: sel, Action: action, Template: tmpl})
		if !p.accept(tokKeyword, "and") {
			break
		}
	}
	return s, nil
}

func (p *parser) parseEvaluate() (Stmt, error) {
	v, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	s := &EvaluateStmt{Var: v.text}
	if _, err := p.expect(tokKeyword, "from"); err != nil {
		return nil, err
	}
	switch {
	case p.at(tokString, ""):
		s.FromName = p.next().text
	case p.accept(tokPunct, "("):
		nested, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		s.FromQuery = nested
	default:
		return nil, p.errf("evaluate from expects a query name or (query)")
	}
	if p.accept(tokKeyword, "with") {
		if _, err := p.expect(tokKeyword, "config"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		cfg, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		s.ConfigJSON = cfg.text
	}
	if p.accept(tokKeyword, "vary") {
		for {
			vc, err := p.parseVary()
			if err != nil {
				return nil, err
			}
			s.Vary = append(s.Vary, vc)
			if !p.accept(tokKeyword, "and") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "keep") {
		keep, err := p.parseKeep(v.text)
		if err != nil {
			return nil, err
		}
		s.Keep = keep
	} else {
		return nil, p.errf("evaluate requires a keep clause")
	}
	return s, nil
}

// parseVary parses `config.<key> in [v, ...]` or `config.<key> auto`.
func (p *parser) parseVary() (VaryClause, error) {
	var vc VaryClause
	if _, err := p.expect(tokKeyword, "config"); err != nil {
		return vc, err
	}
	if _, err := p.expect(tokPunct, "."); err != nil {
		return vc, err
	}
	key, err := p.expect(tokIdent, "")
	if err != nil {
		return vc, err
	}
	vc.Key = key.text
	if key.text == "net" {
		// Per-layer dimension: config.net["sel"].lr (paper Query 4).
		sel, err := p.parseSelectorBody()
		if err != nil {
			return vc, err
		}
		if _, err := p.expect(tokPunct, "."); err != nil {
			return vc, err
		}
		field, err := p.expect(tokIdent, "")
		if err != nil {
			return vc, err
		}
		if field.text != "lr" {
			return vc, p.errf("per-layer vary supports only .lr, got %q", field.text)
		}
		vc.Key = "net.lr"
		vc.Selector = sel
	}
	switch {
	case p.accept(tokKeyword, "auto"):
		vc.Auto = true
		return vc, nil
	case p.accept(tokKeyword, "in"):
		if _, err := p.expect(tokPunct, "["); err != nil {
			return vc, err
		}
		for {
			val, err := p.parseValue()
			if err != nil {
				return vc, err
			}
			vc.Values = append(vc.Values, val)
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return vc, err
		}
		return vc, nil
	default:
		return vc, p.errf("vary expects `in [...]` or `auto`")
	}
}

// parseKeep parses `top(k, m["metric"], iters)` or
// `above(threshold, m["metric"], iters)`.
func (p *parser) parseKeep(varName string) (KeepClause, error) {
	var k KeepClause
	switch {
	case p.accept(tokKeyword, "top"):
		k.Kind = "top"
	case p.accept(tokKeyword, "above"):
		k.Kind = "above"
	default:
		return k, p.errf("keep expects top(...) or above(...)")
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return k, err
	}
	num, err := p.expect(tokNumber, "")
	if err != nil {
		return k, err
	}
	f, err := strconv.ParseFloat(num.text, 64)
	if err != nil {
		return k, p.errf("bad number %q", num.text)
	}
	if k.Kind == "top" {
		k.K = int(f)
	} else {
		k.Threshold = f
	}
	if _, err := p.expect(tokPunct, ","); err != nil {
		return k, err
	}
	if _, err := p.expect(tokIdent, varName); err != nil {
		return k, err
	}
	if _, err := p.expect(tokPunct, "["); err != nil {
		return k, err
	}
	metric, err := p.expect(tokString, "")
	if err != nil {
		return k, err
	}
	if metric.text != "loss" && metric.text != "acc" {
		return k, p.errf("keep metric must be \"loss\" or \"acc\"")
	}
	k.Metric = metric.text
	if _, err := p.expect(tokPunct, "]"); err != nil {
		return k, err
	}
	if _, err := p.expect(tokPunct, ","); err != nil {
		return k, err
	}
	iters, err := p.expect(tokNumber, "")
	if err != nil {
		return k, err
	}
	it, err := strconv.Atoi(iters.text)
	if err != nil || it <= 0 {
		return k, p.errf("bad iteration budget %q", iters.text)
	}
	k.Iters = it
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return k, err
	}
	return k, nil
}

// parseConds parses a conjunction of where-clause conditions for varName.
func (p *parser) parseConds(varName string) ([]Cond, error) {
	var out []Cond
	for {
		c, err := p.parseCond(varName)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
		if !p.accept(tokKeyword, "and") {
			return out, nil
		}
	}
}

func (p *parser) parseCond(varName string) (Cond, error) {
	var c Cond
	if _, err := p.expect(tokIdent, varName); err != nil {
		return c, err
	}
	switch {
	case p.accept(tokPunct, "."):
		attr, err := p.expect(tokIdent, "")
		if err != nil {
			return c, err
		}
		c.Attr = attr.text
		switch {
		case p.accept(tokKeyword, "like"):
			c.Op = "like"
		case p.at(tokOp, ""):
			c.Op = p.next().text
		default:
			return c, p.errf("expected comparison operator, got %s", p.peek())
		}
		val, err := p.parseValue()
		if err != nil {
			return c, err
		}
		c.Value = val
		return c, nil
	case p.at(tokPunct, "["):
		sel, err := p.parseSelectorBody()
		if err != nil {
			return c, err
		}
		c.Selector = sel
		if _, err := p.expect(tokPunct, "."); err != nil {
			return c, err
		}
		dir, err := p.expect(tokIdent, "")
		if err != nil {
			return c, err
		}
		if dir.text != "next" && dir.text != "prev" {
			return c, p.errf("expected next or prev, got %q", dir.text)
		}
		c.Direction = dir.text
		if p.accept(tokKeyword, "not") {
			c.Negated = true
		}
		if _, err := p.expect(tokKeyword, "has"); err != nil {
			return c, err
		}
		tmpl, err := p.parseTemplate()
		if err != nil {
			return c, err
		}
		c.Template = tmpl
		return c, nil
	default:
		return c, p.errf("expected attribute or selector after %q", varName)
	}
}

// parseSelector parses `<var>["sel"]`.
func (p *parser) parseSelector(varName string) (string, error) {
	if _, err := p.expect(tokIdent, varName); err != nil {
		return "", err
	}
	return p.parseSelectorBody()
}

func (p *parser) parseSelectorBody() (string, error) {
	if _, err := p.expect(tokPunct, "["); err != nil {
		return "", err
	}
	s, err := p.expect(tokString, "")
	if err != nil {
		return "", err
	}
	if _, err := p.expect(tokPunct, "]"); err != nil {
		return "", err
	}
	return s.text, nil
}

// parseTemplate parses KIND or KIND("arg").
func (p *parser) parseTemplate() (NodeTemplate, error) {
	var t NodeTemplate
	id, err := p.expect(tokIdent, "")
	if err != nil {
		return t, err
	}
	kind, err := templateKind(id.text)
	if err != nil {
		return t, p.errf("%v", err)
	}
	t.Kind = kind
	if p.accept(tokPunct, "(") {
		arg, err := p.expect(tokString, "")
		if err != nil {
			return t, err
		}
		t.Arg = arg.text
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return t, err
		}
	}
	return t, nil
}

// templateKind maps the DQL template spelling (POOL, CONV, RELU, ...) to the
// dnn layer kind.
func templateKind(word string) (string, error) {
	switch strings.ToUpper(word) {
	case "CONV":
		return "conv", nil
	case "POOL":
		return "pool", nil
	case "FULL", "IP":
		return "full", nil
	case "RELU":
		return "relu", nil
	case "SIGMOID":
		return "sigmoid", nil
	case "TANH":
		return "tanh", nil
	case "SOFTMAX":
		return "softmax", nil
	default:
		return "", fmt.Errorf("unknown node template %q", word)
	}
}

func (p *parser) parseValue() (Value, error) {
	switch {
	case p.at(tokString, ""):
		return Value{Str: p.next().text}, nil
	case p.at(tokNumber, ""):
		t := p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Value{}, p.errf("bad number %q", t.text)
		}
		return Value{Num: f, IsNum: true}, nil
	default:
		return Value{}, p.errf("expected literal, got %s", p.peek())
	}
}
