package dql

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"modelhub/internal/data"
	"modelhub/internal/dnn"
	"modelhub/internal/obs"
)

// EvalConfig is the tuning config template of an evaluate statement (`with
// config = ...`). It is JSON so configs can live in files committed to DLV.
type EvalConfig struct {
	BaseLR    float64 `json:"base_lr"`
	Momentum  float64 `json:"momentum"`
	Batch     int     `json:"batch"`
	InputData string  `json:"input_data"`
	// NetLR maps layer selectors to per-layer learning-rate overrides (the
	// `config.net["conv*"].lr` dimension); selectors resolve against each
	// candidate's layers at training time.
	NetLR map[string]float64 `json:"net_lr,omitempty"`
}

// cloneNetLR deep-copies the per-layer map so grid expansion does not alias.
func (c EvalConfig) cloneNetLR() EvalConfig {
	if c.NetLR == nil {
		return c
	}
	out := make(map[string]float64, len(c.NetLR))
	for k, v := range c.NetLR {
		out[k] = v
	}
	c.NetLR = out
	return c
}

func (c EvalConfig) withDefaults() EvalConfig {
	if c.BaseLR == 0 {
		c.BaseLR = 0.05
	}
	if c.Batch == 0 {
		c.Batch = 8
	}
	if c.InputData == "" {
		c.InputData = "digits"
	}
	return c
}

// autoGrids are the engine's default search grids for `vary config.<key>
// auto` (the paper's grid-search default).
var autoGrids = map[string][]Value{
	"base_lr":  {{Num: 0.1, IsNum: true}, {Num: 0.01, IsNum: true}, {Num: 0.001, IsNum: true}},
	"momentum": {{Num: 0, IsNum: true}, {Num: 0.9, IsNum: true}},
	"batch":    {{Num: 8, IsNum: true}, {Num: 16, IsNum: true}},
	// Per-layer learning rates: full, reduced, frozen.
	"net.lr": {{Num: 0.1, IsNum: true}, {Num: 0.01, IsNum: true}, {Num: 0, IsNum: true}},
}

// execEvaluate implements Query 4: enumerate (model, hyperparameter)
// combinations, train each for the keep clause's iteration budget, and keep
// the survivors.
func (e *Engine) execEvaluate(s *EvaluateStmt) (kept []Candidate, err error) {
	ctx, span := obs.Start(context.Background(), "dql.evaluate")
	defer func() {
		if err != nil {
			span.SetError()
		}
		span.SetAttrInt("dql.kept", int64(len(kept)))
		span.End()
	}()
	defs, err := e.candidateDefs(s)
	if err != nil {
		return nil, err
	}
	if len(defs) == 0 {
		return nil, fmt.Errorf("%w: evaluate has no candidate models", ErrQuery)
	}
	var base EvalConfig
	if s.ConfigJSON != "" {
		if err := json.Unmarshal([]byte(s.ConfigJSON), &base); err != nil {
			return nil, fmt.Errorf("%w: parsing config: %v", ErrQuery, err)
		}
	}
	base = base.withDefaults()
	configs, err := expandGrid(base, s.Vary)
	if err != nil {
		return nil, err
	}
	// Enumerate the full (model, config) grid up front, then train the
	// candidates on a bounded worker pool. Each candidate builds and trains
	// its own Network with RNG seeding derived only from the engine seed
	// (never from scheduling), and results land at their grid index, so the
	// output is bit-identical to sequential execution — same losses, same
	// accuracies, same keep-clause survivors — at any worker count.
	type job struct {
		def *dnn.NetDef
		cfg EvalConfig
	}
	var jobs []job
	for _, def := range defs {
		for _, cfg := range configs {
			jobs = append(jobs, job{def: def, cfg: cfg})
		}
	}
	results := make([]Candidate, len(jobs))
	workers := e.Workers()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	span.SetAttrInt("dql.grid_size", int64(len(jobs)))
	if workers <= 1 {
		for i, j := range jobs {
			jobStart := obsNow()
			cand, err := e.traceCandidate(ctx, i, j.def, j.cfg, s.Keep.Iters, 0)
			if err != nil {
				return nil, err
			}
			countCandidate(jobStart)
			results[i] = cand
		}
		return applyKeep(results, s.Keep)
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		errOnce   sync.Once
		firstErr  error
		canceled  = make(chan struct{})
		poolStart = obsNow()
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				select {
				case <-canceled: // first error wins; drop remaining work
					return
				default:
				}
				observeQueueWait(poolStart)
				var queueWait time.Duration
				if !poolStart.IsZero() {
					queueWait = time.Since(poolStart)
				}
				jobStart := obsNow()
				cand, err := e.traceCandidate(ctx, i, jobs[i].def, jobs[i].cfg, s.Keep.Iters, queueWait)
				if err != nil {
					errOnce.Do(func() {
						firstErr = err
						close(canceled)
					})
					return
				}
				countCandidate(jobStart)
				results[i] = cand
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return applyKeep(results, s.Keep)
}

func (e *Engine) candidateDefs(s *EvaluateStmt) ([]*dnn.NetDef, error) {
	var nested Stmt
	if s.FromName != "" {
		var ok bool
		nested, ok = e.named[s.FromName]
		if !ok {
			return nil, fmt.Errorf("%w: no registered query %q", ErrQuery, s.FromName)
		}
	} else {
		nested = s.FromQuery
	}
	res, err := e.Exec(nested)
	if err != nil {
		return nil, err
	}
	if res.Defs != nil {
		return res.Defs, nil
	}
	var defs []*dnn.NetDef
	for _, v := range newestPerName(res.Versions) {
		defs = append(defs, v.NetDef)
	}
	return defs, nil
}

// expandGrid builds the cartesian product of the vary dimensions over the
// base config.
func expandGrid(base EvalConfig, vary []VaryClause) ([]EvalConfig, error) {
	configs := []EvalConfig{base}
	for _, vc := range vary {
		values := vc.Values
		if vc.Auto {
			grid, ok := autoGrids[vc.Key]
			if !ok {
				return nil, fmt.Errorf("%w: no auto grid for config.%s", ErrQuery, vc.Key)
			}
			values = grid
		}
		if len(values) == 0 {
			return nil, fmt.Errorf("%w: vary config.%s has no values", ErrQuery, vc.Key)
		}
		var next []EvalConfig
		for _, cfg := range configs {
			for _, val := range values {
				nc := cfg.cloneNetLR()
				if err := assignConfig(&nc, vc, val); err != nil {
					return nil, err
				}
				next = append(next, nc)
			}
		}
		configs = next
	}
	return configs, nil
}

func assignConfig(cfg *EvalConfig, vc VaryClause, val Value) error {
	key := vc.Key
	switch key {
	case "net.lr":
		if !val.IsNum {
			return fmt.Errorf("%w: net lr needs numbers", ErrQuery)
		}
		if cfg.NetLR == nil {
			cfg.NetLR = map[string]float64{}
		}
		cfg.NetLR[vc.Selector] = val.Num
		return nil
	}
	switch key {
	case "base_lr":
		if !val.IsNum {
			return fmt.Errorf("%w: base_lr needs numbers", ErrQuery)
		}
		cfg.BaseLR = val.Num
	case "momentum":
		if !val.IsNum {
			return fmt.Errorf("%w: momentum needs numbers", ErrQuery)
		}
		cfg.Momentum = val.Num
	case "batch":
		if !val.IsNum {
			return fmt.Errorf("%w: batch needs numbers", ErrQuery)
		}
		cfg.Batch = int(val.Num)
	case "input_data":
		if val.IsNum {
			return fmt.Errorf("%w: input_data needs dataset names", ErrQuery)
		}
		cfg.InputData = val.Str
	default:
		return fmt.Errorf("%w: unknown config key %q", ErrQuery, key)
	}
	return nil
}

// traceCandidate runs trainCandidate under a per-candidate child span of
// the evaluate trace, carrying the grid index, model name, queue wait, and
// resulting loss/accuracy. The span ends on every path, including errors.
func (e *Engine) traceCandidate(ctx context.Context, idx int, def *dnn.NetDef, cfg EvalConfig,
	iters int, queueWait time.Duration) (Candidate, error) {
	ctx, cspan := obs.Start(ctx, "dql.candidate")
	cspan.SetAttrInt("dql.candidate", int64(idx))
	cspan.SetAttr("dql.model", def.Name)
	if queueWait > 0 {
		cspan.SetAttrInt("dql.queue_wait_ns", queueWait.Nanoseconds())
	}
	cand, err := e.trainCandidate(ctx, def, cfg, iters)
	if err != nil {
		cspan.SetError()
	} else {
		cspan.SetAttr("dql.loss", strconv.FormatFloat(cand.Loss, 'g', 6, 64))
		cspan.SetAttr("dql.acc", strconv.FormatFloat(cand.Acc, 'g', 6, 64))
	}
	cspan.End()
	return cand, err
}

// trainCandidate trains one (model, config) pair for the iteration budget
// and measures its loss and held-out accuracy.
func (e *Engine) trainCandidate(ctx context.Context, def *dnn.NetDef, cfg EvalConfig, iters int) (Candidate, error) {
	examples, ok := e.datasets[cfg.InputData]
	if !ok {
		return Candidate{}, fmt.Errorf("%w: unknown dataset %q (register it on the engine)", ErrQuery, cfg.InputData)
	}
	train, test := data.Split(examples, 0.8)
	net, err := dnn.Build(def, rand.New(rand.NewSource(e.Seed+1)))
	if err != nil {
		return Candidate{}, fmt.Errorf("%w: building %s: %v", ErrQuery, def.Name, err)
	}
	// The candidate network dies with this grid cell; hand its scratch
	// (im2col unrolls, activation volumes) back to the shared arena so
	// concurrent sessions recycle rather than reallocate.
	defer net.ReleaseScratch()
	layerLR, err := resolveNetLR(def, cfg.NetLR)
	if err != nil {
		return Candidate{}, err
	}
	res, err := dnn.Train(net, train, dnn.TrainConfig{
		Ctx:       ctx,
		Epochs:    1,
		BatchSize: cfg.Batch,
		LR:        cfg.BaseLR,
		Momentum:  cfg.Momentum,
		MaxIters:  iters,
		LogEvery:  max(1, iters/4),
		LayerLR:   layerLR,
		Seed:      e.Seed + 2,
		EpochHook: dnn.ObsEpochHook(),
	})
	if err != nil {
		return Candidate{}, err
	}
	loss := math.Inf(1)
	if n := len(res.Log); n > 0 {
		loss = res.Log[n-1].Loss
	}
	// Held-out accuracy over sharded network clones; EvaluateParallel
	// matches Evaluate exactly (prediction is deterministic per example).
	acc, err := dnn.EvaluateParallel(net, test, runtime.GOMAXPROCS(0))
	if err != nil {
		return Candidate{}, err
	}
	return Candidate{Def: def, Config: cfg, Loss: loss, Acc: acc}, nil
}

// applyKeep sorts candidates by the keep metric and applies the top-k or
// threshold rule.
func applyKeep(cands []Candidate, keep KeepClause) ([]Candidate, error) {
	better := func(a, b Candidate) bool {
		if keep.Metric == "loss" {
			return a.Loss < b.Loss
		}
		return a.Acc > b.Acc
	}
	sort.SliceStable(cands, func(i, j int) bool { return better(cands[i], cands[j]) })
	switch keep.Kind {
	case "top":
		if keep.K < len(cands) {
			cands = cands[:keep.K]
		}
		return cands, nil
	case "above":
		var out []Candidate
		for _, c := range cands {
			if keep.Metric == "acc" && c.Acc >= keep.Threshold {
				out = append(out, c)
			}
			if keep.Metric == "loss" && c.Loss <= keep.Threshold {
				out = append(out, c)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown keep kind %q", ErrQuery, keep.Kind)
	}
}

// resolveNetLR expands selector-keyed learning-rate overrides to concrete
// layer names of the candidate definition.
func resolveNetLR(def *dnn.NetDef, netLR map[string]float64) (map[string]float64, error) {
	if len(netLR) == 0 {
		return nil, nil
	}
	out := map[string]float64{}
	for selSrc, lr := range netLR {
		sel, err := CompileSelector(selSrc)
		if err != nil {
			return nil, err
		}
		matched := false
		for _, n := range def.Nodes {
			if !n.Parametric() {
				continue
			}
			if ok, _ := sel.Match(n.Name); ok {
				out[n.Name] = lr
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("%w: net lr selector %q matches no parametric layer of %s", ErrQuery, selSrc, def.Name)
		}
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
