// Package dql implements the paper's DQL domain specific language
// (Sec. III-B): declarative model exploration and enumeration queries over
// a DLV repository. Four statement forms are supported, mirroring the
// paper's Queries 1-4:
//
//	select m where <conditions>
//	slice m2 from m1 where <conditions> mutate m2.input = m1["sel"] and m2.output = m1["sel"]
//	construct m2 from m1 where <conditions> mutate m1["sel"].insert = RELU("name") ...
//	evaluate m from (<query>) with config = <json|path> vary <dims> keep top(k, m["loss"], iters)
//
// Conditions mix relational predicates over version attributes (name,
// creation_time, accuracy, ...) with graph-traversal predicates over the
// network DAG via the selector operator m["conv[1,3,5]"] and the prev/next
// attributes (`has` tests against node templates like POOL("MAX")).
package dql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokString
	tokNumber
	tokOp     // = != < <= > >=
	tokPunct  // . [ ] ( ) ,
	tokVarRef // $1, $2 ...
)

// keywords of the language (case-insensitive).
var keywords = map[string]bool{
	"select": true, "slice": true, "construct": true, "evaluate": true,
	"from": true, "where": true, "mutate": true, "with": true, "vary": true,
	"keep": true, "and": true, "like": true, "has": true, "in": true,
	"auto": true, "top": true, "above": true, "insert": true, "delete": true,
	"input": true, "output": true, "config": true, "not": true,
}

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string { return fmt.Sprintf("%q@%d", t.text, t.pos) }

// ErrSyntax wraps lexical and parse failures.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("dql: syntax error at %d: %s", e.Pos, e.Msg) }

// lex splits the input into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			var sb strings.Builder
			for j < n && input[j] != quote {
				if input[j] == '\\' && j+1 < n {
					j++
				}
				sb.WriteByte(input[j])
				j++
			}
			if j >= n {
				return nil, &SyntaxError{Pos: i, Msg: "unterminated string"}
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
			i = j + 1
		case c == '$':
			j := i + 1
			for j < n && unicode.IsDigit(rune(input[j])) {
				j++
			}
			if j == i+1 {
				return nil, &SyntaxError{Pos: i, Msg: "bad variable reference"}
			}
			toks = append(toks, token{kind: tokVarRef, text: input[i:j], pos: i})
			i = j
		case unicode.IsDigit(rune(c)) || (c == '-' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			j := i + 1
			for j < n && (unicode.IsDigit(rune(input[j])) || input[j] == '.' || input[j] == 'e' ||
				input[j] == 'E' || (input[j] == '-' && (input[j-1] == 'e' || input[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i + 1
			for j < n && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			word := input[i:j]
			kind := tokIdent
			if keywords[strings.ToLower(word)] {
				kind = tokKeyword
				word = strings.ToLower(word)
			}
			toks = append(toks, token{kind: kind, text: word, pos: i})
			i = j
		case c == '!' || c == '<' || c == '>' || c == '=':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{kind: tokOp, text: input[i : i+2], pos: i})
				i += 2
			} else if c == '!' {
				return nil, &SyntaxError{Pos: i, Msg: "unexpected '!'"}
			} else {
				toks = append(toks, token{kind: tokOp, text: string(c), pos: i})
				i++
			}
		case strings.ContainsRune(".[](),", rune(c)):
			toks = append(toks, token{kind: tokPunct, text: string(c), pos: i})
			i++
		default:
			return nil, &SyntaxError{Pos: i, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{kind: tokEOF, text: "", pos: n})
	return toks, nil
}
