package dql_test

import (
	"fmt"

	"modelhub/internal/dql"
)

// Parsing the paper's Query 1: relational predicates mixed with graph
// traversal over the network DAG.
func ExampleParse() {
	stmt, err := dql.Parse(`select m1
		where m1.name like "alexnet_%" and
		      m1["conv[1,3,5]"].next has POOL("MAX")`)
	if err != nil {
		panic(err)
	}
	s := stmt.(*dql.SelectStmt)
	fmt.Println(s.Var, len(s.Where), s.Where[1].Selector, s.Where[1].Template.Kind)
	// Output: m1 2 conv[1,3,5] pool
}

// Selectors are glob-like with capture groups usable in templates.
func ExampleCompileSelector() {
	sel, err := dql.CompileSelector("conv*($1)")
	if err != nil {
		panic(err)
	}
	ok, caps := sel.Match("conv2_1")
	fmt.Println(ok, dql.SubstituteCaptures("relu$1", caps))
	// Output: true relu2_1
}
