package dql

import (
	"errors"
	"math/rand"
	"testing"

	"modelhub/internal/data"
	"modelhub/internal/dlv"
	"modelhub/internal/dnn"
	"modelhub/internal/zoo"
)

// populated builds a repository with a few model versions that mirror the
// paper's examples: alexnet-style variants and a lenet.
func populated(t *testing.T) (*dlv.Repo, *Engine) {
	t.Helper()
	repo, err := dlv.Init(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	commit := func(name string, def *dnn.NetDef, acc float64) int64 {
		id, err := repo.Commit(dlv.CommitInput{
			Name: name, NetDef: def, Accuracy: acc,
			Hyper: map[string]string{"base_lr": "0.1"},
		})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	commit("alexnet_v1", zoo.AlexNetMini("alexnet_v1"), 0.6)
	commit("alexnet_v2", zoo.AlexNetMini("alexnet_v2"), 0.7)
	commit("lenet", zoo.LeNet("lenet"), 0.95)
	// An AVG-pool variant for Query 3: lenet with avg pools.
	avg := zoo.LeNet("lenet-avgv1")
	for i := range avg.Nodes {
		if avg.Nodes[i].Kind == dnn.KindPool {
			avg.Nodes[i].Mode = dnn.PoolAvg
		}
	}
	commit("lenet-avgv1", avg, 0.9)
	eng := NewEngine(repo)
	rng := rand.New(rand.NewSource(1))
	eng.RegisterDataset("digits", data.Digits(rng, 200, 0.05))
	return repo, eng
}

func TestSelectByNameAndAccuracy(t *testing.T) {
	_, eng := populated(t)
	res, err := eng.Run(`select m1 where m1.name like "alexnet_%"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Versions) != 2 {
		t.Fatalf("versions = %d", len(res.Versions))
	}
	res, err = eng.Run(`select m where m.accuracy >= 0.9`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Versions) != 2 {
		t.Fatalf("accuracy filter = %d", len(res.Versions))
	}
	res, err = eng.Run(`select m where m.accuracy >= 0.9 and m.name = "lenet"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Versions) != 1 || res.Versions[0].Name != "lenet" {
		t.Fatalf("conjunction = %v", res.Versions)
	}
}

func TestSelectGraphCondition(t *testing.T) {
	_, eng := populated(t)
	// Query-1 analog: models whose conv layers feed MAX pools.
	res, err := eng.Run(`select m where m.name like "lenet%" and m["conv[1,2]"].next has POOL("MAX")`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Versions) != 1 || res.Versions[0].Name != "lenet" {
		t.Fatalf("graph cond = %v", res.Versions)
	}
	// AVG variant matches the AVG template.
	res, err = eng.Run(`select m where m["conv[1,2]"].next has POOL("AVG")`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Versions) != 1 || res.Versions[0].Name != "lenet-avgv1" {
		t.Fatalf("avg cond = %v", res.Versions)
	}
	// prev traversal.
	res, err = eng.Run(`select m where m.name = "lenet" and m["pool1"].prev has CONV`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Versions) != 1 {
		t.Fatalf("prev cond = %v", res.Versions)
	}
	// Negation.
	res, err = eng.Run(`select m where m.name = "lenet" and m["ip1"].next not has POOL`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Versions) != 1 {
		t.Fatalf("negated cond = %v", res.Versions)
	}
}

func TestSelectMetadataFallback(t *testing.T) {
	_, eng := populated(t)
	res, err := eng.Run(`select m where m.base_lr = "0.1"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Versions) != 4 {
		t.Fatalf("metadata cond = %d", len(res.Versions))
	}
}

func TestSelectTypeMismatch(t *testing.T) {
	_, eng := populated(t)
	if _, err := eng.Run(`select m where m.accuracy = "high"`); !errors.Is(err, ErrQuery) {
		t.Fatal("string vs numeric attribute must error")
	}
}

// Query-2 analog: slice the conv trunk out of lenet.
func TestSliceSubNetwork(t *testing.T) {
	_, eng := populated(t)
	res, err := eng.Run(`slice m2 from m1
		where m1.name = "lenet"
		mutate m2.input = m1["conv1"] and m2.output = m1["ip1"]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Defs) != 1 {
		t.Fatalf("defs = %d", len(res.Defs))
	}
	def := res.Defs[0]
	if def.Node("conv1") == nil || def.Node("ip1") == nil || def.Node("ip2") != nil || def.Node("prob") != nil {
		t.Fatalf("slice kept wrong nodes: %+v", def.Nodes)
	}
	// The slice starts at conv1, so the input shape is the original input.
	if def.InC != 1 || def.InH != data.DigitSize {
		t.Fatalf("slice input shape = %dx%dx%d", def.InC, def.InH, def.InW)
	}
	// Slice must be buildable.
	if _, err := dnn.Build(def, rand.New(rand.NewSource(2))); err != nil {
		t.Fatal(err)
	}
}

func TestSliceMidNetworkShape(t *testing.T) {
	_, eng := populated(t)
	res, err := eng.Run(`slice s from m
		where m.name = "lenet"
		mutate s.input = m["conv2"] and s.output = m["ip2"]`)
	if err != nil {
		t.Fatal(err)
	}
	def := res.Defs[0]
	// conv2's input is the pooled conv1 output: 8 channels at 6x6.
	if def.InC != 8 || def.InH != 6 || def.InW != 6 {
		t.Fatalf("mid-slice input shape = %dx%dx%d", def.InC, def.InH, def.InW)
	}
	if def.Labels != data.NumDigits {
		t.Fatalf("slice labels = %d", def.Labels)
	}
}

func TestSliceErrors(t *testing.T) {
	_, eng := populated(t)
	if _, err := eng.Run(`slice s from m where m.name = "lenet" mutate s.input = m["conv*"] and s.output = m["ip2"]`); !errors.Is(err, ErrQuery) {
		t.Fatal("ambiguous selector must error")
	}
	if _, err := eng.Run(`slice s from m where m.name = "lenet" mutate s.input = m["ip2"] and s.output = m["conv1"]`); !errors.Is(err, ErrQuery) {
		t.Fatal("no-path slice must error")
	}
}

// Query-3 analog: insert a ReLU after every conv followed by an AVG pool.
func TestConstructInsert(t *testing.T) {
	_, eng := populated(t)
	res, err := eng.Run(`construct m2 from m1
		where m1.name like "lenet-avgv1%" and m1["conv*($1)"].next has POOL("AVG")
		mutate m1["conv*($1)"].insert = RELU("actv$1")`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Defs) != 1 {
		t.Fatalf("defs = %d", len(res.Defs))
	}
	def := res.Defs[0]
	if def.Node("actv1") == nil || def.Node("actv2") == nil {
		t.Fatalf("inserted relus missing: %+v", def.Nodes)
	}
	// conv1 -> relu1 -> pool1 now.
	if next := def.Next("conv1"); len(next) != 1 || next[0] != "actv1" {
		t.Fatalf("conv1 next = %v", next)
	}
	if next := def.Next("actv1"); len(next) != 1 || next[0] != "pool1" {
		t.Fatalf("actv1 next = %v", next)
	}
	// Constructed model must build and run.
	if _, err := dnn.Build(def, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
}

func TestConstructDelete(t *testing.T) {
	_, eng := populated(t)
	res, err := eng.Run(`construct m2 from m1
		where m1.name = "lenet"
		mutate m1["ip1"].delete = RELU`)
	if err != nil {
		t.Fatal(err)
	}
	def := res.Defs[0]
	if def.Node("relu1") != nil {
		t.Fatal("relu1 should be deleted")
	}
	if next := def.Next("ip1"); len(next) != 1 || next[0] != "ip2" {
		t.Fatalf("bypass edge wrong: %v", next)
	}
	if _, err := dnn.Build(def, rand.New(rand.NewSource(4))); err != nil {
		t.Fatal(err)
	}
}

func TestConstructNoChangeYieldsNothing(t *testing.T) {
	_, eng := populated(t)
	res, err := eng.Run(`construct m2 from m1
		where m1.name = "lenet"
		mutate m1["ghost*"].insert = RELU("r")`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Defs) != 0 {
		t.Fatalf("unchanged construct must yield nothing, got %d", len(res.Defs))
	}
}

func TestConstructInsertParametricRejected(t *testing.T) {
	_, eng := populated(t)
	if _, err := eng.Run(`construct m2 from m1 where m1.name = "lenet" mutate m1["conv1"].insert = CONV("x")`); !errors.Is(err, ErrQuery) {
		t.Fatal("parametric insert must error")
	}
}

// Query-4 analog: enumerate lenet variants over a small lr grid and keep
// the best by loss.
func TestEvaluateGridSearch(t *testing.T) {
	_, eng := populated(t)
	if err := eng.RegisterQuery("variants", `select m where m.name = "lenet"`); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(`evaluate m
		from "variants"
		vary config.base_lr in [0.1, 0.001]
		keep top(1, m["loss"], 12)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 1 {
		t.Fatalf("candidates = %d", len(res.Candidates))
	}
	best := res.Candidates[0]
	if best.Config.BaseLR != 0.1 && best.Config.BaseLR != 0.001 {
		t.Fatalf("config = %+v", best.Config)
	}
	if best.Loss <= 0 {
		t.Fatalf("loss = %v", best.Loss)
	}
}

func TestEvaluateNestedConstruct(t *testing.T) {
	_, eng := populated(t)
	res, err := eng.Run(`evaluate m
		from (construct c from m1 where m1.name = "lenet-avgv1" mutate m1["conv*($1)"].insert = TANH("tanh$1"))
		vary config.base_lr in [0.05]
		keep top(3, m["acc"], 10)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 1 {
		t.Fatalf("candidates = %d", len(res.Candidates))
	}
	if res.Candidates[0].Def.Node("tanh1") == nil {
		t.Fatal("evaluated def must be the constructed variant")
	}
}

func TestEvaluateKeepAbove(t *testing.T) {
	_, eng := populated(t)
	res, err := eng.Run(`evaluate m
		from (select m1 where m1.name = "lenet")
		vary config.base_lr in [0.1]
		keep above(2.0, m["acc"], 5)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 0 {
		t.Fatal("no candidate can exceed accuracy 2.0")
	}
}

func TestEvaluateAutoGrid(t *testing.T) {
	_, eng := populated(t)
	res, err := eng.Run(`evaluate m
		from (select m1 where m1.name = "lenet")
		vary config.momentum auto
		keep top(10, m["loss"], 5)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 2 { // auto grid for momentum has 2 points
		t.Fatalf("candidates = %d", len(res.Candidates))
	}
}

func TestEvaluateErrors(t *testing.T) {
	_, eng := populated(t)
	if _, err := eng.Run(`evaluate m from "missing" keep top(1, m["loss"], 5)`); !errors.Is(err, ErrQuery) {
		t.Fatal("unknown named query must error")
	}
	if _, err := eng.Run(`evaluate m from (select m1 where m1.name = "zzz") keep top(1, m["loss"], 5)`); !errors.Is(err, ErrQuery) {
		t.Fatal("empty candidate set must error")
	}
	if _, err := eng.Run(`evaluate m from (select m1 where m1.name = "lenet") vary config.wat in [1] keep top(1, m["loss"], 5)`); !errors.Is(err, ErrQuery) {
		t.Fatal("unknown config key must error")
	}
	if _, err := eng.Run(`evaluate m from (select m1 where m1.name = "lenet") vary config.input_data in ["nope"] keep top(1, m["loss"], 5)`); !errors.Is(err, ErrQuery) {
		t.Fatal("unknown dataset must error")
	}
}

func TestRegisterQueryBadSyntax(t *testing.T) {
	_, eng := populated(t)
	if err := eng.RegisterQuery("bad", "selec t"); err == nil {
		t.Fatal("bad named query must error at registration")
	}
}

// Paper Query 4's per-layer dimension: vary config.net["conv*"].lr.
func TestEvaluatePerLayerLR(t *testing.T) {
	_, eng := populated(t)
	res, err := eng.Run(`evaluate m
		from (select m1 where m1.name = "lenet")
		vary config.net["conv*"].lr in [0.1, 0]
		keep top(5, m["loss"], 8)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 2 {
		t.Fatalf("candidates = %d", len(res.Candidates))
	}
	seen := map[float64]bool{}
	for _, c := range res.Candidates {
		lr, ok := c.Config.NetLR["conv*"]
		if !ok {
			t.Fatalf("candidate missing net lr: %+v", c.Config)
		}
		seen[lr] = true
	}
	if !seen[0.1] || !seen[0] {
		t.Fatalf("grid points missing: %v", seen)
	}
}

func TestEvaluatePerLayerLRAuto(t *testing.T) {
	_, eng := populated(t)
	res, err := eng.Run(`evaluate m
		from (select m1 where m1.name = "lenet")
		vary config.net["ip*"].lr auto
		keep top(10, m["loss"], 5)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 3 { // auto grid has 3 points
		t.Fatalf("candidates = %d", len(res.Candidates))
	}
}

func TestEvaluatePerLayerLRNoMatch(t *testing.T) {
	_, eng := populated(t)
	if _, err := eng.Run(`evaluate m
		from (select m1 where m1.name = "lenet")
		vary config.net["ghost*"].lr in [0.1]
		keep top(1, m["loss"], 5)`); !errors.Is(err, ErrQuery) {
		t.Fatal("unmatched net lr selector must error")
	}
}

// Construct on a DAG model: inserting after a fan-out node must splice the
// new node into every outgoing edge, and the result must still build.
func TestConstructInsertOnDAG(t *testing.T) {
	repo, err := dlv.Init(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Commit(dlv.CommitInput{
		Name: "resnet-skip", NetDef: zoo.ResNetSkip("resnet-skip"),
	}); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(repo)
	res, err := eng.Run(`construct c from m
		where m.name = "resnet-skip"
		mutate m["stem_relu"].insert = TANH("post_stem")`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Defs) != 1 {
		t.Fatalf("defs = %d", len(res.Defs))
	}
	def := res.Defs[0]
	// stem_relu fanned out to b1_conv1 AND the b1_add skip; both must now
	// route through the inserted node.
	if next := def.Next("stem_relu"); len(next) != 1 || next[0] != "post_stem" {
		t.Fatalf("stem_relu next = %v", next)
	}
	after := def.Next("post_stem")
	if len(after) != 2 {
		t.Fatalf("post_stem next = %v", after)
	}
	if _, err := dnn.Build(def, rand.New(rand.NewSource(1))); err != nil {
		t.Fatalf("constructed DAG must build: %v", err)
	}
}
