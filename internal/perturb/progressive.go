package perturb

import (
	"fmt"
	"sort"

	"modelhub/internal/dnn"
	"modelhub/internal/tensor"
)

// TopKDetermined implements the Lemma-4 determinism condition, generalized
// to top-k: given output intervals, it reports whether a set S of k indices
// is certainly the top-k result — i.e. the smallest lower bound inside S
// strictly exceeds the largest upper bound outside S (the "matched index
// value range does not overlap with the k+1 index value range"). When
// determined, the members of S are returned ordered by descending lower
// bound.
func TopKDetermined(lo, hi []float32, k int) (bool, []int) {
	n := len(lo)
	if k <= 0 || k > n {
		return false, nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return lo[idx[a]] > lo[idx[b]] })
	top := idx[:k]
	minLo := lo[top[k-1]]
	for _, j := range idx[k:] {
		if hi[j] >= minLo {
			return false, nil
		}
	}
	return true, append([]int(nil), top...)
}

// IntervalSource supplies weight bounds at increasing byte-plane prefixes —
// pas.Store satisfies this via a small adapter. Prefix 4 must return exact
// (degenerate) intervals.
type IntervalSource interface {
	// WeightIntervals returns the lo/hi bound matrices of the named layer
	// when only the first `prefix` byte planes are read.
	WeightIntervals(layer string, prefix int) (lo, hi *tensor.Matrix, err error)
}

// Result describes one progressive evaluation.
type Result struct {
	// Labels is the determined top-k label set, best first.
	Labels []int
	// PrefixUsed is the number of byte planes that had to be read.
	PrefixUsed int
	// Lo, Hi are the final logit intervals.
	Lo, Hi []float32
}

// Progressive runs the paper's progressive query: evaluate with 1 byte
// plane; if the top-k prediction is not determined, fetch one more plane and
// repeat. Prefix 4 yields exact weights, where determination is guaranteed
// up to exact ties (broken by index order, matching dnn.Network.Predict).
func Progressive(ev *Evaluator, src IntervalSource, in *dnn.Volume, k, startPrefix int) (*Result, error) {
	if startPrefix < 1 {
		startPrefix = 1
	}
	names := parametricNames(ev.def)
	for prefix := startPrefix; prefix <= 4; prefix++ {
		w := WeightBounds{Lo: map[string]*tensor.Matrix{}, Hi: map[string]*tensor.Matrix{}}
		for _, name := range names {
			lo, hi, err := src.WeightIntervals(name, prefix)
			if err != nil {
				return nil, err
			}
			w.Lo[name], w.Hi[name] = lo, hi
		}
		lo, hi, err := ev.Forward(in, w)
		if err != nil {
			return nil, err
		}
		if ok, labels := TopKDetermined(lo, hi, k); ok {
			return &Result{Labels: labels, PrefixUsed: prefix, Lo: lo, Hi: hi}, nil
		}
		if prefix == 4 {
			// Exact weights but tied logits: fall back to argsort by value,
			// the same order a plain forward pass would produce.
			labels := argsortDesc(lo)[:k]
			return &Result{Labels: labels, PrefixUsed: 4, Lo: lo, Hi: hi}, nil
		}
	}
	return nil, fmt.Errorf("perturb: unreachable")
}

func argsortDesc(v []float32) []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] > v[idx[b]] })
	return idx
}

func parametricNames(def *dnn.NetDef) []string {
	var out []string
	for _, l := range def.Nodes {
		if l.Parametric() {
			out = append(out, l.Name)
		}
	}
	return out
}

// ParametricNames lists the parametric layer names of a network definition —
// the layer set a PrefetchSource should cover.
func ParametricNames(def *dnn.NetDef) []string { return parametricNames(def) }
