package perturb

import (
	"math/rand"
	"testing"

	"modelhub/internal/dnn"
	"modelhub/internal/tensor"
)

// residualDef builds a skip-connection model covering both merge kinds.
func residualDef() *dnn.NetDef {
	return &dnn.NetDef{
		Name: "res", InC: 1, InH: 6, InW: 6, Labels: 3,
		Nodes: []dnn.LayerSpec{
			{Name: "conv1", Kind: dnn.KindConv, Out: 3, K: 3, Pad: 1},
			{Name: "conv2", Kind: dnn.KindConv, Out: 3, K: 3, Pad: 1},
			{Name: "relu2", Kind: dnn.KindReLU},
			{Name: "add", Kind: dnn.KindAdd},
			{Name: "branch", Kind: dnn.KindConv, Out: 2, K: 1},
			{Name: "cat", Kind: dnn.KindConcat},
			{Name: "ip", Kind: dnn.KindFull, Out: 3},
			{Name: "prob", Kind: dnn.KindSoftmax},
		},
		Edges: []dnn.Edge{
			{From: "conv1", To: "conv2"},
			{From: "conv2", To: "relu2"},
			{From: "conv1", To: "add"},
			{From: "relu2", To: "add"},
			{From: "add", To: "branch"},
			{From: "add", To: "cat"},
			{From: "branch", To: "cat"},
			{From: "cat", To: "ip"},
			{From: "ip", To: "prob"},
		},
	}
}

// The interval DAG evaluator with exact bounds must match the DNN DAG
// executor's logits.
func TestDAGExactBoundsMatchForward(t *testing.T) {
	def := residualDef()
	n, err := dnn.Build(def, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(def)
	if err != nil {
		t.Fatal(err)
	}
	in := randIn(2, dnn.Shape{C: 1, H: 6, W: 6})
	lo, hi, err := ev.Forward(in, ExactWeights(n.Snapshot()))
	if err != nil {
		t.Fatal(err)
	}
	want := n.Logits(in)
	for i := range want.Data {
		if absf(lo[i]-want.Data[i]) > 1e-4 || absf(hi[i]-want.Data[i]) > 1e-4 {
			t.Fatalf("logit %d: plain %v, interval [%v,%v]", i, want.Data[i], lo[i], hi[i])
		}
	}
}

// Interval soundness through merge nodes: the true logits stay inside the
// interval output at every byte-plane prefix.
func TestDAGIntervalSoundness(t *testing.T) {
	def := residualDef()
	n, err := dnn.Build(def, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(def)
	if err != nil {
		t.Fatal(err)
	}
	src := NewSegmentedSource(n.Snapshot())
	in := randIn(4, dnn.Shape{C: 1, H: 6, W: 6})
	want := n.Logits(in)
	for prefix := 1; prefix <= 4; prefix++ {
		w := WeightBounds{Lo: map[string]*tensor.Matrix{}, Hi: map[string]*tensor.Matrix{}}
		for _, l := range def.Nodes {
			if !l.Parametric() {
				continue
			}
			lo, hi, err := src.WeightIntervals(l.Name, prefix)
			if err != nil {
				t.Fatal(err)
			}
			w.Lo[l.Name], w.Hi[l.Name] = lo, hi
		}
		lo, hi, err := ev.Forward(in, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if !(lo[i] <= want.Data[i]+1e-4 && want.Data[i] <= hi[i]+1e-4) {
				t.Fatalf("prefix %d logit %d: %v outside [%v,%v]", prefix, i, want.Data[i], lo[i], hi[i])
			}
		}
	}
}

// Progressive evaluation works end to end on DAG models.
func TestDAGProgressive(t *testing.T) {
	def := residualDef()
	n, err := dnn.Build(def, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(def)
	if err != nil {
		t.Fatal(err)
	}
	src := NewSegmentedSource(n.Snapshot())
	for seed := int64(0); seed < 10; seed++ {
		in := randIn(6+seed, dnn.Shape{C: 1, H: 6, W: 6})
		res, err := Progressive(ev, src, in, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if want := n.Predict(in); res.Labels[0] != want {
			t.Fatalf("progressive label %d != full %d", res.Labels[0], want)
		}
	}
}

func TestDAGEvaluatorRejectsMultiSink(t *testing.T) {
	def := residualDef()
	def.Nodes = append(def.Nodes, dnn.LayerSpec{Name: "stray", Kind: dnn.KindReLU})
	def.Edges = append(def.Edges, dnn.Edge{From: "add", To: "stray"})
	if _, err := NewEvaluator(def); err == nil {
		t.Fatal("two sinks must be rejected")
	}
}
