package perturb

import (
	"fmt"
	"runtime"
	"sync"

	"modelhub/internal/floatenc"
	"modelhub/internal/tensor"
)

// SourceFunc adapts a plain function to IntervalSource; used to wire a
// pas.Store snapshot in without a package dependency cycle.
type SourceFunc func(layer string, prefix int) (lo, hi *tensor.Matrix, err error)

// WeightIntervals implements IntervalSource.
func (f SourceFunc) WeightIntervals(layer string, prefix int) (*tensor.Matrix, *tensor.Matrix, error) {
	return f(layer, prefix)
}

// SegmentedSource serves weight intervals from in-memory segmented matrices
// (the non-archived case: a snapshot already split into byte planes).
type SegmentedSource map[string]*floatenc.Segmented

// NewSegmentedSource segments a full-precision snapshot.
func NewSegmentedSource(weights map[string]*tensor.Matrix) SegmentedSource {
	out := make(SegmentedSource, len(weights))
	for name, m := range weights {
		out[name] = floatenc.Segment(m)
	}
	return out
}

// WeightIntervals implements IntervalSource.
func (s SegmentedSource) WeightIntervals(layer string, prefix int) (*tensor.Matrix, *tensor.Matrix, error) {
	seg, ok := s[layer]
	if !ok {
		return nil, nil, fmt.Errorf("perturb: no segmented weights for layer %q", layer)
	}
	return seg.Intervals(prefix)
}

// PrefetchSource wraps an IntervalSource with concurrent whole-model
// prefetching: the first request at a prefix fetches every known layer at
// that prefix over a bounded worker pool and caches the results. The
// progressive evaluation loop requests each parametric layer at prefix p
// before escalating to p+1, and repeats that per query — so one prefetch
// wave serves the whole forward pass, and subsequent queries at the same
// prefix are pure cache hits.
type PrefetchSource struct {
	src     IntervalSource
	layers  []string
	workers int

	mu    sync.Mutex
	cache map[prefetchKey]prefetchEntry
}

type prefetchKey struct {
	layer  string
	prefix int
}

type prefetchEntry struct {
	lo, hi *tensor.Matrix
	err    error
}

// NewPrefetchSource builds a PrefetchSource over the named layers; workers
// <= 0 selects GOMAXPROCS.
func NewPrefetchSource(src IntervalSource, layers []string, workers int) *PrefetchSource {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &PrefetchSource{
		src:     src,
		layers:  append([]string(nil), layers...),
		workers: workers,
		cache:   map[prefetchKey]prefetchEntry{},
	}
}

// WeightIntervals implements IntervalSource. A layer outside the prefetch
// set falls through to the wrapped source uncached.
func (p *PrefetchSource) WeightIntervals(layer string, prefix int) (*tensor.Matrix, *tensor.Matrix, error) {
	p.mu.Lock()
	if e, ok := p.cache[prefetchKey{layer, prefix}]; ok {
		p.mu.Unlock()
		return e.lo, e.hi, e.err
	}
	p.mu.Unlock()

	known := false
	for _, l := range p.layers {
		if l == layer {
			known = true
			break
		}
	}
	if !known {
		return p.src.WeightIntervals(layer, prefix)
	}

	p.prefetch(prefix)
	p.mu.Lock()
	e := p.cache[prefetchKey{layer, prefix}]
	p.mu.Unlock()
	return e.lo, e.hi, e.err
}

// prefetch fetches every not-yet-cached layer at the prefix concurrently.
func (p *PrefetchSource) prefetch(prefix int) {
	p.mu.Lock()
	var missing []string
	for _, l := range p.layers {
		if _, ok := p.cache[prefetchKey{l, prefix}]; !ok {
			missing = append(missing, l)
		}
	}
	p.mu.Unlock()
	if len(missing) == 0 {
		return
	}
	sem := make(chan struct{}, p.workers)
	var wg sync.WaitGroup
	entries := make([]prefetchEntry, len(missing))
	for i, l := range missing {
		wg.Add(1)
		go func(i int, l string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			lo, hi, err := p.src.WeightIntervals(l, prefix)
			entries[i] = prefetchEntry{lo: lo, hi: hi, err: err}
		}(i, l)
	}
	wg.Wait()
	p.mu.Lock()
	for i, l := range missing {
		p.cache[prefetchKey{l, prefix}] = entries[i]
	}
	p.mu.Unlock()
}
