package perturb

import (
	"fmt"

	"modelhub/internal/floatenc"
	"modelhub/internal/tensor"
)

// SourceFunc adapts a plain function to IntervalSource; used to wire a
// pas.Store snapshot in without a package dependency cycle.
type SourceFunc func(layer string, prefix int) (lo, hi *tensor.Matrix, err error)

// WeightIntervals implements IntervalSource.
func (f SourceFunc) WeightIntervals(layer string, prefix int) (*tensor.Matrix, *tensor.Matrix, error) {
	return f(layer, prefix)
}

// SegmentedSource serves weight intervals from in-memory segmented matrices
// (the non-archived case: a snapshot already split into byte planes).
type SegmentedSource map[string]*floatenc.Segmented

// NewSegmentedSource segments a full-precision snapshot.
func NewSegmentedSource(weights map[string]*tensor.Matrix) SegmentedSource {
	out := make(SegmentedSource, len(weights))
	for name, m := range weights {
		out[name] = floatenc.Segment(m)
	}
	return out
}

// WeightIntervals implements IntervalSource.
func (s SegmentedSource) WeightIntervals(layer string, prefix int) (*tensor.Matrix, *tensor.Matrix, error) {
	seg, ok := s[layer]
	if !ok {
		return nil, nil, fmt.Errorf("perturb: no segmented weights for layer %q", layer)
	}
	return seg.Intervals(prefix)
}
