// Package perturb implements the paper's progressive model evaluation
// scheme (Sec. IV-D): evaluate a DNN forward pass while every weight is
// only known to lie in an interval (because only the high-order byte planes
// were retrieved), propagate the perturbation through every layer, and use
// the Lemma-4 determinism condition to decide whether the prediction is
// already certain or whether lower-order byte planes must be fetched.
package perturb

import (
	"fmt"
	"math"

	"modelhub/internal/dnn"
	"modelhub/internal/tensor"
)

// Interval is a closed range [Lo, Hi].
type Interval struct {
	Lo, Hi float32
}

// IVolume is a feature volume whose every element is an interval.
type IVolume struct {
	Shape  dnn.Shape
	Lo, Hi []float32
}

// NewIVolume allocates a zero interval volume.
func NewIVolume(s dnn.Shape) *IVolume {
	n := s.Size()
	return &IVolume{Shape: s, Lo: make([]float32, n), Hi: make([]float32, n)}
}

// Exact wraps a concrete volume as a degenerate interval volume.
func Exact(v *dnn.Volume) *IVolume {
	iv := NewIVolume(v.Shape)
	copy(iv.Lo, v.Data)
	copy(iv.Hi, v.Data)
	return iv
}

// mulInterval returns the product interval of [al,ah] x [bl,bh].
func mulInterval(al, ah, bl, bh float32) (float32, float32) {
	p1 := float64(al) * float64(bl)
	p2 := float64(al) * float64(bh)
	p3 := float64(ah) * float64(bl)
	p4 := float64(ah) * float64(bh)
	lo := math.Min(math.Min(p1, p2), math.Min(p3, p4))
	hi := math.Max(math.Max(p1, p2), math.Max(p3, p4))
	return float32(lo), float32(hi)
}

// WeightBounds carries the lo/hi matrices of every parametric layer.
type WeightBounds struct {
	Lo, Hi map[string]*tensor.Matrix
}

// ExactWeights wraps a concrete snapshot as degenerate bounds.
func ExactWeights(w map[string]*tensor.Matrix) WeightBounds {
	return WeightBounds{Lo: w, Hi: w}
}

// Evaluator runs interval forward passes of a network definition under
// uncertain weights (paper Problem 2). It mirrors the dnn DAG executor:
// chains are the common case; add/concat merge nodes propagate intervals by
// interval addition and concatenation.
type Evaluator struct {
	def   *dnn.NetDef
	order []string
	specs map[string]dnn.LayerSpec
	preds map[string][]string
	// inShape/outShape are the static activation shapes per node.
	inShape, outShape map[string]dnn.Shape
	in                dnn.Shape
	sink              string
}

// NewEvaluator validates the definition and precomputes the DAG shapes.
func NewEvaluator(def *dnn.NetDef) (*Evaluator, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	order, err := def.TopoOrder()
	if err != nil {
		return nil, err
	}
	e := &Evaluator{
		def:      def,
		order:    order,
		specs:    map[string]dnn.LayerSpec{},
		preds:    map[string][]string{},
		inShape:  map[string]dnn.Shape{},
		outShape: map[string]dnn.Shape{},
		in:       dnn.Shape{C: def.InC, H: def.InH, W: def.InW},
	}
	var sinks []string
	for _, l := range def.Nodes {
		e.specs[l.Name] = l
		e.preds[l.Name] = def.Prev(l.Name)
		if len(def.Next(l.Name)) == 0 {
			sinks = append(sinks, l.Name)
		}
	}
	if len(sinks) != 1 {
		return nil, fmt.Errorf("perturb: network needs exactly one sink, got %d", len(sinks))
	}
	e.sink = sinks[0]
	for _, name := range order {
		in, err := e.mergeInputShape(name)
		if err != nil {
			return nil, err
		}
		e.inShape[name] = in
		spec := e.specs[name]
		if spec.Kind == dnn.KindAdd || spec.Kind == dnn.KindConcat {
			e.outShape[name] = in
			continue
		}
		out, err := spec.OutShape(in)
		if err != nil {
			return nil, err
		}
		e.outShape[name] = out
	}
	return e, nil
}

func (e *Evaluator) mergeInputShape(name string) (dnn.Shape, error) {
	preds := e.preds[name]
	spec := e.specs[name]
	switch {
	case len(preds) == 0:
		return e.in, nil
	case len(preds) == 1:
		return e.outShape[preds[0]], nil
	case spec.Kind == dnn.KindAdd:
		first := e.outShape[preds[0]]
		for _, p := range preds[1:] {
			if e.outShape[p] != first {
				return dnn.Shape{}, fmt.Errorf("perturb: add node %q input shapes differ", name)
			}
		}
		return first, nil
	case spec.Kind == dnn.KindConcat:
		first := e.outShape[preds[0]]
		total := 0
		for _, p := range preds {
			s := e.outShape[p]
			if s.H != first.H || s.W != first.W {
				return dnn.Shape{}, fmt.Errorf("perturb: concat node %q spatial extents differ", name)
			}
			total += s.C
		}
		return dnn.Shape{C: total, H: first.H, W: first.W}, nil
	default:
		return dnn.Shape{}, fmt.Errorf("perturb: node %q (%s) has %d inputs; only add/concat merge",
			name, spec.Kind, len(preds))
	}
}

// Forward propagates the input through the DAG under the weight bounds and
// returns the interval of every output logit. A trailing softmax layer is
// skipped: softmax preserves the ordering of logits, so Lemma 4 applies to
// the logits directly.
func (e *Evaluator) Forward(in *dnn.Volume, w WeightBounds) (lo, hi []float32, err error) {
	if in.Shape != e.in {
		return nil, nil, fmt.Errorf("perturb: input shape %v, want %v", in.Shape, e.in)
	}
	outputs := map[string]*IVolume{}
	logitsNode := e.sink
	if e.specs[e.sink].Kind == dnn.KindSoftmax {
		if preds := e.preds[e.sink]; len(preds) == 1 {
			logitsNode = preds[0]
		}
	}
	for _, name := range e.order {
		x := e.nodeInput(name, in, outputs)
		spec := e.specs[name]
		inShape, outShape := e.inShape[name], e.outShape[name]
		var y *IVolume
		switch spec.Kind {
		case dnn.KindConv:
			y, err = e.conv(spec, inShape, outShape, x, w)
		case dnn.KindFull:
			y, err = e.full(spec, inShape, outShape, x, w)
		case dnn.KindPool:
			y = e.pool(spec, inShape, outShape, x)
		case dnn.KindReLU, dnn.KindSigmoid, dnn.KindTanh:
			y = e.activate(spec, x)
		case dnn.KindAdd, dnn.KindConcat:
			y = x // nodeInput already merged the predecessors
		case dnn.KindSoftmax:
			y = x // ordering-preserving; Lemma 4 applies to logits
		default:
			err = fmt.Errorf("perturb: unsupported layer kind %q", spec.Kind)
		}
		if err != nil {
			return nil, nil, err
		}
		outputs[name] = y
		if name == logitsNode {
			return y.Lo, y.Hi, nil
		}
	}
	out := outputs[logitsNode]
	return out.Lo, out.Hi, nil
}

// nodeInput assembles a node's interval input from its predecessors,
// merging for add (interval sums) and concat (concatenation).
func (e *Evaluator) nodeInput(name string, in *dnn.Volume, outputs map[string]*IVolume) *IVolume {
	preds := e.preds[name]
	switch {
	case len(preds) == 0:
		return Exact(in)
	case len(preds) == 1:
		return outputs[preds[0]]
	case e.specs[name].Kind == dnn.KindAdd:
		out := NewIVolume(e.inShape[name])
		for _, p := range preds {
			pv := outputs[p]
			for i := range out.Lo {
				out.Lo[i] += pv.Lo[i]
				out.Hi[i] += pv.Hi[i]
			}
		}
		return out
	default: // concat
		out := NewIVolume(e.inShape[name])
		off := 0
		for _, p := range preds {
			pv := outputs[p]
			copy(out.Lo[off:], pv.Lo)
			copy(out.Hi[off:], pv.Hi)
			off += pv.Shape.Size()
		}
		return out
	}
}

func (e *Evaluator) weightRows(spec dnn.LayerSpec, in dnn.Shape, w WeightBounds) (lo, hi *tensor.Matrix, err error) {
	rows, cols, err := spec.ParamShape(in)
	if err != nil {
		return nil, nil, err
	}
	lo, okLo := w.Lo[spec.Name]
	hi, okHi := w.Hi[spec.Name]
	if !okLo || !okHi {
		return nil, nil, fmt.Errorf("perturb: missing weight bounds for layer %q", spec.Name)
	}
	if lo.Rows() != rows || lo.Cols() != cols || hi.Rows() != rows || hi.Cols() != cols {
		return nil, nil, fmt.Errorf("perturb: weight bounds for %q are %dx%d, want %dx%d",
			spec.Name, lo.Rows(), lo.Cols(), rows, cols)
	}
	return lo, hi, nil
}

func (e *Evaluator) conv(spec dnn.LayerSpec, in, out dnn.Shape, x *IVolume, w WeightBounds) (*IVolume, error) {
	wl, wh, err := e.weightRows(spec, in, w)
	if err != nil {
		return nil, err
	}
	stride := spec.Stride
	if stride == 0 {
		stride = 1
	}
	k, pad := spec.K, spec.Pad
	biasCol := wl.Cols() - 1
	y := NewIVolume(out)
	oi := 0
	for oc := 0; oc < out.C; oc++ {
		rl, rh := wl.Row(oc), wh.Row(oc)
		for oy := 0; oy < out.H; oy++ {
			for ox := 0; ox < out.W; ox++ {
				sumLo := float64(rl[biasCol])
				sumHi := float64(rh[biasCol])
				for ic := 0; ic < in.C; ic++ {
					for ky := 0; ky < k; ky++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= in.H {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= in.W {
								continue
							}
							wi := (ic*k+ky)*k + kx
							xi := (ic*in.H+iy)*in.W + ix
							l, h := mulInterval(rl[wi], rh[wi], x.Lo[xi], x.Hi[xi])
							sumLo += float64(l)
							sumHi += float64(h)
						}
					}
				}
				y.Lo[oi] = float32(sumLo)
				y.Hi[oi] = float32(sumHi)
				oi++
			}
		}
	}
	return y, nil
}

func (e *Evaluator) full(spec dnn.LayerSpec, in, out dnn.Shape, x *IVolume, w WeightBounds) (*IVolume, error) {
	wl, wh, err := e.weightRows(spec, in, w)
	if err != nil {
		return nil, err
	}
	biasCol := wl.Cols() - 1
	y := NewIVolume(out)
	for o := 0; o < out.C; o++ {
		rl, rh := wl.Row(o), wh.Row(o)
		sumLo := float64(rl[biasCol])
		sumHi := float64(rh[biasCol])
		for i := range x.Lo {
			l, h := mulInterval(rl[i], rh[i], x.Lo[i], x.Hi[i])
			sumLo += float64(l)
			sumHi += float64(h)
		}
		y.Lo[o] = float32(sumLo)
		y.Hi[o] = float32(sumHi)
	}
	return y, nil
}

func (e *Evaluator) pool(spec dnn.LayerSpec, in, out dnn.Shape, x *IVolume) *IVolume {
	stride := spec.Stride
	if stride == 0 {
		stride = spec.K
	}
	k := spec.K
	y := NewIVolume(out)
	oi := 0
	for c := 0; c < out.C; c++ {
		for oy := 0; oy < out.H; oy++ {
			for ox := 0; ox < out.W; ox++ {
				if spec.Mode == dnn.PoolMax {
					lo := float32(math.Inf(-1))
					hi := float32(math.Inf(-1))
					for ky := 0; ky < k; ky++ {
						iy := oy*stride + ky
						if iy >= in.H {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*stride + kx
							if ix >= in.W {
								continue
							}
							xi := (c*in.H+iy)*in.W + ix
							if x.Lo[xi] > lo {
								lo = x.Lo[xi]
							}
							if x.Hi[xi] > hi {
								hi = x.Hi[xi]
							}
						}
					}
					y.Lo[oi], y.Hi[oi] = lo, hi
				} else {
					var sumLo, sumHi float64
					n := 0
					for ky := 0; ky < k; ky++ {
						iy := oy*stride + ky
						if iy >= in.H {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*stride + kx
							if ix >= in.W {
								continue
							}
							xi := (c*in.H+iy)*in.W + ix
							sumLo += float64(x.Lo[xi])
							sumHi += float64(x.Hi[xi])
							n++
						}
					}
					y.Lo[oi] = float32(sumLo / float64(n))
					y.Hi[oi] = float32(sumHi / float64(n))
				}
				oi++
			}
		}
	}
	return y
}

// activate applies a monotone activation to both bounds.
func (e *Evaluator) activate(spec dnn.LayerSpec, x *IVolume) *IVolume {
	y := NewIVolume(x.Shape)
	var f func(float32) float32
	switch spec.Kind {
	case dnn.KindReLU:
		f = func(v float32) float32 {
			if v > 0 {
				return v
			}
			return 0
		}
	case dnn.KindSigmoid:
		f = func(v float32) float32 { return float32(1 / (1 + math.Exp(-float64(v)))) }
	case dnn.KindTanh:
		f = func(v float32) float32 { return float32(math.Tanh(float64(v))) }
	}
	for i := range x.Lo {
		y.Lo[i] = f(x.Lo[i])
		y.Hi[i] = f(x.Hi[i])
	}
	return y
}
