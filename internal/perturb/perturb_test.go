package perturb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"modelhub/internal/data"
	"modelhub/internal/dnn"
	"modelhub/internal/tensor"
	"modelhub/internal/zoo"
)

// testNet builds a small trained-ish (random) network covering every layer
// kind the evaluator supports.
func testNet(t *testing.T, seed int64) (*dnn.NetDef, *dnn.Network) {
	t.Helper()
	def := dnn.ChainDef("p", 2, 6, 6, 4,
		dnn.LayerSpec{Name: "conv1", Kind: dnn.KindConv, Out: 3, K: 3, Pad: 1},
		dnn.LayerSpec{Name: "relu1", Kind: dnn.KindReLU},
		dnn.LayerSpec{Name: "poolm", Kind: dnn.KindPool, K: 2, Mode: dnn.PoolMax},
		dnn.LayerSpec{Name: "conv2", Kind: dnn.KindConv, Out: 4, K: 2},
		dnn.LayerSpec{Name: "sig", Kind: dnn.KindSigmoid},
		dnn.LayerSpec{Name: "poola", Kind: dnn.KindPool, K: 2, Mode: dnn.PoolAvg},
		dnn.LayerSpec{Name: "ip1", Kind: dnn.KindFull, Out: 8},
		dnn.LayerSpec{Name: "tanh1", Kind: dnn.KindTanh},
		dnn.LayerSpec{Name: "ip2", Kind: dnn.KindFull, Out: 4},
		dnn.LayerSpec{Name: "prob", Kind: dnn.KindSoftmax},
	)
	n, err := dnn.Build(def, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return def, n
}

func randIn(seed int64, s dnn.Shape) *dnn.Volume {
	rng := rand.New(rand.NewSource(seed))
	v := dnn.NewVolume(s)
	for i := range v.Data {
		v.Data[i] = float32(rng.NormFloat64())
	}
	return v
}

// With exact (degenerate) weight bounds the interval forward pass must
// reproduce the plain forward pass logits exactly-ish (same arithmetic,
// modulo float64 accumulation differences).
func TestExactBoundsMatchPlainForward(t *testing.T) {
	def, n := testNet(t, 1)
	ev, err := NewEvaluator(def)
	if err != nil {
		t.Fatal(err)
	}
	in := randIn(2, dnn.Shape{C: 2, H: 6, W: 6})
	lo, hi, err := ev.Forward(in, ExactWeights(n.Snapshot()))
	if err != nil {
		t.Fatal(err)
	}
	want := n.Logits(in)
	for i := range want.Data {
		if absf(lo[i]-want.Data[i]) > 1e-4 || absf(hi[i]-want.Data[i]) > 1e-4 {
			t.Fatalf("logit %d: plain %v, interval [%v,%v]", i, want.Data[i], lo[i], hi[i])
		}
	}
}

func absf(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// Soundness: with weights segmented into byte planes, the interval output
// must always contain the true logits, at every prefix.
func TestIntervalSoundnessAcrossPrefixes(t *testing.T) {
	def, n := testNet(t, 3)
	ev, err := NewEvaluator(def)
	if err != nil {
		t.Fatal(err)
	}
	src := NewSegmentedSource(n.Snapshot())
	in := randIn(4, dnn.Shape{C: 2, H: 6, W: 6})
	want := n.Logits(in)
	for prefix := 1; prefix <= 4; prefix++ {
		w := WeightBounds{Lo: map[string]*tensor.Matrix{}, Hi: map[string]*tensor.Matrix{}}
		for _, name := range parametricNames(def) {
			lo, hi, err := src.WeightIntervals(name, prefix)
			if err != nil {
				t.Fatal(err)
			}
			w.Lo[name], w.Hi[name] = lo, hi
		}
		lo, hi, err := ev.Forward(in, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			// Allow a hair of accumulation slack.
			if !(lo[i] <= want.Data[i]+1e-4 && want.Data[i] <= hi[i]+1e-4) {
				t.Fatalf("prefix %d logit %d: %v outside [%v,%v]", prefix, i, want.Data[i], lo[i], hi[i])
			}
		}
	}
}

// Property: random weights sampled inside the bounds always produce logits
// inside the interval output.
func TestIntervalContainsSampledWeightsProperty(t *testing.T) {
	def, n := testNet(t, 5)
	ev, err := NewEvaluator(def)
	if err != nil {
		t.Fatal(err)
	}
	snap := n.Snapshot()
	in := randIn(6, dnn.Shape{C: 2, H: 6, W: 6})

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build bounds: weight ± u for random u, then sample weights inside.
		w := WeightBounds{Lo: map[string]*tensor.Matrix{}, Hi: map[string]*tensor.Matrix{}}
		sampled := map[string]*tensor.Matrix{}
		for name, m := range snap {
			lo := m.Clone()
			hi := m.Clone()
			sm := m.Clone()
			for i := range lo.Data() {
				u := float32(rng.Float64() * 0.05)
				lo.Data()[i] -= u
				hi.Data()[i] += u
				sm.Data()[i] += (rng.Float32()*2 - 1) * u
			}
			w.Lo[name], w.Hi[name] = lo, hi
			sampled[name] = sm
		}
		lo, hi, err := ev.Forward(in, w)
		if err != nil {
			return false
		}
		sLo, sHi, err := ev.Forward(in, ExactWeights(sampled))
		if err != nil {
			return false
		}
		for i := range lo {
			if sLo[i] < lo[i]-1e-3 || sHi[i] > hi[i]+1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKDetermined(t *testing.T) {
	lo := []float32{5, 1, 0}
	hi := []float32{6, 2, 0.5}
	ok, labels := TopKDetermined(lo, hi, 1)
	if !ok || labels[0] != 0 {
		t.Fatalf("ok=%v labels=%v", ok, labels)
	}
	// Overlap between 1st and 2nd: undetermined for k=1.
	lo2 := []float32{5, 4.5}
	hi2 := []float32{6, 5.5}
	if ok, _ := TopKDetermined(lo2, hi2, 1); ok {
		t.Fatal("overlapping ranges must be undetermined")
	}
	// k=2 of 3, clear separation.
	lo3 := []float32{5, 4, 0}
	hi3 := []float32{6, 4.5, 1}
	ok, labels = TopKDetermined(lo3, hi3, 2)
	if !ok || labels[0] != 0 || labels[1] != 1 {
		t.Fatalf("k=2: ok=%v labels=%v", ok, labels)
	}
	if ok, _ := TopKDetermined(lo3, hi3, 0); ok {
		t.Fatal("k=0 must be undetermined")
	}
	if ok, _ := TopKDetermined(lo3, hi3, 4); ok {
		t.Fatal("k>n must be undetermined")
	}
}

// Degenerate intervals are always determined (up to exact ties).
func TestTopKDeterminedExact(t *testing.T) {
	lo := []float32{1, 3, 2}
	ok, labels := TopKDetermined(lo, lo, 1)
	if !ok || labels[0] != 1 {
		t.Fatalf("ok=%v labels=%v", ok, labels)
	}
}

// Progressive evaluation must agree with the full-precision prediction and
// must terminate by prefix 4.
func TestProgressiveMatchesFullPrecision(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	examples := data.Digits(rng, 300, 0.05)
	train, test := data.Split(examples, 0.8)
	def := zoo.LeNet("lenet")
	n, err := dnn.Build(def, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dnn.Train(n, train, dnn.TrainConfig{Epochs: 4, BatchSize: 16, LR: 0.1, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(def)
	if err != nil {
		t.Fatal(err)
	}
	src := NewSegmentedSource(n.Snapshot())
	prefixCounts := map[int]int{}
	for _, ex := range test[:40] {
		res, err := Progressive(ev, src, ex.Input, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if want := n.Predict(ex.Input); res.Labels[0] != want {
			t.Fatalf("progressive label %d != full-precision %d", res.Labels[0], want)
		}
		prefixCounts[res.PrefixUsed]++
	}
	// The paper's headline: most queries should resolve with 1-2 planes.
	if prefixCounts[1]+prefixCounts[2] == 0 {
		t.Fatalf("no query resolved with high-order bytes only: %v", prefixCounts)
	}
}

func TestProgressiveMissingLayer(t *testing.T) {
	def, _ := testNet(t, 10)
	ev, err := NewEvaluator(def)
	if err != nil {
		t.Fatal(err)
	}
	src := SegmentedSource{} // empty: every lookup fails
	if _, err := Progressive(ev, src, randIn(11, dnn.Shape{C: 2, H: 6, W: 6}), 1, 1); err == nil {
		t.Fatal("missing layer weights must error")
	}
}

func TestForwardShapeMismatch(t *testing.T) {
	def, n := testNet(t, 12)
	ev, err := NewEvaluator(def)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ev.Forward(randIn(13, dnn.Shape{C: 1, H: 6, W: 6}), ExactWeights(n.Snapshot())); err == nil {
		t.Fatal("wrong input shape must error")
	}
}

func TestForwardWrongWeightShape(t *testing.T) {
	def, n := testNet(t, 14)
	ev, err := NewEvaluator(def)
	if err != nil {
		t.Fatal(err)
	}
	snap := n.Snapshot()
	snap["conv1"] = tensor.NewMatrix(1, 1)
	if _, _, err := ev.Forward(randIn(15, dnn.Shape{C: 2, H: 6, W: 6}), ExactWeights(snap)); err == nil {
		t.Fatal("wrong weight shape must error")
	}
}

func TestMulInterval(t *testing.T) {
	cases := []struct {
		al, ah, bl, bh, lo, hi float32
	}{
		{1, 2, 3, 4, 3, 8},
		{-2, 1, 3, 4, -8, 4},
		{-2, -1, -4, -3, 3, 8},
		{-1, 1, -1, 1, -1, 1},
		{0, 0, -5, 5, 0, 0},
	}
	for _, c := range cases {
		lo, hi := mulInterval(c.al, c.ah, c.bl, c.bh)
		if lo != c.lo || hi != c.hi {
			t.Errorf("mul([%v,%v],[%v,%v]) = [%v,%v], want [%v,%v]", c.al, c.ah, c.bl, c.bh, lo, hi, c.lo, c.hi)
		}
	}
}

// Interval widths must shrink monotonically as more byte planes are read.
func TestIntervalWidthShrinks(t *testing.T) {
	def, n := testNet(t, 16)
	ev, err := NewEvaluator(def)
	if err != nil {
		t.Fatal(err)
	}
	src := NewSegmentedSource(n.Snapshot())
	in := randIn(17, dnn.Shape{C: 2, H: 6, W: 6})
	prev := float64(-1)
	for prefix := 1; prefix <= 4; prefix++ {
		w := WeightBounds{Lo: map[string]*tensor.Matrix{}, Hi: map[string]*tensor.Matrix{}}
		for _, name := range parametricNames(def) {
			lo, hi, err := src.WeightIntervals(name, prefix)
			if err != nil {
				t.Fatal(err)
			}
			w.Lo[name], w.Hi[name] = lo, hi
		}
		lo, hi, err := ev.Forward(in, w)
		if err != nil {
			t.Fatal(err)
		}
		var width float64
		for i := range lo {
			width += float64(hi[i]) - float64(lo[i])
		}
		if prev >= 0 && width > prev+1e-6 {
			t.Fatalf("prefix %d width %v wider than previous %v", prefix, width, prev)
		}
		prev = width
	}
	if prev > 1e-3 {
		t.Fatalf("prefix-4 intervals should be (near) degenerate, width %v", prev)
	}
}
