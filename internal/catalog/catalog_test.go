package catalog

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func modelSchema() Schema {
	return Schema{Name: "model_version", Columns: []Column{
		{Name: "id", Type: Int, Primary: true},
		{Name: "name", Type: Text, Indexed: true},
		{Name: "accuracy", Type: Float},
		{Name: "frozen", Type: Bool},
	}}
}

func openWith(t *testing.T, rows ...Row) *DB {
	t.Helper()
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(modelSchema()); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := db.Insert("model_version", r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func sample() []Row {
	return []Row{
		{"id": 1, "name": "alexnet_v1", "accuracy": 0.55, "frozen": false},
		{"id": 2, "name": "alexnet_v2", "accuracy": 0.60, "frozen": false},
		{"id": 3, "name": "vgg_v1", "accuracy": 0.70, "frozen": true},
		{"id": 4, "name": "lenet", "accuracy": 0.98, "frozen": false},
	}
}

func TestCreateTableValidation(t *testing.T) {
	db, _ := Open("")
	if err := db.CreateTable(Schema{}); !errors.Is(err, ErrSchema) {
		t.Fatal("empty schema must fail")
	}
	if err := db.CreateTable(Schema{Name: "t", Columns: []Column{{Name: "a", Type: Int}, {Name: "a", Type: Int}}}); !errors.Is(err, ErrSchema) {
		t.Fatal("duplicate column must fail")
	}
	if err := db.CreateTable(Schema{Name: "t", Columns: []Column{{Name: "a", Primary: true}, {Name: "b", Primary: true}}}); !errors.Is(err, ErrSchema) {
		t.Fatal("two pks must fail")
	}
	if err := db.CreateTable(modelSchema()); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(modelSchema()); !errors.Is(err, ErrSchema) {
		t.Fatal("duplicate table must fail")
	}
	if !db.HasTable("model_version") || db.HasTable("nope") {
		t.Fatal("HasTable wrong")
	}
}

func TestInsertAndGet(t *testing.T) {
	db := openWith(t, sample()...)
	row, ok, err := db.Get("model_version", 3)
	if err != nil || !ok {
		t.Fatalf("get: %v %v", ok, err)
	}
	if row["name"] != "vgg_v1" || row["frozen"] != true {
		t.Fatalf("row = %v", row)
	}
	_, ok, err = db.Get("model_version", 99)
	if err != nil || ok {
		t.Fatal("missing pk must return not-found")
	}
	if _, _, err := db.Get("nope", 1); !errors.Is(err, ErrNoTable) {
		t.Fatal("unknown table must error")
	}
}

func TestPrimaryKeyConflict(t *testing.T) {
	db := openWith(t, sample()...)
	err := db.Insert("model_version", Row{"id": 1, "name": "dup"})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("want conflict, got %v", err)
	}
}

func TestTypeChecking(t *testing.T) {
	db := openWith(t)
	if err := db.Insert("model_version", Row{"id": "not-an-int", "name": "x"}); !errors.Is(err, ErrType) {
		t.Fatalf("want ErrType, got %v", err)
	}
	if err := db.Insert("model_version", Row{"id": 9, "ghost": 1}); !errors.Is(err, ErrSchema) {
		t.Fatalf("unknown column must fail, got %v", err)
	}
	// Int->Float coercion is allowed.
	if err := db.Insert("model_version", Row{"id": 9, "name": "x", "accuracy": 1}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectWhere(t *testing.T) {
	db := openWith(t, sample()...)
	rows, err := db.Select("model_version", Query{Where: []Cond{{Col: "accuracy", Op: Ge, Val: 0.6}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	rows, err = db.Select("model_version", Query{Where: []Cond{
		{Col: "accuracy", Op: Gt, Val: 0.56},
		{Col: "frozen", Op: Eq, Val: false},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("conjunction failed: %v", rows)
	}
	rows, err = db.Select("model_version", Query{Where: []Cond{{Col: "name", Op: Ne, Val: "lenet"}}})
	if err != nil || len(rows) != 3 {
		t.Fatalf("Ne: %v %v", rows, err)
	}
}

func TestSelectLike(t *testing.T) {
	db := openWith(t, sample()...)
	rows, err := db.Select("model_version", Query{Where: []Cond{{Col: "name", Op: Like, Val: "alexnet_%"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("LIKE rows = %v", rows)
	}
	rows, err = db.Select("model_version", Query{Where: []Cond{{Col: "name", Op: Like, Val: "%_v1"}}})
	if err != nil || len(rows) != 2 {
		t.Fatalf("suffix LIKE = %v, %v", rows, err)
	}
	rows, err = db.Select("model_version", Query{Where: []Cond{{Col: "name", Op: Like, Val: "lene_"}}})
	if err != nil || len(rows) != 1 {
		t.Fatalf("underscore LIKE = %v, %v", rows, err)
	}
	if _, err := db.Select("model_version", Query{Where: []Cond{{Col: "accuracy", Op: Like, Val: "x"}}}); !errors.Is(err, ErrType) {
		t.Fatal("LIKE on float must fail")
	}
}

func TestOrderByLimit(t *testing.T) {
	db := openWith(t, sample()...)
	rows, err := db.Select("model_version", Query{OrderBy: "accuracy", Desc: true, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0]["name"] != "lenet" || rows[1]["name"] != "vgg_v1" {
		t.Fatalf("ordered = %v", rows)
	}
	rows, err = db.Select("model_version", Query{OrderBy: "name"})
	if err != nil || rows[0]["name"] != "alexnet_v1" {
		t.Fatalf("asc order = %v", rows)
	}
}

func TestUpdate(t *testing.T) {
	db := openWith(t, sample()...)
	n, err := db.Update("model_version", []Cond{{Col: "name", Op: Like, Val: "alexnet%"}}, Row{"frozen": true})
	if err != nil || n != 2 {
		t.Fatalf("update n=%d err=%v", n, err)
	}
	rows, err := db.Select("model_version", Query{Where: []Cond{{Col: "frozen", Op: Eq, Val: true}}})
	if err != nil || len(rows) != 3 {
		t.Fatalf("after update: %v", rows)
	}
	if _, err := db.Update("model_version", nil, Row{"id": 9}); !errors.Is(err, ErrSchema) {
		t.Fatal("pk update must fail")
	}
}

func TestUpdateMaintainsIndex(t *testing.T) {
	db := openWith(t, sample()...)
	if _, err := db.Update("model_version", []Cond{{Col: "id", Op: Eq, Val: 4}}, Row{"name": "lenet5"}); err != nil {
		t.Fatal(err)
	}
	// The indexed lookup must see the new value and not the old.
	rows, err := db.Select("model_version", Query{Where: []Cond{{Col: "name", Op: Eq, Val: "lenet5"}}})
	if err != nil || len(rows) != 1 {
		t.Fatalf("new value lookup: %v %v", rows, err)
	}
	rows, err = db.Select("model_version", Query{Where: []Cond{{Col: "name", Op: Eq, Val: "lenet"}}})
	if err != nil || len(rows) != 0 {
		t.Fatalf("old value lookup: %v %v", rows, err)
	}
}

func TestDelete(t *testing.T) {
	db := openWith(t, sample()...)
	n, err := db.Delete("model_version", []Cond{{Col: "accuracy", Op: Lt, Val: 0.65}})
	if err != nil || n != 2 {
		t.Fatalf("delete n=%d err=%v", n, err)
	}
	c, err := db.Count("model_version", nil)
	if err != nil || c != 2 {
		t.Fatalf("count = %d, %v", c, err)
	}
	// Indexes must be rebuilt: pk lookups still work.
	row, ok, err := db.Get("model_version", 4)
	if err != nil || !ok || row["name"] != "lenet" {
		t.Fatalf("post-delete get: %v %v %v", row, ok, err)
	}
	rows, err := db.Select("model_version", Query{Where: []Cond{{Col: "name", Op: Eq, Val: "vgg_v1"}}})
	if err != nil || len(rows) != 1 {
		t.Fatalf("post-delete indexed lookup: %v", rows)
	}
}

func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.json")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(modelSchema()); err != nil {
		t.Fatal(err)
	}
	for _, r := range sample() {
		if err := db.Insert("model_version", r); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	row, ok, err := db2.Get("model_version", 2)
	if err != nil || !ok || row["name"] != "alexnet_v2" || row["accuracy"] != 0.60 {
		t.Fatalf("reloaded row = %v, %v, %v", row, ok, err)
	}
	// Types must survive the JSON round trip.
	if _, isInt := row["id"].(int64); !isInt {
		t.Fatalf("id type = %T", row["id"])
	}
}

func TestPersistenceCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.json")
	if err := writeFile(path, "{nope"); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("corrupt db file must fail to open")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestRowsAreCopies(t *testing.T) {
	db := openWith(t, sample()...)
	rows, err := db.Select("model_version", Query{Where: []Cond{{Col: "id", Op: Eq, Val: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	rows[0]["name"] = "mutated"
	again, _, err := db.Get("model_version", 1)
	if err != nil || again["name"] != "alexnet_v1" {
		t.Fatal("Select must return copies")
	}
}

func TestLikeMatchProperty(t *testing.T) {
	// A pattern equal to the string (no wildcards) always matches; adding a
	// trailing % keeps it matching any extension.
	f := func(s string, suffix string) bool {
		if len(s) > 20 || len(suffix) > 20 {
			return true
		}
		clean := sanitize(s)
		ext := sanitize(suffix)
		return likeMatch(clean, clean) && likeMatch(clean+"%", clean+ext)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r != '%' && r != '_' {
			out = append(out, r)
		}
	}
	return string(out)
}

func TestLikeMatchCases(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"%", "", true},
		{"%%", "anything", true},
		{"a%b", "ab", true},
		{"a%b", "axxxb", true},
		{"a%b", "axxxc", false},
		{"_", "x", true},
		{"_", "", false},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"", "", true},
		{"", "x", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.pat, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

// Adversarial patterns must stay fast (the iterative matcher is
// O(len(p)*len(s)); the old recursive one was exponential here).
func TestLikeMatchAdversarial(t *testing.T) {
	s := strings.Repeat("a", 2000) + "b"
	p := strings.Repeat("%a", 30) + "%c"
	done := make(chan bool, 1)
	go func() { done <- likeMatch(p, s) }()
	select {
	case got := <-done:
		if got {
			t.Fatal("pattern must not match")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("likeMatch too slow on adversarial input")
	}
	if !likeMatch(strings.Repeat("%a", 30)+"%b", s) {
		t.Fatal("matching adversarial pattern must succeed")
	}
}
