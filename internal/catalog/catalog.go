// Package catalog is a small embedded relational engine — the stdlib-only
// stand-in for the sqlite3 backend the paper's prototype uses (Sec. V). It
// stores the structured side of a DLV repository: model versions, network
// nodes and edges, lineage (parent relation), extracted metadata and
// training logs. It supports typed schemas, primary keys, secondary hash
// indexes, predicate scans with LIKE, ordering, limits, and JSON-file
// persistence.
package catalog

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
)

// ColType enumerates column types.
type ColType int

const (
	// Int is a 64-bit integer column.
	Int ColType = iota
	// Float is a float64 column.
	Float
	// Text is a string column.
	Text
	// Bool is a boolean column.
	Bool
)

// Column describes one table column.
type Column struct {
	Name    string  `json:"name"`
	Type    ColType `json:"type"`
	Primary bool    `json:"primary,omitempty"`
	Indexed bool    `json:"indexed,omitempty"`
}

// Schema describes one table.
type Schema struct {
	Name    string   `json:"name"`
	Columns []Column `json:"columns"`
}

// Row is one record. Values must match the schema's column types: int64,
// float64, string, or bool.
type Row map[string]any

// Errors returned by the engine.
var (
	ErrSchema   = errors.New("catalog: schema error")
	ErrNoTable  = errors.New("catalog: no such table")
	ErrConflict = errors.New("catalog: primary key conflict")
	ErrType     = errors.New("catalog: type mismatch")
)

// DB is an embedded relational database. All methods are safe for
// concurrent use.
type DB struct {
	mu     sync.RWMutex
	path   string // persistence file; "" = in-memory only
	tables map[string]*table
}

type table struct {
	schema  Schema
	rows    []Row
	primary map[any]int      // pk value -> row index (single-column pks)
	indexes map[string]index // column -> value -> row indexes
}

type index map[any][]int

// Open loads a database from path, creating an empty one if the file does
// not exist. Pass "" for a purely in-memory database.
func Open(path string) (*DB, error) {
	db := &DB{path: path, tables: make(map[string]*table)}
	if path == "" {
		return db, nil
	}
	blob, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return db, nil
	}
	if err != nil {
		return nil, fmt.Errorf("catalog: open: %w", err)
	}
	if err := db.loadJSON(blob); err != nil {
		return nil, err
	}
	return db, nil
}

// persisted is the JSON wire form.
type persisted struct {
	Tables []persistedTable `json:"tables"`
}

type persistedTable struct {
	Schema Schema `json:"schema"`
	Rows   []Row  `json:"rows"`
}

func (db *DB) loadJSON(blob []byte) error {
	var p persisted
	if err := json.Unmarshal(blob, &p); err != nil {
		return fmt.Errorf("catalog: corrupt database file: %w", err)
	}
	for _, pt := range p.Tables {
		if err := db.CreateTable(pt.Schema); err != nil {
			return err
		}
		for _, row := range pt.Rows {
			// JSON turns int64 into float64; coerce back per schema.
			coerced, err := coerceRow(pt.Schema, row)
			if err != nil {
				return err
			}
			if err := db.Insert(pt.Schema.Name, coerced); err != nil {
				return err
			}
		}
	}
	return nil
}

// Save writes the database to its backing file (no-op for in-memory).
func (db *DB) Save() error {
	if db.path == "" {
		return nil
	}
	db.mu.RLock()
	var p persisted
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := db.tables[name]
		p.Tables = append(p.Tables, persistedTable{Schema: t.schema, Rows: t.rows})
	}
	db.mu.RUnlock()
	blob, err := json.MarshalIndent(&p, "", " ")
	if err != nil {
		return err
	}
	tmp := db.path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("catalog: save: %w", err)
	}
	return os.Rename(tmp, db.path)
}

// CreateTable registers a new table.
func (db *DB) CreateTable(s Schema) error {
	if s.Name == "" || len(s.Columns) == 0 {
		return fmt.Errorf("%w: empty table name or no columns", ErrSchema)
	}
	seen := map[string]bool{}
	pks := 0
	for _, c := range s.Columns {
		if c.Name == "" || seen[c.Name] {
			return fmt.Errorf("%w: bad column name %q", ErrSchema, c.Name)
		}
		seen[c.Name] = true
		if c.Primary {
			pks++
		}
	}
	if pks > 1 {
		return fmt.Errorf("%w: multiple primary keys", ErrSchema)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[s.Name]; ok {
		return fmt.Errorf("%w: table %q exists", ErrSchema, s.Name)
	}
	t := &table{schema: s, primary: map[any]int{}, indexes: map[string]index{}}
	for _, c := range s.Columns {
		if c.Indexed {
			t.indexes[c.Name] = index{}
		}
	}
	db.tables[s.Name] = t
	return nil
}

// HasTable reports whether a table exists.
func (db *DB) HasTable(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.tables[name]
	return ok
}

func (t *table) pkCol() (string, bool) {
	for _, c := range t.schema.Columns {
		if c.Primary {
			return c.Name, true
		}
	}
	return "", false
}

// checkTypes validates and normalizes a row against the schema.
func coerceRow(s Schema, row Row) (Row, error) {
	out := make(Row, len(s.Columns))
	for _, c := range s.Columns {
		v, ok := row[c.Name]
		if !ok || v == nil {
			continue
		}
		switch c.Type {
		case Int:
			switch x := v.(type) {
			case int64:
				out[c.Name] = x
			case int:
				out[c.Name] = int64(x)
			case float64: // JSON round trip
				out[c.Name] = int64(x)
			default:
				return nil, fmt.Errorf("%w: column %s wants int, got %T", ErrType, c.Name, v)
			}
		case Float:
			var f float64
			switch x := v.(type) {
			case float64:
				f = x
			case int64:
				f = float64(x)
			case int:
				f = float64(x)
			default:
				return nil, fmt.Errorf("%w: column %s wants float, got %T", ErrType, c.Name, v)
			}
			// JSON persistence cannot represent non-finite values; reject
			// them here with a clear error rather than failing at Save.
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return nil, fmt.Errorf("%w: column %s: non-finite float %v", ErrType, c.Name, f)
			}
			out[c.Name] = f
		case Text:
			x, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("%w: column %s wants text, got %T", ErrType, c.Name, v)
			}
			out[c.Name] = x
		case Bool:
			x, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("%w: column %s wants bool, got %T", ErrType, c.Name, v)
			}
			out[c.Name] = x
		}
	}
	for k := range row {
		found := false
		for _, c := range s.Columns {
			if c.Name == k {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: unknown column %q", ErrSchema, k)
		}
	}
	return out, nil
}

// Insert appends a row.
func (db *DB) Insert(tableName string, row Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	coerced, err := coerceRow(t.schema, row)
	if err != nil {
		return err
	}
	if pk, has := t.pkCol(); has {
		v, ok := coerced[pk]
		if !ok {
			return fmt.Errorf("%w: missing primary key %q", ErrSchema, pk)
		}
		if _, dup := t.primary[v]; dup {
			return fmt.Errorf("%w: %s=%v", ErrConflict, pk, v)
		}
		t.primary[v] = len(t.rows)
	}
	for col, idx := range t.indexes {
		if v, ok := coerced[col]; ok {
			idx[v] = append(idx[v], len(t.rows))
		}
	}
	t.rows = append(t.rows, coerced)
	return nil
}

// Get fetches a row by primary key.
func (db *DB) Get(tableName string, pk any) (Row, bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return nil, false, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	pkv := normalizeKey(pk)
	i, ok := t.primary[pkv]
	if !ok {
		return nil, false, nil
	}
	return cloneRow(t.rows[i]), true, nil
}

func normalizeKey(v any) any {
	if x, ok := v.(int); ok {
		return int64(x)
	}
	return v
}

func cloneRow(r Row) Row {
	out := make(Row, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}
