package catalog

import (
	"fmt"
	"sort"
)

// CmpOp enumerates predicate operators.
type CmpOp string

// Supported predicate operators.
const (
	Eq   CmpOp = "="
	Ne   CmpOp = "!="
	Lt   CmpOp = "<"
	Le   CmpOp = "<="
	Gt   CmpOp = ">"
	Ge   CmpOp = ">="
	Like CmpOp = "LIKE" // SQL LIKE with % and _ wildcards, text columns only
)

// Cond is one conjunct of a WHERE clause.
type Cond struct {
	Col string
	Op  CmpOp
	Val any
}

// Query is a conjunctive select over one table.
type Query struct {
	Where   []Cond
	OrderBy string // column name; "" = insertion order
	Desc    bool
	Limit   int // 0 = unlimited
}

// Select scans the table and returns matching rows (copies).
func (db *DB) Select(tableName string, q Query) ([]Row, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	candidates, err := t.candidateRows(q.Where)
	if err != nil {
		return nil, err
	}
	var out []Row
	for _, i := range candidates {
		row := t.rows[i]
		match := true
		for _, c := range q.Where {
			ok, err := evalCond(row, c)
			if err != nil {
				return nil, err
			}
			if !ok {
				match = false
				break
			}
		}
		if match {
			out = append(out, cloneRow(row))
		}
	}
	if q.OrderBy != "" {
		col := q.OrderBy
		// The comparator cannot propagate, so the first mixed-type error is
		// captured and returned after the sort.
		var sortErr error
		sort.SliceStable(out, func(a, b int) bool {
			less, err := lessValue(out[a][col], out[b][col])
			if err != nil && sortErr == nil {
				sortErr = err
			}
			if q.Desc {
				return !less && !equalValue(out[a][col], out[b][col])
			}
			return less
		})
		if sortErr != nil {
			return nil, fmt.Errorf("ordering by %q: %w", col, sortErr)
		}
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out, nil
}

// Count returns the number of rows matching the conditions.
func (db *DB) Count(tableName string, where []Cond) (int, error) {
	rows, err := db.Select(tableName, Query{Where: where})
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

// Update modifies all matching rows with the given assignments and returns
// the number updated. Primary key columns cannot be updated.
func (db *DB) Update(tableName string, where []Cond, set Row) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	if pk, has := t.pkCol(); has {
		if _, touches := set[pk]; touches {
			return 0, fmt.Errorf("%w: cannot update primary key %q", ErrSchema, pk)
		}
	}
	coerced, err := coerceRow(t.schema, set)
	if err != nil {
		return 0, err
	}
	n := 0
	for i := range t.rows {
		match := true
		for _, c := range where {
			ok, err := evalCond(t.rows[i], c)
			if err != nil {
				return n, err
			}
			if !ok {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		for col, v := range coerced {
			if idx, indexed := t.indexes[col]; indexed {
				removeFromIndex(idx, t.rows[i][col], i)
				idx[v] = append(idx[v], i)
			}
			t.rows[i][col] = v
		}
		n++
	}
	return n, nil
}

// Delete removes all matching rows and returns the number removed.
func (db *DB) Delete(tableName string, where []Cond) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	var kept []Row
	removed := 0
	for i := range t.rows {
		match := true
		for _, c := range where {
			ok, err := evalCond(t.rows[i], c)
			if err != nil {
				return removed, err
			}
			if !ok {
				match = false
				break
			}
		}
		if match {
			removed++
		} else {
			kept = append(kept, t.rows[i])
		}
	}
	if removed > 0 {
		t.rows = kept
		t.rebuildIndexes()
	}
	return removed, nil
}

func (t *table) rebuildIndexes() {
	t.primary = map[any]int{}
	for col := range t.indexes {
		t.indexes[col] = index{}
	}
	pk, hasPK := t.pkCol()
	for i, row := range t.rows {
		if hasPK {
			if v, ok := row[pk]; ok {
				t.primary[v] = i
			}
		}
		for col, idx := range t.indexes {
			if v, ok := row[col]; ok {
				idx[v] = append(idx[v], i)
			}
		}
	}
}

func removeFromIndex(idx index, val any, rowIdx int) {
	rows := idx[val]
	for i, r := range rows {
		if r == rowIdx {
			idx[val] = append(rows[:i], rows[i+1:]...)
			return
		}
	}
}

// candidateRows narrows the scan using an index when an equality condition
// hits an indexed (or primary key) column.
func (t *table) candidateRows(where []Cond) ([]int, error) {
	pk, hasPK := t.pkCol()
	for _, c := range where {
		if c.Op != Eq {
			continue
		}
		v := normalizeKey(c.Val)
		if hasPK && c.Col == pk {
			if i, ok := t.primary[v]; ok {
				return []int{i}, nil
			}
			return nil, nil
		}
		if idx, ok := t.indexes[c.Col]; ok {
			return append([]int(nil), idx[v]...), nil
		}
	}
	all := make([]int, len(t.rows))
	for i := range all {
		all[i] = i
	}
	return all, nil
}

func evalCond(row Row, c Cond) (bool, error) {
	v, ok := row[c.Col]
	if !ok {
		return false, nil // NULL matches nothing
	}
	want := normalizeKey(c.Val)
	switch c.Op {
	case Eq:
		return equalValue(v, want), nil
	case Ne:
		return !equalValue(v, want), nil
	case Lt, Le, Gt, Ge:
		less, err := lessValue(v, want)
		if err != nil {
			return false, err
		}
		eq := equalValue(v, want)
		switch c.Op {
		case Lt:
			return less && !eq, nil
		case Le:
			return less || eq, nil
		case Gt:
			return !less && !eq, nil
		default:
			return !less || eq, nil
		}
	case Like:
		s, okS := v.(string)
		pat, okP := want.(string)
		if !okS || !okP {
			return false, fmt.Errorf("%w: LIKE needs text operands", ErrType)
		}
		return likeMatch(pat, s), nil
	default:
		return false, fmt.Errorf("catalog: unknown operator %q", c.Op)
	}
}

func equalValue(a, b any) bool {
	a, b = widen(a), widen(b)
	return a == b
}

// widen promotes int64 to float64 so int/float comparisons behave like SQL.
func widen(v any) any {
	if x, ok := v.(int64); ok {
		return float64(x)
	}
	if x, ok := v.(int); ok {
		return float64(x)
	}
	return v
}

func lessValue(a, b any) (bool, error) {
	aw, bw := widen(a), widen(b)
	switch x := aw.(type) {
	case float64:
		y, ok := bw.(float64)
		if !ok {
			return false, fmt.Errorf("%w: comparing %T with %T", ErrType, a, b)
		}
		return x < y, nil
	case string:
		y, ok := bw.(string)
		if !ok {
			return false, fmt.Errorf("%w: comparing %T with %T", ErrType, a, b)
		}
		return x < y, nil
	case bool:
		y, ok := bw.(bool)
		if !ok {
			return false, fmt.Errorf("%w: comparing %T with %T", ErrType, a, b)
		}
		return !x && y, nil
	default:
		return false, fmt.Errorf("%w: unorderable type %T", ErrType, a)
	}
}

// likeMatch implements SQL LIKE: % matches any run, _ matches one byte.
// Iterative with single-star backtracking — O(len(p)·len(s)) worst case, so
// adversarial patterns like "%a%a%a%…" cannot blow the stack or go
// exponential.
func likeMatch(p, s string) bool {
	i, j := 0, 0          // positions in s and p
	starP, starS := -1, 0 // last % in p and the s position it matched up to
	for i < len(s) {
		switch {
		case j < len(p) && (p[j] == s[i] || p[j] == '_'):
			i++
			j++
		case j < len(p) && p[j] == '%':
			starP, starS = j, i
			j++
		case starP >= 0:
			// Backtrack: let the last % swallow one more byte.
			starS++
			i = starS
			j = starP + 1
		default:
			return false
		}
	}
	for j < len(p) && p[j] == '%' {
		j++
	}
	return j == len(p)
}
