package catalog

import (
	"fmt"
	"sync"
	"testing"
)

// The catalog backs concurrent dlv commands; hammer it from many goroutines
// (run with -race).
func TestConcurrentInsertSelect(t *testing.T) {
	db := openWith(t)
	var wg sync.WaitGroup
	const writers, rows = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rows; i++ {
				err := db.Insert("model_version", Row{
					"id":       int64(w*rows + i),
					"name":     fmt.Sprintf("m%d-%d", w, i),
					"accuracy": float64(i) / rows,
				})
				if err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	// Readers run concurrently with the writers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := db.Select("model_version", Query{
					Where: []Cond{{Col: "accuracy", Op: Ge, Val: 0.5}},
				}); err != nil {
					t.Errorf("select: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	n, err := db.Count("model_version", nil)
	if err != nil || n != writers*rows {
		t.Fatalf("count = %d, %v", n, err)
	}
}

func TestConcurrentUpdateDelete(t *testing.T) {
	db := openWith(t)
	for i := 0; i < 200; i++ {
		if err := db.Insert("model_version", Row{"id": int64(i), "name": fmt.Sprintf("m%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := int64(w*50 + i)
				if _, err := db.Update("model_version",
					[]Cond{{Col: "id", Op: Eq, Val: id}}, Row{"accuracy": 0.5}); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, _, err := db.Get("model_version", int64(i)); err != nil {
				t.Errorf("get: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}
