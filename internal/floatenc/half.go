package floatenc

import (
	"encoding/binary"
	"fmt"
	"math"
)

// IEEE 754 half-precision and bfloat16 conversions. Implemented from the bit
// definitions (stdlib has no half type). Rounding is round-to-nearest-even
// for float16; bfloat16 uses the same rounding on the retained 8-bit
// mantissa, matching common "truncated float32" implementations.

// float32ToHalf converts f to the nearest IEEE 754 binary16 value.
func float32ToHalf(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xff) - 127
	mant := b & 0x7fffff

	switch {
	case exp == 128: // Inf or NaN
		if mant != 0 {
			// Preserve a quiet NaN; keep the top mantissa bits so the
			// payload survives a round trip at least approximately.
			return sign | 0x7e00 | uint16(mant>>13) | 1
		}
		return sign | 0x7c00
	case exp > 15: // overflow -> Inf
		return sign | 0x7c00
	case exp >= -14: // normal range
		// 10-bit mantissa with round-to-nearest-even on the dropped 13 bits.
		half := (uint32(exp+15) << 10) | (mant >> 13)
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
			half++ // may carry into the exponent; that is the correct rounding
		}
		return sign | uint16(half)
	case exp >= -24: // subnormal half
		// The subnormal code is m_h = 1.mant * 2^(exp+24); with the 24-bit
		// significand `full` representing 1.mant * 2^23 that is full >> (-exp-1).
		shift := uint32(-exp - 1) // 14..23
		full := mant | 0x800000   // implicit leading 1
		half := full >> shift
		rem := full & ((1 << shift) - 1)
		tie := uint32(1) << (shift - 1)
		if rem > tie || (rem == tie && half&1 == 1) {
			half++ // may carry into the minimum normal; the bit layout handles it
		}
		return sign | uint16(half)
	default: // underflow -> signed zero
		return sign
	}
}

// halfToFloat32 converts an IEEE 754 binary16 bit pattern to float32.
func halfToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// subnormal: normalize
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		return math.Float32frombits(sign | 0xff<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// float32ToBFloat16 converts f to bfloat16 (top 16 float32 bits) with
// round-to-nearest-even.
func float32ToBFloat16(f float32) uint16 {
	b := math.Float32bits(f)
	if b&0x7f800000 == 0x7f800000 && b&0x7fffff != 0 {
		return uint16(b>>16) | 0x0040 // keep NaN quiet after truncation
	}
	rem := b & 0xffff
	hi := b >> 16
	if rem > 0x8000 || (rem == 0x8000 && hi&1 == 1) {
		hi++
	}
	return uint16(hi)
}

// bfloat16ToFloat32 expands a bfloat16 bit pattern back to float32.
func bfloat16ToFloat32(h uint16) float32 {
	return math.Float32frombits(uint32(h) << 16)
}

// encodeHalf packs each value through conv into little-endian uint16s.
func encodeHalf(vals []float32, conv func(float32) uint16) []byte {
	out := make([]byte, 2*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint16(out[2*i:], conv(v))
	}
	return out
}

// decodeHalf unpacks n little-endian uint16s through conv.
func decodeHalf(payload []byte, n int, conv func(uint16) float32) ([]float32, error) {
	if len(payload) != 2*n {
		return nil, fmt.Errorf("floatenc: half payload %d bytes, want %d", len(payload), 2*n)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = conv(binary.LittleEndian.Uint16(payload[2*i:]))
	}
	return out, nil
}
