package floatenc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"modelhub/internal/tensor"
)

func TestSegmentReconstructExact(t *testing.T) {
	m := randMat(20, 17, 13)
	s := Segment(m)
	got, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("segmentation round trip must be exact")
	}
}

func TestSegmentPlaneSizes(t *testing.T) {
	m := randMat(21, 4, 6)
	s := Segment(m)
	for p := 0; p < NumPlanes; p++ {
		if len(s.Planes[p]) != 24 {
			t.Fatalf("plane %d has %d bytes", p, len(s.Planes[p]))
		}
	}
	s.Planes[2] = s.Planes[2][:5]
	if err := s.Validate(); err == nil {
		t.Fatal("Validate must reject inconsistent plane sizes")
	}
}

// The central soundness invariant for progressive evaluation: the true value
// always lies inside the interval derived from any plane prefix.
func TestIntervalSoundnessProperty(t *testing.T) {
	f := func(seed int64, prefix8 uint8) bool {
		prefix := int(prefix8%4) + 1
		rng := rand.New(rand.NewSource(seed))
		m := tensor.RandNormal(rng, 1+rng.Intn(5), 1+rng.Intn(5), math.Pow(10, float64(rng.Intn(5))-2))
		s := Segment(m)
		lo, hi, err := s.Intervals(prefix)
		if err != nil {
			return false
		}
		for i, v := range m.Data() {
			if !(lo.Data()[i] <= v && v <= hi.Data()[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalFullPrefixIsExact(t *testing.T) {
	m := randMat(22, 8, 8)
	s := Segment(m)
	lo, hi, err := s.Intervals(4)
	if err != nil {
		t.Fatal(err)
	}
	if !lo.Equal(m) || !hi.Equal(m) {
		t.Fatal("prefix=4 intervals must collapse to the exact value")
	}
}

func TestIntervalWidthShrinksWithPrefix(t *testing.T) {
	m := randMat(23, 10, 10)
	s := Segment(m)
	prevWidth := math.Inf(1)
	for prefix := 1; prefix <= 4; prefix++ {
		lo, hi, err := s.Intervals(prefix)
		if err != nil {
			t.Fatal(err)
		}
		var width float64
		for i := range lo.Data() {
			width += float64(hi.Data()[i]) - float64(lo.Data()[i])
		}
		if width > prevWidth {
			t.Fatalf("prefix %d interval width %v wider than previous %v", prefix, width, prevWidth)
		}
		prevWidth = width
	}
}

func TestIntervalNegativeValues(t *testing.T) {
	m := tensor.MustFromSlice(1, 2, []float32{-1.5, -1e-20})
	s := Segment(m)
	lo, hi, err := s.Intervals(1)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range m.Data() {
		if !(lo.Data()[i] <= v && v <= hi.Data()[i]) {
			t.Fatalf("elem %d (%v) outside [%v, %v]", i, v, lo.Data()[i], hi.Data()[i])
		}
	}
	if hi.Data()[0] > 0 {
		t.Fatalf("negative value with known high byte should stay negative, hi = %v", hi.Data()[0])
	}
}

func TestIntervalInfNaNWidening(t *testing.T) {
	m := tensor.MustFromSlice(1, 2, []float32{float32(math.Inf(1)), float32(math.NaN())})
	s := Segment(m)
	lo, hi, err := s.Intervals(1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(float64(hi.Data()[0]), 1) {
		t.Fatal("interval containing +Inf pattern must widen hi to +Inf")
	}
	_ = lo
}

func TestIntervalsBadPrefix(t *testing.T) {
	s := Segment(randMat(24, 2, 2))
	if _, _, err := s.Intervals(0); err == nil {
		t.Fatal("prefix 0 must error")
	}
	if _, _, err := s.Intervals(5); err == nil {
		t.Fatal("prefix 5 must error")
	}
}

func TestTruncatedMatchesIntervalLo(t *testing.T) {
	m := randMat(25, 6, 6)
	s := Segment(m)
	tr, err := s.Truncated(2)
	if err != nil {
		t.Fatal(err)
	}
	lo, _, err := s.Intervals(2)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(lo) {
		t.Fatal("Truncated must equal the interval lower reconstruction")
	}
}

// High-order planes must have lower entropy than low-order planes for
// realistic (clustered) weight distributions — the premise of segmentation.
func TestPlaneEntropyOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := tensor.RandNormal(rng, 100, 100, 0.05)
	s := Segment(m)
	e0 := s.PlaneEntropy(0)
	e3 := s.PlaneEntropy(3)
	if e0 >= e3 {
		t.Fatalf("high plane entropy %v should be below low plane entropy %v", e0, e3)
	}
	if e3 < 7.5 {
		t.Fatalf("low-order plane of gaussian weights should be near-random, got %v", e3)
	}
}

func TestHighPlanesCompressBetter(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	m := tensor.RandNormal(rng, 128, 128, 0.02)
	s := Segment(m)
	c0, err := CompressedSize(s.Planes[0])
	if err != nil {
		t.Fatal(err)
	}
	c3, err := CompressedSize(s.Planes[3])
	if err != nil {
		t.Fatal(err)
	}
	if c0 >= c3 {
		t.Fatalf("high plane compressed %d should beat low plane %d", c0, c3)
	}
}

func TestDeflateInflateRoundTrip(t *testing.T) {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i % 7)
	}
	for _, level := range []int{1, 6, 9} {
		z, err := Deflate(data, level)
		if err != nil {
			t.Fatal(err)
		}
		if len(z) >= len(data) {
			t.Fatalf("level %d: repetitive data should compress (%d >= %d)", level, len(z), len(data))
		}
		back, err := Inflate(z)
		if err != nil {
			t.Fatal(err)
		}
		if string(back) != string(data) {
			t.Fatal("inflate mismatch")
		}
	}
}

func TestInflateGarbage(t *testing.T) {
	if _, err := Inflate([]byte{1, 2, 3}); err == nil {
		t.Fatal("want error for garbage zlib data")
	}
}

func TestNormalizeAlignsExponents(t *testing.T) {
	m := randMat(26, 30, 30)
	norm, off := Normalize(m)
	if off <= 0 {
		t.Fatalf("offset = %v", off)
	}
	// All normalized values must share sign and exponent bits.
	first := math.Float32bits(norm.Data()[0]) >> 23
	for i, v := range norm.Data() {
		if math.Float32bits(v)>>23 != first {
			t.Fatalf("elem %d: exponent/sign %x differs from %x", i, math.Float32bits(v)>>23, first)
		}
	}
	back := Denormalize(norm, off)
	if !back.ApproxEqual(m, off*1e-6) {
		t.Fatal("denormalize should approximately invert")
	}
}

func TestNormalizeHelpsCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	m := tensor.RandNormal(rng, 100, 100, 0.3)
	raw, err := CompressedSize(m.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	norm, _ := Normalize(m)
	nc, err := CompressedSize(norm.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if nc >= raw {
		t.Fatalf("normalized %d should compress better than raw %d", nc, raw)
	}
}

func TestNormalizeOffsetDegenerate(t *testing.T) {
	if off := NormalizeOffset(0); off <= 0 {
		t.Fatalf("offset for 0 absmax = %v", off)
	}
	if off := NormalizeOffset(float32(math.Inf(1))); off <= 0 || math.IsInf(float64(off), 0) {
		t.Fatalf("offset for Inf absmax = %v", off)
	}
}

func TestNormalizeNaN(t *testing.T) {
	m := tensor.MustFromSlice(1, 2, []float32{1, float32(math.NaN())})
	norm, off := Normalize(m)
	if math.IsNaN(float64(norm.Data()[1])) {
		t.Fatal("NaN should be replaced during normalization")
	}
	_ = off
}
