package floatenc_test

import (
	"fmt"

	"modelhub/internal/floatenc"
	"modelhub/internal/tensor"
)

// Encoding a weight matrix with a lossy scheme trades precision for
// footprint (paper Fig 6(a)).
func ExampleEncode() {
	m := tensor.MustFromSlice(1, 4, []float32{0.5, -0.25, 0.125, 0})
	enc, err := floatenc.Encode(floatenc.Scheme{Kind: floatenc.Fixed, Bits: 8}, m)
	if err != nil {
		panic(err)
	}
	dec, err := floatenc.Decode(enc)
	if err != nil {
		panic(err)
	}
	fmt.Println(enc.Scheme, dec.Data())
	// Output: fixed-8 [0.5 -0.25 0.125 0]
}

// Byte-plane segmentation splits a float matrix into four planes; a prefix
// of planes bounds every value in an interval (paper Sec. IV-B).
func ExampleSegment() {
	m := tensor.MustFromSlice(1, 2, []float32{1.5, -2.25})
	seg := floatenc.Segment(m)
	exact, _ := seg.Reconstruct()
	lo, hi, _ := seg.Intervals(2) // top two byte planes only
	fmt.Println(exact.Data())
	fmt.Printf("%.4f..%.4f contains %v\n", lo.At(0, 0), hi.At(0, 0), m.At(0, 0))
	// Output:
	// [1.5 -2.25]
	// 1.5000..1.5078 contains 1.5
}
