// Package floatenc implements the float representation schemes and the
// bytewise segmentation that the Parameter Archival Store uses to trade
// storage for accuracy (paper Sec. IV-B).
//
// Schemes:
//   - Float32: lossless IEEE 754 single precision.
//   - Float16: IEEE 754 half precision (lossy).
//   - BFloat16: truncated single precision, the "tensorflow truncated
//     16 bits" the paper mentions (lossy).
//   - Fixed-point: one global exponent per matrix, k-bit signed mantissas.
//   - Quantization: k <= 8 bits per value with a coding table, either
//     uniform binning or random codebook sampling.
//
// Independently of the value scheme, a float32 matrix can be *segmented*
// bytewise into four one-byte planes (high-order first). High-order planes
// have low entropy and compress well; low-order planes can be kept remote or
// skipped entirely, in which case each value is only known to lie in an
// interval (see Segmented.Intervals and package perturb).
package floatenc

import (
	"errors"
	"fmt"

	"modelhub/internal/tensor"
)

// Kind identifies a float representation scheme.
type Kind uint8

const (
	// Float32 stores full IEEE 754 single-precision bits (lossless).
	Float32 Kind = iota
	// Float16 stores IEEE 754 half-precision values.
	Float16
	// BFloat16 stores the high 16 bits of the float32 pattern.
	BFloat16
	// Fixed stores k-bit signed fixed-point mantissas with a global
	// per-matrix exponent.
	Fixed
	// QuantUniform stores k-bit codes into a uniformly spaced code table.
	QuantUniform
	// QuantRandom stores k-bit codes into a randomly sampled code table.
	QuantRandom
)

// String returns the scheme name used in experiment reports.
func (k Kind) String() string {
	switch k {
	case Float32:
		return "float32"
	case Float16:
		return "float16"
	case BFloat16:
		return "bfloat16"
	case Fixed:
		return "fixed"
	case QuantUniform:
		return "quant-uniform"
	case QuantRandom:
		return "quant-random"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Scheme is a concrete encoding configuration. Bits is the per-value bit
// width for Fixed and the code width for the quantization kinds; it is
// ignored by the full- and half-precision kinds.
type Scheme struct {
	Kind Kind
	Bits int
}

// ErrScheme reports an invalid scheme configuration.
var ErrScheme = errors.New("floatenc: invalid scheme")

// Validate checks that the scheme configuration is usable.
func (s Scheme) Validate() error {
	switch s.Kind {
	case Float32, Float16, BFloat16:
		return nil
	case Fixed:
		if s.Bits < 2 || s.Bits > 32 {
			return fmt.Errorf("%w: fixed-point bits %d outside [2,32]", ErrScheme, s.Bits)
		}
		return nil
	case QuantUniform, QuantRandom:
		if s.Bits < 1 || s.Bits > 8 {
			return fmt.Errorf("%w: quantization bits %d outside [1,8]", ErrScheme, s.Bits)
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrScheme, s.Kind)
	}
}

// String renders e.g. "fixed-8" or "float16".
func (s Scheme) String() string {
	switch s.Kind {
	case Fixed, QuantUniform, QuantRandom:
		return fmt.Sprintf("%s-%d", s.Kind, s.Bits)
	default:
		return s.Kind.String()
	}
}

// BitsPerValue returns the uncompressed storage width of one value under
// this scheme (excluding table overhead).
func (s Scheme) BitsPerValue() int {
	switch s.Kind {
	case Float32:
		return 32
	case Float16, BFloat16:
		return 16
	default:
		return s.Bits
	}
}

// Lossy reports whether the scheme can lose information.
func (s Scheme) Lossy() bool { return s.Kind != Float32 }

// Encoded is a matrix encoded under some Scheme. Payload layout depends on
// the scheme; Table holds the quantization code table, Exp the fixed-point
// global exponent.
type Encoded struct {
	Scheme     Scheme
	Rows, Cols int
	Payload    []byte
	Table      []float32
	Exp        int32
}

// RawBits returns the uncompressed payload size in bits (including table).
func (e *Encoded) RawBits() int {
	return 8*len(e.Payload) + 32*len(e.Table)
}

// Encode encodes m under scheme s.
func Encode(s Scheme, m *tensor.Matrix) (*Encoded, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	e := &Encoded{Scheme: s, Rows: m.Rows(), Cols: m.Cols()}
	switch s.Kind {
	case Float32:
		e.Payload = m.Bytes()
	case Float16:
		e.Payload = encodeHalf(m.Data(), float32ToHalf)
	case BFloat16:
		e.Payload = encodeHalf(m.Data(), float32ToBFloat16)
	case Fixed:
		e.Payload, e.Exp = encodeFixed(m.Data(), s.Bits)
	case QuantUniform:
		e.Payload, e.Table = encodeQuantUniform(m.Data(), s.Bits)
	case QuantRandom:
		e.Payload, e.Table = encodeQuantRandom(m.Data(), s.Bits)
	}
	return e, nil
}

// Decode reconstructs the (possibly lossy) matrix from e.
func Decode(e *Encoded) (*tensor.Matrix, error) {
	if err := e.Scheme.Validate(); err != nil {
		return nil, err
	}
	n := e.Rows * e.Cols
	switch e.Scheme.Kind {
	case Float32:
		return tensor.FromBytes(e.Rows, e.Cols, e.Payload)
	case Float16:
		vals, err := decodeHalf(e.Payload, n, halfToFloat32)
		if err != nil {
			return nil, err
		}
		return tensor.FromSlice(e.Rows, e.Cols, vals)
	case BFloat16:
		vals, err := decodeHalf(e.Payload, n, bfloat16ToFloat32)
		if err != nil {
			return nil, err
		}
		return tensor.FromSlice(e.Rows, e.Cols, vals)
	case Fixed:
		vals, err := decodeFixed(e.Payload, n, e.Scheme.Bits, e.Exp)
		if err != nil {
			return nil, err
		}
		return tensor.FromSlice(e.Rows, e.Cols, vals)
	case QuantUniform, QuantRandom:
		vals, err := decodeQuant(e.Payload, n, e.Scheme.Bits, e.Table)
		if err != nil {
			return nil, err
		}
		return tensor.FromSlice(e.Rows, e.Cols, vals)
	default:
		return nil, ErrScheme
	}
}
