package floatenc

import (
	"fmt"
	"math"

	"modelhub/internal/tensor"
)

// Bytewise segmentation (paper Sec. IV-B): a float32 matrix is stored as
// four one-byte planes. Plane 0 holds the most significant byte of every
// value (sign + 7 exponent bits), plane 3 the least significant mantissa
// byte. High-order planes have low entropy and compress well; low-order
// planes can be offloaded or skipped. Reading only a prefix of planes gives,
// for every element, an interval guaranteed to contain the true value —
// the foundation of the progressive evaluation scheme (Sec. IV-D).

// NumPlanes is the number of byte planes in a segmented float32 matrix.
const NumPlanes = 4

// Segmented is a bytewise-segmented float32 matrix.
type Segmented struct {
	Rows, Cols int
	// Planes[i] has Rows*Cols bytes; Planes[0] is the high-order byte.
	Planes [NumPlanes][]byte
}

// Segment splits m into byte planes.
func Segment(m *tensor.Matrix) *Segmented {
	n := m.Len()
	s := &Segmented{Rows: m.Rows(), Cols: m.Cols()}
	for p := 0; p < NumPlanes; p++ {
		s.Planes[p] = make([]byte, n)
	}
	for i, v := range m.Data() {
		b := math.Float32bits(v)
		s.Planes[0][i] = byte(b >> 24)
		s.Planes[1][i] = byte(b >> 16)
		s.Planes[2][i] = byte(b >> 8)
		s.Planes[3][i] = byte(b)
	}
	return s
}

// Validate checks plane sizes against the declared shape.
func (s *Segmented) Validate() error {
	n := s.Rows * s.Cols
	for p, plane := range s.Planes {
		if len(plane) != n {
			return fmt.Errorf("floatenc: plane %d has %d bytes, want %d", p, len(plane), n)
		}
	}
	return nil
}

// Reconstruct reassembles the exact matrix from all four planes.
func (s *Segmented) Reconstruct() (*tensor.Matrix, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m := tensor.NewMatrix(s.Rows, s.Cols)
	d := m.Data()
	for i := range d {
		b := uint32(s.Planes[0][i])<<24 | uint32(s.Planes[1][i])<<16 |
			uint32(s.Planes[2][i])<<8 | uint32(s.Planes[3][i])
		d[i] = math.Float32frombits(b)
	}
	return m, nil
}

// Truncated returns the matrix obtained by zero-filling all planes below the
// given prefix count (1..4). With prefix=4 it equals Reconstruct.
func (s *Segmented) Truncated(prefix int) (*tensor.Matrix, error) {
	lo, _, err := s.Intervals(prefix)
	return lo, err
}

// Intervals returns, for a prefix of planes (1..4), two matrices lo and hi
// such that for every element the true full-precision value v satisfies
// lo <= v <= hi. Exponent patterns that could be Inf/NaN are widened to the
// appropriate signed infinity so the guarantee always holds.
func (s *Segmented) Intervals(prefix int) (lo, hi *tensor.Matrix, err error) {
	if prefix < 1 || prefix > NumPlanes {
		return nil, nil, fmt.Errorf("floatenc: plane prefix %d outside [1,%d]", prefix, NumPlanes)
	}
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	n := s.Rows * s.Cols
	lo = tensor.NewMatrix(s.Rows, s.Cols)
	hi = tensor.NewMatrix(s.Rows, s.Cols)
	ld, hd := lo.Data(), hi.Data()
	unknown := uint32(0)
	if prefix < NumPlanes {
		unknown = 1<<uint(8*(NumPlanes-prefix)) - 1
	}
	for i := 0; i < n; i++ {
		var known uint32
		for p := 0; p < prefix; p++ {
			known |= uint32(s.Planes[p][i]) << uint(8*(NumPlanes-1-p))
		}
		minBits := known           // all unknown bits zero
		maxBits := known | unknown // all unknown bits one
		// For non-negative bit patterns the float ordering matches the bit
		// ordering; for negative patterns it is reversed.
		var a, b float32
		if known&0x80000000 == 0 {
			a, b = bitsToBound(minBits, false), bitsToBound(maxBits, false)
		} else {
			a, b = bitsToBound(maxBits, true), bitsToBound(minBits, true)
		}
		ld[i], hd[i] = a, b
	}
	return lo, hi, nil
}

// bitsToBound interprets a bound bit pattern, widening Inf/NaN exponent
// patterns to signed infinity (neg selects the sign for the widened value).
func bitsToBound(bits uint32, neg bool) float32 {
	if bits&0x7f800000 == 0x7f800000 { // Inf or NaN pattern
		if neg {
			return float32(math.Inf(-1))
		}
		return float32(math.Inf(1))
	}
	return math.Float32frombits(bits)
}

// PlaneEntropy returns the Shannon entropy (bits per byte) of plane p. The
// paper's segmentation argument rests on high-order planes having low
// entropy; this is exposed for the experiment reports.
func (s *Segmented) PlaneEntropy(p int) float64 {
	plane := s.Planes[p]
	if len(plane) == 0 {
		return 0
	}
	var counts [256]int
	for _, b := range plane {
		counts[b]++
	}
	total := float64(len(plane))
	e := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		pr := float64(c) / total
		e -= pr * math.Log2(pr)
	}
	return e
}
