package floatenc

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary format for an Encoded matrix:
//
//	magic   uint32 'M','H','E','0'
//	kind    uint8
//	bits    uint8
//	_pad    uint16
//	rows    uint32
//	cols    uint32
//	exp     int32
//	tableN  uint32, then tableN float32 bit patterns
//	payload uint32 length, then payload bytes
const encodedMagic uint32 = 0x4d484530 // "MHE0"

// MarshalBinary implements encoding.BinaryMarshaler.
func (e *Encoded) MarshalBinary() ([]byte, error) {
	if err := e.Scheme.Validate(); err != nil {
		return nil, err
	}
	out := make([]byte, 0, 28+4*len(e.Table)+len(e.Payload))
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], encodedMagic)
	hdr[4] = byte(e.Scheme.Kind)
	hdr[5] = byte(e.Scheme.Bits)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(e.Rows))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(e.Cols))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(e.Exp))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(len(e.Table)))
	out = append(out, hdr[:]...)
	for _, v := range e.Table {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
		out = append(out, b[:]...)
	}
	var plen [4]byte
	binary.LittleEndian.PutUint32(plen[:], uint32(len(e.Payload)))
	out = append(out, plen[:]...)
	out = append(out, e.Payload...)
	return out, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (e *Encoded) UnmarshalBinary(data []byte) error {
	if len(data) < 28 {
		return fmt.Errorf("floatenc: encoded blob too short (%d bytes)", len(data))
	}
	if magic := binary.LittleEndian.Uint32(data[0:]); magic != encodedMagic {
		return fmt.Errorf("floatenc: bad encoded magic %#x", magic)
	}
	e.Scheme = Scheme{Kind: Kind(data[4]), Bits: int(data[5])}
	e.Rows = int(binary.LittleEndian.Uint32(data[8:]))
	e.Cols = int(binary.LittleEndian.Uint32(data[12:]))
	e.Exp = int32(binary.LittleEndian.Uint32(data[16:]))
	tableN := int(binary.LittleEndian.Uint32(data[20:]))
	pos := 24
	if tableN < 0 || tableN > 1<<16 || len(data) < pos+4*tableN+4 {
		return fmt.Errorf("floatenc: encoded blob truncated in table (n=%d)", tableN)
	}
	e.Table = make([]float32, tableN)
	for i := range e.Table {
		e.Table[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
	}
	plen := int(binary.LittleEndian.Uint32(data[pos:]))
	pos += 4
	if plen < 0 || len(data) != pos+plen {
		return fmt.Errorf("floatenc: encoded blob payload length %d does not match %d remaining bytes", plen, len(data)-pos)
	}
	e.Payload = append([]byte(nil), data[pos:]...)
	return e.Scheme.Validate()
}
