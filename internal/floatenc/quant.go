package floatenc

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Quantization schemes (paper Sec. IV-B): values are replaced by k-bit codes
// (k <= 8) into a per-matrix coding table. "Uniform" builds the table by
// uniformly binning [min, max]; "random" samples table entries from the
// value distribution itself (a cheap stand-in for clustering), which adapts
// to skew. Both are lossy and intended for snapshots kept only for
// fine-tuning or initialization.

// encodeQuantUniform bins values uniformly between min and max.
func encodeQuantUniform(vals []float32, bits int) ([]byte, []float32) {
	lo, hi := finiteRange(vals)
	k := 1 << uint(bits)
	table := make([]float32, k)
	if hi == lo {
		for i := range table {
			table[i] = lo
		}
	} else {
		step := (float64(hi) - float64(lo)) / float64(k)
		for i := range table {
			table[i] = float32(float64(lo) + step*(float64(i)+0.5))
		}
	}
	codes := make([]uint32, len(vals))
	if hi > lo {
		span := float64(hi) - float64(lo)
		for i, v := range vals {
			f := clampFinite(v, lo, hi)
			c := int(float64(f-lo) / span * float64(k))
			if c >= k {
				c = k - 1
			}
			codes[i] = uint32(c)
		}
	}
	return packCodes(codes, bits), table
}

// encodeQuantRandom samples the code table from the data (deterministically)
// and assigns each value its nearest table entry.
func encodeQuantRandom(vals []float32, bits int) ([]byte, []float32) {
	k := 1 << uint(bits)
	rng := rand.New(rand.NewSource(int64(len(vals))*2654435761 + int64(bits)))
	table := make([]float32, k)
	if len(vals) == 0 {
		return packCodes(nil, bits), table
	}
	for i := range table {
		table[i] = clampFinite(vals[rng.Intn(len(vals))], -math.MaxFloat32, math.MaxFloat32)
	}
	sort.Slice(table, func(i, j int) bool { return table[i] < table[j] })
	codes := make([]uint32, len(vals))
	for i, v := range vals {
		f := clampFinite(v, -math.MaxFloat32, math.MaxFloat32)
		codes[i] = uint32(nearestIdx(table, f))
	}
	return packCodes(codes, bits), table
}

// decodeQuant maps packed codes back through the table.
func decodeQuant(payload []byte, n, bits int, table []float32) ([]float32, error) {
	need := (n*bits + 7) / 8
	if len(payload) != need {
		return nil, fmt.Errorf("floatenc: quant payload %d bytes, want %d", len(payload), need)
	}
	if len(table) != 1<<uint(bits) {
		return nil, fmt.Errorf("floatenc: quant table has %d entries, want %d", len(table), 1<<uint(bits))
	}
	r := &bitReader{buf: payload}
	out := make([]float32, n)
	for i := range out {
		c, err := r.readBits(bits)
		if err != nil {
			return nil, err
		}
		out[i] = table[c]
	}
	return out, nil
}

// nearestIdx returns the index of the table entry closest to v. The table
// must be sorted ascending.
func nearestIdx(table []float32, v float32) int {
	i := sort.Search(len(table), func(i int) bool { return table[i] >= v })
	if i == 0 {
		return 0
	}
	if i == len(table) {
		return len(table) - 1
	}
	if float64(v)-float64(table[i-1]) <= float64(table[i])-float64(v) {
		return i - 1
	}
	return i
}

// packCodes packs codes at the given bit width.
func packCodes(codes []uint32, bits int) []byte {
	w := &bitWriter{}
	for _, c := range codes {
		w.writeBits(c, bits)
	}
	return w.buf
}

// finiteRange returns the min and max finite values, or (0,0) if none.
func finiteRange(vals []float32) (lo, hi float32) {
	first := true
	for _, v := range vals {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		if first {
			lo, hi = v, v
			first = false
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// clampFinite replaces NaN with lo and clamps Inf into [lo, hi].
func clampFinite(v, lo, hi float32) float32 {
	f := float64(v)
	switch {
	case math.IsNaN(f):
		return lo
	case math.IsInf(f, 1):
		return hi
	case math.IsInf(f, -1):
		return lo
	default:
		return v
	}
}
