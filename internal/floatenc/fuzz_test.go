package floatenc

import (
	"encoding/binary"
	"math"
	"testing"

	"modelhub/internal/tensor"
)

// FuzzSegmentRoundTrip feeds arbitrary byte patterns (reinterpreted as
// float32 matrices) through the bytewise segmentation codec and checks its
// two contracts: Reconstruct is bit-exact, and every plane-prefix interval
// brackets the true value.
func FuzzSegmentRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0x3f, 0x80, 0x00, 0x00, 0xbf, 0x80, 0x00, 0x00}) // 1.0, -1.0
	f.Add([]byte{0x7f, 0x80, 0x00, 0x00})                         // +Inf
	f.Add([]byte{0x7f, 0xc0, 0x00, 0x01})                         // NaN
	f.Add([]byte{0x00, 0x00, 0x00, 0x01, 0x80, 0x00, 0x00, 0x01}) // subnormals
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 4
		if n == 0 {
			return
		}
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = math.Float32frombits(binary.BigEndian.Uint32(data[4*i:]))
		}
		m, err := tensor.FromSlice(1, n, vals)
		if err != nil {
			t.Fatalf("FromSlice: %v", err)
		}
		s := Segment(m)
		got, err := s.Reconstruct()
		if err != nil {
			t.Fatalf("Reconstruct: %v", err)
		}
		for i, v := range vals {
			if math.Float32bits(got.Data()[i]) != math.Float32bits(v) {
				t.Fatalf("element %d: reconstructed bits %08x, want %08x",
					i, math.Float32bits(got.Data()[i]), math.Float32bits(v))
			}
		}
		for prefix := 1; prefix <= NumPlanes; prefix++ {
			lo, hi, err := s.Intervals(prefix)
			if err != nil {
				t.Fatalf("Intervals(%d): %v", prefix, err)
			}
			for i, v := range vals {
				if math.IsNaN(float64(v)) {
					// NaN compares false against everything; the interval
					// guarantee is stated for ordered values only.
					continue
				}
				l, h := lo.Data()[i], hi.Data()[i]
				if !(l <= v && v <= h) {
					t.Fatalf("prefix %d element %d: value %v outside interval [%v, %v]",
						prefix, i, v, l, h)
				}
			}
		}
		// With all four planes the truncation is lossless for every ordered
		// value (NaN patterns are widened to infinities by design).
		full, err := s.Truncated(NumPlanes)
		if err != nil {
			t.Fatalf("Truncated(%d): %v", NumPlanes, err)
		}
		for i, v := range vals {
			if math.IsNaN(float64(v)) {
				continue
			}
			if math.Float32bits(full.Data()[i]) != math.Float32bits(v) {
				t.Fatalf("element %d: Truncated(4) bits %08x, want %08x",
					i, math.Float32bits(full.Data()[i]), math.Float32bits(v))
			}
		}
	})
}
