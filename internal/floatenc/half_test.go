package floatenc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHalfKnownValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{0.5, 0x3800},
		{2, 0x4000},
		{65504, 0x7bff},                  // max finite half
		{float32(math.Inf(1)), 0x7c00},   // +Inf
		{float32(math.Inf(-1)), 0xfc00},  // -Inf
		{5.960464477539063e-08, 0x0001},  // min subnormal half
		{6.103515625e-05, 0x0400},        // min normal half
		{-6.097555160522461e-05, 0x83ff}, // max subnormal magnitude, negative
	}
	for _, c := range cases {
		if got := float32ToHalf(c.f); got != c.bits {
			t.Errorf("float32ToHalf(%v) = %#04x, want %#04x", c.f, got, c.bits)
		}
		if back := halfToFloat32(c.bits); back != c.f {
			t.Errorf("halfToFloat32(%#04x) = %v, want %v", c.bits, back, c.f)
		}
	}
}

func TestHalfOverflowToInf(t *testing.T) {
	if got := float32ToHalf(1e6); got != 0x7c00 {
		t.Fatalf("1e6 should overflow to +Inf, got %#04x", got)
	}
	if got := float32ToHalf(-1e6); got != 0xfc00 {
		t.Fatalf("-1e6 should overflow to -Inf, got %#04x", got)
	}
}

func TestHalfUnderflowToZero(t *testing.T) {
	if got := float32ToHalf(1e-12); got != 0 {
		t.Fatalf("1e-12 should underflow to +0, got %#04x", got)
	}
	if got := float32ToHalf(-1e-12); got != 0x8000 {
		t.Fatalf("-1e-12 should underflow to -0, got %#04x", got)
	}
}

func TestHalfNaN(t *testing.T) {
	h := float32ToHalf(float32(math.NaN()))
	if h&0x7c00 != 0x7c00 || h&0x03ff == 0 {
		t.Fatalf("NaN must map to a half NaN, got %#04x", h)
	}
	if !math.IsNaN(float64(halfToFloat32(h))) {
		t.Fatal("half NaN must decode to NaN")
	}
}

// Round-tripping any representable half value through float32 must be exact.
func TestHalfRoundTripExactProperty(t *testing.T) {
	f := func(h uint16) bool {
		f32 := halfToFloat32(h)
		if math.IsNaN(float64(f32)) {
			return math.IsNaN(float64(halfToFloat32(float32ToHalf(f32))))
		}
		return float32ToHalf(f32) == h || isZeroPair(h, float32ToHalf(f32))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func isZeroPair(a, b uint16) bool {
	return a&0x7fff == 0 && b&0x7fff == 0 && a == b
}

// Converting float32 -> half must never err by more than half a ULP of the
// half format within the normal range.
func TestHalfRoundingError(t *testing.T) {
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) || math.Abs(float64(v)) > 65000 || math.Abs(float64(v)) < 1e-4 {
			return true
		}
		back := float64(halfToFloat32(float32ToHalf(v)))
		rel := math.Abs(back-float64(v)) / math.Abs(float64(v))
		return rel <= 1.0/1024 // 2^-10, one half ULP rounded up
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestBFloat16KnownValues(t *testing.T) {
	if got := float32ToBFloat16(1.0); got != 0x3f80 {
		t.Fatalf("bfloat16(1.0) = %#04x", got)
	}
	if got := bfloat16ToFloat32(0x3f80); got != 1.0 {
		t.Fatalf("bfloat16^-1(0x3f80) = %v", got)
	}
	if got := float32ToBFloat16(float32(math.Inf(1))); got != 0x7f80 {
		t.Fatalf("bfloat16(+Inf) = %#04x", got)
	}
}

func TestBFloat16NaNStaysNaN(t *testing.T) {
	h := float32ToBFloat16(float32(math.NaN()))
	if !math.IsNaN(float64(bfloat16ToFloat32(h))) {
		t.Fatalf("bfloat16 NaN round trip lost NaN: %#04x", h)
	}
}

func TestBFloat16RelativeError(t *testing.T) {
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || v == 0 {
			return true
		}
		back := float64(bfloat16ToFloat32(float32ToBFloat16(v)))
		if math.IsInf(back, 0) { // rounding at the very top of the range
			return math.Abs(float64(v)) > 3e38
		}
		rel := math.Abs(back-float64(v)) / math.Abs(float64(v))
		return rel <= 1.0/128 // 2^-7, bfloat16 has 8 mantissa bits incl. implicit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
