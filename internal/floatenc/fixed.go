package floatenc

import (
	"fmt"
	"math"
)

// Fixed-point encoding (paper Sec. IV-B): one global exponent per matrix,
// each value stored as a k-bit two's-complement mantissa. The encoder picks
// the largest exponent e such that round(v / 2^e) fits in k bits for the
// matrix's absolute maximum, dropping tail precision. At most 2^k distinct
// values can be expressed, which collapses entropy and helps compression.

// encodeFixed returns the packed k-bit mantissas and the chosen exponent.
func encodeFixed(vals []float32, bits int) ([]byte, int32) {
	absMax := 0.0
	for _, v := range vals {
		f := math.Abs(float64(v))
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		if f > absMax {
			absMax = f
		}
	}
	// Largest representable magnitude with k bits two's complement is
	// 2^(k-1)-1 steps of 2^exp. Choose exp so absMax maps near full scale.
	maxCode := float64(int64(1)<<(bits-1) - 1)
	var exp int32
	if absMax > 0 {
		exp = int32(math.Ceil(math.Log2(absMax / maxCode)))
	} else {
		exp = 0
	}
	scale := math.Pow(2, float64(exp))
	w := &bitWriter{}
	minCode := -float64(int64(1) << (bits - 1))
	for _, v := range vals {
		f := float64(v)
		if math.IsNaN(f) {
			f = 0
		}
		c := math.Round(f / scale)
		if c > maxCode {
			c = maxCode
		}
		if c < minCode {
			c = minCode
		}
		w.writeBits(uint32(int64(c))&(1<<uint(bits)-1), bits)
	}
	return w.buf, exp
}

// decodeFixed reconstructs n values from packed k-bit mantissas.
func decodeFixed(payload []byte, n, bits int, exp int32) ([]float32, error) {
	need := (n*bits + 7) / 8
	if len(payload) != need {
		return nil, fmt.Errorf("floatenc: fixed payload %d bytes, want %d", len(payload), need)
	}
	scale := math.Pow(2, float64(exp))
	r := &bitReader{buf: payload}
	out := make([]float32, n)
	signBit := uint32(1) << uint(bits-1)
	for i := range out {
		c, err := r.readBits(bits)
		if err != nil {
			return nil, err
		}
		v := int64(c)
		if c&signBit != 0 { // sign extend
			v -= int64(1) << uint(bits)
		}
		out[i] = float32(float64(v) * scale)
	}
	return out, nil
}
