package floatenc

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"modelhub/internal/tensor"
)

func randMat(seed int64, rows, cols int) *tensor.Matrix {
	return tensor.RandNormal(rand.New(rand.NewSource(seed)), rows, cols, 0.1)
}

func TestSchemeValidate(t *testing.T) {
	valid := []Scheme{
		{Kind: Float32}, {Kind: Float16}, {Kind: BFloat16},
		{Kind: Fixed, Bits: 8}, {Kind: Fixed, Bits: 2}, {Kind: Fixed, Bits: 32},
		{Kind: QuantUniform, Bits: 1}, {Kind: QuantUniform, Bits: 8},
		{Kind: QuantRandom, Bits: 4},
	}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("scheme %v should be valid: %v", s, err)
		}
	}
	invalid := []Scheme{
		{Kind: Fixed, Bits: 1}, {Kind: Fixed, Bits: 33},
		{Kind: QuantUniform, Bits: 0}, {Kind: QuantUniform, Bits: 9},
		{Kind: Kind(99)},
	}
	for _, s := range invalid {
		if err := s.Validate(); !errors.Is(err, ErrScheme) {
			t.Errorf("scheme %v should be invalid, got %v", s, err)
		}
	}
}

func TestSchemeString(t *testing.T) {
	if got := (Scheme{Kind: Fixed, Bits: 8}).String(); got != "fixed-8" {
		t.Fatalf("String = %q", got)
	}
	if got := (Scheme{Kind: Float16}).String(); got != "float16" {
		t.Fatalf("String = %q", got)
	}
	if got := (Scheme{Kind: QuantRandom, Bits: 4}).String(); got != "quant-random-4" {
		t.Fatalf("String = %q", got)
	}
}

func TestFloat32Lossless(t *testing.T) {
	m := randMat(1, 13, 7)
	e, err := Encode(Scheme{Kind: Float32}, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("float32 scheme must be lossless")
	}
}

func TestHalfSchemesBoundedError(t *testing.T) {
	m := randMat(2, 10, 10)
	for _, s := range []Scheme{{Kind: Float16}, {Kind: BFloat16}} {
		e, err := Encode(s, m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(e)
		if err != nil {
			t.Fatal(err)
		}
		maxRel := 0.0
		for i, v := range m.Data() {
			if v == 0 {
				continue
			}
			rel := math.Abs(float64(got.Data()[i]-v)) / math.Abs(float64(v))
			if rel > maxRel {
				maxRel = rel
			}
		}
		limit := 1.0 / 1024
		if s.Kind == BFloat16 {
			limit = 1.0 / 128
		}
		if maxRel > limit {
			t.Errorf("%v: max relative error %v > %v", s, maxRel, limit)
		}
	}
}

func TestFixedPointQuantizationError(t *testing.T) {
	m := randMat(3, 20, 20)
	absMax := float64(m.AbsMax())
	for _, bits := range []int{8, 12, 16} {
		s := Scheme{Kind: Fixed, Bits: bits}
		e, err := Encode(s, m)
		if err != nil {
			t.Fatal(err)
		}
		if e.Exp == 0 && absMax < 0.5 {
			t.Errorf("fixed-%d: exponent not adapted to data", bits)
		}
		got, err := Decode(e)
		if err != nil {
			t.Fatal(err)
		}
		// Quantization step is 2^exp; error bounded by half a step.
		step := math.Pow(2, float64(e.Exp))
		for i, v := range m.Data() {
			if d := math.Abs(float64(got.Data()[i] - v)); d > step/2+1e-12 {
				t.Fatalf("fixed-%d: elem %d error %v > step/2 %v", bits, i, d, step/2)
			}
		}
	}
}

func TestFixedPointDistinctValues(t *testing.T) {
	m := randMat(4, 30, 30)
	e, err := Encode(Scheme{Kind: Fixed, Bits: 4}, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[float32]bool{}
	for _, v := range got.Data() {
		distinct[v] = true
	}
	if len(distinct) > 16 {
		t.Fatalf("fixed-4 produced %d distinct values, max 16", len(distinct))
	}
}

func TestQuantSchemes(t *testing.T) {
	m := randMat(5, 25, 25)
	for _, s := range []Scheme{{Kind: QuantUniform, Bits: 4}, {Kind: QuantRandom, Bits: 4}, {Kind: QuantUniform, Bits: 8}} {
		e, err := Encode(s, m)
		if err != nil {
			t.Fatal(err)
		}
		if len(e.Table) != 1<<uint(s.Bits) {
			t.Fatalf("%v: table size %d", s, len(e.Table))
		}
		got, err := Decode(e)
		if err != nil {
			t.Fatal(err)
		}
		// Every decoded value must be a table entry.
		inTable := map[float32]bool{}
		for _, v := range e.Table {
			inTable[v] = true
		}
		for i, v := range got.Data() {
			if !inTable[v] {
				t.Fatalf("%v: decoded elem %d (%v) not in code table", s, i, v)
			}
		}
		stats := m.ComputeStats()
		span := float64(stats.Max - stats.Min)
		for i, v := range m.Data() {
			if d := math.Abs(float64(got.Data()[i] - v)); d > span {
				t.Fatalf("%v: elem %d error %v exceeds full span %v", s, i, d, span)
			}
		}
	}
}

func TestQuantUniformErrorBound(t *testing.T) {
	m := randMat(6, 40, 40)
	e, err := Encode(Scheme{Kind: QuantUniform, Bits: 8}, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	stats := m.ComputeStats()
	halfBin := (float64(stats.Max) - float64(stats.Min)) / 256 / 2
	for i, v := range m.Data() {
		if d := math.Abs(float64(got.Data()[i] - v)); d > halfBin+1e-9 {
			t.Fatalf("elem %d error %v > half bin %v", i, d, halfBin)
		}
	}
}

func TestQuantConstantMatrix(t *testing.T) {
	m := tensor.MustFromSlice(2, 2, []float32{3, 3, 3, 3})
	for _, s := range []Scheme{{Kind: QuantUniform, Bits: 2}, {Kind: QuantRandom, Bits: 2}} {
		e, err := Encode(s, m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(e)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(m) {
			t.Fatalf("%v: constant matrix should survive quantization, got %v", s, got)
		}
	}
}

func TestEncodeRejectsInvalidScheme(t *testing.T) {
	if _, err := Encode(Scheme{Kind: Fixed, Bits: 0}, randMat(7, 2, 2)); !errors.Is(err, ErrScheme) {
		t.Fatal("want ErrScheme")
	}
}

func TestBitsPerValue(t *testing.T) {
	if (Scheme{Kind: Float32}).BitsPerValue() != 32 ||
		(Scheme{Kind: Float16}).BitsPerValue() != 16 ||
		(Scheme{Kind: Fixed, Bits: 9}).BitsPerValue() != 9 {
		t.Fatal("BitsPerValue wrong")
	}
	if (Scheme{Kind: Float32}).Lossy() || !(Scheme{Kind: Float16}).Lossy() {
		t.Fatal("Lossy wrong")
	}
}

func TestEncodedMarshalRoundTrip(t *testing.T) {
	m := randMat(8, 9, 9)
	for _, s := range []Scheme{
		{Kind: Float32}, {Kind: Float16}, {Kind: BFloat16},
		{Kind: Fixed, Bits: 10}, {Kind: QuantUniform, Bits: 5}, {Kind: QuantRandom, Bits: 3},
	} {
		e, err := Encode(s, m)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := e.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var e2 Encoded
		if err := e2.UnmarshalBinary(blob); err != nil {
			t.Fatalf("%v: unmarshal: %v", s, err)
		}
		d1, err := Decode(e)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := Decode(&e2)
		if err != nil {
			t.Fatal(err)
		}
		if !d1.Equal(d2) {
			t.Fatalf("%v: decode after marshal differs", s)
		}
	}
}

func TestEncodedUnmarshalCorrupt(t *testing.T) {
	e, err := Encode(Scheme{Kind: Float32}, randMat(9, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var e2 Encoded
	if err := e2.UnmarshalBinary(blob[:10]); err == nil {
		t.Fatal("want error for short blob")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff
	if err := e2.UnmarshalBinary(bad); err == nil {
		t.Fatal("want error for bad magic")
	}
	truncated := blob[:len(blob)-1]
	if err := e2.UnmarshalBinary(truncated); err == nil {
		t.Fatal("want error for truncated payload")
	}
}

func TestBitPackRoundTripProperty(t *testing.T) {
	f := func(seed int64, width8 uint8) bool {
		width := int(width8%16) + 1
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(64)
		codes := make([]uint32, n)
		for i := range codes {
			codes[i] = rng.Uint32() & (1<<uint(width) - 1)
		}
		w := &bitWriter{}
		for _, c := range codes {
			w.writeBits(c, width)
		}
		r := &bitReader{buf: w.buf}
		for i, c := range codes {
			got, err := r.readBits(width)
			if err != nil || got != c {
				_ = i
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBitReaderExhaustion(t *testing.T) {
	r := &bitReader{buf: []byte{0xff}}
	if _, err := r.readBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.readBits(1); err == nil {
		t.Fatal("want exhaustion error")
	}
}

func TestFixedHandlesNaNInf(t *testing.T) {
	m := tensor.MustFromSlice(1, 4, []float32{1, float32(math.NaN()), float32(math.Inf(1)), -2})
	e, err := Encode(Scheme{Kind: Fixed, Bits: 8}, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("fixed decode produced non-finite %v", v)
		}
	}
}
