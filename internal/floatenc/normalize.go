package floatenc

import (
	"math"

	"modelhub/internal/tensor"
)

// Normalization (paper Table IV): add a sufficiently large constant to all
// floats so that signs and radix points align — every shifted value then
// shares the sign bit and exponent, making the high bytes nearly constant
// and aligning mantissas for delta encoding. The shift itself is lossy
// (low-order mantissa bits of small values fall off), which is exactly the
// trade-off the paper measures.

// NormalizeOffset returns the offset used to normalize values whose largest
// magnitude is absMax: C = 1.5 * 2^k with 2^(k-1) >= absMax, so every
// shifted value lands in the single binade [2^k, 2^(k+1)).
func NormalizeOffset(absMax float32) float32 {
	if absMax <= 0 || math.IsInf(float64(absMax), 0) || math.IsNaN(float64(absMax)) {
		return 3 // 1.5 * 2^1, a harmless default binade
	}
	k := math.Ceil(math.Log2(float64(absMax))) + 1
	return float32(3 * math.Pow(2, k-1))
}

// Normalize returns a copy of m with NormalizeOffset(AbsMax) added to every
// element, plus the offset used. NaNs are mapped to the bare offset.
func Normalize(m *tensor.Matrix) (*tensor.Matrix, float32) {
	off := NormalizeOffset(m.AbsMax())
	out := tensor.NewMatrix(m.Rows(), m.Cols())
	src, dst := m.Data(), out.Data()
	for i, v := range src {
		if math.IsNaN(float64(v)) {
			dst[i] = off
			continue
		}
		dst[i] = v + off
	}
	return out, off
}

// Denormalize reverses Normalize with the recorded offset.
func Denormalize(m *tensor.Matrix, off float32) *tensor.Matrix {
	out := tensor.NewMatrix(m.Rows(), m.Cols())
	src, dst := m.Data(), out.Data()
	for i, v := range src {
		dst[i] = v - off
	}
	return out
}
