package floatenc

import (
	"bytes"
	"compress/zlib"
	"fmt"
	"io"
)

// zlib helpers. The paper compresses matrices, deltas and byte planes with
// zlib level 6; these wrappers keep that policy in one place.

// DefaultZlibLevel mirrors the paper's experimental setting.
const DefaultZlibLevel = 6

// Deflate compresses data with zlib at the given level.
func Deflate(data []byte, level int) ([]byte, error) {
	var buf bytes.Buffer
	zw, err := zlib.NewWriterLevel(&buf, level)
	if err != nil {
		return nil, fmt.Errorf("floatenc: zlib writer: %w", err)
	}
	if _, err := zw.Write(data); err != nil {
		_ = zw.Close() //mhlint:ignore errcheck the write error takes precedence over cleanup
		return nil, fmt.Errorf("floatenc: zlib write: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("floatenc: zlib close: %w", err)
	}
	return buf.Bytes(), nil
}

// Inflate decompresses zlib data produced by Deflate.
func Inflate(data []byte) ([]byte, error) {
	zr, err := zlib.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("floatenc: zlib reader: %w", err)
	}
	defer zr.Close()
	out, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("floatenc: zlib inflate: %w", err)
	}
	return out, nil
}

// CompressedSize returns the zlib level-6 size of data, the metric every
// storage experiment reports.
func CompressedSize(data []byte) (int, error) {
	out, err := Deflate(data, DefaultZlibLevel)
	if err != nil {
		return 0, err
	}
	return len(out), nil
}
