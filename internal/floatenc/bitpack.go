package floatenc

import "fmt"

// bitWriter packs fixed-width unsigned codes into a byte slice, MSB-first.
type bitWriter struct {
	buf  []byte
	bits uint // number of valid bits in the last byte
}

// writeBits appends the low `width` bits of v.
func (w *bitWriter) writeBits(v uint32, width int) {
	for width > 0 {
		if w.bits == 0 {
			w.buf = append(w.buf, 0)
			w.bits = 8
		}
		take := int(w.bits)
		if take > width {
			take = width
		}
		shift := width - take
		chunk := byte(v>>uint(shift)) & (1<<take - 1)
		last := len(w.buf) - 1
		w.buf[last] |= chunk << (w.bits - uint(take))
		w.bits -= uint(take)
		width -= take
	}
}

// bitReader reads fixed-width codes written by bitWriter.
type bitReader struct {
	buf []byte
	pos uint // absolute bit position
}

// readBits extracts the next `width` bits MSB-first.
func (r *bitReader) readBits(width int) (uint32, error) {
	var v uint32
	for width > 0 {
		byteIdx := r.pos / 8
		if int(byteIdx) >= len(r.buf) {
			return 0, fmt.Errorf("floatenc: bit stream exhausted at bit %d", r.pos)
		}
		avail := 8 - r.pos%8
		take := uint(width)
		if take > avail {
			take = avail
		}
		b := r.buf[byteIdx]
		chunk := (b >> (avail - take)) & (1<<take - 1)
		v = v<<take | uint32(chunk)
		r.pos += take
		width -= int(take)
	}
	return v, nil
}
