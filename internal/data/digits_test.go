package data

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"modelhub/internal/dnn"
)

func TestDigitShapeAndDeterminism(t *testing.T) {
	a := Digit(rand.New(rand.NewSource(1)), 3, 0.05)
	b := Digit(rand.New(rand.NewSource(1)), 3, 0.05)
	if a.Shape != (dnn.Shape{C: 1, H: DigitSize, W: DigitSize}) {
		t.Fatalf("shape = %v", a.Shape)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed must render identical digits")
		}
	}
}

func TestDigitsBalancedLabels(t *testing.T) {
	ex := Digits(rand.New(rand.NewSource(2)), 100, 0.05)
	counts := make(map[int]int)
	for _, e := range ex {
		counts[e.Label]++
	}
	for l := 0; l < NumDigits; l++ {
		if counts[l] != 10 {
			t.Fatalf("label %d count = %d", l, counts[l])
		}
	}
}

func TestDigitGlyphsDiffer(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	zero := Digit(rng, 0, 0)
	one := Digit(rand.New(rand.NewSource(3)), 1, 0)
	same := true
	for i := range zero.Data {
		if zero.Data[i] != one.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different digits must render differently")
	}
}

func TestBlobs(t *testing.T) {
	ex := Blobs(rand.New(rand.NewSource(4)), 90, 3, 5, 0.1)
	if len(ex) != 90 {
		t.Fatalf("n = %d", len(ex))
	}
	counts := make(map[int]int)
	for _, e := range ex {
		if e.Input.Shape.Size() != 5 {
			t.Fatalf("dim = %d", e.Input.Shape.Size())
		}
		counts[e.Label]++
	}
	if len(counts) != 3 {
		t.Fatalf("classes = %d", len(counts))
	}
}

func TestSplit(t *testing.T) {
	ex := Digits(rand.New(rand.NewSource(5)), 50, 0)
	train, test := Split(ex, 0.8)
	if len(train) != 40 || len(test) != 10 {
		t.Fatalf("split = %d/%d", len(train), len(test))
	}
	train, test = Split(ex, 1.5)
	if len(train) != 50 || len(test) != 0 {
		t.Fatal("overlarge fraction should clamp")
	}
	train, test = Split(ex, -1)
	if len(train) != 0 || len(test) != 50 {
		t.Fatal("negative fraction should clamp")
	}
}

// A convnet must be able to learn the digit task to high accuracy — the
// dataset is the substrate for every accuracy experiment.
func TestDigitsLearnable(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	rng := rand.New(rand.NewSource(6))
	examples := Digits(rng, 600, 0.05)
	train, test := Split(examples, 0.8)
	def := dnn.ChainDef("probe", 1, DigitSize, DigitSize, NumDigits,
		dnn.LayerSpec{Name: "conv1", Kind: dnn.KindConv, Out: 6, K: 3, Pad: 1},
		dnn.LayerSpec{Name: "relu1", Kind: dnn.KindReLU},
		dnn.LayerSpec{Name: "pool1", Kind: dnn.KindPool, K: 2, Mode: dnn.PoolMax},
		dnn.LayerSpec{Name: "ip1", Kind: dnn.KindFull, Out: 32},
		dnn.LayerSpec{Name: "relu2", Kind: dnn.KindReLU},
		dnn.LayerSpec{Name: "ip2", Kind: dnn.KindFull, Out: NumDigits},
	)
	n, err := dnn.Build(def, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dnn.Train(n, train, dnn.TrainConfig{Epochs: 6, BatchSize: 16, LR: 0.1, Seed: 8}); err != nil {
		t.Fatal(err)
	}
	if acc := dnn.Evaluate(n, test); acc < 0.9 {
		t.Fatalf("digit task should be learnable, accuracy = %v", acc)
	}
}

func TestSaveLoadExamples(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	examples := Digits(rng, 10, 0.05)
	path := filepath.Join(t.TempDir(), "points.json")
	if err := SaveExamples(path, examples); err != nil {
		t.Fatal(err)
	}
	got, err := LoadExamples(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(examples) {
		t.Fatalf("n = %d", len(got))
	}
	for i := range got {
		if got[i].Label != examples[i].Label || got[i].Input.Shape != examples[i].Input.Shape {
			t.Fatalf("example %d metadata mismatch", i)
		}
		for j, v := range examples[i].Input.Data {
			if got[i].Input.Data[j] != v {
				t.Fatalf("example %d value %d mismatch", i, j)
			}
		}
	}
}

func TestLoadExamplesErrors(t *testing.T) {
	if _, err := LoadExamples(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file must fail")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{nope"), 0o644)
	if _, err := LoadExamples(bad); err == nil {
		t.Fatal("bad json must fail")
	}
	mismatch := filepath.Join(dir, "mismatch.json")
	os.WriteFile(mismatch, []byte(`[{"label":0,"c":1,"h":2,"w":2,"values":[1]}]`), 0o644)
	if _, err := LoadExamples(mismatch); err == nil {
		t.Fatal("shape mismatch must fail")
	}
	negative := filepath.Join(dir, "neg.json")
	os.WriteFile(negative, []byte(`[{"label":-1,"c":1,"h":1,"w":1,"values":[1]}]`), 0o644)
	if _, err := LoadExamples(negative); err == nil {
		t.Fatal("negative label must fail")
	}
}
