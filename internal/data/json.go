package data

import (
	"encoding/json"
	"fmt"
	"os"

	"modelhub/internal/dnn"
)

// JSON example interchange: `dlv eval -data points.json` runs the test
// phase of a managed model on user-supplied data points (paper Table II:
// "Evaluate a model with given data").
//
// File format: a JSON array of objects
//
//	[{"label": 3, "c": 1, "h": 12, "w": 12, "values": [0, 0.5, ...]}, ...]
//
// `values` is the channel-major flattening of the input volume.

type jsonExample struct {
	Label  int       `json:"label"`
	C      int       `json:"c"`
	H      int       `json:"h"`
	W      int       `json:"w"`
	Values []float32 `json:"values"`
}

// SaveExamples writes labelled examples to a JSON file.
func SaveExamples(path string, examples []dnn.Example) error {
	out := make([]jsonExample, len(examples))
	for i, ex := range examples {
		out[i] = jsonExample{
			Label:  ex.Label,
			C:      ex.Input.Shape.C,
			H:      ex.Input.Shape.H,
			W:      ex.Input.Shape.W,
			Values: ex.Input.Data,
		}
	}
	blob, err := json.Marshal(out)
	if err != nil {
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

// LoadExamples reads labelled examples from a JSON file written by
// SaveExamples (or by hand).
func LoadExamples(path string) ([]dnn.Example, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("data: %w", err)
	}
	var in []jsonExample
	if err := json.Unmarshal(blob, &in); err != nil {
		return nil, fmt.Errorf("data: parsing %s: %w", path, err)
	}
	out := make([]dnn.Example, len(in))
	for i, je := range in {
		shape := dnn.Shape{C: je.C, H: je.H, W: je.W}
		if shape.Size() != len(je.Values) {
			return nil, fmt.Errorf("data: example %d has %d values for shape %v", i, len(je.Values), shape)
		}
		if je.Label < 0 {
			return nil, fmt.Errorf("data: example %d has negative label", i)
		}
		out[i] = dnn.Example{Input: &dnn.Volume{Shape: shape, Data: je.Values}, Label: je.Label}
	}
	return out, nil
}
