// Package data provides the synthetic datasets used throughout the
// reproduction. The paper evaluates on MNIST and ILSVRC-2012, which are not
// shippable here; these generators produce deterministic, learnable image
// and vector classification tasks that exercise the identical training,
// checkpointing, archival, and progressive-evaluation code paths (see
// DESIGN.md, substitution table).
package data

import (
	"math/rand"

	"modelhub/internal/dnn"
)

// DigitSize is the side length of generated digit images.
const DigitSize = 12

// NumDigits is the label domain size of the digit task.
const NumDigits = 10

// Seven-segment layout:
//
//	 _      segment 0: top
//	|_|     segments 1,2: top-left, top-right; 3: middle
//	|_|     segments 4,5: bottom-left, bottom-right; 6: bottom
var segmentOf = [10][7]bool{
	{true, true, true, false, true, true, true},     // 0
	{false, false, true, false, false, true, false}, // 1
	{true, false, true, true, true, false, true},    // 2
	{true, false, true, true, false, true, true},    // 3
	{false, true, true, true, false, true, false},   // 4
	{true, true, false, true, false, true, true},    // 5
	{true, true, false, true, true, true, true},     // 6
	{true, false, true, false, false, true, false},  // 7
	{true, true, true, true, true, true, true},      // 8
	{true, true, true, true, false, true, true},     // 9
}

// drawSegment rasterizes segment s of a 6x10 glyph at offset (ox, oy) into
// img with the given intensity.
func drawSegment(img *dnn.Volume, s, ox, oy int, intensity float32) {
	set := func(x, y int) {
		if x >= 0 && x < img.Shape.W && y >= 0 && y < img.Shape.H {
			img.Set(0, y, x, intensity)
		}
	}
	const w, h = 6, 10 // glyph box
	switch s {
	case 0: // top bar
		for x := 0; x < w; x++ {
			set(ox+x, oy)
		}
	case 1: // top-left
		for y := 0; y <= h/2; y++ {
			set(ox, oy+y)
		}
	case 2: // top-right
		for y := 0; y <= h/2; y++ {
			set(ox+w-1, oy+y)
		}
	case 3: // middle bar
		for x := 0; x < w; x++ {
			set(ox+x, oy+h/2)
		}
	case 4: // bottom-left
		for y := h / 2; y < h; y++ {
			set(ox, oy+y)
		}
	case 5: // bottom-right
		for y := h / 2; y < h; y++ {
			set(ox+w-1, oy+y)
		}
	case 6: // bottom bar
		for x := 0; x < w; x++ {
			set(ox+x, oy+h-1)
		}
	}
}

// Digit renders one noisy digit image. Jitter shifts the glyph by up to one
// pixel; pixel noise is N(0, noise²).
func Digit(rng *rand.Rand, label int, noise float64) *dnn.Volume {
	img := dnn.NewVolume(dnn.Shape{C: 1, H: DigitSize, W: DigitSize})
	ox := 3 + rng.Intn(3) - 1
	oy := 1 + rng.Intn(3) - 1
	intensity := 0.8 + rng.Float32()*0.4
	for s := 0; s < 7; s++ {
		if segmentOf[label][s] {
			drawSegment(img, s, ox, oy, intensity)
		}
	}
	if noise > 0 {
		for i := range img.Data {
			img.Data[i] += float32(rng.NormFloat64() * noise)
		}
	}
	return img
}

// Digits generates n labelled digit examples with balanced classes.
func Digits(rng *rand.Rand, n int, noise float64) []dnn.Example {
	out := make([]dnn.Example, n)
	for i := range out {
		label := i % NumDigits
		out[i] = dnn.Example{Input: Digit(rng, label, noise), Label: label}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Blobs generates an easy vector classification task: `classes` Gaussian
// clusters in `dim` dimensions with the given intra-cluster spread.
func Blobs(rng *rand.Rand, n, classes, dim int, spread float64) []dnn.Example {
	centers := make([][]float32, classes)
	for c := range centers {
		centers[c] = make([]float32, dim)
		for d := range centers[c] {
			centers[c][d] = float32(rng.NormFloat64())
		}
	}
	out := make([]dnn.Example, n)
	for i := range out {
		label := i % classes
		v := make([]float32, dim)
		for d := range v {
			v[d] = centers[label][d] + float32(rng.NormFloat64()*spread)
		}
		out[i] = dnn.Example{Input: dnn.FlatVolume(v), Label: label}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Split partitions examples into train and test sets; frac is the training
// fraction in (0, 1).
func Split(examples []dnn.Example, frac float64) (train, test []dnn.Example) {
	cut := int(float64(len(examples)) * frac)
	if cut < 0 {
		cut = 0
	}
	if cut > len(examples) {
		cut = len(examples)
	}
	return examples[:cut], examples[cut:]
}
