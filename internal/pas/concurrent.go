package pas

import (
	"container/list"
	"runtime"
	"sync"
	"sync/atomic"

	"modelhub/internal/delta"
	"modelhub/internal/floatenc"
	"modelhub/internal/tensor"
)

// Concurrent retrieval engine (the Concurrent scheme): a snapshot's delta
// chains form a DAG of node-resolution tasks — each node depends only on its
// parent — scheduled over a bounded worker pool. Three mechanisms make it a
// parallel generalization of the Reusable scheme:
//
//   - single-flight deduplication: when two chains share a prefix, the first
//     goroutine to reach a (node, prefix) becomes its leader and decodes it;
//     every other goroutine blocks on the leader's result, so each distinct
//     chain edge is decoded exactly once per retrieval wave;
//   - a bounded LRU of decoded planes keyed by (node, prefix) that persists
//     across GetSnapshot / GetMatrixConcurrent / GetIntervalsConcurrent
//     calls on the same Store, so checkout and progressive-evaluation
//     workloads that revisit nearby snapshots skip whole chain prefixes;
//   - parallel per-plane chunk inflate: the up-to-four zlib planes of one
//     chunk decompress concurrently.
//
// Waiters always block on strict ancestors in the plan tree (chains are
// cycle-checked by chainOf), and leaders never need a pool slot beyond their
// own, so the scheme cannot deadlock.

// DefaultPlaneCacheBytes bounds the decoded-plane LRU of a freshly opened
// store. Each entry holds up to prefix × rows × cols bytes.
const DefaultPlaneCacheBytes = 256 << 20

// flight is one in-progress (node, prefix) resolution; waiters block on done.
type flight struct {
	done   chan struct{}
	planes *[4][]byte
	err    error
}

// engine holds the Concurrent scheme's shared state.
type engine struct {
	workers atomic.Int64

	fmu     sync.Mutex
	flights map[planeKey]*flight

	lru planeLRU
}

func newEngine() *engine {
	e := &engine{flights: make(map[planeKey]*flight)}
	e.workers.Store(int64(runtime.GOMAXPROCS(0)))
	e.lru.limit = DefaultPlaneCacheBytes
	return e
}

// SetConcurrency sets the worker-pool width used by the Concurrent scheme
// (default: GOMAXPROCS). Values < 1 reset to GOMAXPROCS.
func (s *Store) SetConcurrency(workers int) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	s.eng.workers.Store(int64(workers))
}

// SetPlaneCacheBytes bounds the Concurrent scheme's decoded-plane LRU
// (default DefaultPlaneCacheBytes). 0 disables caching entirely.
func (s *Store) SetPlaneCacheBytes(limit int64) {
	s.eng.lru.setLimit(limit)
}

// planeLRU is a byte-bounded LRU of decoded plane sets keyed by
// (node, prefix). Entries are shared read-only: resolvers XOR parents into
// freshly allocated child planes, never into cached ones.
type planeLRU struct {
	mu    sync.Mutex
	limit int64
	size  int64
	ll    list.List // front = most recently used; values are *lruEntry
	items map[planeKey]*list.Element
}

type lruEntry struct {
	key    planeKey
	planes *[4][]byte
	bytes  int64
}

func (c *planeLRU) setLimit(limit int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = limit
	c.evictLocked()
}

func (c *planeLRU) get(k planeKey) (*[4][]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		mPlaneCacheMisses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	mPlaneCacheHits.Inc()
	return el.Value.(*lruEntry).planes, true
}

func (c *planeLRU) add(k planeKey, planes *[4][]byte) {
	var bytes int64
	for _, p := range planes {
		bytes += int64(len(p))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.limit <= 0 || bytes > c.limit {
		return
	}
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		return
	}
	if c.items == nil {
		c.items = make(map[planeKey]*list.Element)
	}
	c.items[k] = c.ll.PushFront(&lruEntry{key: k, planes: planes, bytes: bytes})
	c.size += bytes
	c.evictLocked()
	gPlaneCacheBytes.Set(c.size)
}

func (c *planeLRU) evictLocked() {
	for c.size > c.limit {
		el := c.ll.Back()
		if el == nil {
			return
		}
		ent := el.Value.(*lruEntry)
		c.ll.Remove(el)
		delete(c.items, ent.key)
		c.size -= ent.bytes
		mPlaneCacheEvictions.Inc()
		gPlaneCacheBytes.Set(c.size)
	}
}

// readPlanesParallel is readPlanes with the stored planes inflated
// concurrently — one goroutine per zlib chunk when more than one plane is
// needed.
func (s *Store) readPlanesParallel(n *manifestNode, prefix int) (*[4][]byte, error) {
	var planes [4][]byte
	size := n.Rows * n.Cols
	start, end := nodePlanes(n)
	countAvoidedPlanes(n, prefix)
	var stored []int
	for p := 0; p < floatenc.NumPlanes; p++ {
		if p >= prefix || p < start || p >= end {
			planes[p] = make([]byte, size)
			continue
		}
		stored = append(stored, p)
	}
	if len(stored) <= 1 || s.eng.workers.Load() <= 1 {
		for _, p := range stored {
			raw, err := s.readPlane(n, p)
			if err != nil {
				return nil, err
			}
			planes[p] = raw
		}
		return &planes, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, len(stored))
	for i, p := range stored {
		wg.Add(1)
		go func(i, p int) {
			defer wg.Done()
			planes[p], errs[i] = s.readPlane(n, p)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &planes, nil
}

// resolvePlanesConcurrent resolves node id's matrix planes at the given
// prefix through the engine: an iterative root-ward chain walk where every
// (node, prefix) step goes through the LRU and single-flight deduplication.
func (s *Store) resolvePlanesConcurrent(id, prefix int) (*[4][]byte, error) {
	chain, err := s.chainOf(id)
	if err != nil {
		return nil, err
	}
	var parent *[4][]byte
	var pn *manifestNode
	for i := len(chain) - 1; i >= 0; i-- {
		n, err := s.node(chain[i])
		if err != nil {
			return nil, err
		}
		planes, err := s.resolveOneConcurrent(n, prefix, parent, pn)
		if err != nil {
			return nil, err
		}
		parent, pn = planes, n
	}
	return parent, nil
}

// resolveOneConcurrent produces the matrix planes of one node given its
// already-resolved parent planes, deduplicating work across goroutines.
func (s *Store) resolveOneConcurrent(n *manifestNode, prefix int, parent *[4][]byte, pn *manifestNode) (*[4][]byte, error) {
	k := planeKey{n.ID, prefix}
	if planes, ok := s.eng.lru.get(k); ok {
		return planes, nil
	}
	s.eng.fmu.Lock()
	if f, ok := s.eng.flights[k]; ok {
		s.eng.fmu.Unlock()
		mSingleFlightDedup.Inc()
		<-f.done
		return f.planes, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.eng.flights[k] = f
	s.eng.fmu.Unlock()

	f.planes, f.err = s.decodeNode(n, prefix, parent, pn)
	if f.err == nil {
		s.eng.lru.add(k, f.planes)
	}
	s.eng.fmu.Lock()
	delete(s.eng.flights, k)
	s.eng.fmu.Unlock()
	close(f.done)
	return f.planes, f.err
}

// decodeNode reads a node's chunk planes and composes them with the parent's
// resolved planes (XOR composes exactly per byte plane).
func (s *Store) decodeNode(n *manifestNode, prefix int, parent *[4][]byte, pn *manifestNode) (*[4][]byte, error) {
	planes, err := s.readPlanesParallel(n, prefix)
	if err != nil {
		return nil, err
	}
	if n.Parent != 0 {
		start, end := nodePlanes(n)
		for p := start; p < end && p < prefix; p++ {
			xorResized(planes[p], parent[p], n.Rows, n.Cols, pn.Rows, pn.Cols)
		}
	}
	return planes, nil
}

// getSnapshotConcurrent retrieves a snapshot's matrices with one resolution
// task per matrix, gated by the worker pool. Non-XOR (IntSub) archives fall
// back to full-precision chain resolution per matrix inside the same pool.
func (s *Store) getSnapshotConcurrent(snapshot string, names []string, prefix int) (map[string]*tensor.Matrix, error) {
	workers := int(s.eng.workers.Load())
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	mats := make([]*tensor.Matrix, len(names))
	errs := make([]error, len(names))
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			mats[i], errs[i] = s.getMatrixConcurrentRef(MatrixRef{Snapshot: snapshot, Name: name}, prefix)
		}(i, name)
	}
	wg.Wait()
	out := make(map[string]*tensor.Matrix, len(names))
	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		out[names[i]] = mats[i]
	}
	return out, nil
}

// getMatrixConcurrentRef resolves one matrix through the engine.
func (s *Store) getMatrixConcurrentRef(ref MatrixRef, prefix int) (*tensor.Matrix, error) {
	if s.man.DeltaOp != uint8(delta.XOR) {
		return s.getMatrixRef(ref, prefix, false)
	}
	planes, rows, cols, err := s.resolveRefWith(ref, prefix, s.resolvePlanesConcurrent)
	if err != nil {
		return nil, err
	}
	seg := &floatenc.Segmented{Rows: rows, Cols: cols, Planes: *planes}
	if prefix >= floatenc.NumPlanes {
		return seg.Reconstruct()
	}
	return seg.Truncated(prefix)
}

// GetMatrixConcurrent retrieves one matrix through the concurrent engine,
// sharing its persistent plane LRU with snapshot-level retrievals. Semantics
// match GetMatrix: prefix 4 is bit-exact, smaller prefixes zero-fill the
// low-order bytes.
func (s *Store) GetMatrixConcurrent(ref MatrixRef, prefix int) (*tensor.Matrix, error) {
	return s.getMatrixConcurrentRef(ref, prefix)
}

// GetIntervalsConcurrent is GetIntervals through the concurrent engine — the
// progressive-evaluation hot path, which re-reads the same chains at
// escalating prefixes and so benefits most from the (node, prefix) LRU.
func (s *Store) GetIntervalsConcurrent(ref MatrixRef, prefix int) (lo, hi *tensor.Matrix, err error) {
	if s.man.DeltaOp != uint8(delta.XOR) {
		return s.GetIntervals(ref, prefix)
	}
	planes, rows, cols, err := s.resolveRefWith(ref, prefix, s.resolvePlanesConcurrent)
	if err != nil {
		return nil, nil, err
	}
	seg := &floatenc.Segmented{Rows: rows, Cols: cols, Planes: *planes}
	return seg.Intervals(prefix)
}
