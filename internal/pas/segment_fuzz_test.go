package pas

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzSegmentIndex fuzzes the two parsers that consume untrusted on-disk
// segment metadata: the segment-record scanner (the index rebuild path) and
// the JSON index parser. Neither may panic, and every rejection must be the
// typed ErrStore (wired into make fuzz-smoke).
func FuzzSegmentIndex(f *testing.F) {
	// A well-formed single-record segment file.
	payload := []byte("0123456789abcdef")
	sum := sha256.Sum256(payload)
	var rec []byte
	rec = append(rec, segMagic...)
	var hdr [segRecordOverhead]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	copy(hdr[4:], sum[:])
	rec = append(rec, hdr[:]...)
	rec = append(rec, payload...)
	f.Add(rec)
	f.Add([]byte(segMagic))
	f.Add([]byte("PASSEG2\nshort"))
	f.Add([]byte(`{"version":1,"next_seg":1,"segments":[{"name":"seg-000000.seg","size":100}],"chunks":{}}`))
	f.Add([]byte(`{"version":1,"segments":[],"chunks":{"00":{"seg":9,"off":-1,"len":0}}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if recs, err := scanSegmentRecords(data); err != nil {
			if !errors.Is(err, ErrStore) {
				t.Fatalf("scan error %v is not ErrStore", err)
			}
		} else {
			// Accepted records must lie inside the input.
			for _, r := range recs {
				if r.Len <= 0 || r.Off < int64(len(segMagic)) || r.Off+r.Len > int64(len(data)) {
					t.Fatalf("scan accepted out-of-bounds record %+v", r)
				}
				if len(r.Sum) != 2*sha256.Size {
					t.Fatalf("scan produced bad sum %q", r.Sum)
				}
			}
		}
		if idx, err := parseSegIndex(data); err != nil {
			if !errors.Is(err, ErrStore) {
				t.Fatalf("index parse error %v is not ErrStore", err)
			}
		} else {
			// Accepted locations must be in bounds of their segments.
			for sum, loc := range idx.Chunks {
				if loc.Seg < 0 || loc.Seg >= len(idx.Segments) ||
					loc.Len <= 0 || loc.Off+loc.Len > idx.Segments[loc.Seg].Size {
					t.Fatalf("index accepted out-of-bounds chunk %s: %+v", sum, loc)
				}
			}
		}
	})
}
