package pas

import "modelhub/internal/obs"

// Retrieval-engine metrics (see DESIGN.md §8 for the catalog). Resolved
// once at package init; every update is gated on obs.Enable, so the
// disabled cost is one atomic load and a branch (BenchmarkObsOverhead).
var (
	// Decoded-plane LRU of the concurrent engine.
	mPlaneCacheHits      = obs.GetCounter("pas.plane_cache.hits")
	mPlaneCacheMisses    = obs.GetCounter("pas.plane_cache.misses")
	mPlaneCacheEvictions = obs.GetCounter("pas.plane_cache.evictions")
	gPlaneCacheBytes     = obs.GetGauge("pas.plane_cache.bytes")

	// Single-flight deduplication: waves that joined an in-progress
	// (node, prefix) resolution instead of decoding it again.
	mSingleFlightDedup = obs.GetCounter("pas.singleflight.dedup")

	// Chunk I/O: verified zlib plane reads and their compressed sizes.
	mChunkReads     = obs.GetCounter("pas.chunk.reads")
	mChunkReadBytes = obs.GetCounter("pas.chunk.read_bytes")

	// Progressive inference: compressed bytes of stored low-order planes a
	// partial (prefix < 4) retrieval did NOT have to read — the paper's
	// Fig. 8-10 byte savings, observable live.
	mLowOrderBytesAvoided = obs.GetCounter("pas.progressive.low_order_bytes_avoided")

	// Segment storage engine (gen 2, DESIGN.md §10). pas.chunk.opens
	// counts per-file chunk opens on the legacy layout; pas.segment.opens
	// counts segment file opens — the pair BENCH_store.json compares.
	mChunkOpens         = obs.GetCounter("pas.chunk.opens")
	mSegmentOpens       = obs.GetCounter("pas.segment.opens")
	mSegmentDedupHits   = obs.GetCounter("pas.segment.dedup_hits")
	mSegmentDedupBytes  = obs.GetCounter("pas.segment.dedup_bytes_saved")
	mSegmentMigrations  = obs.GetCounter("pas.segment.migrations")
	mSegmentGCRuns      = obs.GetCounter("pas.segment.gc_runs")
	mSegmentGCReclaimed = obs.GetCounter("pas.segment.gc_reclaimed_bytes")
	gSegmentCount       = obs.GetGauge("pas.segment.count")
	gSegmentDiskBytes   = obs.GetGauge("pas.segment.disk_bytes")

	// Snapshot retrievals per scheme, and their latency.
	mRetrievalSeconds = obs.GetHistogram("pas.retrieval.seconds")
	mRetrievalScheme  = [...]*obs.Counter{
		Independent: obs.GetCounter("pas.retrieval.snapshots.independent"),
		Parallel:    obs.GetCounter("pas.retrieval.snapshots.parallel"),
		Reusable:    obs.GetCounter("pas.retrieval.snapshots.reusable"),
		Concurrent:  obs.GetCounter("pas.retrieval.snapshots.concurrent"),
	}
)

// countRetrieval records one snapshot-level retrieval under a scheme.
func countRetrieval(scheme Scheme) {
	if int(scheme) >= 0 && int(scheme) < len(mRetrievalScheme) {
		mRetrievalScheme[scheme].Inc()
	}
}

// countAvoidedPlanes credits the compressed bytes of stored planes that a
// prefix-limited read skipped.
func countAvoidedPlanes(n *manifestNode, prefix int) {
	if !obs.Enabled() {
		return
	}
	start, end := nodePlanes(n)
	var avoided int64
	for p := start; p < end; p++ {
		if p >= prefix {
			avoided += int64(n.PlaneBytes[p])
		}
	}
	if avoided > 0 {
		mLowOrderBytesAvoided.Add(avoided)
	}
}
