package pas

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// chunkFiles lists every file holding chunk payloads, for whichever layout
// the archive uses: segment files under segments/, or per-chunk files under
// chunks/. Sorted for determinism.
func chunkFiles(t *testing.T, dir string) []string {
	t.Helper()
	out, err := filepath.Glob(filepath.Join(dir, "segments", "seg-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := filepath.Glob(filepath.Join(dir, "chunks", "*"))
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, legacy...)
	sort.Strings(out)
	if len(out) == 0 {
		t.Fatal("archive has no chunk payload files")
	}
	return out
}

// corruptEverySnapshot corrupts one chunk file via mutate, reopens the store
// (a fresh Store, so no plane cache hides the damage), and asserts every
// snapshot retrieval that touches the bad chunk fails with ErrStore under
// every retrieval scheme. At least one snapshot must be affected.
func corruptEverySnapshot(t *testing.T, mutate func(t *testing.T, path string)) {
	t.Helper()
	snaps := makeSnaps(7, 3, 0)
	dir := t.TempDir()
	if _, err := Create(dir, snaps, Options{}); err != nil {
		t.Fatal(err)
	}
	files := chunkFiles(t, dir)
	mutate(t, files[0])
	for _, scheme := range []Scheme{Independent, Parallel, Reusable, Concurrent} {
		st, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		failed := 0
		for _, snap := range snaps {
			got, err := st.GetSnapshot(snap.ID, 4, scheme)
			if err == nil {
				// A snapshot whose chain avoids the corrupted chunk must
				// still decode exactly.
				for name, want := range snap.Matrices {
					if !got[name].Equal(want) {
						t.Fatalf("%v: snapshot %s matrix %s decoded wrong instead of failing", scheme, snap.ID, name)
					}
				}
				continue
			}
			failed++
			if !errors.Is(err, ErrStore) {
				t.Fatalf("%v: snapshot %s: error %v is not wrapped in ErrStore", scheme, snap.ID, err)
			}
		}
		if failed == 0 {
			t.Fatalf("%v: no snapshot retrieval noticed the corrupted chunk", scheme)
		}
	}
}

func TestGetSnapshotBitFlippedChunk(t *testing.T) {
	corruptEverySnapshot(t, func(t *testing.T, path string) {
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// The last byte is always chunk payload under both layouts (a
		// middle byte could land in a segment record header, which reads
		// do not traverse).
		blob[len(blob)-1] ^= 0x40
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestGetSnapshotTruncatedChunk(t *testing.T) {
	corruptEverySnapshot(t, func(t *testing.T, path string) {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, info.Size()/2); err != nil {
			t.Fatal(err)
		}
	})
}

func TestGetSnapshotMissingChunk(t *testing.T) {
	corruptEverySnapshot(t, func(t *testing.T, path string) {
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	})
}

// A bit flip must surface as a checksum mismatch specifically — the sha256
// gate, not a zlib decode failure further down.
func TestBitFlipReportsChecksumMismatch(t *testing.T) {
	snaps := makeSnaps(9, 2, 0)
	dir := t.TempDir()
	if _, err := Create(dir, snaps, Options{}); err != nil {
		t.Fatal(err)
	}
	files := chunkFiles(t, dir)
	blob, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0x01
	if err := os.WriteFile(files[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sawMismatch := false
	for _, snap := range snaps {
		if _, err := st.GetSnapshot(snap.ID, 4, Independent); err != nil {
			if !strings.Contains(err.Error(), "checksum mismatch") {
				t.Fatalf("snapshot %s: error %v does not name the checksum mismatch", snap.ID, err)
			}
			sawMismatch = true
		}
	}
	if !sawMismatch {
		t.Fatal("no retrieval reported the checksum mismatch")
	}
}
