package pas

import (
	"container/heap"
	"math"
)

// PASPT is the paper's PAS-PT algorithm (Sec. IV-C): grow the plan from ν0
// by repeatedly taking the cheapest-storage frontier edge whose addition
// keeps every affected snapshot's (estimated) recreation cost within budget.
// Recreation costs of nodes not yet in the tree are estimated by a lower
// bound (their cheapest possible incoming recreation cost). After a node
// joins, edges from it back into the tree may re-parent existing nodes when
// that strictly reduces storage without increasing recreation. If pruning
// leaves nodes unattached, they are attached via their cheapest edge and the
// plan is repaired with the Eq.1/Eq.2 adjustment loop shared with PAS-MT.
func PASPT(g *Graph, scheme Scheme) (*Plan, bool, error) {
	if err := g.Validate(); err != nil {
		return nil, false, err
	}
	plan := NewPlan(g)
	out := g.OutEdges()
	in := g.InEdges()

	// Lower bound on the recreation cost of any node: its cheapest incoming
	// edge (every root path ends with some incoming edge).
	lower := make([]float64, g.NumNodes)
	for v := 1; v < g.NumNodes; v++ {
		lb := math.Inf(1)
		for _, eid := range in[v] {
			if r := g.Edges[eid].Recreation; r < lb {
				lb = r
			}
		}
		lower[v] = lb
	}

	// snapshotsOf[v]: indexes of constrained snapshots containing v.
	snapshotsOf := make([][]int, g.NumNodes)
	for si, s := range g.Snapshots {
		if infOrZero(s.Budget) {
			continue
		}
		for _, v := range s.Nodes {
			snapshotsOf[v] = append(snapshotsOf[v], si)
		}
	}

	inTree := make([]bool, g.NumNodes)
	inTree[Root] = true
	cr := make([]float64, g.NumNodes) // actual recreation cost for tree nodes

	// feasibleToAdd estimates the recreation cost of every constrained
	// snapshot containing v if v joined with recreation cost crV.
	feasibleToAdd := func(v NodeID, crV float64) bool {
		for _, si := range snapshotsOf[v] {
			s := g.Snapshots[si]
			var est float64
			for _, vk := range s.Nodes {
				var c float64
				switch {
				case vk == v:
					c = crV
				case inTree[vk]:
					c = cr[vk]
				default:
					c = lower[vk]
				}
				if scheme == Parallel {
					if c > est {
						est = c
					}
				} else {
					est += c
				}
			}
			if est > s.Budget+1e-9 {
				return false
			}
		}
		return true
	}

	h := &edgeHeap{key: func(id EdgeID) float64 { return g.Edges[id].Storage }}
	for _, eid := range out[Root] {
		h.ids = append(h.ids, eid)
	}
	heap.Init(h)
	added := 1
	for h.Len() > 0 && added < g.NumNodes {
		eid := heap.Pop(h).(EdgeID)
		e := g.Edges[eid]
		if inTree[e.To] {
			continue
		}
		crNew := cr[e.From] + e.Recreation
		if !feasibleToAdd(e.To, crNew) {
			continue // prune this storage option; another edge may admit e.To
		}
		vj := e.To
		plan.ParentEdge[vj] = eid
		cr[vj] = crNew
		inTree[vj] = true
		added++
		for _, oid := range out[vj] {
			if !inTree[g.Edges[oid].To] {
				heap.Push(h, oid)
			}
		}
		// Re-parent existing tree nodes through vj when that reduces
		// storage without increasing their recreation cost. Ancestors of vj
		// are excluded (cycle).
		tin, tout := eulerTour(plan)
		for _, oid := range out[vj] {
			oe := g.Edges[oid]
			vk := oe.To
			if !inTree[vk] || vk == Root {
				continue
			}
			if tin[vk] <= tin[vj] && tout[vj] <= tout[vk] { // vk is an ancestor of vj
				continue
			}
			curStorage := g.Edges[plan.ParentEdge[vk]].Storage
			newCr := cr[vj] + oe.Recreation
			if oe.Storage < curStorage && newCr <= cr[vk]+1e-12 {
				plan.ParentEdge[vk] = oid
				// Recreation costs of vk's subtree only improved; refresh cr.
				diff := cr[vk] - newCr
				for _, d := range plan.Subtree(vk) {
					cr[d] -= diff
				}
				tin, tout = eulerTour(plan)
			}
		}
	}

	// Attach any pruned-out nodes: repeatedly take the cheapest-storage edge
	// from a tree node to an unattached node, then run the shared
	// adjustment loop to repair any violated budgets.
	for added < g.NumNodes {
		best := EdgeID(-1)
		bestCost := math.Inf(1)
		for v := 1; v < g.NumNodes; v++ {
			if inTree[v] {
				continue
			}
			for _, eid := range in[v] {
				e := g.Edges[eid]
				if inTree[e.From] && e.Storage < bestCost {
					best, bestCost = eid, e.Storage
				}
			}
		}
		if best < 0 {
			return nil, false, ErrGraph // remaining nodes unreachable from ν0
		}
		e := g.Edges[best]
		plan.ParentEdge[e.To] = best
		cr[e.To] = cr[e.From] + e.Recreation
		inTree[e.To] = true
		added++
	}
	ok := refine(plan, scheme)
	return plan, ok, nil
}
